"""Seeded signaling storms: schedule purity and attack-plane determinism."""

from repro.security.attacks import (
    AttackEvent,
    AttackPlane,
    StormKind,
    StormProfile,
    generate_storm,
)
from repro.testbed import Testbed, TestbedConfig
from repro.paka.deploy import IsolationMode


def _sgx_testbed(seed=12):
    return Testbed.build(TestbedConfig(isolation=IsolationMode.SGX, seed=seed))


def test_storm_schedule_is_a_pure_value():
    first = generate_storm(7, 5.0, 40.0)
    second = generate_storm(7, 5.0, 40.0)
    assert first == second
    assert first != generate_storm(8, 5.0, 40.0)
    assert generate_storm(7, 5.0, 0.0) == ()


def test_storm_schedule_shape():
    profile = StormProfile()
    events = generate_storm(3, 20.0, 50.0, profile)
    assert len(events) > 500  # ~1000 expected at 50/s over 20 s
    horizon_ns = int(20.0 * 1_000_000_000)
    assert all(0 <= event.at_ns < horizon_ns for event in events)
    assert list(events) == sorted(events, key=lambda event: event.at_ns)
    # Every workload kind appears, and sources stay in their pools.
    assert {event.kind for event in events} == set(StormKind)
    for event in events:
        assert event.gnb in {f"gnb-atk-{k}" for k in range(profile.attack_gnbs)}
        if event.kind is StormKind.BOTNET_REGISTER:
            assert int(event.source.split("-")[1]) < profile.botnet_population
        else:
            assert int(event.source.split("-")[1]) < profile.spoof_pool


def test_schedule_generation_draws_no_testbed_randomness():
    """Generating a schedule must not perturb any testbed RNG stream."""
    baseline = _sgx_testbed()
    reference = baseline.register(
        baseline.add_subscriber(), establish_session=False
    )

    testbed = _sgx_testbed()
    generate_storm(99, 30.0, 200.0)
    outcome = testbed.register(testbed.add_subscriber(), establish_session=False)
    assert outcome.session_setup_ms == reference.session_setup_ms
    assert testbed.host.clock.now_ns == baseline.host.clock.now_ns


def test_attack_plane_provisioning_leaves_legit_traffic_untouched():
    """The plane's UE population lives on reserved MSIN prefixes with
    disjoint RNG streams: beyond the ordinary per-subscriber UDR
    provisioning cost, attaching a plane changes nothing for a
    legitimate registration that follows (same draws, same duration)."""
    baseline = _sgx_testbed()
    reference = baseline.register(
        baseline.add_subscriber(), establish_session=False
    )

    testbed = _sgx_testbed()
    AttackPlane(testbed)
    outcome = testbed.register(testbed.add_subscriber(), establish_session=False)
    assert outcome.session_setup_ms == reference.session_setup_ms
    assert outcome.nas_exchanges == reference.nas_exchanges


def test_attack_plane_replays_deterministically():
    events = generate_storm(5, 2.0, 60.0)
    assert events

    def run():
        testbed = _sgx_testbed()
        plane = AttackPlane(testbed)
        for event in events:
            plane.execute(event)
        return plane.summary(), testbed.host.clock.now_ns

    first_summary, first_clock = run()
    second_summary, second_clock = run()
    assert first_summary == second_summary
    assert first_clock == second_clock
    assert sum(
        count for outcomes in first_summary.values() for count in outcomes.values()
    ) == len(events)


def test_suci_replay_burns_enclave_work():
    """Every accepted replay of the captured SUCI costs the home network
    a full authentication-vector generation in the eUDM."""
    testbed = _sgx_testbed()
    plane = AttackPlane(testbed)
    eudm = testbed.paka.modules["eudm"].runtime.sgx_stats
    before = eudm.eenters
    for index in range(5):
        outcome = plane.execute(
            AttackEvent(
                at_ns=0, kind=StormKind.SUCI_REPLAY, gnb="gnb-atk-0",
                source=f"spoof-{index}", salt=index,
            )
        )
        assert outcome == "pending"  # challenge issued, then ignored
    assert eudm.eenters > before


def test_botnet_registration_completes_against_open_amf():
    """Botnet traffic is protocol-valid: with no admission control the
    AMF serves it like any subscriber (volume, not content, is the
    weapon)."""
    testbed = _sgx_testbed()
    plane = AttackPlane(testbed)
    outcome = plane.execute(
        AttackEvent(
            at_ns=0, kind=StormKind.BOTNET_REGISTER, gnb="gnb-atk-1",
            source="bot-0", salt=1,
        )
    )
    assert outcome == "completed"
    assert testbed.amf.registered_count() == 1


def test_nas_fuzz_never_crashes_the_amf():
    """Every fuzz variant terminates as a rejection or a refused message
    — no uncaught exception escapes the AMF's NAS dispatch."""
    testbed = _sgx_testbed()
    plane = AttackPlane(testbed)
    for salt in range(24):
        outcome = plane.execute(
            AttackEvent(
                at_ns=0, kind=StormKind.NAS_FUZZ, gnb="gnb-atk-2",
                source=f"spoof-{salt % 8}", salt=salt,
            )
        )
        assert outcome in ("rejected", "errored")
    # The fuzz salts cover several variants; the testbed still serves.
    assert testbed.register(
        testbed.add_subscriber(), establish_session=False
    ).success
