"""Attack executions: must succeed on containers, fail on SGX.

Both directions matter: an attack that fails everywhere proves nothing
about HMEE, and one that succeeds everywhere means the mitigation is
fiction.
"""

import pytest

from repro.security.attacks import (
    AttestationSpoofAttack,
    FunctionTamperAttack,
    ImageSecretExtractionAttack,
    MemoryIntrospectionAttack,
    NetworkSniffAttack,
    VirtualKeyStoreAttack,
)
from repro.security.keyissues import _credential_image
from repro.security.threat import Attacker


def armed_attacker(testbed, name="mallory"):
    attacker = Attacker(name=name, host=testbed.host, engine=testbed.engine)
    assert attacker.full_chain()
    return attacker


def registered(testbed, count=1):
    for _ in range(count):
        ue = testbed.add_subscriber()
        assert testbed.register(ue, establish_session=False).success
    return testbed


class TestMemoryIntrospection:
    def test_succeeds_on_container(self, container_testbed):
        testbed = registered(container_testbed)
        result = MemoryIntrospectionAttack().run(armed_attacker(testbed), testbed)
        assert result.succeeded
        # Real key material was exfiltrated, including subscriber keys.
        assert any("k:" in key for key in result.evidence)
        assert any("last_kausf" in key for key in result.evidence)

    def test_stolen_key_is_the_real_subscriber_key(self, container_testbed):
        testbed = container_testbed
        ue = testbed.add_subscriber()
        assert testbed.register(ue, establish_session=False).success
        result = MemoryIntrospectionAttack().run(armed_attacker(testbed), testbed)
        stolen = result.evidence[f"eudm/k:{ue.usim.supi}"]
        assert bytes.fromhex(stolen) == ue.usim._k

    def test_fails_on_sgx(self, sgx_testbed):
        testbed = registered(sgx_testbed)
        result = MemoryIntrospectionAttack().run(armed_attacker(testbed), testbed)
        assert not result.succeeded
        assert result.evidence == {}

    def test_requires_modules(self, monolithic_testbed):
        with pytest.raises(ValueError):
            MemoryIntrospectionAttack().run(
                armed_attacker(monolithic_testbed), monolithic_testbed
            )


class TestVirtualKeyStore:
    def test_succeeds_without_attestation(self, container_testbed):
        result = VirtualKeyStoreAttack().run(
            armed_attacker(container_testbed), container_testbed
        )
        assert result.succeeded

    def test_fails_with_attestation(self, sgx_testbed):
        result = VirtualKeyStoreAttack().run(armed_attacker(sgx_testbed), sgx_testbed)
        assert not result.succeeded


class TestImageSecretExtraction:
    def test_plaintext_credentials_recovered(self):
        result = ImageSecretExtractionAttack().run_against_image(
            _credential_image(sealed=False), sealed=False
        )
        assert result.succeeded
        assert "credentials" in result.evidence

    def test_sealed_credentials_useless(self):
        result = ImageSecretExtractionAttack().run_against_image(
            _credential_image(sealed=True), sealed=True
        )
        assert not result.succeeded

    def test_image_without_secret(self):
        from repro.container.image import oai_base_image

        image, _ = oai_base_image("eudm-aka", bulk_mb=10)
        result = ImageSecretExtractionAttack().run_against_image(image, sealed=False)
        assert not result.succeeded


class TestFunctionTamper:
    def test_undetected_on_container(self, container_testbed):
        result = FunctionTamperAttack().run(
            armed_attacker(container_testbed), container_testbed
        )
        assert result.succeeded

    def test_detected_on_sgx(self, sgx_testbed):
        result = FunctionTamperAttack().run(armed_attacker(sgx_testbed), sgx_testbed)
        assert not result.succeeded
        assert "MRENCLAVE" in result.notes


class TestAttestationSpoof:
    def test_wins_by_default_without_hmee(self, container_testbed):
        result = AttestationSpoofAttack().run(
            armed_attacker(container_testbed), container_testbed
        )
        assert result.succeeded

    def test_forged_quote_rejected_with_hmee(self, sgx_testbed):
        result = AttestationSpoofAttack().run(armed_attacker(sgx_testbed), sgx_testbed)
        assert not result.succeeded


class TestNetworkSniff:
    """TLS protects the bridge in BOTH deployments (orthogonal to HMEE)."""

    def test_fails_on_container(self, container_testbed):
        result = NetworkSniffAttack().run(
            armed_attacker(container_testbed), container_testbed
        )
        assert not result.succeeded
        assert "TLS-protected" in result.notes

    def test_fails_on_sgx(self, sgx_testbed):
        result = NetworkSniffAttack().run(armed_attacker(sgx_testbed), sgx_testbed)
        assert not result.succeeded
