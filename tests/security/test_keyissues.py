"""Table V: the executed key-issue catalogue."""

import pytest

from repro.paka.deploy import IsolationMode
from repro.security.keyissues import (
    KEY_ISSUES,
    KeyIssue,
    Mitigation,
    evaluate_key_issues,
    format_table_v,
)
from repro.testbed import Testbed, TestbedConfig


@pytest.fixture(scope="module")
def verdicts():
    container = Testbed.build(TestbedConfig(isolation=IsolationMode.CONTAINER, seed=51))
    hmee = Testbed.build(TestbedConfig(isolation=IsolationMode.SGX, seed=51))
    return evaluate_key_issues(container, hmee)


def test_catalogue_covers_papers_13_kis():
    assert [ki.number for ki in KEY_ISSUES] == [2, 5, 6, 7, 11, 12, 13, 15, 20, 21, 25, 26, 27]


def test_3gpp_identified_kis_are_6_7_15_25():
    marked = {ki.number for ki in KEY_ISSUES if ki.identified_by_3gpp}
    assert marked == {6, 7, 15, 25}


def test_full_vs_partial_split_matches_paper():
    full = {ki.number for ki in KEY_ISSUES if ki.paper_verdict is Mitigation.FULL}
    partial = {ki.number for ki in KEY_ISSUES if ki.paper_verdict is Mitigation.PARTIAL}
    assert full == {2, 6, 7, 13, 15, 25, 27}
    assert partial == {5, 11, 12, 20, 21, 26}


def test_partial_verdicts_name_residual_requirements():
    for ki in KEY_ISSUES:
        if ki.paper_verdict is Mitigation.PARTIAL:
            assert ki.residual, f"KI {ki.number} partial without residual note"


def test_every_attack_succeeds_on_container(verdicts):
    for verdict in verdicts:
        assert verdict.attack_on_container.succeeded, (
            f"KI {verdict.issue.number}: attack did not demonstrate the issue"
        )


def test_every_attack_fails_on_hmee(verdicts):
    for verdict in verdicts:
        assert not verdict.attack_on_hmee.succeeded, (
            f"KI {verdict.issue.number}: HMEE did not mitigate"
        )


def test_all_13_kis_effective(verdicts):
    assert sum(1 for v in verdicts if v.hmee_effective) == 13
    assert all(v.matches_paper for v in verdicts)


def test_rows_render_table_v(verdicts):
    table = format_table_v(verdicts)
    assert "Function isolation" in table
    assert "Secrets in NF container images" in table
    assert table.count("succeeds") == 13  # container column
    rows = [v.row() for v in verdicts]
    assert {row["Solution"] for row in rows} == {"✦", "◑"}
