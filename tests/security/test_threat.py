"""Attacker model: capability chain and gating."""

import pytest

from repro.security.threat import (
    Attacker,
    AttackerCapability,
    CapabilityError,
    CoResidencyError,
)


@pytest.fixture
def attacker(container_testbed):
    return Attacker(
        name="mallory", host=container_testbed.host, engine=container_testbed.engine
    )


def test_coresidency_usually_succeeds(attacker):
    assert attacker.achieve_coresidency()
    assert AttackerCapability.CO_RESIDENT in attacker.capabilities


def test_escalation_requires_coresidency(attacker):
    with pytest.raises(CoResidencyError):
        attacker.escalate("CVE-2022-31705")


def test_vm_escape_grants_everything(attacker):
    attacker.achieve_coresidency()
    attacker.escalate("CVE-2022-31705")
    assert AttackerCapability.HOST_ROOT in attacker.capabilities
    assert AttackerCapability.ENGINE_PRIVILEGES in attacker.capabilities
    assert AttackerCapability.NETWORK_TAP in attacker.capabilities


def test_engine_misconfig_grants_only_engine(attacker):
    attacker.achieve_coresidency()
    attacker.escalate("engine-api-misconfig")
    assert AttackerCapability.ENGINE_PRIVILEGES in attacker.capabilities
    assert AttackerCapability.HOST_ROOT not in attacker.capabilities


def test_patched_vulnerability_fails(attacker):
    attacker.achieve_coresidency()
    with pytest.raises(CapabilityError):
        attacker.escalate("CVE-1999-0000")


def test_primitives_gated_on_capabilities(attacker, container_testbed):
    container = next(iter(container_testbed.paka.containers.values()))
    with pytest.raises(CapabilityError):
        attacker.introspect_container(container.name)
    with pytest.raises(CapabilityError):
        attacker.tap_bridge("oai-bridge")


def test_full_chain_reaches_root(attacker):
    assert attacker.full_chain()
    assert len(attacker.log) >= 2


def test_introspection_after_chain(attacker, container_testbed):
    ue = container_testbed.add_subscriber()
    assert container_testbed.register(ue, establish_session=False).success
    attacker.full_chain()
    container = container_testbed.paka.containers["eudm"]
    memory = attacker.introspect_container(container.name)
    assert memory  # plaintext secrets from the unshielded module
