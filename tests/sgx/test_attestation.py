"""Remote attestation: quotes, verification, spoofing resistance."""

import pytest

from repro.sgx.attestation import (
    AttestationService,
    Quote,
    QuotingEnclave,
    verify_quote,
)
from repro.sgx.enclave import Enclave
from repro.sgx.errors import AttestationError

from .conftest import small_build


@pytest.fixture
def service():
    return AttestationService()


@pytest.fixture
def qe(service):
    return QuotingEnclave("platform-0", service)


def test_quote_and_verify(enclave, service, qe):
    quote = qe.quote(enclave, report_data=b"kex-pubkey")
    assert verify_quote(quote, service)


def test_quote_binds_report_data(enclave, service, qe):
    quote = qe.quote(enclave, report_data=b"original")
    forged = Quote(
        mrenclave=quote.mrenclave,
        mrsigner=quote.mrsigner,
        isv_prod_id=quote.isv_prod_id,
        isv_svn=quote.isv_svn,
        report_data=b"swapped",
        platform_id=quote.platform_id,
        debug=quote.debug,
        signature=quote.signature,
    )
    with pytest.raises(AttestationError):
        verify_quote(forged, service)


def test_expected_mrenclave_enforced(enclave, service, qe):
    quote = qe.quote(enclave)
    assert verify_quote(quote, service, expected_mrenclave=quote.mrenclave)
    with pytest.raises(AttestationError, match="MRENCLAVE"):
        verify_quote(quote, service, expected_mrenclave=bytes(32))


def test_expected_mrsigner_enforced(enclave, service, qe):
    quote = qe.quote(enclave)
    assert verify_quote(quote, service, expected_mrsigner=quote.mrsigner)
    with pytest.raises(AttestationError, match="MRSIGNER"):
        verify_quote(quote, service, expected_mrsigner=bytes(32))


def test_unknown_platform_rejected(enclave, service, qe):
    quote = qe.quote(enclave)
    empty_service = AttestationService()
    with pytest.raises(AttestationError, match="unknown platform"):
        verify_quote(quote, empty_service)


def test_forged_signature_rejected(enclave, service, qe):
    quote = qe.quote(enclave)
    forged = Quote(
        mrenclave=quote.mrenclave,
        mrsigner=quote.mrsigner,
        isv_prod_id=quote.isv_prod_id,
        isv_svn=quote.isv_svn,
        report_data=quote.report_data,
        platform_id=quote.platform_id,
        debug=quote.debug,
        signature=bytes(32),
    )
    with pytest.raises(AttestationError, match="signature"):
        verify_quote(forged, service)


def test_debug_enclaves_rejected_by_default(host, epc, service, qe):
    debug_enclave = Enclave(host, small_build("dbg", debug=True), epc)
    debug_enclave.load()
    quote = qe.quote(debug_enclave)
    with pytest.raises(AttestationError, match="debug"):
        verify_quote(quote, service)
    assert verify_quote(quote, service, allow_debug=True)


def test_uninitialized_enclave_cannot_be_quoted(host, epc, service, qe):
    enclave = Enclave(host, small_build("never-loaded"), epc)
    with pytest.raises(AttestationError):
        qe.quote(enclave)
