"""Enclave lifecycle, transitions and confidentiality semantics."""

import json

import pytest

from repro.hw.cpu import CpuSpec
from repro.hw.host import paper_testbed_host
from repro.sgx.enclave import CPU_PACKAGE_ACTOR, Enclave
from repro.sgx.epc import EpcManager
from repro.sgx.errors import (
    EnclaveLostError,
    EnclaveNotInitializedError,
    SgxError,
    SgxUnsupportedError,
)

from .conftest import small_build


class TestLifecycle:
    def test_load_initializes_and_measures(self, enclave):
        assert enclave.initialized
        assert enclave.measurement is not None
        assert len(enclave.measurement.mrenclave) == 32

    def test_load_records_span(self, enclave):
        assert enclave.load_span is not None
        assert enclave.load_span.ns > 0

    def test_double_load_rejected(self, enclave):
        with pytest.raises(SgxError):
            enclave.load()

    def test_ecall_before_load_rejected(self, host, epc):
        enclave = Enclave(host, small_build("unloaded"), epc)
        with pytest.raises(EnclaveNotInitializedError):
            with enclave.ecall("f"):
                pass

    def test_destroyed_enclave_unusable(self, enclave):
        enclave.destroy()
        with pytest.raises(EnclaveLostError):
            with enclave.ecall("f"):
                pass

    def test_destroy_releases_epc(self, enclave, epc):
        assert epc.resident_pages > 0
        enclave.destroy()
        assert epc.resident_pages == 0

    def test_non_sgx_host_rejected(self, epc):
        plain = paper_testbed_host(
            cpu_spec=CpuSpec("plain", 2e9, 8, sgx_version=0, max_epc_bytes=0)
        )
        with pytest.raises(SgxUnsupportedError):
            Enclave(plain, small_build(), epc)

    def test_preheat_prefaults_heap(self, host, epc):
        cold = Enclave(host, small_build("cold", preheat=False), epc)
        cold.load()
        cold_resident = cold.epc_region.resident_pages

        hot = Enclave(host, small_build("hot", preheat=True), epc)
        hot.load()
        assert hot.epc_region.resident_pages > cold_resident

    def test_preheat_increases_load_time(self, host, epc):
        cold = Enclave(host, small_build("cold2", preheat=False), epc)
        cold_span = cold.load()
        hot = Enclave(host, small_build("hot2", preheat=True), epc)
        hot_span = hot.load()
        assert hot_span.ns > cold_span.ns

    def test_trusted_file_bytes_dominate_load_time(self, host, epc):
        small = Enclave(
            host, small_build("small-tf", trusted_files_bytes=1 * 1024**2), epc
        )
        small_span = small.load()
        large = Enclave(
            host, small_build("large-tf", trusted_files_bytes=512 * 1024**2), epc
        )
        large_span = large.load()
        assert large_span.ns > 10 * small_span.ns


class TestTransitions:
    def test_ecall_counts_enter_and_exit(self, enclave):
        with enclave.ecall("handler"):
            pass
        assert enclave.stats.ecalls == 1
        # load() already performed trusted-file OCALLs; delta check:
        assert enclave.stats.eenters == enclave.stats.eexits

    def test_ocall_counts_pair(self, enclave):
        before = enclave.stats.snapshot()
        with enclave.ecall("handler") as ctx:
            ctx.ocall("recvmsg", bytes_in=256)
            ctx.ocall("sendmsg", bytes_out=256)
        delta = enclave.stats.delta(before)
        assert delta.ocalls == 2
        assert delta.eenters == 3  # 1 ECALL + 2 OCALL re-entries
        assert delta.eexits == 3

    def test_ocall_advances_time(self, enclave):
        t0 = enclave.host.clock.now_ns
        with enclave.ecall("handler") as ctx:
            ctx.ocall("epoll_wait")
        # At least one 10k-cycle transition pair: > 4 us at 2.4 GHz.
        assert enclave.host.clock.now_ns - t0 > 4_000

    def test_compute_charges_mee_penalty(self, enclave):
        model = enclave.cost_model
        t0 = enclave.host.clock.now_ns
        with enclave.ecall("handler") as ctx:
            ctx.compute(240_000)
        elapsed = enclave.host.clock.now_ns - t0
        plain_ns = 240_000 / 2.4  # 2.4 GHz
        assert elapsed > plain_ns * model.epc_compute_penalty * 0.9

    def test_context_unusable_after_exit(self, enclave):
        with enclave.ecall("handler") as ctx:
            pass
        with pytest.raises(SgxError):
            ctx.ocall("read")

    def test_tcs_exhaustion(self, host, epc):
        enclave = Enclave(host, small_build("one-thread", max_threads=1), epc)
        enclave.load()
        handle = enclave.begin_persistent_ecall("app")
        with pytest.raises(SgxError):
            with enclave.ecall("too-many"):
                pass
        enclave.end_persistent_ecall(handle)
        with enclave.ecall("now-fine"):
            pass

    def test_persistent_ecall_counts_one_enter(self, enclave):
        before = enclave.stats.snapshot()
        handle = enclave.begin_persistent_ecall("process")
        delta = enclave.stats.delta(before)
        assert delta.eenters == 1 and delta.eexits == 0
        enclave.end_persistent_ecall(handle)
        delta = enclave.stats.delta(before)
        assert delta.eexits == 1

    def test_end_persistent_is_idempotent(self, enclave):
        handle = enclave.begin_persistent_ecall("process")
        enclave.end_persistent_ecall(handle)
        before = enclave.stats.snapshot()
        enclave.end_persistent_ecall(handle)
        assert enclave.stats.delta(before).eexits == 0


class TestIdleAex:
    def test_aex_uses_eresume_not_eenter(self, enclave):
        before = enclave.stats.snapshot()
        enclave.run_idle(10.0)
        delta = enclave.stats.delta(before)
        assert delta.aexs > 0
        assert delta.eresumes == delta.aexs
        assert delta.eenters == 0

    def test_aex_scales_with_threads(self, enclave):
        before = enclave.stats.snapshot()
        enclave.run_idle(10.0, active_threads=1)
        one_thread = enclave.stats.delta(before).aexs
        before = enclave.stats.snapshot()
        enclave.run_idle(10.0, active_threads=4)
        four_threads = enclave.stats.delta(before).aexs
        assert four_threads > 2 * one_thread

    def test_idle_advances_clock_by_window(self, enclave):
        t0 = enclave.host.clock.now_ns
        enclave.run_idle(2.5)
        assert enclave.host.clock.now_ns - t0 == 2_500_000_000

    def test_idle_without_clock_advance(self, enclave):
        t0 = enclave.host.clock.now_ns
        before = enclave.stats.snapshot()
        enclave.run_idle(2.5, advance_clock=False)
        assert enclave.host.clock.now_ns == t0
        assert enclave.stats.delta(before).aexs > 0

    def test_negative_idle_rejected(self, enclave):
        with pytest.raises(ValueError):
            enclave.run_idle(-1.0)


class TestConfidentiality:
    def test_secrets_visible_inside_ecall(self, enclave):
        with enclave.ecall("store") as ctx:
            ctx.store_secret("k", b"\x01\x02")
        with enclave.ecall("load") as ctx:
            assert ctx.load_secret("k") == b"\x01\x02"

    def test_missing_secret_raises(self, enclave):
        with enclave.ecall("load") as ctx:
            with pytest.raises(KeyError):
                ctx.load_secret("nope")

    def test_outside_view_is_ciphertext(self, enclave):
        secret = bytes(range(32))
        with enclave.ecall("store") as ctx:
            ctx.store_secret("kausf", secret)
        dump = enclave.dump_memory(actor="hypervisor")
        assert secret not in dump
        assert secret.hex().encode() not in dump
        with pytest.raises(ValueError):
            json.loads(dump.decode("utf-8", errors="strict"))

    def test_cpu_package_sees_plaintext(self, enclave):
        with enclave.ecall("store") as ctx:
            ctx.store_secret("kausf", bytes(range(32)))
        dump = enclave.dump_memory(actor=CPU_PACKAGE_ACTOR)
        data = json.loads(dump.decode())
        assert data["kausf"] == bytes(range(32)).hex()

    def test_two_enclaves_have_different_ciphertexts(self, host, epc):
        a = Enclave(host, small_build("a"), epc)
        b = Enclave(host, small_build("b"), epc)
        a.load()
        b.load()
        secret = b"same-secret-in-both-enclaves-000"
        with a.ecall("s") as ctx:
            ctx.store_secret("k", secret)
        with b.ecall("s") as ctx:
            ctx.store_secret("k", secret)
        assert a.dump_memory("hypervisor") != b.dump_memory("hypervisor")

    def test_destroy_scrubs_secrets(self, enclave):
        with enclave.ecall("store") as ctx:
            ctx.store_secret("k", b"x")
        enclave.destroy()
        assert enclave._secrets == {}
