"""MRENCLAVE hash-chain and SIGSTRUCT signing."""

import pytest

from repro.sgx.measurement import (
    EnclaveMeasurement,
    MeasurementBuilder,
    sign_enclave,
)


def build_measurement(pages=((0, b"code"), (4096, b"data")), size=1 << 20):
    builder = MeasurementBuilder()
    builder.ecreate(size)
    for offset, chunk in pages:
        builder.eadd(offset, flags="rx")
        builder.eextend(offset, chunk)
    return builder.finalize()


def test_measurement_is_deterministic():
    assert build_measurement().mrenclave == build_measurement().mrenclave


def test_content_changes_measurement():
    a = build_measurement(pages=((0, b"code"),))
    b = build_measurement(pages=((0, b"c0de"),))
    assert a.mrenclave != b.mrenclave


def test_placement_changes_measurement():
    a = build_measurement(pages=((0, b"code"),))
    b = build_measurement(pages=((4096, b"code"),))
    assert a.mrenclave != b.mrenclave


def test_order_changes_measurement():
    a = build_measurement(pages=((0, b"one"), (4096, b"two")))
    b = build_measurement(pages=((4096, b"two"), (0, b"one")))
    assert a.mrenclave != b.mrenclave


def test_size_changes_measurement():
    assert build_measurement(size=1 << 20).mrenclave != build_measurement(size=1 << 21).mrenclave


def test_finalize_is_idempotent():
    builder = MeasurementBuilder()
    builder.ecreate(4096)
    first = builder.finalize()
    assert builder.finalize().mrenclave == first.mrenclave


def test_no_mutation_after_finalize():
    builder = MeasurementBuilder()
    builder.ecreate(4096)
    builder.finalize()
    with pytest.raises(RuntimeError):
        builder.eadd(0, flags="rx")


def test_measurement_must_be_32_bytes():
    with pytest.raises(ValueError):
        EnclaveMeasurement(mrenclave=b"short")


class TestSigstruct:
    KEY = b"vendor-key"

    def test_sign_and_verify(self):
        sig = sign_enclave(build_measurement(), self.KEY)
        assert sig.verify(self.KEY)

    def test_wrong_key_fails(self):
        sig = sign_enclave(build_measurement(), self.KEY)
        assert not sig.verify(b"other-key")

    def test_mrsigner_is_key_hash(self):
        import hashlib

        sig = sign_enclave(build_measurement(), self.KEY)
        assert sig.mrsigner == hashlib.sha256(self.KEY).digest()

    def test_same_signer_different_enclaves_share_mrsigner(self):
        a = sign_enclave(build_measurement(pages=((0, b"a"),)), self.KEY)
        b = sign_enclave(build_measurement(pages=((0, b"b"),)), self.KEY)
        assert a.mrsigner == b.mrsigner
        assert a.mrenclave != b.mrenclave

    def test_svn_is_bound_into_signature(self):
        measurement = build_measurement()
        v1 = sign_enclave(measurement, self.KEY, isv_svn=1)
        v2 = sign_enclave(measurement, self.KEY, isv_svn=2)
        assert v1.signature != v2.signature
