"""Transition cost band (the paper's 10k-18k cycles per pair)."""

from repro.sgx.costmodel import SgxCostModel
from repro.sim.rng import RngService


def test_transition_pair_within_cited_band():
    model = SgxCostModel()
    rng = RngService(0)
    for _ in range(500):
        eenter, eexit = model.draw_transition_pair(rng, "t")
        total = eenter + eexit
        assert model.transition_pair_min_cycles * 0.99 <= total
        assert total <= model.transition_pair_max_cycles * 1.01


def test_entry_more_expensive_than_exit():
    model = SgxCostModel()
    rng = RngService(1)
    eenter, eexit = model.draw_transition_pair(rng, "t")
    assert eenter > eexit


def test_draws_are_deterministic_per_seed():
    model = SgxCostModel()
    a = model.draw_transition_pair(RngService(9), "t")
    b = model.draw_transition_pair(RngService(9), "t")
    assert a == b


def test_draws_vary_within_a_stream():
    model = SgxCostModel()
    rng = RngService(2)
    draws = {model.draw_transition_pair(rng, "t") for _ in range(20)}
    assert len(draws) > 1
