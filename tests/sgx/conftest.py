"""Fixtures for direct SGX-layer tests: small, fast enclaves."""

import pytest

from repro.hw.host import paper_testbed_host
from repro.sgx.enclave import Enclave, EnclaveBuildInfo
from repro.sgx.epc import EpcManager
from repro.sgx.measurement import EnclaveMeasurement, sign_enclave

SIGNING_KEY = b"vendor-signing-key-for-tests-0001"


def small_build(name="test-enclave", **overrides):
    """A small enclave build (fast to load)."""
    import hashlib

    defaults = dict(
        name=name,
        enclave_size_bytes=64 * 1024 * 1024,
        max_threads=4,
        measured_bytes=1 * 1024 * 1024,
        trusted_files_bytes=8 * 1024 * 1024,
        heap_bytes=48 * 1024 * 1024,
        preheat=False,
        debug=False,
        stats_enabled=True,
    )
    defaults.update(overrides)
    if "sigstruct" not in overrides:
        measurement = EnclaveMeasurement(
            mrenclave=hashlib.sha256(name.encode()).digest()
        )
        defaults["sigstruct"] = sign_enclave(measurement, SIGNING_KEY)
    return EnclaveBuildInfo(**defaults)


@pytest.fixture
def host():
    return paper_testbed_host(seed=77)


@pytest.fixture
def epc(host):
    return EpcManager(host.total_epc_bytes, host.cpu, host.rng)


@pytest.fixture
def enclave(host, epc):
    e = Enclave(host, small_build(), epc)
    e.load()
    return e
