"""Secret sealing: identity binding and tamper resistance (KI 27)."""

import pytest

from repro.sgx.enclave import Enclave
from repro.sgx.errors import SealingError
from repro.sgx.sealing import SealedBlob, SealPolicy, seal, unseal

from .conftest import SIGNING_KEY, small_build


SECRET = b"tls-client-credentials-for-paka-module"


def test_seal_unseal_roundtrip(enclave):
    blob = seal(enclave, SECRET)
    assert unseal(enclave, blob) == SECRET


def test_sealed_blob_hides_secret(enclave):
    blob = seal(enclave, SECRET)
    assert SECRET not in blob.ciphertext


def test_mrenclave_policy_rejects_other_enclave(host, epc, enclave):
    other = Enclave(host, small_build("other"), epc)
    other.load()
    blob = seal(enclave, SECRET, policy=SealPolicy.MRENCLAVE)
    with pytest.raises(SealingError):
        unseal(other, blob)


def test_mrsigner_policy_allows_same_vendor(host, epc, enclave):
    upgraded = Enclave(host, small_build("upgraded-build"), epc)
    upgraded.load()
    # Same SIGNING_KEY in conftest → same MRSIGNER, different MRENCLAVE.
    assert upgraded.measurement.mrenclave != enclave.measurement.mrenclave
    blob = seal(enclave, SECRET, policy=SealPolicy.MRSIGNER)
    assert unseal(upgraded, blob) == SECRET


def test_mrsigner_policy_rejects_other_vendor(host, epc, enclave):
    from repro.sgx.measurement import EnclaveMeasurement, sign_enclave
    import hashlib

    rogue_sig = sign_enclave(
        EnclaveMeasurement(mrenclave=hashlib.sha256(b"rogue").digest()),
        b"rogue-vendor-key",
    )
    rogue = Enclave(host, small_build("rogue", sigstruct=rogue_sig), epc)
    rogue.load()
    blob = seal(enclave, SECRET, policy=SealPolicy.MRSIGNER)
    with pytest.raises(SealingError):
        unseal(rogue, blob)


def test_platform_binding(enclave):
    blob = seal(enclave, SECRET, platform_id="platform-A")
    with pytest.raises(SealingError):
        unseal(enclave, blob, platform_id="platform-B")
    assert unseal(enclave, blob, platform_id="platform-A") == SECRET


def test_tampered_blob_rejected(enclave):
    blob = seal(enclave, SECRET)
    tampered = SealedBlob(
        policy=blob.policy,
        ciphertext=bytes([blob.ciphertext[0] ^ 1]) + blob.ciphertext[1:],
        tag=blob.tag,
    )
    with pytest.raises(SealingError):
        unseal(enclave, tampered)


def test_sealing_requires_initialized_enclave(host, epc):
    never_loaded = Enclave(host, small_build("never"), epc)
    with pytest.raises(SealingError):
        seal(never_loaded, SECRET)


def test_mrsigner_policy_requires_signed_enclave(host, epc):
    unsigned = Enclave(host, small_build("unsigned", sigstruct=None, debug=True), epc)
    unsigned.load()
    with pytest.raises(SealingError):
        seal(unsigned, SECRET, policy=SealPolicy.MRSIGNER)


def test_empty_secret_roundtrip(enclave):
    blob = seal(enclave, b"")
    assert unseal(enclave, blob) == b""
