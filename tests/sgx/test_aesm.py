"""aesmd launch control."""

import pytest

from repro.sgx.aesm import AesmDaemon, LaunchDeniedError
from repro.sgx.measurement import EnclaveMeasurement, sign_enclave

import hashlib

KEY = b"vendor-key-aesm-tests"


def make_sigstruct(name=b"enclave"):
    return sign_enclave(
        EnclaveMeasurement(mrenclave=hashlib.sha256(name).digest()), KEY
    )


def test_token_issued_for_signed_enclave():
    daemon = AesmDaemon("plat")
    token = daemon.request_launch_token(make_sigstruct())
    assert daemon.validate_token(token)
    assert daemon.tokens_issued == 1


def test_unsigned_enclave_denied():
    daemon = AesmDaemon("plat")
    with pytest.raises(LaunchDeniedError):
        daemon.request_launch_token(None)


def test_invalid_signature_denied_with_key_check():
    daemon = AesmDaemon("plat")
    sig = make_sigstruct()
    with pytest.raises(LaunchDeniedError):
        daemon.request_launch_token(sig, signing_key=b"wrong-key")


def test_signer_whitelist_enforced():
    daemon = AesmDaemon("plat")
    sig = make_sigstruct()
    daemon.allow_signer(hashlib.sha256(b"someone-else").digest())
    with pytest.raises(LaunchDeniedError):
        daemon.request_launch_token(sig)
    daemon.allow_signer(sig.mrsigner)
    assert daemon.request_launch_token(sig)


def test_token_from_other_platform_invalid():
    token = AesmDaemon("plat-a").request_launch_token(make_sigstruct())
    assert not AesmDaemon("plat-b").validate_token(token)


def test_forged_token_invalid():
    from repro.sgx.aesm import LaunchToken

    daemon = AesmDaemon("plat")
    forged = LaunchToken(mrenclave=bytes(32), mrsigner=bytes(32), mac=bytes(16))
    assert not daemon.validate_token(forged)
