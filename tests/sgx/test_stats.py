"""SGX counter snapshots and deltas (the Table III methodology)."""

from repro.sgx.stats import SgxStats


def test_record_ocall_updates_both_counters():
    stats = SgxStats()
    stats.record_ocall("epoll_wait")
    stats.record_ocall("epoll_wait")
    stats.record_ocall("recvmsg")
    assert stats.ocalls == 3
    assert stats.ocalls_by_syscall == {"epoll_wait": 2, "recvmsg": 1}


def test_snapshot_is_frozen_copy():
    stats = SgxStats(eenters=5)
    snap = stats.snapshot()
    stats.eenters = 10
    stats.record_ocall("read")
    assert snap.eenters == 5
    assert snap.ocalls == 0


def test_delta_differences_counters():
    stats = SgxStats()
    stats.eenters, stats.eexits, stats.aexs = 100, 90, 1000
    before = stats.snapshot()
    stats.eenters += 87
    stats.eexits += 87
    stats.aexs += 3
    stats.record_ocall("sendmsg")
    delta = stats.delta(before)
    assert delta.eenters == 87
    assert delta.eexits == 87
    assert delta.aexs == 3
    assert delta.ocalls_by_syscall == {"sendmsg": 1}


def test_delta_of_identical_snapshots_is_zero():
    stats = SgxStats(eenters=7, bytes_copied_in=100)
    delta = stats.delta(stats.snapshot())
    assert delta.eenters == 0
    assert delta.bytes_copied_in == 0
