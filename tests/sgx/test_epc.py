"""EPC manager: capacity, faulting, eviction, management overhead."""

import pytest

from repro.sgx.epc import PAGE_SIZE, EpcManager
from repro.sgx.errors import EpcExhaustedError
from repro.sgx.stats import SgxStats


@pytest.fixture
def manager(host):
    # Small physical EPC so eviction is easy to trigger.
    return EpcManager(64 * PAGE_SIZE, host.cpu, host.rng)


def test_region_creation_and_pages(manager):
    region = manager.create_region("e1", 32 * PAGE_SIZE)
    assert region.total_pages == 32
    assert region.resident_pages == 0
    assert region.utilization == 0.0


def test_duplicate_region_rejected(manager):
    manager.create_region("e1", PAGE_SIZE)
    with pytest.raises(ValueError):
        manager.create_region("e1", PAGE_SIZE)


def test_fault_in_accumulates(manager):
    region = manager.create_region("e1", 32 * PAGE_SIZE)
    stats = SgxStats()
    manager.fault_in(region, 10, stats)
    manager.fault_in(region, 5, stats)
    assert region.resident_pages == 15
    assert stats.page_faults == 15


def test_fault_in_zero_is_noop(manager, host):
    region = manager.create_region("e1", 32 * PAGE_SIZE)
    t0 = host.clock.now_ns
    manager.fault_in(region, 0)
    assert host.clock.now_ns == t0


def test_fault_beyond_region_size_raises(manager):
    region = manager.create_region("e1", 4 * PAGE_SIZE)
    with pytest.raises(EpcExhaustedError):
        manager.fault_in(region, 5)


def test_global_capacity_triggers_eviction(manager):
    big = manager.create_region("big", 64 * PAGE_SIZE)
    small = manager.create_region("small", 64 * PAGE_SIZE)
    stats = SgxStats()
    manager.fault_in(big, 60, stats)
    manager.fault_in(small, 20, stats)  # 80 > 64: evicts 16 from 'big'
    assert manager.resident_pages <= manager.capacity_pages
    assert stats.page_evictions >= 16
    assert big.resident_pages < 60


def test_eviction_spares_the_faulting_region(manager):
    """Largest-first eviction must not steal pages from the region being
    faulted in (it would write them back only to re-fault them)."""
    big = manager.create_region("big", 64 * PAGE_SIZE)
    other = manager.create_region("other", 64 * PAGE_SIZE)
    manager.fault_in(big, 44)
    manager.fault_in(other, 20)  # EPC now full: 44 + 20 = 64
    stats = SgxStats()
    manager.fault_in(big, 10, stats)
    # 'big' is the largest region, yet the 10 pages must come from 'other'.
    assert big.resident_pages == 54
    assert other.resident_pages == 10
    assert stats.page_faults == 10
    assert stats.page_evictions == 10


def test_eviction_accounting_no_double_count(manager):
    """Hand-computed scenario mixing real evictions and transient pages.

    Capacity 64.  A holds 58, B (8-page enclave) holds 6.  Faulting 8
    pages into B: headroom lets only 2 become resident (needing 2 pages
    evicted from A), the other 6 cycle transiently.  Evictions = 2 + 6,
    not the 8 + 6 = 14 the old overshoot-then-transient path booked."""
    a = manager.create_region("a", 64 * PAGE_SIZE)
    b = manager.create_region("b", 8 * PAGE_SIZE)
    manager.fault_in(a, 58)
    manager.fault_in(b, 6)
    stats = SgxStats()
    manager.fault_in(b, 8, stats)
    assert b.resident_pages == 8
    assert a.resident_pages == 56
    assert manager.resident_pages == manager.capacity_pages
    assert stats.page_faults == 8
    assert stats.page_evictions == 8


def test_eviction_charge_matches_accounting(manager, host):
    """Evict cycles are charged once per evicted page (real + transient)."""
    a = manager.create_region("a", 64 * PAGE_SIZE)
    b = manager.create_region("b", 8 * PAGE_SIZE)
    manager.fault_in(a, 58)
    manager.fault_in(b, 6)
    c0 = host.cpu.cycles_spent
    manager.fault_in(b, 8)
    spent = host.cpu.cycles_spent - c0
    model = manager.cost_model
    assert spent == 8 * model.page_fault_cycles + 8 * model.page_evict_cycles


def test_fault_in_charges_time(manager, host):
    region = manager.create_region("e1", 32 * PAGE_SIZE)
    t0 = host.clock.now_ns
    manager.fault_in(region, 10)
    assert host.clock.now_ns > t0


def test_fault_in_without_time_charge(manager, host):
    region = manager.create_region("e1", 32 * PAGE_SIZE)
    t0 = host.clock.now_ns
    manager.fault_in(region, 10, charge_time=False)
    assert host.clock.now_ns == t0
    assert region.resident_pages == 10


def test_release_region_frees_pages(manager):
    region = manager.create_region("e1", 32 * PAGE_SIZE)
    manager.fault_in(region, 10)
    manager.release_region("e1")
    assert manager.resident_pages == 0


def test_management_cycles_grow_with_residency(manager):
    small = manager.create_region("small", 64 * PAGE_SIZE)
    manager.fault_in(small, 2)
    large = manager.create_region("large", 64 * PAGE_SIZE)
    manager.fault_in(large, 60)
    small_cost = sum(manager.management_cycles(small, "t") for _ in range(50)) / 50
    large_cost = sum(manager.management_cycles(large, "t") for _ in range(50)) / 50
    assert large_cost > small_cost
