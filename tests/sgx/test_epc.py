"""EPC manager: capacity, faulting, eviction, management overhead."""

import pytest

from repro.sgx.epc import PAGE_SIZE, EpcManager
from repro.sgx.errors import EpcExhaustedError
from repro.sgx.stats import SgxStats


@pytest.fixture
def manager(host):
    # Small physical EPC so eviction is easy to trigger.
    return EpcManager(64 * PAGE_SIZE, host.cpu, host.rng)


def test_region_creation_and_pages(manager):
    region = manager.create_region("e1", 32 * PAGE_SIZE)
    assert region.total_pages == 32
    assert region.resident_pages == 0
    assert region.utilization == 0.0


def test_duplicate_region_rejected(manager):
    manager.create_region("e1", PAGE_SIZE)
    with pytest.raises(ValueError):
        manager.create_region("e1", PAGE_SIZE)


def test_fault_in_accumulates(manager):
    region = manager.create_region("e1", 32 * PAGE_SIZE)
    stats = SgxStats()
    manager.fault_in(region, 10, stats)
    manager.fault_in(region, 5, stats)
    assert region.resident_pages == 15
    assert stats.page_faults == 15


def test_fault_in_zero_is_noop(manager, host):
    region = manager.create_region("e1", 32 * PAGE_SIZE)
    t0 = host.clock.now_ns
    manager.fault_in(region, 0)
    assert host.clock.now_ns == t0


def test_fault_beyond_region_size_raises(manager):
    region = manager.create_region("e1", 4 * PAGE_SIZE)
    with pytest.raises(EpcExhaustedError):
        manager.fault_in(region, 5)


def test_global_capacity_triggers_eviction(manager):
    big = manager.create_region("big", 64 * PAGE_SIZE)
    small = manager.create_region("small", 64 * PAGE_SIZE)
    stats = SgxStats()
    manager.fault_in(big, 60, stats)
    manager.fault_in(small, 20, stats)  # 80 > 64: evicts 16 from 'big'
    assert manager.resident_pages <= manager.capacity_pages
    assert stats.page_evictions >= 16
    assert big.resident_pages < 60


def test_fault_in_charges_time(manager, host):
    region = manager.create_region("e1", 32 * PAGE_SIZE)
    t0 = host.clock.now_ns
    manager.fault_in(region, 10)
    assert host.clock.now_ns > t0


def test_fault_in_without_time_charge(manager, host):
    region = manager.create_region("e1", 32 * PAGE_SIZE)
    t0 = host.clock.now_ns
    manager.fault_in(region, 10, charge_time=False)
    assert host.clock.now_ns == t0
    assert region.resident_pages == 10


def test_release_region_frees_pages(manager):
    region = manager.create_region("e1", 32 * PAGE_SIZE)
    manager.fault_in(region, 10)
    manager.release_region("e1")
    assert manager.resident_pages == 0


def test_management_cycles_grow_with_residency(manager):
    small = manager.create_region("small", 64 * PAGE_SIZE)
    manager.fault_in(small, 2)
    large = manager.create_region("large", 64 * PAGE_SIZE)
    manager.fault_in(large, 60)
    small_cost = sum(manager.management_cycles(small, "t") for _ in range(50)) / 50
    large_cost = sum(manager.management_cycles(large, "t") for _ in range(50)) / 50
    assert large_cost > small_cost
