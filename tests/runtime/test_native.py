"""Native runtime: costs, secrets exposure, lifecycle."""

import json

import pytest

from repro.runtime.base import SYSCALL_HOST_CYCLES, syscall_host_cycles
from repro.runtime.native import PRIVILEGED_ACTORS, NativeRuntime


@pytest.fixture
def runtime(host):
    return NativeRuntime("module", host)


def test_not_shielded(runtime):
    assert not runtime.shielded
    assert runtime.sgx_stats is None


def test_compute_advances_clock(runtime, host):
    t0 = host.clock.now_ns
    runtime.compute(2_400)
    assert host.clock.now_ns - t0 == 1_000  # 1 us at 2.4 GHz


def test_syscall_costs_trap_plus_kernel_work(runtime, host):
    t0 = host.clock.now_ns
    runtime.syscall("epoll_wait")
    elapsed = host.clock.now_ns - t0
    assert 1_000 < elapsed < 4_000  # ~1.7 us


def test_syscall_payload_bytes_cost_extra(runtime, host):
    t0 = host.clock.now_ns
    runtime.syscall("recvmsg", bytes_in=0)
    small = host.clock.now_ns - t0
    t0 = host.clock.now_ns
    runtime.syscall("recvmsg", bytes_in=64 * 1024)
    large = host.clock.now_ns - t0
    assert large > small


def test_syscall_cost_table_lookup():
    assert syscall_host_cycles("epoll_wait") == SYSCALL_HOST_CYCLES["epoll_wait"]
    # Unknown syscalls fall back to a default rather than failing.
    assert syscall_host_cycles("obscure_call") > 0


def test_idle_advances_clock(runtime, host):
    runtime.idle(1.5)
    assert host.clock.now_ns == pytest.approx(1.5e9)


def test_idle_without_clock_advance(runtime, host):
    runtime.idle(1.5, advance_clock=False)
    assert host.clock.now_ns == 0


def test_secret_roundtrip(runtime):
    runtime.store_secret("k", b"\x01\x02")
    assert runtime.load_secret("k") == b"\x01\x02"
    with pytest.raises(KeyError):
        runtime.load_secret("missing")


@pytest.mark.parametrize("actor", sorted(PRIVILEGED_ACTORS))
def test_privileged_actors_see_plaintext(runtime, actor):
    runtime.store_secret("kausf", bytes(range(32)))
    dump = json.loads(runtime.memory_view(actor).decode())
    assert dump["kausf"] == bytes(range(32)).hex()


def test_unprivileged_actor_sees_nothing(runtime):
    runtime.store_secret("kausf", bytes(range(32)))
    assert runtime.memory_view("random-neighbour") == b""


def test_shutdown_blocks_further_use(runtime):
    runtime.shutdown()
    with pytest.raises(RuntimeError):
        runtime.compute(1)
    with pytest.raises(RuntimeError):
        runtime.syscall("read")


def test_shutdown_scrubs_secrets(runtime):
    runtime.store_secret("k", b"x")
    runtime.shutdown()
    assert runtime._secrets == {}
