"""Batched hot-path rewrites against scalar references (hypothesis).

The profiler-guided rewrite turned several per-block / per-call loops
into single bulk passes: MILENAGE ``generate``/``f2345`` run all post-TEMP
block encryptions as one ECB batch, AES-CMAC folds its chain into one
zero-IV CBC pass, and the SBI codec serializes flat bodies without
``json.dumps``.  Each rewrite must be **byte-for-byte** identical to the
scalar form — these tests pin that by re-deriving every output the slow,
literal way (per-block encryptions, spec-order rotations, ``json``
itself) and comparing exact bytes.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES128, aes128_encrypt_block
from repro.crypto.cmac import aes_cmac
from repro.crypto.kdf import ts33220_kdf
from repro.crypto.milenage import Milenage
from repro.net.codec import dumps_flat, loads_object

key16 = st.binary(min_size=16, max_size=16)
block16 = st.binary(min_size=16, max_size=16)


# --- scalar MILENAGE reference (TS 35.206 §4.1, one encryption per f) --


def _xor16(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def _rot(block: bytes, bits: int) -> bytes:
    shift = (bits // 8) % 16
    return block[shift:] + block[:shift]


def _reference_milenage(k, opc, rand, sqn, amf):
    """Literal per-function evaluation: six separate block encryptions."""
    temp = aes128_encrypt_block(k, _xor16(rand, opc))
    in1 = _xor16(sqn + amf + sqn + amf, opc)
    out1 = _xor16(
        aes128_encrypt_block(k, _xor16(temp, _rot(in1, 64))), opc
    )

    outs = []
    for r, c in ((0, 1), (32, 2), (64, 4), (96, 8)):
        block = _rot(_xor16(temp, opc), r)
        block = block[:15] + bytes([block[15] ^ c])
        outs.append(_xor16(aes128_encrypt_block(k, block), opc))
    out2, out3, out4, out5 = outs
    return {
        "mac_a": out1[:8],
        "mac_s": out1[8:],
        "res": out2[8:16],
        "ck": out3,
        "ik": out4,
        "ak": out2[:6],
        "ak_star": out5[:6],
    }


@settings(max_examples=60, deadline=None)
@given(
    k=key16,
    opc=key16,
    rand=block16,
    sqn=st.binary(min_size=6, max_size=6),
    amf=st.binary(min_size=2, max_size=2),
)
def test_batched_generate_matches_scalar_reference(k, opc, rand, sqn, amf):
    ref = _reference_milenage(k, opc, rand, sqn, amf)
    vec = Milenage(k, opc).generate(rand, sqn, amf)
    assert vec.mac_a == ref["mac_a"]
    assert vec.mac_s == ref["mac_s"]
    assert vec.res == ref["res"]
    assert vec.ck == ref["ck"]
    assert vec.ik == ref["ik"]
    assert vec.ak == ref["ak"]
    assert vec.ak_star == ref["ak_star"]


@settings(max_examples=60, deadline=None)
@given(k=key16, opc=key16, rand=block16)
def test_batched_f2345_matches_scalar_reference(k, opc, rand):
    ref = _reference_milenage(k, opc, rand, bytes(6), bytes(2))
    vec = Milenage(k, opc).f2345(rand)
    assert (vec.res, vec.ck, vec.ik, vec.ak, vec.ak_star) == (
        ref["res"], ref["ck"], ref["ik"], ref["ak"], ref["ak_star"]
    )


@settings(max_examples=60, deadline=None)
@given(
    k=key16,
    opc=key16,
    rand=block16,
    sqn=st.binary(min_size=6, max_size=6),
    amf=st.binary(min_size=2, max_size=2),
)
def test_f1_agrees_with_generate_and_reference(k, opc, rand, sqn, amf):
    ref = _reference_milenage(k, opc, rand, sqn, amf)
    mil = Milenage(k, opc)
    mac_a, mac_s = mil.f1(rand, sqn, amf)
    assert (mac_a, mac_s) == (ref["mac_a"], ref["mac_s"])
    vec = mil.generate(rand, sqn, amf)
    assert (vec.mac_a, vec.mac_s) == (mac_a, mac_s)


# --- KDF vs an explicit HMAC-object reference --------------------------


@settings(max_examples=60, deadline=None)
@given(
    key=st.binary(min_size=16, max_size=64),
    fc=st.integers(min_value=0, max_value=0xFF),
    params=st.lists(st.binary(max_size=64), max_size=4),
)
def test_kdf_matches_hmac_object_reference(key, fc, params):
    import hashlib
    import hmac as hmac_mod

    s = bytes([fc])
    for p in params:
        s += p + len(p).to_bytes(2, "big")
    expected = hmac_mod.new(key, s, hashlib.sha256).digest()
    assert ts33220_kdf(key, fc, params) == expected


# --- CBC-MAC / CMAC vs per-block encrypt chains ------------------------


@settings(max_examples=60, deadline=None)
@given(key=key16, nblocks=st.integers(min_value=1, max_value=8), data=st.data())
def test_cbc_mac_matches_per_block_chain(key, nblocks, data):
    message = data.draw(
        st.binary(min_size=16 * nblocks, max_size=16 * nblocks)
    )
    cipher = AES128(key)
    x = bytes(16)
    for i in range(nblocks):
        x = cipher.encrypt_block(_xor16(x, message[i * 16 : (i + 1) * 16]))
    assert cipher.cbc_mac(message) == x


@settings(max_examples=60, deadline=None)
@given(key=key16, message=st.binary(max_size=100))
def test_cmac_matches_rfc4493_step_by_step(key, message):
    # RFC 4493 §2.4, literally: subkeys from E_K(0), XOR K1/K2 into the
    # last (padded) block, then the per-block CBC chain.
    cipher = AES128(key)
    l = cipher.encrypt_block(bytes(16))

    def _shift(b):
        v = int.from_bytes(b, "big") << 1
        out = (v & ((1 << 128) - 1)).to_bytes(16, "big")
        if v >> 128:
            out = out[:15] + bytes([out[15] ^ 0x87])
        return out

    k1 = _shift(l)
    k2 = _shift(k1)
    n = max(1, (len(message) + 15) // 16)
    if message and len(message) % 16 == 0:
        last = _xor16(message[-16:], k1)
    else:
        tail = message[(n - 1) * 16 :]
        last = _xor16(tail + b"\x80" + bytes(15 - len(tail)), k2)
    x = bytes(16)
    for i in range(n - 1):
        x = cipher.encrypt_block(_xor16(x, message[i * 16 : (i + 1) * 16]))
    x = cipher.encrypt_block(_xor16(x, last))
    assert aes_cmac(key, message) == x


# --- SBI codec vs json -------------------------------------------------

_simple_text = st.text(
    alphabet=st.characters(min_codepoint=0x20, max_codepoint=0x7E),
    max_size=24,
)
_flat_values = st.one_of(
    _simple_text,
    st.integers(min_value=-(2**53), max_value=2**53),
    st.booleans(),
    st.none(),
)


@settings(max_examples=100, deadline=None)
@given(payload=st.dictionaries(_simple_text, _flat_values, max_size=8))
def test_dumps_flat_is_byte_identical_to_json(payload):
    expected = json.dumps(payload, sort_keys=True).encode()
    body = dumps_flat(payload)
    assert body == expected
    assert loads_object(body) == payload


@settings(max_examples=50, deadline=None)
@given(
    payload=st.dictionaries(
        st.text(max_size=8),
        st.one_of(
            st.text(max_size=16),
            st.floats(allow_nan=False, allow_infinity=False),
            st.lists(st.integers(), max_size=3),
            st.dictionaries(st.text(max_size=4), st.integers(), max_size=2),
        ),
        max_size=6,
    )
)
def test_dumps_flat_fallback_still_matches_json(payload):
    # Rich payloads (escapes, non-ASCII keys, floats, nesting) must take
    # the json fallback and stay byte-identical too.
    assert dumps_flat(payload) == json.dumps(payload, sort_keys=True).encode()
