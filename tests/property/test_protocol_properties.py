"""Property-based protocol invariants: SQN window, NAS MACs, flows."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.aka import generate_he_av
from repro.crypto.cmac import nia2_mac
from repro.crypto.suci import Supi
from repro.ran.usim import Usim

SNN = b"5G:mnc001.mcc001.3gppnetwork.org"
K = bytes(range(16))
OPC = bytes(range(16, 32))

key16 = st.binary(min_size=16, max_size=16)


@given(
    sqn_ms=st.integers(min_value=0, max_value=1 << 44),
    offset=st.integers(min_value=-(1 << 30), max_value=1 << 30),
)
@settings(max_examples=40, deadline=None)
def test_sqn_window_accepts_exactly_the_spec_range(sqn_ms, offset):
    """Accept iff sqn_ms < SQN <= sqn_ms + DELTA (TS 33.102 Annex C)."""
    sqn = sqn_ms + offset
    assume(0 < sqn < 1 << 48)
    usim = Usim(supi=Supi("001", "01", "0000000001"), k=K, opc=OPC, sqn_ms=sqn_ms)
    he_av = generate_he_av(
        k=K, opc=OPC, rand=bytes(16), sqn=sqn.to_bytes(6, "big"), snn=SNN
    )
    result = usim.authenticate(he_av.rand, he_av.autn, SNN)
    should_accept = sqn_ms < sqn <= sqn_ms + Usim.SQN_DELTA
    assert result.success == should_accept
    if not should_accept:
        assert result.cause == "SYNCH_FAILURE"
        assert result.auts is not None


@given(
    key=key16,
    count=st.integers(min_value=0, max_value=0xFFFF),
    message=st.binary(max_size=64),
)
@settings(max_examples=30, deadline=None)
def test_nas_mac_replay_and_reflection_resistance(key, count, message):
    """Same message at a different COUNT, or reflected in the other
    direction, never carries the same MAC."""
    mac = nia2_mac(key, count, 1, 0, message)
    assert nia2_mac(key, count + 1, 1, 0, message) != mac
    assert nia2_mac(key, count, 1, 1, message) != mac


@given(seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=8, deadline=None)
def test_registration_succeeds_for_any_seed(seed):
    """The end-to-end flow is seed-independent: randomness changes RAND,
    keys and jitter, never the outcome."""
    from repro.testbed import Testbed, TestbedConfig

    testbed = Testbed.build(TestbedConfig(isolation=None, seed=seed))
    ue = testbed.add_subscriber()
    outcome = testbed.register(ue, establish_session=False)
    assert outcome.success
    assert ue.kamf is not None


@given(
    k=key16,
    opc=key16,
    sqn=st.integers(min_value=1, max_value=1 << 40),
)
@settings(max_examples=20, deadline=None)
def test_xres_star_unique_per_challenge(k, opc, sqn):
    """Two challenges with different RANDs never share XRES* (would allow
    cross-challenge replay)."""
    a = generate_he_av(k=k, opc=opc, rand=bytes(16), sqn=sqn.to_bytes(6, "big"), snn=SNN)
    b = generate_he_av(
        k=k, opc=opc, rand=bytes(15) + b"\x01", sqn=sqn.to_bytes(6, "big"), snn=SNN
    )
    assert a.xres_star != b.xres_star
    assert a.kausf != b.kausf
