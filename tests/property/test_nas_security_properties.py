"""Property-based tests over the secure NAS channel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fivegc.messages import (
    PduSessionEstablishmentAccept,
    PduSessionEstablishmentRequest,
)
from repro.fivegc.nas_security import (
    DOWNLINK,
    UPLINK,
    NasSecurityError,
    ProtectedNasPdu,
    SecureNasChannel,
)

key16 = st.binary(min_size=16, max_size=16)

messages = st.one_of(
    st.builds(
        PduSessionEstablishmentRequest,
        session_id=st.integers(min_value=1, max_value=15),
        dnn=st.text(alphabet="abcdefghij.-", min_size=1, max_size=20),
    ),
    st.builds(
        PduSessionEstablishmentAccept,
        session_id=st.integers(min_value=1, max_value=15),
        ue_address=st.from_regex(r"10\.0\.[0-9]{1,3}\.[0-9]{1,3}", fullmatch=True),
    ),
)


@given(k_enc=key16, k_int=key16, sequence=st.lists(messages, min_size=1, max_size=10))
@settings(max_examples=25, deadline=None)
def test_any_message_sequence_roundtrips(k_enc, k_int, sequence):
    ue = SecureNasChannel(k_enc, k_int, bearer=2, send_direction=UPLINK)
    amf = SecureNasChannel(k_enc, k_int, bearer=2, send_direction=DOWNLINK)
    for message in sequence:
        assert amf.unprotect(ue.protect(message)) == message


@given(k_enc=key16, k_int=key16, message=messages,
       flip_at=st.integers(min_value=0, max_value=200))
@settings(max_examples=30, deadline=None)
def test_any_single_bit_flip_is_caught(k_enc, k_int, message, flip_at):
    ue = SecureNasChannel(k_enc, k_int, bearer=2, send_direction=UPLINK)
    amf = SecureNasChannel(k_enc, k_int, bearer=2, send_direction=DOWNLINK)
    pdu = ue.protect(message)
    blob = bytearray(pdu.ciphertext + pdu.mac)
    index = flip_at % len(blob)
    blob[index] ^= 0x01
    tampered = ProtectedNasPdu(
        count=pdu.count,
        direction=pdu.direction,
        ciphertext=bytes(blob[:-4]),
        mac=bytes(blob[-4:]),
    )
    try:
        amf.unprotect(tampered)
        assert False, "tampered PDU accepted"
    except NasSecurityError:
        pass


@given(k_enc=key16, k_int=key16, n=st.integers(min_value=2, max_value=8))
@settings(max_examples=20, deadline=None)
def test_out_of_order_delivery_blocks_older_counts(k_enc, k_int, n):
    """Delivering the newest PDU first makes all older ones replays."""
    ue = SecureNasChannel(k_enc, k_int, bearer=2, send_direction=UPLINK)
    amf = SecureNasChannel(k_enc, k_int, bearer=2, send_direction=DOWNLINK)
    pdus = [ue.protect(PduSessionEstablishmentRequest(session_id=1)) for _ in range(n)]
    amf.unprotect(pdus[-1])
    for stale in pdus[:-1]:
        try:
            amf.unprotect(stale)
            assert False, "stale COUNT accepted"
        except NasSecurityError:
            pass
