"""T-table AES against an independent schoolbook reference (hypothesis).

The production cipher in :mod:`repro.crypto.aes` is a T-table
implementation: SubBytes/ShiftRows/MixColumns fused into four 32-bit
lookup tables.  This module re-implements AES-128 the slow, literal
FIPS-197 way — S-box built from the GF(2^8) inverse plus affine
transform, byte-level state matrix, explicit round steps — and checks
the two agree on random keys and blocks.  Nothing here is shared with
the module under test except the test vectors' algebra itself.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES128, aes128_ctr

# --- schoolbook reference implementation ------------------------------


def _gmul(a: int, b: int) -> int:
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        carry = a & 0x80
        a = (a << 1) & 0xFF
        if carry:
            a ^= 0x1B
        b >>= 1
    return result


def _ginv(a: int) -> int:
    if a == 0:
        return 0
    return next(x for x in range(1, 256) if _gmul(a, x) == 1)


def _affine(x: int) -> int:
    rot = lambda v, n: ((v << n) | (v >> (8 - n))) & 0xFF
    return x ^ rot(x, 1) ^ rot(x, 2) ^ rot(x, 3) ^ rot(x, 4) ^ 0x63


_REF_SBOX = [_affine(_ginv(a)) for a in range(256)]


def _expand_key(key: bytes) -> list:
    words = [list(key[4 * i : 4 * i + 4]) for i in range(4)]
    rcon = 1
    for i in range(4, 44):
        word = list(words[i - 1])
        if i % 4 == 0:
            word = word[1:] + word[:1]
            word = [_REF_SBOX[b] for b in word]
            word[0] ^= rcon
            rcon = _gmul(rcon, 2)
        words.append([a ^ b for a, b in zip(word, words[i - 4])])
    return [sum(words[4 * r : 4 * r + 4], []) for r in range(11)]


def _sub_bytes(state: list) -> list:
    return [_REF_SBOX[b] for b in state]


def _shift_rows(state: list) -> list:
    # Column-major state: byte (row, col) lives at state[4 * col + row].
    out = list(state)
    for row in range(1, 4):
        for col in range(4):
            out[4 * col + row] = state[4 * ((col + row) % 4) + row]
    return out


def _mix_columns(state: list) -> list:
    out = []
    for col in range(4):
        a = state[4 * col : 4 * col + 4]
        out.extend(
            [
                _gmul(a[0], 2) ^ _gmul(a[1], 3) ^ a[2] ^ a[3],
                a[0] ^ _gmul(a[1], 2) ^ _gmul(a[2], 3) ^ a[3],
                a[0] ^ a[1] ^ _gmul(a[2], 2) ^ _gmul(a[3], 3),
                _gmul(a[0], 3) ^ a[1] ^ a[2] ^ _gmul(a[3], 2),
            ]
        )
    return out


def ref_encrypt_block(key: bytes, block: bytes) -> bytes:
    round_keys = _expand_key(key)
    state = [b ^ k for b, k in zip(block, round_keys[0])]
    for rnd in range(1, 10):
        state = _mix_columns(_shift_rows(_sub_bytes(state)))
        state = [b ^ k for b, k in zip(state, round_keys[rnd])]
    state = _shift_rows(_sub_bytes(state))
    return bytes(b ^ k for b, k in zip(state, round_keys[10]))


def ref_ctr(key: bytes, nonce: bytes, data: bytes) -> bytes:
    counter = int.from_bytes(nonce, "big")
    keystream = b""
    while len(keystream) < len(data):
        block = (counter % (1 << 128)).to_bytes(16, "big")
        keystream += ref_encrypt_block(key, block)
        counter += 1
    return bytes(d ^ k for d, k in zip(data, keystream))


# --- properties -------------------------------------------------------

keys = st.binary(min_size=16, max_size=16)
blocks = st.binary(min_size=16, max_size=16)
nonces = st.binary(min_size=16, max_size=16)
payloads = st.binary(min_size=0, max_size=100)


def test_reference_sbox_is_the_fips_sbox():
    # Spot anchors from FIPS-197 Figure 7.
    assert _REF_SBOX[0x00] == 0x63
    assert _REF_SBOX[0x53] == 0xED
    assert _REF_SBOX[0xFF] == 0x16


def test_reference_matches_appendix_b():
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
    assert ref_encrypt_block(key, plaintext).hex() == (
        "3925841d02dc09fbdc118597196a0b32"
    )


@settings(max_examples=40, deadline=None)
@given(key=keys, block=blocks)
def test_ttable_encrypt_matches_schoolbook(key, block):
    assert AES128(key).encrypt_block(block) == ref_encrypt_block(key, block)


@settings(max_examples=40, deadline=None)
@given(key=keys, block=blocks)
def test_ttable_decrypt_inverts_schoolbook(key, block):
    ciphertext = ref_encrypt_block(key, block)
    assert AES128(key).decrypt_block(ciphertext) == block


@settings(max_examples=25, deadline=None)
@given(key=keys, nonce=nonces, data=payloads)
def test_ctr_matches_schoolbook_keystream(key, nonce, data):
    assert aes128_ctr(key, nonce, data) == ref_ctr(key, nonce, data)


@settings(max_examples=40, deadline=None)
@given(key=keys, nonce=nonces, data=payloads)
def test_ctr_roundtrip(key, nonce, data):
    assert aes128_ctr(key, nonce, aes128_ctr(key, nonce, data)) == data


# --- bulk keystream vs per-block (the wire-speed fast path) -----------
#
# ``AES128.ctr``/``keystream`` generate the whole keystream in one bulk
# pass (multi-block T-table loop, or the libcrypto backend when present).
# These properties pin the bulk output to the one-ECB-call-per-block
# definition of CTR mode, including non-block-aligned tails and counter
# wraparound at 2^128.

_MASK128 = (1 << 128) - 1

# Lengths biased toward the interesting edges: empty, sub-block, exact
# blocks, and off-by-one around block boundaries.
lengths = st.one_of(
    st.sampled_from([0, 1, 15, 16, 17, 31, 32, 33, 100, 255, 512]),
    st.integers(min_value=0, max_value=600),
)


def _per_block_ctr(cipher, nonce, data):
    counter = int.from_bytes(nonce, "big")
    keystream = b""
    while len(keystream) < len(data):
        keystream += cipher._pure_encrypt_block(counter.to_bytes(16, "big"))
        counter = (counter + 1) & _MASK128
    return bytes(d ^ k for d, k in zip(data, keystream))


@settings(max_examples=60, deadline=None)
@given(key=keys, nonce=nonces, n=lengths, data=st.data())
def test_bulk_ctr_matches_per_block(key, nonce, n, data):
    payload = data.draw(st.binary(min_size=n, max_size=n))
    cipher = AES128(key)
    assert cipher.ctr(nonce, payload) == _per_block_ctr(cipher, nonce, payload)


@settings(max_examples=40, deadline=None)
@given(key=keys, nonce=nonces, n=lengths)
def test_bulk_keystream_is_ctr_of_zeros(key, nonce, n):
    cipher = AES128(key)
    keystream = cipher.keystream(nonce, n)
    assert len(keystream) == n
    assert keystream == cipher.ctr(nonce, bytes(n))


@settings(max_examples=20, deadline=None)
@given(key=keys, n=st.integers(min_value=1, max_value=80))
def test_bulk_ctr_counter_wraparound(key, n):
    # Start the counter 2 short of 2^128 so the keystream crosses the wrap.
    nonce = (_MASK128 - 1).to_bytes(16, "big")
    cipher = AES128(key)
    payload = bytes(n)
    assert cipher.ctr(nonce, payload) == _per_block_ctr(cipher, nonce, payload)


@settings(max_examples=30, deadline=None)
@given(key=keys, nonce=nonces, n=lengths)
def test_pure_bulk_keystream_matches_per_block(key, nonce, n):
    # The pure multi-block generator itself (bypassing any hw backend).
    cipher = AES128(key)
    nblocks = (n + 15) // 16
    stream = cipher._keystream_int(int.from_bytes(nonce, "big"), nblocks)
    expected = _per_block_ctr(cipher, nonce, bytes(nblocks * 16))
    assert stream.to_bytes(nblocks * 16, "big") == expected
