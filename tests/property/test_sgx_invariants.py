"""Property-based SGX invariants: transitions balance, EPC bounds, sealing."""

import hashlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.host import paper_testbed_host
from repro.sgx.enclave import Enclave, EnclaveBuildInfo
from repro.sgx.epc import PAGE_SIZE, EpcManager
from repro.sgx.measurement import EnclaveMeasurement, MeasurementBuilder, sign_enclave
from repro.sgx.sealing import seal, unseal


def build_enclave(seed=0, threads=4):
    host = paper_testbed_host(seed=seed)
    epc = EpcManager(host.total_epc_bytes, host.cpu, host.rng)
    measurement = EnclaveMeasurement(mrenclave=hashlib.sha256(b"prop").digest())
    build = EnclaveBuildInfo(
        name="prop-enclave",
        enclave_size_bytes=64 * 1024 * 1024,
        max_threads=threads,
        measured_bytes=1024 * 1024,
        trusted_files_bytes=1024 * 1024,
        heap_bytes=32 * 1024 * 1024,
        sigstruct=sign_enclave(measurement, b"prop-key"),
    )
    enclave = Enclave(host, build, epc)
    enclave.load()
    return enclave


# Each op: (kind, payload) where kind 0=ecall with n ocalls, 1=idle.
operations = st.lists(
    st.tuples(st.integers(min_value=0, max_value=1), st.integers(min_value=0, max_value=6)),
    min_size=1,
    max_size=20,
)


@given(ops=operations)
@settings(max_examples=20, deadline=None)
def test_transitions_always_balance(ops):
    """After any sequence of completed ECALLs (with nested OCALLs) and
    idle windows: EENTERs == EEXITs, and AEX re-entries are ERESUMEs."""
    enclave = build_enclave()
    baseline = enclave.stats.snapshot()
    for kind, amount in ops:
        if kind == 0:
            with enclave.ecall("op") as ctx:
                for _ in range(amount):
                    ctx.ocall("read", bytes_in=64)
        else:
            enclave.run_idle(float(amount))
    delta = enclave.stats.delta(baseline)
    assert delta.eenters == delta.eexits
    assert delta.eresumes == delta.aexs
    assert delta.ocalls == sum(n for kind, n in ops if kind == 0)


@given(faults=st.lists(st.integers(min_value=1, max_value=5000), min_size=1, max_size=12))
@settings(max_examples=20, deadline=None)
def test_epc_residency_never_exceeds_capacity(faults):
    host = paper_testbed_host(seed=3)
    manager = EpcManager(4096 * PAGE_SIZE, host.cpu, host.rng)
    regions = [
        manager.create_region(f"e{i}", 5000 * PAGE_SIZE) for i in range(3)
    ]
    for index, pages in enumerate(faults):
        manager.fault_in(regions[index % 3], pages)
        assert manager.resident_pages <= manager.capacity_pages
        for region in regions:
            assert 0 <= region.resident_pages <= region.total_pages


@given(secret=st.binary(max_size=128))
@settings(max_examples=20, deadline=None)
def test_sealing_roundtrip_any_secret(secret):
    enclave = build_enclave()
    assert unseal(enclave, seal(enclave, secret)) == secret


@given(
    chunks=st.lists(st.binary(min_size=1, max_size=32), min_size=1, max_size=8),
)
@settings(max_examples=25, deadline=None)
def test_measurement_depends_on_every_chunk(chunks):
    def measure(chunk_list):
        builder = MeasurementBuilder()
        builder.ecreate(1 << 20)
        for offset, chunk in enumerate(chunk_list):
            builder.eadd(offset * 4096, flags="rx")
            builder.eextend(offset * 4096, chunk)
        return builder.finalize().mrenclave

    original = measure(chunks)
    mutated = list(chunks)
    mutated[0] = mutated[0][:-1] + bytes([mutated[0][-1] ^ 1])
    assert measure(mutated) != original


@given(windows=st.lists(st.floats(min_value=0.1, max_value=30.0), min_size=1, max_size=6))
@settings(max_examples=15, deadline=None)
def test_aex_rate_is_window_additive(windows):
    """AEX counts accumulate ~linearly: the total over split windows is
    close to one window of the summed duration."""
    split = build_enclave(seed=10)
    for window in windows:
        split.run_idle(window)
    combined = build_enclave(seed=11)
    combined.run_idle(sum(windows))
    assert abs(split.stats.aexs - combined.stats.aexs) <= 0.02 * combined.stats.aexs + len(windows)
