"""Property-based tests over the cryptographic core (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aka import generate_he_av
from repro.crypto.aes import aes128_ctr, aes128_decrypt_block, aes128_encrypt_block
from repro.crypto.cmac import aes_cmac
from repro.crypto.kdf import derive_hxres_star, derive_res_star, ts33220_kdf
from repro.crypto.milenage import Milenage
from repro.crypto.suci import (
    EciesProfileA,
    Supi,
    conceal_supi,
    deconceal_suci,
    x25519,
    x25519_public_key,
)
from repro.crypto.tls import establish_session
from repro.ran.usim import Usim, verify_auts

key16 = st.binary(min_size=16, max_size=16)
block16 = st.binary(min_size=16, max_size=16)
key32 = st.binary(min_size=32, max_size=32)
sqn6 = st.integers(min_value=1, max_value=(1 << 48) - 1)


@given(key=key16, block=block16)
@settings(max_examples=30, deadline=None)
def test_aes_decrypt_inverts_encrypt(key, block):
    assert aes128_decrypt_block(key, aes128_encrypt_block(key, block)) == block


@given(key=key16, nonce=block16, data=st.binary(max_size=200))
@settings(max_examples=30, deadline=None)
def test_ctr_is_an_involution(key, nonce, data):
    assert aes128_ctr(key, nonce, aes128_ctr(key, nonce, data)) == data


@given(key=key16, a=st.binary(max_size=100), b=st.binary(max_size=100))
@settings(max_examples=30, deadline=None)
def test_cmac_distinguishes_messages(key, a, b):
    if a != b:
        assert aes_cmac(key, a) != aes_cmac(key, b)


@given(key=key32, p0=st.binary(max_size=40), p1=st.binary(max_size=40))
@settings(max_examples=30, deadline=None)
def test_kdf_framing_is_unambiguous(key, p0, p1):
    """Splitting the same bytes differently must change the derivation
    (the Li length fields prevent parameter-boundary confusion)."""
    if p0 + p1 and p0 != p0 + p1:
        assert ts33220_kdf(key, 0x6A, [p0, p1]) != ts33220_kdf(key, 0x6A, [p0 + p1, b""])


@given(a=key32, b=key32)
@settings(max_examples=15, deadline=None)
def test_x25519_diffie_hellman_always_agrees(a, b):
    assert x25519(a, x25519_public_key(b)) == x25519(b, x25519_public_key(a))


@given(
    msin=st.text(alphabet="0123456789", min_size=5, max_size=10),
    hn_priv=key32,
    eph=key32,
)
@settings(max_examples=20, deadline=None)
def test_suci_roundtrip_any_subscriber(msin, hn_priv, eph):
    supi = Supi(mcc="001", mnc="01", msin=msin)
    suci = conceal_supi(supi, x25519_public_key(hn_priv), eph)
    assert deconceal_suci(suci, hn_priv) == supi
    assert msin.encode() not in suci.scheme_output


@given(plaintext=st.binary(min_size=1, max_size=64), hn_priv=key32, eph=key32,
       flip=st.integers(min_value=0, max_value=7))
@settings(max_examples=20, deadline=None)
def test_ecies_rejects_any_tag_tamper(plaintext, hn_priv, eph, flip):
    blob = bytearray(EciesProfileA.encrypt(plaintext, x25519_public_key(hn_priv), eph))
    blob[-1 - flip] ^= 0x01
    try:
        EciesProfileA.decrypt(bytes(blob), hn_priv)
        assert False, "tampered blob accepted"
    except ValueError:
        pass


@given(k=key16, opc=key16, rand=block16, sqn=sqn6)
@settings(max_examples=25, deadline=None)
def test_ue_and_network_always_agree(k, opc, rand, sqn):
    """The fundamental AKA property: for any credentials and challenge,
    the USIM accepts the network's AUTN and derives the same RES*/K_AUSF."""
    snn = b"5G:mnc001.mcc001.3gppnetwork.org"
    he_av = generate_he_av(k=k, opc=opc, rand=rand, sqn=sqn.to_bytes(6, "big"), snn=snn)
    usim = Usim(supi=Supi("001", "01", "0000000001"), k=k, opc=opc, sqn_ms=sqn - 1)
    result = usim.authenticate(he_av.rand, he_av.autn, snn)
    assert result.success
    assert result.res_star == he_av.xres_star
    assert result.kausf == he_av.kausf


@given(k=key16, opc=key16, rand=block16, sqn=sqn6,
       position=st.integers(min_value=0, max_value=15))
@settings(max_examples=25, deadline=None)
def test_any_autn_tamper_rejected(k, opc, rand, sqn, position):
    snn = b"5G:mnc001.mcc001.3gppnetwork.org"
    he_av = generate_he_av(k=k, opc=opc, rand=rand, sqn=sqn.to_bytes(6, "big"), snn=snn)
    tampered = bytearray(he_av.autn)
    tampered[position] ^= 0x01
    usim = Usim(supi=Supi("001", "01", "0000000001"), k=k, opc=opc, sqn_ms=sqn - 1)
    result = usim.authenticate(he_av.rand, bytes(tampered), snn)
    # A flip in SQN⊕AK or AMF desynchronises MAC; a flip in MAC fails
    # directly.  Success is never possible.
    assert not result.success


@given(k=key16, opc=key16, rand=block16, sqn_ms=st.integers(min_value=0, max_value=(1 << 48) - 1))
@settings(max_examples=25, deadline=None)
def test_auts_always_recovers_sqn_ms(k, opc, rand, sqn_ms):
    usim = Usim(supi=Supi("001", "01", "0000000001"), k=k, opc=opc, sqn_ms=sqn_ms)
    auts = usim._build_auts(rand)
    assert verify_auts(k, opc, rand, auts) == sqn_ms


@given(rand=block16, res=st.binary(min_size=8, max_size=8), ck=key16, ik=key16)
@settings(max_examples=25, deadline=None)
def test_hxres_star_links_res_star(rand, res, ck, ik):
    snn = b"5G:mnc001.mcc001.3gppnetwork.org"
    res_star = derive_res_star(ck, ik, snn, rand, res)
    hxres = derive_hxres_star(rand, res_star)
    assert derive_hxres_star(rand, res_star) == hxres
    assert len(hxres) == 16


@given(payloads=st.lists(st.binary(max_size=300), min_size=1, max_size=8))
@settings(max_examples=25, deadline=None)
def test_tls_stream_roundtrip(payloads):
    client, server = establish_session("c", "s", b"secret")
    for payload in payloads:
        assert server.unprotect(client.protect(payload)) == payload
