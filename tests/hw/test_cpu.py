"""CPU model: cycle accounting and conversions."""

import pytest

from repro.hw.cpu import XEON_SILVER_4314, Cpu, CpuSpec
from repro.sim.clock import SimClock


def test_paper_cpu_spec():
    assert XEON_SILVER_4314.frequency_hz == 2.40e9
    assert XEON_SILVER_4314.sgx_version == 2
    assert XEON_SILVER_4314.sgx_capable
    assert XEON_SILVER_4314.max_epc_bytes == 8 * 1024**3


def test_spend_cycles_advances_clock():
    clock = SimClock()
    cpu = Cpu(XEON_SILVER_4314, clock)
    cpu.spend_cycles(2_400)  # 1 us at 2.4 GHz
    assert clock.now_ns == 1_000


def test_spend_cycles_accumulates_counter():
    cpu = Cpu(XEON_SILVER_4314, SimClock())
    cpu.spend_cycles(100)
    cpu.spend_cycles(200)
    assert cpu.cycles_spent == 300


def test_spend_cycles_rejects_negative():
    cpu = Cpu(XEON_SILVER_4314, SimClock())
    with pytest.raises(ValueError):
        cpu.spend_cycles(-1)


def test_cycles_ns_conversions_are_inverse():
    cpu = Cpu(XEON_SILVER_4314, SimClock())
    assert cpu.ns_to_cycles(cpu.cycles_to_ns(12_345)) == pytest.approx(12_345)


def test_non_sgx_cpu():
    spec = CpuSpec("old-xeon", 2.0e9, 8, sgx_version=0, max_epc_bytes=0)
    assert not spec.sgx_capable
