"""Physical host assembly (the paper's Dell PowerEdge R450)."""

import pytest

from repro.hw.cpu import CpuSpec
from repro.hw.host import PhysicalHost, paper_testbed_host
from repro.sim.clock import SimClock
from repro.sim.events import EventLog
from repro.sim.rng import RngService


def test_paper_testbed_shape():
    host = paper_testbed_host()
    assert len(host.cpus) == 2
    assert host.sgx_capable
    assert host.total_epc_bytes == 16 * 1024**3  # 16 GB combined EPC
    assert host.ram is not None
    assert host.ram.capacity_bytes == 512 * 1024**3


def test_primary_cpu_accessor():
    host = paper_testbed_host()
    assert host.cpu is host.cpus[0]


def test_cpu_accessor_raises_without_cpus():
    host = PhysicalHost(
        name="empty", clock=SimClock(), rng=RngService(0), events=EventLog()
    )
    with pytest.raises(RuntimeError):
        host.cpu


def test_seed_controls_rng():
    a = paper_testbed_host(seed=1).rng.stream("x").random()
    b = paper_testbed_host(seed=1).rng.stream("x").random()
    c = paper_testbed_host(seed=2).rng.stream("x").random()
    assert a == b and a != c


def test_non_sgx_host():
    spec = CpuSpec("plain", 2.0e9, 8, sgx_version=0, max_epc_bytes=0)
    host = paper_testbed_host(cpu_spec=spec)
    assert not host.sgx_capable
    assert host.total_epc_bytes == 0


def test_clock_is_shared_between_cpus():
    host = paper_testbed_host()
    host.cpus[0].spend_cycles(2_400)
    host.cpus[1].spend_cycles(2_400)
    assert host.clock.now_ns == 2_000
