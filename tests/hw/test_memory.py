"""RAM regions and PRM carve-out."""

import pytest

from repro.hw.memory import MemoryRegion, OutOfMemoryError, Ram


def test_allocation_accounting():
    region = MemoryRegion("r", 1000)
    region.allocate("a", 400)
    region.allocate("b", 100)
    assert region.used_bytes == 500
    assert region.free_bytes == 500
    assert region.owned_by("a") == 400


def test_allocation_accumulates_per_owner():
    region = MemoryRegion("r", 1000)
    region.allocate("a", 100)
    region.allocate("a", 200)
    assert region.owned_by("a") == 300


def test_over_allocation_raises():
    region = MemoryRegion("r", 100)
    with pytest.raises(OutOfMemoryError):
        region.allocate("a", 101)


def test_negative_allocation_rejected():
    with pytest.raises(ValueError):
        MemoryRegion("r", 100).allocate("a", -1)


def test_release_frees_everything_for_owner():
    region = MemoryRegion("r", 1000)
    region.allocate("a", 300)
    assert region.release("a") == 300
    assert region.free_bytes == 1000
    assert region.release("a") == 0  # idempotent


def test_ram_prm_carveout():
    ram = Ram(capacity_bytes=1024, prm_bytes=256)
    assert ram.general.capacity_bytes == 768
    assert ram.prm.capacity_bytes == 256
    assert ram.prm.encrypted
    assert not ram.general.encrypted
    assert ram.capacity_bytes == 1024


def test_prm_cannot_exceed_ram():
    with pytest.raises(ValueError):
        Ram(capacity_bytes=100, prm_bytes=200)
