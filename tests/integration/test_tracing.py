"""Tracing acceptance: span-derived numbers must equal the recorded ones.

Three invariants anchor the observability subsystem to the paper
artifacts:

1. **Bit-identity of values** — span L_F / L_T / R durations are the
   *same floats* the servers' and clients' metric series record (the
   tracer reads the clock at the same instants ``clock.measure()`` does).
   Trace-derived Fig 9 numbers therefore match the committed results
   exactly, not approximately.
2. **Table III from spans** — counting ``sgx.ocall`` spans reproduces the
   per-module EENTER/EEXIT/OCALL deltas the enclave stats record
   (~90 transitions per request, paper §V-B2).
3. **Zero simulated cost** — with a tracer installed (or disabled), the
   final clock still matches the golden constants: tracing never
   advances simulated time or perturbs an RNG draw.
"""

import pytest

from repro.experiments.harness import warmed_testbed
from repro.obs.trace import Tracer
from repro.testbed import IsolationMode

from tests.integration.test_golden_clocks import (
    SGX_GOLDEN_CLOCKS,
    SGX_GOLDEN_OCALL_EVENTS,
    SGX_GOLDEN_TOTAL_EVENTS,
)


@pytest.fixture(scope="module")
def traced_sgx():
    """Warmed SGX testbed (seed 7) + one traced registration."""
    testbed = warmed_testbed(IsolationMode.SGX, seed=7)
    trace = testbed.trace_registration()
    return testbed, trace


def test_traced_registration_succeeds(traced_sgx):
    _, trace = traced_sgx
    assert trace.outcome.success
    assert trace.root.kind == "registration"


def test_span_lf_lt_bit_identical_to_server_series(traced_sgx):
    testbed, trace = traced_sgx
    for name, module in testbed.paka.modules.items():
        server = module.server
        spans = [
            s for s in trace.root.walk()
            if s.kind == "sbi.server" and s.tags.get("server") == server.name
        ]
        assert len(spans) == trace.breakdown[name]["requests"] == 1
        lt_span = spans[0].child_of_kind("L_T")
        lf_span = lt_span.child_of_kind("L_F")
        # Same float, not approximately the same float.
        assert lf_span.us == list(server.lf_us)[-1]
        assert lt_span.us == list(server.lt_us)[-1]


def test_span_r_bit_identical_to_client_series(traced_sgx):
    testbed, trace = traced_sgx
    for module in testbed.paka.modules.values():
        server_name = module.server.name
        request_spans = [
            s for s in trace.root.walk()
            if s.kind == "sbi.request" and s.tags.get("dst") == server_name
        ]
        assert len(request_spans) == 1
        span = request_spans[0]
        recorded = None
        for nf in (testbed.amf, testbed.ausf, testbed.udm):
            times = nf.client.response_times_by_server.get(server_name)
            if times:
                recorded = times[-1]
        assert span.tags["r_us"] == recorded == span.us


def test_table3_transitions_from_spans_match_stats_delta(traced_sgx):
    _, trace = traced_sgx
    assert set(trace.breakdown) == {"eamf", "eausf", "eudm"}
    for name, row in trace.breakdown.items():
        delta = trace.stats_delta[name]
        assert row["eenters"] == delta.eenters
        assert row["eexits"] == delta.eexits
        assert row["ocalls"] == delta.ocalls
        # The paper's ~90 transitions per AKA request (§V-B2, Table III).
        assert 60 <= row["eenters"] <= 120


def test_ln_is_lt_minus_lf_and_dominated_by_transitions(traced_sgx):
    _, trace = traced_sgx
    for row in trace.breakdown.values():
        assert row["ln_us"] == pytest.approx(row["lt_us"] - row["lf_us"])
        # Fig 9: the shielded L_N exceeds L_F (SGX overhead dominates).
        assert row["ln_us"] > row["lf_us"]


def test_enabled_tracer_keeps_golden_clock():
    """A fully traced run spends exactly the golden simulated nanoseconds."""
    testbed = warmed_testbed(IsolationMode.SGX, seed=7)
    testbed.host.tracer = Tracer(testbed.host.clock)
    try:
        for _ in range(5):
            ue = testbed.add_subscriber()
            outcome = testbed.register(ue, establish_session=False)
            assert outcome.success
    finally:
        testbed.host.tracer = None
    assert testbed.host.clock.now_ns == SGX_GOLDEN_CLOCKS[7]
    assert testbed.host.events.count("sgx.ocall") == SGX_GOLDEN_OCALL_EVENTS
    assert len(testbed.host.events) == SGX_GOLDEN_TOTAL_EVENTS


def test_disabled_tracer_keeps_golden_clock():
    """An attached-but-disabled tracer records nothing and costs nothing."""
    testbed = warmed_testbed(IsolationMode.SGX, seed=7)
    tracer = Tracer(testbed.host.clock, enabled=False)
    testbed.host.tracer = tracer
    try:
        for _ in range(5):
            ue = testbed.add_subscriber()
            assert testbed.register(ue, establish_session=False).success
    finally:
        testbed.host.tracer = None
    assert tracer.roots == []
    assert testbed.host.clock.now_ns == SGX_GOLDEN_CLOCKS[7]


def test_trace_derived_fig9_split_matches_experiment_shape(traced_sgx):
    """The span-tree decomposition shows Fig 9's structure: for shielded
    modules the functional share of L_T sits well below half."""
    _, trace = traced_sgx
    for row in trace.breakdown.values():
        share = row["lf_us"] / row["lt_us"]
        assert 0.15 <= share <= 0.55
