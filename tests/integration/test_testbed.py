"""Testbed assembly and workload generators."""

import pytest

from repro.experiments.workloads import (
    RegistrationWorkload,
    burst_then_idle,
    steady_state_registrations,
)
from repro.paka.deploy import IsolationMode
from repro.testbed import Testbed, TestbedConfig


def test_build_wires_all_nfs():
    testbed = Testbed.build(TestbedConfig(isolation=None, seed=81))
    from repro.net.sbi import NFType

    assert testbed.udm.peer(NFType.UDR) is testbed.udr
    assert testbed.ausf.peer(NFType.UDM) is testbed.udm
    assert testbed.amf.peer(NFType.AUSF) is testbed.ausf
    assert testbed.amf.peer(NFType.SMF) is testbed.smf
    assert testbed.smf.peer(NFType.UPF) is testbed.upf


def test_subscriber_auto_msin_is_sequential():
    testbed = Testbed.build(TestbedConfig(isolation=None, seed=82))
    a = testbed.add_subscriber()
    b = testbed.add_subscriber()
    assert a.usim.supi.msin == "0000000001"
    assert b.usim.supi.msin == "0000000002"


def test_subscriber_keys_are_unique_per_msin():
    testbed = Testbed.build(TestbedConfig(isolation=None, seed=83))
    a = testbed.add_subscriber()
    b = testbed.add_subscriber()
    assert a.usim._k != b.usim._k


def test_sgx_testbed_provisions_module_keys():
    testbed = Testbed.build(TestbedConfig(isolation=IsolationMode.SGX, seed=84))
    ue = testbed.add_subscriber()
    eudm = testbed.paka.module("eudm")
    assert eudm.runtime.load_secret(f"k:{ue.usim.supi}") == ue.usim._k


def test_custom_plmn_config():
    testbed = Testbed.build(
        TestbedConfig(isolation=None, seed=85, mcc="901", mnc="70")
    )
    assert testbed.snn == "5G:mnc070.mcc901.3gppnetwork.org"
    ue = testbed.add_subscriber()
    assert ue.usim.supi.mcc == "901"
    assert testbed.register(ue, establish_session=False).success


def test_idle_books_aex_on_all_modules():
    testbed = Testbed.build(TestbedConfig(isolation=IsolationMode.SGX, seed=86))
    before = {
        name: module.runtime.sgx_stats.aexs
        for name, module in testbed.paka.modules.items()
    }
    t0 = testbed.host.clock.now_ns
    testbed.idle(10.0)
    assert testbed.host.clock.now_ns - t0 == 10_000_000_000
    for name, module in testbed.paka.modules.items():
        assert module.runtime.sgx_stats.aexs > before[name]


def test_module_servers_accessor():
    sgx = Testbed.build(TestbedConfig(isolation=IsolationMode.SGX, seed=87))
    assert set(sgx.module_servers()) == {"eudm", "eausf", "eamf"}
    mono = Testbed.build(TestbedConfig(isolation=None, seed=88))
    assert mono.module_servers() == {}


class TestWorkloads:
    def test_registration_workload(self):
        testbed = Testbed.build(TestbedConfig(isolation=None, seed=89))
        report = RegistrationWorkload(ue_count=3).run(testbed)
        assert report.successes == 3

    def test_steady_state_helper(self):
        testbed, report = steady_state_registrations(
            IsolationMode.CONTAINER, count=3, seed=90
        )
        assert report.successes == 3
        assert testbed.gnb.registrations_succeeded == 5  # 2 warmups + 3

    def test_burst_then_idle(self):
        testbed, reports = burst_then_idle(
            IsolationMode.SGX, bursts=2, burst_size=2, idle_s=5.0, seed=91
        )
        assert len(reports) == 2
        assert all(r.successes == 2 for r in reports)
        # Idle windows drove AEX accumulation.
        assert testbed.paka.enclaves["eudm"].stats.aexs > 3_000
