"""Determinism under faults: (seed, plan) → bit-identical runs.

The golden-clock tests pin the fault-free hot path; this file pins the
*faulted* path — same seed and fault plan must replay to identical final
clocks, retry counters, drop counts and success rates, or the
availability results are not reproducible.
"""

from repro.experiments.availability import availability_experiment


def run_sweep():
    report = availability_experiment(
        registrations=10, horizon_s=60.0, seed=23, factors=(0.0, 2.0)
    )
    return report


def test_same_seed_and_plan_replay_bit_identically():
    first = run_sweep()
    second = run_sweep()
    assert first.rows == second.rows  # clocks, counters, rates, percentiles
    assert first.derived == second.derived
    for key in first.series:
        assert first.series[key] == second.series[key]


def test_fault_free_arm_never_touches_the_resilience_machinery():
    report = run_sweep()
    control = next(row for row in report.rows if row["fault_factor"] == 0.0)
    assert control["success_rate"] == 1.0
    assert control["retries"] == 0
    assert control["timeouts"] == 0
    assert control["reconnects"] == 0
    assert control["frames_dropped"] == 0
    assert control["requests_refused"] == 0
    assert control["breaker_opens"] == 0


def test_faulted_arm_exercises_the_resilience_machinery():
    report = run_sweep()
    faulted = next(row for row in report.rows if row["fault_factor"] == 2.0)
    assert faulted["fault_windows"] > 0
    assert faulted["final_clock_ns"] > 0
    # The 2x plan over 60 s (seed 23) hits the run: at least one of the
    # transport-level counters must move, and the arm still recovers.
    assert (
        faulted["retries"] + faulted["frames_dropped"] + faulted["requests_refused"]
    ) > 0
    assert faulted["recovered"] == 1
