"""Sharded control plane: replica slices, UE pinning, golden preservation.

``TestbedConfig(replicas=N)`` replicates the serving path (AMF, AUSF,
UDM, and each one's P-AKA module) into N NRF-registered slices; UEs are
pinned to a slice by a seeded consistent hash of their SUPI at the gNB's
N2 entry, and every SBI layer makes the same pick.  ``replicas=1`` must
be indistinguishable — to the simulated nanosecond — from the pre-shard
testbed, which the golden-clock constants pin.
"""

import pytest

from repro.experiments.harness import warmed_testbed
from repro.net.sbi import NFType
from repro.paka.deploy import IsolationMode
from repro.testbed import Testbed, TestbedConfig
from tests.integration.test_golden_clocks import SGX_GOLDEN_CLOCKS


def _sharded(replicas=3, seed=7, isolation=IsolationMode.SGX):
    return Testbed.build(
        TestbedConfig(isolation=isolation, seed=seed, replicas=replicas)
    )


def test_replicas_one_is_byte_identical_to_the_unsharded_testbed():
    """The explicit replicas=1 config replays the golden clock exactly."""
    testbed = warmed_testbed(IsolationMode.SGX, seed=7, replicas=1)
    for _ in range(5):
        outcome = testbed.register(testbed.add_subscriber(), establish_session=False)
        assert outcome.success
    assert testbed.host.clock.now_ns == SGX_GOLDEN_CLOCKS[7]


def test_replica_fleet_is_nrf_registered_and_wired():
    testbed = _sharded(replicas=3)
    assert [amf.name for amf in testbed.amfs] == ["amf", "amf-1", "amf-2"]
    assert len(testbed.nrf.registered(NFType.AMF)) == 3
    assert len(testbed.nrf.registered(NFType.UDM)) == 3
    assert len(testbed.nrf.registered(NFType.AUSF)) == 3
    # Vertical slices: amf-k is bound to ausf-k is bound to udm-k.
    for k in range(3):
        assert testbed.amfs[k].peer(NFType.AUSF) is testbed.ausfs[k]
        assert testbed.ausfs[k].peer(NFType.UDM) is testbed.udms[k]
        # ... and each NF talks to its own slice's P-AKA module.
        assert testbed.udms[k].offload_module is (
            testbed.paka.replica_groups["eudm"][k]
        )
        assert testbed.amfs[k].offload_module is (
            testbed.paka.replica_groups["eamf"][k]
        )


def test_registrations_succeed_and_spread_across_shards():
    testbed = _sharded(replicas=3)
    served = {k: 0 for k in range(3)}
    for _ in range(18):
        ue = testbed.add_subscriber()
        outcome = testbed.register(ue, establish_session=False)
        assert outcome.success, outcome.failure_cause
        shard = int(testbed.router.shard_for(str(ue.usim.supi)))
        served[shard] += 1
    # The serving AMF (and only it) holds the session.
    for k, amf in enumerate(testbed.amfs):
        assert amf.registered_count() == served[k]
    # 18 UEs over 3 shards: every shard saw traffic.
    assert all(served.values()), served


def test_reregistration_by_guti_lands_on_the_same_shard():
    """GUTI re-registration works because the SUPI re-hashes to the same
    slice — the only AMF that can resolve the temporary identity."""
    testbed = _sharded(replicas=3)
    ue = testbed.add_subscriber()
    first = testbed.register(ue, establish_session=False)
    assert first.success
    guti = ue.guti
    assert guti is not None
    ue.registered = False  # simulate a detach; UE keeps its GUTI
    again = testbed.register(ue, establish_session=False)
    assert again.success, again.failure_cause
    assert again.guti != guti  # fresh GUTI from the same slice


def test_sharded_runs_are_deterministic_per_seed():
    clocks = []
    for _ in range(2):
        testbed = _sharded(replicas=3, seed=21)
        for _ in range(9):
            outcome = testbed.register(
                testbed.add_subscriber(), establish_session=False
            )
            assert outcome.success
        clocks.append(testbed.host.clock.now_ns)
    assert clocks[0] == clocks[1]


def _module_holds_key(module, supi):
    try:
        module.runtime.load_secret(f"k:{supi}")
    except KeyError:
        return False
    return True


def test_subscriber_keys_are_provisioned_into_the_serving_slice_only():
    testbed = _sharded(replicas=3)
    ue = testbed.add_subscriber()
    supi = str(ue.usim.supi)
    shard = testbed.router.shard_for(supi)
    for label, udm in testbed._udm_by_shard.items():
        assert _module_holds_key(udm.offload_module, supi) == (label == shard)


def test_replicas_must_be_positive():
    with pytest.raises(ValueError, match="replicas"):
        Testbed.build(TestbedConfig(isolation=None, replicas=0))


def test_monolithic_sharding_works_without_modules():
    testbed = _sharded(replicas=2, isolation=None)
    for _ in range(6):
        outcome = testbed.register(testbed.add_subscriber(), establish_session=False)
        assert outcome.success
