"""Resynchronisation and GUTI re-registration, end to end."""

import pytest

from repro.paka.deploy import IsolationMode
from repro.testbed import Testbed, TestbedConfig

ALL_MODES = [None, IsolationMode.CONTAINER, IsolationMode.SGX]


@pytest.mark.parametrize("isolation", ALL_MODES, ids=["monolithic", "container", "sgx"])
def test_resync_recovers_in_every_mode(isolation):
    testbed = Testbed.build(TestbedConfig(isolation=isolation, seed=101))
    ue = testbed.add_subscriber()
    ue.usim.sqn_ms = 123_456_789_000  # UE far ahead (e.g. restored SIM)
    outcome = testbed.register(ue, establish_session=False)
    assert outcome.success, outcome.failure_cause
    # The UDR counter landed just past the UE's SQN_MS.
    record = testbed.udr.subscriber(str(ue.usim.supi))
    assert record.sqn == 123_456_789_001


def test_resync_auts_verified_inside_enclave(sgx_testbed):
    """In the SGX deployment the AUTS check runs in the eUDM module (it
    needs K), visible through the module's request counter."""
    from repro.net.sbi import EUDM_VERIFY_AUTS

    ue = sgx_testbed.add_subscriber()
    ue.usim.sqn_ms = 1 << 35
    eudm_server = sgx_testbed.paka.module("eudm").server
    assert sgx_testbed.register(ue, establish_session=False).success
    assert len(eudm_server.lt_us_by_path.get(EUDM_VERIFY_AUTS, [])) == 1


def test_forged_auts_rejected(container_testbed):
    """An attacker cannot use a bogus AUTS to reset a victim's SQN."""
    from repro.net.sbi import UDM_UE_AUTH_GET

    testbed = container_testbed
    ue = testbed.add_subscriber()
    response = testbed.ausf.call(
        testbed.udm, "POST", UDM_UE_AUTH_GET,
        {
            "servingNetworkName": testbed.snn,
            "supi": str(ue.usim.supi),
            "resynchronizationInfo": {"rand": "00" * 16, "auts": "00" * 14},
        },
    )
    assert response.status == 403
    assert testbed.udr.subscriber(str(ue.usim.supi)).sqn == 0  # untouched


@pytest.mark.parametrize("isolation", ALL_MODES, ids=["monolithic", "container", "sgx"])
def test_guti_reregistration(isolation):
    testbed = Testbed.build(TestbedConfig(isolation=isolation, seed=102))
    ue = testbed.add_subscriber()
    assert testbed.register(ue, establish_session=False).success
    first_guti = ue.guti

    # Re-register with the GUTI: full re-authentication, no SUCI round.
    request = ue.build_guti_registration_request()
    assert request.guti == first_guti and request.suci is None
    downlink = testbed.amf.handle_nas(ue.name, request)
    while downlink is not None:
        uplink = ue.handle_nas(downlink)
        if uplink is None:
            break
        downlink = testbed.amf.handle_nas(ue.name, uplink)
    assert ue.registered
    assert ue.guti != first_guti  # a fresh GUTI is issued


def test_guti_reregistration_derives_fresh_keys(monolithic_testbed):
    testbed = monolithic_testbed
    ue = testbed.add_subscriber()
    assert testbed.register(ue, establish_session=False).success
    old_kamf = ue.kamf

    downlink = testbed.amf.handle_nas(ue.name, ue.build_guti_registration_request())
    while downlink is not None:
        uplink = ue.handle_nas(downlink)
        if uplink is None:
            break
        downlink = testbed.amf.handle_nas(ue.name, uplink)
    assert ue.registered
    assert ue.kamf != old_kamf  # fresh RAND → fresh hierarchy


def test_unknown_guti_rejected(monolithic_testbed):
    from repro.fivegc.messages import AuthenticationReject, RegistrationRequest

    reply = monolithic_testbed.amf.handle_nas(
        "stranger", RegistrationRequest(guti="5g-guti-00101-9999-deadbeef")
    )
    assert isinstance(reply, AuthenticationReject)


def test_pdu_session_payload_is_ciphered_on_n1(monolithic_testbed):
    """The PDU session exchange after SMC is a ProtectedNasPdu whose
    ciphertext hides the DNN."""
    testbed = monolithic_testbed
    ue = testbed.add_subscriber()
    assert testbed.register(ue, establish_session=False).success
    pdu = ue.build_pdu_session_request()
    from repro.fivegc.nas_security import ProtectedNasPdu

    assert isinstance(pdu, ProtectedNasPdu)
    assert b"internet" not in pdu.ciphertext
    accept = testbed.amf.handle_nas(ue.name, pdu)
    assert isinstance(accept, ProtectedNasPdu)
    ue.handle_nas(accept)
    assert ue.ue_address is not None
