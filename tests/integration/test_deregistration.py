"""Deregistration: context release and GUTI retirement."""

import pytest

from repro.fivegc.messages import AuthenticationReject, DeregistrationAccept


def deregister(testbed, ue):
    return testbed.amf.handle_nas(ue.name, ue.build_deregistration_request())


def test_deregistration_releases_context(monolithic_testbed):
    testbed = monolithic_testbed
    ue = testbed.add_subscriber()
    assert testbed.register(ue, establish_session=False).success
    accept = deregister(testbed, ue)
    assert isinstance(accept, DeregistrationAccept)
    ue.handle_nas(accept)
    assert not ue.registered
    assert ue.guti is None
    assert testbed.amf.session_state(ue.name) == "none"


def test_guti_retired_after_deregistration(monolithic_testbed):
    testbed = monolithic_testbed
    ue = testbed.add_subscriber()
    assert testbed.register(ue, establish_session=False).success
    old_guti = ue.guti
    ue.handle_nas(deregister(testbed, ue))

    # Re-registration with the retired GUTI is refused...
    from repro.fivegc.messages import RegistrationRequest

    reply = testbed.amf.handle_nas(ue.name, RegistrationRequest(guti=old_guti))
    assert isinstance(reply, AuthenticationReject)
    # ... but a fresh SUCI registration works fine.
    assert testbed.register(ue, establish_session=False).success


def test_deregistration_requires_registration(monolithic_testbed):
    ue = monolithic_testbed.add_subscriber()
    with pytest.raises(Exception):
        ue.build_deregistration_request()


def test_forged_deregistration_rejected(monolithic_testbed):
    """An attacker cannot knock a UE off the network without K_NAS_int."""
    from repro.fivegc.messages import DeregistrationRequest

    testbed = monolithic_testbed
    ue = testbed.add_subscriber()
    assert testbed.register(ue, establish_session=False).success
    reply = testbed.amf.handle_nas(ue.name, DeregistrationRequest(mac=bytes(4)))
    assert isinstance(reply, AuthenticationReject)
    # The session survives the forgery attempt.
    assert testbed.amf.session_state(ue.name) == "registered"


def test_full_lifecycle_register_deregister_reregister(sgx_testbed):
    testbed = sgx_testbed
    ue = testbed.add_subscriber()
    assert testbed.register(ue, establish_session=False).success
    ue.handle_nas(deregister(testbed, ue))
    assert not ue.registered
    outcome = testbed.register(ue, establish_session=False)
    assert outcome.success
    assert testbed.amf.registered_count() >= 1
