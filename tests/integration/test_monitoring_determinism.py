"""Monitoring determinism: armed observability must not move the physics.

Two invariants pin the continuous-monitoring layer:

* **Bit-identical replays** — the same ``(seed, plan, cadence)`` must
  produce byte-identical Tsdb contents and alert timestamps (scrapes are
  pull-only and the SLO engine is a pure function of the Tsdb).
* **Golden clocks with instrumentation armed** — installing a scraper
  (and a tracer) on the golden-clock scenario must reproduce the exact
  golden final clock: monitoring reads simulated time, never advances it.
"""

import json

from repro.experiments.availability import monitored_arm
from repro.experiments.harness import warmed_testbed
from repro.obs.scrape import Scraper
from repro.obs.trace import Tracer
from repro.testbed import IsolationMode

from tests.integration.test_golden_clocks import (
    SGX_GOLDEN_CLOCKS,
    SGX_GOLDEN_MODULE_STATS,
)


def _small_arm():
    return monitored_arm(
        factor=2.0, registrations=10, horizon_s=60.0, seed=23, cadence_s=1.0
    )


def test_monitored_arm_replays_byte_identically():
    first = json.dumps(_small_arm(), sort_keys=True)
    second = json.dumps(_small_arm(), sort_keys=True)
    assert first == second


def test_tsdb_contents_and_alerts_replay_bit_identically():
    from repro.faults import BASELINE_RATES, DEFAULT_SBI_RETRY, FaultInjector, FaultPlan
    from repro.obs.slo import SloEngine, default_slos

    def run():
        testbed = warmed_testbed(IsolationMode.SGX, seed=23)
        for nf in (testbed.nrf, testbed.udr, testbed.udm, testbed.ausf,
                   testbed.amf, testbed.smf, testbed.upf):
            nf.retry_policy = DEFAULT_SBI_RETRY
        plan = FaultPlan.generate(23, 60.0, BASELINE_RATES.scaled(2.0))
        injector = FaultInjector(testbed, plan).arm()
        scraper = Scraper.for_testbed(
            testbed, cadence_s=1.0, fault_injector=injector
        ).install(testbed.host)
        for _ in range(10):
            testbed.idle(6.0)
            injector.tick()
            testbed.register(testbed.add_subscriber(), establish_session=False)
        injector.disarm()
        scraper.uninstall(testbed.host)
        alerts = SloEngine(default_slos(testbed)).evaluate(scraper.tsdb)
        return scraper.tsdb.to_dict(), [a.to_dict() for a in alerts]

    first_tsdb, first_alerts = run()
    second_tsdb, second_alerts = run()
    assert json.dumps(first_tsdb, sort_keys=True) == json.dumps(
        second_tsdb, sort_keys=True
    )
    assert first_alerts == second_alerts
    # Timestamps in the dumps are simulated nanoseconds, so "equal JSON"
    # really does pin the alert timeline, not just the alert count.
    assert first_tsdb["scrape_times"], "the scraper must actually sample"


def test_golden_clocks_hold_with_scraper_and_tracer_armed():
    # The golden-clock scenario (2 warmups + 5 registrations) with full
    # instrumentation: an armed scraper AND an enabled tracer.  The five
    # registrations span ~250 ms of simulated time, so a 50 ms cadence
    # guarantees scrapes land *during* the run.  The final clock and
    # Table III module stats must match the unarmed golden values exactly.
    for seed, golden_ns in sorted(SGX_GOLDEN_CLOCKS.items()):
        testbed = warmed_testbed(IsolationMode.SGX, seed=seed)
        scraper = Scraper.for_testbed(testbed, cadence_s=0.05).install(testbed.host)
        testbed.host.tracer = Tracer(testbed.host.clock, enabled=True)
        for _ in range(5):
            ue = testbed.add_subscriber()
            outcome = testbed.register(ue, establish_session=False)
            assert outcome.success
        testbed.host.tracer = None
        scraper.uninstall(testbed.host)
        assert testbed.host.clock.now_ns == golden_ns, seed
        assert scraper.scrapes > 1  # the scraper really sampled mid-run
    for name, (eenters, eexits, ocalls) in SGX_GOLDEN_MODULE_STATS.items():
        stats = testbed.paka.modules[name].runtime.sgx_stats
        assert (stats.eenters, stats.eexits, stats.ocalls) == (
            eenters, eexits, ocalls,
        ), name
