"""Failure injection across the slice: wrong keys, desync, dead modules."""

import pytest

from repro.crypto.milenage import Milenage
from repro.paka.deploy import IsolationMode
from repro.testbed import Testbed, TestbedConfig


@pytest.fixture
def testbed():
    return Testbed.build(TestbedConfig(isolation=IsolationMode.CONTAINER, seed=71))


def corrupt_sim_key(ue):
    ue.usim._k = bytes(16)
    ue.usim._milenage = Milenage(bytes(16), ue.usim._opc)


def test_wrong_sim_key_rejected_cleanly(testbed):
    ue = testbed.add_subscriber()
    corrupt_sim_key(ue)
    outcome = testbed.register(ue)
    assert not outcome.success
    assert "MAC_FAILURE" in (outcome.failure_cause or "")
    # The slice survives: a good UE still registers afterwards.
    good = testbed.add_subscriber()
    assert testbed.register(good).success


def test_desynchronized_usim_recovers_via_resync(testbed):
    """A UE far ahead of the network reports SYNCH_FAILURE with an AUTS
    token; the home network verifies it, resets the SQN and the retried
    challenge succeeds (TS 33.102 §6.3.5)."""
    ue = testbed.add_subscriber()
    ue.usim.sqn_ms = 1 << 40  # UE far ahead of the network
    outcome = testbed.register(ue, establish_session=False)
    assert outcome.success
    record = testbed.udr.subscriber(str(ue.usim.supi))
    assert record.sqn == (1 << 40) + 1  # resynced then advanced


def test_resync_is_attempted_only_once(testbed):
    """If resync cannot fix the problem (UE's SQN_MS keeps moving), the
    AMF gives up after one attempt instead of looping."""
    ue = testbed.add_subscriber()
    ue.usim.sqn_ms = 1 << 40

    original_authenticate = ue.usim.authenticate

    def always_desynced(rand, autn, snn):
        ue.usim.sqn_ms += 1 << 30  # jump ahead again before every check
        return original_authenticate(rand, autn, snn)

    ue.usim.authenticate = always_desynced
    outcome = testbed.register(ue, establish_session=False)
    assert not outcome.success
    assert "SYNCH_FAILURE" in (outcome.failure_cause or "")


def test_module_crash_fails_registration_not_core(testbed):
    """Killing the eUDM module makes registrations *fail* upstream — a
    clean AuthenticationReject, not an exception unwinding the NAS stack
    — while the core stays up; restoring service is a redeploy."""
    eudm = testbed.paka.module("eudm")
    eudm.server.stop()
    ue = testbed.add_subscriber()
    outcome = testbed.register(ue, establish_session=False)
    assert not outcome.success
    # The module outage surfaced as a 503 travelling up the SBI chain.
    assert "503" in (outcome.failure_cause or "")
    # Core NFs are still serving (NRF answers discovery).
    from repro.net.sbi import NRF_DISCOVER

    response = testbed.udm.call(
        testbed.nrf, "GET", NRF_DISCOVER, {"targetNfType": "UDR"}
    )
    assert response.ok


def test_unprovisioned_ue_rejected(testbed):
    """A SUCI that deconceals to an unknown SUPI is refused by the UDR."""
    from repro.crypto.suci import Supi
    from repro.ran.usim import Usim
    from repro.ran.ue import UserEquipment

    ghost_supi = Supi("001", "01", "9999999999")
    usim = Usim(supi=ghost_supi, k=bytes(range(16)), opc=bytes(range(16, 32)))
    ue = UserEquipment("ghost", usim, testbed.hn_public_key, testbed.host.rng, testbed.snn)
    outcome = testbed.register(ue, establish_session=False)
    assert not outcome.success


def test_attacker_cannot_register_with_stolen_xres(testbed):
    """Even an attacker that somehow learned HXRES* cannot finish AKA:
    the AUSF confirmation checks the full RES*, which needs K."""
    from repro.fivegc.messages import AuthenticationResponse
    from repro.fivegc.messages import AuthenticationReject

    ue = testbed.add_subscriber()
    testbed.amf.handle_nas(ue.name, ue.build_registration_request())
    session = testbed.amf._sessions[ue.name]
    # The attacker knows HXRES* (it crossed the SBI) but not RES*.
    reply = testbed.amf.handle_nas(
        ue.name, AuthenticationResponse(res_star=session.hxres_star)
    )
    assert isinstance(reply, AuthenticationReject)


def test_registration_storm_with_mixed_outcomes(testbed):
    successes = 0
    for index in range(6):
        ue = testbed.add_subscriber()
        if index % 3 == 0:
            corrupt_sim_key(ue)
        outcome = testbed.register(ue, establish_session=False)
        successes += outcome.success
    assert successes == 4
    assert testbed.gnb.registrations_attempted == 6
    assert testbed.gnb.registrations_succeeded == 4
