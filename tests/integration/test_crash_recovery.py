"""Module crash and recovery: the slice heals by redeploying."""

import pytest

from repro.paka.deploy import IsolationMode
from repro.testbed import Testbed, TestbedConfig


@pytest.fixture
def testbed():
    return Testbed.build(TestbedConfig(isolation=IsolationMode.SGX, seed=171))


def crash_eudm(testbed):
    """Power-event equivalent: the enclave is lost with its memory."""
    module = testbed.paka.module("eudm")
    module.server.stop()
    module.runtime.shutdown()


def test_crash_loses_enclave_state(testbed):
    ue = testbed.add_subscriber()
    assert testbed.register(ue, establish_session=False).success
    crash_eudm(testbed)
    enclave = testbed.paka.enclaves["eudm"]
    assert enclave.destroyed
    assert enclave._secrets == {}  # nothing survives an enclave loss


def test_registrations_fail_while_down(testbed):
    ue = testbed.add_subscriber()
    crash_eudm(testbed)
    with pytest.raises(Exception):
        testbed.register(testbed.add_subscriber(), establish_session=False)


def test_redeploy_and_reprovision_restores_service(testbed):
    ue_before = testbed.add_subscriber()
    assert testbed.register(ue_before, establish_session=False).success
    crash_eudm(testbed)

    # Redeploy a fresh eUDM module and re-attach it to the UDM.
    replacement_slice = testbed.deployment.deploy(
        IsolationMode.SGX, module_names=["eudm"]
    )
    replacement = replacement_slice.module("eudm")
    testbed.udm.offload_module = replacement
    testbed.paka.modules["eudm"] = replacement
    testbed.paka.enclaves["eudm"] = replacement_slice.enclaves["eudm"]

    # Enclave memory did not survive: keys must be provisioned again.
    for supi in (str(ue_before.usim.supi),):
        record = testbed.udr.subscriber(supi)
        testbed.udm.provision_module_key(supi, record.k)

    ue_after = testbed.add_subscriber()
    outcome = testbed.register(ue_after, establish_session=False)
    assert outcome.success

    # The pre-crash subscriber can also authenticate again.
    outcome = testbed.register(ue_before, establish_session=False)
    assert outcome.success


def test_recovery_cost_is_the_enclave_load(testbed):
    """Redeployment pays the Fig 7 load (~1 simulated minute)."""
    crash_eudm(testbed)
    t0 = testbed.host.clock.now_ns
    replacement = testbed.deployment.deploy(IsolationMode.SGX, module_names=["eudm"])
    elapsed_s = (testbed.host.clock.now_ns - t0) / 1e9
    assert 45 < elapsed_s < 80
    assert replacement.load_spans["eudm"].seconds > 40
