"""Determinism: identical seeds produce bit-identical runs.

Reproducibility is a headline property of the harness (EXPERIMENTS.md):
all randomness flows through named seeded streams and no wall-clock time
leaks in, so any two runs with the same seed agree on every simulated
quantity.
"""

from repro.paka.deploy import IsolationMode
from repro.testbed import Testbed, TestbedConfig


def run_once(seed):
    testbed = Testbed.build(TestbedConfig(isolation=IsolationMode.SGX, seed=seed))
    outcomes = []
    for _ in range(3):
        ue = testbed.add_subscriber()
        outcome = testbed.register(ue)
        outcomes.append((outcome.guti, round(outcome.session_setup_ms, 6), ue.kamf))
    eudm = testbed.paka.modules["eudm"]
    return {
        "outcomes": outcomes,
        "clock": testbed.host.clock.now_ns,
        "eenters": eudm.runtime.sgx_stats.eenters,
        "load_ns": {k: s.ns for k, s in testbed.paka.load_spans.items()},
        "lt": tuple(round(x, 9) for x in eudm.server.lt_us),
    }


def test_same_seed_identical_everything():
    assert run_once(7) == run_once(7)


def test_different_seed_different_randomness():
    a, b = run_once(7), run_once(8)
    # Different RAND/keys → different GUTIs and key material...
    assert a["outcomes"] != b["outcomes"]
    # ...and jitter differs, but the counter structure is identical.
    assert a["eenters"] == b["eenters"]


def test_experiment_reports_are_deterministic():
    from repro.experiments.figures import figure9_functional_total_latency

    one = figure9_functional_total_latency(registrations=8, seed=42)
    two = figure9_functional_total_latency(registrations=8, seed=42)
    assert one.derived == two.derived
