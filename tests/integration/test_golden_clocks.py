"""Golden simulated-time anchors for the wire-speed hot path.

The host-performance work (bulk CTR keystream, fused SGX cost accounting,
indexed event log, syscall batching) must not move a single simulated
nanosecond: every optimisation reorders *host* arithmetic, never the
modelled costs or the RNG draw sequence.  These constants were captured
from the pre-optimisation implementation; any drift here means a rounding
or draw-order regression, not a tolerable calibration change.

Scenario: ``warmed_testbed`` (2 warm-up registrations) + 5 registrations
without session establishment.
"""

import pytest

from repro.experiments.harness import warmed_testbed
from repro.testbed import IsolationMode

# (seed, final clock ns) for the SGX deployment.
SGX_GOLDEN_CLOCKS = {
    7: 173_729_423_830,
    11: 174_765_773_469,
}
# Identical across seeds: the transition structure is seed-independent.
SGX_GOLDEN_OCALL_EVENTS = 5_340
SGX_GOLDEN_TOTAL_EVENTS = 5_574
# Per-module (eenters, eexits, ocalls) after the 5 registrations.
SGX_GOLDEN_MODULE_STATS = {
    "eamf": (1_986, 1_982, 1_982),
    "eausf": (1_988, 1_984, 1_984),
    "eudm": (1_991, 1_987, 1_987),
}

NATIVE_GOLDEN_CLOCK_SEED7 = 371_642_684
NATIVE_GOLDEN_EVENTS_SEED7 = 153


def _run_registrations(isolation, seed):
    testbed = warmed_testbed(isolation, seed=seed)
    for _ in range(5):
        ue = testbed.add_subscriber()
        outcome = testbed.register(ue, establish_session=False)
        assert outcome.success
    return testbed


@pytest.mark.parametrize("seed", sorted(SGX_GOLDEN_CLOCKS))
def test_sgx_clock_and_events_match_golden(seed):
    testbed = _run_registrations(IsolationMode.SGX, seed)
    assert testbed.host.clock.now_ns == SGX_GOLDEN_CLOCKS[seed]
    assert testbed.host.events.count("sgx.ocall") == SGX_GOLDEN_OCALL_EVENTS
    assert len(testbed.host.events) == SGX_GOLDEN_TOTAL_EVENTS


def test_sgx_module_transition_counts_match_golden():
    testbed = _run_registrations(IsolationMode.SGX, 7)
    for name, (eenters, eexits, ocalls) in SGX_GOLDEN_MODULE_STATS.items():
        stats = testbed.paka.modules[name].runtime.sgx_stats
        assert (stats.eenters, stats.eexits, stats.ocalls) == (
            eenters,
            eexits,
            ocalls,
        ), name


def test_native_clock_matches_golden():
    testbed = _run_registrations(None, 7)
    assert testbed.host.clock.now_ns == NATIVE_GOLDEN_CLOCK_SEED7
    assert len(testbed.host.events) == NATIVE_GOLDEN_EVENTS_SEED7


def test_event_log_capacity_does_not_move_the_clock():
    # The capacity knob trims diagnostics retention only; simulated time
    # and live counters must be unaffected.
    bounded = warmed_testbed(IsolationMode.SGX, seed=7, event_log_capacity=500)
    for _ in range(5):
        bounded.register(bounded.add_subscriber(), establish_session=False)
    assert bounded.host.clock.now_ns == SGX_GOLDEN_CLOCKS[7]
    assert len(bounded.host.events) <= 500
