"""End-to-end registration across all three isolation modes.

These are the headline integration tests: a UE with real credentials
registers through the full stack (SUCI → SIDF → UDR → MILENAGE → key
hierarchy → NAS security → GUTI → PDU session), with the AKA functions
monolithic, containerised, or SGX-shielded.
"""

import pytest

from repro.paka.deploy import IsolationMode
from repro.testbed import Testbed, TestbedConfig

ALL_MODES = [None, IsolationMode.CONTAINER, IsolationMode.SGX]


@pytest.mark.parametrize("isolation", ALL_MODES, ids=["monolithic", "container", "sgx"])
def test_full_registration_succeeds(isolation):
    testbed = Testbed.build(TestbedConfig(isolation=isolation, seed=61))
    ue = testbed.add_subscriber()
    outcome = testbed.register(ue)
    assert outcome.success, outcome.failure_cause
    assert ue.registered
    assert ue.guti is not None
    assert ue.ue_address is not None
    assert outcome.session_setup_ms > 0


@pytest.mark.parametrize("isolation", ALL_MODES, ids=["monolithic", "container", "sgx"])
def test_key_hierarchy_agrees_across_stack(isolation):
    """UE, AMF session and module memory must hold identical keys."""
    testbed = Testbed.build(TestbedConfig(isolation=isolation, seed=62))
    ue = testbed.add_subscriber()
    assert testbed.register(ue, establish_session=False).success
    session = testbed.amf._sessions[ue.name]
    assert ue.kamf == session.kamf
    assert ue.k_nas_int == session.k_nas_int
    assert ue.k_nas_enc == session.k_nas_enc
    if isolation is not None:
        eamf = testbed.paka.module("eamf")
        assert eamf.runtime.load_secret("last_kamf") == ue.kamf


def test_all_modes_produce_identical_crypto():
    """Isolation changes performance and security, never the protocol
    bytes: with identical seeds all three modes derive the same keys."""
    kamfs = []
    for isolation in ALL_MODES:
        testbed = Testbed.build(TestbedConfig(isolation=isolation, seed=63))
        ue = testbed.add_subscriber()
        assert testbed.register(ue, establish_session=False).success
        kamfs.append(ue.kamf)
    assert kamfs[0] == kamfs[1] == kamfs[2]


def test_sequential_registrations_share_slice(sgx_testbed):
    gutis = set()
    for _ in range(4):
        ue = sgx_testbed.add_subscriber()
        outcome = sgx_testbed.register(ue, establish_session=False)
        assert outcome.success
        gutis.add(ue.guti)
    assert len(gutis) == 4


def test_sqn_advances_across_registrations(sgx_testbed):
    """Each authentication consumes a fresh SQN in the UDR."""
    ue = sgx_testbed.add_subscriber()
    record = sgx_testbed.udr.subscriber(str(ue.usim.supi))
    assert record.sqn == 0
    assert sgx_testbed.register(ue, establish_session=False).success
    assert record.sqn == 1


def test_udm_never_receives_plaintext_supi_on_the_wire(sgx_testbed):
    """Capture the SBI bridge during registration: the MSIN appears in no
    frame (SUCI conceals it, TLS wraps everything anyway)."""
    bridge = sgx_testbed.sbi
    ue = sgx_testbed.add_subscriber()
    bridge.start_capture()
    assert sgx_testbed.register(ue, establish_session=False).success
    frames = bridge.stop_capture()
    assert frames
    msin = ue.usim.supi.msin.encode()
    for frame in frames:
        assert msin not in frame.payload


def test_subscriber_keys_never_on_the_wire(sgx_testbed):
    bridge = sgx_testbed.sbi
    ue = sgx_testbed.add_subscriber()
    bridge.start_capture()
    assert sgx_testbed.register(ue, establish_session=False).success
    for frame in bridge.stop_capture():
        assert ue.usim._k not in frame.payload
        assert ue.usim._k.hex().encode() not in frame.payload


def test_teardown_releases_resources():
    testbed = Testbed.build(TestbedConfig(isolation=IsolationMode.SGX, seed=64))
    testbed.teardown()
    assert testbed.engine.ps() == []
    assert testbed.deployment.epc_manager.resident_pages == 0
