"""Shared fixtures.

Testbed builds are the expensive part of the suite (a full SGX slice
deploy models ~1 minute of simulated work and a fair amount of real
bookkeeping), so the session-scoped fixtures below share warmed testbeds
across read-only tests.  Tests that mutate global state (register UEs and
assert on counters) build their own.
"""

from __future__ import annotations

import pytest

from repro.hw.host import paper_testbed_host
from repro.paka.deploy import IsolationMode
from repro.testbed import Testbed, TestbedConfig


@pytest.fixture
def host():
    """A fresh paper-spec host."""
    return paper_testbed_host(seed=1234)


@pytest.fixture
def container_testbed():
    """A fresh container-isolation testbed (function scope: mutable)."""
    return Testbed.build(TestbedConfig(isolation=IsolationMode.CONTAINER, seed=11))


@pytest.fixture
def sgx_testbed():
    """A fresh SGX-isolation testbed (function scope: mutable)."""
    return Testbed.build(TestbedConfig(isolation=IsolationMode.SGX, seed=12))


@pytest.fixture
def monolithic_testbed():
    """A testbed with no external modules (the OAI baseline)."""
    return Testbed.build(TestbedConfig(isolation=None, seed=13))


@pytest.fixture(scope="session")
def shared_sgx_testbed():
    """A warmed SGX testbed shared by read-only tests."""
    testbed = Testbed.build(TestbedConfig(isolation=IsolationMode.SGX, seed=99))
    for _ in range(2):
        ue = testbed.add_subscriber()
        outcome = testbed.register(ue, establish_session=False)
        assert outcome.success
    return testbed
