"""128-NEA2 ciphering."""

import pytest

from repro.crypto.nea import nea2_decrypt, nea2_encrypt

KEY = bytes(range(16))


def test_roundtrip():
    ciphertext = nea2_encrypt(KEY, count=5, bearer=1, direction=0, plaintext=b"nas payload")
    assert ciphertext != b"nas payload"
    assert nea2_decrypt(KEY, 5, 1, 0, ciphertext) == b"nas payload"


def test_count_separates_keystreams():
    a = nea2_encrypt(KEY, 0, 1, 0, bytes(32))
    b = nea2_encrypt(KEY, 1, 1, 0, bytes(32))
    assert a != b


def test_bearer_and_direction_separate_keystreams():
    base = nea2_encrypt(KEY, 0, 1, 0, bytes(32))
    assert nea2_encrypt(KEY, 0, 2, 0, bytes(32)) != base
    assert nea2_encrypt(KEY, 0, 1, 1, bytes(32)) != base


def test_parameter_validation():
    with pytest.raises(ValueError):
        nea2_encrypt(b"short", 0, 1, 0, b"x")
    with pytest.raises(ValueError):
        nea2_encrypt(KEY, -1, 1, 0, b"x")
    with pytest.raises(ValueError):
        nea2_encrypt(KEY, 0, 32, 0, b"x")
    with pytest.raises(ValueError):
        nea2_encrypt(KEY, 0, 1, 2, b"x")


def test_empty_payload():
    assert nea2_encrypt(KEY, 0, 1, 0, b"") == b""
