"""AES-128 against FIPS-197 / SP 800-38A vectors, plus CTR properties."""

import pytest

from repro.crypto.aes import (
    AES128,
    aes128_cipher,
    aes128_ctr,
    aes128_decrypt_block,
    aes128_encrypt_block,
)

FIPS_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
FIPS_PT = bytes.fromhex("00112233445566778899aabbccddeeff")
FIPS_CT = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")

# FIPS-197 Appendix B: the worked cipher example (pi/e-derived values).
APX_B_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
APX_B_PT = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
APX_B_CT = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")

NIST_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
NIST_BLOCKS = [
    ("6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97"),
    ("ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf"),
    ("30c81c46a35ce411e5fbc1191a0a52ef", "43b1cd7f598ece23881b00e3ed030688"),
    ("f69f2445df4f9b17ad2b417be66c3710", "7b0c785e27e8ad3f8223207104725dd4"),
]


def test_fips197_appendix_c_vector():
    assert aes128_encrypt_block(FIPS_KEY, FIPS_PT) == FIPS_CT


def test_fips197_decrypt_inverts():
    assert aes128_decrypt_block(FIPS_KEY, FIPS_CT) == FIPS_PT


def test_fips197_appendix_b_vector():
    assert aes128_encrypt_block(APX_B_KEY, APX_B_PT) == APX_B_CT


def test_fips197_appendix_b_decrypt():
    assert aes128_decrypt_block(APX_B_KEY, APX_B_CT) == APX_B_PT


def test_keyed_cipher_matches_oneshot():
    cipher = AES128(APX_B_KEY)
    assert cipher.encrypt_block(APX_B_PT) == APX_B_CT
    assert cipher.decrypt_block(APX_B_CT) == APX_B_PT


def test_keyed_cipher_ctr_matches_oneshot():
    nonce = bytes(range(16))
    data = b"keyed cipher and one-shot API share one keystream"
    assert AES128(NIST_KEY).ctr(nonce, data) == aes128_ctr(NIST_KEY, nonce, data)


def test_cipher_cache_returns_same_object():
    # The one-shot API funnels through the per-key cache, so repeated
    # lookups must not re-expand the schedule.
    assert aes128_cipher(APX_B_KEY) is aes128_cipher(bytes(APX_B_KEY))


def test_keyed_cipher_rejects_bad_key_length():
    with pytest.raises(ValueError):
        AES128(b"\x00" * 24)


@pytest.mark.parametrize("plaintext_hex,ciphertext_hex", NIST_BLOCKS)
def test_sp800_38a_ecb_vectors(plaintext_hex, ciphertext_hex):
    plaintext = bytes.fromhex(plaintext_hex)
    assert aes128_encrypt_block(NIST_KEY, plaintext).hex() == ciphertext_hex


@pytest.mark.parametrize("plaintext_hex,ciphertext_hex", NIST_BLOCKS)
def test_sp800_38a_ecb_decrypt(plaintext_hex, ciphertext_hex):
    ciphertext = bytes.fromhex(ciphertext_hex)
    assert aes128_decrypt_block(NIST_KEY, ciphertext).hex() == plaintext_hex


def test_encrypt_rejects_bad_key_length():
    with pytest.raises(ValueError):
        aes128_encrypt_block(b"short", FIPS_PT)


def test_encrypt_rejects_bad_block_length():
    with pytest.raises(ValueError):
        aes128_encrypt_block(FIPS_KEY, b"tiny")


def test_decrypt_rejects_bad_block_length():
    with pytest.raises(ValueError):
        aes128_decrypt_block(FIPS_KEY, b"x" * 15)


def test_ctr_roundtrip_unaligned_length():
    nonce = bytes(range(16))
    data = b"5G-AKA control plane payload that is not block aligned.."
    ciphertext = aes128_ctr(NIST_KEY, nonce, data)
    assert ciphertext != data
    assert aes128_ctr(NIST_KEY, nonce, ciphertext) == data


def test_ctr_empty_payload():
    assert aes128_ctr(NIST_KEY, bytes(16), b"") == b""


def test_ctr_counter_increments_across_blocks():
    nonce = bytes(16)
    two_blocks = aes128_ctr(NIST_KEY, nonce, bytes(32))
    # Keystream blocks must differ (counter advanced).
    assert two_blocks[:16] != two_blocks[16:]


def test_ctr_rejects_bad_nonce():
    with pytest.raises(ValueError):
        aes128_ctr(NIST_KEY, b"short", b"data")


def test_ctr_counter_wraps_at_128_bits():
    # Starting at the max counter must not raise; it wraps modulo 2^128.
    nonce = b"\xff" * 16
    out = aes128_ctr(NIST_KEY, nonce, bytes(32))
    assert len(out) == 32
