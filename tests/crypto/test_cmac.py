"""AES-CMAC against the RFC 4493 vectors, and the 128-NIA2 framing."""

import pytest

from repro.crypto.cmac import aes_cmac, nia2_mac

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
MSG = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710"
)

RFC4493_CASES = [
    (b"", "bb1d6929e95937287fa37d129b756746"),
    (MSG[:16], "070a16b46b4d4144f79bdd9dd04a287c"),
    (MSG[:40], "dfa66747de9ae63030ca32611497c827"),
    (MSG, "51f0bebf7e3b9d92fc49741779363cfe"),
]


@pytest.mark.parametrize("message,expected", RFC4493_CASES)
def test_rfc4493_vectors(message, expected):
    assert aes_cmac(KEY, message).hex() == expected


def test_cmac_rejects_bad_key():
    with pytest.raises(ValueError):
        aes_cmac(b"short", b"msg")


def test_nia2_mac_is_4_bytes():
    assert len(nia2_mac(KEY, count=0, bearer=1, direction=0, message=b"nas")) == 4


def test_nia2_direction_separates_uplink_downlink():
    up = nia2_mac(KEY, 0, 1, 0, b"nas")
    down = nia2_mac(KEY, 0, 1, 1, b"nas")
    assert up != down


def test_nia2_count_prevents_replay():
    first = nia2_mac(KEY, 0, 1, 0, b"nas")
    second = nia2_mac(KEY, 1, 1, 0, b"nas")
    assert first != second


def test_nia2_bearer_in_mac():
    assert nia2_mac(KEY, 0, 1, 0, b"nas") != nia2_mac(KEY, 0, 2, 0, b"nas")


def test_nia2_rejects_bad_direction():
    with pytest.raises(ValueError):
        nia2_mac(KEY, 0, 1, 2, b"nas")


def test_nia2_rejects_wide_bearer():
    with pytest.raises(ValueError):
        nia2_mac(KEY, 0, 32, 0, b"nas")
