"""MILENAGE against the 3GPP TS 35.207/35.208 conformance Test Set 1,
plus structural and negative tests."""

import pytest

from repro.crypto.milenage import Milenage, compute_opc

# TS 35.207 §4 / TS 35.208 §3 Test Set 1.
K = bytes.fromhex("465b5ce8b199b49faa5f0a2ee238a6bc")
RAND = bytes.fromhex("23553cbe9637a89d218ae64dae47bf35")
SQN = bytes.fromhex("ff9bb4d0b607")
AMF = bytes.fromhex("b9b9")
OP = bytes.fromhex("cdc202d5123e20f62b6d676ac72cb318")
OPC = bytes.fromhex("cd63cb71954a9f4e48a5994e37a02baf")

EXPECTED = {
    "mac_a": "4a9ffac354dfafb3",
    "mac_s": "01cfaf9ec4e871e9",
    "res": "a54211d5e3ba50bf",
    "ck": "b40ba9a3c58b2a05bbf0d987b21bf8cb",
    "ik": "f769bcd751044604127672711c6d3441",
    "ak": "aa689c648370",
    "ak_star": "451e8beca43b",
}


@pytest.fixture
def milenage():
    return Milenage(K, OPC)


def test_opc_derivation():
    assert compute_opc(K, OP) == OPC


def test_from_op_equals_explicit_opc():
    assert Milenage.from_op(K, OP).opc == OPC


def test_f1_mac_a(milenage):
    mac_a, _ = milenage.f1(RAND, SQN, AMF)
    assert mac_a.hex() == EXPECTED["mac_a"]


def test_f1_star_mac_s(milenage):
    _, mac_s = milenage.f1(RAND, SQN, AMF)
    assert mac_s.hex() == EXPECTED["mac_s"]


def test_f2_res(milenage):
    assert milenage.f2345(RAND).res.hex() == EXPECTED["res"]


def test_f3_ck(milenage):
    assert milenage.f2345(RAND).ck.hex() == EXPECTED["ck"]


def test_f4_ik(milenage):
    assert milenage.f2345(RAND).ik.hex() == EXPECTED["ik"]


def test_f5_ak(milenage):
    assert milenage.f2345(RAND).ak.hex() == EXPECTED["ak"]


def test_f5_star_ak(milenage):
    assert milenage.f2345(RAND).ak_star.hex() == EXPECTED["ak_star"]


def test_generate_combines_all_functions(milenage):
    vector = milenage.generate(RAND, SQN, AMF)
    assert vector.mac_a.hex() == EXPECTED["mac_a"]
    assert vector.res.hex() == EXPECTED["res"]
    assert vector.ck.hex() == EXPECTED["ck"]
    assert vector.ak.hex() == EXPECTED["ak"]


def test_output_lengths(milenage):
    vector = milenage.generate(RAND, SQN, AMF)
    assert (len(vector.mac_a), len(vector.mac_s)) == (8, 8)
    assert len(vector.res) == 8
    assert (len(vector.ck), len(vector.ik)) == (16, 16)
    assert (len(vector.ak), len(vector.ak_star)) == (6, 6)


def test_different_rand_changes_everything(milenage):
    one = milenage.f2345(RAND)
    other = milenage.f2345(bytes(16))
    assert one.res != other.res
    assert one.ck != other.ck
    assert one.ak != other.ak


def test_ak_and_ak_star_differ(milenage):
    vector = milenage.f2345(RAND)
    assert vector.ak != vector.ak_star


def test_rejects_bad_key_length():
    with pytest.raises(ValueError):
        Milenage(b"short", OPC)


def test_rejects_bad_opc_length():
    with pytest.raises(ValueError):
        Milenage(K, b"short")


def test_rejects_bad_rand(milenage):
    with pytest.raises(ValueError):
        milenage.f2345(b"not-16-bytes")


def test_rejects_bad_sqn(milenage):
    with pytest.raises(ValueError):
        milenage.f1(RAND, b"xx", AMF)


def test_rejects_bad_amf_field(milenage):
    with pytest.raises(ValueError):
        milenage.f1(RAND, SQN, b"xxxx")
