"""TS 33.220 / TS 33.501 key derivation tests."""

import hashlib
import hmac

import pytest

from repro.crypto.kdf import (
    derive_hxres_star,
    derive_kamf,
    derive_kausf,
    derive_kgnb,
    derive_kseaf,
    derive_nas_keys,
    derive_res_star,
    serving_network_name,
    ts33220_kdf,
)


def test_generic_kdf_framing():
    """S = FC || P0 || L0 || P1 || L1 must match a hand-built HMAC."""
    key = b"k" * 32
    p0, p1 = b"alpha", b"bet"
    s = bytes([0x6A]) + p0 + (5).to_bytes(2, "big") + p1 + (3).to_bytes(2, "big")
    assert ts33220_kdf(key, 0x6A, [p0, p1]) == hmac.new(key, s, hashlib.sha256).digest()


def test_generic_kdf_output_is_32_bytes():
    assert len(ts33220_kdf(b"key", 0x10, [b"x"])) == 32


def test_generic_kdf_rejects_wide_fc():
    with pytest.raises(ValueError):
        ts33220_kdf(b"key", 0x1FF, [])


def test_generic_kdf_empty_params_differ_from_empty_param():
    # No parameters vs one empty parameter: framing differs (L0 present).
    assert ts33220_kdf(b"k", 0x6A, []) != ts33220_kdf(b"k", 0x6A, [b""])


def test_serving_network_name_format():
    assert serving_network_name("001", "01") == b"5G:mnc001.mcc001.3gppnetwork.org"


def test_serving_network_name_three_digit_mnc():
    assert serving_network_name("310", "410") == b"5G:mnc410.mcc310.3gppnetwork.org"


def test_serving_network_name_rejects_bad_mcc():
    with pytest.raises(ValueError):
        serving_network_name("1", "01")


def test_serving_network_name_rejects_bad_mnc():
    with pytest.raises(ValueError):
        serving_network_name("001", "1")


CK = bytes(range(16))
IK = bytes(range(16, 32))
SNN = serving_network_name("001", "01")
RAND = bytes(range(32, 48))
RES = bytes(range(48, 56))
SQN_XOR_AK = bytes(6)


def test_kausf_is_32_bytes_and_deterministic():
    a = derive_kausf(CK, IK, SNN, SQN_XOR_AK)
    b = derive_kausf(CK, IK, SNN, SQN_XOR_AK)
    assert a == b and len(a) == 32


def test_kausf_depends_on_snn():
    other = serving_network_name("901", "70")
    assert derive_kausf(CK, IK, SNN, SQN_XOR_AK) != derive_kausf(CK, IK, other, SQN_XOR_AK)


def test_kausf_rejects_bad_sqn_ak():
    with pytest.raises(ValueError):
        derive_kausf(CK, IK, SNN, bytes(5))


def test_res_star_is_16_bytes():
    assert len(derive_res_star(CK, IK, SNN, RAND, RES)) == 16


def test_res_star_is_low_half_of_kdf():
    full = ts33220_kdf(CK + IK, 0x6B, [SNN, RAND, RES])
    assert derive_res_star(CK, IK, SNN, RAND, RES) == full[16:]


def test_hxres_star_is_high_half_of_sha256():
    xres_star = derive_res_star(CK, IK, SNN, RAND, RES)
    digest = hashlib.sha256(RAND + xres_star).digest()
    assert derive_hxres_star(RAND, xres_star) == digest[:16]


def test_key_chain_kausf_kseaf_kamf():
    kausf = derive_kausf(CK, IK, SNN, SQN_XOR_AK)
    kseaf = derive_kseaf(kausf, SNN)
    kamf = derive_kamf(kseaf, "imsi-001010000000001")
    assert len(kseaf) == 32 and len(kamf) == 32
    assert len({bytes(kausf), bytes(kseaf), bytes(kamf)}) == 3


def test_kamf_depends_on_supi_and_abba():
    kseaf = bytes(32)
    a = derive_kamf(kseaf, "imsi-001010000000001")
    b = derive_kamf(kseaf, "imsi-001010000000002")
    c = derive_kamf(kseaf, "imsi-001010000000001", abba=b"\x00\x01")
    assert a != b and a != c


def test_nas_keys_are_distinct_128_bit():
    k_enc, k_int = derive_nas_keys(bytes(32))
    assert len(k_enc) == 16 and len(k_int) == 16
    assert k_enc != k_int


def test_nas_keys_depend_on_algorithm_ids():
    base = derive_nas_keys(bytes(32), enc_alg_id=1, int_alg_id=2)
    other = derive_nas_keys(bytes(32), enc_alg_id=2, int_alg_id=1)
    assert base != other


def test_kgnb_depends_on_nas_count():
    kamf = bytes(range(32))
    assert derive_kgnb(kamf, 0) != derive_kgnb(kamf, 1)


def test_kgnb_rejects_out_of_range_count():
    with pytest.raises(ValueError):
        derive_kgnb(bytes(32), -1)
    with pytest.raises(ValueError):
        derive_kgnb(bytes(32), 1 << 32)
