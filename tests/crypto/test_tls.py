"""TLS session model: record protection, sequencing, cost model."""

import pytest

from repro.crypto.tls import TlsCostModel, TlsError, establish_session


@pytest.fixture
def sessions():
    return establish_session("udm-client", "eudm-server", b"handshake-secret")


def test_protect_unprotect_roundtrip(sessions):
    client, server = sessions
    record = client.protect(b'{"rand": "00"}')
    assert server.unprotect(record) == b'{"rand": "00"}'


def test_ciphertext_hides_plaintext(sessions):
    client, _ = sessions
    payload = b"kausf=deadbeef" * 4
    assert payload not in client.protect(payload)


def test_bidirectional_streams_are_independent(sessions):
    client, server = sessions
    up = client.protect(b"request")
    assert server.unprotect(up) == b"request"
    down = server.protect(b"response")
    assert client.unprotect(down) == b"response"


def test_sequence_numbers_rotate_keys(sessions):
    client, _ = sessions
    first = client.protect(b"same payload")
    second = client.protect(b"same payload")
    assert first != second


def test_out_of_order_record_rejected(sessions):
    client, server = sessions
    client.protect(b"first")  # consumed sequence 0, never delivered
    second = client.protect(b"second")
    with pytest.raises(TlsError):
        server.unprotect(second)  # server still expects sequence 0


def test_tampered_record_rejected(sessions):
    client, server = sessions
    record = bytearray(client.protect(b"payload"))
    record[0] ^= 0xFF
    with pytest.raises(TlsError):
        server.unprotect(bytes(record))


def test_truncated_record_rejected(sessions):
    _, server = sessions
    with pytest.raises(TlsError):
        server.unprotect(b"short")


def test_cross_session_records_rejected():
    client_a, _ = establish_session("a", "s", b"secret-one")
    _, server_b = establish_session("a", "s", b"secret-two")
    with pytest.raises(TlsError):
        server_b.unprotect(client_a.protect(b"hello"))


def test_cost_model_scales_with_bytes():
    model = TlsCostModel()
    assert model.record_cycles(2048) > model.record_cycles(64)
    assert model.record_cycles(0) == model.record_fixed_cycles
