"""X25519 (RFC 7748 vectors), ECIES Profile A and SUCI concealment."""

import pytest

from repro.crypto.suci import (
    EciesProfileA,
    Suci,
    Supi,
    conceal_supi,
    deconceal_suci,
    x25519,
    x25519_public_key,
)

RFC7748_VECTOR_1 = (
    "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4",
    "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c",
    "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552",
)
RFC7748_VECTOR_2 = (
    "4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d",
    "e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493",
    "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957",
)


@pytest.mark.parametrize("scalar,u,expected", [RFC7748_VECTOR_1, RFC7748_VECTOR_2])
def test_rfc7748_vectors(scalar, u, expected):
    out = x25519(bytes.fromhex(scalar), bytes.fromhex(u))
    assert out.hex() == expected


def test_diffie_hellman_agreement():
    alice = bytes(range(32))
    bob = bytes(range(32, 64))
    shared_a = x25519(alice, x25519_public_key(bob))
    shared_b = x25519(bob, x25519_public_key(alice))
    assert shared_a == shared_b


def test_x25519_rejects_bad_lengths():
    with pytest.raises(ValueError):
        x25519(b"short", bytes(32))
    with pytest.raises(ValueError):
        x25519(bytes(32), b"short")


class TestSupi:
    def test_string_form(self):
        supi = Supi(mcc="001", mnc="01", msin="0000000001")
        assert str(supi) == "imsi-001010000000001"

    def test_parse_roundtrip(self):
        supi = Supi(mcc="001", mnc="01", msin="0000000001")
        assert Supi.parse(str(supi)) == supi

    def test_parse_rejects_non_imsi(self):
        with pytest.raises(ValueError):
            Supi.parse("nai-user@example.org")

    @pytest.mark.parametrize(
        "mcc,mnc,msin",
        [("1", "01", "0000000001"), ("001", "1", "0000000001"), ("001", "01", "123")],
    )
    def test_field_validation(self, mcc, mnc, msin):
        with pytest.raises(ValueError):
            Supi(mcc=mcc, mnc=mnc, msin=msin)


class TestEciesProfileA:
    HN_PRIV = bytes(range(1, 33))

    @property
    def hn_pub(self):
        return x25519_public_key(self.HN_PRIV)

    def test_encrypt_decrypt_roundtrip(self):
        plaintext = b"0000000001"
        blob = EciesProfileA.encrypt(plaintext, self.hn_pub, bytes(range(64, 96)))
        assert EciesProfileA.decrypt(blob, self.HN_PRIV) == plaintext

    def test_ciphertext_hides_plaintext(self):
        plaintext = b"0000000001"
        blob = EciesProfileA.encrypt(plaintext, self.hn_pub, bytes(range(64, 96)))
        assert plaintext not in blob

    def test_fresh_ephemeral_keys_randomize_output(self):
        plaintext = b"0000000001"
        one = EciesProfileA.encrypt(plaintext, self.hn_pub, bytes(range(32)))
        two = EciesProfileA.encrypt(plaintext, self.hn_pub, bytes(range(32, 64)))
        assert one != two

    def test_tampered_ciphertext_rejected(self):
        blob = bytearray(
            EciesProfileA.encrypt(b"0000000001", self.hn_pub, bytes(range(32)))
        )
        blob[40] ^= 0x01  # flip one ciphertext bit
        with pytest.raises(ValueError):
            EciesProfileA.decrypt(bytes(blob), self.HN_PRIV)

    def test_tampered_tag_rejected(self):
        blob = bytearray(
            EciesProfileA.encrypt(b"0000000001", self.hn_pub, bytes(range(32)))
        )
        blob[-1] ^= 0x01
        with pytest.raises(ValueError):
            EciesProfileA.decrypt(bytes(blob), self.HN_PRIV)

    def test_wrong_private_key_rejected(self):
        blob = EciesProfileA.encrypt(b"0000000001", self.hn_pub, bytes(range(32)))
        with pytest.raises(ValueError):
            EciesProfileA.decrypt(blob, bytes(range(2, 34)))

    def test_short_blob_rejected(self):
        with pytest.raises(ValueError):
            EciesProfileA.decrypt(b"too-short", self.HN_PRIV)


class TestSuciConcealment:
    HN_PRIV = bytes(range(7, 39))
    SUPI = Supi(mcc="001", mnc="01", msin="0000000001")

    def test_roundtrip(self):
        suci = conceal_supi(self.SUPI, x25519_public_key(self.HN_PRIV), bytes(range(32)))
        assert deconceal_suci(suci, self.HN_PRIV) == self.SUPI

    def test_routing_info_in_clear_but_msin_hidden(self):
        suci = conceal_supi(self.SUPI, x25519_public_key(self.HN_PRIV), bytes(range(32)))
        assert suci.mcc == "001" and suci.mnc == "01"
        assert self.SUPI.msin.encode() not in suci.scheme_output

    def test_null_scheme_deconcealment(self):
        suci = Suci(
            mcc="001", mnc="01", protection_scheme=Suci.SCHEME_NULL,
            home_network_key_id=0, scheme_output=b"0000000001",
        )
        assert deconceal_suci(suci, self.HN_PRIV) == self.SUPI

    def test_unknown_scheme_rejected(self):
        suci = Suci(
            mcc="001", mnc="01", protection_scheme=9,
            home_network_key_id=0, scheme_output=b"x",
        )
        with pytest.raises(ValueError):
            deconceal_suci(suci, self.HN_PRIV)

    def test_string_form(self):
        suci = conceal_supi(self.SUPI, x25519_public_key(self.HN_PRIV), bytes(range(32)))
        text = str(suci)
        assert text.startswith("suci-0-001-01-0-1-")


class TestX25519BackendEquivalence:
    """The optional libcrypto backend must be indistinguishable from the
    RFC 7748 reference ladder — including the low-order-point inputs the
    library rejects but the ladder evaluates to zeros."""

    def test_backend_matches_ladder_on_random_inputs(self):
        import random

        from repro.crypto.suci import _x25519_ladder

        rnd = random.Random(0xC0DE)
        for _ in range(12):
            scalar = bytes(rnd.getrandbits(8) for _ in range(32))
            point = bytes(rnd.getrandbits(8) for _ in range(32))
            assert x25519(scalar, point) == _x25519_ladder(scalar, point)

    def test_backend_matches_ladder_on_low_order_point(self):
        from repro.crypto.suci import _x25519_ladder

        scalar = bytes(range(32))
        zero_point = bytes(32)  # order-1 point: all-zero shared secret
        assert x25519(scalar, zero_point) == bytes(32)
        assert _x25519_ladder(scalar, zero_point) == bytes(32)

    def test_public_key_derivation_agrees_with_ladder(self):
        from repro.crypto.suci import _BASE_POINT, _x25519_ladder

        private = bytes(reversed(range(32)))
        assert x25519_public_key(private) == _x25519_ladder(private, _BASE_POINT)
