"""Counter/gauge/histogram semantics and registry identity rules."""

import pytest

from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.sim.metrics import BoundedSeries


def test_counter_monotonic():
    registry = MetricsRegistry()
    counter = registry.counter("requests_total", server="amf")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)
    with pytest.raises(ValueError):
        counter.set(-2)
    counter.set(9)
    assert counter.value == 9


def test_counter_set_banks_total_across_resets():
    """Prometheus reset semantics: a decrease means the producer restarted.

    ``set`` tracks the raw snapshot; a drop below the last raw value banks
    the accumulated total and starts counting the new incarnation from
    zero, so the cumulative ``value`` never goes backwards.
    """
    counter = Counter("served_total", ())
    counter.set(10)
    counter.set(25)
    assert counter.value == 25
    counter.set(3)  # restart: 25 banked, new process already served 3
    assert counter.value == 28
    counter.set(7)
    assert counter.value == 32
    assert counter.raw == 7


def test_gauge_moves_both_ways():
    registry = MetricsRegistry()
    gauge = registry.gauge("open_connections", nf="ausf")
    gauge.set(3)
    gauge.set(1.5)
    assert gauge.value == 1.5


def test_gauge_rejects_non_finite():
    registry = MetricsRegistry()
    gauge = registry.gauge("temperature")
    for bad in (float("nan"), float("inf"), float("-inf")):
        with pytest.raises(ValueError):
            gauge.set(bad)
    gauge.set(2.5)
    assert gauge.value == 2.5


def test_histogram_rejects_non_finite():
    registry = MetricsRegistry()
    histogram = registry.histogram("latency_us")
    for bad in (float("nan"), float("inf"), float("-inf")):
        with pytest.raises(ValueError):
            histogram.observe(bad)
    assert histogram.count == 0


def test_registry_get_or_create_by_name_and_labels():
    registry = MetricsRegistry()
    a = registry.counter("x_total", nf="amf")
    b = registry.counter("x_total", nf="amf")
    c = registry.counter("x_total", nf="smf")
    assert a is b
    assert a is not c
    assert len(registry) == 2


def test_label_order_does_not_matter():
    registry = MetricsRegistry()
    a = registry.counter("y_total", nf="amf", peer="ausf")
    b = registry.counter("y_total", peer="ausf", nf="amf")
    assert a is b


def test_histogram_aggregates_exact_beyond_cap():
    registry = MetricsRegistry()
    histogram = registry.histogram("latency_us", cap=4, component="eudm")
    for value in range(10):
        histogram.observe(float(value))
    # Aggregates cover everything observed; the window holds the tail.
    assert histogram.count == 10
    assert histogram.total == 45.0
    assert histogram.minimum == 0.0
    assert histogram.maximum == 9.0
    assert list(histogram.series) == [6.0, 7.0, 8.0, 9.0]


def test_histogram_quantiles_guarded_when_empty():
    histogram = Histogram("empty_us", ())
    assert histogram.quantiles() == [None, None, None]
    histogram.observe(7.0)
    assert histogram.quantiles((50.0,)) == [7.0]


def test_histogram_adopts_live_series_without_copy():
    registry = MetricsRegistry()
    series = BoundedSeries()
    series.append(1.0)
    histogram = registry.histogram_from_series("lf_us", series, server="udm")
    assert histogram.series is series
    series.append(2.0)  # later appends are visible through the histogram
    assert histogram.count == 2
    assert histogram.total == 3.0


def test_registry_iteration_is_sorted_and_complete():
    registry = MetricsRegistry()
    registry.counter("b_total")
    registry.counter("a_total")
    registry.gauge("g")
    registry.histogram("h_us")
    assert [c.name for c in registry.counters()] == ["a_total", "b_total"]
    assert len(list(iter(registry))) == 4


def test_counter_standalone_construction():
    counter = Counter("z_total", (("nf", "upf"),))
    counter.inc(2)
    assert counter.labels == (("nf", "upf"),)
    assert counter.value == 2
