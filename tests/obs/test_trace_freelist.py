"""Span freelist: recycled spans are fully re-initialised on reuse.

The zero-alloc tracer keeps consumed :class:`Span` objects on a shared
module-level pool; ``Tracer.begin`` must overwrite every slot so a
recycled span can never leak the previous trace's name, kind,
timestamps, tags or children into a new one.
"""

from repro.obs import trace
from repro.obs.trace import Span, Tracer
from repro.sim.clock import SimClock


def _drain_pool():
    trace._SPAN_POOL.clear()


def test_recycle_returns_whole_tree_to_pool():
    _drain_pool()
    tracer = Tracer(SimClock())
    root = tracer.begin("registration", "registration")
    tracer.begin("nas", "nas")
    tracer.begin("ocall", "sgx.ocall")
    tracer.end(tracer._stack[-1])
    tracer.end(tracer._stack[-1])
    tracer.end(root)
    tracer.recycle(root)
    assert len(trace._SPAN_POOL) == 3
    assert tracer.roots == []


def test_recycled_span_never_leaks_prior_state():
    _drain_pool()
    clock = SimClock()
    tracer = Tracer(clock)

    first = tracer.begin("old-name", "old-kind", secret="hunter2", ue="ue-1")
    clock.advance(1_234)
    tracer.end(first, status=500)
    old_end = first.end_ns
    tracer.recycle(first)

    clock.advance(5_000)
    reused = tracer.begin("new-name", "new-kind", ue="ue-2")
    assert reused is first  # the pool actually served the recycled object
    assert reused.name == "new-name"
    assert reused.kind == "new-kind"
    assert reused.start_ns == clock.now_ns
    assert reused.end_ns == clock.now_ns
    assert reused.end_ns != old_end
    assert reused.tags == {"ue": "ue-2"}
    assert "secret" not in reused.tags
    assert "status" not in reused.tags
    assert reused.children == []
    tracer.end(reused)


def test_recycled_children_lists_are_emptied():
    _drain_pool()
    tracer = Tracer(SimClock())
    root = tracer.begin("root")
    child = tracer.begin("child")
    tracer.end(child)
    tracer.end(root)
    tracer.recycle(root)

    # Both spans sit in the pool with empty children; reusing one as a
    # fresh leaf must not resurrect the old parent/child edge.
    fresh_a = tracer.begin("a")
    fresh_b = tracer.begin("b")
    assert fresh_a.children == [fresh_b]
    assert fresh_b.children == []
    tracer.end(fresh_b)
    tracer.end(fresh_a)


def test_clear_recycle_true_pools_all_roots():
    _drain_pool()
    tracer = Tracer(SimClock())
    for i in range(4):
        span = tracer.begin(f"r{i}")
        tracer.end(span)
    tracer.clear(recycle=True)
    assert len(trace._SPAN_POOL) == 4
    assert tracer.roots == []

    # Plain clear() drops roots without pooling them.
    _drain_pool()
    span = tracer.begin("kept-alive")
    tracer.end(span)
    tracer.clear()
    assert trace._SPAN_POOL == []
    assert span.name == "kept-alive"


def test_pool_is_capacity_bounded():
    _drain_pool()
    tracer = Tracer(SimClock())
    original_cap, trace._SPAN_POOL_CAP = trace._SPAN_POOL_CAP, 2
    try:
        for i in range(5):
            span = tracer.begin(f"r{i}")
            tracer.end(span)
        tracer.clear(recycle=True)
        assert len(trace._SPAN_POOL) == 2
    finally:
        trace._SPAN_POOL_CAP = original_cap
        _drain_pool()


def test_pooled_begin_matches_constructed_span():
    _drain_pool()
    clock = SimClock()
    tracer = Tracer(clock)
    recycled = tracer.begin("x", "y", a=1)
    tracer.end(recycled)
    tracer.recycle(recycled)

    clock.advance(77)
    pooled = tracer.begin("same", "kind", tag="v")
    reference = Span("same", "kind", clock.now_ns, tag="v")
    assert pooled.name == reference.name
    assert pooled.kind == reference.kind
    assert pooled.start_ns == reference.start_ns
    assert pooled.end_ns == reference.end_ns
    assert pooled.tags == reference.tags
    assert pooled.children == reference.children
    tracer.end(pooled)
