"""Distributed-trace identity: deterministic ids, W3C propagation,
tail-based trace store."""

import json

from repro.experiments.harness import warmed_testbed
from repro.obs.trace import (
    Span,
    TraceStore,
    Tracer,
    parse_traceparent,
    span_context_id,
    span_from_dict,
    trace_context_id,
    traceparent_of,
)
from repro.paka.deploy import IsolationMode
from repro.sim.clock import SimClock


def _walk(node):
    yield node
    for child in node["children"]:
        yield from _walk(child)


def test_trace_ids_are_deterministic_and_distinct():
    tid = trace_context_id(7, "imsi-001", 1)
    assert tid == trace_context_id(7, "imsi-001", 1)
    assert len(tid) == 32 and int(tid, 16) >= 0
    # Any coordinate change mints a different id.
    assert trace_context_id(8, "imsi-001", 1) != tid
    assert trace_context_id(7, "imsi-002", 1) != tid
    assert trace_context_id(7, "imsi-001", 2) != tid
    sid = span_context_id(tid, 0)
    assert sid == span_context_id(tid, 0)
    assert len(sid) == 16
    assert span_context_id(tid, 1) != sid


def test_tracer_stamps_identity_in_begin_order():
    tracer = Tracer(SimClock(), trace_seed=7)
    trace_id = tracer.start_trace("imsi-001")
    assert trace_id == trace_context_id(7, "imsi-001", 1)
    assert tracer.current_trace_id == trace_id
    root = tracer.begin("registration", kind="registration")
    child = tracer.begin("request", kind="sbi.request")
    assert root.trace_id == child.trace_id == trace_id
    assert root.span_id == span_context_id(trace_id, 0)
    assert child.span_id == span_context_id(trace_id, 1)
    assert root.parent_id is None
    assert child.parent_id == root.span_id
    tracer.end(child)
    tracer.end(root)
    assert tracer.end_trace() == (trace_id, "imsi-001", 1)
    # Re-registration of the same SUPI is a distinct trace.
    assert tracer.start_trace("imsi-001") == trace_context_id(7, "imsi-001", 2)
    tracer.end_trace()
    # Outside any trace context, spans stay unstamped.
    bare = tracer.begin("work", kind="L_F")
    assert bare.trace_id is None and bare.span_id is None
    tracer.end(bare)


def test_seedless_tracer_mints_no_trace_context():
    tracer = Tracer(SimClock())
    assert tracer.start_trace("imsi-001") is None
    span = tracer.begin("registration", kind="registration")
    assert span.trace_id is None
    tracer.end(span)


def test_recycled_spans_never_leak_stale_identity():
    tracer = Tracer(SimClock(), trace_seed=7)
    first = tracer.start_trace("imsi-001")
    root = tracer.begin("registration", kind="registration")
    tracer.end(root)
    tracer.end_trace()
    stale_span_id = root.span_id
    tracer.recycle(root)
    second = tracer.start_trace("imsi-002")
    reused = tracer.begin("registration", kind="registration")
    assert reused.trace_id == second != first
    assert reused.span_id == span_context_id(second, 0) != stale_span_id
    tracer.end(reused)
    tracer.end_trace()
    # And a recycled span opened with no context is wiped clean.
    tracer.recycle(reused)
    bare = tracer.begin("registration", kind="registration")
    assert bare.trace_id is None and bare.span_id is None
    tracer.end(bare)


def test_to_dict_tags_are_key_sorted():
    """Serialization pin: tag order at the call site must not leak into
    the serialized tree (shard digests are byte-compared)."""
    span = Span("serve", "sbi.server", 0, zulu=1, alpha=2, mike=3)
    span.end_ns = 10
    payload = span.to_dict()
    assert list(payload["tags"]) == ["alpha", "mike", "zulu"]
    # Identity keys appear only on stamped spans.
    assert "trace_id" not in payload
    span.trace_id, span.span_id = "ab" * 16, "cd" * 8
    stamped = span.to_dict()
    assert stamped["trace_id"] == "ab" * 16
    assert stamped["parent_id"] is None
    # Byte-stable regardless of insertion order.
    twin = Span("serve", "sbi.server", 0, mike=3, alpha=2, zulu=1)
    twin.end_ns = 10
    assert json.dumps(payload) == json.dumps(twin.to_dict())


def test_span_from_dict_round_trip_is_exact():
    tracer = Tracer(SimClock(), trace_seed=7)
    tracer.start_trace("imsi-001")
    root = tracer.begin("registration", kind="registration", ue="ue-1")
    child = tracer.begin("request", kind="sbi.request", dst="ausf")
    tracer.end(child)
    tracer.end(root)
    tracer.end_trace()
    tree = root.to_dict()
    assert span_from_dict(tree).to_dict() == tree


def test_traceparent_format_round_trips_and_rejects_garbage():
    header = traceparent_of("ab" * 16, "cd" * 8)
    assert header == f"00-{'ab' * 16}-{'cd' * 8}-01"
    assert parse_traceparent(header) == ("ab" * 16, "cd" * 8)
    for bad in ("", "00-xyz-01", header.upper(), header[:-1], header + "0"):
        assert parse_traceparent(bad) is None


def test_traceparent_propagates_across_every_sbi_hop():
    """One traced registration: every server span on every NF carries the
    client's traceparent, and its span id is the parent request span."""
    testbed = warmed_testbed(IsolationMode.SGX, seed=7)
    tracer = Tracer(
        testbed.host.clock, trace_seed=7, store=TraceStore(sample_every=1)
    )
    testbed.host.tracer = tracer
    outcome = testbed.register(testbed.add_subscriber(), establish_session=False)
    testbed.host.tracer = None
    assert outcome.success
    record = next(iter(tracer.store.records.values()))
    tree = record["root"]
    assert {node["trace_id"] for node in _walk(tree)} == {record["trace_id"]}

    def check(node, parent_request_span_id=None):
        if node["kind"] == "sbi.server":
            trace_id, span_id = parse_traceparent(node["tags"]["traceparent"])
            assert trace_id == record["trace_id"]
            assert span_id == parent_request_span_id
        next_parent = (
            node["span_id"] if node["kind"] == "sbi.request"
            else parent_request_span_id
        )
        for child in node["children"]:
            check(child, next_parent)

    check(tree)
    servers = {
        node["tags"]["server"] for node in _walk(tree)
        if node["kind"] == "sbi.server"
    }
    assert len(servers) >= 3  # cross-NF: AMF, AUSF, UDM at least
    # Parent links all resolve inside the tree.
    span_ids = {node["span_id"] for node in _walk(tree)}
    for node in _walk(tree):
        assert node["parent_id"] is None or node["parent_id"] in span_ids


def test_distributed_tracing_spends_no_simulated_time():
    plain = warmed_testbed(IsolationMode.SGX, seed=7)
    traced = warmed_testbed(IsolationMode.SGX, seed=7)
    traced.host.tracer = Tracer(
        traced.host.clock, trace_seed=7, store=TraceStore(sample_every=1)
    )
    plain.register(plain.add_subscriber(), establish_session=False)
    traced.register(traced.add_subscriber(), establish_session=False)
    assert plain.host.clock.now_ns == traced.host.clock.now_ns


def _offer(store, trace_id, success=True, sojourn_ns=0):
    span = Span("registration", "registration", 0)
    span.end_ns = sojourn_ns or 1
    return store.offer(
        span, trace_id, supi="imsi-001", attempt=1,
        success=success, sojourn_ns=sojourn_ns,
    )


def test_store_keep_reasons():
    store = TraceStore(cap=8, sample_every=4, deadline_ms=1.0)
    sampled = "00000004" + "0" * 24   # int % 4 == 0 -> head sample
    skipped = "00000005" + "0" * 24   # int % 4 == 1 -> dropped
    assert store.keep_reason(skipped, False, 0) == "tail_failed"
    assert store.keep_reason(skipped, True, 2_000_000) == "tail_deadline"
    assert store.keep_reason(sampled, True, 0) == "head_sample"
    assert store.keep_reason(skipped, True, 0) is None
    assert _offer(store, skipped, success=False)
    assert not _offer(store, skipped[:-1] + "1", success=True)
    assert store.seen == 2 and store.kept_tail == 1 and store.kept_head == 0


def test_store_evicts_head_samples_before_tail_records():
    store = TraceStore(cap=2, sample_every=1, deadline_ms=1.0)
    _offer(store, "a" * 32, success=False)                    # tail
    _offer(store, "b" * 32, success=True)                     # head
    _offer(store, "c" * 32, success=True, sojourn_ns=9**9)    # tail -> evicts b
    assert store.trace_ids() == ["a" * 32, "c" * 32]
    assert store.evicted == 1
    _offer(store, "d" * 32, success=False)                    # no head left
    assert store.trace_ids() == ["c" * 32, "d" * 32]          # oldest overall


def test_store_absorb_stamps_extra_fields_and_sums_counters():
    worker = TraceStore(cap=8, sample_every=1)
    _offer(worker, "a" * 32, success=False)
    _offer(worker, "b" * 32, success=True)
    merged = TraceStore(cap=None)
    merged.absorb(worker.to_dict(), shard="3")
    assert merged.seen == worker.seen
    assert merged.kept_tail == 1 and merged.kept_head == 1
    assert all(r["shard"] == "3" for r in merged.records.values())
    # Snapshot order is offer order; absorb preserves it.
    assert merged.trace_ids() == worker.trace_ids()
