"""Scraper cadence semantics and counter-reset survival across NF restarts."""

import pytest

from repro.experiments.harness import warmed_testbed
from repro.obs.collect import collect_testbed_metrics
from repro.obs.metrics import MetricsRegistry
from repro.obs.scrape import Scraper
from repro.obs.tsdb import NS_PER_S
from repro.sim.clock import SimClock
from repro.testbed import IsolationMode


class _Host:
    monitor = None


def _registry_producer(state):
    def collect():
        registry = MetricsRegistry()
        registry.counter("ticks_total").set(state["ticks"])
        return registry

    return collect


def test_scraper_samples_on_the_cadence_grid():
    clock = SimClock()
    state = {"ticks": 0}
    host = _Host()
    scraper = Scraper(clock, _registry_producer(state), cadence_s=1.0)
    scraper.install(host)
    assert host.monitor is scraper
    assert scraper.scrapes == 1  # install takes a baseline sample

    # Within the first cadence interval: no sample.
    clock.advance_s(0.5)
    scraper.tick()
    assert scraper.scrapes == 1

    # Crossing a deadline samples exactly once, at the tick's sim time.
    clock.advance_s(0.6)
    state["ticks"] = 3
    scraper.tick()
    assert scraper.scrapes == 2
    series = scraper.tsdb.get("ticks_total")
    assert series.latest() == (int(1.1 * NS_PER_S), 3.0)

    scraper.uninstall(host)
    assert host.monitor is None


def test_scraper_coalesces_missed_deadlines_into_one_sample():
    # A coarse tick site (one idle slice spanning many cadence periods)
    # must not fabricate intermediate snapshots: one scrape, then the
    # deadline re-aligns to the grid.
    clock = SimClock()
    state = {"ticks": 0}
    scraper = Scraper(clock, _registry_producer(state), cadence_s=1.0)
    scraper.install(_Host())
    clock.advance_s(5.5)
    scraper.tick()
    assert scraper.scrapes == 2
    scraper.tick()  # still before the re-aligned 6.0 s deadline
    assert scraper.scrapes == 2
    clock.advance_s(0.5)
    scraper.tick()
    assert scraper.scrapes == 3


def test_scraper_rejects_double_install_and_bad_cadence():
    clock = SimClock()
    host = _Host()
    Scraper(clock, _registry_producer({"ticks": 0})).install(host)
    with pytest.raises(RuntimeError):
        Scraper(clock, _registry_producer({"ticks": 0})).install(host)
    with pytest.raises(ValueError):
        Scraper(clock, _registry_producer({"ticks": 0}), cadence_s=0.0)


def test_disabled_scraper_never_samples():
    clock = SimClock()
    scraper = Scraper(clock, _registry_producer({"ticks": 0}))
    scraper.install(_Host())
    scraper.enabled = False
    clock.advance_s(10.0)
    scraper.tick()
    assert scraper.scrapes == 1  # the install baseline only


def test_nf_restart_counter_reset_is_detected_and_banked():
    """NF death + revive under ``collect_testbed_metrics``.

    Both reset paths must survive a restart: a *persistent* registry
    (``Counter.set`` banks the pre-reset total) and the Tsdb recording
    rules (``increase`` re-derives the same total from raw samples of
    fresh per-scrape registries).
    """
    testbed = warmed_testbed(IsolationMode.SGX, seed=7)
    clock = testbed.host.clock
    scraper = Scraper.for_testbed(testbed, cadence_s=1.0).install(testbed.host)
    persistent = MetricsRegistry()
    start_ns = clock.now_ns
    served_at_baseline = testbed.ausf.server.requests_served  # warmup traffic

    def served(registry):
        return registry.counter(
            "http_requests_served_total", server="ausf"
        ).value

    collect_testbed_metrics(testbed, registry=persistent)
    served_before_any = served(persistent)

    for _ in range(3):
        testbed.register(testbed.add_subscriber(), establish_session=False)
        testbed.idle(1.0)
    collect_testbed_metrics(testbed, registry=persistent)
    served_first_life = served(persistent)
    assert served_first_life > served_before_any

    # Kill + revive: the AUSF process restarts with zeroed statistics.
    raw_before_restart = testbed.ausf.server.requests_served
    testbed.ausf.restart()
    assert testbed.ausf.server.requests_served == 0

    for _ in range(2):
        outcome = testbed.register(testbed.add_subscriber(), establish_session=False)
        assert outcome.success  # peers re-handshake through poisoned conns
        testbed.idle(1.0)
    collect_testbed_metrics(testbed, registry=persistent)

    # Persistent-registry path: the cumulative value never went backwards
    # and covers both incarnations.
    raw_after_restart = testbed.ausf.server.requests_served
    assert raw_after_restart < raw_before_restart
    assert served(persistent) == served_first_life + raw_after_restart

    # Tsdb path: increase() over the whole run banks the reset the same
    # way.  The window starts at the install baseline, so warmup traffic
    # served *before* monitoring began is rightly excluded.
    scraper.scrape()
    window_ns = clock.now_ns - start_ns
    increase = scraper.tsdb.increase(
        "http_requests_served_total", window_ns, clock.now_ns, server="ausf"
    )
    assert increase == (
        raw_before_restart - served_at_baseline
    ) + raw_after_restart
    scraper.uninstall(testbed.host)
