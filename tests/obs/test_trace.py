"""Tracer and span-tree mechanics (simulated-clock boundaries, LIFO)."""

import pytest

from repro.obs.trace import Span, SpanNestingError, Tracer, format_span_tree
from repro.sim.clock import SimClock


def test_span_boundaries_read_the_simulated_clock():
    clock = SimClock()
    tracer = Tracer(clock)
    span = tracer.begin("work", kind="L_F")
    clock.advance_us(125.0)
    tracer.end(span)
    assert span.ns == 125_000
    assert span.us == 125.0


def test_children_attach_to_the_innermost_open_span():
    clock = SimClock()
    tracer = Tracer(clock)
    root = tracer.begin("registration", kind="registration")
    child = tracer.begin("request", kind="sbi.request")
    grandchild = tracer.begin("serve", kind="sbi.server")
    tracer.end(grandchild)
    tracer.end(child)
    tracer.end(root)
    assert tracer.roots == [root]
    assert root.children == [child]
    assert child.children == [grandchild]
    assert [s.name for s in root.walk()] == ["registration", "request", "serve"]


def test_out_of_order_close_raises():
    tracer = Tracer(SimClock())
    outer = tracer.begin("outer")
    tracer.begin("inner")
    with pytest.raises(SpanNestingError):
        tracer.end(outer)


def test_end_on_empty_stack_raises():
    tracer = Tracer(SimClock())
    span = tracer.begin("only")
    tracer.end(span)
    with pytest.raises(SpanNestingError):
        tracer.end(span)


def test_clear_refuses_while_spans_open():
    tracer = Tracer(SimClock())
    tracer.begin("open")
    with pytest.raises(SpanNestingError):
        tracer.clear()


def test_span_context_manager_closes_on_error():
    clock = SimClock()
    tracer = Tracer(clock)
    with pytest.raises(RuntimeError):
        with tracer.span("failing", kind="L_F"):
            clock.advance_us(10.0)
            raise RuntimeError("handler blew up")
    assert tracer.depth == 0
    assert tracer.roots[0].us == 10.0


def test_find_and_child_of_kind():
    tracer = Tracer(SimClock())
    root = tracer.begin("root", kind="registration")
    lt = tracer.begin("window", kind="L_T")
    lf = tracer.begin("handler", kind="L_F")
    tracer.end(lf)
    tracer.end(lt)
    tracer.end(root)
    assert root.find("L_F") == [lf]
    assert lt.child_of_kind("L_F") is lf
    assert lt.child_of_kind("sgx.ocall") is None


def test_to_dict_round_trips_the_tree_shape():
    clock = SimClock()
    tracer = Tracer(clock)
    root = tracer.begin("root", kind="registration", ue="ue-1")
    clock.advance_us(5.0)
    tracer.end(root, success=True)
    payload = root.to_dict()
    assert payload["kind"] == "registration"
    assert payload["tags"] == {"ue": "ue-1", "success": True}
    assert payload["end_ns"] - payload["start_ns"] == 5_000


def test_format_span_tree_collapses_ocall_bursts():
    clock = SimClock()
    tracer = Tracer(clock)
    root = tracer.begin("serve", kind="sbi.server", server="eudm-paka-srv-0")
    for _ in range(5):
        span = tracer.begin("read", kind="sgx.ocall")
        clock.advance_us(1.0)
        tracer.end(span)
    tracer.end(root)
    lines = format_span_tree(root)
    assert len(lines) == 2  # root + one collapsed summary line
    assert "5 sgx.ocall spans" in lines[1]
    assert "readx5" in lines[1]


def test_span_repr_is_compact():
    span = Span("x", "L_F", 0)
    assert "L_F" in repr(span)
