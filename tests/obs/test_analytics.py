"""Trace analytics: exact integer-ns breakdowns, critical paths, the
slowest-traces digest."""

import json

from repro.experiments.harness import warmed_testbed
from repro.obs.analytics import (
    critical_path,
    registration_breakdown_ns,
    slowest_traces_digest,
)
from repro.obs.trace import (
    TraceStore,
    Tracer,
    registration_breakdown,
    span_from_dict,
)
from repro.paka.deploy import IsolationMode


def _traced_store(seed=7, registrations=2):
    testbed = warmed_testbed(IsolationMode.SGX, seed=seed)
    tracer = Tracer(
        testbed.host.clock, trace_seed=seed, store=TraceStore(sample_every=1)
    )
    testbed.host.tracer = tracer
    for _ in range(registrations):
        outcome = testbed.register(
            testbed.add_subscriber(), establish_session=False
        )
        assert outcome.success
    testbed.host.tracer = None
    module_servers = {
        name: module.server.name
        for name, module in sorted(testbed.paka.modules.items())
    }
    module_runtimes = {
        name: module.runtime.name
        for name, module in sorted(testbed.paka.modules.items())
    }
    return tracer.store, module_servers, module_runtimes


def test_breakdown_ns_agrees_exactly_with_the_float_breakdown():
    """round(us * 1000) == ns for every module and every figure: the
    float-µs table is the integer-ns table divided by 1000."""
    store, module_servers, module_runtimes = _traced_store()
    assert len(store) >= 1
    pairs = (
        ("lf_us", "lf_ns"), ("lt_us", "lt_ns"), ("ln_us", "ln_ns"),
        ("r_us", "r_ns"), ("shield_us", "shield_ns"),
        ("copy_us", "copy_ns"), ("host_us", "host_ns"),
        ("transition_us", "transition_ns"),
    )
    for record in store.records.values():
        ns = registration_breakdown_ns(
            record["root"], module_servers, module_runtimes
        )
        us = registration_breakdown(
            span_from_dict(record["root"]), module_servers, module_runtimes
        )
        assert set(ns) == set(us)
        for module in ns:
            for us_key, ns_key in pairs:
                assert round(us[module][us_key] * 1000) == ns[module][ns_key]
            for count in ("requests", "eenters", "eexits", "ocalls"):
                assert us[module][count] == ns[module][count]
            assert ns[module]["lt_ns"] - ns[module]["lf_ns"] == ns[module]["ln_ns"]


def test_breakdown_ns_accepts_live_spans_and_dict_trees():
    store, module_servers, module_runtimes = _traced_store(registrations=1)
    record = next(iter(store.records.values()))
    from_dict = registration_breakdown_ns(
        record["root"], module_servers, module_runtimes
    )
    from_span = registration_breakdown_ns(
        span_from_dict(record["root"]), module_servers, module_runtimes
    )
    assert from_dict == from_span


def test_critical_path_descends_the_longest_child():
    tree = {
        "name": "root", "kind": "registration", "start_ns": 0, "end_ns": 100,
        "tags": {}, "children": [
            {"name": "short", "kind": "nas", "start_ns": 0, "end_ns": 30,
             "tags": {}, "children": []},
            {"name": "long", "kind": "nas", "start_ns": 30, "end_ns": 90,
             "tags": {}, "children": [
                 {"name": "leaf", "kind": "sbi.request", "start_ns": 40,
                  "end_ns": 80, "tags": {}, "children": []},
             ]},
        ],
    }
    path = critical_path(tree)
    assert [frame["name"] for frame in path] == ["root", "long", "leaf"]
    assert path[0]["ns"] == 100
    assert path[0]["self_ns"] == 100 - 30 - 60
    assert path[1]["self_ns"] == 60 - 40
    assert path[2]["self_ns"] == path[2]["ns"] == 40


def test_critical_path_ties_break_on_earliest_start():
    tree = {
        "name": "root", "kind": "registration", "start_ns": 0, "end_ns": 100,
        "tags": {}, "children": [
            {"name": "second", "kind": "nas", "start_ns": 50, "end_ns": 90,
             "tags": {}, "children": []},
            {"name": "first", "kind": "nas", "start_ns": 10, "end_ns": 50,
             "tags": {}, "children": []},
        ],
    }
    assert [f["name"] for f in critical_path(tree)] == ["root", "first"]


def test_digest_is_deterministic_and_ranked_by_duration():
    store, module_servers, module_runtimes = _traced_store(registrations=3)
    dump = store.to_dict()
    digest = slowest_traces_digest(
        dump, top=10, module_servers=module_servers,
        module_runtimes=module_runtimes,
    )
    assert digest["schema"] == 1
    assert digest["seen"] == 3 and digest["kept"] == 3
    durations = [entry["duration_ns"] for entry in digest["slowest"]]
    assert durations == sorted(durations, reverse=True)
    for entry in digest["slowest"]:
        assert entry["critical_path"][0]["kind"] == "registration"
        assert entry["critical_path"][0]["ns"] == entry["duration_ns"]
        assert set(entry["modules_ns"]) == set(module_servers)
    # Pure function of the record set: byte-identical on re-computation.
    again = slowest_traces_digest(
        dump, top=10, module_servers=module_servers,
        module_runtimes=module_runtimes,
    )
    assert json.dumps(digest, sort_keys=True) == json.dumps(again, sort_keys=True)


def test_digest_top_limits_entries_but_not_counters():
    store, module_servers, module_runtimes = _traced_store(registrations=3)
    digest = slowest_traces_digest(store.to_dict(), top=1)
    assert len(digest["slowest"]) == 1
    assert digest["seen"] == 3 and digest["kept"] == 3
    assert "modules_ns" not in digest["slowest"][0]
