"""Profiler exactness: folded stacks agree with the span-derived tables."""

import pytest

from repro.experiments.harness import warmed_testbed
from repro.obs.flame import (
    collapsed_text,
    parse_collapsed_text,
    sanitize_frame,
    totals_by_frame,
)
from repro.obs.profile import fold_registration, profile_registration
from repro.obs.trace import Span
from repro.testbed import IsolationMode


def test_sanitize_frame_strips_structural_characters():
    assert sanitize_frame("a;b c\td\ne") == "a:b_c_d_e"
    assert sanitize_frame("") == "_"


def test_collapsed_text_round_trips_and_sorts():
    stacks = {("b", "y"): 3, ("a", "x"): 5, ("a",): 0}
    text = collapsed_text(stacks)
    assert text == "a;x 5\nb;y 3\n"  # zero-value stacks are skipped
    assert parse_collapsed_text(text) == {("a", "x"): 5, ("b", "y"): 3}
    assert collapsed_text({}) == ""
    with pytest.raises(ValueError):
        parse_collapsed_text("justonetoken\n")


def test_totals_by_frame_aggregates_leaves():
    stacks = {("a", "x"): 5, ("b", "x"): 2, ("b",): 1}
    assert totals_by_frame(stacks) == {"x": 7, "b": 1}


def _synthetic_ocall_tree():
    # registration(1000) > ocall(600, components 100+50+25+125=300).
    root = Span("registration", "registration", 0)
    root.end_ns = 1_000
    ocall = Span(
        "sendmsg",
        "sgx.ocall",
        100,
        runtime="eudm-rt",
        transition_ns=100,
        shield_ns=50,
        copy_ns=25,
        host_ns=125,
    )
    ocall.end_ns = 700
    root.children.append(ocall)
    return root


def test_fold_splits_ocalls_into_component_subframes():
    profile = fold_registration(
        _synthetic_ocall_tree(),
        module_servers={"eudm": "eudm-srv"},
        module_runtimes={"eudm": "eudm-rt"},
    )
    ocall_frame = "eudm:ocall:sendmsg"
    assert profile.stacks[("registration", ocall_frame, "transition")] == 100
    assert profile.stacks[("registration", ocall_frame, "shield")] == 50
    assert profile.stacks[("registration", ocall_frame, "copy")] == 25
    assert profile.stacks[("registration", ocall_frame, "host")] == 125
    # The untagged remainder of the OCALL span stays on the OCALL frame,
    # and the registration keeps its own self time: totals are lossless.
    assert profile.stacks[("registration", ocall_frame)] == 600 - 300
    assert profile.stacks[("registration",)] == 1_000 - 600
    assert profile.total_ns == 1_000
    assert profile.module_transition_ns("eudm") == 100
    assert profile.agreement_errors() == {}


def test_profile_matches_trace_breakdown_bit_for_bit():
    """The acceptance contract: the flame-graph fold and the span-derived
    Table III decomposition (``repro trace``) agree exactly — counts and
    component microseconds — on a real SGX registration."""
    testbed = warmed_testbed(IsolationMode.SGX, seed=7)
    profile, trace = profile_registration(testbed, establish_session=False)
    assert trace.outcome.success
    assert profile.agreement_errors() == {}
    # The fold is lossless: self times sum back to the root interval.
    assert profile.total_ns == profile.root.ns
    # Collapsed text round-trips to the identical stack map.
    assert parse_collapsed_text(profile.collapsed()) == profile.stacks
    # Every shielded module shows Table III activity.
    assert sorted(profile.modules) == ["eamf", "eausf", "eudm"]
    for module, row in profile.modules.items():
        assert row["eenters"] > 0 and row["eenters"] == row["eexits"], module
        assert row["ocalls"] >= row["eenters"], module
        assert row["transition_us"] > 0, module
        assert profile.module_transition_ns(module) == row["transition_ns"]


def test_profile_is_deterministic_per_seed():
    first = profile_registration(warmed_testbed(IsolationMode.SGX, seed=11))[0]
    second = profile_registration(warmed_testbed(IsolationMode.SGX, seed=11))[0]
    assert first.collapsed() == second.collapsed()
    assert first.modules == second.modules
