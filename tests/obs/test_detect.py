"""Attack classification verdicts and the alert-armed admission loop."""

import pytest

from repro.fivegc.admission import AdmissionController
from repro.obs.detect import (
    ATTACK_VERDICTS,
    VERDICTS,
    AdmissionGovernor,
    AttackClassifier,
    DetectorConfig,
    GovernorConfig,
    evaluate_detector,
)
from repro.obs.slo import BurnRateWindow
from repro.obs.tsdb import NS_PER_S, Tsdb

AT = 10 * NS_PER_S  # classify at t=10s over the default 4s window


def _feed_counter(tsdb, name, per_s, seconds=11, **labels):
    series = tsdb.series(name, kind="counter", **labels)
    for second in range(seconds):
        series.append(second * NS_PER_S, per_s * second)


def _feed_sojourn(tsdb, mean_ms, per_s=5, seconds=11, gnb="gnb"):
    for suffix, step in (("_count", per_s), ("_sum", per_s * mean_ms)):
        series = tsdb.series(
            "gnb_registration_sojourn_ms" + suffix, kind="counter", gnb=gnb
        )
        for second in range(seconds):
            series.append(second * NS_PER_S, step * second)


def _storm_tsdb(arrivals_per_s=40.0, resyncs=0.0, errors=0.0, accepts=0.0):
    tsdb = Tsdb()
    _feed_counter(
        tsdb, "amf_nas_registration_arrivals_total", arrivals_per_s,
        nf="amf", gnb="gnb-atk-0",
    )
    _feed_counter(
        tsdb, "amf_auth_resync_requests_total", resyncs, nf="amf"
    )
    _feed_counter(
        tsdb, "amf_nas_protocol_errors_total", errors, nf="amf"
    )
    _feed_counter(
        tsdb, "amf_nas_registration_accepted_total", accepts,
        nf="amf", gnb="gnb-atk-0",
    )
    _feed_sojourn(tsdb, mean_ms=60.0)
    return tsdb


def test_classifier_names_each_storm_signature():
    cases = [
        (dict(), "suci_replay"),
        (dict(resyncs=38.0), "auts_resync"),
        (dict(errors=20.0), "nas_fuzz"),
        (dict(accepts=38.0), "botnet_ddos"),
    ]
    classifier = AttackClassifier()
    for kwargs, expected in cases:
        verdict = classifier.classify_at(_storm_tsdb(**kwargs), AT)
        assert verdict.verdict == expected, kwargs
        assert verdict.evidence["attack_arrival_rate_per_s"] == pytest.approx(
            40.0
        )


def test_classifier_sees_queueing_collapse_without_attack_cells():
    # The PR 8 blind spot: every registration succeeds, only the sojourn
    # deadline dies — and there is no hostile cell anywhere.
    tsdb = Tsdb()
    _feed_sojourn(tsdb, mean_ms=900.0)
    verdict = AttackClassifier().classify_at(tsdb, AT)
    assert verdict.verdict == "queueing_collapse"
    assert verdict.evidence["legit_sojourn_mean_ms"] == pytest.approx(900.0)


def test_classifier_healthy_and_noise_floor():
    tsdb = Tsdb()
    _feed_sojourn(tsdb, mean_ms=55.0)
    assert AttackClassifier().classify_at(tsdb, AT).verdict == "none"
    # Hostile arrivals under the noise floor do not make a storm.
    quiet = _storm_tsdb(arrivals_per_s=2.0)
    assert AttackClassifier().classify_at(quiet, AT).verdict == "none"
    # An empty Tsdb (pre-traffic) is healthy, not an error.
    assert AttackClassifier().classify_at(Tsdb(), 0).verdict == "none"


def test_classify_replays_the_scrape_timeline():
    tsdb = _storm_tsdb(resyncs=38.0)
    tsdb.scrape_times = [5 * NS_PER_S, 10 * NS_PER_S]
    verdicts = AttackClassifier().classify(tsdb)
    assert [v.verdict for v in verdicts] == ["auts_resync", "auts_resync"]
    payload = verdicts[0].to_dict()
    assert payload["at_s"] == 5.0 and payload["verdict"] == "auts_resync"
    assert set(ATTACK_VERDICTS) < set(VERDICTS)


# ------------------------------------------------------------- governor


class _StubAmf:
    def __init__(self):
        self.admission = None
        self.max_pending_sessions = None


class _Burning:
    """A stand-in SLO that always fires its burn windows."""

    windows = (BurnRateWindow("fast", long_s=1.0, short_s=1.0, factor=1.0),)

    def burn_rate(self, tsdb, window_ns, at_ns):
        return 2.0


def _governor(amf, slos=(), **overrides):
    return AdmissionGovernor(
        amf, AttackClassifier(DetectorConfig()), slos=slos,
        config=GovernorConfig(**overrides),
    )


def test_governor_arms_ingress_on_attack_verdict():
    amf = _StubAmf()
    governor = _governor(amf)
    governor.on_scrape(_storm_tsdb(accepts=38.0), AT)
    assert governor.armed == ("source", "gnb")
    assert isinstance(amf.admission, AdmissionController)
    config = amf.admission.config
    assert config.per_source_rate_per_s is not None
    assert config.gnb_rate_per_s is not None
    assert config.breaker_max_per_s is None  # breaker is not an ingress arm
    assert amf.max_pending_sessions is None
    assert [a["action"] for a in governor.actions] == ["arm"]
    assert governor.actions[0]["verdict"] == "botnet_ddos"


def test_governor_arms_breaker_on_unattributed_burn():
    amf = _StubAmf()
    governor = _governor(amf, slos=[_Burning()])
    governor.on_scrape(Tsdb(), AT)  # verdict none, but the SLO burns
    assert governor.armed == ("breaker",)
    assert amf.admission.config.breaker_max_per_s is not None
    assert amf.max_pending_sessions == GovernorConfig().max_pending


def test_governor_escalates_only_on_sustained_burn():
    amf = _StubAmf()
    governor = _governor(amf, slos=[_Burning()], escalate_after=3)
    tsdb = _storm_tsdb()  # attack verdict + burning
    governor.on_scrape(tsdb, AT)
    assert governor.armed == ("source", "gnb")
    for step in range(1, 3):
        governor.on_scrape(tsdb, AT + step)
        assert governor.armed == ("source", "gnb")  # not yet sustained
    governor.on_scrape(tsdb, AT + 3)
    assert governor.armed == ("source", "gnb", "breaker")
    assert [a["action"] for a in governor.actions] == ["arm", "escalate"]


def test_governor_hysteresis_and_stand_down_restores_baseline():
    amf = _StubAmf()
    baseline = object()
    amf.admission = baseline
    amf.max_pending_sessions = 99
    governor = _governor(amf, disarm_after=3)
    governor.on_scrape(_storm_tsdb(), AT)
    assert governor.armed and amf.admission is not baseline
    quiet = Tsdb()
    for step in range(1, 3):
        governor.on_scrape(quiet, AT + step)
        assert governor.armed  # hysteresis: not enough quiet yet
    governor.on_scrape(quiet, AT + 3)
    assert governor.armed == ()
    assert amf.admission is baseline
    assert amf.max_pending_sessions == 99
    assert [a["action"] for a in governor.actions] == ["arm", "stand_down"]
    payload = governor.to_dict()
    assert payload["armed"] == []
    assert [a["action"] for a in payload["actions"]] == ["arm", "stand_down"]


def test_quiescent_governor_touches_nothing():
    amf = _StubAmf()
    governor = _governor(amf)
    tsdb = Tsdb()
    _feed_sojourn(tsdb, mean_ms=55.0)
    for step in range(20):
        governor.on_scrape(tsdb, AT + step)
    assert governor.armed == () and governor.actions == []
    assert amf.admission is None and amf.max_pending_sessions is None
    assert governor.scrapes_seen == 20


# ------------------------------------------------------------ evaluation

_QUICK_EVAL = dict(seed=29, horizon_s=4.0, legit=6, attack_rate_per_s=40.0)


def test_detector_confusion_matrix_is_diagonal_at_quick_scale():
    result = evaluate_detector(**_QUICK_EVAL)
    for scenario in result["scenarios"]:
        assert scenario["modal_verdict"] == scenario["expected"], scenario
        if scenario["expected"] != "none":
            assert scenario["detection_latency_s"] is not None
    assert result["accuracy"] >= 0.8


def test_detector_evaluation_is_byte_identical_per_seed():
    import json

    first = json.dumps(evaluate_detector(**_QUICK_EVAL), sort_keys=True)
    second = json.dumps(evaluate_detector(**_QUICK_EVAL), sort_keys=True)
    assert first == second
