"""Pull-collection from a live testbed and single-registration tracing."""

import pytest

from repro.obs.collect import collect_testbed_metrics, trace_registration
from repro.obs.metrics import MetricsRegistry
from repro.testbed import IsolationMode, Testbed, TestbedConfig


@pytest.fixture(scope="module")
def native_testbed():
    testbed = Testbed.build(TestbedConfig(isolation=None, seed=5))
    testbed.register(testbed.add_subscriber())
    return testbed


def test_collect_covers_nfs_gnb_and_clock(native_testbed):
    registry = native_testbed.collect_metrics()
    counters = {
        (c.name, c.labels): c.value for c in registry.counters()
    }
    assert counters[
        ("gnb_registrations_succeeded_total", (("gnb", "gnb-0"),))
    ] == 1
    assert counters[
        ("sim_clock_ns_total", (("host", "poweredge-r450"),))
    ] == native_testbed.host.clock.now_ns
    # Every NF server shows up with its request count.
    served = [
        c for c in registry.counters() if c.name == "http_requests_served_total"
    ]
    assert len(served) >= 7


def test_collect_is_idempotent_in_one_registry(native_testbed):
    registry = MetricsRegistry()
    native_testbed.collect_metrics(registry)
    first = {(c.name, c.labels): c.value for c in registry.counters()}
    native_testbed.collect_metrics(registry)
    second = {(c.name, c.labels): c.value for c in registry.counters()}
    assert first == second


def test_histograms_adopt_the_live_server_series(native_testbed):
    registry = native_testbed.collect_metrics()
    amf_lf = next(
        h for h in registry.histograms()
        if h.name == "http_lf_us" and ("server", "amf") in h.labels
    )
    assert amf_lf.series is native_testbed.amf.server.lf_us


def test_collection_does_not_advance_the_clock(native_testbed):
    before = native_testbed.host.clock.now_ns
    native_testbed.collect_metrics()
    assert native_testbed.host.clock.now_ns == before


def test_trace_registration_native():
    testbed = Testbed.build(TestbedConfig(isolation=None, seed=6))
    trace = trace_registration(testbed)
    assert trace.outcome.success
    assert trace.root.kind == "registration"
    assert trace.breakdown == {}  # no P-AKA modules in the monolithic build
    assert testbed.host.tracer is None  # uninstalled afterwards


def test_trace_registration_refuses_double_install():
    testbed = Testbed.build(TestbedConfig(isolation=None, seed=6))
    from repro.obs.trace import Tracer

    testbed.host.tracer = Tracer(testbed.host.clock)
    with pytest.raises(RuntimeError):
        trace_registration(testbed)


def test_sgx_collection_includes_table3_counters():
    testbed = Testbed.build(TestbedConfig(seed=9))
    testbed.register(testbed.add_subscriber())
    registry = testbed.collect_metrics()
    eenters = {
        c.labels: c.value for c in registry.counters()
        if c.name == "sgx_eenters_total"
    }
    assert set(eenters) == {
        (("component", "eamf"),), (("component", "eausf"),),
        (("component", "eudm"),),
    }
    for value in eenters.values():
        assert value > 0
