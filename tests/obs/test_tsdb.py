"""Tsdb semantics: retention, ingest shape, query-time recording rules."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.tsdb import NS_PER_S, Tsdb, TsdbSeries


def _counter_series(tsdb, points, name="req_total", **labels):
    series = tsdb.series(name, kind="counter", **labels)
    for ts_s, value in points:
        series.append(int(ts_s * NS_PER_S), value)
    return series


def test_series_rejects_unknown_kind_and_tiny_cap():
    with pytest.raises(ValueError):
        TsdbSeries("x", (), kind="summary")
    with pytest.raises(ValueError):
        TsdbSeries("x", (), cap=1)


def test_series_rejects_backwards_time_and_non_finite():
    series = TsdbSeries("x", ())
    series.append(10, 1.0)
    with pytest.raises(ValueError):
        series.append(9, 2.0)
    with pytest.raises(ValueError):
        series.append(11, float("nan"))
    series.append(10, 3.0)  # equal timestamps are allowed
    assert len(series) == 2


def test_series_retention_drops_oldest_half():
    # The BoundedSeries contract: beyond the cap, shed the oldest half of
    # the retained window so recent history stays dense.
    series = TsdbSeries("x", (), cap=4)
    for ts in range(5):
        series.append(ts, float(ts))
    assert [value for _, value in series.samples] == [2.0, 3.0, 4.0]
    assert series.window(0, 10) == [(2, 2.0), (3, 3.0), (4, 4.0)]


def test_tsdb_series_identity_and_kind_conflict():
    tsdb = Tsdb()
    a = tsdb.series("req_total", kind="counter", nf="amf")
    b = tsdb.series("req_total", kind="counter", nf="amf")
    assert a is b
    with pytest.raises(ValueError):
        tsdb.series("req_total", kind="gauge", nf="amf")
    assert len(tsdb) == 1


def test_ingest_maps_registry_kinds():
    registry = MetricsRegistry()
    registry.counter("served_total", nf="amf").set(3)
    registry.gauge("breaker_open", nf="amf").set(1.0)
    histogram = registry.histogram("lt_us", server="eudm-srv")
    histogram.observe(10.0)
    histogram.observe(30.0)

    tsdb = Tsdb()
    tsdb.ingest(registry, 5 * NS_PER_S)
    assert tsdb.get("served_total", nf="amf").kind == "counter"
    assert tsdb.get("breaker_open", nf="amf").kind == "gauge"
    # Histograms land as cumulative _count/_sum counter series.
    assert tsdb.get("lt_us_count", server="eudm-srv").latest()[1] == 2.0
    assert tsdb.get("lt_us_sum", server="eudm-srv").latest()[1] == 40.0
    assert tsdb.scrape_times == [5 * NS_PER_S]


def test_increase_and_rate_over_window():
    tsdb = Tsdb()
    _counter_series(tsdb, [(0, 0.0), (1, 5.0), (2, 9.0), (3, 9.0)])
    at = 3 * NS_PER_S
    assert tsdb.increase("req_total", 3 * NS_PER_S, at) == 9.0
    assert tsdb.increase("req_total", 2 * NS_PER_S, at) == 4.0
    assert tsdb.rate("req_total", 2 * NS_PER_S, at) == 2.0
    # Fewer than two samples in the window -> no increase.
    assert tsdb.increase("req_total", int(0.5 * NS_PER_S), at) == 0.0
    assert tsdb.increase("missing_total", NS_PER_S, at) == 0.0
    with pytest.raises(ValueError):
        tsdb.rate("req_total", 0, at)


def test_increase_handles_counter_reset():
    # Prometheus reset semantics: 0->8, restart, 3->5 = 8 + 3 + 2 = 13.
    tsdb = Tsdb()
    _counter_series(tsdb, [(0, 0.0), (1, 8.0), (2, 3.0), (3, 5.0)])
    assert tsdb.increase("req_total", 3 * NS_PER_S, 3 * NS_PER_S) == 13.0


def test_quantile_and_windowed_mean():
    tsdb = Tsdb()
    gauge = tsdb.series("depth", kind="gauge")
    for ts, value in enumerate((1.0, 2.0, 3.0, 4.0)):
        gauge.append(ts * NS_PER_S, value)
    at = 3 * NS_PER_S
    assert tsdb.quantile("depth", 50.0, 3 * NS_PER_S, at) == 2.5
    assert tsdb.quantile("depth", 50.0, 3 * NS_PER_S, at, nf="x") is None

    _counter_series(tsdb, [(0, 0.0), (2, 4.0)], name="lt_us_count")
    _counter_series(tsdb, [(0, 0.0), (2, 100.0)], name="lt_us_sum")
    assert tsdb.windowed_mean("lt_us", 2 * NS_PER_S, 2 * NS_PER_S) == 25.0
    # No new observations in the window -> None, never a divide-by-zero.
    assert tsdb.windowed_mean("lt_us", NS_PER_S, 10 * NS_PER_S) is None


def test_to_dict_is_sorted_and_json_ready():
    import json

    tsdb = Tsdb(cap=8)
    tsdb.series("b_total", kind="counter").append(1, 1.0)
    tsdb.series("a_total", kind="counter", nf="amf").append(1, 2.0)
    payload = tsdb.to_dict()
    assert [entry["name"] for entry in payload["series"]] == ["a_total", "b_total"]
    assert payload["cap"] == 8
    assert json.dumps(payload)  # JSON-serialisable as-is


def test_from_dict_round_trips():
    tsdb = Tsdb(cap=8)
    tsdb.series("req_total", kind="counter", nf="amf").append(1, 3.0)
    tsdb.series("depth", kind="gauge").append(2, 1.5)
    tsdb.scrape_times.extend([1, 2])
    rebuilt = Tsdb.from_dict(tsdb.to_dict())
    assert rebuilt.to_dict() == tsdb.to_dict()


def test_absorb_adds_labels_and_pools_scrape_times():
    shard0, shard1 = Tsdb(), Tsdb()
    shard0.series("req_total", kind="counter").append(10, 1.0)
    shard0.scrape_times.append(10)
    shard1.series("req_total", kind="counter").append(5, 2.0)
    shard1.scrape_times.append(5)

    # Absorb order must not matter: same-named series stay distinct via
    # the shard label, scrape times come back sorted.
    ab, ba = Tsdb(), Tsdb()
    ab.absorb(shard0.to_dict(), shard="0")
    ab.absorb(shard1.to_dict(), shard="1")
    ba.absorb(shard1.to_dict(), shard="1")
    ba.absorb(shard0.to_dict(), shard="0")
    assert ab.to_dict() == ba.to_dict()
    assert ab.scrape_times == [5, 10]
    assert ab.get("req_total", shard="0").samples == [(10, 1.0)]
    assert ab.get("req_total", shard="1").samples == [(5, 2.0)]


def _exemplar_registry(trace_id: str, at_ns: int) -> MetricsRegistry:
    registry = MetricsRegistry()
    histogram = registry.histogram("sojourn_ms", gnb="gnb-0")
    histogram.observe(42.0)
    histogram.exemplars = {"50": (42.0, trace_id, at_ns)}
    return registry


def test_exemplars_ingest_dedups_per_bucket():
    tsdb = Tsdb()
    tsdb.ingest(_exemplar_registry("a" * 32, 1 * NS_PER_S), 1 * NS_PER_S)
    # Same trace id again: nothing appended.
    tsdb.ingest(_exemplar_registry("a" * 32, 2 * NS_PER_S), 2 * NS_PER_S)
    tsdb.ingest(_exemplar_registry("b" * 32, 3 * NS_PER_S), 3 * NS_PER_S)
    (labels, timeline), = tsdb.exemplars_named("sojourn_ms")
    assert labels == (("gnb", "gnb-0"),)
    assert [(entry[0], entry[3]) for entry in timeline] == [
        (1 * NS_PER_S, "a" * 32), (3 * NS_PER_S, "b" * 32),
    ]


def test_exemplars_in_window_filters_and_sorts():
    tsdb = Tsdb()
    tsdb.ingest(_exemplar_registry("b" * 32, 1 * NS_PER_S), 1 * NS_PER_S)
    tsdb.ingest(_exemplar_registry("a" * 32, 5 * NS_PER_S), 5 * NS_PER_S)
    assert tsdb.exemplars_in_window(
        "sojourn_ms", 10 * NS_PER_S, 6 * NS_PER_S, gnb="gnb-0"
    ) == ["a" * 32, "b" * 32]
    assert tsdb.exemplars_in_window(
        "sojourn_ms", 2 * NS_PER_S, 6 * NS_PER_S, gnb="gnb-0"
    ) == ["a" * 32]
    assert tsdb.exemplars_in_window(
        "sojourn_ms", 10 * NS_PER_S, 6 * NS_PER_S, gnb="other"
    ) == []


def test_exemplars_survive_dump_and_absorb_with_shard_labels():
    tsdb = Tsdb()
    tsdb.ingest(_exemplar_registry("a" * 32, 1 * NS_PER_S), 1 * NS_PER_S)
    dump = tsdb.to_dict()
    assert "exemplars" in dump
    merged = Tsdb()
    merged.absorb(dump, shard="2")
    (labels, timeline), = merged.exemplars_named("sojourn_ms")
    assert dict(labels) == {"gnb": "gnb-0", "shard": "2"}
    assert timeline[0][3] == "a" * 32
    # Exemplar-free stores dump without the key (golden artifacts).
    assert "exemplars" not in Tsdb().to_dict()
