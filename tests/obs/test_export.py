"""Exporter round-trips: JSON and Prometheus text both parse back."""

import json

import pytest

from repro.obs.export import (
    parse_prometheus_text,
    registry_from_dict,
    registry_to_dict,
    registry_to_json,
    registry_to_prometheus_text,
)
from repro.obs.metrics import MetricsRegistry


def _sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("http_requests_served_total", server="eudm-paka-srv-0").set(42)
    registry.counter("sgx_eenters_total", component="eudm").set(1_991)
    registry.gauge("circuit_breaker_open", nf="amf", peer="ausf").set(0.0)
    histogram = registry.histogram("http_lf_us", server="eudm-paka-srv-0")
    for value in (47.1, 50.2, 45.9, 48.8):
        histogram.observe(value)
    return registry


def test_json_round_trip_is_lossless():
    registry = _sample_registry()
    payload = json.loads(registry_to_json(registry))
    rebuilt = registry_from_dict(payload)
    assert registry_to_json(rebuilt) == registry_to_json(registry)


def test_json_dict_shape():
    payload = registry_to_dict(_sample_registry())
    counters = {c["name"]: c for c in payload["counters"]}
    assert counters["http_requests_served_total"]["value"] == 42
    assert counters["sgx_eenters_total"]["labels"] == {"component": "eudm"}
    histogram = payload["histograms"][0]
    assert histogram["count"] == 4
    assert histogram["window"] == [47.1, 50.2, 45.9, 48.8]
    assert histogram["sum"] == pytest.approx(192.0)


def test_prometheus_round_trip():
    registry = _sample_registry()
    text = registry_to_prometheus_text(registry)
    samples = parse_prometheus_text(text)
    assert samples[
        ("http_requests_served_total", (("server", "eudm-paka-srv-0"),))
    ] == 42.0
    assert samples[("sgx_eenters_total", (("component", "eudm"),))] == 1_991.0
    assert samples[
        ("http_lf_us_count", (("server", "eudm-paka-srv-0"),))
    ] == 4.0
    assert samples[
        ("http_lf_us_sum", (("server", "eudm-paka-srv-0"),))
    ] == pytest.approx(192.0)
    # Window quantiles are exposed with quantile labels.
    assert (
        "http_lf_us",
        (("quantile", "0.5"), ("server", "eudm-paka-srv-0")),
    ) in samples


def test_prometheus_inf_bucket_carries_cumulative_count():
    registry = _sample_registry()
    samples = parse_prometheus_text(registry_to_prometheus_text(registry))
    assert samples[
        ("http_lf_us_bucket", (("le", "+Inf"), ("server", "eudm-paka-srv-0")))
    ] == 4.0


def test_empty_histogram_exports_in_both_formats():
    """A registered-but-never-observed histogram must not crash either
    exporter: count/sum are zero, quantile/min/max samples are absent."""
    registry = MetricsRegistry()
    registry.histogram("idle_us", server="udr")
    text = registry_to_prometheus_text(registry)
    samples = parse_prometheus_text(text)
    assert samples[("idle_us_count", (("server", "udr"),))] == 0.0
    assert samples[("idle_us_sum", (("server", "udr"),))] == 0.0
    assert samples[("idle_us_bucket", (("le", "+Inf"), ("server", "udr")))] == 0.0
    assert not any(
        name == "idle_us" for name, _ in samples
    ), "no quantile samples for an empty window"
    rebuilt = registry_from_dict(registry_to_dict(registry))
    assert registry_to_json(rebuilt) == registry_to_json(registry)


def test_prometheus_type_comment_once_per_name():
    registry = MetricsRegistry()
    registry.counter("x_total", nf="amf").set(1)
    registry.counter("x_total", nf="smf").set(2)
    text = registry_to_prometheus_text(registry)
    assert text.count("# TYPE x_total counter") == 1


def test_prometheus_label_escaping_round_trips():
    registry = MetricsRegistry()
    registry.counter("esc_total", note='say "hi"\\now').set(3)
    samples = parse_prometheus_text(registry_to_prometheus_text(registry))
    assert samples[("esc_total", (("note", 'say "hi"\\now'),))] == 3.0


def test_prometheus_rejects_invalid_metric_name():
    registry = MetricsRegistry()
    registry.counter("bad name")
    with pytest.raises(ValueError):
        registry_to_prometheus_text(registry)


def test_parse_rejects_garbage_lines():
    with pytest.raises(ValueError):
        parse_prometheus_text("this is not a sample\n")


def test_empty_registry_exports():
    registry = MetricsRegistry()
    assert registry_from_dict(registry_to_dict(registry)) is not None
    assert parse_prometheus_text(registry_to_prometheus_text(registry)) == {}


def _exemplar_registry() -> MetricsRegistry:
    registry = _sample_registry()
    histogram = registry.histogram("http_lf_us", server="eudm-paka-srv-0")
    histogram.exemplars = {
        "50": (47.1, "ab" * 16, 1_000_000_000),
        "+Inf": (50.2, "cd" * 16, 2_000_000_000),
    }
    return registry


def test_prometheus_text_is_eof_terminated():
    """OpenMetrics terminator: last line of every exposition, even an
    empty one."""
    assert registry_to_prometheus_text(MetricsRegistry()).endswith("# EOF\n")
    text = registry_to_prometheus_text(_sample_registry())
    assert text.endswith("# EOF\n")
    assert text.count("# EOF") == 1


def test_exemplar_buckets_export_and_parse_back():
    """Exemplar-annotated bucket lines parse back: counts survive, the
    exemplar suffix is accepted and discarded."""
    registry = _exemplar_registry()
    text = registry_to_prometheus_text(registry)
    assert ' # {trace_id="' + "ab" * 16 + '"} 47.1 1.0' in text
    samples = parse_prometheus_text(text)
    key = ("http_lf_us_bucket", (("le", "50"), ("server", "eudm-paka-srv-0")))
    assert samples[key] == 3.0  # 45.9, 47.1, 48.8 <= 50 < 50.2
    inf_key = (
        "http_lf_us_bucket", (("le", "+Inf"), ("server", "eudm-paka-srv-0"))
    )
    assert samples[inf_key] == 4.0


def test_exemplars_survive_the_json_round_trip():
    registry = _exemplar_registry()
    rebuilt = registry_from_dict(registry_to_dict(registry))
    histogram = rebuilt.histogram("http_lf_us", server="eudm-paka-srv-0")
    assert histogram.exemplars == {
        "50": (47.1, "ab" * 16, 1_000_000_000),
        "+Inf": (50.2, "cd" * 16, 2_000_000_000),
    }
    assert registry_to_json(rebuilt) == registry_to_json(registry)


def test_exemplar_free_registry_dict_shape_is_unchanged():
    """Histograms without exemplars must serialize exactly as before the
    exemplar field existed (golden artifacts are byte-compared)."""
    payload = registry_to_dict(_sample_registry())
    histogram_entry = payload["histograms"][0]
    assert "exemplars" not in histogram_entry
