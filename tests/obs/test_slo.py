"""Burn-rate math and the multi-window fire/resolve lifecycle."""

import pytest

from repro.experiments.harness import warmed_testbed
from repro.obs.slo import (
    REGISTRATION_SOJOURN_DEADLINE_MS,
    Alert,
    BurnRateWindow,
    LivenessSlo,
    RatioSlo,
    SloEngine,
    SojournSlo,
    ThresholdSlo,
    default_slos,
)
from repro.obs.tsdb import NS_PER_S, Tsdb
from repro.testbed import IsolationMode

WINDOW = BurnRateWindow("fast", long_s=4.0, short_s=2.0, factor=2.0)


def _ratio_slo():
    return RatioSlo(
        "success",
        good=("good_total", {}),
        total=("total_total", {}),
        objective=0.9,
        windows=(WINDOW,),
    )


def _feed(tsdb, second, good, total):
    ts = second * NS_PER_S
    tsdb.series("good_total", kind="counter").append(ts, good)
    tsdb.series("total_total", kind="counter").append(ts, total)
    tsdb.scrape_times.append(ts)


def test_ratio_burn_rate_math():
    tsdb = Tsdb()
    _feed(tsdb, 0, 0.0, 0.0)
    _feed(tsdb, 1, 8.0, 10.0)  # 20% bad over a 10% budget -> burn 2.0
    slo = _ratio_slo()
    assert slo.burn_rate(tsdb, 2 * NS_PER_S, NS_PER_S) == pytest.approx(2.0)
    # No traffic in the window -> burn 0, never a divide-by-zero.
    assert slo.burn_rate(tsdb, NS_PER_S, 30 * NS_PER_S) == 0.0
    with pytest.raises(ValueError):
        RatioSlo("bad", good=("g", {}), total=("t", {}), objective=1.0)


def test_threshold_burn_rate_math():
    tsdb = Tsdb()
    tsdb.series("lt_us_count", kind="counter").append(0, 0.0)
    tsdb.series("lt_us_sum", kind="counter").append(0, 0.0)
    tsdb.series("lt_us_count", kind="counter").append(NS_PER_S, 4.0)
    tsdb.series("lt_us_sum", kind="counter").append(NS_PER_S, 800.0)
    slo = ThresholdSlo("latency", basename="lt_us", labels={}, limit_us=100.0)
    # Windowed mean 200 us over a 100 us limit -> burn 2.0.
    assert slo.burn_rate(tsdb, 2 * NS_PER_S, NS_PER_S) == pytest.approx(2.0)
    # An idle producer is a traffic problem, not a latency one.
    assert slo.burn_rate(tsdb, NS_PER_S, 30 * NS_PER_S) == 0.0
    with pytest.raises(ValueError):
        ThresholdSlo("bad", basename="x", labels={}, limit_us=0.0)


def test_engine_fires_on_both_windows_and_resolves():
    # Timeline: healthy, then 100% failures for 3 s, then healthy again.
    tsdb = Tsdb()
    good = total = 0.0
    for second in range(12):
        failing = 3 <= second < 6
        total += 10.0
        good += 0.0 if failing else 10.0
        _feed(tsdb, second, good, total)

    alerts = SloEngine([_ratio_slo()]).evaluate(tsdb)
    assert len(alerts) == 1
    alert = alerts[0]
    assert alert.slo == "success" and alert.window == "fast"
    # Fires at the first scrape where both the 4 s and 2 s windows exceed
    # burn 2.0 (second 3: 10 bad of 30/20 in window), resolves once the
    # short window goes clean again at second 7.
    assert alert.fired_at_ns == 3 * NS_PER_S
    assert alert.resolved_at_ns == 7 * NS_PER_S
    assert alert.peak_burn >= 2.0
    payload = alert.to_dict(base_ns=0)
    assert payload["fired_at_s"] == 3.0 and payload["resolved_at_s"] == 7.0


def test_engine_returns_unresolved_alert_at_end_of_timeline():
    tsdb = Tsdb()
    good = total = 0.0
    for second in range(8):
        total += 10.0
        good += 10.0 if second < 3 else 0.0  # fails and never recovers
        _feed(tsdb, second, good, total)
    alerts = SloEngine([_ratio_slo()]).evaluate(tsdb)
    assert len(alerts) == 1
    assert not alerts[0].resolved
    assert alerts[0].to_dict()["resolved_at_s"] is None


def test_engine_long_window_alone_does_not_keep_firing():
    # A burst that has already cleared: the long window still carries the
    # bad fraction for a while, but the clean short window resolves the
    # alert promptly — that is the point of the two-window recipe.
    tsdb = Tsdb()
    _feed(tsdb, 0, 0.0, 0.0)
    _feed(tsdb, 1, 0.0, 10.0)   # 100% bad
    _feed(tsdb, 2, 10.0, 20.0)  # clean again
    _feed(tsdb, 3, 20.0, 30.0)
    slo = RatioSlo(
        "success",
        good=("good_total", {}),
        total=("total_total", {}),
        objective=0.9,
        windows=(BurnRateWindow("fast", long_s=4.0, short_s=1.0, factor=2.0),),
    )
    at = 3 * NS_PER_S
    # At second 3 the long window alone would still fire...
    assert slo.burn_rate(tsdb, 4 * NS_PER_S, at) >= 2.0
    assert slo.burn_rate(tsdb, NS_PER_S, at) < 2.0
    # ...but the engine resolved the alert at second 2 and does not refire.
    alerts = SloEngine([slo]).evaluate(tsdb)
    assert len(alerts) == 1
    assert alerts[0].resolved_at_ns == 2 * NS_PER_S


def test_sojourn_burn_rate_math():
    tsdb = Tsdb()
    base = "gnb_registration_sojourn_ms"
    tsdb.series(base + "_count", kind="counter", gnb="g").append(0, 0.0)
    tsdb.series(base + "_sum", kind="counter", gnb="g").append(0, 0.0)
    tsdb.series(base + "_count", kind="counter", gnb="g").append(NS_PER_S, 4.0)
    tsdb.series(base + "_sum", kind="counter", gnb="g").append(
        NS_PER_S, 4 * 500.0
    )
    slo = SojournSlo("sojourn", labels={"gnb": "g"})
    # Mean 500 ms over the 250 ms deadline -> burn 2.0.
    assert slo.burn_rate(tsdb, 2 * NS_PER_S, NS_PER_S) == pytest.approx(2.0)
    # No attempts in the window: starvation belongs to the liveness SLO.
    assert slo.burn_rate(tsdb, NS_PER_S, 30 * NS_PER_S) == 0.0
    assert slo.deadline_ms == REGISTRATION_SOJOURN_DEADLINE_MS
    with pytest.raises(ValueError):
        SojournSlo("bad", labels={}, deadline_ms=0.0)


def test_liveness_burn_is_rate_shortfall():
    tsdb = Tsdb()
    series = tsdb.series("total_total", kind="counter")
    slo = LivenessSlo(
        "liveness",
        total=("total_total", {}),
        min_rate_per_s=10.0,
        windows=(WINDOW,),
    )
    # Unknown series / single sample: silent, never a spurious page.
    assert slo.burn_rate(tsdb, 4 * NS_PER_S, 0) == 0.0
    series.append(0, 0.0)
    assert slo.burn_rate(tsdb, 4 * NS_PER_S, 0) == 0.0
    # 5/s against a 10/s floor -> half the traffic gone, burn 0.5.
    series.append(NS_PER_S, 5.0)
    assert slo.burn_rate(tsdb, NS_PER_S, NS_PER_S) == pytest.approx(0.5)
    # At the floor (or above): burn clamps at 0.
    series.append(2 * NS_PER_S, 25.0)
    assert slo.burn_rate(tsdb, NS_PER_S, 2 * NS_PER_S) == 0.0
    with pytest.raises(ValueError):
        LivenessSlo("bad", total=("t", {}), min_rate_per_s=0.0)


def test_starved_gnb_fires_liveness_alert():
    # Regression for the RatioSlo blind spot: traffic flows for 6 s, then
    # the gNB is fully starved.  The ratio SLO stays at burn 0 the whole
    # run; the liveness companion must page.
    tsdb = Tsdb()
    good = total = 0.0
    for second in range(30):
        if second < 6:
            good += 10.0
            total += 10.0
        _feed(tsdb, second, good, total)
    ratio = RatioSlo(
        "registration-success",
        good=("good_total", {}),
        total=("total_total", {}),
        objective=0.9,
    )
    liveness = LivenessSlo(
        "registration-liveness",
        total=("total_total", {}),
        min_rate_per_s=10.0,
        windows=(BurnRateWindow("fast", long_s=8.0, short_s=4.0, factor=0.95),),
    )
    alerts = SloEngine([ratio, liveness]).evaluate(tsdb)
    assert [a.slo for a in alerts] == ["registration-liveness"]
    assert alerts[0].fired_at_ns >= 6 * NS_PER_S


def test_default_slos_cover_success_sojourn_and_module_latency():
    testbed = warmed_testbed(IsolationMode.SGX, seed=7)
    slos = default_slos(testbed)
    names = [slo.name for slo in slos]
    assert names == [
        "registration-success",
        "registration-sojourn",
        "stable-latency-eamf",
        "stable-latency-eausf",
        "stable-latency-eudm",
    ]
    # The latency ceilings are the Table II budget: 2.9x the container
    # baseline, comfortably above the measured 1.9-2.2x SGX factors.
    eudm = next(slo for slo in slos if slo.name == "stable-latency-eudm")
    assert eudm.limit_us == pytest.approx(2.9 * 61.0)
    # The liveness floor is opt-in: only workloads that declare their
    # expected arrival rate can distinguish starvation from idleness.
    armed = default_slos(testbed, expected_registration_rate_per_s=2.5)
    liveness = [slo for slo in armed if isinstance(slo, LivenessSlo)]
    assert [slo.name for slo in liveness] == ["registration-liveness"]
    assert liveness[0].min_rate_per_s == pytest.approx(2.5)


class _StubGnb:
    def __init__(self, name):
        self.name = name


def test_default_slos_cover_every_legit_gnb_and_skip_attack_cells():
    testbed = warmed_testbed(IsolationMode.SGX, seed=7)
    # Duck-typed multi-cell view: two legit cells plus a hostile one.
    testbed.gnbs = [
        testbed.gnb, _StubGnb("gnb-1"), _StubGnb("gnb-atk-0"),
    ]
    slos = default_slos(testbed, expected_registration_rate_per_s=1.0)
    names = [slo.name for slo in slos]
    for gnb in (testbed.gnb.name, "gnb-1"):
        assert f"registration-success-{gnb}" in names
        assert f"registration-sojourn-{gnb}" in names
        assert f"registration-liveness-{gnb}" in names
    # The attack cell's stream is adversarial by construction — its
    # failure is the defense working, never a page.
    assert not any("gnb-atk" in name for name in names)


def test_alert_is_plain_data():
    alert = Alert(slo="s", window="fast", fired_at_ns=5)
    assert not alert.resolved
    alert.resolved_at_ns = 9
    assert alert.resolved
