"""Burn-rate math and the multi-window fire/resolve lifecycle."""

import pytest

from repro.experiments.harness import warmed_testbed
from repro.obs.slo import (
    Alert,
    BurnRateWindow,
    RatioSlo,
    SloEngine,
    ThresholdSlo,
    default_slos,
)
from repro.obs.tsdb import NS_PER_S, Tsdb
from repro.testbed import IsolationMode

WINDOW = BurnRateWindow("fast", long_s=4.0, short_s=2.0, factor=2.0)


def _ratio_slo():
    return RatioSlo(
        "success",
        good=("good_total", {}),
        total=("total_total", {}),
        objective=0.9,
        windows=(WINDOW,),
    )


def _feed(tsdb, second, good, total):
    ts = second * NS_PER_S
    tsdb.series("good_total", kind="counter").append(ts, good)
    tsdb.series("total_total", kind="counter").append(ts, total)
    tsdb.scrape_times.append(ts)


def test_ratio_burn_rate_math():
    tsdb = Tsdb()
    _feed(tsdb, 0, 0.0, 0.0)
    _feed(tsdb, 1, 8.0, 10.0)  # 20% bad over a 10% budget -> burn 2.0
    slo = _ratio_slo()
    assert slo.burn_rate(tsdb, 2 * NS_PER_S, NS_PER_S) == pytest.approx(2.0)
    # No traffic in the window -> burn 0, never a divide-by-zero.
    assert slo.burn_rate(tsdb, NS_PER_S, 30 * NS_PER_S) == 0.0
    with pytest.raises(ValueError):
        RatioSlo("bad", good=("g", {}), total=("t", {}), objective=1.0)


def test_threshold_burn_rate_math():
    tsdb = Tsdb()
    tsdb.series("lt_us_count", kind="counter").append(0, 0.0)
    tsdb.series("lt_us_sum", kind="counter").append(0, 0.0)
    tsdb.series("lt_us_count", kind="counter").append(NS_PER_S, 4.0)
    tsdb.series("lt_us_sum", kind="counter").append(NS_PER_S, 800.0)
    slo = ThresholdSlo("latency", basename="lt_us", labels={}, limit_us=100.0)
    # Windowed mean 200 us over a 100 us limit -> burn 2.0.
    assert slo.burn_rate(tsdb, 2 * NS_PER_S, NS_PER_S) == pytest.approx(2.0)
    # An idle producer is a traffic problem, not a latency one.
    assert slo.burn_rate(tsdb, NS_PER_S, 30 * NS_PER_S) == 0.0
    with pytest.raises(ValueError):
        ThresholdSlo("bad", basename="x", labels={}, limit_us=0.0)


def test_engine_fires_on_both_windows_and_resolves():
    # Timeline: healthy, then 100% failures for 3 s, then healthy again.
    tsdb = Tsdb()
    good = total = 0.0
    for second in range(12):
        failing = 3 <= second < 6
        total += 10.0
        good += 0.0 if failing else 10.0
        _feed(tsdb, second, good, total)

    alerts = SloEngine([_ratio_slo()]).evaluate(tsdb)
    assert len(alerts) == 1
    alert = alerts[0]
    assert alert.slo == "success" and alert.window == "fast"
    # Fires at the first scrape where both the 4 s and 2 s windows exceed
    # burn 2.0 (second 3: 10 bad of 30/20 in window), resolves once the
    # short window goes clean again at second 7.
    assert alert.fired_at_ns == 3 * NS_PER_S
    assert alert.resolved_at_ns == 7 * NS_PER_S
    assert alert.peak_burn >= 2.0
    payload = alert.to_dict(base_ns=0)
    assert payload["fired_at_s"] == 3.0 and payload["resolved_at_s"] == 7.0


def test_engine_returns_unresolved_alert_at_end_of_timeline():
    tsdb = Tsdb()
    good = total = 0.0
    for second in range(8):
        total += 10.0
        good += 10.0 if second < 3 else 0.0  # fails and never recovers
        _feed(tsdb, second, good, total)
    alerts = SloEngine([_ratio_slo()]).evaluate(tsdb)
    assert len(alerts) == 1
    assert not alerts[0].resolved
    assert alerts[0].to_dict()["resolved_at_s"] is None


def test_engine_long_window_alone_does_not_keep_firing():
    # A burst that has already cleared: the long window still carries the
    # bad fraction for a while, but the clean short window resolves the
    # alert promptly — that is the point of the two-window recipe.
    tsdb = Tsdb()
    _feed(tsdb, 0, 0.0, 0.0)
    _feed(tsdb, 1, 0.0, 10.0)   # 100% bad
    _feed(tsdb, 2, 10.0, 20.0)  # clean again
    _feed(tsdb, 3, 20.0, 30.0)
    slo = RatioSlo(
        "success",
        good=("good_total", {}),
        total=("total_total", {}),
        objective=0.9,
        windows=(BurnRateWindow("fast", long_s=4.0, short_s=1.0, factor=2.0),),
    )
    at = 3 * NS_PER_S
    # At second 3 the long window alone would still fire...
    assert slo.burn_rate(tsdb, 4 * NS_PER_S, at) >= 2.0
    assert slo.burn_rate(tsdb, NS_PER_S, at) < 2.0
    # ...but the engine resolved the alert at second 2 and does not refire.
    alerts = SloEngine([slo]).evaluate(tsdb)
    assert len(alerts) == 1
    assert alerts[0].resolved_at_ns == 2 * NS_PER_S


def test_default_slos_cover_success_and_module_latency():
    testbed = warmed_testbed(IsolationMode.SGX, seed=7)
    slos = default_slos(testbed)
    names = [slo.name for slo in slos]
    assert names == [
        "registration-success",
        "stable-latency-eamf",
        "stable-latency-eausf",
        "stable-latency-eudm",
    ]
    # The latency ceilings are the Table II budget: 2.9x the container
    # baseline, comfortably above the measured 1.9-2.2x SGX factors.
    eudm = next(slo for slo in slos if slo.name == "stable-latency-eudm")
    assert eudm.limit_us == pytest.approx(2.9 * 61.0)


def test_alert_is_plain_data():
    alert = Alert(slo="s", window="fast", fired_at_ns=5)
    assert not alert.resolved
    alert.resolved_at_ns = 9
    assert alert.resolved
