"""Small-scale scaling and migration runs."""

import pytest

from repro.experiments.migration import migration_experiment, sealed_data_does_not_migrate
from repro.experiments.scaling import horizontal_scaling_experiment
from repro.paka.deploy import IsolationMode


def assert_ok(report):
    failed = report.failed_checks()
    assert not failed, "\n".join(c.format() for c in failed)


@pytest.mark.slow
def test_horizontal_scaling_small():
    report = horizontal_scaling_experiment(
        replica_counts=(1, 2), requests_per_replica=15
    )
    assert_ok(report)
    assert report.derived["capacity_2r_rps"] > 1.7 * report.derived["capacity_1r_rps"]


@pytest.mark.slow
def test_migration_small():
    report = migration_experiment()
    assert_ok(report)
    gaps = {row["backend"]: row["service_gap_s"] for row in report.rows}
    assert gaps["container"] < gaps["secure-vm"] < gaps["sgx"]


def test_sealed_data_platform_bound():
    assert sealed_data_does_not_migrate()


def test_replica_deployment_shape():
    from repro.container.engine import ContainerEngine
    from repro.hw.host import paper_testbed_host
    from repro.paka.deploy import PakaDeployment

    host = paper_testbed_host(seed=160)
    engine = ContainerEngine(host)
    network = engine.create_network("oai-bridge")
    deployment = PakaDeployment(host, engine, network)
    slice_ = deployment.deploy(
        IsolationMode.CONTAINER, module_names=["eudm"], replicas=3
    )
    assert len(slice_.replica_groups["eudm"]) == 3
    assert slice_.module("eudm") is slice_.replica_groups["eudm"][0]
    # Replica instances are distinct servers on the same bridge.
    names = {m.server.name for m in slice_.replica_groups["eudm"]}
    assert len(names) == 3


def test_replicas_must_be_positive():
    from repro.container.engine import ContainerEngine
    from repro.hw.host import paper_testbed_host
    from repro.paka.deploy import PakaDeployment

    host = paper_testbed_host(seed=161)
    engine = ContainerEngine(host)
    network = engine.create_network("oai-bridge")
    deployment = PakaDeployment(host, engine, network)
    with pytest.raises(ValueError):
        deployment.deploy(IsolationMode.CONTAINER, replicas=0)
