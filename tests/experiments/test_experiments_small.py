"""Small-scale runs of every experiment: all paper-shape checks must hold.

The benchmarks run these at paper scale; here they run at reduced
iteration counts so the whole suite stays fast while still asserting
every band.
"""

import pytest

from repro.experiments.figures import (
    figure7_enclave_load_time,
    figure9_functional_total_latency,
    figure10_response_time,
    figure11_ota_feasibility,
)
from repro.experiments.session_setup import session_setup_experiment
from repro.experiments.sweeps import figure8_threads_epc_sweep, undersized_epc_experiment
from repro.experiments.tables import (
    table1_enclave_io,
    table3_sgx_stats,
    table5_key_issues,
)


def assert_report_ok(report):
    failed = report.failed_checks()
    assert not failed, "failed checks:\n" + "\n".join(c.format() for c in failed)


@pytest.mark.slow
def test_figure7_small():
    assert_report_ok(figure7_enclave_load_time(iterations=6))


@pytest.mark.slow
def test_figure8_small():
    assert_report_ok(figure8_threads_epc_sweep(registrations=60))


@pytest.mark.slow
def test_figure9_small():
    report = figure9_functional_total_latency(registrations=40)
    assert_report_ok(report)
    # Outlier fraction below the paper's observed 5 %.
    for name in ("eudm", "eausf", "eamf"):
        assert report.derived[f"{name}_outlier_fraction"] < 0.05


@pytest.mark.slow
def test_figure10_small():
    assert_report_ok(figure10_response_time(registrations=40))


def test_figure11_ota():
    assert_report_ok(figure11_ota_feasibility())


@pytest.mark.slow
def test_session_setup_small():
    report = session_setup_experiment(registrations=12)
    assert_report_ok(report)
    assert 52 < report.derived["sgx_setup_ms"] < 72


def test_table1():
    assert_report_ok(table1_enclave_io())


@pytest.mark.slow
def test_table3_small():
    report = table3_sgx_stats(max_ues=2, iterations=2)
    assert_report_ok(report)
    # Rows cover every module at every UE count plus the empty workload.
    assert len(report.rows) == 3 * 2 + 1


@pytest.mark.slow
def test_table5():
    report = table5_key_issues()
    assert_report_ok(report)
    assert len(report.rows) == 13


@pytest.mark.slow
def test_undersized_epc():
    assert_report_ok(undersized_epc_experiment(registrations=30))
