"""Small-scale ablation runs (full checks at reduced iteration counts)."""

import pytest

from repro.experiments.ablations import (
    exitless_ablation,
    hmee_backend_comparison,
    preheat_ablation,
    userlevel_tcp_ablation,
)


def assert_ok(report):
    failed = report.failed_checks()
    assert not failed, "\n".join(c.format() for c in failed)


@pytest.mark.slow
def test_preheat_ablation():
    report = preheat_ablation(registrations=12)
    assert_ok(report)
    # Both sides of the tradeoff are visible.
    assert report.derived["no-preheat_load_s"] < report.derived["preheat_load_s"]
    assert (
        report.derived["no-preheat_r_initial_ms"]
        > report.derived["preheat_r_initial_ms"]
    )


@pytest.mark.slow
def test_exitless_ablation():
    report = exitless_ablation(registrations=20)
    assert_ok(report)
    assert report.derived["exitless_eenters"] == 0


@pytest.mark.slow
def test_hmee_backend_comparison():
    report = hmee_backend_comparison(registrations=20)
    assert_ok(report)
    assert len(report.rows) == 3


@pytest.mark.slow
def test_userlevel_tcp_ablation():
    report = userlevel_tcp_ablation(requests=40)
    assert_ok(report)
    assert report.derived["userlevel-tcp_ocalls_per_request"] < 10
