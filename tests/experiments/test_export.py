"""JSON export and Table IV regeneration."""

import json

from repro.experiments.export import report_to_dict, report_to_json, write_report_json
from repro.experiments.harness import BandCheck, ExperimentReport
from repro.experiments.stats import summarize


def make_report():
    report = ExperimentReport("E0/Test", "export test")
    report.series["a/LT"] = summarize("a", [1.0, 2.0, 3.0], "us")
    report.derived["ratio"] = 1.5
    report.rows.append({"module": "eudm", "value": 7})
    report.checks.append(BandCheck("c", 1.5, 1.0, 2.0, paper_value=1.4))
    report.notes = "note"
    return report


def test_round_trips_through_json():
    report = make_report()
    data = json.loads(report_to_json(report))
    assert data["experiment_id"] == "E0/Test"
    assert data["series"]["a/LT"]["median"] == 2.0
    assert data["derived"]["ratio"] == 1.5
    assert data["rows"][0]["module"] == "eudm"
    assert data["checks"][0]["ok"] is True
    assert data["all_checks_ok"] is True


def test_failed_checks_serialise(tmp_path):
    report = make_report()
    report.checks.append(BandCheck("bad", 10.0, 0.0, 1.0))
    path = tmp_path / "report.json"
    write_report_json(report, str(path))
    data = json.loads(path.read_text())
    assert data["all_checks_ok"] is False
    assert any(not c["ok"] for c in data["checks"])


def test_dict_is_json_safe():
    # No bytes or exotic objects leak through.
    json.dumps(report_to_dict(make_report()))


def test_table_iv_rows(sgx_testbed):
    from repro.ran.sdr import UsrpX310, table_iv_configuration

    rows = table_iv_configuration(sgx_testbed, UsrpX310())
    by_key = {(r["section"], r["key"]): r["value"] for r in rows}
    assert by_key[("Server", "CPUs")] == "2 x Intel Xeon Silver 4314"
    assert by_key[("Server", "RAM / EPC")] == "512 GB DDR4 - 16 GB EPC"
    assert by_key[("Network", "MCC / MNC")] == "001 / 01"
    assert by_key[("Radio", "PRBs")] == "106"
    assert by_key[("Radio", "Frequency")] == "3.6192 GHz"
    assert by_key[("UE", "Model")] == "OnePlus 8"
    assert "11.0.11.11.IN21DA" in by_key[("UE", "OS")]
