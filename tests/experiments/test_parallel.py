"""The parallel arm runner: semantics, and parallel == serial determinism."""

import os
from concurrent.futures import ProcessPoolExecutor
from unittest import mock

import pytest

from repro.experiments.figures import figure9_functional_total_latency
from repro.experiments.export import report_to_json
from repro.experiments.harness import build_testbed, collect_module_latencies
from repro.experiments.parallel import Arm, default_jobs, run_arms, run_pairs
from repro.paka.deploy import IsolationMode


def _square(x):
    return x * x


def _registration_arm(seed, registrations=3):
    """A real testbed arm: cold SGX testbed, a few registrations, plain data."""
    testbed = build_testbed(IsolationMode.SGX, seed=seed)
    return collect_module_latencies(testbed, registrations)


def test_run_arms_preserves_declaration_order():
    arms = [Arm(key=f"k{i}", fn=_square, kwargs={"x": i}) for i in (3, 1, 2)]
    results = run_arms(arms, jobs=1)
    assert list(results) == ["k3", "k1", "k2"]
    assert results == {"k3": 9, "k1": 1, "k2": 4}


def test_run_arms_rejects_duplicate_keys():
    arms = [Arm(key="same", fn=_square, kwargs={"x": 1})] * 2
    with pytest.raises(ValueError, match="unique"):
        run_arms(arms, jobs=1)


def test_run_arms_jobs_zero_means_cpu_count():
    assert default_jobs() >= 1
    results = run_arms([Arm(key="only", fn=_square, kwargs={"x": 5})], jobs=0)
    assert results == {"only": 25}


def test_default_jobs_respects_scheduler_affinity():
    """In a cpuset-limited container the schedulable set, not the machine
    CPU count, is the honest parallelism bound."""
    if hasattr(os, "sched_getaffinity"):
        assert default_jobs() == len(os.sched_getaffinity(0))
    with mock.patch.object(
        os, "sched_getaffinity", create=True, return_value={0, 1}
    ):
        assert default_jobs() == 2


def test_default_jobs_falls_back_to_cpu_count():
    """macOS/Windows have no sched_getaffinity: fall back to cpu_count."""
    with mock.patch.object(
        os, "sched_getaffinity", create=True,
        side_effect=AttributeError("no affinity here"),
    ):
        assert default_jobs() == (os.cpu_count() or 1)


def test_run_arms_on_a_caller_owned_pool():
    arms = [Arm(key=f"k{i}", fn=_square, kwargs={"x": i}) for i in range(4)]
    with ProcessPoolExecutor(max_workers=2) as pool:
        pooled_once = run_arms(arms, pool=pool)
        pooled_again = run_arms(arms, pool=pool)  # pool survives the call
    assert pooled_once == run_arms(arms, jobs=1)
    assert pooled_again == pooled_once
    assert list(pooled_once) == ["k0", "k1", "k2", "k3"]


def test_multi_round_campaign_on_shared_pool_is_byte_identical():
    """Satellite regression: reusing one executor across rounds changes
    nothing in the results, round for round, byte for byte."""
    rounds = [
        [
            Arm(key=f"seed={seed}", fn=_registration_arm, kwargs={"seed": seed})
            for seed in group
        ]
        for group in ((51, 52), (53, 54))
    ]
    serial = [run_arms(arms, jobs=1) for arms in rounds]
    with ProcessPoolExecutor(max_workers=2) as pool:
        shared = [run_arms(arms, pool=pool) for arms in rounds]
    assert shared == serial


def test_run_pairs_wrapper():
    results = run_pairs([("a", _square, {"x": 2}), ("b", _square, {"x": 4})])
    assert results == {"a": 4, "b": 16}


def test_pool_path_preserves_order_and_values():
    arms = [Arm(key=f"k{i}", fn=_square, kwargs={"x": i}) for i in range(4)]
    assert run_arms(arms, jobs=2) == run_arms(arms, jobs=1)
    assert list(run_arms(arms, jobs=2)) == ["k0", "k1", "k2", "k3"]


def test_parallel_four_arm_run_equals_serial():
    """Four real testbed arms: worker processes change nothing, result-for-result."""
    arms = [
        Arm(key=f"seed={seed}", fn=_registration_arm, kwargs={"seed": seed})
        for seed in (11, 22, 33, 44)
    ]
    serial = run_arms(arms, jobs=1)
    parallel = run_arms(arms, jobs=4)
    assert parallel == serial


def test_figure9_report_identical_across_jobs():
    """End-to-end: a whole experiment report is byte-identical under --jobs."""
    serial = figure9_functional_total_latency(registrations=6, seed=90, jobs=1)
    parallel = figure9_functional_total_latency(registrations=6, seed=90, jobs=2)
    assert report_to_json(parallel) == report_to_json(serial)
