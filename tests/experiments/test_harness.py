"""Experiment harness: band checks, reports, collection plumbing."""

import pytest

from repro.experiments.harness import (
    MODULE_NAMES,
    BandCheck,
    ExperimentReport,
    build_testbed,
    collect_module_latencies,
    warmed_testbed,
)
from repro.paka.deploy import IsolationMode


class TestBandCheck:
    def test_in_band(self):
        check = BandCheck("x", measured=1.3, low=1.1, high=1.6, paper_value=1.2)
        assert check.ok
        assert "OK" in check.format() and "paper: 1.2" in check.format()

    def test_out_of_band(self):
        check = BandCheck("x", measured=2.0, low=1.1, high=1.6)
        assert not check.ok
        assert "OUT" in check.format()

    def test_boundaries_inclusive(self):
        assert BandCheck("x", 1.1, 1.1, 1.6).ok
        assert BandCheck("x", 1.6, 1.1, 1.6).ok


class TestReport:
    def test_all_checks_ok(self):
        report = ExperimentReport("E0", "test")
        report.checks.append(BandCheck("a", 1.0, 0.5, 1.5))
        assert report.all_checks_ok
        report.checks.append(BandCheck("b", 9.0, 0.5, 1.5))
        assert not report.all_checks_ok
        assert [c.name for c in report.failed_checks()] == ["b"]

    def test_format_includes_everything(self):
        from repro.experiments.stats import summarize

        report = ExperimentReport("E0", "Title")
        report.series["s"] = summarize("series", [1.0, 2.0], "us")
        report.derived["ratio"] = 1.23
        report.rows.append({"module": "eudm", "value": 1})
        report.checks.append(BandCheck("c", 1.0, 0.0, 2.0))
        report.notes = "a note"
        text = report.format()
        for fragment in ("E0", "Title", "series", "ratio", "module=eudm", "a note"):
            assert fragment in text


def test_build_testbed_modes():
    assert build_testbed(None).paka is None
    assert build_testbed(IsolationMode.CONTAINER).paka is not None
    assert not build_testbed(IsolationMode.CONTAINER).paka.shielded


def test_warmed_testbed_consumed_first_requests():
    testbed = warmed_testbed(IsolationMode.SGX, seed=5, warmup_registrations=1)
    for module in testbed.paka.modules.values():
        assert module.runtime._warmed_up


def test_collect_module_latencies_counts(container_testbed):
    data = collect_module_latencies(container_testbed, registrations=4, skip=1)
    assert set(data) == set(MODULE_NAMES)
    for series in data.values():
        assert len(series["lf_us"]) == 3  # 4 regs - 1 skipped
        assert len(series["lt_us"]) == 3
        assert len(series["r_us"]) == 3


def test_collect_requires_modules(monolithic_testbed):
    with pytest.raises(AssertionError):
        collect_module_latencies(monolithic_testbed, registrations=1)
