"""E-ATTACK campaign: determinism and the disarmed-control contract."""

from repro.experiments.export import report_to_json
from repro.experiments.harness import warmed_testbed
from repro.experiments.survivability import (
    DEFENSES,
    _run_arm,
    survivability_experiment,
)
from repro.paka.deploy import IsolationMode

QUICK = dict(legit=6, horizon_s=2.0, seed=29)


def test_defense_registry_shape():
    assert DEFENSES == (
        "none", "bucket", "guard", "breaker", "all", "governed"
    )


def test_campaign_report_is_byte_identical_per_seed():
    kwargs = dict(
        attack_rates=(0.0, 400.0), defenses=("none", "breaker"), **QUICK
    )
    first = report_to_json(survivability_experiment(**kwargs))
    second = report_to_json(survivability_experiment(**kwargs))
    assert first == second


def test_disarmed_arm_spends_attack_free_nanoseconds():
    """The rate-0 'none' arm builds no plane and arms no admission: its
    final clock must equal a plain paced run of the same legit grid."""
    row = _run_arm("none", 0.0, **QUICK)
    assert row["attack_events"] == 0
    assert row["legit_success_rate"] == 1.0

    testbed = warmed_testbed(IsolationMode.SGX, seed=QUICK["seed"])
    assert testbed.amf.admission is None  # default testbeds stay disarmed
    ues = [testbed.add_subscriber() for _ in range(QUICK["legit"])]
    for index, ue in enumerate(ues):
        if index % 4 != 3:
            assert testbed.register(ue, establish_session=False).success
    # (the campaign's scraper is pull-only and its timeline idles are
    # replayed here via the same grid)
    from repro.obs.scrape import Scraper

    scraper = Scraper.for_testbed(testbed).install(testbed.host)
    clock = testbed.host.clock
    start_ns = clock.now_ns
    gap_ns = int(QUICK["horizon_s"] / QUICK["legit"] * 1_000_000_000)
    for index, ue in enumerate(ues):
        target_ns = start_ns + index * gap_ns
        if clock.now_ns < target_ns:
            testbed.idle((target_ns - clock.now_ns) / 1_000_000_000)
        testbed.gnb.register(
            ue, establish_session=False, initial=index % 4 == 3
        )
    scraper.uninstall(testbed.host)
    assert clock.now_ns == row["final_clock_ns"]


def test_armed_idle_defenses_cost_zero_simulated_time():
    """Admission control is clockless arithmetic: with no storm, every
    defended arm — including the quiescent governor — lands on the
    disarmed arm's exact final clock."""
    reference = _run_arm("none", 0.0, **QUICK)["final_clock_ns"]
    for defense in ("bucket", "guard", "breaker", "all", "governed"):
        row = _run_arm(defense, 0.0, **QUICK)
        assert row["final_clock_ns"] == reference, defense
        assert row["legit_success_rate"] == 1.0
        if defense == "governed":
            assert row["governor"]["actions"] == []  # never armed


def test_governed_arm_detects_and_recovers():
    kwargs = dict(legit=12, horizon_s=5.0, seed=29)
    undefended = _run_arm("none", 400.0, **kwargs)
    governed = _run_arm("governed", 400.0, **kwargs)
    # The PR 8 blind spot, closed: the collapse now pages on the
    # sojourn SLO inside the storm window...
    assert undefended["sojourn_alerts_fired"] >= 1
    assert undefended["first_sojourn_alert_s"] < kwargs["horizon_s"]
    # ...and the governor turns the page into armed defenses.
    actions = governed["governor"]["actions"]
    assert actions and actions[0]["action"] == "arm"
    assert set(actions[0]["defenses"]) == {"source", "gnb"}
    assert governed["detect_latency_s"] == actions[0]["at_s"]
    assert (
        governed["legit_success_rate"] > undefended["legit_success_rate"]
    )


def test_governed_arm_is_byte_identical_per_seed():
    kwargs = dict(legit=12, horizon_s=5.0, seed=29)
    first = _run_arm("governed", 400.0, **kwargs)
    second = _run_arm("governed", 400.0, **kwargs)
    # Bit-identical everything: the sojourn histogram samples, the
    # classifier-driven governor actions, and the final clock.
    assert first == second


def test_storm_arm_degrades_then_defense_recovers():
    undefended = _run_arm("none", 400.0, **QUICK)
    defended = _run_arm("guard", 400.0, **QUICK)
    assert undefended["legit_success_rate"] < 1.0
    assert defended["legit_success_rate"] > undefended["legit_success_rate"]
    assert defended["shed_total"] > 0
    assert defended["eenter_burn"] < undefended["eenter_burn"]


def test_traced_arm_matches_untraced_golden_clock():
    """Arming distributed tracing must not move the simulated clock or
    any campaign figure: the traced row minus its ``_trace_*`` extras is
    the untraced row."""
    untraced = _run_arm("none", 400.0, **QUICK)
    traced = _run_arm("none", 400.0, trace_sample=4, **QUICK)
    extras = {k for k in traced if k.startswith("_") and k != "_sojourns_ms"}
    assert extras == {"_trace_store", "_alerts", "_module_servers",
                      "_module_runtimes"}
    assert {k: v for k, v in traced.items() if k not in extras} == untraced


def test_traced_collapse_alerts_cite_stored_exemplar_traces():
    """The E-TRACE2 acceptance path: a queueing-collapse sojourn alert
    carries exemplar trace ids, and at least one resolves to a complete
    tree in the arm's trace store."""
    row = _run_arm("none", 400.0, legit=12, horizon_s=5.0, seed=29,
                   trace_sample=8)
    sojourn_alerts = [
        alert for alert in row["_alerts"]
        if alert["slo"].startswith("registration-sojourn")
    ]
    assert sojourn_alerts
    cited = {
        tid for alert in sojourn_alerts for tid in alert["exemplar_trace_ids"]
    }
    assert cited
    stored = {r["trace_id"] for r in row["_trace_store"]["records"]}
    resolved = cited & stored
    assert resolved
    record = next(
        r for r in row["_trace_store"]["records"]
        if r["trace_id"] in resolved
    )
    assert record["root"]["kind"] == "registration"
    assert record["root"]["children"]
