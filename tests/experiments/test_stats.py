"""Experiment statistics helpers."""

import pytest

from repro.experiments.stats import outlier_fraction, summarize


def test_summarize_basic():
    summary = summarize("s", [1.0, 2.0, 3.0, 4.0, 5.0], "us")
    assert summary.n == 5
    assert summary.mean == 3.0
    assert summary.median == 3.0
    assert summary.minimum == 1.0 and summary.maximum == 5.0
    assert summary.p25 == 2.0 and summary.p75 == 4.0
    assert summary.iqr == 2.0


def test_summarize_single_value_has_zero_stdev():
    summary = summarize("s", [7.0], "ms")
    assert summary.stdev == 0.0


def test_summarize_empty_raises():
    with pytest.raises(ValueError):
        summarize("s", [], "us")


def test_format_contains_key_fields():
    text = summarize("latency", [1.0, 2.0], "us").format()
    assert "latency" in text and "mean=" in text and "us" in text


def test_outlier_fraction_clean_data():
    assert outlier_fraction([10.0] * 50 + [10.5] * 50) == 0.0


def test_outlier_fraction_detects_spikes():
    data = [10.0] * 95 + [100.0] * 5
    assert 0.0 < outlier_fraction(data) <= 0.06


def test_outlier_fraction_small_samples():
    assert outlier_fraction([1.0, 2.0]) == 0.0
