"""Experiment statistics helpers."""

import pytest

from repro.experiments.stats import outlier_fraction, percentiles, summarize


def test_summarize_basic():
    summary = summarize("s", [1.0, 2.0, 3.0, 4.0, 5.0], "us")
    assert summary.n == 5
    assert summary.mean == 3.0
    assert summary.median == 3.0
    assert summary.minimum == 1.0 and summary.maximum == 5.0
    assert summary.p25 == 2.0 and summary.p75 == 4.0
    assert summary.iqr == 2.0


def test_summarize_single_value_has_zero_stdev():
    summary = summarize("s", [7.0], "ms")
    assert summary.stdev == 0.0


def test_summarize_empty_raises():
    with pytest.raises(ValueError):
        summarize("s", [], "us")


def test_format_contains_key_fields():
    text = summarize("latency", [1.0, 2.0], "us").format()
    assert "latency" in text and "mean=" in text and "us" in text


def test_outlier_fraction_clean_data():
    assert outlier_fraction([10.0] * 50 + [10.5] * 50) == 0.0


def test_outlier_fraction_detects_spikes():
    data = [10.0] * 95 + [100.0] * 5
    assert 0.0 < outlier_fraction(data) <= 0.06


def test_outlier_fraction_small_samples():
    assert outlier_fraction([1.0, 2.0]) == 0.0


def test_percentiles_basic():
    assert percentiles([1.0, 2.0, 3.0, 4.0, 5.0], (50,)) == [3.0]
    p25, p75 = percentiles([1.0, 2.0, 3.0, 4.0, 5.0], (25, 75))
    assert (p25, p75) == (2.0, 4.0)


def test_percentiles_empty_returns_none_per_quantile():
    # An all-failures fault arm has no latency samples; the helper must
    # not crash np.percentile, and None (unlike NaN) survives JSON.
    assert percentiles([], (50, 95, 99)) == [None, None, None]


def test_availability_percentiles_guard_empty():
    from repro.experiments.availability import _percentiles_ms

    row = _percentiles_ms([])
    assert row == {"p50_ms": None, "p95_ms": None, "p99_ms": None}
    filled = _percentiles_ms([1.0, 2.0, 3.0])
    assert filled["p50_ms"] == 2.0
    assert filled["p99_ms"] is not None
