"""ASCII box-plot renderer."""

import pytest

from repro.experiments.render import ascii_boxplot, render_report_figures
from repro.experiments.stats import summarize


def make_summary(name, values, unit="us"):
    return summarize(name, values, unit)


def test_boxplot_contains_all_rows_and_axis():
    plot = ascii_boxplot(
        [
            make_summary("container", [10, 12, 14, 16, 18]),
            make_summary("sgx", [30, 34, 36, 40, 44]),
        ],
        title="[LT]",
    )
    lines = plot.splitlines()
    assert lines[0] == "[LT]"
    assert "container" in lines[1] and "sgx" in lines[2]
    assert "10" in lines[-1] and "44" in lines[-1]  # shared axis extremes


def test_boxplot_marks_median_inside_box():
    plot = ascii_boxplot([make_summary("s", [1, 2, 3, 4, 100])])
    row = plot.splitlines()[0]
    assert "#" in row and "=" in row and "-" in row


def test_rows_share_one_scale():
    """The low series' glyphs sit left of the high series' glyphs."""
    plot = ascii_boxplot(
        [
            make_summary("low", [1, 2, 3]),
            make_summary("high", [90, 95, 100]),
        ]
    )
    low_row, high_row = plot.splitlines()[:2]
    low_extent = max(i for i, c in enumerate(low_row) if c in "|=#-")
    bracket = high_row.index("[")
    high_start = min(
        i for i, c in enumerate(high_row) if c in "|=#-" and i > bracket
    )
    assert low_extent < high_start


def test_empty_input_rejected():
    with pytest.raises(ValueError):
        ascii_boxplot([])


def test_degenerate_distribution_renders():
    plot = ascii_boxplot([make_summary("flat", [5.0, 5.0, 5.0])])
    assert "flat" in plot


def test_render_report_groups_by_metric():
    from repro.experiments.harness import ExperimentReport

    report = ExperimentReport("X", "test")
    report.series["container/eudm/LF"] = make_summary("c LF", [1, 2, 3])
    report.series["sgx/eudm/LF"] = make_summary("s LF", [2, 3, 4])
    report.series["container/eudm/LT"] = make_summary("c LT", [5, 6, 7])
    rendered = render_report_figures(report)
    assert "[LF]" in rendered and "[LT]" in rendered
    # LF block holds two rows, LT one.
    lf_block = rendered.split("\n\n")[0]
    assert lf_block.count("\n") == 3  # title + 2 rows + axis
