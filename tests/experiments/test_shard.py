"""Partitioned campaign driver: determinism, merge semantics, E-CAP parity."""

from concurrent.futures import ProcessPoolExecutor

from repro.experiments.capacity import capacity_campaign
from repro.experiments.export import report_to_json
from repro.experiments.shard import (
    POPULATION_FIRST_MSIN,
    assign_shards,
    population_msins,
    shard_seed,
    sharded_campaign,
)

_UES = 160  # small enough for CI, large enough for every shard to fill


def test_population_and_assignment_are_stable():
    msins = population_msins(10)
    assert msins[0] == f"{POPULATION_FIRST_MSIN:010d}"
    assert len(set(msins)) == 10
    buckets = assign_shards(msins, 4)
    assert sorted(buckets) == ["0", "1", "2", "3"]
    assert sum(len(b) for b in buckets.values()) == 10
    # Pure function: same partition on every call.
    assert assign_shards(msins, 4) == buckets


def test_shard_seed_offsets_are_distinct():
    seeds = {shard_seed(7, k) for k in range(16)}
    assert len(seeds) == 16
    assert shard_seed(7, 0) == 7  # shard 0 *is* the unsharded campaign


def test_one_shard_reproduces_the_capacity_campaign_bit_for_bit():
    """shards=1 replays E-CAP's exact registration sequence: every shared
    derived value (simulated clocks included) must match to the digit."""
    cap = capacity_campaign(ues=_UES)
    sharded = sharded_campaign(ues=_UES, shards=1, jobs=1).report
    for key in (
        "simulated_s",
        "simulated_regs_per_s",
        "simulated_ms_per_reg",
        "eudm_lt_mean_us",
        "success_rate",
        "eudm_eenters_per_reg",
        "eausf_eenters_per_reg",
        "eamf_eenters_per_reg",
    ):
        assert sharded.derived[key] == cap.derived[key], key


def test_merged_report_is_byte_identical_across_jobs():
    serial = sharded_campaign(ues=_UES, shards=4, jobs=1)
    fanned = sharded_campaign(ues=_UES, shards=4, jobs=4)
    assert report_to_json(fanned.report) == report_to_json(serial.report)


def test_merged_report_is_byte_identical_on_a_reused_pool():
    serial = sharded_campaign(ues=_UES, shards=3, jobs=1)
    with ProcessPoolExecutor(max_workers=2) as pool:
        first = sharded_campaign(ues=_UES, shards=3, pool=pool)
        second = sharded_campaign(ues=_UES, shards=3, pool=pool)
    assert report_to_json(first.report) == report_to_json(serial.report)
    assert report_to_json(second.report) == report_to_json(serial.report)


def test_merge_semantics():
    result = sharded_campaign(ues=_UES, shards=4, jobs=1)
    report = result.report
    shard_rows = [row for row in report.rows if "shard" in row]
    assert len(shard_rows) == 4
    assert sum(row["ues"] for row in shard_rows) == _UES
    assert sum(row["successes"] for row in shard_rows) == _UES
    # Makespan = max shard clock; serial cost = sum over shards.
    makespan = max(row["simulated_s"] for row in shard_rows)
    assert report.derived["simulated_s"] == round(makespan, 6)
    total_s = sum(r["simulated_ns"] for r in result.shard_results) / 1e9
    assert report.derived["simulated_ms_per_reg"] == round(
        total_s * 1e3 / _UES, 4
    )
    # Table III shape survives sharding.
    assert report.all_checks_ok, [c.format() for c in report.failed_checks()]
    # Span decomposition rows: one per module, population-weighted.
    module_rows = {row["module"] for row in report.rows if "module" in row}
    assert module_rows == {"eudm", "eausf", "eamf"}


def test_monitored_campaign_merges_tsdb_with_shard_labels():
    result = sharded_campaign(
        ues=80, shards=2, jobs=1, monitor_cadence_s=1.0
    )
    assert result.tsdb is not None
    shards_seen = {
        dict(series.labels).get("shard") for series in result.tsdb.all_series()
    }
    assert shards_seen == {"0", "1"}
    assert result.report.derived["tsdb_series"] == float(len(result.tsdb))
    # Scrape times are pooled and sorted.
    times = result.tsdb.scrape_times
    assert times == sorted(times)


def test_traced_campaign_digest_is_byte_identical_across_jobs():
    """The slowest-traces digest is a pure function of the kept record
    set: fanning the shards over worker processes must not change a
    byte of it."""
    import json

    serial = sharded_campaign(ues=_UES, shards=4, jobs=1, trace_sample=4)
    fanned = sharded_campaign(ues=_UES, shards=4, jobs=4, trace_sample=4)
    assert serial.traces_digest is not None
    assert json.dumps(serial.traces_digest, sort_keys=True) == json.dumps(
        fanned.traces_digest, sort_keys=True
    )
    assert report_to_json(fanned.report) == report_to_json(serial.report)


def test_traced_campaign_spends_no_simulated_time():
    """Golden clocks: arming per-shard tracing must leave every shard's
    simulated nanosecond count untouched."""
    plain = sharded_campaign(ues=_UES, shards=2, jobs=1)
    traced = sharded_campaign(ues=_UES, shards=2, jobs=1, trace_sample=4)
    for before, after in zip(plain.shard_results, traced.shard_results):
        assert before["simulated_ns"] == after["simulated_ns"]
    assert traced.trace_store is not None
    assert traced.traces_digest["seen"] == _UES
    # Merged records carry their origin shard.
    shards = {r["shard"] for r in traced.trace_store.records.values()}
    assert shards <= {"0", "1"} and shards
    assert traced.report.derived["traces_seen"] == float(_UES)


def test_untraced_campaign_report_has_no_trace_keys():
    result = sharded_campaign(ues=_UES, shards=2, jobs=1)
    assert result.trace_store is None
    assert result.traces_digest is None
    assert "traces_seen" not in result.report.derived
    assert all("trace_store" not in r for r in result.shard_results)
