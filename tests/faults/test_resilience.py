"""Circuit breaker state machine and retry backoff determinism."""

from repro.faults import CircuitBreaker, DEFAULT_SBI_RETRY, RetryPolicy
from repro.sim.rng import RngService

US = 1_000  # ns per us


def test_breaker_opens_after_threshold():
    breaker = CircuitBreaker(name="amf->ausf", failure_threshold=3)
    now = 0
    for _ in range(2):
        breaker.record_failure(now)
        assert not breaker.open
        assert breaker.try_acquire(now)
    breaker.record_failure(now)
    assert breaker.open
    assert breaker.times_opened == 1
    assert not breaker.try_acquire(now)
    assert breaker.fast_failures == 1


def test_allow_is_a_pure_query():
    """Speculative checks (metrics collection, health probes) must not
    book fast failures or claim the half-open probe slot."""
    breaker = CircuitBreaker(failure_threshold=1, cooldown_us=1_000.0)
    breaker.record_failure(0)
    for _ in range(5):
        assert not breaker.allow(500 * US)
    assert breaker.fast_failures == 0
    # Past the cooldown allow() says a probe *would* be admitted, but the
    # slot is only claimed by try_acquire().
    for _ in range(5):
        assert breaker.allow(1_000 * US)
    assert not breaker.probe_in_flight
    assert breaker.fast_failures == 0


def test_breaker_half_open_probe_closes_on_success():
    breaker = CircuitBreaker(failure_threshold=1, cooldown_us=1_000.0)
    breaker.record_failure(0)
    assert not breaker.try_acquire(500 * US)  # still cooling down
    assert breaker.try_acquire(1_000 * US)  # half-open: single probe allowed
    breaker.record_success()
    assert not breaker.open
    assert breaker.try_acquire(1_001 * US)


def test_breaker_failed_probe_reopens_and_counts():
    breaker = CircuitBreaker(failure_threshold=1, cooldown_us=1_000.0)
    breaker.record_failure(0)
    assert breaker.try_acquire(1_000 * US)
    breaker.record_failure(1_000 * US)
    assert breaker.open
    # A failed probe is a new transition into the open state: E-AVAIL
    # counts each fail-fast episode, not just the first.
    assert breaker.times_opened == 2
    assert not breaker.try_acquire(1_500 * US)  # cooldown restarted


def test_single_probe_at_cooldown_boundary():
    """Regression: a storm of queued callers arriving the instant the
    cooldown expires must not flood the dead peer — exactly one caller
    wins the half-open probe, the rest fail fast."""
    breaker = CircuitBreaker(failure_threshold=1, cooldown_us=1_000.0)
    breaker.record_failure(0)
    boundary = 1_000 * US
    admitted = [breaker.try_acquire(boundary) for _ in range(10)]
    assert admitted.count(True) == 1
    assert admitted[0] is True  # first caller holds the probe slot
    assert breaker.fast_failures == 9
    # While the probe is in flight even later callers are shed.
    assert not breaker.try_acquire(boundary + 500 * US)
    assert breaker.fast_failures == 10

    # Probe fails: re-open (counted), cooldown restarts, then the next
    # boundary again admits exactly one of the concurrent callers.
    breaker.record_failure(boundary)
    assert breaker.times_opened == 2
    next_boundary = boundary + 1_000 * US
    admitted = [breaker.try_acquire(next_boundary) for _ in range(4)]
    assert admitted.count(True) == 1
    # Probe succeeds: breaker closes and everyone is admitted again.
    breaker.record_success()
    assert all(breaker.try_acquire(next_boundary + 1) for _ in range(4))


def test_success_resets_failure_streak():
    breaker = CircuitBreaker(failure_threshold=3)
    breaker.record_failure(0)
    breaker.record_failure(0)
    breaker.record_success()
    breaker.record_failure(0)
    assert not breaker.open


def test_backoff_grows_exponentially_and_caps():
    policy = RetryPolicy(
        base_backoff_us=100.0, backoff_multiplier=2.0,
        max_backoff_us=350.0, jitter=0.0,
    )
    assert policy.backoff_us(1) == 100.0
    assert policy.backoff_us(2) == 200.0
    assert policy.backoff_us(3) == 350.0  # capped, not 400
    assert policy.backoff_us(4) == 350.0


def test_backoff_schedule_is_deterministic_per_seed():
    schedules = []
    for _ in range(2):
        rng = RngService(seed=77)
        schedules.append(
            [DEFAULT_SBI_RETRY.backoff_us(i, rng, "retry.amf") for i in (1, 2, 1, 2)]
        )
    assert schedules[0] == schedules[1]
    # A different seed jitters differently, around the same base.
    other = [
        DEFAULT_SBI_RETRY.backoff_us(i, RngService(seed=78), "retry.amf")
        for i in (1, 2, 1, 2)
    ]
    assert other != schedules[0]


def test_backoff_jitter_does_not_touch_other_streams():
    rng = RngService(seed=5)
    baseline = RngService(seed=5).stream("sgx.aex").random()
    DEFAULT_SBI_RETRY.backoff_us(1, rng, "retry.udm")
    assert rng.stream("sgx.aex").random() == baseline
