"""Fault plans: pure values, reproducible from (seed, horizon, rates)."""

from repro.faults import BASELINE_RATES, FaultKind, FaultPlan, FaultRates


def test_same_seed_same_plan():
    a = FaultPlan.generate(42, 300.0, BASELINE_RATES)
    b = FaultPlan.generate(42, 300.0, BASELINE_RATES)
    assert a == b
    assert a.windows == b.windows


def test_different_seeds_differ():
    a = FaultPlan.generate(1, 600.0, BASELINE_RATES)
    b = FaultPlan.generate(2, 600.0, BASELINE_RATES)
    assert a.windows != b.windows


def test_zero_rates_mean_fault_free():
    plan = FaultPlan.generate(7, 600.0, FaultRates())
    assert plan.windows == ()
    assert "fault-free" in plan.describe()


def test_scaled_rates_scale_linearly():
    rates = BASELINE_RATES.scaled(3.0)
    assert rates.module_crash_per_min == BASELINE_RATES.module_crash_per_min * 3.0
    assert rates.total_per_min == BASELINE_RATES.total_per_min * 3.0


def test_windows_sorted_and_inside_horizon():
    plan = FaultPlan.generate(5, 240.0, BASELINE_RATES.scaled(4.0))
    assert plan.windows, "4x rates over 4 minutes should draw something"
    starts = [w.start_ns for w in plan.windows]
    assert starts == sorted(starts)
    for window in plan.windows:
        assert 0 <= window.start_ns < int(240.0 * 1e9)
        assert window.end_ns > window.start_ns


def test_module_crash_lasts_a_fig7_reload():
    plan = FaultPlan.generate(9, 3600.0, FaultRates(module_crash_per_min=0.5))
    crashes = plan.by_kind()[FaultKind.MODULE_CRASH]
    assert crashes
    for window in crashes:
        assert 20.0 <= window.duration_s <= 90.0  # ~1 min reload, bounded
        assert window.target in ("eudm", "eausf", "eamf")


def test_magnitudes_stay_in_kind_ranges():
    plan = FaultPlan.generate(3, 3600.0, BASELINE_RATES.scaled(2.0))
    for window in plan.windows:
        if window.kind is FaultKind.LINK_LOSS:
            assert 0.3 <= window.magnitude <= 0.9
        elif window.kind is FaultKind.LATENCY_SPIKE:
            assert 30_000.0 <= window.magnitude <= 250_000.0
        elif window.kind is FaultKind.EPC_PRESSURE:
            assert 0.95 <= window.magnitude <= 1.0
        elif window.kind is FaultKind.AEX_STORM:
            assert 5.0 <= window.magnitude <= 20.0


def test_counts_and_active():
    plan = FaultPlan.generate(11, 1200.0, BASELINE_RATES)
    counts = plan.counts()
    assert sum(counts.values()) == len(plan.windows)
    window = plan.windows[0]
    assert window.active(window.start_ns)
    assert not window.active(window.end_ns)
