"""FaultInjector: hooks install/remove cleanly and do what the plan says."""

import pytest

from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultRates
from repro.faults.plan import NS_PER_S, FaultWindow
from repro.net.http import UnresponsiveError


def plan_with(*windows: FaultWindow, horizon_s: float = 120.0) -> FaultPlan:
    return FaultPlan(seed=0, horizon_s=horizon_s, windows=tuple(windows))


def window(kind, target, start_s, end_s, magnitude=0.0) -> FaultWindow:
    return FaultWindow(
        kind=kind, target=target,
        start_ns=int(start_s * NS_PER_S), end_ns=int(end_s * NS_PER_S),
        magnitude=magnitude,
    )


def test_empty_plan_costs_nothing(sgx_testbed):
    clock = sgx_testbed.host.clock
    before = clock.now_ns
    injector = FaultInjector(sgx_testbed, plan_with()).arm()
    injector.tick()
    injector.disarm()
    assert clock.now_ns == before
    assert sgx_testbed.sbi.link_filter is None
    for server in sgx_testbed.module_servers().values():
        assert server.fault_gate is None


def test_module_crash_gates_requests_then_recovers(sgx_testbed):
    testbed = sgx_testbed
    plan = plan_with(window(FaultKind.MODULE_CRASH, "eudm", 0.0, 10.0))
    injector = FaultInjector(testbed, plan).arm()
    eudm_server = testbed.paka.modules["eudm"].server
    assert eudm_server.fault_gate is not None
    with pytest.raises(UnresponsiveError, match=r"down \(module-crash\)"):
        eudm_server.fault_gate(eudm_server)
    assert injector.requests_refused == 1

    # A registration during the outage fails gracefully (503 upstream).
    outcome = testbed.register(testbed.add_subscriber(), establish_session=False)
    assert not outcome.success
    assert "503" in (outcome.failure_cause or "")

    # Past the window the same slice serves again.
    testbed.idle(11.0)
    outcome = testbed.register(testbed.add_subscriber(), establish_session=False)
    assert outcome.success
    injector.disarm()
    assert eudm_server.fault_gate is None


def test_nf_death_gates_core_nf(sgx_testbed):
    testbed = sgx_testbed
    plan = plan_with(window(FaultKind.NF_DEATH, "udr", 0.0, 5.0))
    FaultInjector(testbed, plan).arm()
    assert testbed.udr.server.fault_gate is not None
    assert testbed.udm.server.fault_gate is None
    outcome = testbed.register(testbed.add_subscriber(), establish_session=False)
    assert not outcome.success


def test_link_loss_drops_frames_deterministically(sgx_testbed):
    testbed = sgx_testbed
    plan = plan_with(
        window(FaultKind.LINK_LOSS, "oai-bridge", 0.0, 60.0, magnitude=1.0)
    )
    injector = FaultInjector(testbed, plan).arm()
    assert testbed.sbi.link_filter is not None
    outcome = testbed.register(testbed.add_subscriber(), establish_session=False)
    assert not outcome.success
    assert injector.frames_dropped > 0
    injector.disarm()
    assert testbed.sbi.link_filter is None


def test_latency_spike_slows_but_does_not_fail(sgx_testbed):
    testbed = sgx_testbed
    clock = testbed.host.clock

    t0 = clock.now_ns
    assert testbed.register(testbed.add_subscriber(), establish_session=False).success
    clean_ns = clock.now_ns - t0

    plan = plan_with(
        window(FaultKind.LATENCY_SPIKE, "oai-bridge", 0.0, 120.0, magnitude=10_000.0)
    )
    FaultInjector(testbed, plan).arm()
    t0 = clock.now_ns
    assert testbed.register(testbed.add_subscriber(), establish_session=False).success
    spiked_ns = clock.now_ns - t0
    # Every SBI frame pays 10 ms extra, so the spike dominates.
    assert spiked_ns > clean_ns + 50 * 1_000_000


def test_epc_pressure_fills_and_clears(sgx_testbed):
    testbed = sgx_testbed
    epc = testbed.deployment.epc_manager
    plan = plan_with(
        window(FaultKind.EPC_PRESSURE, "epc", 0.0, 5.0, magnitude=1.0)
    )
    injector = FaultInjector(testbed, plan).arm()
    resident_before = epc.resident_pages
    injector.tick()
    assert injector._noise_region is not None
    assert epc.resident_pages >= resident_before
    assert epc.resident_pages >= int(0.99 * epc.capacity_pages)

    testbed.idle(6.0)  # window over
    injector.tick()
    assert injector._noise_region is None

    injector.disarm()
    assert "fault.noise" not in epc._regions


def test_aex_storm_books_extra_interrupts(sgx_testbed):
    testbed = sgx_testbed
    enclave = testbed.paka.modules["eudm"].runtime.enclave
    plan = plan_with(
        window(FaultKind.AEX_STORM, "eudm", 0.0, 10.0, magnitude=10.0)
    )
    injector = FaultInjector(testbed, plan).arm()
    aexs_before = enclave.stats.aexs
    clock_before = testbed.host.clock.now_ns
    testbed.idle(10.0)
    injector.tick()
    assert injector.storm_aexs_booked > 0
    assert enclave.stats.aexs > aexs_before
    # Booking interrupts never advances the clock beyond the idle itself.
    assert testbed.host.clock.now_ns == clock_before + 10 * NS_PER_S


def test_double_arm_rejected(sgx_testbed):
    injector = FaultInjector(sgx_testbed, plan_with()).arm()
    with pytest.raises(RuntimeError, match="already armed"):
        injector.arm()


def test_generated_plan_replays_identically(sgx_testbed):
    """Same (seed, plan) on same-seed testbeds → identical final clocks."""
    from repro.paka.deploy import IsolationMode
    from repro.testbed import Testbed, TestbedConfig

    rates = FaultRates(link_loss_per_min=2.0, latency_spike_per_min=2.0)
    finals = []
    for _ in range(2):
        testbed = Testbed.build(TestbedConfig(isolation=IsolationMode.SGX, seed=12))
        plan = FaultPlan.generate(3, 60.0, rates)
        injector = FaultInjector(testbed, plan).arm()
        outcomes = []
        for _ in range(4):
            injector.tick()
            out = testbed.register(testbed.add_subscriber(), establish_session=False)
            outcomes.append(out.success)
            testbed.idle(5.0)
        finals.append(
            (testbed.host.clock.now_ns, tuple(outcomes), injector.frames_dropped)
        )
    assert finals[0] == finals[1]
