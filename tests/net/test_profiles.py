"""Server syscall profiles: calibration invariants."""

from repro.net.http import ServerSyscallProfile


def test_pistache_like_totals_about_ninety():
    """The calibration anchor: ≈90 syscalls per request overall (the
    paper's per-registration EENTER/EEXIT count)."""
    profile = ServerSyscallProfile.pistache_like()
    total = (
        len(profile.in_window_pre)
        + len(profile.in_window_post)
        + len(profile.out_of_window)
    )
    assert 80 <= total <= 95


def test_in_window_is_small():
    """Only a handful of syscalls sit between request-received and
    response-sent; the rest is reactor chatter around it."""
    profile = ServerSyscallProfile.pistache_like()
    in_window = len(profile.in_window_pre) + len(profile.in_window_post)
    assert 5 <= in_window <= 10
    assert len(profile.out_of_window) > 5 * in_window


def test_chatter_parameter_scales_background():
    small = ServerSyscallProfile.pistache_like(reactor_chatter=10)
    large = ServerSyscallProfile.pistache_like(reactor_chatter=100)
    assert len(large.out_of_window) == 100
    assert len(small.out_of_window) == 10
    assert small.in_window_pre == large.in_window_pre


def test_userlevel_tcp_collapses_syscalls():
    kernel = ServerSyscallProfile.pistache_like()
    mtcp = ServerSyscallProfile.userlevel_tcp()
    kernel_total = (
        len(kernel.in_window_pre) + len(kernel.in_window_post) + len(kernel.out_of_window)
    )
    mtcp_total = (
        len(mtcp.in_window_pre) + len(mtcp.in_window_post) + len(mtcp.out_of_window)
    )
    assert mtcp_total < kernel_total / 10


def test_userlevel_tcp_moves_work_into_compute():
    kernel = ServerSyscallProfile.pistache_like()
    mtcp = ServerSyscallProfile.userlevel_tcp()
    assert mtcp.parse_fixed_cycles > kernel.parse_fixed_cycles
    assert mtcp.parse_per_byte_cycles > kernel.parse_per_byte_cycles


def test_startup_footprint_is_about_650():
    """The paper: deploying Pistache in an enclave costs ≈650 transitions."""
    startup = ServerSyscallProfile.pistache_startup()
    assert 550 <= len(startup) <= 750


def test_connection_setup_includes_tls_flights():
    profile = ServerSyscallProfile.pistache_like()
    names = [name for name, _, _ in profile.connection_setup]
    assert "accept4" in names
    assert names.count("recvmsg") >= 3  # handshake records
    assert "getrandom" in names
