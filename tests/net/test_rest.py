"""REST helpers: JSON bodies, hex fields, error mapping."""

import pytest

from repro.net.http import HttpRequest
from repro.net.rest import (
    JsonApiError,
    error_response,
    json_body,
    json_response,
    require_hex,
    require_int,
    require_str,
)


def test_json_response_sets_content_type():
    response = json_response({"a": 1})
    assert response.ok
    assert response.headers["Content-Type"] == "application/json"
    assert response.json() == {"a": 1}


def test_error_response_carries_status_and_message():
    response = error_response(JsonApiError(403, "denied"))
    assert response.status == 403
    assert response.json() == {"error": "denied"}


def test_json_body_parses_object():
    request = HttpRequest("POST", "/", body=b'{"k": "v"}')
    assert json_body(request) == {"k": "v"}


@pytest.mark.parametrize("body", [b"not json", b"[1,2]", b"\xff\xfe"])
def test_json_body_rejects_non_objects(body):
    with pytest.raises(JsonApiError):
        json_body(HttpRequest("POST", "/", body=body))


def test_require_hex_happy_path():
    assert require_hex({"k": "00ff"}, "k", 2) == b"\x00\xff"


@pytest.mark.parametrize(
    "data", [{}, {"k": 5}, {"k": "zz"}, {"k": "00"}]
)
def test_require_hex_failures(data):
    with pytest.raises(JsonApiError):
        require_hex(data, "k", 2)


def test_require_str():
    assert require_str({"s": "x"}, "s") == "x"
    for bad in ({}, {"s": ""}, {"s": 7}):
        with pytest.raises(JsonApiError):
            require_str(bad, "s")


def test_require_int():
    assert require_int({"n": 5}, "n") == 5
    for bad in ({}, {"n": "5"}, {"n": True}):
        with pytest.raises(JsonApiError):
            require_int(bad, "n")
