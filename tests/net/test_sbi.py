"""SBI conventions: profiles and path registry."""

import pytest

from repro.net import sbi
from repro.net.sbi import NFProfile, NFType


def test_nf_types_cover_fig2():
    assert {t.value for t in NFType} == {"NRF", "UDR", "UDM", "AUSF", "AMF", "SMF", "UPF"}


def test_profile_dict_roundtrip():
    profile = NFProfile(
        nf_instance_id="udm-0001",
        nf_type=NFType.UDM,
        endpoint_name="udm",
        services=["nudm-ueau"],
        metadata={"vendor": "repro"},
    )
    assert NFProfile.from_dict(profile.to_dict()) == profile


def test_profile_from_dict_validates_type():
    with pytest.raises(ValueError):
        NFProfile.from_dict(
            {"nfInstanceId": "x", "nfType": "BANANA", "endpoint": "e"}
        )


def test_api_paths_follow_3gpp_naming():
    assert sbi.UDM_UE_AUTH_GET.startswith("/nudm-ueau/")
    assert sbi.AUSF_UE_AUTH.startswith("/nausf-auth/")
    assert sbi.NRF_REGISTER.startswith("/nnrf-nfm/")
    assert sbi.SMF_PDU_SESSION.startswith("/nsmf-pdusession/")


def test_paka_paths_are_versioned_and_distinct():
    paths = {sbi.EUDM_PROVISION, sbi.EUDM_GENERATE_AV, sbi.EAUSF_DERIVE_SE_AV, sbi.EAMF_DERIVE_KAMF}
    assert len(paths) == 4
    for path in paths:
        assert "/v1/" in path


def test_profile_roundtrip_with_empty_services_and_metadata():
    profile = NFProfile(
        nf_instance_id="amf-0001",
        nf_type=NFType.AMF,
        endpoint_name="amf",
    )
    data = profile.to_dict()
    assert data["services"] == [] and data["metadata"] == {}
    assert NFProfile.from_dict(data) == profile


def test_profile_from_dict_tolerates_missing_optionals():
    restored = NFProfile.from_dict(
        {"nfInstanceId": "smf-1", "nfType": "SMF", "endpoint": "smf"}
    )
    assert restored.services == []
    assert restored.metadata == {}


def test_profile_from_dict_coerces_nonstring_values():
    restored = NFProfile.from_dict(
        {
            "nfInstanceId": 42,
            "nfType": "UPF",
            "endpoint": "upf",
            "services": ["a", 7],
            "metadata": {"capacity": 100, 5: True},
        }
    )
    assert restored.nf_instance_id == "42"
    assert restored.services == ["a", "7"]
    assert restored.metadata == {"capacity": "100", "5": "True"}
    # Coerced profiles survive a second round-trip unchanged.
    assert NFProfile.from_dict(restored.to_dict()) == restored


def test_health_path_registered():
    assert sbi.NF_HEALTH.startswith("/nnrf-nfm/")
