"""HTTP layer: routing, instrumentation, TLS-on-the-wire."""

import json

import pytest

from repro.container.network import BridgeNetwork
from repro.net.http import (
    HttpClient,
    HttpError,
    HttpRequest,
    HttpResponse,
    HttpServer,
)
from repro.net.rest import json_response
from repro.runtime.native import NativeRuntime


@pytest.fixture
def bridge(host):
    return BridgeNetwork(name="test-bridge", host=host)


@pytest.fixture
def server(host, bridge):
    server = HttpServer("srv", NativeRuntime("srv", host), bridge)
    server.route(
        "POST", "/echo",
        lambda request, context: json_response({"echo": request.body.decode()}),
    )
    server.start()
    return server


@pytest.fixture
def client(host, bridge):
    return HttpClient("cli", NativeRuntime("cli", host), bridge)


def test_request_response_roundtrip(server, client):
    connection = client.connect(server)
    response = client.request(connection, "POST", "/echo", body=b"hello")
    assert response.ok
    assert response.json() == {"echo": "hello"}


def test_unknown_route_raises(server, client):
    connection = client.connect(server)
    with pytest.raises(HttpError, match="no route"):
        client.request(connection, "GET", "/missing")


def test_server_must_be_started(host, bridge, client):
    cold = HttpServer("cold", NativeRuntime("cold", host), bridge)
    with pytest.raises(HttpError, match="not started"):
        client.connect(cold)


def test_double_start_rejected(server):
    with pytest.raises(HttpError):
        server.start()


def test_wire_format_roundtrip():
    request = HttpRequest("POST", "/p", body=b"body", headers={"X": "1"})
    assert HttpRequest.from_wire(request.wire_bytes()) == request
    response = HttpResponse(201, body=b"out", headers={"Y": "2"})
    restored = HttpResponse.from_wire(response.wire_bytes())
    assert restored.status == 201 and restored.body == b"out"


def test_latency_metrics_recorded(server, client):
    connection = client.connect(server)
    client.request(connection, "POST", "/echo", body=b"x")
    client.request(connection, "POST", "/echo", body=b"x")
    assert len(server.lf_us) == 2
    assert len(server.lt_us) == 2
    assert server.lt_us[0] >= server.lf_us[0]  # L_T = L_F + L_N
    assert server.lf_us_by_path["/echo"] == server.lf_us
    assert len(client.response_times_us) == 2
    assert client.response_times_us[0] > server.lt_us[0]  # R > L_T


def test_response_times_keyed_by_server(server, client, host, bridge):
    other = HttpServer("srv2", NativeRuntime("srv2", host), bridge)
    other.route("GET", "/", lambda req, ctx: json_response({}))
    other.start()
    c1 = client.connect(server)
    c2 = client.connect(other)
    client.request(c1, "POST", "/echo", body=b"x")
    client.request(c2, "GET", "/")
    assert len(client.response_times_by_server["srv"]) == 1
    assert len(client.response_times_by_server["srv2"]) == 1


def test_handler_charges_fall_in_lf_window(server, client, host):
    slow_calls = []

    def slow_handler(request, context):
        context.runtime.compute(240_000)  # 100 us
        slow_calls.append(1)
        return json_response({})

    server.route("GET", "/slow", slow_handler)
    connection = client.connect(server)
    client.request(connection, "GET", "/slow")
    assert slow_calls
    assert server.lf_us_by_path["/slow"][0] >= 100.0


def test_payload_is_tls_protected_on_the_wire(server, client, bridge):
    connection = client.connect(server)
    bridge.start_capture()
    client.request(connection, "POST", "/echo", body=b"kausf=deadbeef")
    frames = bridge.stop_capture()
    assert frames, "request and response frames expected"
    for frame in frames:
        assert b"kausf" not in frame.payload
        assert b"deadbeef" not in frame.payload


def test_closed_connection_rejected(server, client):
    connection = client.connect(server)
    client.close(connection)
    with pytest.raises(HttpError):
        client.request(connection, "POST", "/echo", body=b"x")


def test_requests_advance_simulated_time(server, client, host):
    connection = client.connect(server)
    t0 = host.clock.now_ns
    client.request(connection, "POST", "/echo", body=b"x")
    elapsed_us = (host.clock.now_ns - t0) / 1000
    assert 100 < elapsed_us < 2_000  # sub-millisecond intra-host exchange


def test_metrics_cap_bounds_samples_but_keeps_exact_stats(host, bridge):
    from repro.net.rest import json_response
    from repro.runtime.native import NativeRuntime

    server = HttpServer(
        "capped", NativeRuntime("capped", host), bridge, metrics_cap=8
    )
    server.route(
        "POST", "/echo",
        lambda request, context: json_response({"echo": request.body.decode()}),
    )
    server.start()
    client = HttpClient("cap-cli", NativeRuntime("cap-cli", host), bridge)
    connection = client.connect(server)
    for i in range(30):
        client.request(connection, "POST", "/echo", body=b"x")

    assert server.requests_served == 30
    # Raw sample windows are trimmed to the cap...
    assert len(server.lt_us) <= 8
    assert len(server.lf_us) <= 8
    assert len(server.busy_us) <= 8
    assert len(server.lt_us_by_path["/echo"]) <= 8
    # ...while the running summaries still cover every request.
    assert server.lt_us.stats.count == 30
    assert server.busy_us.stats.count == 30
    assert server.lt_us_by_path["/echo"].stats.count == 30
    assert server.lt_us.stats.minimum > 0
    assert server.lt_us.stats.mean <= server.lt_us.stats.maximum


def test_metrics_unbounded_by_default(server, client):
    connection = client.connect(server)
    for _ in range(5):
        client.request(connection, "POST", "/echo", body=b"x")
    assert len(server.lt_us) == 5
    assert server.lt_us.stats.count == 5
