"""HTTP layer: routing, instrumentation, TLS-on-the-wire."""

import json

import pytest

from repro.container.network import BridgeNetwork
from repro.net.http import (
    HttpClient,
    HttpError,
    HttpRequest,
    HttpResponse,
    HttpServer,
)
from repro.net.rest import json_response
from repro.runtime.native import NativeRuntime


@pytest.fixture
def bridge(host):
    return BridgeNetwork(name="test-bridge", host=host)


@pytest.fixture
def server(host, bridge):
    server = HttpServer("srv", NativeRuntime("srv", host), bridge)
    server.route(
        "POST", "/echo",
        lambda request, context: json_response({"echo": request.body.decode()}),
    )
    server.start()
    return server


@pytest.fixture
def client(host, bridge):
    return HttpClient("cli", NativeRuntime("cli", host), bridge)


def test_request_response_roundtrip(server, client):
    connection = client.connect(server)
    response = client.request(connection, "POST", "/echo", body=b"hello")
    assert response.ok
    assert response.json() == {"echo": "hello"}


def test_unknown_route_raises(server, client):
    connection = client.connect(server)
    with pytest.raises(HttpError, match="no route"):
        client.request(connection, "GET", "/missing")


def test_server_must_be_started(host, bridge, client):
    cold = HttpServer("cold", NativeRuntime("cold", host), bridge)
    with pytest.raises(HttpError, match="not started"):
        client.connect(cold)


def test_double_start_rejected(server):
    with pytest.raises(HttpError):
        server.start()


def test_wire_format_roundtrip():
    request = HttpRequest("POST", "/p", body=b"body", headers={"X": "1"})
    assert HttpRequest.from_wire(request.wire_bytes()) == request
    response = HttpResponse(201, body=b"out", headers={"Y": "2"})
    restored = HttpResponse.from_wire(response.wire_bytes())
    assert restored.status == 201 and restored.body == b"out"


def test_latency_metrics_recorded(server, client):
    connection = client.connect(server)
    client.request(connection, "POST", "/echo", body=b"x")
    client.request(connection, "POST", "/echo", body=b"x")
    assert len(server.lf_us) == 2
    assert len(server.lt_us) == 2
    assert server.lt_us[0] >= server.lf_us[0]  # L_T = L_F + L_N
    assert server.lf_us_by_path["/echo"] == server.lf_us
    assert len(client.response_times_us) == 2
    assert client.response_times_us[0] > server.lt_us[0]  # R > L_T


def test_response_times_keyed_by_server(server, client, host, bridge):
    other = HttpServer("srv2", NativeRuntime("srv2", host), bridge)
    other.route("GET", "/", lambda req, ctx: json_response({}))
    other.start()
    c1 = client.connect(server)
    c2 = client.connect(other)
    client.request(c1, "POST", "/echo", body=b"x")
    client.request(c2, "GET", "/")
    assert len(client.response_times_by_server["srv"]) == 1
    assert len(client.response_times_by_server["srv2"]) == 1


def test_handler_charges_fall_in_lf_window(server, client, host):
    slow_calls = []

    def slow_handler(request, context):
        context.runtime.compute(240_000)  # 100 us
        slow_calls.append(1)
        return json_response({})

    server.route("GET", "/slow", slow_handler)
    connection = client.connect(server)
    client.request(connection, "GET", "/slow")
    assert slow_calls
    assert server.lf_us_by_path["/slow"][0] >= 100.0


def test_payload_is_tls_protected_on_the_wire(server, client, bridge):
    connection = client.connect(server)
    bridge.start_capture()
    client.request(connection, "POST", "/echo", body=b"kausf=deadbeef")
    frames = bridge.stop_capture()
    assert frames, "request and response frames expected"
    for frame in frames:
        assert b"kausf" not in frame.payload
        assert b"deadbeef" not in frame.payload


def test_closed_connection_rejected(server, client):
    connection = client.connect(server)
    client.close(connection)
    with pytest.raises(HttpError):
        client.request(connection, "POST", "/echo", body=b"x")


def test_requests_advance_simulated_time(server, client, host):
    connection = client.connect(server)
    t0 = host.clock.now_ns
    client.request(connection, "POST", "/echo", body=b"x")
    elapsed_us = (host.clock.now_ns - t0) / 1000
    assert 100 < elapsed_us < 2_000  # sub-millisecond intra-host exchange


def test_metrics_cap_bounds_samples_but_keeps_exact_stats(host, bridge):
    from repro.net.rest import json_response
    from repro.runtime.native import NativeRuntime

    server = HttpServer(
        "capped", NativeRuntime("capped", host), bridge, metrics_cap=8
    )
    server.route(
        "POST", "/echo",
        lambda request, context: json_response({"echo": request.body.decode()}),
    )
    server.start()
    client = HttpClient("cap-cli", NativeRuntime("cap-cli", host), bridge)
    connection = client.connect(server)
    for i in range(30):
        client.request(connection, "POST", "/echo", body=b"x")

    assert server.requests_served == 30
    # Raw sample windows are trimmed to the cap...
    assert len(server.lt_us) <= 8
    assert len(server.lf_us) <= 8
    assert len(server.busy_us) <= 8
    assert len(server.lt_us_by_path["/echo"]) <= 8
    # ...while the running summaries still cover every request.
    assert server.lt_us.stats.count == 30
    assert server.busy_us.stats.count == 30
    assert server.lt_us_by_path["/echo"].stats.count == 30
    assert server.lt_us.stats.minimum > 0
    assert server.lt_us.stats.mean <= server.lt_us.stats.maximum


def test_metrics_unbounded_by_default(server, client):
    connection = client.connect(server)
    for _ in range(5):
        client.request(connection, "POST", "/echo", body=b"x")
    assert len(server.lt_us) == 5
    assert server.lt_us.stats.count == 5


# --------------------------------------------------------------------------
# Timeouts, retries and exception safety along the failure paths.


from repro.container.network import FrameLost, NetworkError  # noqa: E402
from repro.net.http import (  # noqa: E402
    RequestTimeout,
    RetryPolicy,
    UnresponsiveError,
)

FAST_RETRY = RetryPolicy(max_attempts=3, timeout_us=5_000.0, base_backoff_us=100.0)


def raise_unresponsive(server):
    raise UnresponsiveError(f"{server.name} is down")


def test_unresponsive_without_timeout_propagates(server, client, host):
    server.fault_gate = raise_unresponsive
    connection = client.connect(server)
    with pytest.raises(UnresponsiveError):
        client.request(connection, "POST", "/echo", body=b"x")
    # The error path leaks no open measurement span.
    assert host.clock._open_measurements == []
    assert client.timeouts == 0  # no deadline, no timeout accounting


def test_timeout_charges_the_full_deadline(server, client, host):
    server.fault_gate = raise_unresponsive
    connection = client.connect(server)
    t0 = host.clock.now_ns
    with pytest.raises(RequestTimeout):
        client.request(connection, "POST", "/echo", body=b"x", timeout_us=5_000.0)
    elapsed_us = (host.clock.now_ns - t0) / 1_000
    assert elapsed_us >= 5_000.0  # the client blocked until its deadline
    assert client.timeouts == 1
    assert host.clock._open_measurements == []


def test_retry_recovers_after_transient_outage(server, client, host):
    calls = []

    def flaky_gate(srv):
        calls.append(1)
        if len(calls) == 1:
            raise UnresponsiveError("first attempt eats a crash window")

    server.fault_gate = flaky_gate
    connection = client.connect(server)
    response = client.request(
        connection, "POST", "/echo", body=b"hello", retry=FAST_RETRY
    )
    assert response.ok
    assert client.retries == 1
    assert client.timeouts == 1
    assert client.reconnects == 1  # fresh TLS session for attempt 2
    assert connection.open  # cached reference still valid
    assert host.clock._open_measurements == []
    # The healed connection keeps serving without another handshake.
    assert client.request(connection, "POST", "/echo", body=b"again").ok
    assert client.reconnects == 1


def test_retry_exhaustion_raises_request_timeout(server, client, host):
    server.fault_gate = raise_unresponsive
    connection = client.connect(server)
    with pytest.raises(RequestTimeout):
        client.request(connection, "POST", "/echo", body=b"x", retry=FAST_RETRY)
    assert client.retries == FAST_RETRY.max_attempts - 1
    assert client.timeouts == FAST_RETRY.max_attempts
    assert host.clock._open_measurements == []


def test_protocol_errors_are_never_retried(server, client):
    connection = client.connect(server)
    with pytest.raises(HttpError, match="no route"):
        client.request(connection, "GET", "/missing", retry=FAST_RETRY)
    assert client.retries == 0


def test_lost_frame_times_out(server, client, host, bridge):
    connection = client.connect(server)
    bridge.link_filter = lambda src, dst, nbytes: None  # drop everything
    with pytest.raises(RequestTimeout):
        client.request(connection, "POST", "/echo", body=b"x", timeout_us=5_000.0)
    bridge.link_filter = None
    assert client.timeouts == 1
    assert host.clock._open_measurements == []


def test_late_response_is_discarded(server, client, host, bridge):
    connection = client.connect(server)
    bridge.link_filter = lambda src, dst, nbytes: 50_000.0  # +50 ms per frame
    with pytest.raises(RequestTimeout, match="deadline"):
        client.request(connection, "POST", "/echo", body=b"x", timeout_us=1_000.0)
    bridge.link_filter = None
    assert client.timeouts == 1
    assert client.response_times_us == []  # the late response is not a sample
    assert host.clock._open_measurements == []


def test_handler_exception_leaks_no_span_or_sample(server, client, host):
    def exploding(request, context):
        raise HttpError("handler blew up")

    server.route("GET", "/boom", exploding)
    connection = client.connect(server)
    served_before = server.requests_served
    samples_before = len(server.lt_us)
    with pytest.raises(HttpError, match="blew up"):
        client.request(connection, "GET", "/boom")
    assert host.clock._open_measurements == []
    assert server.requests_served == served_before
    assert len(server.lt_us) == samples_before
    # The same connection still serves the next request.
    assert client.request(connection, "POST", "/echo", body=b"x").ok


def test_backoff_advances_the_simulated_clock(server, client, host):
    server.fault_gate = raise_unresponsive
    connection = client.connect(server)
    policy = RetryPolicy(
        max_attempts=2, timeout_us=1_000.0, base_backoff_us=40_000.0, jitter=0.0
    )
    t0 = host.clock.now_ns
    with pytest.raises(RequestTimeout):
        client.request(connection, "POST", "/echo", body=b"x", retry=policy)
    elapsed_us = (host.clock.now_ns - t0) / 1_000
    # Two 1 ms deadlines plus one 40 ms backoff (plus transit costs).
    assert elapsed_us >= 2 * 1_000.0 + 40_000.0
