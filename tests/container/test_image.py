"""Container image model: layers, rootfs, KI 27 read primitive."""

import pytest

from repro.container.image import ContainerImage, FileEntry, ImageLayer, oai_base_image


def test_file_entry_validation():
    with pytest.raises(ValueError):
        FileEntry("relative/path", 10)
    with pytest.raises(ValueError):
        FileEntry("/x", 10, content=b"mismatched-length")


def test_layer_size_sums_files_and_bulk():
    layer = ImageLayer("l", files=[FileEntry("/a", 100), FileEntry("/b", 50)], opaque_bytes=1000)
    assert layer.size_bytes == 1150


def test_image_size_sums_layers():
    image = ContainerImage(
        "repo", "v1",
        layers=[ImageLayer("a", opaque_bytes=10), ImageLayer("b", opaque_bytes=20)],
    )
    assert image.size_bytes == 30
    assert image.reference == "repo:v1"


def test_rootfs_merge_later_layers_shadow():
    image = ContainerImage(
        "repo", "v1",
        layers=[
            ImageLayer("base", files=[FileEntry("/etc/conf", 3, b"old")]),
            ImageLayer("patch", files=[FileEntry("/etc/conf", 3, b"new")]),
        ],
    )
    assert image.read_file("/etc/conf") == b"new"


def test_read_file_missing_raises():
    image = ContainerImage("repo", "v1")
    with pytest.raises(FileNotFoundError):
        image.read_file("/nope")


def test_read_file_without_content_raises():
    image = ContainerImage(
        "repo", "v1", layers=[ImageLayer("l", files=[FileEntry("/big", 10_000)])]
    )
    with pytest.raises(ValueError):
        image.read_file("/big")


def test_with_layer_is_non_destructive():
    base = ContainerImage("repo", "v1", layers=[ImageLayer("a", opaque_bytes=10)])
    extended = base.with_layer(ImageLayer("b", opaque_bytes=5))
    assert len(base.layers) == 1
    assert len(extended.layers) == 2
    assert extended.size_bytes == 15
    assert extended.tag != base.tag


def test_oai_base_image_shape():
    image, app_layer = oai_base_image("eudm-aka", bulk_mb=100)
    assert image.repository == "oai/eudm-aka"
    assert image.entrypoint == "/opt/oai/eudm-aka"
    assert image.size_bytes > 100 * 1024**2
    assert any(f.path == "/opt/oai/eudm-aka" for f in app_layer.files)
