"""Bridge network: latency model, routing, capture."""

import pytest

from repro.container.network import BridgeNetwork, NetworkError


@pytest.fixture
def bridge(host):
    return BridgeNetwork(name="oai-bridge", host=host)


def test_attach_and_send(bridge, host):
    a = bridge.attach("udm")
    bridge.attach("eudm")
    t0 = host.clock.now_ns
    a.send("eudm", b"payload")
    assert host.clock.now_ns > t0


def test_duplicate_endpoint_rejected(bridge):
    bridge.attach("udm")
    with pytest.raises(NetworkError):
        bridge.attach("udm")


def test_unroutable_destination(bridge):
    a = bridge.attach("udm")
    with pytest.raises(NetworkError):
        a.send("ghost", b"x")


def test_detach_removes_route(bridge):
    a = bridge.attach("udm")
    bridge.attach("eudm")
    bridge.detach("eudm")
    with pytest.raises(NetworkError):
        a.send("eudm", b"x")


def test_latency_scales_with_size(bridge):
    small = [bridge.transit_latency_us(64) for _ in range(50)]
    large = [bridge.transit_latency_us(64 * 1024) for _ in range(50)]
    assert sum(large) / len(large) > sum(small) / len(small)


def test_delivery_callback(bridge):
    bridge.attach("udm")
    receiver = bridge.attach("eudm")
    received = []
    receiver.deliver = received.append
    bridge.endpoint("udm").send("eudm", b"hello")
    assert len(received) == 1
    assert received[0].payload == b"hello"
    assert received[0].src == "udm"


def test_capture_records_frames(bridge):
    a = bridge.attach("udm")
    bridge.attach("eudm")
    bridge.start_capture()
    a.send("eudm", b"secret-exchange")
    frames = bridge.stop_capture()
    assert len(frames) == 1
    assert frames[0].payload == b"secret-exchange"
    # capture is drained and disabled afterwards
    a.send("eudm", b"after")
    assert bridge.stop_capture() == []


def test_frames_logged_as_events(bridge, host):
    a = bridge.attach("udm")
    bridge.attach("eudm")
    before = host.events.count("net.frame")
    a.send("eudm", b"x")
    assert host.events.count("net.frame") == before + 1
