"""Container engine: lifecycle, networks, introspection primitive."""

import pytest

from repro.container.engine import ContainerEngine, ContainerError, ContainerStatus
from repro.container.image import oai_base_image


@pytest.fixture
def engine(host):
    return ContainerEngine(host)


@pytest.fixture
def image():
    img, _ = oai_base_image("eudm-aka", bulk_mb=10)
    return img


def test_run_starts_container(engine, image):
    container = engine.run(image, "c1")
    assert container.status is ContainerStatus.RUNNING
    assert engine.get("c1") is container
    assert container in engine.ps()


def test_run_advances_startup_time(engine, image, host):
    t0 = host.clock.now_ns
    engine.run(image, "c1")
    assert (host.clock.now_ns - t0) / 1e6 > 100  # containerd start latency


def test_duplicate_name_rejected(engine, image):
    engine.run(image, "c1")
    with pytest.raises(ContainerError):
        engine.run(image, "c1")


def test_network_attach_detach(engine, image):
    engine.create_network("bridge0")
    container = engine.run(image, "c1", network="bridge0")
    assert container.endpoint is not None
    engine.stop("c1")
    assert container.endpoint is None
    assert container.status is ContainerStatus.EXITED


def test_unknown_network_rejected(engine, image):
    with pytest.raises(ContainerError):
        engine.run(image, "c1", network="missing")


def test_duplicate_network_rejected(engine):
    engine.create_network("n")
    with pytest.raises(ContainerError):
        engine.create_network("n")


def test_stop_shuts_runtime_down(engine, image):
    container = engine.run(image, "c1")
    engine.stop("c1")
    with pytest.raises(RuntimeError):
        container.runtime.compute(100)


def test_remove_unregisters(engine, image):
    engine.run(image, "c1")
    engine.remove("c1")
    with pytest.raises(ContainerError):
        engine.get("c1")


def test_introspection_reads_native_runtime_memory(engine, image):
    container = engine.run(image, "c1")
    container.runtime.store_secret("k", bytes(range(16)))
    dump = engine.introspect_memory("c1")
    assert bytes(range(16)).hex().encode() in dump


def test_custom_runtime_factory(engine, image, host):
    from repro.runtime.native import NativeRuntime

    created = []

    def factory(name, h):
        runtime = NativeRuntime(name, h)
        created.append(runtime)
        return runtime

    container = engine.run(image, "c1", runtime_factory=factory)
    assert container.runtime is created[0]
