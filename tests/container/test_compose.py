"""Compose orchestration: ordering, cycles, teardown."""

import pytest

from repro.container.compose import ComposeError, ComposeProject, ServiceSpec
from repro.container.engine import ContainerEngine
from repro.container.image import oai_base_image


@pytest.fixture
def engine(host):
    engine = ContainerEngine(host)
    engine.create_network("oai-bridge")
    return engine


def make_spec(name, depends_on=(), network=None):
    image, _ = oai_base_image(name, bulk_mb=5)
    return ServiceSpec(name=name, image=image, network=network, depends_on=list(depends_on))


def test_up_starts_in_dependency_order(engine, host):
    project = ComposeProject("slice", engine)
    project.add_service(make_spec("amf", depends_on=["ausf"]))
    project.add_service(make_spec("ausf", depends_on=["udm"]))
    project.add_service(make_spec("udm"))
    containers = project.up()
    assert set(containers) == {"udm", "ausf", "amf"}
    start_order = sorted(containers.values(), key=lambda c: c.start_timestamp_ns)
    assert [c.name for c in start_order] == ["slice_udm", "slice_ausf", "slice_amf"]


def test_cycle_detected(engine):
    project = ComposeProject("slice", engine)
    project.add_service(make_spec("a", depends_on=["b"]))
    project.add_service(make_spec("b", depends_on=["a"]))
    with pytest.raises(ComposeError, match="cycle"):
        project.up()


def test_unknown_dependency_rejected(engine):
    project = ComposeProject("slice", engine)
    project.add_service(make_spec("a", depends_on=["ghost"]))
    with pytest.raises(ComposeError, match="unknown"):
        project.up()


def test_duplicate_service_rejected(engine):
    project = ComposeProject("slice", engine)
    project.add_service(make_spec("a"))
    with pytest.raises(ComposeError):
        project.add_service(make_spec("a"))


def test_up_is_idempotent(engine):
    project = ComposeProject("slice", engine)
    project.add_service(make_spec("a"))
    first = project.up()["a"]
    second = project.up()["a"]
    assert first is second


def test_down_removes_containers(engine):
    project = ComposeProject("slice", engine)
    project.add_service(make_spec("a"))
    project.up()
    project.down()
    with pytest.raises(ComposeError):
        project.container("a")
    assert engine.ps() == []


def test_services_attach_to_network(engine):
    project = ComposeProject("slice", engine)
    project.add_service(make_spec("a", network="oai-bridge"))
    container = project.up()["a"]
    assert container.endpoint is not None
    assert container.endpoint.network.name == "oai-bridge"
