"""gNB: registration loop, air-link model, failure propagation."""

import pytest

from repro.ran.gnb import AirLinkModel, Gnb


def test_airlink_latency_scales_with_size():
    model = AirLinkModel()
    assert model.message_ms(4096) > model.message_ms(64)


def test_registration_succeeds_and_times(monolithic_testbed):
    testbed = monolithic_testbed
    ue = testbed.add_subscriber()
    outcome = testbed.gnb.register(ue)
    assert outcome.success
    assert outcome.guti == ue.guti
    assert outcome.supi == str(ue.usim.supi)
    assert 30 < outcome.session_setup_ms < 90
    assert outcome.nas_exchanges >= 5


def test_registration_without_session_is_faster(monolithic_testbed):
    testbed = monolithic_testbed
    with_session = testbed.gnb.register(testbed.add_subscriber(), establish_session=True)
    without = testbed.gnb.register(testbed.add_subscriber(), establish_session=False)
    assert without.session_setup_ms < with_session.session_setup_ms
    assert without.nas_exchanges < with_session.nas_exchanges


def test_wrong_key_ue_is_rejected(monolithic_testbed):
    """A UE whose USIM holds the wrong K never registers (MAC failure)."""
    testbed = monolithic_testbed
    ue = testbed.add_subscriber()
    ue.usim._k = bytes(16)  # corrupt the SIM's key
    ue.usim._milenage = type(ue.usim._milenage)(bytes(16), ue.usim._opc)
    outcome = testbed.gnb.register(ue)
    assert not outcome.success
    assert "MAC_FAILURE" in (outcome.failure_cause or "")


def test_gnb_counters(monolithic_testbed):
    testbed = monolithic_testbed
    testbed.gnb.register(testbed.add_subscriber())
    ue = testbed.add_subscriber()
    ue.usim._k = bytes(16)
    ue.usim._milenage = type(ue.usim._milenage)(bytes(16), ue.usim._opc)
    testbed.gnb.register(ue)
    assert testbed.gnb.registrations_attempted == 2
    assert testbed.gnb.registrations_succeeded == 1


def test_sgx_slice_registration_slower_than_monolithic():
    from repro.testbed import Testbed, TestbedConfig
    from repro.paka.deploy import IsolationMode

    def stable_setup(isolation):
        testbed = Testbed.build(TestbedConfig(isolation=isolation, seed=44))
        for _ in range(2):  # warm up
            testbed.register(testbed.add_subscriber(), establish_session=False)
        samples = [
            testbed.register(testbed.add_subscriber()).session_setup_ms
            for _ in range(4)
        ]
        return sum(samples) / len(samples)

    assert stable_setup(IsolationMode.SGX) > stable_setup(None)
