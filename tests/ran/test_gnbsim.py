"""gNBSIM mass-registration campaigns and stat differencing."""

import pytest

from repro.ran.gnbsim import GnbSim


def test_campaign_registers_all_ues(sgx_testbed):
    sim = GnbSim(sgx_testbed)
    report = sim.register_ues(3, establish_session=False)
    assert report.successes == 3
    assert report.failures == 0
    assert report.mean_setup_ms() > 0


def test_per_registration_stat_deltas(sgx_testbed):
    sim = GnbSim(sgx_testbed)
    sim.warm_up(1)
    report = sim.register_ues(3, establish_session=False)
    for module in ("eudm", "eausf", "eamf"):
        deltas = report.per_registration_stats[module]
        assert len(deltas) == 3
        for delta in deltas:
            assert 70 <= delta.eenters <= 110  # ~90 per registration
            assert delta.eenters == delta.eexits  # OCALL pairs balance


def test_final_stats_snapshot(sgx_testbed):
    sim = GnbSim(sgx_testbed)
    report = sim.register_ues(1, establish_session=False)
    assert set(report.final_stats) == {"eudm", "eausf", "eamf"}
    assert report.final_stats["eudm"].eenters > 0


def test_mean_transition_delta(sgx_testbed):
    sim = GnbSim(sgx_testbed)
    sim.warm_up(1)
    report = sim.register_ues(2, establish_session=False)
    assert 70 <= report.mean_transition_delta("eudm") <= 110
    with pytest.raises(ValueError):
        report.mean_transition_delta("ghost")


def test_idle_windows_accumulate_aex(sgx_testbed):
    sim = GnbSim(sgx_testbed)
    report = sim.register_ues(2, establish_session=False, inter_registration_idle_s=10.0)
    assert report.final_stats["eudm"].aexs > 10_000


def test_container_campaign_has_no_sgx_stats(container_testbed):
    sim = GnbSim(container_testbed)
    report = sim.register_ues(1, establish_session=False)
    assert report.per_registration_stats == {"eudm": [], "eausf": [], "eamf": []}
    assert report.final_stats == {}


def test_monolithic_campaign(monolithic_testbed):
    report = GnbSim(monolithic_testbed).register_ues(2, establish_session=False)
    assert report.successes == 2
    assert report.per_registration_stats == {}


def test_empty_report_mean_raises():
    from repro.ran.gnbsim import MassRegistrationReport

    with pytest.raises(ValueError):
        MassRegistrationReport().mean_setup_ms()
