"""USIM: AUTN verification, SQN window, resynchronisation."""

import pytest

from repro.aka import generate_he_av
from repro.crypto.kdf import serving_network_name
from repro.crypto.suci import Supi
from repro.ran.usim import Usim, UsimError, verify_auts

K = bytes.fromhex("465b5ce8b199b49faa5f0a2ee238a6bc")
OPC = bytes.fromhex("cd63cb71954a9f4e48a5994e37a02baf")
SNN = serving_network_name("001", "01")
SUPI = Supi("001", "01", "0000000001")
RAND = bytes(range(16))


def make_usim(sqn_ms=0):
    return Usim(supi=SUPI, k=K, opc=OPC, sqn_ms=sqn_ms)


def challenge(sqn=1, rand=RAND, k=K, opc=OPC):
    return generate_he_av(
        k=k, opc=opc, rand=rand, sqn=sqn.to_bytes(6, "big"), snn=SNN
    )


def test_successful_authentication_matches_network():
    usim = make_usim()
    he_av = challenge(sqn=1)
    result = usim.authenticate(he_av.rand, he_av.autn, SNN)
    assert result.success
    # Mutual agreement: UE derives exactly the network's XRES* and K_AUSF.
    assert result.res_star == he_av.xres_star
    assert result.kausf == he_av.kausf
    assert result.kseaf is not None


def test_sqn_ms_advances_on_success():
    usim = make_usim()
    he_av = challenge(sqn=5)
    assert usim.authenticate(he_av.rand, he_av.autn, SNN).success
    assert usim.sqn_ms == 5


def test_mac_failure_for_wrong_key():
    usim = Usim(supi=SUPI, k=bytes(16), opc=OPC)
    he_av = challenge()  # generated under the real K
    result = usim.authenticate(he_av.rand, he_av.autn, SNN)
    assert not result.success
    assert result.cause == "MAC_FAILURE"
    assert result.res_star is None


def test_tampered_autn_rejected():
    usim = make_usim()
    he_av = challenge()
    for position in range(16):
        tampered = bytearray(he_av.autn)
        tampered[position] ^= 0x01
        result = usim.authenticate(he_av.rand, bytes(tampered), SNN)
        assert not result.success, f"tampered AUTN byte {position} accepted"


def test_replayed_challenge_triggers_resync():
    usim = make_usim()
    he_av = challenge(sqn=3)
    assert usim.authenticate(he_av.rand, he_av.autn, SNN).success
    replay = usim.authenticate(he_av.rand, he_av.autn, SNN)
    assert not replay.success
    assert replay.cause == "SYNCH_FAILURE"
    assert replay.auts is not None


def test_stale_sqn_triggers_resync():
    usim = make_usim(sqn_ms=100)
    he_av = challenge(sqn=50)
    result = usim.authenticate(he_av.rand, he_av.autn, SNN)
    assert result.cause == "SYNCH_FAILURE"


def test_sqn_too_far_ahead_triggers_resync():
    usim = make_usim()
    he_av = challenge(sqn=Usim.SQN_DELTA + 2)
    result = usim.authenticate(he_av.rand, he_av.autn, SNN)
    assert result.cause == "SYNCH_FAILURE"


def test_sqn_wraparound_accepted():
    """Annex C.2 freshness is modular: a challenge whose SQN wrapped past
    2^48 is still inside the window of a USIM parked just below it."""
    top = (1 << 48) - 2
    usim = make_usim(sqn_ms=top)
    he_av = challenge(sqn=(top + 5) % (1 << 48))  # wraps to 3
    result = usim.authenticate(he_av.rand, he_av.autn, SNN)
    assert result.success
    assert usim.sqn_ms == 3


def test_sqn_wraparound_still_rejects_replay():
    """The modular window must not accept *everything* near the wrap:
    an SQN equal to (or modularly behind) SQN_MS is still a replay."""
    top = (1 << 48) - 1
    usim = make_usim(sqn_ms=3)
    he_av = challenge(sqn=top)  # delta = 2^48 - 4 mod 2^48: far outside Δ
    result = usim.authenticate(he_av.rand, he_av.autn, SNN)
    assert not result.success
    assert result.cause == "SYNCH_FAILURE"


def test_sqn_wraparound_resync_round_trip():
    """AUTS built at the top of the counter still recovers SQN_MS."""
    top = (1 << 48) - 1
    usim = make_usim(sqn_ms=top)
    he_av = challenge(sqn=(top + Usim.SQN_DELTA + 10) % (1 << 48))  # too far
    result = usim.authenticate(he_av.rand, he_av.autn, SNN)
    assert result.cause == "SYNCH_FAILURE"
    recovered = verify_auts(K, OPC, he_av.rand, result.auts)
    assert recovered == top


def test_auts_recovers_sqn_ms_at_home_network():
    usim = make_usim(sqn_ms=77)
    he_av = challenge(sqn=10)  # stale
    result = usim.authenticate(he_av.rand, he_av.autn, SNN)
    recovered = verify_auts(K, OPC, he_av.rand, result.auts)
    assert recovered == 77


def test_forged_auts_rejected():
    assert verify_auts(K, OPC, RAND, bytes(14)) is None
    assert verify_auts(K, OPC, RAND, b"short") is None


def test_input_validation():
    usim = make_usim()
    with pytest.raises(UsimError):
        usim.authenticate(b"short", bytes(16), SNN)
    with pytest.raises(UsimError):
        Usim(supi=SUPI, k=b"short", opc=OPC)


def test_snn_binding():
    """A challenge is only valid for the serving network it was built for:
    RES* differs across SNNs, so a rogue SN cannot reuse vectors."""
    usim = make_usim()
    he_av = challenge(sqn=1)
    other_snn = serving_network_name("901", "70")
    result = usim.authenticate(he_av.rand, he_av.autn, other_snn)
    # MAC passes (AUTN is SNN-independent) but the derived RES* differs.
    assert result.success
    assert result.res_star != he_av.xres_star
