"""OTA testbed: USRP gNB + commercial UE (Fig 11 / Table IV)."""

import pytest

from repro.ran.sdr import SDR_AIRLINK, OtaTestbed, UsrpX310


def test_usrp_defaults_match_table_iv():
    radio = UsrpX310()
    assert radio.frequency_ghz == 3.6192
    assert radio.prbs == 106
    radio.validate()


def test_usrp_validation_rejects_out_of_range():
    with pytest.raises(ValueError):
        UsrpX310(frequency_ghz=28.0).validate()  # mmWave: not an x310 band
    with pytest.raises(ValueError):
        UsrpX310(prbs=100).validate()


def test_ota_success_with_test_plmn(sgx_testbed):
    ota = OtaTestbed(sgx_testbed)
    result = ota.run()
    assert result.detected
    assert result.registration is not None and result.registration.success
    assert result.data_session
    assert result.success


def test_ota_custom_plmn_not_detected(sgx_testbed):
    ota = OtaTestbed(sgx_testbed, plmn="90170")
    result = ota.run()
    assert not result.detected
    assert result.registration is None
    assert not result.success


def test_ota_wrong_os_fails_end_to_end(sgx_testbed):
    ue = sgx_testbed.add_subscriber(commercial=True, os_version="10.5.9.IN21DA")
    result = OtaTestbed(sgx_testbed).run(ue)
    assert result.detected  # cell search works
    assert not result.success  # but no end-to-end connection


def test_ota_pushes_user_plane_traffic(sgx_testbed):
    before = sgx_testbed.upf.packets_forwarded
    result = OtaTestbed(sgx_testbed).run()
    assert result.success
    assert sgx_testbed.upf.packets_forwarded == before + 3


def test_sdr_airlink_slower_than_gnbsim():
    from repro.ran.gnb import AirLinkModel

    assert SDR_AIRLINK.base_ms > AirLinkModel().base_ms
    assert SDR_AIRLINK.rrc_setup_ms > AirLinkModel().rrc_setup_ms
