"""UE NAS behaviour and the commercial-device profile."""

import pytest

from repro.fivegc.messages import (
    AuthenticationFailure,
    AuthenticationRequest,
    AuthenticationResponse,
    SecurityModeCommand,
)
from repro.ran.ue import CommercialUE, ONEPLUS_8_PROFILE, UeError


def test_registration_request_conceals_supi(monolithic_testbed):
    ue = monolithic_testbed.add_subscriber()
    request = ue.build_registration_request()
    assert request.suci["mcc"] == "001"
    assert request.suci["scheme"] == 1
    assert ue.usim.supi.msin not in str(request.suci["schemeOutput"])


def test_fresh_ephemeral_key_per_attempt(monolithic_testbed):
    ue = monolithic_testbed.add_subscriber()
    one = ue.build_registration_request()
    two = ue.build_registration_request()
    assert one.suci["schemeOutput"] != two.suci["schemeOutput"]


def test_ue_answers_valid_challenge(monolithic_testbed):
    testbed = monolithic_testbed
    ue = testbed.add_subscriber()
    challenge = testbed.amf.handle_nas(ue.name, ue.build_registration_request())
    response = ue.handle_nas(challenge)
    assert isinstance(response, AuthenticationResponse)
    assert len(response.res_star) == 16


def test_ue_rejects_forged_challenge(monolithic_testbed):
    ue = monolithic_testbed.add_subscriber()
    forged = AuthenticationRequest(rand=bytes(16), autn=bytes(16))
    response = ue.handle_nas(forged)
    assert isinstance(response, AuthenticationFailure)
    assert response.cause == "MAC_FAILURE"
    assert ue.failure_cause == "MAC_FAILURE"


def test_smc_before_authentication_raises(monolithic_testbed):
    ue = monolithic_testbed.add_subscriber()
    with pytest.raises(UeError, match="SMC before authentication"):
        ue.handle_nas(SecurityModeCommand(mac=bytes(4)))


def test_smc_with_bad_mac_rejected(monolithic_testbed):
    testbed = monolithic_testbed
    ue = testbed.add_subscriber()
    challenge = testbed.amf.handle_nas(ue.name, ue.build_registration_request())
    ue.handle_nas(challenge)
    response = ue.handle_nas(SecurityModeCommand(mac=bytes(4)))
    assert isinstance(response, AuthenticationFailure)


def test_pdu_request_requires_registration(monolithic_testbed):
    ue = monolithic_testbed.add_subscriber()
    with pytest.raises(UeError):
        ue.build_pdu_session_request()


def test_ue_and_amf_agree_on_kamf(monolithic_testbed):
    testbed = monolithic_testbed
    ue = testbed.add_subscriber()
    outcome = testbed.register(ue, establish_session=False)
    assert outcome.success
    session = testbed.amf._sessions[ue.name]
    assert ue.kamf == session.kamf
    assert ue.k_nas_int == session.k_nas_int


class TestCommercialProfile:
    def test_oneplus8_profile(self):
        assert ONEPLUS_8_PROFILE.model == "OnePlus 8"
        assert ONEPLUS_8_PROFILE.required_os_version == "11.0.11.11.IN21DA"
        assert ONEPLUS_8_PROFILE.detectable_plmns == ("00101",)

    def test_detects_test_plmn(self, sgx_testbed):
        ue = sgx_testbed.add_subscriber(commercial=True)
        assert isinstance(ue, CommercialUE)
        assert ue.can_detect_plmn("00101")
        assert not ue.can_detect_plmn("90170")

    def test_os_compatibility(self, sgx_testbed):
        good = sgx_testbed.add_subscriber(commercial=True)
        assert good.os_compatible
        bad = sgx_testbed.add_subscriber(
            commercial=True, os_version="11.0.4.4.IN21DA"
        )
        assert not bad.os_compatible
