"""Table I contracts: byte-exact enclave I/O."""

import pytest

from repro.paka.endpoints import (
    EAMF_CONTRACT,
    EAUSF_CONTRACT,
    EUDM_CONTRACT,
    EnclaveIoContract,
    IoParam,
)


class TestEudmRow:
    def test_inputs_match_paper(self):
        assert [(p.name, p.nbytes) for p in EUDM_CONTRACT.inputs] == [
            ("OPc", 16), ("RAND", 16), ("SQN", 6), ("AMFid", 2),
        ]

    def test_outputs_match_paper(self):
        assert [(p.name, p.nbytes) for p in EUDM_CONTRACT.outputs] == [
            ("RAND", 16), ("XRES*", 16), ("KAUSF", 32), ("AUTN", 16),
        ]

    def test_executed_functions(self):
        assert EUDM_CONTRACT.executes == ("f1", "f2345", "KAUSF", "AUTN")

    def test_byte_totals(self):
        assert EUDM_CONTRACT.input_bytes == 40
        assert EUDM_CONTRACT.output_bytes == 80


class TestEausfRow:
    def test_crypto_param_sizes(self):
        assert EAUSF_CONTRACT.input_size("RAND") == 16
        assert EAUSF_CONTRACT.input_size("XRES*") == 16
        assert EAUSF_CONTRACT.input_size("KAUSF") == 32
        assert EAUSF_CONTRACT.output_size("KSEAF") == 32

    def test_hxres_star_is_spec_sized(self):
        # TS 33.501 A.5: 16 bytes (the paper's table lists 8 — documented
        # deviation, see the module docstring and DESIGN.md §2).
        assert EAUSF_CONTRACT.output_size("HXRES*") == 16

    def test_executed_functions(self):
        assert EAUSF_CONTRACT.executes == ("KSEAF", "HXRES*")


class TestEamfRow:
    def test_io(self):
        assert [(p.name, p.nbytes) for p in EAMF_CONTRACT.inputs] == [("KSEAF", 32)]
        assert [(p.name, p.nbytes) for p in EAMF_CONTRACT.outputs] == [("KAMF", 32)]
        assert EAMF_CONTRACT.total_bytes == 64

    def test_executed_functions(self):
        assert EAMF_CONTRACT.executes == ("KAMF",)


def test_byte_ordering_eudm_heaviest():
    """The paper: eUDM exchanges the most bytes, hence highest latency.

    Compared over the *cryptographic* parameters, as in Table I — the SNN
    is excluded because the paper sizes it at 2 bytes while the spec SNN
    is a ~32-byte routing string (see DESIGN.md §2); including the spec
    SNN would not reflect Table I's accounting.
    """
    def crypto_bytes(contract):
        return sum(
            p.nbytes
            for p in (*contract.inputs, *contract.outputs)
            if p.name != "SNN"
        )

    assert crypto_bytes(EUDM_CONTRACT) > crypto_bytes(EAUSF_CONTRACT)
    assert crypto_bytes(EAUSF_CONTRACT) > crypto_bytes(EAMF_CONTRACT)


def test_unknown_parameter_raises():
    with pytest.raises(KeyError):
        EUDM_CONTRACT.input_size("NOPE")
    with pytest.raises(KeyError):
        EUDM_CONTRACT.output_size("NOPE")


def test_contract_is_immutable():
    with pytest.raises(AttributeError):
        EUDM_CONTRACT.module = "hacked"
    with pytest.raises(AttributeError):
        EUDM_CONTRACT.inputs[0].nbytes = 99
