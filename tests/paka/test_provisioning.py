"""Attested provisioning: keys only flow into verified enclaves."""

import hashlib

import pytest

from repro.paka.provisioning import (
    ModuleProvisioningAgent,
    OperatorProvisioner,
    ProvisioningError,
    ProvisioningOffer,
    SealedKeyDelivery,
)
from repro.sgx.attestation import AttestationService, Quote, QuotingEnclave
from repro.testbed import Testbed, TestbedConfig
from repro.paka.deploy import IsolationMode

SUBSCRIBER_KEYS = {
    "imsi-001010000000001": bytes(range(16)),
    "imsi-001010000000002": bytes(range(16, 32)),
}
OPERATOR_PRIVATE = bytes(range(64, 96))


@pytest.fixture(scope="module")
def setup():
    testbed = Testbed.build(TestbedConfig(isolation=IsolationMode.SGX, seed=131))
    runtime = testbed.paka.module("eudm").runtime
    service = AttestationService()
    qe = QuotingEnclave("platform-0", service)
    agent = ModuleProvisioningAgent(runtime, qe)
    enclave = testbed.paka.enclaves["eudm"]
    provisioner = OperatorProvisioner(
        service,
        expected_mrenclave=enclave.measurement.mrenclave,
        allow_debug=True,  # the paper's build runs debug for stats
    )
    return testbed, agent, provisioner


def test_happy_path_installs_keys(setup):
    testbed, agent, provisioner = setup
    offer = agent.make_offer()
    delivery = provisioner.deliver_keys(offer, SUBSCRIBER_KEYS, OPERATOR_PRIVATE)
    installed = agent.accept_delivery(delivery)
    assert installed == 2
    runtime = testbed.paka.module("eudm").runtime
    for supi, k in SUBSCRIBER_KEYS.items():
        assert runtime.load_secret(f"k:{supi}") == k


def test_keys_are_ciphertext_in_transit(setup):
    _, agent, provisioner = setup
    offer = agent.make_offer()
    delivery = provisioner.deliver_keys(offer, SUBSCRIBER_KEYS, OPERATOR_PRIVATE)
    for k in SUBSCRIBER_KEYS.values():
        assert k not in delivery.ciphertext
        assert k.hex().encode() not in delivery.ciphertext


def test_wrong_measurement_refused(setup):
    _, agent, _ = setup
    service_view = AttestationService()
    QuotingEnclave("platform-0", service_view)  # re-provision the platform key
    strict = OperatorProvisioner(
        service_view, expected_mrenclave=bytes(32), allow_debug=True
    )
    with pytest.raises(ProvisioningError, match="attestation failed"):
        strict.deliver_keys(agent.make_offer(), SUBSCRIBER_KEYS, OPERATOR_PRIVATE)


def test_substituted_public_key_refused(setup):
    """A MITM swapping the offered pubkey breaks the quote binding."""
    _, agent, provisioner = setup
    offer = agent.make_offer()
    mitm = ProvisioningOffer(module_public_key=bytes(32), quote=offer.quote)
    with pytest.raises(ProvisioningError, match="bind"):
        provisioner.deliver_keys(mitm, SUBSCRIBER_KEYS, OPERATOR_PRIVATE)


def test_forged_quote_refused(setup):
    _, agent, provisioner = setup
    offer = agent.make_offer()
    forged = ProvisioningOffer(
        module_public_key=offer.module_public_key,
        quote=Quote(
            mrenclave=offer.quote.mrenclave,
            mrsigner=offer.quote.mrsigner,
            isv_prod_id=0,
            isv_svn=0,
            report_data=offer.quote.report_data,
            platform_id="rogue-platform",
            debug=False,
            signature=bytes(32),
        ),
    )
    with pytest.raises(ProvisioningError, match="attestation failed"):
        provisioner.deliver_keys(forged, SUBSCRIBER_KEYS, OPERATOR_PRIVATE)


def test_tampered_delivery_refused(setup):
    _, agent, provisioner = setup
    offer = agent.make_offer()
    delivery = provisioner.deliver_keys(offer, SUBSCRIBER_KEYS, OPERATOR_PRIVATE)
    tampered = SealedKeyDelivery(
        operator_public_key=delivery.operator_public_key,
        ciphertext=bytes([delivery.ciphertext[0] ^ 1]) + delivery.ciphertext[1:],
        tag=delivery.tag,
    )
    with pytest.raises(ProvisioningError, match="authentication failed"):
        agent.accept_delivery(tampered)


def test_provisioned_keys_enable_registration(setup):
    """Keys delivered over the attested channel work for real AKA."""
    testbed, agent, provisioner = setup
    ue = testbed.add_subscriber()  # UDR + direct module provisioning
    # Re-deliver the same subscriber's key through the attested channel
    # (overwriting the direct provisioning with identical material).
    offer = agent.make_offer()
    delivery = provisioner.deliver_keys(
        offer, {str(ue.usim.supi): ue.usim._k}, OPERATOR_PRIVATE
    )
    agent.accept_delivery(delivery)
    assert testbed.register(ue, establish_session=False).success
