"""P-AKA module servers: endpoint behaviour and crypto equivalence."""

import json

import pytest

from repro.aka import HomeAuthVector, derive_se_av, generate_he_av
from repro.container.engine import ContainerEngine
from repro.crypto.kdf import derive_kamf, serving_network_name
from repro.hw.host import paper_testbed_host
from repro.net.http import HttpClient
from repro.net.sbi import (
    EAMF_DERIVE_KAMF,
    EAUSF_DERIVE_SE_AV,
    EUDM_GENERATE_AV,
    EUDM_PROVISION,
)
from repro.paka.deploy import IsolationMode, PakaDeployment
from repro.runtime.native import NativeRuntime

SNN = serving_network_name("001", "01").decode()
K = bytes.fromhex("465b5ce8b199b49faa5f0a2ee238a6bc")
OPC = bytes.fromhex("cd63cb71954a9f4e48a5994e37a02baf")
RAND = bytes.fromhex("23553cbe9637a89d218ae64dae47bf35")
SQN = (7).to_bytes(6, "big")
SUPI = "imsi-001010000000001"


@pytest.fixture(params=[IsolationMode.CONTAINER, IsolationMode.SGX])
def slice_and_client(request):
    host = paper_testbed_host(seed=31)
    engine = ContainerEngine(host)
    network = engine.create_network("oai-bridge")
    deployment = PakaDeployment(host, engine, network)
    slice_ = deployment.deploy(request.param)
    client = HttpClient("test-vnf", NativeRuntime("test-vnf", host), network)
    return slice_, client


def post(client, module, path, payload):
    connection = client.connect(module.server)
    return client.request(
        connection, "POST", path, body=json.dumps(payload).encode()
    )


def test_eudm_generates_spec_correct_av(slice_and_client):
    slice_, client = slice_and_client
    eudm = slice_.module("eudm")
    eudm.provision_direct(SUPI, K)
    response = post(client, eudm, EUDM_GENERATE_AV, {
        "supi": SUPI, "opc": OPC.hex(), "rand": RAND.hex(),
        "sqn": SQN.hex(), "amfField": "8000", "snn": SNN,
    })
    assert response.ok
    body = response.json()
    expected = generate_he_av(k=K, opc=OPC, rand=RAND, sqn=SQN, snn=SNN.encode())
    assert bytes.fromhex(body["autn"]) == expected.autn
    assert bytes.fromhex(body["xresStar"]) == expected.xres_star
    assert bytes.fromhex(body["kausf"]) == expected.kausf


def test_eudm_http_provisioning(slice_and_client):
    slice_, client = slice_and_client
    eudm = slice_.module("eudm")
    response = post(client, eudm, EUDM_PROVISION, {"supi": SUPI, "k": K.hex()})
    assert response.status == 201
    assert eudm.runtime.load_secret(f"k:{SUPI}") == K


def test_eudm_unprovisioned_supi_404(slice_and_client):
    slice_, client = slice_and_client
    response = post(client, slice_.module("eudm"), EUDM_GENERATE_AV, {
        "supi": "imsi-001019999999999", "opc": OPC.hex(), "rand": RAND.hex(),
        "sqn": SQN.hex(), "amfField": "8000", "snn": SNN,
    })
    assert response.status == 404


def test_eudm_validates_parameter_sizes(slice_and_client):
    slice_, client = slice_and_client
    eudm = slice_.module("eudm")
    eudm.provision_direct(SUPI, K)
    response = post(client, eudm, EUDM_GENERATE_AV, {
        "supi": SUPI, "opc": "00", "rand": RAND.hex(),
        "sqn": SQN.hex(), "amfField": "8000", "snn": SNN,
    })
    assert response.status == 400


def test_eausf_derives_se_av(slice_and_client):
    slice_, client = slice_and_client
    he_av = generate_he_av(k=K, opc=OPC, rand=RAND, sqn=SQN, snn=SNN.encode())
    response = post(client, slice_.module("eausf"), EAUSF_DERIVE_SE_AV, {
        "rand": he_av.rand.hex(), "autn": he_av.autn.hex(),
        "xresStar": he_av.xres_star.hex(), "kausf": he_av.kausf.hex(), "snn": SNN,
    })
    assert response.ok
    expected_se, expected_kseaf = derive_se_av(he_av, SNN.encode())
    body = response.json()
    assert bytes.fromhex(body["hxresStar"]) == expected_se.hxres_star
    assert bytes.fromhex(body["kseaf"]) == expected_kseaf


def test_eamf_derives_kamf(slice_and_client):
    slice_, client = slice_and_client
    kseaf = bytes(range(32))
    response = post(client, slice_.module("eamf"), EAMF_DERIVE_KAMF, {
        "kseaf": kseaf.hex(), "supi": SUPI, "abba": "0000",
    })
    assert response.ok
    assert bytes.fromhex(response.json()["kamf"]) == derive_kamf(kseaf, SUPI)


def test_module_keeps_derived_keys_in_memory(slice_and_client):
    """The freshly derived keys live in module memory — the asset the
    isolation protects (plaintext in container, ciphertext in SGX)."""
    slice_, client = slice_and_client
    kseaf = bytes(range(32))
    post(client, slice_.module("eamf"), EAMF_DERIVE_KAMF, {
        "kseaf": kseaf.hex(), "supi": SUPI, "abba": "0000",
    })
    kamf = derive_kamf(kseaf, SUPI)
    assert slice_.module("eamf").runtime.load_secret("last_kamf") == kamf
    view = slice_.module("eamf").runtime.memory_view("container-engine")
    if slice_.shielded:
        assert kamf.hex().encode() not in view
    else:
        assert kamf.hex().encode() in view


def test_provision_direct_validates_key(slice_and_client):
    slice_, _ = slice_and_client
    with pytest.raises(ValueError):
        slice_.module("eudm").provision_direct(SUPI, b"short")
