"""P-AKA deployment pipeline: modes, policy, lifecycle."""

import pytest

from repro.container.engine import ContainerEngine
from repro.hw.host import paper_testbed_host
from repro.paka.deploy import (
    DeploymentPolicyError,
    IsolationMode,
    PakaDeployment,
    enforce_colocation,
)


@pytest.fixture
def deployment():
    host = paper_testbed_host(seed=41)
    engine = ContainerEngine(host)
    network = engine.create_network("oai-bridge")
    return PakaDeployment(host, engine, network)


def test_container_mode_is_unshielded(deployment):
    slice_ = deployment.deploy(IsolationMode.CONTAINER)
    assert not slice_.shielded
    assert set(slice_.modules) == {"eudm", "eausf", "eamf"}
    assert slice_.enclaves == {}
    for module in slice_.modules.values():
        assert not module.runtime.shielded


def test_sgx_mode_loads_enclaves(deployment):
    slice_ = deployment.deploy(IsolationMode.SGX)
    assert slice_.shielded
    assert set(slice_.enclaves) == {"eudm", "eausf", "eamf"}
    for module in slice_.modules.values():
        assert module.runtime.shielded
    for name, span in slice_.load_spans.items():
        assert 0.80 < span.minutes < 1.10, f"{name} load time out of band"


def test_load_time_ordering_follows_image_size(deployment):
    slice_ = deployment.deploy(IsolationMode.SGX)
    spans = slice_.load_spans
    assert spans["eudm"].ns > spans["eausf"].ns > spans["eamf"].ns


def test_selective_module_deployment(deployment):
    slice_ = deployment.deploy(IsolationMode.SGX, module_names=["eudm"])
    assert set(slice_.modules) == {"eudm"}


def test_size_overrides_apply_per_module(deployment):
    slice_ = deployment.deploy(IsolationMode.SGX, size_overrides={"eudm": "1G"})
    assert slice_.enclaves["eudm"].build.enclave_size_bytes == 1024**3
    assert slice_.enclaves["eausf"].build.enclave_size_bytes == 512 * 1024**2


def test_enclaves_use_paper_manifest_defaults(deployment):
    slice_ = deployment.deploy(IsolationMode.SGX)
    build = slice_.enclaves["eudm"].build
    assert build.enclave_size_bytes == 512 * 1024**2
    assert build.max_threads == 4
    assert build.preheat
    assert build.stats_enabled
    assert build.sigstruct is not None  # GSC-signed


def test_unknown_module_rejected(deployment):
    with pytest.raises(KeyError):
        deployment.deploy(IsolationMode.SGX, module_names=["ghost"])


def test_module_accessor_error(deployment):
    slice_ = deployment.deploy(IsolationMode.CONTAINER, module_names=["eudm"])
    with pytest.raises(KeyError, match="eamf"):
        slice_.module("eamf")


def test_teardown_releases_everything(deployment):
    slice_ = deployment.deploy(IsolationMode.SGX)
    slice_.teardown(deployment.engine)
    assert slice_.modules == {}
    assert deployment.engine.ps() == []
    assert deployment.epc_manager.resident_pages == 0


def test_redeploy_after_teardown(deployment):
    first = deployment.deploy(IsolationMode.SGX, module_names=["eudm"])
    first.teardown(deployment.engine)
    second = deployment.deploy(IsolationMode.SGX, module_names=["eudm"])
    assert second.module("eudm").runtime.shielded


def test_colocation_policy():
    host_a = paper_testbed_host("host-a")
    host_b = paper_testbed_host("host-b")
    enforce_colocation(host_a, host_a)  # same host: fine
    with pytest.raises(DeploymentPolicyError, match="long-term keys"):
        enforce_colocation(host_a, host_b)
