"""Fig 5 flow conformance."""

import pytest

from repro.paka.deploy import IsolationMode
from repro.paka.flow import (
    FIGURE5_SEQUENCE,
    format_flow,
    record_registration_flow,
    verify_figure5,
)
from repro.testbed import Testbed, TestbedConfig


@pytest.mark.parametrize("isolation", [IsolationMode.CONTAINER, IsolationMode.SGX])
def test_offloaded_flow_matches_figure5(isolation):
    testbed = Testbed.build(TestbedConfig(isolation=isolation, seed=181))
    verdict = verify_figure5(testbed)
    assert verdict.conforms, verdict.violations


def test_flow_is_stable_across_registrations(sgx_testbed):
    first = verify_figure5(sgx_testbed)
    second = verify_figure5(sgx_testbed)
    assert first.conforms and second.conforms
    # Steady state has the same shape every time.
    assert [x.path for x in first.observed] == [x.path for x in second.observed]


def test_monolithic_flow_has_no_module_exchanges():
    testbed = Testbed.build(TestbedConfig(isolation=None, seed=182))
    observed = record_registration_flow(testbed)
    paths = [x.path for x in observed]
    assert not any("paka" in path for path in paths)
    verdict = verify_figure5(testbed)
    assert not verdict.conforms  # the offload exchanges are missing


def test_resync_flow_adds_verify_auts():
    testbed = Testbed.build(TestbedConfig(isolation=IsolationMode.SGX, seed=183))
    events = testbed.host.events
    before = len(events.select("sbi.request"))
    ue = testbed.add_subscriber()
    ue.usim.sqn_ms = 1 << 34
    assert testbed.register(ue, establish_session=False).success
    paths = [
        str(e.detail["path"]) for e in events.select("sbi.request")[before:]
    ]
    assert "/eudm-paka/v1/verify-auts" in paths
    # Two challenges were generated: the stale one and the resynced one.
    assert paths.count("/eudm-paka/v1/generate-av") == 2


def test_figure5_sequence_covers_all_three_modules():
    dsts = {path for _, path in FIGURE5_SEQUENCE}
    assert any("eudm" in p for p in dsts)
    assert any("eausf" in p for p in dsts)
    assert any("eamf" in p for p in dsts)


def test_format_flow_renders_ladder(sgx_testbed):
    verdict = verify_figure5(sgx_testbed)
    text = format_flow(verdict.observed, sgx_testbed)
    assert "udm    -> eudm" in text.replace("  ", " ").replace("  ", " ") or "udm -> eudm" in " ".join(text.split())
    assert "/eamf-paka/v1/derive-kamf" in text
