"""Secure-VM backend: boot, costs, TCB semantics, deployment."""

import json

import pytest

from repro.hw.host import paper_testbed_host
from repro.paka.deploy import IsolationMode
from repro.securevm.machine import SecureVm, SecureVmSpec
from repro.securevm.runtime import GUEST_KERNEL_ACTOR, SecureVmRuntime
from repro.testbed import Testbed, TestbedConfig


@pytest.fixture
def vm(host):
    machine = SecureVm(host, SecureVmSpec(name="eudm-vm"))
    machine.boot()
    return machine


@pytest.fixture
def runtime(host, vm):
    return SecureVmRuntime("eudm", host, vm)


class TestMachine:
    def test_boot_takes_seconds_not_a_minute(self, vm):
        assert 5.0 < vm.boot_span.seconds < 20.0

    def test_boot_produces_launch_measurement(self, vm):
        assert vm.launch_measurement is not None
        assert len(vm.launch_measurement) == 32

    def test_double_boot_rejected(self, vm):
        with pytest.raises(RuntimeError):
            vm.boot()

    def test_tcb_includes_guest_os(self):
        assert "guest-kernel" in SecureVm.TCB_COMPONENTS
        assert "guest-userspace" in SecureVm.TCB_COMPONENTS

    def test_runtime_requires_booted_vm(self, host):
        cold = SecureVm(host, SecureVmSpec(name="cold"))
        with pytest.raises(RuntimeError):
            SecureVmRuntime("x", host, cold)


class TestRuntime:
    def test_shielded_without_sgx_stats(self, runtime):
        assert runtime.shielded
        assert runtime.sgx_stats is None

    def test_io_syscalls_cost_vm_exits(self, runtime, host):
        t0 = host.clock.now_ns
        runtime.syscall("clock_gettime")
        in_guest = host.clock.now_ns - t0
        t0 = host.clock.now_ns
        runtime.syscall("sendmsg", bytes_out=256)
        with_exit = host.clock.now_ns - t0
        assert with_exit > in_guest + 1_500  # ~5.2k extra cycles

    def test_syscalls_cheaper_than_sgx_ocalls(self, host):
        """The headline §IV-C point: no enclave transition per syscall."""
        from tests.gramine.test_libos import make_runtime

        sgx = make_runtime(seed=31)
        t0 = sgx.host.clock.now_ns
        for _ in range(50):
            sgx.syscall("recvmsg", bytes_in=256)
        sgx_cost = sgx.host.clock.now_ns - t0

        vm = SecureVm(host, SecureVmSpec(name="m"))
        vm.boot()
        runtime = SecureVmRuntime("m", host, vm)
        t0 = host.clock.now_ns
        for _ in range(50):
            runtime.syscall("recvmsg", bytes_in=256)
        vm_cost = host.clock.now_ns - t0
        # Virtio I/O still pays VM exits, so the gap is large but not
        # unbounded: comfortably under two-thirds of the OCALL cost.
        assert vm_cost < sgx_cost * 0.65

    def test_host_side_view_is_ciphertext(self, runtime):
        runtime.store_secret("kausf", bytes(range(32)))
        for actor in ("hypervisor", "container-engine", "host-root"):
            view = runtime.memory_view(actor)
            assert bytes(range(32)).hex().encode() not in view

    def test_guest_kernel_exploit_reads_plaintext(self, runtime):
        """The TCB cost: the kernel is *inside* the trust domain."""
        runtime.store_secret("kausf", bytes(range(32)))
        view = json.loads(runtime.memory_view(GUEST_KERNEL_ACTOR).decode())
        assert view["kausf"] == bytes(range(32)).hex()

    def test_shutdown_destroys_vm(self, runtime):
        runtime.shutdown()
        assert runtime.vm.destroyed
        with pytest.raises(RuntimeError):
            runtime.compute(1)


class TestDeployment:
    def test_full_registration_through_secure_vm(self):
        testbed = Testbed.build(
            TestbedConfig(isolation=IsolationMode.SECURE_VM, seed=111)
        )
        assert testbed.paka.shielded
        assert set(testbed.paka.vms) == {"eudm", "eausf", "eamf"}
        ue = testbed.add_subscriber()
        outcome = testbed.register(ue)
        assert outcome.success
        assert ue.ue_address is not None

    def test_deploys_faster_than_gsc(self):
        vm_testbed = Testbed.build(
            TestbedConfig(isolation=IsolationMode.SECURE_VM, seed=112)
        )
        sgx_testbed = Testbed.build(TestbedConfig(isolation=IsolationMode.SGX, seed=112))
        vm_load = max(s.seconds for s in vm_testbed.paka.load_spans.values())
        sgx_load = min(s.seconds for s in sgx_testbed.paka.load_spans.values())
        assert vm_load < sgx_load / 3

    def test_latency_between_native_and_sgx(self):
        """Stable L_T ordering: container < secure VM < SGX."""
        from statistics import mean

        from repro.experiments.harness import MODULE_AKA_PATH

        def stable_lt(isolation, seed=113):
            testbed = Testbed.build(TestbedConfig(isolation=isolation, seed=seed))
            for _ in range(6):
                ue = testbed.add_subscriber()
                assert testbed.register(ue, establish_session=False).success
            server = testbed.paka.modules["eudm"].server
            return mean(server.lt_us_by_path[MODULE_AKA_PATH["eudm"]][2:])

        container = stable_lt(IsolationMode.CONTAINER)
        secure_vm = stable_lt(IsolationMode.SECURE_VM)
        sgx = stable_lt(IsolationMode.SGX)
        assert container < secure_vm < sgx


class TestTcbAttack:
    def test_kernel_exploit_matrix(self):
        """Succeeds on container and secure VM, fails on SGX."""
        from repro.security.attacks import GuestKernelExploitAttack
        from repro.security.threat import Attacker

        outcomes = {}
        for isolation in (
            IsolationMode.CONTAINER,
            IsolationMode.SECURE_VM,
            IsolationMode.SGX,
        ):
            testbed = Testbed.build(TestbedConfig(isolation=isolation, seed=114))
            ue = testbed.add_subscriber()
            assert testbed.register(ue, establish_session=False).success
            attacker = Attacker("mallory", host=testbed.host, engine=testbed.engine)
            assert attacker.full_chain()
            result = GuestKernelExploitAttack().run(attacker, testbed)
            outcomes[isolation] = result.succeeded
        assert outcomes[IsolationMode.CONTAINER] is True
        assert outcomes[IsolationMode.SECURE_VM] is True
        assert outcomes[IsolationMode.SGX] is False
