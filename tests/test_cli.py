"""CLI surface: argument handling and experiment dispatch."""

import pytest

from repro.cli import _EXPERIMENTS, build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in _EXPERIMENTS:
        assert name in out


def test_register_monolithic(capsys):
    assert main(["register", "--isolation", "monolithic", "--count", "2"]) == 0
    out = capsys.readouterr().out
    assert "2/2 registrations succeeded" in out


def test_register_sgx(capsys):
    assert main(["register", "--isolation", "sgx", "--count", "1"]) == 0
    assert "registered as 5g-guti" in capsys.readouterr().out


def test_table1_experiment(capsys):
    assert main(["table1"]) == 0
    assert "E9/TableI" in capsys.readouterr().out


def test_fig11_experiment(capsys):
    assert main(["fig11"]) == 0
    out = capsys.readouterr().out
    assert "OTA" in out and "[OK ]" in out


@pytest.mark.slow
def test_setup_experiment_small(capsys):
    assert main(["setup", "--registrations", "10"]) == 0
    assert "sgx_share_percent" in capsys.readouterr().out


def test_metrics_selftest(capsys):
    assert main(["metrics", "--selftest"]) == 0
    assert "metrics selftest OK" in capsys.readouterr().out


def test_trace_command_monolithic(capsys):
    assert main(["trace", "--isolation", "monolithic", "--warmup", "0"]) == 0
    out = capsys.readouterr().out
    assert "registration [registration]" in out
    assert "[sbi.request]" in out


def test_trace_command_json(capsys):
    import json

    assert main(["trace", "--isolation", "monolithic", "--warmup", "0", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["outcome"]["success"] is True
    assert payload["spans"]["kind"] == "registration"


def test_metrics_command_prom(capsys):
    assert main(["metrics", "--isolation", "monolithic", "--registrations", "1",
                 "--format", "prom"]) == 0
    out = capsys.readouterr().out
    assert "# TYPE http_requests_served_total counter" in out
    assert 'gnb_registrations_succeeded_total{gnb="gnb-0"} 1' in out


def test_metrics_command_json(capsys):
    import json

    assert main(["metrics", "--isolation", "monolithic", "--registrations", "1"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["counters"] and payload["histograms"]


def test_trace_and_metrics_parsers():
    parser = build_parser()
    args = parser.parse_args(["trace", "--seed", "3", "--json"])
    assert args.command == "trace" and args.seed == 3 and args.json
    args = parser.parse_args(["metrics", "--format", "prom", "--selftest"])
    assert args.command == "metrics" and args.format == "prom" and args.selftest


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["not-a-command"])


def test_every_experiment_has_a_parser():
    parser = build_parser()
    for name in _EXPERIMENTS:
        args = parser.parse_args([name])
        assert args.command == name
        assert args.registrations > 0
