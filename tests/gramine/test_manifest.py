"""Gramine manifest parsing and validation."""

import pytest

from repro.gramine.manifest import GramineManifest, ManifestError, format_size, parse_size


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("512M", 512 * 1024**2),
            ("8G", 8 * 1024**3),
            ("64K", 64 * 1024),
            ("4096", 4096),
            (" 1g ", 1024**3),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("text", ["", "abc", "-1G", "0M", "1.5G"])
    def test_invalid(self, text):
        with pytest.raises(ManifestError):
            parse_size(text)

    def test_format_size_roundtrip(self):
        assert format_size(512 * 1024**2) == "512M"
        assert format_size(8 * 1024**3) == "8G"
        assert parse_size(format_size(12345 * 1024)) == 12345 * 1024


class TestManifest:
    def paper_manifest(self, **overrides):
        defaults = dict(
            entrypoint="/opt/oai/eudm-aka",
            enclave_size="512M",
            max_threads=4,
            preheat_enclave=True,
            debug=True,
            enable_stats=True,
        )
        defaults.update(overrides)
        return GramineManifest(**defaults)

    def test_paper_settings_valid(self):
        manifest = self.paper_manifest()
        assert manifest.enclave_size_bytes == 512 * 1024**2
        assert manifest.max_threads == 4
        assert manifest.preheat_enclave

    def test_entrypoint_required(self):
        with pytest.raises(ManifestError):
            self.paper_manifest(entrypoint="")

    def test_threads_must_be_positive(self):
        with pytest.raises(ManifestError):
            self.paper_manifest(max_threads=0)

    def test_bad_size_rejected(self):
        with pytest.raises(ManifestError):
            self.paper_manifest(enclave_size="lots")

    def test_trusted_allowed_overlap_rejected(self):
        with pytest.raises(ManifestError):
            self.paper_manifest(
                trusted_files=["/etc/app.conf"], allowed_files=["/etc/app.conf"]
            )

    def test_json_roundtrip(self):
        manifest = self.paper_manifest(
            trusted_files=["/opt/oai/eudm-aka", "/usr/lib/libssl.so.1.1"],
            allowed_files=["/tmp/scratch"],
            env={"LOG_LEVEL": "info"},
        )
        restored = GramineManifest.from_json(manifest.to_json())
        assert restored == manifest

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ManifestError):
            GramineManifest.from_json("{not json")

    def test_from_dict_requires_entrypoint(self):
        with pytest.raises(ManifestError):
            GramineManifest.from_dict({"sgx": {}})
