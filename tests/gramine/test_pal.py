"""Platform Adaptation Layer: launch-control gating."""

import pytest

from repro.container.image import oai_base_image
from repro.gramine.gsc import build_gsc_image, sign_gsc_image
from repro.gramine.manifest import GramineManifest
from repro.gramine.pal import PlatformAdaptationLayer
from repro.hw.host import paper_testbed_host
from repro.sgx.aesm import AesmDaemon, LaunchDeniedError
from repro.sgx.epc import EpcManager


@pytest.fixture
def pal():
    host = paper_testbed_host(seed=21)
    epc = EpcManager(host.total_epc_bytes, host.cpu, host.rng)
    return PlatformAdaptationLayer(host, epc, AesmDaemon("plat"))


def gsc_build(signed=True, debug=False):
    image, _ = oai_base_image("eudm-aka", bulk_mb=30)
    manifest = GramineManifest(
        entrypoint=image.entrypoint, enclave_size="512M", max_threads=4, debug=debug
    )
    gsc = build_gsc_image(image, manifest)
    if signed:
        gsc = sign_gsc_image(gsc, b"pal-test-key")
    return gsc.build_info


def test_signed_enclave_loads(pal):
    enclave, span = pal.load_enclave(gsc_build(signed=True))
    assert enclave.initialized
    assert span.seconds > 0
    assert pal.aesmd.tokens_issued == 1


def test_unsigned_production_enclave_denied(pal):
    with pytest.raises(LaunchDeniedError):
        pal.load_enclave(gsc_build(signed=False))


def test_unsigned_debug_enclave_allowed(pal):
    enclave, _ = pal.load_enclave(gsc_build(signed=False, debug=True))
    assert enclave.initialized
    assert enclave.build.debug


def test_signer_whitelist_blocks_unknown_vendor(pal):
    import hashlib

    pal.aesmd.allow_signer(hashlib.sha256(b"approved-vendor").digest())
    with pytest.raises(LaunchDeniedError):
        pal.load_enclave(gsc_build(signed=True))
