"""GSC image transformation and signing."""

import pytest

from repro.container.image import FileEntry, ImageLayer, oai_base_image
from repro.gramine.gsc import EXCLUDED_PATHS, GscConfig, build_gsc_image, sign_gsc_image
from repro.gramine.manifest import GramineManifest

KEY = b"operator-key-for-gsc-tests"


@pytest.fixture
def image():
    img, _ = oai_base_image("eudm-aka", bulk_mb=200)
    return img


@pytest.fixture
def manifest():
    return GramineManifest(
        entrypoint="/opt/oai/eudm-aka",
        enclave_size="512M",
        max_threads=4,
        preheat_enclave=True,
    )


def test_build_appends_gramine_layer(image, manifest):
    gsc = build_gsc_image(image, manifest)
    assert any("gramine" in layer.name for layer in gsc.image.layers)
    assert gsc.image.size_bytes > image.size_bytes


def test_build_info_mirrors_manifest(image, manifest):
    gsc = build_gsc_image(image, manifest)
    info = gsc.build_info
    assert info.enclave_size_bytes == 512 * 1024**2
    assert info.max_threads == 4
    assert info.preheat
    assert info.heap_bytes < info.enclave_size_bytes


def test_trusted_files_cover_rootfs_minus_exclusions(image, manifest):
    excluded_file = FileEntry("/proc/cpuinfo", 1000)
    image.layers.append(ImageLayer("proc", files=[excluded_file]))
    gsc = build_gsc_image(image, manifest)
    assert "/proc/cpuinfo" not in gsc.manifest.trusted_files
    assert "/opt/oai/eudm-aka" in gsc.manifest.trusted_files
    # The excluded file's bytes don't count toward verification work.
    assert gsc.build_info.trusted_files_bytes == gsc.image.size_bytes - 1000


def test_excluded_paths_match_paper():
    assert set(EXCLUDED_PATHS) == {"/boot", "/dev", "/etc/mtab", "/proc", "/sys"}


def test_unsigned_build_has_no_sigstruct(image, manifest):
    gsc = build_gsc_image(image, manifest)
    assert not gsc.signed
    assert gsc.build_info.sigstruct is None


def test_sign_attaches_valid_sigstruct(image, manifest):
    gsc = sign_gsc_image(build_gsc_image(image, manifest), KEY)
    assert gsc.signed
    assert gsc.build_info.sigstruct.verify(KEY)


def test_different_manifest_changes_measurement(image, manifest):
    one = sign_gsc_image(build_gsc_image(image, manifest), KEY)
    other_manifest = GramineManifest(
        entrypoint="/opt/oai/eudm-aka", enclave_size="1G", max_threads=4
    )
    two = sign_gsc_image(build_gsc_image(image, other_manifest), KEY)
    assert one.build_info.sigstruct.mrenclave != two.build_info.sigstruct.mrenclave


def test_different_image_changes_measurement(manifest):
    a, _ = oai_base_image("eudm-aka", bulk_mb=100)
    b, _ = oai_base_image("eausf-aka", bulk_mb=100)
    one = sign_gsc_image(build_gsc_image(a, manifest), KEY)
    two = sign_gsc_image(build_gsc_image(b, manifest), KEY)
    assert one.build_info.sigstruct.mrenclave != two.build_info.sigstruct.mrenclave


def test_config_defaults_are_paper_versions():
    config = GscConfig()
    assert config.gramine_version == "v1.4-1-ga60a499"
    assert config.sgx_driver == "in-kernel"
