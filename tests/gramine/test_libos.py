"""Gramine LibOS: thread requirements, syscall→OCALL, warmup, exitless."""

import pytest

from repro.container.image import oai_base_image
from repro.gramine.gsc import build_gsc_image, sign_gsc_image
from repro.gramine.libos import HELPER_THREADS, GramineEnclaveRuntime, GramineError
from repro.gramine.manifest import GramineManifest
from repro.gramine.pal import PlatformAdaptationLayer
from repro.hw.host import paper_testbed_host
from repro.sgx.aesm import AesmDaemon
from repro.sgx.epc import EpcManager

KEY = b"libos-test-signing-key"


def make_runtime(max_threads=4, enclave_size="512M", exitless=False, seed=5,
                 start=True, bulk_mb=50):
    host = paper_testbed_host(seed=seed)
    epc = EpcManager(host.total_epc_bytes, host.cpu, host.rng)
    pal = PlatformAdaptationLayer(host, epc, AesmDaemon("plat"))
    image, _ = oai_base_image("eudm-aka", bulk_mb=bulk_mb)
    manifest = GramineManifest(
        entrypoint=image.entrypoint,
        enclave_size=enclave_size,
        max_threads=max_threads,
        preheat_enclave=True,
        enable_stats=True,
    )
    gsc = sign_gsc_image(build_gsc_image(image, manifest), KEY)
    enclave, _ = pal.load_enclave(gsc.build_info)
    runtime = GramineEnclaveRuntime(
        "test-module", host, enclave, gsc.manifest, exitless=exitless
    )
    if start:
        runtime.start()
    return runtime


def test_helper_thread_count_is_three():
    assert HELPER_THREADS == 3


def test_start_requires_four_threads():
    runtime = make_runtime(max_threads=3, start=False)
    with pytest.raises(GramineError, match="helper threads"):
        runtime.start()


def test_start_runs_init_ocall_burst():
    runtime = make_runtime()
    # "Several hundred OCALLs" during Gramine+glibc init (paper §V-B1).
    init_ocalls = runtime.enclave.stats.ocalls_by_syscall
    total = sum(
        count for name, count in init_ocalls.items() if name != "pread64"
    )  # pread64 is the trusted-file verification at load
    assert 300 <= total <= 800


def test_double_start_rejected():
    runtime = make_runtime()
    with pytest.raises(GramineError):
        runtime.start()


def test_syscall_becomes_ocall():
    runtime = make_runtime()
    before = runtime.enclave.stats.snapshot()
    runtime.syscall("epoll_wait")
    delta = runtime.enclave.stats.delta(before)
    assert delta.ocalls == 1
    assert delta.eenters == 1 and delta.eexits == 1


def test_syscall_before_start_rejected():
    runtime = make_runtime(start=False)
    with pytest.raises(GramineError):
        runtime.syscall("read")


def test_exitless_mode_avoids_transitions():
    runtime = make_runtime(exitless=True)
    before = runtime.enclave.stats.snapshot()
    runtime.syscall("epoll_wait")
    delta = runtime.enclave.stats.delta(before)
    assert delta.ocalls == 1  # logically still an OCALL
    assert delta.eenters == 0 and delta.eexits == 0


def test_exitless_syscalls_are_cheaper():
    transitioning = make_runtime(seed=6)
    exitless = make_runtime(seed=6, exitless=True)

    t0 = transitioning.host.clock.now_ns
    for _ in range(50):
        transitioning.syscall("epoll_wait")
    cost_transitioning = transitioning.host.clock.now_ns - t0

    t0 = exitless.host.clock.now_ns
    for _ in range(50):
        exitless.syscall("epoll_wait")
    cost_exitless = exitless.host.clock.now_ns - t0
    assert cost_exitless < cost_transitioning


def test_secrets_live_in_enclave():
    runtime = make_runtime()
    runtime.store_secret("k", b"\xaa" * 16)
    assert runtime.load_secret("k") == b"\xaa" * 16
    assert b"\xaa" * 16 not in runtime.memory_view("container-engine")


def test_shielded_flag_and_stats():
    runtime = make_runtime()
    assert runtime.shielded
    assert runtime.sgx_stats is runtime.enclave.stats


def test_lazy_warmup_runs_once():
    runtime = make_runtime()
    assert runtime.lazy_warmup() is True
    assert runtime.lazy_warmup() is False


def test_lazy_warmup_costs_milliseconds():
    runtime = make_runtime()
    t0 = runtime.host.clock.now_ns
    runtime.lazy_warmup()
    elapsed_ms = (runtime.host.clock.now_ns - t0) / 1e6
    assert 5.0 < elapsed_ms < 40.0


def test_shutdown_destroys_enclave():
    runtime = make_runtime()
    runtime.shutdown()
    assert runtime.enclave.destroyed
    with pytest.raises(GramineError):
        runtime.syscall("read")


def test_idle_books_aex_on_enclave():
    runtime = make_runtime()
    before = runtime.enclave.stats.snapshot()
    runtime.idle(5.0)
    assert runtime.enclave.stats.delta(before).aexs > 0


def test_degraded_flag_below_working_set():
    healthy = make_runtime(seed=7)
    assert not healthy.degraded
    degraded = make_runtime(seed=7, enclave_size="256M")
    assert degraded.degraded


def test_degraded_runtime_thrashes():
    degraded = make_runtime(seed=8, enclave_size="256M")
    before = degraded.enclave.stats.snapshot()
    for _ in range(200):
        degraded.syscall("epoll_wait")
    delta = degraded.enclave.stats.delta(before)
    assert delta.page_evictions > 20  # evict/reload churn under thrash
