"""AMF admission control: buckets, guards, overload breaker, NAS wiring."""

from repro.fivegc.admission import (
    AdmissionConfig,
    AdmissionController,
    KIND_INITIAL,
    KIND_RETURNING,
    OverloadBreaker,
    TokenBucket,
)
from repro.fivegc.messages import AuthenticationReject, AuthenticationRequest

NS = 1_000_000_000


def test_token_bucket_refills_on_the_simulated_clock():
    bucket = TokenBucket(rate_per_s=2.0, burst=2.0)
    assert bucket.try_take(0)
    assert bucket.try_take(0)
    assert not bucket.try_take(0)  # burst exhausted
    assert not bucket.try_take(NS // 4)  # 0.5 tokens accrued
    assert bucket.try_take(NS // 2)  # 1 token accrued at +0.5 s
    assert bucket.taken == 3 and bucket.denied == 2


def test_token_bucket_caps_at_burst():
    bucket = TokenBucket(rate_per_s=100.0, burst=3.0)
    for _ in range(3):
        assert bucket.try_take(10 * NS)
    assert not bucket.try_take(10 * NS)


def test_overload_breaker_trips_and_cools_down():
    breaker = OverloadBreaker(window_s=1.0, max_arrivals=3, cooldown_s=2.0)
    for tick in range(3):
        assert not breaker.observe(tick)
    assert breaker.observe(3)  # 4th arrival inside the window trips it
    assert breaker.open and breaker.times_opened == 1
    assert breaker.observe(NS)  # still cooling down
    # Past the cooldown it closes and measures afresh.
    assert not breaker.observe(2 * NS + 4)
    assert not breaker.open
    # A sustained storm re-trips (counted).
    for tick in range(4):
        breaker.observe(2 * NS + 5 + tick)
    assert breaker.open and breaker.times_opened == 2


def test_breaker_sheds_initial_but_not_returning():
    controller = AdmissionController(
        AdmissionConfig(breaker_max_per_s=3.0, breaker_cooldown_s=2.0)
    )
    for tick in range(4):
        controller.check(tick, source=f"ue-{tick}")
    assert controller.check(5, source="atk", kind=KIND_INITIAL) is not None
    assert controller.check(6, source="sub", kind=KIND_RETURNING) is None
    # Two initial sheds: the arrival that tripped the breaker and "atk".
    assert controller.shed_breaker == 2


def test_per_gnb_guard_clamps_hostile_cells_only():
    controller = AdmissionController(
        AdmissionConfig(gnb_rate_per_s=1.0, gnb_burst=2.0)
    )
    for index in range(4):
        controller.check(0, source=f"a{index}", gnb="gnb-atk-0")
    assert controller.shed_gnb == 2  # burst of 2, then clamped
    # A different cell has its own bucket.
    assert controller.check(0, source="legit", gnb="gnb-0") is None


def test_per_source_bucket_and_bounded_tracking_state():
    controller = AdmissionController(
        AdmissionConfig(
            per_source_rate_per_s=0.5, per_source_burst=1.0, per_source_cap=2
        )
    )
    assert controller.check(0, source="spoof-0") is None
    assert controller.check(0, source="spoof-0") is not None  # clamped
    controller.check(0, source="spoof-1")
    controller.check(0, source="spoof-2")  # evicts spoof-0 (FIFO, cap 2)
    assert set(controller.per_source) == {"spoof-1", "spoof-2"}
    # The evicted identity starts a fresh bucket (full burst again).
    assert controller.check(0, source="spoof-0") is None


def test_global_bucket_caps_total_admissions():
    controller = AdmissionController(
        AdmissionConfig(bucket_rate_per_s=1.0, bucket_burst=2.0)
    )
    outcomes = [controller.check(0, source=f"u{i}") for i in range(4)]
    assert outcomes[:2] == [None, None]
    assert all(denial is not None for denial in outcomes[2:])
    assert controller.admitted == 2 and controller.shed_bucket == 2


def test_armed_amf_sheds_before_any_session_state(monolithic_testbed):
    """A denied registration costs one cheap reject: no _UeSession, no
    SBI call, no enclave work."""
    testbed = monolithic_testbed
    testbed.amf.admission = AdmissionController(
        AdmissionConfig(bucket_rate_per_s=1.0, bucket_burst=1.0)
    )
    first = testbed.add_subscriber()
    second = testbed.add_subscriber()
    accepted = testbed.amf.handle_nas(
        first.name, first.build_registration_request(), via="gnb-0"
    )
    assert isinstance(accepted, AuthenticationRequest)
    shed = testbed.amf.handle_nas(
        second.name, second.build_registration_request(), via="gnb-0"
    )
    assert isinstance(shed, AuthenticationReject)
    assert shed.cause.startswith("congestion:")
    assert testbed.amf.session_state(second.name) == "none"
    assert testbed.amf.admission.shed_total == 1


def test_returning_guti_arrival_classified_as_returning(monolithic_testbed):
    """GUTI re-registrations pass an open breaker (TS 24.501 shape)."""
    testbed = monolithic_testbed
    ue = testbed.add_subscriber()
    assert testbed.register(ue, establish_session=False).success

    controller = AdmissionController(
        AdmissionConfig(breaker_max_per_s=1.0, breaker_window_s=1.0)
    )
    testbed.amf.admission = controller
    # Trip the breaker with a burst of fresh attaches.
    storm = [testbed.add_subscriber() for _ in range(3)]
    for attacker in storm:
        testbed.amf.handle_nas(
            attacker.name, attacker.build_registration_request(), via="gnb-0"
        )
    assert controller.breaker.open
    downlink = testbed.amf.handle_nas(
        ue.name, ue.build_guti_registration_request(), via="gnb-0"
    )
    assert isinstance(downlink, AuthenticationRequest)  # admitted
    assert controller.shed_breaker >= 1  # the storm was shed


def test_pending_session_cap_evicts_oldest(monolithic_testbed):
    testbed = monolithic_testbed
    testbed.amf.max_pending_sessions = 2
    ues = [testbed.add_subscriber() for _ in range(3)]
    for ue in ues:
        testbed.amf.handle_nas(ue.name, ue.build_registration_request())
    assert testbed.amf.pending_count() == 2
    assert testbed.amf.pending_evictions == 1
    assert testbed.amf.session_state(ues[0].name) == "none"  # oldest dropped
