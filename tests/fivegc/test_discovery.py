"""NRF discovery: response caching, invalidation, replica load balancing."""

import pytest

from repro.container.network import BridgeNetwork
from repro.fivegc.nf_base import CONTROL_PLANE_RING_SEED
from repro.fivegc.nrf import Nrf
from repro.fivegc.routing import supi_ring
from repro.fivegc.udm import Udm
from repro.fivegc.udr import AuthSubscription, Udr
from repro.fivegc.ausf import Ausf
from repro.net.sbi import NFType


@pytest.fixture
def fabric(host):
    """An NRF, a UDR and two sharded UDM replicas, all registered."""
    bridge = BridgeNetwork(name="sbi", host=host)
    nrf = Nrf("nrf", host, bridge)
    udr = Udr("udr", host, bridge)
    udms = [
        Udm("udm", host, bridge, shard="0"),
        Udm("udm-1", host, bridge, shard="1"),
    ]
    ausf = Ausf("ausf", host, bridge, shard="0")
    registry = {nf.name: nf for nf in (nrf, udr, *udms, ausf)}
    for nf in (udr, *udms, ausf):
        nf.register_with(nrf)
    return nrf, udr, udms, ausf, registry


def test_second_discover_is_served_from_cache(fabric):
    nrf, _, udms, ausf, registry = fabric
    before = nrf.server.requests_served
    first = ausf.discover(NFType.UDM, registry)
    assert nrf.server.requests_served == before + 1
    second = ausf.discover(NFType.UDM, registry)
    assert second is first
    # No second NRF round-trip: the cache answered.
    assert nrf.server.requests_served == before + 1


def test_refresh_forces_a_fresh_nrf_round_trip(fabric):
    nrf, _, udms, ausf, registry = fabric
    ausf.discover(NFType.UDM, registry)
    before = nrf.server.requests_served
    ausf.discover(NFType.UDM, registry, refresh=True)
    assert nrf.server.requests_served == before + 1


def test_invalidate_discovery_drops_one_or_all_entries(fabric):
    nrf, udr, udms, ausf, registry = fabric
    ausf.discover(NFType.UDM, registry)
    ausf.discover(NFType.UDR, registry)
    ausf.invalidate_discovery(NFType.UDM)
    before = nrf.server.requests_served
    ausf.discover(NFType.UDR, registry)  # still cached
    assert nrf.server.requests_served == before
    ausf.discover(NFType.UDM, registry)  # dropped: NRF round-trip
    assert nrf.server.requests_served == before + 1
    ausf.invalidate_discovery()
    ausf.discover(NFType.UDR, registry)
    assert nrf.server.requests_served == before + 2


def test_stale_cache_after_peer_restart_is_refreshed_not_poisoned(fabric):
    """A restarted replica must be rediscovered and reachable.

    The cached discovery entry (and the cached TLS connection under it)
    predate the restart; after invalidation the next discover performs a
    fresh NRF round-trip and calls reach the revived peer, rather than
    being routed down the poisoned pre-restart connection.
    """
    nrf, udr, udms, ausf, registry = fabric
    bound = ausf.discover(NFType.UDM, registry)
    assert bound is udms[0]  # same-shard affinity
    # Drive one real call over the discovered binding (warms the TLS
    # connection that the restart will orphan).
    udr.provision(
        AuthSubscription(supi="imsi-001010000000077", k=b"k" * 16, opc=b"o" * 16)
    )
    for udm in udms:
        udm.discover(NFType.UDR, registry)
    ok = ausf.call(
        bound, "POST", "/nudm-ueau/v1/generate-auth-data",
        {"servingNetworkName": "5G:mnc001.mcc001.3gppnetwork.org",
         "supi": "imsi-001010000000077"},
    )
    assert ok.ok

    udms[0].restart()
    # The revived process rediscovers its own peers via the NRF...
    assert udms[0]._discovery == {}
    udms[0].discover(NFType.UDR, registry)
    # ...and the client drops its stale entry and rediscovers too.
    ausf.invalidate_discovery(NFType.UDM)
    before = nrf.server.requests_served
    rebound = ausf.discover(NFType.UDM, registry)
    assert nrf.server.requests_served == before + 1
    assert rebound is udms[0]
    again = ausf.call(
        rebound, "POST", "/nudm-ueau/v1/generate-auth-data",
        {"servingNetworkName": "5G:mnc001.mcc001.3gppnetwork.org",
         "supi": "imsi-001010000000077"},
    )
    assert again.ok


def test_discover_binds_same_shard_replica(fabric):
    _, _, udms, ausf, registry = fabric
    assert ausf.shard == "0"
    assert ausf.discover(NFType.UDM, registry) is udms[0]


def test_peer_for_follows_the_deployment_ring(fabric):
    _, _, udms, ausf, registry = fabric
    ausf.discover(NFType.UDM, registry)
    ring = supi_ring(2, seed=CONTROL_PLANE_RING_SEED)
    by_shard = {"0": udms[0], "1": udms[1]}
    for i in range(50):
        key = f"imsi-00101{i:010d}"
        assert ausf.peer_for(NFType.UDM, key) is by_shard[ring.pick(key)]


def test_peer_for_single_instance_skips_hashing(fabric):
    _, udr, _, ausf, registry = fabric
    ausf.discover(NFType.UDR, registry)
    assert ausf.peer_for(NFType.UDR, "imsi-001010000000001") is udr
