"""5G-AKA vector generation: UE/HN agreement and structure."""

import pytest

from repro.aka import (
    AMF_FIELD_5G,
    HomeAuthVector,
    build_autn,
    derive_se_av,
    generate_he_av,
    verify_hres_star,
)
from repro.crypto.kdf import serving_network_name
from repro.crypto.milenage import Milenage

K = bytes.fromhex("465b5ce8b199b49faa5f0a2ee238a6bc")
OPC = bytes.fromhex("cd63cb71954a9f4e48a5994e37a02baf")
RAND = bytes.fromhex("23553cbe9637a89d218ae64dae47bf35")
SQN = (42).to_bytes(6, "big")
SNN = serving_network_name("001", "01")


@pytest.fixture
def he_av():
    return generate_he_av(k=K, opc=OPC, rand=RAND, sqn=SQN, snn=SNN)


def test_he_av_field_sizes(he_av):
    assert len(he_av.rand) == 16
    assert len(he_av.autn) == 16
    assert len(he_av.xres_star) == 16
    assert len(he_av.kausf) == 32


def test_autn_structure(he_av):
    vector = Milenage(K, OPC).generate(RAND, SQN, AMF_FIELD_5G)
    sqn_xor_ak = bytes(s ^ a for s, a in zip(SQN, vector.ak))
    assert he_av.autn[:6] == sqn_xor_ak
    assert he_av.autn[6:8] == AMF_FIELD_5G
    assert he_av.autn[8:] == vector.mac_a


def test_build_autn_validates_lengths():
    with pytest.raises(ValueError):
        build_autn(bytes(5), bytes(6), AMF_FIELD_5G, bytes(8))


def test_he_av_is_deterministic():
    a = generate_he_av(k=K, opc=OPC, rand=RAND, sqn=SQN, snn=SNN)
    b = generate_he_av(k=K, opc=OPC, rand=RAND, sqn=SQN, snn=SNN)
    assert a == b


def test_fresh_rand_changes_vector(he_av):
    other = generate_he_av(k=K, opc=OPC, rand=bytes(16), sqn=SQN, snn=SNN)
    assert other.xres_star != he_av.xres_star
    assert other.kausf != he_av.kausf


def test_se_av_derivation(he_av):
    se_av, kseaf = derive_se_av(he_av, SNN)
    assert se_av.rand == he_av.rand
    assert se_av.autn == he_av.autn
    assert len(se_av.hxres_star) == 16
    assert len(kseaf) == 32
    # The SE AV never exposes XRES* or K_AUSF.
    assert he_av.xres_star not in (se_av.rand + se_av.autn + se_av.hxres_star)


def test_hres_star_verification_accepts_correct_response(he_av):
    se_av, _ = derive_se_av(he_av, SNN)
    assert verify_hres_star(he_av.rand, he_av.xres_star, se_av.hxres_star)


def test_hres_star_verification_rejects_wrong_response(he_av):
    se_av, _ = derive_se_av(he_av, SNN)
    assert not verify_hres_star(he_av.rand, bytes(16), se_av.hxres_star)


def test_home_auth_vector_validation():
    with pytest.raises(ValueError):
        HomeAuthVector(rand=bytes(15), autn=bytes(16), xres_star=bytes(16), kausf=bytes(32))
    with pytest.raises(ValueError):
        HomeAuthVector(rand=bytes(16), autn=bytes(16), xres_star=bytes(16), kausf=bytes(31))
