"""UDR: subscriber storage and SQN management."""

import pytest

from repro.container.network import BridgeNetwork
from repro.fivegc.udr import AuthSubscription, Udr
from repro.net.sbi import UDR_AUTH_SUBSCRIPTION


@pytest.fixture
def bridge(host):
    return BridgeNetwork(name="sbi", host=host)


@pytest.fixture
def udr(host, bridge):
    udr = Udr("udr", host, bridge)
    udr.provision(
        AuthSubscription(supi="imsi-001010000000001", k=bytes(16), opc=bytes(16))
    )
    return udr


@pytest.fixture
def caller(host, bridge):
    from repro.fivegc.nf_base import NetworkFunction

    return NetworkFunction("caller", host, bridge)


def test_subscription_validation():
    with pytest.raises(ValueError):
        AuthSubscription(supi="x", k=b"short", opc=bytes(16))
    with pytest.raises(ValueError):
        AuthSubscription(supi="x", k=bytes(16), opc=b"short")


def test_sqn_advances_per_fetch(udr, caller):
    first = caller.call(udr, "POST", UDR_AUTH_SUBSCRIPTION, {"supi": "imsi-001010000000001"})
    second = caller.call(udr, "POST", UDR_AUTH_SUBSCRIPTION, {"supi": "imsi-001010000000001"})
    assert first.json()["sqn"] == (1).to_bytes(6, "big").hex()
    assert second.json()["sqn"] == (2).to_bytes(6, "big").hex()


def test_fetch_returns_credentials(udr, caller):
    body = caller.call(
        udr, "POST", UDR_AUTH_SUBSCRIPTION, {"supi": "imsi-001010000000001"}
    ).json()
    assert body["k"] == bytes(16).hex()
    assert body["opc"] == bytes(16).hex()
    assert body["amfField"] == "8000"


def test_unknown_subscriber_404(udr, caller):
    response = caller.call(udr, "POST", UDR_AUTH_SUBSCRIPTION, {"supi": "imsi-999"})
    assert response.status == 404


def test_missing_supi_400(udr, caller):
    response = caller.call(udr, "POST", UDR_AUTH_SUBSCRIPTION, {})
    assert response.status == 400


def test_subscriber_count(udr):
    assert udr.subscriber_count == 1
    udr.provision(
        AuthSubscription(supi="imsi-001010000000002", k=bytes(16), opc=bytes(16))
    )
    assert udr.subscriber_count == 2


def test_subscriber_lookup(udr):
    record = udr.subscriber("imsi-001010000000001")
    assert record.sqn == 0
    with pytest.raises(KeyError):
        udr.subscriber("imsi-404")
