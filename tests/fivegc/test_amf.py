"""AMF NAS state machine: ordering, MAC enforcement, GUTI allocation."""

import pytest

from repro.fivegc.amf import AmfError
from repro.fivegc.messages import (
    AuthenticationReject,
    AuthenticationRequest,
    AuthenticationResponse,
    RegistrationComplete,
    SecurityModeCommand,
    SecurityModeComplete,
)


def start_registration(testbed, ue):
    return testbed.amf.handle_nas(ue.name, ue.build_registration_request())


def test_registration_request_yields_challenge(monolithic_testbed):
    testbed = monolithic_testbed
    ue = testbed.add_subscriber()
    downlink = start_registration(testbed, ue)
    assert isinstance(downlink, AuthenticationRequest)
    assert len(downlink.rand) == 16 and len(downlink.autn) == 16
    assert testbed.amf.session_state(ue.name) == "wait-auth-response"


def test_full_nas_exchange_registers_ue(monolithic_testbed):
    testbed = monolithic_testbed
    ue = testbed.add_subscriber()
    downlink = start_registration(testbed, ue)
    while downlink is not None:
        uplink = ue.handle_nas(downlink)
        if uplink is None:
            break
        downlink = testbed.amf.handle_nas(ue.name, uplink)
    assert ue.registered
    assert ue.guti and ue.guti.startswith("5g-guti-00101-")
    assert testbed.amf.registered_count() == 1


def test_wrong_res_star_rejected(monolithic_testbed):
    testbed = monolithic_testbed
    ue = testbed.add_subscriber()
    start_registration(testbed, ue)
    downlink = testbed.amf.handle_nas(
        ue.name, AuthenticationResponse(res_star=bytes(16))
    )
    assert isinstance(downlink, AuthenticationReject)
    assert "HRES*" in downlink.cause
    # Failed sessions release their context immediately (no _UeSession
    # leak); a retry starts from a clean RegistrationRequest.
    assert testbed.amf.session_state(ue.name) == "none"


def test_out_of_order_nas_rejected(monolithic_testbed):
    testbed = monolithic_testbed
    ue = testbed.add_subscriber()
    start_registration(testbed, ue)
    with pytest.raises(AmfError, match="out of order"):
        testbed.amf.handle_nas(ue.name, SecurityModeComplete(mac=bytes(4)))


def test_unknown_session_rejected(monolithic_testbed):
    with pytest.raises(AmfError, match="no NAS session"):
        monolithic_testbed.amf.handle_nas(
            "ghost", AuthenticationResponse(res_star=bytes(16))
        )


def test_bad_smc_complete_mac_rejected(monolithic_testbed):
    testbed = monolithic_testbed
    ue = testbed.add_subscriber()
    challenge = start_registration(testbed, ue)
    response = ue.handle_nas(challenge)
    smc = testbed.amf.handle_nas(ue.name, response)
    assert isinstance(smc, SecurityModeCommand)
    downlink = testbed.amf.handle_nas(
        ue.name, SecurityModeComplete(mac=bytes(4))
    )
    assert isinstance(downlink, AuthenticationReject)


def test_bad_registration_complete_mac_rejected(monolithic_testbed):
    testbed = monolithic_testbed
    ue = testbed.add_subscriber()
    downlink = start_registration(testbed, ue)
    # Walk to WAIT_REG_COMPLETE honestly.
    downlink = testbed.amf.handle_nas(ue.name, ue.handle_nas(downlink))  # auth
    downlink = testbed.amf.handle_nas(ue.name, ue.handle_nas(downlink))  # smc
    reject = testbed.amf.handle_nas(ue.name, RegistrationComplete(mac=bytes(4)))
    assert isinstance(reject, AuthenticationReject)


def test_gutis_are_unique(monolithic_testbed):
    testbed = monolithic_testbed
    gutis = set()
    for _ in range(3):
        ue = testbed.add_subscriber()
        outcome = testbed.register(ue, establish_session=False)
        assert outcome.success
        gutis.add(ue.guti)
    assert len(gutis) == 3


def test_pdu_session_requires_registration(monolithic_testbed):
    from repro.fivegc.messages import PduSessionEstablishmentRequest

    testbed = monolithic_testbed
    ue = testbed.add_subscriber()
    start_registration(testbed, ue)
    with pytest.raises(AmfError, match="out of order"):
        testbed.amf.handle_nas(ue.name, PduSessionEstablishmentRequest())
