"""NAS message types: discriminators, sizes, outcome container."""

from repro.fivegc.messages import (
    AuthenticationFailure,
    AuthenticationRequest,
    AuthenticationResponse,
    NasMessage,
    PduSessionEstablishmentAccept,
    RegistrationAccept,
    RegistrationOutcome,
    RegistrationRequest,
    SecurityModeCommand,
)


def test_kind_is_class_name():
    assert AuthenticationRequest(rand=bytes(16), autn=bytes(16)).kind == "AuthenticationRequest"
    assert RegistrationRequest(suci={}).kind == "RegistrationRequest"


def test_approx_bytes_reflect_payload():
    small = AuthenticationResponse(res_star=bytes(16))
    assert small.approx_bytes() == 24
    challenge = AuthenticationRequest(rand=bytes(16), autn=bytes(16))
    assert challenge.approx_bytes() == 40


def test_registration_request_size_grows_with_suci():
    short = RegistrationRequest(suci={"schemeOutput": "ab"})
    long = RegistrationRequest(suci={"schemeOutput": "ab" * 40})
    assert long.approx_bytes() > short.approx_bytes()


def test_messages_are_immutable():
    import pytest

    message = AuthenticationRequest(rand=bytes(16), autn=bytes(16))
    with pytest.raises(AttributeError):
        message.rand = bytes(16)


def test_auth_failure_carries_auts():
    failure = AuthenticationFailure(cause="SYNCH_FAILURE", auts=bytes(14))
    assert failure.auts == bytes(14)
    assert AuthenticationFailure(cause="MAC_FAILURE").auts is None


def test_default_approx_bytes():
    class Custom(NasMessage):
        pass

    assert Custom().approx_bytes() == 64


def test_registration_outcome_defaults():
    outcome = RegistrationOutcome(success=False)
    assert outcome.supi is None
    assert outcome.nas_exchanges == 0
    assert outcome.detail == {}


def test_pdu_accept_fields():
    accept = PduSessionEstablishmentAccept(session_id=2, ue_address="10.0.0.9")
    assert accept.session_id == 2
    assert accept.qos_flow == "5qi-9"


def test_smc_defaults_match_nia2_nea2():
    smc = SecurityModeCommand(mac=bytes(4))
    assert smc.integrity_alg == "128-NIA2"
    assert smc.ciphering_alg == "128-NEA2"


def test_registration_accept_size_includes_guti():
    short = RegistrationAccept(guti="g")
    long = RegistrationAccept(guti="5g-guti-00101-0001-deadbeef")
    assert long.approx_bytes() > short.approx_bytes()
