"""Consistent-hash routing: determinism, balance, minimal re-homing."""

import pytest

from repro.fivegc.routing import (
    ControlPlaneRouter,
    HashRing,
    shard_labels,
    supi_ring,
)


def _population(n=4000):
    return [f"imsi-00101{i:010d}" for i in range(n)]


def test_ring_pick_is_deterministic_per_seed():
    a = HashRing(["0", "1", "2"], seed=0)
    b = HashRing(["0", "1", "2"], seed=0)
    keys = _population(500)
    assert [a.pick(k) for k in keys] == [b.pick(k) for k in keys]


def test_ring_seed_changes_assignment():
    keys = _population(500)
    a = HashRing(["0", "1", "2"], seed=0)
    b = HashRing(["0", "1", "2"], seed=99)
    assert [a.pick(k) for k in keys] != [b.pick(k) for k in keys]


def test_ring_pick_independent_of_insertion_order():
    keys = _population(500)
    forward = HashRing(["0", "1", "2", "3"], seed=0)
    backward = HashRing(["3", "2", "1", "0"], seed=0)
    assert [forward.pick(k) for k in keys] == [backward.pick(k) for k in keys]


def test_ring_balance_within_reason():
    """64 vnodes keep the worst shard within ~2x of fair share."""
    ring = supi_ring(4)
    counts = {label: 0 for label in shard_labels(4)}
    for key in _population(4000):
        counts[ring.pick(key)] += 1
    assert all(counts.values()), counts
    assert max(counts.values()) < 2 * (4000 / 4), counts


def test_adding_a_node_moves_about_one_over_n_keys():
    """The consistent-hashing contract: scale-out re-homes ~1/(N+1)."""
    keys = _population(4000)
    before = supi_ring(4)
    grown = HashRing(shard_labels(4), seed=0)
    grown.add("4")
    moved = sum(1 for k in keys if before.pick(k) != grown.pick(k))
    # Expected 1/5 = 20%; allow generous slack for vnode placement noise.
    assert 0.05 < moved / len(keys) < 0.40, moved
    # Every moved key must have moved TO the new node, never reshuffled
    # between survivors.
    for key in keys:
        if before.pick(key) != grown.pick(key):
            assert grown.pick(key) == "4"


def test_remove_rehomes_only_the_removed_nodes_keys():
    keys = _population(2000)
    full = supi_ring(4)
    shrunk = HashRing(shard_labels(4), seed=0)
    shrunk.remove("2")
    for key in keys:
        owner = full.pick(key)
        if owner != "2":
            assert shrunk.pick(key) == owner
        else:
            assert shrunk.pick(key) != "2"


def test_ring_edge_cases():
    with pytest.raises(RuntimeError):
        HashRing(seed=0).pick("anything")
    with pytest.raises(KeyError):
        HashRing(["0"], seed=0).remove("7")
    with pytest.raises(ValueError):
        HashRing(vnodes=0)
    ring = HashRing(["0"], seed=0)
    ring.add("0")  # idempotent duplicate add
    assert len(ring) == 1
    assert all(ring.pick(k) == "0" for k in _population(50))


def test_shard_labels_and_supi_ring():
    assert shard_labels(3) == ["0", "1", "2"]
    with pytest.raises(ValueError):
        shard_labels(0)
    assert supi_ring(2).nodes == ("0", "1")


def test_router_requires_an_amf_per_shard():
    ring = supi_ring(2)
    with pytest.raises(ValueError, match="without an AMF"):
        ControlPlaneRouter(ring, {"0": object()})


def test_router_pins_supi_to_one_amf():
    ring = supi_ring(3)
    amfs = {label: object() for label in shard_labels(3)}
    router = ControlPlaneRouter(ring, amfs)
    for key in _population(200):
        shard = router.shard_for(key)
        assert router.amf_for(key) is amfs[shard]
        # Stable across repeated lookups.
        assert router.shard_for(key) == shard
