"""AMF resync path under forged-AUTS storms: retry cap, no session leaks."""

from random import Random

from repro.fivegc.messages import (
    AuthenticationFailure,
    AuthenticationReject,
    AuthenticationRequest,
)


def _challenge(testbed, ue):
    downlink = testbed.amf.handle_nas(ue.name, ue.build_registration_request())
    assert isinstance(downlink, AuthenticationRequest)
    return downlink


def test_resync_attempted_caps_retries_at_one_per_session(monolithic_testbed):
    """A genuine resync may run once; a second SYNCH_FAILURE on the same
    session fails it instead of looping through the home network again."""
    testbed = monolithic_testbed
    ue = testbed.add_subscriber()
    ue.usim.sqn_ms = 1 << 35  # force a genuine SQN desynchronisation
    challenge = _challenge(testbed, ue)

    failure = ue.handle_nas(challenge)
    assert isinstance(failure, AuthenticationFailure)
    assert failure.cause == "SYNCH_FAILURE"
    fresh = testbed.amf.handle_nas(ue.name, failure)
    assert isinstance(fresh, AuthenticationRequest)  # one resync granted

    replay = testbed.amf.handle_nas(
        ue.name, AuthenticationFailure(cause="SYNCH_FAILURE", auts=failure.auts)
    )
    assert isinstance(replay, AuthenticationReject)
    assert testbed.amf.session_state(ue.name) == "none"  # context released


def test_forged_auts_rejected_and_session_released(sgx_testbed):
    """A forged AUTS fails MAC-S verification in the eUDM and the AMF
    tears the session down — the attacker cannot hold state open."""
    testbed = sgx_testbed
    ue = testbed.add_subscriber()
    _challenge(testbed, ue)
    reject = testbed.amf.handle_nas(
        ue.name,
        AuthenticationFailure(cause="SYNCH_FAILURE", auts=Random(1).randbytes(14)),
    )
    assert isinstance(reject, AuthenticationReject)
    assert testbed.amf.session_state(ue.name) == "none"
    # The victim's stored SQN was not reset by the forgery.
    assert testbed.udr.subscriber(str(ue.usim.supi)).sqn == 1


def test_forged_auts_storm_cannot_wedge_or_leak_sessions(sgx_testbed):
    """A sustained sync-failure flood from a finite spoof pool leaves no
    dangling _UeSession state and the AMF keeps serving."""
    testbed = sgx_testbed
    victim_request = testbed.add_subscriber().build_registration_request()
    rng = Random("auts-storm")

    before = testbed.amf.session_count()
    for wave in range(3):
        for spoof in range(8):
            source = f"spoof-{spoof}"
            challenge = testbed.amf.handle_nas(source, victim_request)
            assert isinstance(challenge, AuthenticationRequest)
            reject = testbed.amf.handle_nas(
                source,
                AuthenticationFailure(
                    cause="SYNCH_FAILURE", auts=rng.randbytes(14)
                ),
            )
            assert isinstance(reject, AuthenticationReject)
    # Every storm session was torn down at the rejection.
    assert testbed.amf.session_count() == before
    assert all(
        testbed.amf.session_state(f"spoof-{spoof}") == "none"
        for spoof in range(8)
    )
    # And a legitimate subscriber still registers end to end.
    outcome = testbed.register(testbed.add_subscriber(), establish_session=False)
    assert outcome.success
