"""AUSF: authentication contexts, SE AV derivation, confirmation."""

import pytest

from repro.net.sbi import AUSF_UE_AUTH, AUSF_UE_AUTH_CONFIRM


def authenticate(testbed, ue):
    from repro.crypto.suci import conceal_supi

    suci = conceal_supi(
        ue.usim.supi, testbed.hn_public_key, testbed.host.rng.randbytes("eph2", 32)
    )
    return testbed.amf.call(
        testbed.ausf, "POST", AUSF_UE_AUTH,
        {
            "servingNetworkName": testbed.snn,
            "suci": {"mcc": suci.mcc, "mnc": suci.mnc, "scheme": 1, "keyId": 1,
                     "schemeOutput": suci.scheme_output.hex()},
        },
    )


def test_authenticate_returns_se_av(monolithic_testbed):
    testbed = monolithic_testbed
    ue = testbed.add_subscriber()
    response = authenticate(testbed, ue)
    assert response.status == 201
    body = response.json()
    assert body["authCtxId"].startswith("authctx-")
    assert len(bytes.fromhex(body["hxresStar"])) == 16
    # XRES*, K_AUSF and K_SEAF never appear in the SE AV response.
    assert "xresStar" not in body and "kausf" not in body and "kseaf" not in body


def test_confirmation_releases_kseaf(monolithic_testbed):
    testbed = monolithic_testbed
    ue = testbed.add_subscriber()
    body = authenticate(testbed, ue).json()

    # The genuine UE computes RES* through its USIM.
    result = ue.usim.authenticate(
        bytes.fromhex(body["rand"]), bytes.fromhex(body["autn"]), testbed.snn.encode()
    )
    assert result.success
    confirm = testbed.amf.call(
        testbed.ausf, "POST", AUSF_UE_AUTH_CONFIRM,
        {"authCtxId": body["authCtxId"], "resStar": result.res_star.hex()},
    )
    assert confirm.json()["result"] == "AUTHENTICATION_SUCCESS"
    assert len(bytes.fromhex(confirm.json()["kseaf"])) == 32
    assert confirm.json()["supi"] == str(ue.usim.supi)


def test_wrong_res_star_fails_confirmation(monolithic_testbed):
    testbed = monolithic_testbed
    ue = testbed.add_subscriber()
    body = authenticate(testbed, ue).json()
    confirm = testbed.amf.call(
        testbed.ausf, "POST", AUSF_UE_AUTH_CONFIRM,
        {"authCtxId": body["authCtxId"], "resStar": "00" * 16},
    )
    assert confirm.json()["result"] == "AUTHENTICATION_FAILURE"
    assert "kseaf" not in confirm.json()


def test_failed_context_is_consumed(monolithic_testbed):
    testbed = monolithic_testbed
    ue = testbed.add_subscriber()
    body = authenticate(testbed, ue).json()
    testbed.amf.call(
        testbed.ausf, "POST", AUSF_UE_AUTH_CONFIRM,
        {"authCtxId": body["authCtxId"], "resStar": "00" * 16},
    )
    retry = testbed.amf.call(
        testbed.ausf, "POST", AUSF_UE_AUTH_CONFIRM,
        {"authCtxId": body["authCtxId"], "resStar": "00" * 16},
    )
    assert retry.status == 404


def test_unknown_context_404(monolithic_testbed):
    response = monolithic_testbed.amf.call(
        monolithic_testbed.ausf, "POST", AUSF_UE_AUTH_CONFIRM,
        {"authCtxId": "authctx-999", "resStar": "00" * 16},
    )
    assert response.status == 404


def test_serving_network_authorization(host):
    from repro.container.network import BridgeNetwork
    from repro.fivegc.ausf import Ausf

    bridge = BridgeNetwork(name="sbi", host=host)
    ausf = Ausf("ausf", host, bridge, allowed_snns={"5G:mnc001.mcc001.3gppnetwork.org"})
    from repro.fivegc.nf_base import NetworkFunction

    caller = NetworkFunction("caller", host, bridge)
    response = caller.call(
        ausf, "POST", AUSF_UE_AUTH,
        {"servingNetworkName": "5G:mnc070.mcc901.3gppnetwork.org", "supi": "imsi-x"},
    )
    assert response.status == 403
