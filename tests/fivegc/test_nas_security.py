"""Secure NAS channel: ciphering, integrity, replay/reflection defence."""

import pytest

from repro.fivegc.messages import (
    PduSessionEstablishmentAccept,
    PduSessionEstablishmentRequest,
)
from repro.fivegc.nas_security import (
    DOWNLINK,
    UPLINK,
    NasSecurityError,
    ProtectedNasPdu,
    SecureNasChannel,
    decode_inner,
    encode_inner,
)

K_ENC = bytes(range(16))
K_INT = bytes(range(16, 32))


@pytest.fixture
def channels():
    ue = SecureNasChannel(K_ENC, K_INT, bearer=2, send_direction=UPLINK)
    amf = SecureNasChannel(K_ENC, K_INT, bearer=2, send_direction=DOWNLINK)
    return ue, amf


def test_uplink_roundtrip(channels):
    ue, amf = channels
    message = PduSessionEstablishmentRequest(session_id=3, dnn="ims")
    received = amf.unprotect(ue.protect(message))
    assert received == message


def test_downlink_roundtrip(channels):
    ue, amf = channels
    message = PduSessionEstablishmentAccept(session_id=3, ue_address="10.0.0.7")
    assert ue.unprotect(amf.protect(message)) == message


def test_payload_is_ciphered(channels):
    ue, _ = channels
    pdu = ue.protect(PduSessionEstablishmentRequest(dnn="secret-dnn"))
    assert b"secret-dnn" not in pdu.ciphertext


def test_counts_increase_per_message(channels):
    ue, amf = channels
    first = ue.protect(PduSessionEstablishmentRequest())
    second = ue.protect(PduSessionEstablishmentRequest())
    assert (first.count, second.count) == (0, 1)
    amf.unprotect(first)
    amf.unprotect(second)


def test_replay_rejected(channels):
    ue, amf = channels
    pdu = ue.protect(PduSessionEstablishmentRequest())
    amf.unprotect(pdu)
    with pytest.raises(NasSecurityError, match="replay"):
        amf.unprotect(pdu)


def test_reflection_rejected(channels):
    ue, _ = channels
    pdu = ue.protect(PduSessionEstablishmentRequest())
    # Reflecting the UE's own uplink back at it must fail.
    with pytest.raises(NasSecurityError, match="reflection"):
        ue.unprotect(pdu)


def test_tampered_ciphertext_rejected(channels):
    ue, amf = channels
    pdu = ue.protect(PduSessionEstablishmentRequest())
    tampered = ProtectedNasPdu(
        count=pdu.count,
        direction=pdu.direction,
        ciphertext=bytes([pdu.ciphertext[0] ^ 1]) + pdu.ciphertext[1:],
        mac=pdu.mac,
    )
    with pytest.raises(NasSecurityError, match="MAC"):
        amf.unprotect(tampered)


def test_wrong_keys_rejected(channels):
    ue, _ = channels
    stranger = SecureNasChannel(bytes(16), bytes(16), bearer=2, send_direction=DOWNLINK)
    with pytest.raises(NasSecurityError):
        stranger.unprotect(ue.protect(PduSessionEstablishmentRequest()))


def test_codec_roundtrip():
    message = PduSessionEstablishmentAccept(session_id=9, ue_address="10.0.1.2")
    assert decode_inner(encode_inner(message)) == message


def test_codec_rejects_unknown_kind():
    from repro.fivegc.messages import RegistrationComplete

    with pytest.raises(NasSecurityError):
        encode_inner(RegistrationComplete())
    with pytest.raises(NasSecurityError):
        decode_inner(b'{"kind": "Bogus"}')


def test_key_validation():
    with pytest.raises(ValueError):
        SecureNasChannel(b"short", K_INT)
    with pytest.raises(ValueError):
        SecureNasChannel(K_ENC, K_INT, send_direction=3)
