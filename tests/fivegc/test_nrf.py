"""NRF registration and discovery over the SBI."""

import pytest

from repro.container.network import BridgeNetwork
from repro.fivegc.nrf import Nrf
from repro.fivegc.udr import Udr
from repro.net.sbi import NFType


@pytest.fixture
def bridge(host):
    return BridgeNetwork(name="sbi", host=host)


@pytest.fixture
def nrf(host, bridge):
    return Nrf("nrf", host, bridge)


def test_registration_stores_profile(host, bridge, nrf):
    udr = Udr("udr", host, bridge)
    udr.register_with(nrf)
    assert [p.nf_instance_id for p in nrf.registered(NFType.UDR)] == ["udr-0001"]


def test_discovery_returns_registered_instances(host, bridge, nrf):
    udr = Udr("udr", host, bridge)
    udr.register_with(nrf)

    other = Udr("udr2", host, bridge)
    other.register_with(nrf)
    found = other.discover(NFType.UDR, {"udr": udr, "udr2": other})
    assert found is udr  # first registered instance wins


def test_discovery_of_missing_type_fails(host, bridge, nrf):
    udr = Udr("udr", host, bridge)
    udr.register_with(nrf)
    with pytest.raises(RuntimeError, match="no AMF instances"):
        udr.discover(NFType.AMF, {"udr": udr})


def test_discovery_requires_registration_first(host, bridge, nrf):
    udr = Udr("udr", host, bridge)
    with pytest.raises(RuntimeError, match="not registered"):
        udr.discover(NFType.UDR, {})


def test_bad_profile_rejected(host, bridge, nrf):
    from repro.net.sbi import NRF_REGISTER

    udr = Udr("udr", host, bridge)
    response = udr.call(nrf, "PUT", NRF_REGISTER, {"garbage": True})
    assert response.status == 400


def test_discover_unknown_type_rejected(host, bridge, nrf):
    from repro.net.sbi import NRF_DISCOVER

    udr = Udr("udr", host, bridge)
    response = udr.call(nrf, "GET", NRF_DISCOVER, {"targetNfType": "XYZ"})
    assert response.status == 400
