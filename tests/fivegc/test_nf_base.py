"""NetworkFunction base: connections, error mapping, shutdown."""

import pytest

from repro.container.network import BridgeNetwork
from repro.fivegc.nf_base import NetworkFunction
from repro.net.rest import JsonApiError, json_response
from repro.net.sbi import NFType


class EchoNf(NetworkFunction):
    NF_TYPE = NFType.UDM

    def _register_routes(self):
        def echo(request, context):
            return json_response({"len": len(request.body)})

        def boom(request, context):
            raise JsonApiError(418, "teapot")

        self._route_json("POST", "/echo", echo)
        self._route_json("POST", "/boom", boom)


@pytest.fixture
def pair(host):
    bridge = BridgeNetwork(name="sbi", host=host)
    return EchoNf("a", host, bridge), EchoNf("b", host, bridge)


def test_call_roundtrip(pair):
    a, b = pair
    response = a.call(b, "POST", "/echo", {"x": 1})
    assert response.ok
    assert response.json()["len"] > 0


def test_json_api_errors_map_to_status(pair):
    a, b = pair
    response = a.call(b, "POST", "/boom", {})
    assert response.status == 418
    assert response.json()["error"] == "teapot"


def test_connections_are_cached_keepalive(pair):
    a, b = pair
    first = a.connect_peer(b)
    second = a.connect_peer(b)
    assert first is second


def test_connection_reopened_after_close(pair):
    a, b = pair
    connection = a.connect_peer(b)
    a.client.close(connection)
    fresh = a.connect_peer(b)
    assert fresh is not connection
    assert fresh.open


def test_peer_lookup_requires_binding(pair):
    a, _ = pair
    with pytest.raises(RuntimeError, match="no bound peer"):
        a.peer(NFType.SMF)


def test_shutdown_closes_everything(pair):
    a, b = pair
    a.connect_peer(b)
    a.shutdown()
    assert not a.server.started
    with pytest.raises(RuntimeError):
        a.runtime.compute(1)
