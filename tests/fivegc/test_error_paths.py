"""Negative paths across the SBI: malformed inputs degrade gracefully."""

import pytest

from repro.net.sbi import (
    AUSF_UE_AUTH,
    EAMF_DERIVE_KAMF,
    EAUSF_DERIVE_SE_AV,
    EUDM_GENERATE_AV,
    UDM_UE_AUTH_GET,
    UDR_AUTH_RESYNC,
)


def test_ausf_requires_snn(monolithic_testbed):
    response = monolithic_testbed.amf.call(
        monolithic_testbed.ausf, "POST", AUSF_UE_AUTH, {"supi": "imsi-x"}
    )
    assert response.status == 400


def test_udm_requires_snn(monolithic_testbed):
    response = monolithic_testbed.ausf.call(
        monolithic_testbed.udm, "POST", UDM_UE_AUTH_GET, {"supi": "imsi-x"}
    )
    assert response.status == 400


def test_udm_malformed_resync_info(monolithic_testbed):
    testbed = monolithic_testbed
    ue = testbed.add_subscriber()
    response = testbed.ausf.call(
        testbed.udm, "POST", UDM_UE_AUTH_GET,
        {
            "servingNetworkName": testbed.snn,
            "supi": str(ue.usim.supi),
            "resynchronizationInfo": {"rand": "zz", "auts": "00"},
        },
    )
    assert response.status == 400


def test_udr_resync_validates_sqn_range(monolithic_testbed):
    testbed = monolithic_testbed
    ue = testbed.add_subscriber()
    response = testbed.udm.call(
        testbed.udr, "POST", UDR_AUTH_RESYNC,
        {"supi": str(ue.usim.supi), "sqnMs": 1 << 50},
    )
    assert response.status == 400


def test_udr_resync_unknown_subscriber(monolithic_testbed):
    response = monolithic_testbed.udm.call(
        monolithic_testbed.udr, "POST", UDR_AUTH_RESYNC,
        {"supi": "imsi-nobody", "sqnMs": 5},
    )
    assert response.status == 404


def test_module_errors_propagate_as_gateway_errors(container_testbed):
    """If the eUDM module refuses (unknown SUPI), the UDM maps it to an
    upstream error rather than crashing the chain."""
    testbed = container_testbed
    # Subscriber exists in the UDR but was never pushed to the module.
    from repro.fivegc.udr import AuthSubscription

    testbed.udr.provision(
        AuthSubscription(supi="imsi-001019999999990", k=bytes(16), opc=bytes(16))
    )
    response = testbed.ausf.call(
        testbed.udm, "POST", UDM_UE_AUTH_GET,
        {"servingNetworkName": testbed.snn, "supi": "imsi-001019999999990"},
    )
    assert response.status == 502


@pytest.mark.parametrize(
    "path,payload",
    [
        (EUDM_GENERATE_AV, {"supi": "x"}),  # missing crypto params
        (EAUSF_DERIVE_SE_AV, {"rand": "00" * 16}),  # missing the rest
        (EAMF_DERIVE_KAMF, {"kseaf": "00"}),  # wrong size
    ],
)
def test_module_endpoints_reject_malformed(container_testbed, path, payload):
    import json

    testbed = container_testbed
    module = {
        EUDM_GENERATE_AV: "eudm",
        EAUSF_DERIVE_SE_AV: "eausf",
        EAMF_DERIVE_KAMF: "eamf",
    }[path]
    server = testbed.paka.modules[module].server
    connection = testbed.udm.client.connect(server)
    response = testbed.udm.client.request(
        connection, "POST", path, body=json.dumps(payload).encode()
    )
    assert response.status == 400


def test_non_json_body_rejected(monolithic_testbed):
    testbed = monolithic_testbed
    connection = testbed.ausf.connect_peer(testbed.udm)
    response = testbed.ausf.client.request(
        connection, "POST", UDM_UE_AUTH_GET, body=b"\xff\xfe not json"
    )
    assert response.status == 400
