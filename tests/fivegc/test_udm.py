"""UDM: SIDF de-concealment and HE AV generation (monolithic mode)."""

import pytest

from repro.crypto.suci import Supi, conceal_supi
from repro.net.sbi import UDM_UE_AUTH_GET


@pytest.fixture
def testbed(monolithic_testbed):
    return monolithic_testbed


def auth_request_for(testbed, ue):
    suci = conceal_supi(
        ue.usim.supi, testbed.hn_public_key, testbed.host.rng.randbytes("eph", 32)
    )
    return {
        "servingNetworkName": testbed.snn,
        "suci": {
            "mcc": suci.mcc,
            "mnc": suci.mnc,
            "scheme": suci.protection_scheme,
            "keyId": suci.home_network_key_id,
            "schemeOutput": suci.scheme_output.hex(),
        },
    }


def test_generates_he_av_from_suci(testbed):
    ue = testbed.add_subscriber()
    response = testbed.ausf.call(
        testbed.udm, "POST", UDM_UE_AUTH_GET, auth_request_for(testbed, ue)
    )
    assert response.ok
    body = response.json()
    assert body["supi"] == str(ue.usim.supi)
    assert len(bytes.fromhex(body["rand"])) == 16
    assert len(bytes.fromhex(body["autn"])) == 16
    assert len(bytes.fromhex(body["xresStar"])) == 16
    assert len(bytes.fromhex(body["kausf"])) == 32


def test_accepts_plain_supi(testbed):
    ue = testbed.add_subscriber()
    response = testbed.ausf.call(
        testbed.udm, "POST", UDM_UE_AUTH_GET,
        {"servingNetworkName": testbed.snn, "supi": str(ue.usim.supi)},
    )
    assert response.ok


def test_fresh_rand_per_request(testbed):
    ue = testbed.add_subscriber()
    payload = {"servingNetworkName": testbed.snn, "supi": str(ue.usim.supi)}
    one = testbed.ausf.call(testbed.udm, "POST", UDM_UE_AUTH_GET, payload).json()
    two = testbed.ausf.call(testbed.udm, "POST", UDM_UE_AUTH_GET, payload).json()
    assert one["rand"] != two["rand"]


def test_unknown_subscriber_propagates_404(testbed):
    response = testbed.ausf.call(
        testbed.udm, "POST", UDM_UE_AUTH_GET,
        {"servingNetworkName": testbed.snn, "supi": "imsi-001019999999999"},
    )
    assert response.status == 404


def test_garbled_suci_rejected(testbed):
    response = testbed.ausf.call(
        testbed.udm, "POST", UDM_UE_AUTH_GET,
        {
            "servingNetworkName": testbed.snn,
            "suci": {"mcc": "001", "mnc": "01", "scheme": 1, "keyId": 1,
                     "schemeOutput": "00" * 60},
        },
    )
    assert response.status == 403  # MAC check fails in SIDF


def test_missing_identity_rejected(testbed):
    response = testbed.ausf.call(
        testbed.udm, "POST", UDM_UE_AUTH_GET, {"servingNetworkName": testbed.snn}
    )
    assert response.status == 400


def test_suci_for_wrong_hn_key_rejected(testbed):
    from repro.crypto.suci import x25519_public_key

    ue = testbed.add_subscriber()
    wrong_pub = x25519_public_key(bytes(range(32)))
    suci = conceal_supi(ue.usim.supi, wrong_pub, bytes(range(32, 64)))
    response = testbed.ausf.call(
        testbed.udm, "POST", UDM_UE_AUTH_GET,
        {
            "servingNetworkName": testbed.snn,
            "suci": {"mcc": suci.mcc, "mnc": suci.mnc, "scheme": 1, "keyId": 1,
                     "schemeOutput": suci.scheme_output.hex()},
        },
    )
    assert response.status == 403
