"""SMF/UPF: PDU session anchoring and the N4 interface."""

import pytest

from repro.net.sbi import SMF_PDU_SESSION


def test_pdu_session_allocates_address(monolithic_testbed):
    testbed = monolithic_testbed
    response = testbed.amf.call(
        testbed.smf, "POST", SMF_PDU_SESSION,
        {"supi": "imsi-001010000000001", "sessionId": 1, "dnn": "internet"},
    )
    assert response.status == 201
    body = response.json()
    assert body["ueAddress"].startswith("10.0.")
    assert body["qosFlow"] == "5qi-9"
    assert testbed.smf.session_count() == 1


def test_n4_programs_upf_forwarding(monolithic_testbed):
    testbed = monolithic_testbed
    body = testbed.amf.call(
        testbed.smf, "POST", SMF_PDU_SESSION,
        {"supi": "imsi-001010000000001", "sessionId": 1, "dnn": "internet"},
    ).json()
    assert testbed.upf.session_count() == 1
    assert testbed.upf.forward_packet(body["ueAddress"], 1200)
    assert testbed.upf.packets_forwarded == 1


def test_upf_drops_unknown_address(monolithic_testbed):
    assert not monolithic_testbed.upf.forward_packet("10.9.9.9", 100)


def test_addresses_are_unique(monolithic_testbed):
    testbed = monolithic_testbed
    addresses = set()
    for index in range(3):
        body = testbed.amf.call(
            testbed.smf, "POST", SMF_PDU_SESSION,
            {"supi": f"imsi-00101000000000{index}", "sessionId": 1, "dnn": "internet"},
        ).json()
        addresses.add(body["ueAddress"])
    assert len(addresses) == 3


def test_missing_fields_rejected(monolithic_testbed):
    testbed = monolithic_testbed
    response = testbed.amf.call(testbed.smf, "POST", SMF_PDU_SESSION, {"supi": "x"})
    assert response.status == 400


def test_end_to_end_data_session_after_registration(monolithic_testbed):
    testbed = monolithic_testbed
    ue = testbed.add_subscriber()
    outcome = testbed.register(ue, establish_session=True)
    assert outcome.success
    assert ue.ue_address is not None
    assert testbed.upf.forward_packet(ue.ue_address, 800)
