"""Namespaced RNG service determinism."""

from repro.sim.rng import RngService


def test_same_seed_same_stream():
    a = RngService(42).stream("net").random()
    b = RngService(42).stream("net").random()
    assert a == b


def test_streams_are_independent_by_name():
    service = RngService(42)
    assert service.stream("a").random() != service.stream("b").random()


def test_stream_is_cached():
    service = RngService(0)
    assert service.stream("x") is service.stream("x")


def test_adding_a_stream_does_not_perturb_others():
    one = RngService(7)
    first_draw = one.stream("net").random()

    two = RngService(7)
    two.stream("other").random()  # extra stream created first
    assert two.stream("net").random() == first_draw


def test_randbytes_length_and_determinism():
    assert RngService(1).randbytes("k", 16) == RngService(1).randbytes("k", 16)
    assert len(RngService(1).randbytes("k", 16)) == 16


def test_jitter_is_positive_and_near_mean():
    service = RngService(3)
    samples = [service.jitter("lat", 100.0, 0.05) for _ in range(200)]
    assert all(s > 0 for s in samples)
    assert 95 < sum(samples) / len(samples) < 105


def test_jitter_clamps_pathological_draws():
    service = RngService(3)
    # Huge sigma: draws below 10% of mean must be clamped.
    samples = [service.jitter("wild", 100.0, 5.0) for _ in range(500)]
    assert min(samples) >= 10.0


def test_fork_changes_streams_deterministically():
    base = RngService(5)
    fork_a = base.fork("run-1")
    fork_b = RngService(5).fork("run-1")
    assert fork_a.stream("x").random() == fork_b.stream("x").random()
    assert fork_a.seed != base.seed
