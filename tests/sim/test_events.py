"""Event log filtering and capacity behaviour."""

from repro.sim.events import Event, EventLog


def test_events_are_hashable_and_usable_in_sets():
    # __eq__ without __hash__ would set __hash__ to None; events must
    # stay usable as set members and dict keys.
    a = Event(1, "sgx.ocall", {"syscall": "read"})
    b = Event(1, "sgx.ocall", {"syscall": "read"})
    c = Event(2, "sgx.ocall", {"syscall": "read"})
    assert a == b and hash(a) == hash(b)
    assert len({a, b, c}) == 2
    index = {a: "first"}
    assert index[b] == "first"  # equal event addresses the same slot
    assert c not in index


def test_unequal_detail_events_still_collide_safely():
    # detail is excluded from the hash (dicts are unhashable); events
    # differing only in detail are unequal but land in the same bucket.
    a = Event(1, "net.frame", {"nbytes": 1})
    b = Event(1, "net.frame", {"nbytes": 2})
    assert a != b
    assert hash(a) == hash(b)
    assert len({a, b}) == 2


def test_emit_and_len():
    log = EventLog()
    log.emit(0, "sgx.eenter")
    log.emit(1, "sgx.eexit")
    assert len(log) == 2


def test_detail_is_preserved():
    log = EventLog()
    event = log.emit(5, "net.frame", src="udm", nbytes=128)
    assert event.detail == {"src": "udm", "nbytes": 128}
    assert event.timestamp_ns == 5


def test_select_by_prefix():
    log = EventLog()
    log.emit(0, "sgx.eenter")
    log.emit(0, "sgx.ocall")
    log.emit(0, "net.frame")
    assert len(log.select("sgx")) == 2
    assert log.count("net") == 1


def test_select_prefix_is_dotted_not_substring():
    log = EventLog()
    log.emit(0, "sgxextra.thing")
    log.emit(0, "sgx.thing")
    assert log.count("sgx") == 1


def test_exact_category_match():
    log = EventLog()
    log.emit(0, "attack.escape")
    assert log.count("attack.escape") == 1


def test_capacity_drops_oldest():
    log = EventLog(capacity=10)
    for i in range(25):
        log.emit(i, "tick", i=i)
    assert len(log) <= 10
    # The newest events survive.
    assert list(log)[-1].detail["i"] == 24


def test_clear():
    log = EventLog()
    log.emit(0, "x")
    log.clear()
    assert len(log) == 0
    # The count index resets with the events.
    assert log.count("x") == 0


def test_count_index_tracks_capacity_trim():
    log = EventLog(capacity=10)
    for i in range(25):
        log.emit(i, "tick.even" if i % 2 == 0 else "tick.odd", i=i)
    # count/select agree with a full scan of what survived the trims.
    surviving = list(log)
    assert log.count("tick") == len(surviving)
    assert log.count("tick.even") == sum(
        1 for e in surviving if e.category == "tick.even"
    )
    assert log.select("tick.odd") == [
        e for e in surviving if e.category == "tick.odd"
    ]


def test_select_on_absent_prefix_is_empty_without_scan():
    log = EventLog()
    for i in range(100):
        log.emit(i, "sgx.ocall")
    assert log.select("attack") == []
    assert log.count("attack") == 0


def test_count_is_cheap_and_exact_at_scale():
    log = EventLog()
    for i in range(1000):
        log.emit(i, ("sgx.ocall", "sgx.eenter", "net.frame")[i % 3])
    assert log.count("sgx") == 667
    assert log.count("sgx.ocall") == 334
    assert log.count("net") == 333


def test_events_iterate_in_emission_order():
    log = EventLog(capacity=6)
    for i in range(9):
        log.emit(i, "tick", i=i)
    timestamps = [e.timestamp_ns for e in log]
    assert timestamps == sorted(timestamps)
    assert timestamps[-1] == 8
