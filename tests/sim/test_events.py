"""Event log filtering and capacity behaviour."""

from repro.sim.events import EventLog


def test_emit_and_len():
    log = EventLog()
    log.emit(0, "sgx.eenter")
    log.emit(1, "sgx.eexit")
    assert len(log) == 2


def test_detail_is_preserved():
    log = EventLog()
    event = log.emit(5, "net.frame", src="udm", nbytes=128)
    assert event.detail == {"src": "udm", "nbytes": 128}
    assert event.timestamp_ns == 5


def test_select_by_prefix():
    log = EventLog()
    log.emit(0, "sgx.eenter")
    log.emit(0, "sgx.ocall")
    log.emit(0, "net.frame")
    assert len(log.select("sgx")) == 2
    assert log.count("net") == 1


def test_select_prefix_is_dotted_not_substring():
    log = EventLog()
    log.emit(0, "sgxextra.thing")
    log.emit(0, "sgx.thing")
    assert log.count("sgx") == 1


def test_exact_category_match():
    log = EventLog()
    log.emit(0, "attack.escape")
    assert log.count("attack.escape") == 1


def test_capacity_drops_oldest():
    log = EventLog(capacity=10)
    for i in range(25):
        log.emit(i, "tick", i=i)
    assert len(log) <= 10
    # The newest events survive.
    assert list(log)[-1].detail["i"] == 24


def test_clear():
    log = EventLog()
    log.emit(0, "x")
    log.clear()
    assert len(log) == 0
