"""EventScheduler ordering, idle cost and EventLog bulk-append exactness."""

from repro.sim.events import Event, EventLog
from repro.sim.sched import EventScheduler


class TestEventScheduler:
    def test_fires_in_deadline_order(self):
        sched = EventScheduler()
        fired = []
        sched.schedule_at(30, lambda: fired.append("c"))
        sched.schedule_at(10, lambda: fired.append("a"))
        sched.schedule_at(20, lambda: fired.append("b"))
        assert sched.run_due(25) == 2
        assert fired == ["a", "b"]
        assert sched.run_due(25) == 0  # nothing re-fires
        assert sched.run_due(30) == 1  # deadline is inclusive
        assert fired == ["a", "b", "c"]
        assert not sched

    def test_equal_deadlines_fire_in_registration_order(self):
        sched = EventScheduler()
        fired = []
        for tag in ("first", "second", "third"):
            sched.schedule_at(100, lambda t=tag: fired.append(t))
        sched.run_due(100)
        assert fired == ["first", "second", "third"]

    def test_idle_run_due_is_a_noop(self):
        sched = EventScheduler()
        assert sched.run_due(10**18) == 0
        sched.schedule_at(50, lambda: None)
        assert sched.run_due(49) == 0
        assert len(sched) == 1
        assert sched.next_deadline_ns == 50

    def test_clear_drops_everything(self):
        sched = EventScheduler()
        sched.schedule_at(1, lambda: None)
        sched.clear()
        assert sched.next_deadline_ns is None
        assert sched.run_due(10) == 0

    def test_one_tick_can_cross_many_edges(self):
        sched = EventScheduler()
        counter = []
        for deadline in range(10):
            sched.schedule_at(deadline, lambda d=deadline: counter.append(d))
        assert sched.run_due(10**9) == 10
        assert counter == list(range(10))


class TestEventLogBulkAppend:
    def test_unbounded_log_always_allows_bulk(self):
        log = EventLog()
        append = log.bulk_appender(3)
        assert append is not None
        for t in (1, 2, 3):
            append(Event(t, "sgx.ocall", {"n": t}))
        log.bump_count("sgx.ocall", 3)
        assert len(log) == 3
        assert log.count("sgx.ocall") == 3

    def test_bulk_matches_emit_shared_exactly(self):
        detail = {"enclave": "eudm", "syscall": "read"}
        bulk, scalar = EventLog(capacity=100), EventLog(capacity=100)
        append = bulk.bulk_appender(5)
        for t in range(5):
            append(Event(t, "sgx.ocall", detail))
            scalar.emit_shared(t, "sgx.ocall", detail)
        bulk.bump_count("sgx.ocall", 5)
        assert list(bulk) == list(scalar)
        assert bulk.count("sgx.ocall") == scalar.count("sgx.ocall")

    def test_bounded_log_refuses_bulk_when_trim_could_fire(self):
        log = EventLog(capacity=10)
        for t in range(8):
            log.emit(t, "sgx.ocall")
        assert log.bulk_appender(2) is not None  # 8 + 2 == capacity: exact fit
        assert log.bulk_appender(3) is None  # would cross the bound mid-batch

    def test_fallback_path_keeps_trim_bookkeeping(self):
        log = EventLog(capacity=10)
        for t in range(10):
            log.emit(t, "warm")
        assert log.bulk_appender(1) is None
        detail = {"enclave": "eudm", "syscall": "read"}
        log.emit_shared(10, "sgx.ocall", detail)  # trims the oldest half
        assert len(log) <= 10
        assert log.count("sgx.ocall") == 1
        assert log.count("warm") == len(log) - 1
