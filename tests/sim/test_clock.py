"""Simulated clock semantics."""

import contextlib

import pytest

from repro.sim.clock import (
    NS_PER_MS,
    NS_PER_US,
    MeasurementNestingError,
    SimClock,
    TimeSpan,
)


def test_starts_at_zero():
    assert SimClock().now_ns == 0


def test_advance_accumulates():
    clock = SimClock()
    clock.advance(10)
    clock.advance(5)
    assert clock.now_ns == 15


def test_advance_rejects_negative():
    with pytest.raises(ValueError):
        SimClock().advance(-1)


def test_advance_cycles_converts_through_frequency():
    clock = SimClock()
    clock.advance_cycles(2_400, 2.4e9)  # 2400 cycles at 2.4 GHz = 1 us
    assert clock.now_ns == 1_000


def test_advance_cycles_rejects_bad_frequency():
    with pytest.raises(ValueError):
        SimClock().advance_cycles(100, 0)


def test_unit_helpers():
    clock = SimClock()
    clock.advance_us(1)
    clock.advance_ms(1)
    clock.advance_s(1)
    assert clock.now_ns == 1_000 + 1_000_000 + 1_000_000_000


def test_measure_captures_span():
    clock = SimClock()
    with clock.measure() as span:
        clock.advance_us(7)
    assert span.us == 7.0


def test_nested_measurements():
    clock = SimClock()
    with clock.measure() as outer:
        clock.advance_us(1)
        with clock.measure() as inner:
            clock.advance_us(2)
        clock.advance_us(3)
    assert inner.us == 2.0
    assert outer.us == 6.0


def test_span_unit_properties():
    span = TimeSpan(start_ns=0, end_ns=90 * NS_PER_MS)
    assert span.ms == 90.0
    assert span.seconds == 0.09
    assert span.minutes == pytest.approx(0.0015)


def test_measure_span_closed_after_exit():
    clock = SimClock()
    with clock.measure() as span:
        pass
    clock.advance_us(100)
    assert span.ns == 0  # span does not keep growing after the block


def test_deeply_nested_measurements_close_lifo():
    # The close path pops the open-measurement stack (O(1)); deep nesting
    # must unwind it exactly, leaving nothing open.
    clock = SimClock()
    spans = []
    with clock.measure() as a:
        spans.append(a)
        with clock.measure() as b:
            spans.append(b)
            with clock.measure() as c:
                spans.append(c)
                clock.advance_us(1)
            clock.advance_us(1)
        clock.advance_us(1)
    assert [span.us for span in spans] == [3.0, 2.0, 1.0]
    assert clock._open_measurements == []


def test_measure_rejects_out_of_order_close():
    # Spans are with-blocks, so they can only close LIFO; closing an
    # outer generator before its inner one raises a *real* exception —
    # an assert would vanish under ``python -O`` and silently corrupt
    # every still-open measurement.
    clock = SimClock()
    outer = clock.measure()
    inner = clock.measure()
    outer.__enter__()
    inner.__enter__()
    with pytest.raises(MeasurementNestingError, match="LIFO"):
        outer.__exit__(None, None, None)
    # Unwind the abandoned inner span so its generator does not warn at GC.
    with contextlib.suppress(MeasurementNestingError, IndexError):
        inner.__exit__(None, None, None)


def test_measure_misnesting_is_a_runtime_error():
    # Callers that guard broadly with ``except RuntimeError`` must catch
    # the misnesting failure too (it is corruption, not an assert).
    assert issubclass(MeasurementNestingError, RuntimeError)


def test_measure_close_on_empty_stack_raises():
    # Closing a span whose stack entry is already gone (e.g. the stack
    # was clobbered by a prior misnesting) must raise, not IndexError.
    clock = SimClock()
    span_ctx = clock.measure()
    span_ctx.__enter__()
    clock._open_measurements.clear()
    with pytest.raises(MeasurementNestingError):
        span_ctx.__exit__(None, None, None)
