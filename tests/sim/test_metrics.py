"""Bounded metric series: exact running stats over a trimmed raw window."""

import pytest

from repro.sim.metrics import BoundedSeries, RunningStats


class TestRunningStats:
    def test_empty(self):
        stats = RunningStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.minimum is None and stats.maximum is None

    def test_accumulates_exactly(self):
        stats = RunningStats()
        for value in (3.0, 1.0, 2.0):
            stats.add(value)
        assert stats.count == 3
        assert stats.total == 6.0
        assert stats.mean == 2.0
        assert (stats.minimum, stats.maximum) == (1.0, 3.0)


class TestBoundedSeries:
    def test_uncapped_behaves_like_a_list(self):
        series = BoundedSeries()
        for i in range(100):
            series.append(float(i))
        assert list(series) == [float(i) for i in range(100)]
        assert series[10:12] == [10.0, 11.0]
        assert series.stats.count == 100

    def test_cap_trims_oldest_half(self):
        series = BoundedSeries(cap=10)
        for i in range(25):
            series.append(float(i))
        assert len(series) <= 10
        # The newest sample always survives.
        assert series[-1] == 24.0
        # The retained window is a contiguous suffix of the appends.
        assert list(series) == [float(i) for i in range(25 - len(series), 25)]

    def test_stats_are_exact_despite_trimming(self):
        series = BoundedSeries(cap=8)
        values = [float(i * 7 % 13) for i in range(200)]
        for value in values:
            series.append(value)
        assert series.stats.count == 200
        assert series.stats.total == pytest.approx(sum(values))
        assert series.stats.minimum == min(values)
        assert series.stats.maximum == max(values)

    def test_tiny_cap_rejected(self):
        with pytest.raises(ValueError):
            BoundedSeries(cap=1)

    def test_init_iterable_counts_in_stats(self):
        series = BoundedSeries(cap=None, iterable=[1.0, 2.0])
        assert list(series) == [1.0, 2.0]
        assert series.stats.count == 2

    def test_extend_routes_through_append(self):
        series = BoundedSeries(cap=4)
        series.extend([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        assert series.stats.count == 6
        assert series.stats.total == 21.0
        assert series.stats.maximum == 6.0
        assert len(series) <= 4  # the cap applies to extended samples too
        assert series[-1] == 6.0

    def test_iadd_routes_through_append(self):
        series = BoundedSeries()
        series += [3.0, 4.0]
        series += (5.0,)
        assert isinstance(series, BoundedSeries)
        assert list(series) == [3.0, 4.0, 5.0]
        assert series.stats.count == 3
        assert series.stats.total == 12.0

    def test_insert_is_forbidden(self):
        series = BoundedSeries(iterable=[1.0])
        with pytest.raises(TypeError, match="append-only"):
            series.insert(0, 99.0)
        assert series.stats.count == 1
        assert list(series) == [1.0]

    def test_item_assignment_is_forbidden(self):
        series = BoundedSeries(iterable=[1.0, 2.0])
        with pytest.raises(TypeError, match="append-only"):
            series[0] = 99.0
        with pytest.raises(TypeError, match="append-only"):
            series[0:1] = [99.0, 98.0]
        assert list(series) == [1.0, 2.0]
        assert series.stats.count == 2

    def test_window_deletion_keeps_stats_exact(self):
        # Deletion only trims the retained window (like the cap trim);
        # stats cover everything ever appended by design.
        series = BoundedSeries(iterable=[1.0, 2.0, 3.0])
        del series[:2]
        assert list(series) == [3.0]
        assert series.stats.count == 3
        assert series.stats.total == 6.0
