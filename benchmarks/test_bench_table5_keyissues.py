"""E8 / Table V: the executed key-issue analysis.

Every KI's attack must succeed against the container deployment and fail
against the HMEE deployment — 13/13 mitigated, as the paper argues.
"""

from repro.experiments.tables import table5_key_issues
from repro.security.keyissues import format_table_v


def test_bench_table5_key_issues(benchmark, record_report):
    report = benchmark.pedantic(table5_key_issues, rounds=1, iterations=1)
    record_report(report)
    print()
    print(report.format())
