"""E9 / Table I: the enclave I/O contracts, regenerated and re-validated."""

from repro.experiments.tables import table1_enclave_io


def test_bench_table1_enclave_io(benchmark, record_report):
    report = benchmark.pedantic(table1_enclave_io, rounds=1, iterations=1)
    record_report(report)
    print()
    print(report.format())
