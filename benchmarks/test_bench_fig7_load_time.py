"""E1 / Fig 7: enclave load time of the P-AKA modules.

Paper: each module takes ≈1 minute (0.955–0.99 min) to become
operational; eUDM slowest.  Regenerates the three box distributions.
"""

from repro.experiments.figures import figure7_enclave_load_time

ITERATIONS = 60  # paper: 500; the distribution stabilises far earlier


def test_bench_fig7_enclave_load_time(benchmark, record_report, campaign):
    report = benchmark.pedantic(
        figure7_enclave_load_time,
        kwargs={"iterations": campaign(ITERATIONS, quick_size=15)},
        rounds=1,
        iterations=1,
    )
    record_report(report)
    # Print the figure's series (minutes per module).
    print()
    print(report.format())
