"""E-AVAIL: registration availability under injected faults.

Sweeps 0x/1x/2x/4x the baseline fault rates over identical warmed SGX
slices and records success rate, retry counts and tail latency per arm.
All outputs are simulated quantities, deterministic per ``(seed, plan)``.

Under ``--quick`` the arms register fewer UEs over the *same* 180 s fault
timeline, so the band checks still see the same outage windows; the
results files are left untouched.
"""

from repro.experiments.availability import availability_experiment

FULL_REGISTRATIONS = 120
QUICK_REGISTRATIONS = 30


def test_bench_availability(benchmark, campaign, record_report):
    registrations = campaign(FULL_REGISTRATIONS, quick_size=QUICK_REGISTRATIONS)
    report = benchmark.pedantic(
        availability_experiment,
        kwargs={"registrations": registrations},
        rounds=1,
        iterations=1,
    )
    record_report(report)
    print()
    print(report.format())
