"""E-ATTACK: survivability under adversarial signaling storms.

Sweeps attack arrival rate × AMF admission-control configuration over
identical warmed SGX slices and records the survivability curve per arm:
legitimate success against a sojourn deadline, tail latency, EENTER burn
in the enclave modules, admission shed counters and SLO alerts.  All
outputs are simulated quantities, byte-identical per ``(seed, config)``.

Under ``--quick`` the sweep shrinks to the CI smoke shape (two defenses,
one storm rate, fewer legitimate UEs over a shorter horizon); the band
checks still run but the results files are left untouched.
"""

from repro.experiments.survivability import survivability_experiment


def test_bench_survivability(benchmark, quick, record_report):
    kwargs = (
        {
            "legit": 8,
            "horizon_s": 3.0,
            "attack_rates": (0.0, 400.0),
            "defenses": ("none", "all"),
        }
        if quick
        else {}
    )
    report = benchmark.pedantic(
        survivability_experiment, kwargs=kwargs, rounds=1, iterations=1
    )
    record_report(report)
    print()
    print(report.format())
