"""Ablation benches for the design choices DESIGN.md calls out.

A1 preheat — the §IV-C rationale for ``sgx.preheat_enclave=true``.
A2 exitless — the §V-B7 optimization left off for production safety.
A3 HMEE backends — SGX vs SEV/TDX-style secure VM vs plain container.
A4 user-level TCP — mTCP/DPDK inside the enclave (§V-B7).
"""

from repro.experiments.ablations import (
    exitless_ablation,
    hmee_backend_comparison,
    preheat_ablation,
    userlevel_tcp_ablation,
)


def test_bench_ablation_preheat(benchmark, record_report, campaign, jobs):
    report = benchmark.pedantic(
        preheat_ablation,
        kwargs={"registrations": campaign(40, quick_size=20), "jobs": jobs},
        rounds=1,
        iterations=1,
    )
    record_report(report)
    print()
    print(report.format())


def test_bench_ablation_exitless(benchmark, record_report, campaign, jobs):
    report = benchmark.pedantic(
        exitless_ablation,
        kwargs={"registrations": campaign(80, quick_size=40), "jobs": jobs},
        rounds=1,
        iterations=1,
    )
    record_report(report)
    print()
    print(report.format())


def test_bench_ablation_hmee_backends(benchmark, record_report, campaign, jobs):
    report = benchmark.pedantic(
        hmee_backend_comparison,
        kwargs={"registrations": campaign(80, quick_size=30), "jobs": jobs},
        rounds=1,
        iterations=1,
    )
    record_report(report)
    print()
    print(report.format())


def test_bench_ablation_userlevel_tcp(benchmark, record_report, campaign):
    report = benchmark.pedantic(
        userlevel_tcp_ablation,
        kwargs={"requests": campaign(150, quick_size=60)},
        rounds=1,
        iterations=1,
    )
    record_report(report)
    print()
    print(report.format())
