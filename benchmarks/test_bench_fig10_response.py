"""E4 / Fig 10 + Table II (R): stable and initial response times.

Paper: stable SGX response is 2.2–2.9x the container baseline; the very
first response after deployment is ≈18–21x the stable one (lazy
driver/network-stack loading inside the enclave).
"""

from repro.experiments.figures import figure10_response_time

REGISTRATIONS = 250  # paper: 500


def test_bench_fig10_response_time(benchmark, record_report, campaign, jobs):
    report = benchmark.pedantic(
        figure10_response_time,
        kwargs={"registrations": campaign(REGISTRATIONS, quick_size=40), "jobs": jobs},
        rounds=1,
        iterations=1,
    )
    record_report(report)
    print()
    print(report.format())
    for name in ("eudm", "eausf", "eamf"):
        print(
            f"  {name}: R_S x{report.derived[f'{name}_R_ratio']:.2f}, "
            f"R_I {report.derived[f'{name}_R_initial_ms']:.2f} ms "
            f"({report.derived[f'{name}_Ri_over_Rs']:.1f}x stable)"
        )
