"""Host-side sampling profiler for the registration hot path.

``repro profile --collapsed`` folds *simulated* nanoseconds out of the
span tree — by design it is bit-identical across host-perf rewrites, so
it cannot show where the *host* CPU goes.  This script samples the real
interpreter stack (``sys._current_frames()`` from a watcher thread, the
same technique py-spy uses in-process) while the simulator runs
registrations, and folds the samples into the standard collapsed-stack
format via :func:`repro.obs.flame.collapsed_text`.

The committed before/after profiles in ``benchmarks/profiles/`` are the
evidence trail for the profiler-guided hot-path rewrite::

    PYTHONPATH=src python benchmarks/host_profile.py \
        --registrations 200 --out benchmarks/profiles/registration_host.collapsed

Sampling is wall-clock and therefore not deterministic run-to-run; the
profiles are diagnostics, never inputs to any experiment or test.
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from collections import Counter


def _fold_frame(frame) -> tuple:
    stack = []
    while frame is not None:
        code = frame.f_code
        # No spaces in the label: the collapsed grammar's sample count is
        # whatever follows the last space on the line.
        stack.append(f"{code.co_filename.rsplit('/', 1)[-1]}:{code.co_name}")
        frame = frame.f_back
    return tuple(reversed(stack))


class StackSampler:
    """Samples one target thread's Python stack at a fixed interval."""

    def __init__(self, target_thread_id: int, interval_s: float = 0.001) -> None:
        self.target_thread_id = target_thread_id
        self.interval_s = interval_s
        self.samples: Counter = Counter()
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.is_set():
            frame = sys._current_frames().get(self.target_thread_id)
            if frame is not None:
                self.samples[_fold_frame(frame)] += 1
            time.sleep(self.interval_s)

    def __enter__(self) -> "StackSampler":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join()


def profile_registrations(registrations: int, interval_us: int) -> Counter:
    from repro.experiments.harness import warmed_testbed
    from repro.paka.deploy import IsolationMode

    testbed = warmed_testbed(IsolationMode.SGX, seed=7)
    subscribers = [testbed.add_subscriber() for _ in range(registrations)]
    sampler = StackSampler(threading.get_ident(), interval_us / 1e6)
    with sampler:
        for ue in subscribers:
            outcome = testbed.register(ue, establish_session=False)
            if not outcome.success:
                raise RuntimeError(f"registration failed: {outcome.failure_cause}")
    return sampler.samples


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--registrations", type=int, default=200)
    parser.add_argument(
        "--interval-us", type=int, default=1000,
        help="sampling interval in microseconds (default 1000 = 1 kHz)",
    )
    parser.add_argument(
        "--out", default="-",
        help="output file for the collapsed stacks (default: stdout)",
    )
    args = parser.parse_args(argv)

    from repro.obs.flame import collapsed_text

    samples = profile_registrations(args.registrations, args.interval_us)
    text = collapsed_text(dict(samples))
    if args.out == "-":
        print(text)
    else:
        with open(args.out, "w") as fh:
            fh.write(text)
        total = sum(samples.values())
        print(
            f"{total} samples over {args.registrations} registrations "
            f"-> {args.out}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
