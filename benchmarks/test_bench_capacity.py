"""E-CAP: mass-registration capacity at 1k and 10k UEs.

The simulated outputs (registrations per simulated second, transitions
per registration) are deterministic and recorded via ``record_report``
like every other benchmark.  The *host* throughput of the 10k arm — the
number the wire-speed hot-path work is accountable to — is written to
``BENCH_hostperf.json`` at full scale, replacing any previous entry with
the same label so reruns do not grow the history unboundedly.

Under ``--quick`` both arms shrink to 200 registrations: band checks
still run (the stable regime is scale-independent) but neither the
results files nor ``BENCH_hostperf.json`` are touched.
"""

import json
import pathlib
import platform
import time

from repro.experiments.capacity import capacity_campaign

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
HOSTPERF_PATH = REPO_ROOT / "BENCH_hostperf.json"

FULL_10K = 10_000
FULL_1K = 1_000
QUICK_SIZE = 200

# The 10k arm must stay interactive on a developer machine; the seed
# baseline ran at ~69 regs/s (2.4 minutes for 10k).
MAX_WALL_S_10K = 60.0


def _record_hostperf(label: str, ues: int, wall_s: float) -> None:
    document = (
        json.loads(HOSTPERF_PATH.read_text())
        if HOSTPERF_PATH.exists()
        else {"description": "host wall-clock performance history", "runs": []}
    )
    run = {
        "label": label,
        "python": platform.python_version(),
        "capacity": {
            "ues": ues,
            "wall_s": round(wall_s, 2),
            "registrations_per_s": round(ues / wall_s, 1),
        },
    }
    document["runs"] = [r for r in document["runs"] if r.get("label") != label] + [run]
    HOSTPERF_PATH.write_text(json.dumps(document, indent=2) + "\n")


def test_bench_capacity_1k(benchmark, campaign, record_report):
    ues = campaign(FULL_1K, quick_size=QUICK_SIZE)
    report = benchmark.pedantic(
        capacity_campaign, kwargs={"ues": ues}, rounds=1, iterations=1
    )
    record_report(report)
    print()
    print(report.format())


def test_bench_capacity_10k(benchmark, campaign, record_report, request):
    ues = campaign(FULL_10K, quick_size=QUICK_SIZE)
    start = time.perf_counter()
    report = benchmark.pedantic(
        capacity_campaign, kwargs={"ues": ues}, rounds=1, iterations=1
    )
    wall_s = time.perf_counter() - start
    record_report(report)
    benchmark.extra_info["host_wall_s"] = round(wall_s, 2)
    benchmark.extra_info["host_regs_per_s"] = round(ues / wall_s, 1)
    print()
    print(report.format())
    print(f"  host wall-clock: {wall_s:.2f}s ({ues / wall_s:.1f} regs/s)")

    if not request.config.getoption("--quick"):
        _record_hostperf("capacity-10k", ues, wall_s)
        assert wall_s < MAX_WALL_S_10K, (
            f"10k-UE campaign took {wall_s:.1f}s host wall-clock "
            f"(budget {MAX_WALL_S_10K:.0f}s)"
        )
