"""Table II consolidated: every overhead factor in one regeneration.

This is the paper's headline table; the bench prints the same per-module
rows (L_F, L_T, R_S^SGX/R^C, R_I^SGX/R_S^SGX) plus the session-setup
summary the table's discussion cites.
"""

from repro.experiments.tables import table2_overheads

REGISTRATIONS = 150


def test_bench_table2_sgx_overheads(benchmark, record_report, campaign):
    report = benchmark.pedantic(
        table2_overheads,
        kwargs={"registrations": campaign(REGISTRATIONS, quick_size=40)},
        rounds=1,
        iterations=1,
    )
    record_report(report)
    print()
    print("Module | L_F    | L_T    | R_S/R^C | R_I/R_S  (paper in parens)")
    for row in report.rows:
        print(
            f"{row['module']:>6} | x{row['L_F']:.2f} ({row['paper_L_F']}) "
            f"| x{row['L_T']:.2f} ({row['paper_L_T']}) "
            f"| x{row['R_S^SGX/R^C']:.2f} ({row['paper_R']}) "
            f"| x{row['R_I^SGX/R_S^SGX']:.1f} ({row['paper_Ri_Rs']})"
        )
    print(
        f"session setup {report.derived['session_setup_ms']:.2f} ms; "
        f"SGX {report.derived['sgx_added_ms']:.2f} ms "
        f"({report.derived['sgx_share_percent']:.2f} %)"
    )
