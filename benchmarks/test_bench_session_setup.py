"""E6 / Table II discussion: end-to-end session setup and the SGX share.

Paper: 62.38 ms end-to-end with SGX contributing 3.48 ms (5.58 %).  The
reproduction asserts the same shape: ≈60 ms total, SGX a small
single-digit-percent fraction.
"""

from repro.experiments.session_setup import session_setup_experiment

REGISTRATIONS = 80


def test_bench_session_setup(benchmark, record_report, campaign):
    report = benchmark.pedantic(
        session_setup_experiment,
        kwargs={"registrations": campaign(REGISTRATIONS, quick_size=30)},
        rounds=1,
        iterations=1,
    )
    record_report(report)
    print()
    print(report.format())
    print(
        f"  setup {report.derived['sgx_setup_ms']:.2f} ms, SGX adds "
        f"{report.derived['sgx_added_ms']:.2f} ms "
        f"({report.derived['sgx_share_percent']:.2f} %)"
    )
