"""One-off driver for the E-SCALE million-UE run.

Usage::

    PYTHONPATH=src python benchmarks/run_1m_scale.py [UES] [SHARDS] [JOBS]

Writes the merged report to ``benchmarks/results/`` like the pytest
benchmarks do.  Kept as a script (rather than a benchmark test) because
the run is tens of minutes on one core — far beyond any CI budget — and
is only re-run when the scale-out numbers in EXPERIMENTS.md need
refreshing.
"""

import pathlib
import sys
import time

from repro.experiments.export import report_to_json
from repro.experiments.shard import sharded_campaign

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def main(argv) -> int:
    ues = int(argv[1]) if len(argv) > 1 else 1_000_000
    shards = int(argv[2]) if len(argv) > 2 else 16
    jobs = int(argv[3]) if len(argv) > 3 else 1

    start = time.perf_counter()
    result = sharded_campaign(ues=ues, shards=shards, jobs=jobs)
    wall_s = time.perf_counter() - start

    report = result.report
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{report.experiment_id}.txt").write_text(report.format() + "\n")
    (RESULTS_DIR / f"{report.experiment_id}.json").write_text(
        report_to_json(report) + "\n"
    )
    print(report.format())
    print(f"  host wall-clock: {wall_s:.1f}s ({ues / wall_s:.1f} regs/s)")
    failed = report.failed_checks()
    if failed:
        for check in failed:
            print(f"  FAILED: {check.format()}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
