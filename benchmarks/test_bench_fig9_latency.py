"""E3 / Fig 9 + Table II (L_F, L_T): functional and total latency.

Paper: SGX incurs 1.2–1.5x on L_F and 1.86–2.43x on L_T relative to the
unprotected container deployment, with eUDM highest in absolute terms.
"""

from repro.experiments.figures import figure9_functional_total_latency

REGISTRATIONS = 250  # paper: 500


def test_bench_fig9_functional_and_total_latency(benchmark, record_report, campaign, jobs):
    report = benchmark.pedantic(
        figure9_functional_total_latency,
        kwargs={"registrations": campaign(REGISTRATIONS, quick_size=40), "jobs": jobs},
        rounds=1,
        iterations=1,
    )
    record_report(report)
    print()
    print(report.format())
    # The headline Table II ratios.
    for name in ("eudm", "eausf", "eamf"):
        print(
            f"  {name}: L_F x{report.derived[f'{name}_LF_ratio']:.2f} "
            f"L_T x{report.derived[f'{name}_LT_ratio']:.2f}"
        )
