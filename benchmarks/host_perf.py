"""Host-performance harness: how fast the simulator itself runs.

Everything in ``benchmarks/`` measures *simulated* time — the scientific
output.  This script measures the *host* wall-clock cost of producing it,
so crypto fast-path work (the T-table AES rewrite, per-key cipher caches)
can be tracked with hard numbers:

* one-shot AES blocks/s      — ``aes128_encrypt_block`` per call
* keyed AES blocks/s         — ``AES128.encrypt_block`` on a held cipher
* registrations/s            — stable-regime 5G-AKA registrations on a
                               warmed SGX testbed (the simulator hot path)
* suite wall-clock (opt-in)  — one full ``pytest benchmarks`` run

Results land in ``BENCH_hostperf.json`` at the repo root; each invocation
appends to the ``runs`` history so regressions are visible in the diff.

Usage::

    PYTHONPATH=src python benchmarks/host_perf.py [--suite] [--label TEXT]
        [--quick] [--fail-below REGS_PER_S]

``--quick`` shrinks the batches to CI-smoke scale and skips the history
file (so smoke runs never pollute the committed numbers); ``--fail-below``
turns the registrations/s measurement into a regression gate.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import subprocess
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_hostperf.json"

BLOCK_BATCH = 20_000
REGISTRATIONS = 20


def measure_aes_blocks(batch: int = BLOCK_BATCH) -> dict:
    """Blocks/s for the one-shot API and for a held keyed cipher."""
    from repro.crypto.aes import AES128, aes128_encrypt_block

    key = bytes(range(16))
    block = bytes(range(16, 32))

    start = time.perf_counter()
    for _ in range(batch):
        aes128_encrypt_block(key, block)
    oneshot_s = time.perf_counter() - start

    cipher = AES128(key)
    encrypt = cipher.encrypt_block
    start = time.perf_counter()
    for _ in range(batch):
        encrypt(block)
    keyed_s = time.perf_counter() - start

    # Bulk CTR over a NAS-sized message (the actual hot-path shape).
    message = bytes(240)
    nonce = bytes(range(32, 48))
    ctr_batch = max(1, batch // 4)
    ctr = cipher.ctr
    start = time.perf_counter()
    for _ in range(ctr_batch):
        ctr(nonce, message)
    ctr_s = time.perf_counter() - start

    return {
        "block_batch": batch,
        "oneshot_blocks_per_s": round(batch / oneshot_s, 1),
        "keyed_blocks_per_s": round(batch / keyed_s, 1),
        "ctr_240B_msgs_per_s": round(ctr_batch / ctr_s, 1),
    }


def measure_registrations(registrations: int = REGISTRATIONS) -> dict:
    """Wall-clock for stable-regime registrations on a warmed SGX testbed."""
    from repro.experiments.harness import warmed_testbed
    from repro.paka.deploy import IsolationMode

    testbed = warmed_testbed(IsolationMode.SGX, seed=7)
    start = time.perf_counter()
    for _ in range(registrations):
        ue = testbed.add_subscriber()
        outcome = testbed.register(ue, establish_session=False)
        if not outcome.success:
            raise RuntimeError(f"registration failed: {outcome.failure_cause}")
    wall_s = time.perf_counter() - start

    return {
        "registrations": registrations,
        "wall_s": round(wall_s, 4),
        "registrations_per_s": round(registrations / wall_s, 2),
    }


def measure_tracer_overhead(registrations: int = REGISTRATIONS, repeats: int = 3) -> dict:
    """Host-time cost of the *disabled* instrumentation hooks.

    Compares registrations with ``host.tracer = None`` (the default)
    against an attached-but-disabled ``Tracer`` — the worst case for the
    always-on guard checks (~1 080 OCALL hooks per registration).  Uses
    best-of-N wall times so scheduler noise doesn't dominate the ratio.
    """
    from repro.experiments.harness import warmed_testbed
    from repro.obs.trace import Tracer
    from repro.paka.deploy import IsolationMode

    def one_wall_s(tracer_factory) -> float:
        testbed = warmed_testbed(IsolationMode.SGX, seed=7)
        testbed.host.tracer = tracer_factory(testbed)
        start = time.perf_counter()
        for _ in range(registrations):
            ue = testbed.add_subscriber()
            outcome = testbed.register(ue, establish_session=False)
            if not outcome.success:
                raise RuntimeError(f"registration failed: {outcome.failure_cause}")
        return time.perf_counter() - start

    # Interleave the two arms so host-side drift (frequency scaling,
    # allocator warm-up, noisy neighbours) hits both equally; best-of-N
    # per arm then compares the cleanest sample of each.
    none_s = float("inf")
    disabled_s = float("inf")
    for _ in range(repeats):
        none_s = min(none_s, one_wall_s(lambda testbed: None))
        disabled_s = min(
            disabled_s,
            one_wall_s(lambda testbed: Tracer(testbed.host.clock, enabled=False)),
        )
    return {
        "registrations": registrations,
        "repeats": repeats,
        "tracer_none_wall_s": round(none_s, 4),
        "tracer_disabled_wall_s": round(disabled_s, 4),
        "disabled_overhead_percent": round(100.0 * (disabled_s / none_s - 1.0), 2),
    }


def measure_monitor_overhead(registrations: int = REGISTRATIONS, repeats: int = 3) -> dict:
    """Host-time cost of an *armed* continuous-monitoring scraper.

    Compares registrations with ``host.monitor = None`` (the default)
    against a fully installed :class:`~repro.obs.scrape.Scraper` on the
    standard 1 s simulated-time cadence — hook checks on every
    registration plus whatever scrapes actually land on the timeline.
    Same interleaved best-of-N discipline as the tracer measurement.
    """
    from repro.experiments.harness import warmed_testbed
    from repro.obs.scrape import Scraper
    from repro.paka.deploy import IsolationMode

    def one_wall_s(armed: bool) -> float:
        testbed = warmed_testbed(IsolationMode.SGX, seed=7)
        if armed:
            Scraper.for_testbed(testbed, cadence_s=1.0).install(testbed.host)
        start = time.perf_counter()
        for _ in range(registrations):
            ue = testbed.add_subscriber()
            outcome = testbed.register(ue, establish_session=False)
            if not outcome.success:
                raise RuntimeError(f"registration failed: {outcome.failure_cause}")
        return time.perf_counter() - start

    none_s = float("inf")
    armed_s = float("inf")
    for _ in range(repeats):
        none_s = min(none_s, one_wall_s(False))
        armed_s = min(armed_s, one_wall_s(True))
    return {
        "registrations": registrations,
        "repeats": repeats,
        "monitor_none_wall_s": round(none_s, 4),
        "monitor_armed_wall_s": round(armed_s, 4),
        "armed_overhead_percent": round(100.0 * (armed_s / none_s - 1.0), 2),
    }


def measure_suite() -> dict:
    """Wall-clock of one full benchmark-suite run (the expensive bit)."""
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "benchmarks", "-q", "-p", "no:cacheprovider"],
        cwd=REPO_ROOT,
        env={**__import__("os").environ, "PYTHONPATH": "src"},
        capture_output=True,
        text=True,
    )
    wall_s = time.perf_counter() - start
    if proc.returncode != 0:
        raise RuntimeError(
            f"benchmark suite failed (exit {proc.returncode}):\n{proc.stdout[-2000:]}"
        )
    return {"suite_wall_s": round(wall_s, 2)}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--suite",
        action="store_true",
        help="also time one full 'pytest benchmarks' run (minutes, not seconds)",
    )
    parser.add_argument(
        "--label", default="", help="free-text tag stored with this run"
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=DEFAULT_OUTPUT,
        help=f"results file (default: {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-smoke scale; measures but does not append to the history file",
    )
    parser.add_argument(
        "--fail-below",
        type=float,
        default=None,
        metavar="REGS_PER_S",
        help="exit non-zero if registrations/s lands below this floor",
    )
    parser.add_argument(
        "--tracer-gate",
        type=float,
        default=None,
        metavar="PERCENT",
        help="measure disabled-tracer hook overhead and exit non-zero if "
        "it exceeds this percentage (ISSUE 4 budget: 3)",
    )
    parser.add_argument(
        "--monitor-gate",
        type=float,
        default=None,
        metavar="PERCENT",
        help="measure armed-scraper monitoring overhead and exit non-zero "
        "if it exceeds this percentage (ISSUE 5 budget: 3)",
    )
    args = parser.parse_args(argv)

    block_batch = BLOCK_BATCH // 5 if args.quick else BLOCK_BATCH
    registrations = max(10, REGISTRATIONS // 2) if args.quick else REGISTRATIONS

    run = {
        "label": args.label,
        "python": platform.python_version(),
        "aes": measure_aes_blocks(block_batch),
        "registration": measure_registrations(registrations),
    }
    if args.tracer_gate is not None:
        run["tracer_overhead"] = measure_tracer_overhead(registrations)
    if args.monitor_gate is not None:
        run["monitor_overhead"] = measure_monitor_overhead(registrations)
    if args.suite:
        run.update(measure_suite())

    if not args.quick:
        if args.output.exists():
            document = json.loads(args.output.read_text())
        else:
            document = {
                "description": "host wall-clock performance history",
                "runs": [],
            }
        document["runs"].append(run)
        args.output.write_text(json.dumps(document, indent=2) + "\n")

    print(json.dumps(run, indent=2))
    if not args.quick:
        print(f"recorded -> {args.output}")

    regs_per_s = run["registration"]["registrations_per_s"]
    if args.fail_below is not None and regs_per_s < args.fail_below:
        print(
            f"FAIL: {regs_per_s} registrations/s below the "
            f"--fail-below floor of {args.fail_below}",
            file=sys.stderr,
        )
        return 1
    if args.tracer_gate is not None:
        overhead = run["tracer_overhead"]["disabled_overhead_percent"]
        if overhead > args.tracer_gate:
            print(
                f"FAIL: disabled-tracer hook overhead {overhead}% exceeds "
                f"the --tracer-gate budget of {args.tracer_gate}%",
                file=sys.stderr,
            )
            return 1
    if args.monitor_gate is not None:
        overhead = run["monitor_overhead"]["armed_overhead_percent"]
        if overhead > args.monitor_gate:
            print(
                f"FAIL: armed-scraper monitoring overhead {overhead}% exceeds "
                f"the --monitor-gate budget of {args.monitor_gate}%",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
