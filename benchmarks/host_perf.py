"""Host-performance harness: how fast the simulator itself runs.

Everything in ``benchmarks/`` measures *simulated* time — the scientific
output.  This script measures the *host* wall-clock cost of producing it,
so crypto fast-path work (the T-table AES rewrite, per-key cipher caches)
can be tracked with hard numbers:

* one-shot AES blocks/s      — ``aes128_encrypt_block`` per call
* keyed AES blocks/s         — ``AES128.encrypt_block`` on a held cipher
* MILENAGE vectors/s         — full f1 + f2345 authentication vectors on
                               a held ``Milenage`` (the AKA crypto core)
* SBI roundtrips/s           — ``dumps_flat``/``loads_object`` over a
                               representative registration body set
* registrations/s            — stable-regime 5G-AKA registrations on a
                               warmed SGX testbed (the simulator hot path)
* capacity regs/s (opt-in)   — host wall over a full ``--capacity N``
                               UE campaign (the 10k/100k-UE scale runs)
* sharded regs/s (opt-in)    — host wall + serial-vs-fanned speedup of
                               the partitioned ``--sharded-capacity``
                               campaign (the million-UE scale-out path)
* suite wall-clock (opt-in)  — one full ``pytest benchmarks`` run

Results land in ``BENCH_hostperf.json`` at the repo root; each invocation
appends to the ``runs`` history so regressions are visible in the diff.

Usage::

    PYTHONPATH=src python benchmarks/host_perf.py [--suite] [--label TEXT]
        [--quick] [--fail-below REGS_PER_S]

``--quick`` shrinks the batches to CI-smoke scale and skips the history
file (so smoke runs never pollute the committed numbers); ``--fail-below``
turns the registrations/s measurement into a regression gate.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import subprocess
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_hostperf.json"

BLOCK_BATCH = 20_000
# Post-rewrite a registration costs ~3 ms of host time, so 100 samples
# is still sub-second; at 10–20 samples the regs/s rate swung ±15% on a
# noisy host, which is too loose for a --fail-below floor.
REGISTRATIONS = 100
QUICK_REGISTRATIONS = 30


def measure_aes_blocks(batch: int = BLOCK_BATCH) -> dict:
    """Blocks/s for the one-shot API and for a held keyed cipher."""
    from repro.crypto.aes import AES128, aes128_encrypt_block

    key = bytes(range(16))
    block = bytes(range(16, 32))

    start = time.perf_counter()
    for _ in range(batch):
        aes128_encrypt_block(key, block)
    oneshot_s = time.perf_counter() - start

    cipher = AES128(key)
    encrypt = cipher.encrypt_block
    start = time.perf_counter()
    for _ in range(batch):
        encrypt(block)
    keyed_s = time.perf_counter() - start

    # Bulk CTR over a NAS-sized message (the actual hot-path shape).
    message = bytes(240)
    nonce = bytes(range(32, 48))
    ctr_batch = max(1, batch // 4)
    ctr = cipher.ctr
    start = time.perf_counter()
    for _ in range(ctr_batch):
        ctr(nonce, message)
    ctr_s = time.perf_counter() - start

    return {
        "block_batch": batch,
        "oneshot_blocks_per_s": round(batch / oneshot_s, 1),
        "keyed_blocks_per_s": round(batch / keyed_s, 1),
        "ctr_240B_msgs_per_s": round(ctr_batch / ctr_s, 1),
    }


def measure_milenage(batch: int = BLOCK_BATCH // 4) -> dict:
    """Full MILENAGE authentication vectors/s on a held ``Milenage``.

    One vector is the batched f1 + f2345 pass (MAC-A, RES, CK, IK, AK) —
    the UDM/USIM cost of every 5G-AKA run, and the unit the bulk-crypto
    rewrite optimises.  RAND varies per call so the per-RAND TEMP cache
    cannot short-circuit the measurement.
    """
    from repro.crypto.milenage import Milenage

    mil = Milenage(bytes(range(16)), bytes(range(16, 32)))
    sqn = bytes(6)
    amf = b"\x80\x00"
    rands = [i.to_bytes(16, "big") for i in range(batch)]

    generate = mil.generate
    start = time.perf_counter()
    for rand in rands:
        generate(rand, sqn, amf)
    wall_s = time.perf_counter() - start

    return {
        "vector_batch": batch,
        "milenage_vectors_per_s": round(batch / wall_s, 1),
    }


def measure_sbi_roundtrips(batch: int = BLOCK_BATCH // 4) -> dict:
    """Serialize+parse roundtrips/s over a registration's SBI body set.

    One roundtrip pushes a representative mix of the ~14 flat JSON bodies
    a registration exchanges (auth vectors, SUCI resolution, confirmation,
    session setup) through ``dumps_flat`` and back through
    ``loads_object`` — the fast-serialization layer's unit of work.
    """
    from repro.net.codec import dumps_flat, loads_object

    bodies = [
        {"supi": "imsi-001010000000001", "servingNetworkName": "5G:mnc001.mcc001.3gppnetwork.org"},
        {
            "rand": "00112233445566778899aabbccddeeff",
            "autn": "ffeeddccbbaa99887766554433221100",
            "hxresStar": "0f1e2d3c4b5a69788796a5b4c3d2e1f0" * 2,
            "authCtxId": "ctx-000001",
        },
        {"resStar": "f0e1d2c3b4a5968778695a4b3c2d1e0f" * 2},
        {"authResult": "AUTHENTICATION_SUCCESS", "supi": "imsi-001010000000001", "kseaf": "00" * 32},
        {"pduSessionId": 1, "dnn": "internet", "sscMode": 1, "established": True},
    ]

    start = time.perf_counter()
    for _ in range(batch):
        for body in bodies:
            loads_object(dumps_flat(body))
    wall_s = time.perf_counter() - start

    return {
        "roundtrip_batch": batch,
        "bodies_per_roundtrip": len(bodies),
        "sbi_roundtrips_per_s": round(batch / wall_s, 1),
    }


def measure_capacity(ues: int) -> dict:
    """Host wall-clock over one full capacity campaign (``ues`` UEs).

    The campaign's committed report carries only simulated results; the
    host-side throughput of producing them belongs here, next to the
    other wall-clock numbers, so the 10k/100k-UE scale arms gate on it.
    """
    from repro.experiments.capacity import capacity_campaign

    start = time.perf_counter()
    report = capacity_campaign(ues=ues)
    wall_s = time.perf_counter() - start

    return {
        "ues": ues,
        "wall_s": round(wall_s, 2),
        "host_regs_per_s": round(ues / wall_s, 2),
        "success_rate": report.derived["success_rate"],
        "simulated_regs_per_s": report.derived["simulated_regs_per_s"],
    }


def measure_sharded_capacity(ues: int, shards: int, jobs: int) -> dict:
    """Host wall-clock speedup of the partitioned capacity campaign.

    Runs the same ``ues``-UE campaign twice — once serially (``jobs=1``)
    and once fanned out over ``jobs`` worker processes — and reports the
    wall-clock speedup.  The merged reports are byte-identical by
    contract (asserted here), so the speedup is pure harness
    parallelism, never a change in the simulated science.
    """
    from repro.experiments.export import report_to_json
    from repro.experiments.parallel import default_jobs
    from repro.experiments.shard import sharded_campaign

    jobs = jobs or default_jobs()

    start = time.perf_counter()
    serial = sharded_campaign(ues=ues, shards=shards, jobs=1)
    serial_wall_s = time.perf_counter() - start

    start = time.perf_counter()
    fanned = sharded_campaign(ues=ues, shards=shards, jobs=jobs)
    fanned_wall_s = time.perf_counter() - start

    if report_to_json(fanned.report) != report_to_json(serial.report):
        raise RuntimeError("sharded campaign reports diverged across --jobs")

    return {
        "ues": ues,
        "shards": shards,
        "jobs": jobs,
        "schedulable_cpus": default_jobs(),
        "serial_wall_s": round(serial_wall_s, 2),
        "wall_s": round(fanned_wall_s, 2),
        "sharded_regs_per_s": round(ues / fanned_wall_s, 2),
        "speedup": round(serial_wall_s / fanned_wall_s, 2),
        "simulated_regs_per_s": fanned.report.derived["simulated_regs_per_s"],
    }


def measure_registrations(registrations: int = REGISTRATIONS) -> dict:
    """Wall-clock for stable-regime registrations on a warmed SGX testbed."""
    from repro.experiments.harness import warmed_testbed
    from repro.paka.deploy import IsolationMode

    testbed = warmed_testbed(IsolationMode.SGX, seed=7)
    start = time.perf_counter()
    for _ in range(registrations):
        ue = testbed.add_subscriber()
        outcome = testbed.register(ue, establish_session=False)
        if not outcome.success:
            raise RuntimeError(f"registration failed: {outcome.failure_cause}")
    wall_s = time.perf_counter() - start

    return {
        "registrations": registrations,
        "wall_s": round(wall_s, 4),
        "registrations_per_s": round(registrations / wall_s, 2),
    }


# Overhead gates compare two arms whose true difference is ~1% — far
# below this-host noise (CPU steal, allocator state, GC pauses) at any
# whole-arm granularity.  The estimator therefore pairs the arms at
# *registration* granularity on two identically seeded testbeds, times
# each registration of each arm back to back with GC paused, and takes a
# trimmed mean of the per-pair deltas (the noisiest 10% of pairs by
# |delta| dropped).  Whole-arm best-of-N was ±10% on the same host; this
# lands within ±1.5%.
OVERHEAD_REGISTRATIONS = 150
_TRIM_FRACTION = 0.10


def _paired_overhead(arm, registrations: int) -> dict:
    """Percent host-time overhead of ``arm(testbed)`` vs an untouched twin."""
    import gc

    from repro.experiments.harness import warmed_testbed
    from repro.paka.deploy import IsolationMode

    control = warmed_testbed(IsolationMode.SGX, seed=7)
    armed = warmed_testbed(IsolationMode.SGX, seed=7)
    arm(armed)

    def one(testbed) -> float:
        ue = testbed.add_subscriber()
        start = time.perf_counter()
        outcome = testbed.register(ue, establish_session=False)
        elapsed = time.perf_counter() - start
        if not outcome.success:
            raise RuntimeError(f"registration failed: {outcome.failure_cause}")
        return elapsed

    bases = []
    deltas = []
    gc.collect()
    gc.disable()
    try:
        for _ in range(registrations):
            base = one(control)
            bases.append(base)
            deltas.append(one(armed) - base)
    finally:
        gc.enable()

    order = sorted(range(registrations), key=lambda i: abs(deltas[i]))
    keep = order[: registrations - int(registrations * _TRIM_FRACTION)]
    base_s = sum(bases[i] for i in keep)
    armed_s = base_s + sum(deltas[i] for i in keep)
    return {
        "registrations": registrations,
        "trimmed_pairs": registrations - len(keep),
        "base_wall_s": round(base_s, 4),
        "armed_wall_s": round(armed_s, 4),
        "overhead_percent": round(100.0 * (armed_s / base_s - 1.0), 2),
    }


def measure_tracer_overhead(registrations: int = OVERHEAD_REGISTRATIONS) -> dict:
    """Host-time cost of the *disabled* instrumentation hooks.

    Compares registrations with ``host.tracer = None`` (the default)
    against an attached-but-disabled ``Tracer`` — the worst case for the
    always-on guard checks (~1 080 OCALL hooks per registration).
    """
    from repro.obs.trace import Tracer

    result = _paired_overhead(
        lambda tb: setattr(tb.host, "tracer", Tracer(tb.host.clock, enabled=False)),
        registrations,
    )
    return {
        "registrations": result["registrations"],
        "trimmed_pairs": result["trimmed_pairs"],
        "tracer_none_wall_s": result["base_wall_s"],
        "tracer_disabled_wall_s": result["armed_wall_s"],
        "disabled_overhead_percent": result["overhead_percent"],
    }


def measure_monitor_overhead(registrations: int = OVERHEAD_REGISTRATIONS) -> dict:
    """Host-time cost of an *armed* continuous-monitoring scraper.

    Compares registrations with ``host.monitor = None`` (the default)
    against a fully installed :class:`~repro.obs.scrape.Scraper` on the
    standard 1 s simulated-time cadence — hook checks on every
    registration plus whatever scrapes actually land on the timeline.
    """
    from repro.obs.scrape import Scraper

    result = _paired_overhead(
        lambda tb: Scraper.for_testbed(tb, cadence_s=1.0).install(tb.host),
        registrations,
    )
    return {
        "registrations": result["registrations"],
        "trimmed_pairs": result["trimmed_pairs"],
        "monitor_none_wall_s": result["base_wall_s"],
        "monitor_armed_wall_s": result["armed_wall_s"],
        "armed_overhead_percent": result["overhead_percent"],
    }


def measure_attack_overhead(registrations: int = OVERHEAD_REGISTRATIONS) -> dict:
    """Host-time cost of the quiescent attack plane on legit traffic.

    Compares registrations on an untouched testbed against one carrying
    the whole adversarial apparatus at rest: an armed-but-permissive
    :class:`~repro.fivegc.admission.AdmissionController` (every arrival
    checked, none shed — strictly more work than the disarmed ``None``
    fast path) plus a provisioned :class:`~repro.security.attacks
    .AttackPlane` executing no events.  Gates the admission hook added
    to the AMF's NAS dispatch.
    """
    from repro.fivegc.admission import AdmissionConfig, AdmissionController
    from repro.security.attacks import AttackPlane

    def arm(tb) -> None:
        tb.amf.admission = AdmissionController(AdmissionConfig())
        AttackPlane(tb)

    result = _paired_overhead(arm, registrations)
    return {
        "registrations": result["registrations"],
        "trimmed_pairs": result["trimmed_pairs"],
        "plane_none_wall_s": result["base_wall_s"],
        "plane_quiescent_wall_s": result["armed_wall_s"],
        "quiescent_overhead_percent": result["overhead_percent"],
    }


def measure_traces_overhead(registrations: int = OVERHEAD_REGISTRATIONS) -> dict:
    """Host-time cost of the quiescent distributed-tracing apparatus.

    Compares registrations on an untouched testbed against one carrying
    a disabled :class:`~repro.obs.trace.Tracer` that is provisioned for
    distributed tracing — ``trace_seed`` set and a
    :class:`~repro.obs.trace.TraceStore` attached.  Every hook sees a
    non-``None`` tracer and must consult ``enabled`` to skip it (the
    worst case for the guard checks, now with the heavier distributed
    -tracing state behind them); no spans open and nothing is stored.
    This gates the price the trace-context machinery adds to *untraced*
    runs, which must stay within the same budget as the original
    disabled-tracer hooks.
    """
    from repro.obs.trace import TraceStore, Tracer

    def arm(tb) -> None:
        tb.host.tracer = Tracer(
            tb.host.clock,
            enabled=False,
            trace_seed=7,
            store=TraceStore(cap=512, sample_every=8),
        )

    result = _paired_overhead(arm, registrations)
    return {
        "registrations": result["registrations"],
        "trimmed_pairs": result["trimmed_pairs"],
        "traces_none_wall_s": result["base_wall_s"],
        "traces_quiescent_wall_s": result["armed_wall_s"],
        "quiescent_overhead_percent": result["overhead_percent"],
    }


def measure_detect_overhead(registrations: int = OVERHEAD_REGISTRATIONS) -> dict:
    """Host-time cost of the full armed-but-quiet detection loop.

    Compares registrations on an untouched testbed against one carrying
    the whole PR 9 closed loop at rest: an installed 1 s-cadence
    :class:`~repro.obs.scrape.Scraper` with a subscribed
    :class:`~repro.obs.detect.AdmissionGovernor` classifying every
    scrape over quiet legitimate traffic.  The governor never arms (no
    storm, no burn), so this gates the price of *watching*: scrape hooks
    plus per-scrape verdicts on the live Tsdb.
    """
    from repro.obs.detect import AdmissionGovernor, AttackClassifier
    from repro.obs.scrape import Scraper

    def arm(tb) -> None:
        scraper = Scraper.for_testbed(tb, cadence_s=1.0).install(tb.host)
        scraper.subscribe(AdmissionGovernor(tb.amf, AttackClassifier()))

    result = _paired_overhead(arm, registrations)
    return {
        "registrations": result["registrations"],
        "trimmed_pairs": result["trimmed_pairs"],
        "detect_none_wall_s": result["base_wall_s"],
        "detect_armed_wall_s": result["armed_wall_s"],
        "armed_quiet_overhead_percent": result["overhead_percent"],
    }


def measure_suite() -> dict:
    """Wall-clock of one full benchmark-suite run (the expensive bit)."""
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "benchmarks", "-q", "-p", "no:cacheprovider"],
        cwd=REPO_ROOT,
        env={**__import__("os").environ, "PYTHONPATH": "src"},
        capture_output=True,
        text=True,
    )
    wall_s = time.perf_counter() - start
    if proc.returncode != 0:
        raise RuntimeError(
            f"benchmark suite failed (exit {proc.returncode}):\n{proc.stdout[-2000:]}"
        )
    return {"suite_wall_s": round(wall_s, 2)}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--suite",
        action="store_true",
        help="also time one full 'pytest benchmarks' run (minutes, not seconds)",
    )
    parser.add_argument(
        "--label", default="", help="free-text tag stored with this run"
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=DEFAULT_OUTPUT,
        help=f"results file (default: {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-smoke scale; measures but does not append to the history file",
    )
    parser.add_argument(
        "--fail-below",
        type=float,
        default=None,
        metavar="REGS_PER_S",
        help="exit non-zero if registrations/s lands below this floor",
    )
    parser.add_argument(
        "--capacity",
        type=int,
        default=None,
        metavar="UES",
        help="also wall-clock one full capacity campaign of this many UEs "
        "(10_000 = the paper-scale run; 100_000 = the CI smoke arm)",
    )
    parser.add_argument(
        "--sharded-capacity",
        type=int,
        default=None,
        metavar="UES",
        help="also wall-clock the partitioned (sharded) capacity campaign "
        "of this many UEs, serial vs fanned-out, recording the speedup",
    )
    parser.add_argument(
        "--sharded-shards",
        type=int,
        default=4,
        metavar="N",
        help="shard count for the --sharded-capacity run (default: 4)",
    )
    parser.add_argument(
        "--sharded-jobs",
        type=int,
        default=0,
        metavar="M",
        help="worker processes for the fanned-out arm of the "
        "--sharded-capacity run (0 = one per schedulable CPU)",
    )
    parser.add_argument(
        "--sharded-gate",
        type=float,
        default=None,
        metavar="SPEEDUP",
        help="exit non-zero if the sharded-campaign wall-clock speedup "
        "lands below this floor; the floor is automatically capped at "
        "0.8 x min(shards, jobs, schedulable CPUs) so the gate only "
        "bites where the hardware can actually deliver it",
    )
    parser.add_argument(
        "--tracer-gate",
        type=float,
        default=None,
        metavar="PERCENT",
        help="measure disabled-tracer hook overhead and exit non-zero if "
        "it exceeds this percentage (ISSUE 4 budget: 3)",
    )
    parser.add_argument(
        "--monitor-gate",
        type=float,
        default=None,
        metavar="PERCENT",
        help="measure armed-scraper monitoring overhead and exit non-zero "
        "if it exceeds this percentage (ISSUE 5 budget: 3)",
    )
    parser.add_argument(
        "--attack-gate",
        type=float,
        default=None,
        metavar="PERCENT",
        help="measure quiescent attack-plane/admission overhead on legit "
        "registrations and exit non-zero if it exceeds this percentage "
        "(ISSUE 8 budget: 2)",
    )
    parser.add_argument(
        "--traces-gate",
        type=float,
        default=None,
        metavar="PERCENT",
        help="measure the quiescent distributed-tracing apparatus "
        "(disabled tracer with trace seed + store attached) and exit "
        "non-zero if it exceeds this percentage (ISSUE 10 budget: 3)",
    )
    parser.add_argument(
        "--detect-gate",
        type=float,
        default=None,
        metavar="PERCENT",
        help="measure the armed-but-quiet detection loop (scraper + "
        "classifying governor, no storm) and exit non-zero if it exceeds "
        "this percentage (ISSUE 9 budget: 2)",
    )
    args = parser.parse_args(argv)

    block_batch = BLOCK_BATCH // 5 if args.quick else BLOCK_BATCH
    registrations = QUICK_REGISTRATIONS if args.quick else REGISTRATIONS

    run = {
        "label": args.label,
        "python": platform.python_version(),
        "aes": measure_aes_blocks(block_batch),
        "milenage": measure_milenage(block_batch // 4),
        "sbi": measure_sbi_roundtrips(block_batch // 4),
        "registration": measure_registrations(registrations),
    }
    if args.capacity is not None:
        run["capacity"] = measure_capacity(args.capacity)
    if args.sharded_capacity is not None or args.sharded_gate is not None:
        run["sharded_capacity"] = measure_sharded_capacity(
            args.sharded_capacity or 10_000,
            args.sharded_shards,
            args.sharded_jobs,
        )
    # Gate measurements always use the full paired-sample count: the
    # estimator needs ~150 pairs for a stable trimmed mean, and --quick
    # shrinking them would just make the gate flaky.
    if args.tracer_gate is not None:
        run["tracer_overhead"] = measure_tracer_overhead()
    if args.monitor_gate is not None:
        run["monitor_overhead"] = measure_monitor_overhead()
    if args.attack_gate is not None:
        run["attack_overhead"] = measure_attack_overhead()
    if args.traces_gate is not None:
        run["traces_overhead"] = measure_traces_overhead()
    if args.detect_gate is not None:
        run["detect_overhead"] = measure_detect_overhead()
    if args.suite:
        run.update(measure_suite())

    if not args.quick:
        if args.output.exists():
            document = json.loads(args.output.read_text())
        else:
            document = {
                "description": "host wall-clock performance history",
                "runs": [],
            }
        document["runs"].append(run)
        args.output.write_text(json.dumps(document, indent=2) + "\n")

    print(json.dumps(run, indent=2))
    if not args.quick:
        print(f"recorded -> {args.output}")

    regs_per_s = run["registration"]["registrations_per_s"]
    if args.fail_below is not None:
        if regs_per_s < args.fail_below:
            print(
                f"FAIL: {regs_per_s} registrations/s below the "
                f"--fail-below floor of {args.fail_below}",
                file=sys.stderr,
            )
            return 1
    elif args.quick:
        # Smoke runs without an explicit gate still print the number a
        # --fail-below would have judged, so CI logs always show where
        # this host stands relative to the committed floor.
        print(
            f"note: {regs_per_s} registrations/s measured; no --fail-below "
            f"floor enforced on this run"
        )
    if args.sharded_gate is not None:
        sharded = run["sharded_capacity"]
        # The gate can only demand what the hardware offers: a 1-CPU
        # container cannot produce a 2.5x wall-clock speedup no matter
        # how well the partitioning works, so the floor is capped by the
        # effective parallelism of this run.
        effective = min(
            sharded["shards"], sharded["jobs"], sharded["schedulable_cpus"]
        )
        floor = min(args.sharded_gate, 0.8 * effective)
        if floor < args.sharded_gate:
            print(
                f"note: --sharded-gate floor capped at {floor:.2f}x "
                f"(effective parallelism {effective}, requested "
                f"{args.sharded_gate}x)"
            )
        if sharded["speedup"] < floor:
            print(
                f"FAIL: sharded-campaign speedup {sharded['speedup']}x below "
                f"the --sharded-gate floor of {floor:.2f}x",
                file=sys.stderr,
            )
            return 1
    if args.tracer_gate is not None:
        overhead = run["tracer_overhead"]["disabled_overhead_percent"]
        if overhead > args.tracer_gate:
            print(
                f"FAIL: disabled-tracer hook overhead {overhead}% exceeds "
                f"the --tracer-gate budget of {args.tracer_gate}%",
                file=sys.stderr,
            )
            return 1
    if args.monitor_gate is not None:
        overhead = run["monitor_overhead"]["armed_overhead_percent"]
        if overhead > args.monitor_gate:
            print(
                f"FAIL: armed-scraper monitoring overhead {overhead}% exceeds "
                f"the --monitor-gate budget of {args.monitor_gate}%",
                file=sys.stderr,
            )
            return 1
    if args.attack_gate is not None:
        overhead = run["attack_overhead"]["quiescent_overhead_percent"]
        if overhead > args.attack_gate:
            print(
                f"FAIL: quiescent attack-plane overhead {overhead}% exceeds "
                f"the --attack-gate budget of {args.attack_gate}%",
                file=sys.stderr,
            )
            return 1
    if args.traces_gate is not None:
        overhead = run["traces_overhead"]["quiescent_overhead_percent"]
        if overhead > args.traces_gate:
            print(
                f"FAIL: quiescent distributed-tracing overhead {overhead}% "
                f"exceeds the --traces-gate budget of {args.traces_gate}%",
                file=sys.stderr,
            )
            return 1
    if args.detect_gate is not None:
        overhead = run["detect_overhead"]["armed_quiet_overhead_percent"]
        if overhead > args.detect_gate:
            print(
                f"FAIL: armed-but-quiet detection overhead {overhead}% "
                f"exceeds the --detect-gate budget of {args.detect_gate}%",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
