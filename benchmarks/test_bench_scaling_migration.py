"""A5/A6: horizontal scaling and slice migration.

A5 — §V-B7's horizontal-scaling claim, measured: capacity grows linearly
with replica count until the physical EPC is oversubscribed.
A6 — §V-B1's migration cost: the ~minute GSC enclave load is the service
gap when a slice moves hosts; sealed data stays behind by design.
"""

from repro.experiments.migration import migration_experiment, sealed_data_does_not_migrate
from repro.experiments.scaling import horizontal_scaling_experiment


def test_bench_horizontal_scaling(benchmark, record_report):
    report = benchmark.pedantic(
        horizontal_scaling_experiment,
        kwargs={"requests_per_replica": 40},
        rounds=1,
        iterations=1,
    )
    record_report(report)
    print()
    print(report.format())


def test_bench_slice_migration(benchmark, record_report):
    report = benchmark.pedantic(migration_experiment, rounds=1, iterations=1)
    record_report(report)
    assert sealed_data_does_not_migrate()
    print()
    print(report.format())
    print("  sealed data is platform-bound: re-provisioning required on migration")
