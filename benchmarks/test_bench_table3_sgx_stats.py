"""E5 / Table III: EENTER / EEXIT / AEX statistics per UE count.

Paper: ≈90 EENTER/EEXIT per registration; AEX ≈140k regardless of UE
count; empty workload ≈762 EENTERs / ≈49.7k AEXs.
"""

from repro.experiments.tables import table3_sgx_stats

MAX_UES = 10  # as in the paper (1..10 UEs)
ITERATIONS = 3  # paper: 100; counters are near-deterministic here


def test_bench_table3_sgx_statistics(benchmark, record_report):
    report = benchmark.pedantic(
        table3_sgx_stats,
        kwargs={"max_ues": MAX_UES, "iterations": ITERATIONS},
        rounds=1,
        iterations=1,
    )
    record_report(report)
    print()
    print(report.format())
