"""Fig 5: the modified 5G-AKA message flow, verified exchange by exchange.

Asserts both structural properties of the paper's design: the offload
exchanges occur exactly once in Fig 5's order, and each P-AKA module
communicates only with its parent VNF (§IV-B's topology decision).
"""

from repro.paka.deploy import IsolationMode
from repro.paka.flow import format_flow, verify_figure5
from repro.testbed import Testbed, TestbedConfig


def test_bench_fig5_message_flow(benchmark):
    def run():
        testbed = Testbed.build(TestbedConfig(isolation=IsolationMode.SGX, seed=55))
        verdict = verify_figure5(testbed)
        return testbed, verdict

    testbed, verdict = benchmark.pedantic(run, rounds=1, iterations=1)
    assert verdict.conforms, verdict.violations
    print()
    print("Fig 5 — recorded SBI exchange ladder:")
    print(format_flow(verdict.observed, testbed))
