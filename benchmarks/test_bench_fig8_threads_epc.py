"""E2 / Fig 8: effect of enclave threads and EPC size on eUDM P-AKA.

Paper findings: thread count beyond 4 changes nothing; 8 GB EPC is
slightly slower with a wider IQR; non-SGX is fastest; below 4 threads /
512 MB the module behaves inconsistently.
"""

from repro.experiments.sweeps import figure8_threads_epc_sweep, undersized_epc_experiment

REGISTRATIONS = 150


def test_bench_fig8_threads_and_epc(benchmark, record_report, campaign, jobs):
    report = benchmark.pedantic(
        figure8_threads_epc_sweep,
        kwargs={"registrations": campaign(REGISTRATIONS, quick_size=60), "jobs": jobs},
        rounds=1,
        iterations=1,
    )
    record_report(report)
    print()
    print(report.format())


def test_bench_fig8_undersized_epc(benchmark, record_report, campaign):
    """The below-512M 'inconsistent behaviour' regime (ablation)."""
    report = benchmark.pedantic(
        undersized_epc_experiment,
        kwargs={"registrations": campaign(80, quick_size=40)},
        rounds=1,
        iterations=1,
    )
    record_report(report)
    print()
    print(report.format())
