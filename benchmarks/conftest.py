"""Benchmark harness conventions.

Every benchmark regenerates one of the paper's tables or figures at
near-paper scale, asserts the paper-shape band checks, records the
measured values in ``benchmark.extra_info`` (so they land in
pytest-benchmark's JSON output) and writes the full report to
``benchmarks/results/<name>.txt``.

The *simulated* latencies are the scientific output; the wall-clock time
pytest-benchmark measures is merely the harness throughput.

Two harness options tune that throughput without touching the science:

* ``--quick`` shrinks campaign sizes to CI-smoke scale.  Band checks are
  still asserted — the shapes hold at reduced scale — but the files in
  ``benchmarks/results/`` are left untouched so the canonical full-scale
  numbers are never overwritten by a smoke run.
* ``--jobs N`` hands the experiments that decompose into independent
  arms (Fig 8/9/10, the ablations) a process pool.  Arms own their own
  seeded testbeds, so reports are byte-identical to a serial run.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="shrink benchmark campaign sizes to CI-smoke scale "
        "(paper-shape band checks are still enforced)",
    )
    parser.addoption(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for experiments with independent arms "
        "(0 = one per CPU); reports stay byte-identical to --jobs 1",
    )


@pytest.fixture
def campaign(request):
    """Scale a campaign size: the full size normally, a smoke size under
    ``--quick``.  Callers pass an explicit quick size when the default
    one-fifth would drop below what the experiment's checks need."""
    quick = request.config.getoption("--quick")

    def _campaign(full: int, quick_size=None) -> int:
        if not quick:
            return full
        return quick_size if quick_size is not None else max(20, full // 5)

    return _campaign


@pytest.fixture
def quick(request):
    """Whether this run is a ``--quick`` CI smoke (for experiments whose
    smoke shape changes more than a single campaign size)."""
    return request.config.getoption("--quick")


@pytest.fixture
def jobs(request):
    """The ``--jobs`` worker count for arm-parallel experiments."""
    return request.config.getoption("--jobs")


@pytest.fixture
def record_report(benchmark, request):
    """Save an ExperimentReport and assert all of its band checks.

    Under ``--quick`` the band checks still run but the results files are
    not rewritten, so the committed full-scale numbers stay canonical.
    """

    def _record(report):
        from repro.experiments.export import report_to_json

        if not request.config.getoption("--quick"):
            RESULTS_DIR.mkdir(exist_ok=True)
            name = report.experiment_id.replace("/", "_")
            (RESULTS_DIR / f"{name}.txt").write_text(report.format() + "\n")
            (RESULTS_DIR / f"{name}.json").write_text(report_to_json(report) + "\n")
        for key, value in report.derived.items():
            benchmark.extra_info[key] = round(value, 4)
        failed = report.failed_checks()
        assert not failed, "paper-shape checks failed:\n" + "\n".join(
            check.format() for check in failed
        )
        return report

    return _record
