"""Benchmark harness conventions.

Every benchmark regenerates one of the paper's tables or figures at
near-paper scale, asserts the paper-shape band checks, records the
measured values in ``benchmark.extra_info`` (so they land in
pytest-benchmark's JSON output) and writes the full report to
``benchmarks/results/<name>.txt``.

The *simulated* latencies are the scientific output; the wall-clock time
pytest-benchmark measures is merely the harness throughput.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_report(benchmark):
    """Save an ExperimentReport and assert all of its band checks."""

    def _record(report):
        from repro.experiments.export import report_to_json

        RESULTS_DIR.mkdir(exist_ok=True)
        name = report.experiment_id.replace("/", "_")
        (RESULTS_DIR / f"{name}.txt").write_text(report.format() + "\n")
        (RESULTS_DIR / f"{name}.json").write_text(report_to_json(report) + "\n")
        for key, value in report.derived.items():
            benchmark.extra_info[key] = round(value, 4)
        failed = report.failed_checks()
        assert not failed, "paper-shape checks failed:\n" + "\n".join(
            check.format() for check in failed
        )
        return report

    return _record
