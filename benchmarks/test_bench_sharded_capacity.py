"""E-SCALE: partitioned mass-registration capacity at 100k UEs.

The sharded campaign splits the UE population across independent
consistent-hash shards, runs each shard's seeded sub-testbed on its own
worker, and merges the per-shard results into one report that is
byte-identical regardless of ``--jobs``.  This benchmark commits the
100k-UE merged report — the scale-out headline — and budgets the host
wall-clock so the partitioned driver stays CI-tolerable.

The host throughput is appended to ``BENCH_hostperf.json`` under the
``sharded-capacity-100k`` label (replacing the previous entry, like the
unsharded 10k arm does).  Under ``--quick`` the campaign shrinks to 400
UEs: band checks still run, nothing on disk is touched.
"""

import json
import pathlib
import platform
import time

from repro.experiments.shard import sharded_campaign

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
HOSTPERF_PATH = REPO_ROOT / "BENCH_hostperf.json"

FULL_100K = 100_000
QUICK_SIZE = 400
SHARDS = 8

# Single-core floor: the unsharded 10k arm clears ~700 regs/s on a
# developer host, so 100k UEs plus the merge must land well inside this.
MAX_WALL_S_100K = 420.0


def _record_hostperf(label: str, measured: dict) -> None:
    document = (
        json.loads(HOSTPERF_PATH.read_text())
        if HOSTPERF_PATH.exists()
        else {"description": "host wall-clock performance history", "runs": []}
    )
    run = {
        "label": label,
        "python": platform.python_version(),
        "sharded_capacity": measured,
    }
    document["runs"] = [r for r in document["runs"] if r.get("label") != label] + [run]
    HOSTPERF_PATH.write_text(json.dumps(document, indent=2) + "\n")


def test_bench_sharded_capacity_100k(benchmark, campaign, record_report, jobs, request):
    ues = campaign(FULL_100K, quick_size=QUICK_SIZE)
    start = time.perf_counter()
    result = benchmark.pedantic(
        sharded_campaign,
        kwargs={"ues": ues, "shards": SHARDS, "jobs": jobs},
        rounds=1,
        iterations=1,
    )
    wall_s = time.perf_counter() - start
    report = record_report(result.report)
    benchmark.extra_info["host_wall_s"] = round(wall_s, 2)
    benchmark.extra_info["sharded_regs_per_s"] = round(ues / wall_s, 1)
    print()
    print(report.format())
    print(f"  host wall-clock: {wall_s:.2f}s ({ues / wall_s:.1f} regs/s)")

    if not request.config.getoption("--quick"):
        _record_hostperf(
            "sharded-capacity-100k",
            {
                "ues": ues,
                "shards": SHARDS,
                "jobs": jobs,
                "wall_s": round(wall_s, 2),
                "sharded_regs_per_s": round(ues / wall_s, 2),
                "simulated_regs_per_s": report.derived["simulated_regs_per_s"],
            },
        )
        assert wall_s < MAX_WALL_S_100K, (
            f"100k-UE sharded campaign took {wall_s:.1f}s host wall-clock "
            f"(budget {MAX_WALL_S_100K:.0f}s)"
        )
