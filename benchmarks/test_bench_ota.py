"""E7 / Fig 11 + Table IV: the OTA feasibility test.

Paper: a OnePlus 8 on the test PLMN 00101 registers through the
SGX-isolated AKA functions and establishes a data session; custom
MCC/MNC are never detected; the wrong OS build cannot connect
end-to-end.
"""

from repro.experiments.figures import figure11_ota_feasibility


def test_bench_ota_feasibility(benchmark, record_report):
    report = benchmark.pedantic(figure11_ota_feasibility, rounds=1, iterations=1)
    record_report(report)
    print()
    print(report.format())
