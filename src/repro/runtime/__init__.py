"""Execution runtimes.

The P-AKA module servers are written once against the :class:`Runtime`
interface and deployed two ways, exactly like the paper's artifacts:

* :class:`NativeRuntime` — a plain (container) process: cheap syscalls,
  process memory readable by any sufficiently privileged co-resident,
* ``GramineEnclaveRuntime`` (:mod:`repro.gramine.libos`) — the same
  workload inside an SGX enclave behind the Gramine LibOS: every syscall
  becomes an OCALL round-trip, compute pays the MEE penalty, and memory
  is ciphertext to everyone but the CPU.

This symmetry is what makes the container-vs-SGX comparisons of
Figs 8–10 / Table II meaningful.
"""

from repro.runtime.base import Runtime, SYSCALL_HOST_CYCLES, syscall_host_cycles
from repro.runtime.native import NativeRuntime

__all__ = ["Runtime", "NativeRuntime", "SYSCALL_HOST_CYCLES", "syscall_host_cycles"]
