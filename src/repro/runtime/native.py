"""Native (unshielded) process runtime.

This is the paper's non-SGX container baseline: syscalls cost a trap plus
kernel work, memory faults are cheap minor faults, and — crucially for the
threat model — process memory is plaintext to any actor that has gained
host-level privileges (the container engine, the hypervisor, a successful
escape).  :meth:`memory_view` therefore returns the secrets verbatim for
privileged actors, which is exactly what the attack suite exploits.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Optional, Set, Tuple

from repro.hw.host import PhysicalHost
from repro.runtime.base import Runtime, syscall_host_cycles
from repro.sgx.stats import SgxStats

_SYSCALL_TRAP_CYCLES = 1_400  # user→kernel→user round trip
_MINOR_FAULT_CYCLES = 2_400
_COLD_ACCESS_CYCLES = 60  # warm DRAM line fill, no MEE in the path

# Actors with a privileged view of arbitrary process memory on the host.
# A container shares the host kernel, so a kernel exploit is equivalent
# to host root here.
PRIVILEGED_ACTORS: Set[str] = {
    "host-root",
    "hypervisor",
    "container-engine",
    "kernel-debugger",
    "guest-kernel-exploit",
}


class NativeRuntime(Runtime):
    """A plain process (inside a container or not — same cost either way;
    the paper found container-vs-monolithic latency differences negligible)."""

    def __init__(self, name: str, host: PhysicalHost) -> None:
        super().__init__(name, host)
        self._secrets: Dict[str, bytes] = {}
        self._running = True
        # spec -> (cycles_spent, clock_ns) for one syscall(spec), rounded
        # exactly as spend_cycles would round it.
        self._spec_costs: Dict[Tuple[str, int, int], Tuple[int, int]] = {}

    @property
    def shielded(self) -> bool:
        return False

    @property
    def sgx_stats(self) -> Optional[SgxStats]:
        return None

    def _check_running(self) -> None:
        if not self._running:
            raise RuntimeError(f"runtime {self.name!r} has been shut down")

    def compute(self, cycles: float) -> None:
        self._check_running()
        self.host.cpu.spend_cycles(cycles)

    def syscall(self, name: str, bytes_out: int = 0, bytes_in: int = 0) -> None:
        self._check_running()
        self.host.cpu.spend_cycles(
            _SYSCALL_TRAP_CYCLES + syscall_host_cycles(name, bytes_out + bytes_in)
        )

    def syscall_batch(self, specs: Iterable[Tuple[str, int, int]]) -> None:
        """Charge a whole syscall profile with one clock update.

        Each spec's cost is rounded to (cycles, ns) exactly as an
        individual :meth:`syscall` would, so the accumulated charge leaves
        the clock and cycle counters bit-identical to the per-call loop.
        """
        self._check_running()
        costs = self._spec_costs
        total_cycles = 0
        total_ns = 0
        cpu = self.host.cpu
        for spec in specs:
            cost = costs.get(spec)
            if cost is None:
                name, bytes_out, bytes_in = spec
                cost = cpu.round_cycle_cost(
                    _SYSCALL_TRAP_CYCLES
                    + syscall_host_cycles(name, bytes_out + bytes_in)
                )
                costs[spec] = cost
            total_cycles += cost[0]
            total_ns += cost[1]
        cpu.spend_preconverted(total_cycles, total_ns)

    def compile_syscalls(self, specs) -> object:
        """Native profiles compile down to one pre-summed (cycles, ns) pair.

        Per-spec rounding happens at compile time with the exact
        :meth:`syscall` expressions, so replaying the handle is a single
        ``spend_preconverted`` that leaves the clock bit-identical to the
        per-call loop.
        """
        cpu = self.host.cpu
        total_cycles = 0
        total_ns = 0
        for name, bytes_out, bytes_in in specs:
            cost = cpu.round_cycle_cost(
                _SYSCALL_TRAP_CYCLES + syscall_host_cycles(name, bytes_out + bytes_in)
            )
            total_cycles += cost[0]
            total_ns += cost[1]
        return (total_cycles, total_ns)

    def syscall_profile(self, handle) -> None:
        self._check_running()
        self.host.cpu.spend_preconverted(handle[0], handle[1])

    def touch_pages(self, cold: int = 0, new: int = 0) -> None:
        self._check_running()
        self.host.cpu.spend_cycles(new * _MINOR_FAULT_CYCLES + cold * _COLD_ACCESS_CYCLES)

    def idle(
        self, duration_s: float, active_threads: int = 1, advance_clock: bool = True
    ) -> None:
        self._check_running()
        if duration_s < 0:
            raise ValueError(f"negative idle window: {duration_s}")
        if advance_clock:
            self.host.clock.advance_s(duration_s)

    def store_secret(self, key: str, value: bytes) -> None:
        self._check_running()
        self._secrets[key] = bytes(value)

    def load_secret(self, key: str) -> bytes:
        self._check_running()
        try:
            return self._secrets[key]
        except KeyError:
            raise KeyError(f"no secret {key!r} in runtime {self.name!r}")

    def memory_view(self, actor: str) -> bytes:
        """Privileged actors read process memory in the clear (/proc/pid/mem,
        hypervisor introspection, CRIU dumps …); unprivileged actors get
        nothing — ordinary OS isolation still applies to them."""
        if actor in PRIVILEGED_ACTORS:
            return json.dumps(
                {k: v.hex() for k, v in sorted(self._secrets.items())}
            ).encode()
        return b""

    def shutdown(self) -> None:
        self._secrets.clear()
        self._running = False
