"""Runtime interface and the host syscall cost table."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Optional, Tuple

from repro.hw.host import PhysicalHost
from repro.sgx.stats import SgxStats

# Host-side service cost of each syscall, in cycles, excluding any
# enclave-transition or shielding cost (those are the runtime's concern).
# Values are in the range kernel microbenchmarks report for these calls.
SYSCALL_HOST_CYCLES = {
    "epoll_wait": 2_600,
    "epoll_ctl": 1_800,
    "accept4": 8_500,
    "connect": 9_000,
    "recvmsg": 3_200,
    "sendmsg": 3_400,
    "read": 2_900,
    "write": 3_000,
    "pread64": 3_100,
    "close": 2_100,
    "shutdown": 2_400,
    "openat": 5_200,
    "fstat": 1_600,
    "mmap": 6_500,
    "munmap": 5_800,
    "brk": 1_300,
    "getrandom": 2_200,
    "futex": 2_000,
    "clock_gettime": 900,
    "socket": 4_800,
    "setsockopt": 1_700,
    "bind": 3_200,
    "listen": 2_800,
    "clone": 22_000,
    "sched_yield": 1_100,
}

_DEFAULT_SYSCALL_CYCLES = 3_000
_COPY_CYCLES_PER_BYTE = 0.35  # kernel/user copy cost per byte

# (name, nbytes) -> cycles memo.  The syscall profiles reuse a small fixed
# set of specs tens of thousands of times per campaign, so the dict-get +
# float arithmetic is worth caching.  Kept as a plain module dict (not
# functools.lru_cache) so mutating SYSCALL_HOST_CYCLES in a test can reset
# it via _reset_syscall_cycle_cache().
_SYSCALL_CYCLE_CACHE: "dict[Tuple[str, int], float]" = {}


def syscall_host_cycles(name: str, nbytes: int = 0) -> float:
    """Host-side cycles to service ``name`` moving ``nbytes`` of payload."""
    key = (name, nbytes)
    cycles = _SYSCALL_CYCLE_CACHE.get(key)
    if cycles is None:
        cycles = SYSCALL_HOST_CYCLES.get(name, _DEFAULT_SYSCALL_CYCLES) + (
            nbytes * _COPY_CYCLES_PER_BYTE
        )
        _SYSCALL_CYCLE_CACHE[key] = cycles
    return cycles


def _reset_syscall_cycle_cache() -> None:
    """Drop the memoised costs (after editing SYSCALL_HOST_CYCLES)."""
    _SYSCALL_CYCLE_CACHE.clear()


class Runtime(ABC):
    """Where a workload executes: native process or shielded enclave."""

    def __init__(self, name: str, host: PhysicalHost) -> None:
        self.name = name
        self.host = host

    # -------------------------------------------------------------- queries

    @property
    @abstractmethod
    def shielded(self) -> bool:
        """True when the runtime provides HMEE isolation."""

    @property
    @abstractmethod
    def sgx_stats(self) -> Optional[SgxStats]:
        """SGX counters, or ``None`` for non-SGX runtimes."""

    # ------------------------------------------------------------ execution

    @abstractmethod
    def compute(self, cycles: float) -> None:
        """Burn CPU on application logic."""

    @abstractmethod
    def syscall(self, name: str, bytes_out: int = 0, bytes_in: int = 0) -> None:
        """Issue one syscall moving ``bytes_out`` to and ``bytes_in`` from
        the kernel."""

    def syscall_batch(self, specs: Iterable[Tuple[str, int, int]]) -> None:
        """Issue a sequence of ``(name, bytes_out, bytes_in)`` syscalls.

        Semantically identical to calling :meth:`syscall` per spec; runtimes
        override this to amortise per-call accounting over the fixed syscall
        profiles the HTTP layer replays for every request.
        """
        for name, bytes_out, bytes_in in specs:
            self.syscall(name, bytes_out, bytes_in)

    def compile_syscalls(self, specs: Iterable[Tuple[str, int, int]]) -> object:
        """Precompile a fixed syscall sequence for repeated replay.

        The HTTP layer replays the same handful of syscall profiles for
        every request; compiling them once lets runtimes hoist per-spec
        cost lookups out of the hot loop entirely.  Returns an opaque
        handle for :meth:`syscall_profile`.  The handle is only valid on
        the runtime that compiled it.
        """
        return list(specs)

    def syscall_profile(self, handle: object) -> None:
        """Replay a profile compiled by :meth:`compile_syscalls`.

        Semantically identical to :meth:`syscall_batch` over the original
        spec sequence.
        """
        self.syscall_batch(handle)  # type: ignore[arg-type]

    @abstractmethod
    def touch_pages(self, cold: int = 0, new: int = 0) -> None:
        """Touch memory pages (``new`` = first touch / fault)."""

    @abstractmethod
    def idle(
        self, duration_s: float, active_threads: int = 1, advance_clock: bool = True
    ) -> None:
        """Block idle (e.g. in epoll_wait) for a simulated window.

        ``advance_clock=False`` books the window's side effects (e.g. AEX
        interrupts) without moving the clock, for callers coordinating a
        shared concurrent window across runtimes.
        """

    # -------------------------------------------------------------- secrets

    @abstractmethod
    def store_secret(self, key: str, value: bytes) -> None:
        """Keep key material in the runtime's memory."""

    @abstractmethod
    def load_secret(self, key: str) -> bytes:
        """Read key material back (from inside the workload)."""

    @abstractmethod
    def memory_view(self, actor: str) -> bytes:
        """What ``actor`` observes when inspecting this runtime's memory
        from outside (the attack-surface primitive for Table V)."""

    # ------------------------------------------------------------ lifecycle

    @abstractmethod
    def shutdown(self) -> None:
        """Stop the runtime and release its resources."""
