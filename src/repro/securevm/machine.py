"""The confidential VM: boot, memory acceptance, attestation identity."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.hw.host import PhysicalHost
from repro.sim.clock import TimeSpan

_PAGE = 4096

# Cost model (cycles).
_FIRMWARE_BOOT_CYCLES = 2.0e9  # TD firmware + kernel decompress
_GUEST_INIT_CYCLES = 1.9e10  # init + services + runtime start (~8 s @2.4GHz)
_PAGE_ACCEPT_CYCLES = 1_800  # per-page memory acceptance/encryption
_IMAGE_MEASURE_CYCLES_PER_BYTE = 6.0  # initial image measured once


@dataclass(frozen=True)
class SecureVmSpec:
    """Sizing of a confidential VM for one module."""

    name: str
    memory_bytes: int = 2 * 1024**3
    vcpus: int = 2
    kernel_image_bytes: int = 64 * 1024**2

    @property
    def memory_pages(self) -> int:
        return self.memory_bytes // _PAGE


class SecureVm:
    """A booted confidential VM on a host.

    The launch measurement covers the initial image (firmware + kernel +
    initrd), so attestation proves *what booted* — but unlike SGX it
    cannot speak to what the guest OS did afterwards, which is precisely
    the TCB-size tradeoff the paper discusses.
    """

    # The whole guest stack is inside the trust domain.
    TCB_COMPONENTS = (
        "cpu-package",
        "td-firmware",
        "guest-kernel",
        "guest-userspace",
        "application",
    )

    def __init__(self, host: PhysicalHost, spec: SecureVmSpec) -> None:
        self.host = host
        self.spec = spec
        self.booted = False
        self.destroyed = False
        self.boot_span: Optional[TimeSpan] = None
        self.launch_measurement: Optional[bytes] = None
        self._vm_key = hashlib.sha256(
            b"vm-ephemeral-key" + spec.name.encode() + id(self).to_bytes(8, "little")
        ).digest()

    def boot(self) -> TimeSpan:
        """Accept memory, measure the initial image, boot the guest."""
        if self.booted:
            raise RuntimeError(f"VM {self.spec.name!r} already booted")
        cpu = self.host.cpu
        with self.host.clock.measure() as span:
            cpu.spend_cycles(self.spec.memory_pages * _PAGE_ACCEPT_CYCLES)
            cpu.spend_cycles(
                self.spec.kernel_image_bytes * _IMAGE_MEASURE_CYCLES_PER_BYTE
            )
            cpu.spend_cycles(_FIRMWARE_BOOT_CYCLES)
            cpu.spend_cycles(
                self.host.rng.jitter(
                    f"vm.{self.spec.name}.boot", _GUEST_INIT_CYCLES, 0.03
                )
            )
        self.launch_measurement = hashlib.sha256(
            b"td-measurement"
            + self.spec.name.encode()
            + self.spec.kernel_image_bytes.to_bytes(8, "big")
        ).digest()
        self.boot_span = span
        self.booted = True
        return span

    def encrypt_for_outside(self, plaintext: bytes) -> bytes:
        """What the host sees of guest memory: per-VM-key ciphertext."""
        out = bytearray()
        counter = 0
        while len(out) < len(plaintext):
            out.extend(
                hashlib.sha256(self._vm_key + counter.to_bytes(8, "big")).digest()
            )
            counter += 1
        return bytes(p ^ k for p, k in zip(plaintext, out[: len(plaintext)]))

    def destroy(self) -> None:
        self.booted = False
        self.destroyed = True
