"""Secure-VM HMEE backend (AMD SEV-SNP / Intel TDX style).

The paper's §IV-C weighs SGX against hardware-isolated VMs: SEV/TDX run
*unmodified* applications (no Gramine, no refactoring) with far cheaper
syscalls (the guest kernel lives inside the trust domain), but at the
cost of a much larger TCB — the entire guest OS — which "may potentially
increase the attack surface, rendering them unsuitable for certain
applications".  One of the testbed's design goals is HMEE
interchangeability, so this package provides exactly that: a drop-in
third isolation mode for the P-AKA modules.

What the model captures:

* fast deployment — a guest boot (~10 s) instead of GSC's ~1 minute of
  trusted-file measurement,
* cheap syscalls — in-guest traps, with VM exits only on virtio I/O,
* mild compute penalty — whole-VM memory encryption,
* confidentiality against the *host* — hypervisor/engine introspection
  sees ciphertext, like SGX,
* the TCB difference — a guest-kernel exploit lands **inside** the trust
  domain and steals secrets; the same exploit against SGX-isolated
  modules gets nothing, because the kernel is outside the enclave TCB.
"""

from repro.securevm.machine import SecureVm, SecureVmSpec
from repro.securevm.runtime import GUEST_KERNEL_ACTOR, SecureVmRuntime

__all__ = ["SecureVm", "SecureVmSpec", "SecureVmRuntime", "GUEST_KERNEL_ACTOR"]
