"""The Runtime view of a workload inside a confidential VM."""

from __future__ import annotations

import json
from typing import Dict, Optional

from repro.hw.host import PhysicalHost
from repro.runtime.base import Runtime, syscall_host_cycles
from repro.securevm.machine import SecureVm
from repro.sgx.stats import SgxStats

# In-guest syscalls are ordinary traps; only virtio I/O forces a VM exit.
_GUEST_TRAP_CYCLES = 1_500
_GUEST_OVERHEAD_CYCLES = 320  # nested paging / TDX-module shims
_VM_EXIT_CYCLES = 5_200  # TD exit + VMM service + TD resume
_IO_SYSCALLS = {
    "sendmsg", "recvmsg", "read", "write", "pread64",
    "accept4", "connect", "socket", "shutdown", "close",
}
_MEMORY_ENCRYPTION_PENALTY = 1.04
_MINOR_FAULT_CYCLES = 3_000  # includes page acceptance on first touch
_COLD_ACCESS_CYCLES = 110

# The actor name for an exploit that landed inside the guest kernel —
# *inside* the secure VM's TCB, outside SGX's.
GUEST_KERNEL_ACTOR = "guest-kernel-exploit"


class SecureVmRuntime(Runtime):
    """A module running unmodified inside a SEV/TDX-style VM."""

    def __init__(self, name: str, host: PhysicalHost, vm: SecureVm) -> None:
        super().__init__(name, host)
        if not vm.booted:
            raise RuntimeError(f"VM {vm.spec.name!r} must boot before use")
        self.vm = vm
        self._secrets: Dict[str, bytes] = {}
        self._running = True

    @property
    def shielded(self) -> bool:
        return True

    @property
    def sgx_stats(self) -> Optional[SgxStats]:
        return None  # no enclave transitions to count

    def _check_running(self) -> None:
        if not self._running:
            raise RuntimeError(f"runtime {self.name!r} has been shut down")

    def compute(self, cycles: float) -> None:
        self._check_running()
        self.host.cpu.spend_cycles(cycles * _MEMORY_ENCRYPTION_PENALTY)

    def syscall(self, name: str, bytes_out: int = 0, bytes_in: int = 0) -> None:
        self._check_running()
        nbytes = bytes_out + bytes_in
        cycles = _GUEST_TRAP_CYCLES + _GUEST_OVERHEAD_CYCLES + syscall_host_cycles(
            name, nbytes
        )
        if name in _IO_SYSCALLS:
            cycles += _VM_EXIT_CYCLES  # virtio doorbell / completion
        self.host.cpu.spend_cycles(cycles)

    def touch_pages(self, cold: int = 0, new: int = 0) -> None:
        self._check_running()
        self.host.cpu.spend_cycles(
            new * _MINOR_FAULT_CYCLES + cold * _COLD_ACCESS_CYCLES
        )

    def idle(
        self, duration_s: float, active_threads: int = 1, advance_clock: bool = True
    ) -> None:
        self._check_running()
        if duration_s < 0:
            raise ValueError(f"negative idle window: {duration_s}")
        if advance_clock:
            self.host.clock.advance_s(duration_s)

    def store_secret(self, key: str, value: bytes) -> None:
        self._check_running()
        self._secrets[key] = bytes(value)

    def load_secret(self, key: str) -> bytes:
        self._check_running()
        try:
            return self._secrets[key]
        except KeyError:
            raise KeyError(f"no secret {key!r} in runtime {self.name!r}")

    def memory_view(self, actor: str) -> bytes:
        """Host-side actors see VM-key ciphertext — but an exploit inside
        the guest kernel is *within the TCB* and reads plaintext.  This
        is the attack-surface cost of the larger trust domain."""
        serialized = json.dumps(
            {k: v.hex() for k, v in sorted(self._secrets.items())}
        ).encode()
        if actor == GUEST_KERNEL_ACTOR:
            return serialized
        return self.vm.encrypt_for_outside(serialized)

    def shutdown(self) -> None:
        self._secrets.clear()
        self._running = False
        self.vm.destroy()
