"""Table I — the enclave I/O contracts of the P-AKA modules.

The paper's Table I fixes, for each module, the parameters crossing the
enclave boundary and their sizes, plus the functions executed inside.
These contracts are the reproduction's source of truth: the endpoint
handlers validate against them, the wire-cost model sums them, and
``tests/paka/test_table1_contract.py`` asserts them byte-for-byte.

Spec note: the paper lists HXRES* as 8 bytes and SNN as 2; TS 33.501
defines HXRES* as 16 bytes and the SNN as a variable-length string
(~32 bytes for a 3-digit MCC / 2-digit MNC).  We implement the spec and
record the deviation here and in DESIGN.md §2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class IoParam:
    """One enclave input or output parameter."""

    name: str
    nbytes: int


@dataclass(frozen=True)
class EnclaveIoContract:
    """One row of Table I."""

    module: str
    inputs: Tuple[IoParam, ...]
    outputs: Tuple[IoParam, ...]
    executes: Tuple[str, ...]

    @property
    def input_bytes(self) -> int:
        return sum(p.nbytes for p in self.inputs)

    @property
    def output_bytes(self) -> int:
        return sum(p.nbytes for p in self.outputs)

    @property
    def total_bytes(self) -> int:
        return self.input_bytes + self.output_bytes

    def input_size(self, name: str) -> int:
        for param in self.inputs:
            if param.name == name:
                return param.nbytes
        raise KeyError(f"{self.module}: no input parameter {name!r}")

    def output_size(self, name: str) -> int:
        for param in self.outputs:
            if param.name == name:
                return param.nbytes
        raise KeyError(f"{self.module}: no output parameter {name!r}")


EUDM_CONTRACT = EnclaveIoContract(
    module="eUDM",
    inputs=(
        IoParam("OPc", 16),
        IoParam("RAND", 16),
        IoParam("SQN", 6),
        IoParam("AMFid", 2),
    ),
    outputs=(
        IoParam("RAND", 16),
        IoParam("XRES*", 16),
        IoParam("KAUSF", 32),
        IoParam("AUTN", 16),
    ),
    executes=("f1", "f2345", "KAUSF", "AUTN"),
)

EAUSF_CONTRACT = EnclaveIoContract(
    module="eAUSF",
    inputs=(
        IoParam("RAND", 16),
        IoParam("XRES*", 16),
        # Paper Table I: SNN listed as 2 bytes; spec SNN is a string of
        # ~32 bytes.  We keep the spec size (see module docstring).
        IoParam("SNN", 32),
        IoParam("KAUSF", 32),
    ),
    outputs=(
        IoParam("KSEAF", 32),
        # Paper Table I: 8 bytes; TS 33.501 A.5: 16 bytes (see docstring).
        IoParam("HXRES*", 16),
    ),
    executes=("KSEAF", "HXRES*"),
)

EAMF_CONTRACT = EnclaveIoContract(
    module="eAMF",
    inputs=(IoParam("KSEAF", 32),),
    outputs=(IoParam("KAMF", 32),),
    executes=("KAMF",),
)
