"""The three P-AKA module servers.

Each module is a single-threaded HTTPS endpoint server (the paper's
Pistache/OpenSSL C++17 services) written once against the runtime
abstraction, so the identical code serves as the *container* baseline
(NativeRuntime) and as the *P-AKA* deployment (GramineEnclaveRuntime).

Cost calibration: the ``COMPUTE_CYCLES`` constants set the container
functional latency L_F (endpoint handler: request decode, the AKA crypto
chain, response assembly) and ``COLD_PAGES`` the per-request working set
whose EPC refill constitutes the module-specific SGX L_F overhead —
chosen so the reproduction lands in Table II's 1.2–1.5× L_F band with the
paper's ordering (eUDM slowest in absolute terms, eAMF with the highest
relative overhead).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional

from repro.container.network import BridgeNetwork
from repro.aka import HomeAuthVector, derive_se_av, generate_he_av
from repro.crypto.kdf import derive_kamf
from repro.net.http import HttpServer, ServerSyscallProfile
from repro.net.rest import JsonApiError, error_response, json_body, json_response, require_hex, require_str
from repro.net.sbi import (
    EAMF_DERIVE_KAMF,
    EAUSF_DERIVE_SE_AV,
    EUDM_GENERATE_AV,
    EUDM_PROVISION,
    EUDM_VERIFY_AUTS,
)
from repro.paka.endpoints import EAMF_CONTRACT, EAUSF_CONTRACT, EUDM_CONTRACT, EnclaveIoContract
from repro.runtime.base import Runtime


class PakaModule:
    """Base of the three module servers."""

    CONTRACT: EnclaveIoContract
    # Handler compute in cycles: container-side functional latency L_F.
    COMPUTE_CYCLES: float
    # Per-request cold EPC pages touched (SGX-specific L_F component).
    COLD_PAGES: int
    # Out-of-window reactor chatter; total per-request syscalls ≈ 90.
    REACTOR_CHATTER: int = 80

    def __init__(
        self,
        name: str,
        runtime: Runtime,
        network: BridgeNetwork,
        profile: "ServerSyscallProfile | None" = None,
    ) -> None:
        self.name = name
        self.runtime = runtime
        self.server = HttpServer(
            name=name,
            runtime=runtime,
            network=network,
            profile=profile
            or ServerSyscallProfile.pistache_like(self.REACTOR_CHATTER),
        )
        self._register_routes()

    def start(self) -> None:
        self.server.start()

    def stop(self) -> None:
        self.server.stop()
        self.runtime.shutdown()

    @property
    def shielded(self) -> bool:
        return self.runtime.shielded

    def _register_routes(self) -> None:
        raise NotImplementedError

    def _route_json(self, method: str, path: str, handler) -> None:
        def wrapped(request, context):
            try:
                return handler(request, context)
            except JsonApiError as error:
                return error_response(error)

        self.server.route(method, path, wrapped)

    def _charge_function(self, context) -> None:
        """Charge the module's AKA-function execution cost.

        A small gaussian jitter models run-to-run variation (branchy JSON
        decode, allocator state, cache residency) — the box heights of
        Figs 8–9.
        """
        runtime = context.runtime
        cycles = runtime.host.rng.jitter(
            f"{self.name}.fn", self.COMPUTE_CYCLES, 0.035
        )
        runtime.compute(cycles)
        runtime.touch_pages(cold=self.COLD_PAGES)


class EudmPakaModule(PakaModule):
    """eUDM-AKA: HE AV generation (Table I row 1).

    Subscriber keys K are provisioned into the module (sealed in enclave
    memory when shielded) and indexed by SUPI; per-request inputs are the
    Table I parameters OPc, RAND, SQN and the AMF field.
    """

    CONTRACT = EUDM_CONTRACT
    COMPUTE_CYCLES = 96_000  # MILENAGE f1–f5 + KDFs + vector assembly
    COLD_PAGES = 16

    def _register_routes(self) -> None:
        self._route_json("POST", EUDM_PROVISION, self._handle_provision)
        self._route_json("POST", EUDM_GENERATE_AV, self._handle_generate_av)
        self._route_json("POST", EUDM_VERIFY_AUTS, self._handle_verify_auts)

    def provision_direct(self, supi: str, k: bytes) -> None:
        """Operator provisioning over the local attested channel.

        Subscriber keys are pushed into the module at slice setup (sealed
        into enclave memory when shielded) without traversing the HTTP
        path, so the module's first HTTP request is the first *AKA*
        request — the regime Fig 10(b)'s initial-response metric assumes.
        The HTTP provisioning endpoint remains for dynamic onboarding.
        """
        if len(k) != 16:
            raise ValueError(f"K must be 16 bytes, got {len(k)}")
        self.runtime.compute(9_000)
        self.runtime.store_secret(f"k:{supi}", k)

    def _handle_provision(self, request, context):
        data = json_body(request)
        supi = require_str(data, "supi")
        k = require_hex(data, "k", 16)
        context.runtime.compute(9_000)
        context.runtime.store_secret(f"k:{supi}", k)
        return json_response({"provisioned": supi}, status=201)

    def _handle_generate_av(self, request, context):
        data = json_body(request)
        supi = require_str(data, "supi")
        opc = require_hex(data, "opc", self.CONTRACT.input_size("OPc"))
        rand = require_hex(data, "rand", self.CONTRACT.input_size("RAND"))
        sqn = require_hex(data, "sqn", self.CONTRACT.input_size("SQN"))
        amf_field = require_hex(data, "amfField", self.CONTRACT.input_size("AMFid"))
        snn = require_str(data, "snn").encode()
        try:
            k = context.runtime.load_secret(f"k:{supi}")
        except KeyError:
            raise JsonApiError(404, f"no key provisioned for {supi!r}")

        self._charge_function(context)
        he_av = generate_he_av(k=k, opc=opc, rand=rand, sqn=sqn, snn=snn,
                               amf_field=amf_field)
        # The freshly derived K_AUSF also lives in module memory until the
        # response is consumed — part of what isolation protects.
        context.runtime.store_secret("last_kausf", he_av.kausf)
        return json_response(
            {
                "rand": he_av.rand.hex(),
                "autn": he_av.autn.hex(),
                "xresStar": he_av.xres_star.hex(),
                "kausf": he_av.kausf.hex(),
            }
        )

    def _handle_verify_auts(self, request, context):
        """Resynchronisation: verify the UE's AUTS token and recover SQN_MS.

        AUTS verification runs f1*/f5* under the subscriber key K, so it
        is exactly as sensitive as AV generation and belongs inside the
        enclave (an extension beyond the paper's Table I, consistent with
        its isolation rationale).
        """
        from repro.aka import verify_auts

        data = json_body(request)
        supi = require_str(data, "supi")
        opc = require_hex(data, "opc", 16)
        rand = require_hex(data, "rand", 16)
        auts = require_hex(data, "auts", 14)
        try:
            k = context.runtime.load_secret(f"k:{supi}")
        except KeyError:
            raise JsonApiError(404, f"no key provisioned for {supi!r}")
        # f2345 (for AK*) + f1* — comparable weight to AV generation.
        context.runtime.compute(78_000)
        context.runtime.touch_pages(cold=self.COLD_PAGES)
        sqn_ms = verify_auts(k, opc, rand, auts)
        if sqn_ms is None:
            raise JsonApiError(403, "AUTS verification failed")
        return json_response({"sqnMs": sqn_ms})


class EausfPakaModule(PakaModule):
    """eAUSF-AKA: SE AV derivation — HXRES* and K_SEAF (Table I row 2)."""

    CONTRACT = EAUSF_CONTRACT
    COMPUTE_CYCLES = 81_000  # SHA-256 + two KDF invocations + assembly
    COLD_PAGES = 21

    def _register_routes(self) -> None:
        self._route_json("POST", EAUSF_DERIVE_SE_AV, self._handle_derive)

    def _handle_derive(self, request, context):
        data = json_body(request)
        rand = require_hex(data, "rand", self.CONTRACT.input_size("RAND"))
        xres_star = require_hex(data, "xresStar", self.CONTRACT.input_size("XRES*"))
        kausf = require_hex(data, "kausf", self.CONTRACT.input_size("KAUSF"))
        autn = require_hex(data, "autn", 16)
        snn = require_str(data, "snn").encode()

        self._charge_function(context)
        he_av = HomeAuthVector(rand=rand, autn=autn, xres_star=xres_star, kausf=kausf)
        se_av, kseaf = derive_se_av(he_av, snn)
        context.runtime.store_secret("last_kseaf", kseaf)
        return json_response(
            {
                "hxresStar": se_av.hxres_star.hex(),
                "kseaf": kseaf.hex(),
            }
        )


class EamfPakaModule(PakaModule):
    """eAMF-AKA: K_AMF derivation from K_SEAF (Table I row 3)."""

    CONTRACT = EAMF_CONTRACT
    COMPUTE_CYCLES = 66_000  # one KDF + NAS-key scheduling
    COLD_PAGES = 35

    def _register_routes(self) -> None:
        self._route_json("POST", EAMF_DERIVE_KAMF, self._handle_derive)

    def _handle_derive(self, request, context):
        data = json_body(request)
        kseaf = require_hex(data, "kseaf", self.CONTRACT.input_size("KSEAF"))
        supi = require_str(data, "supi")
        abba = require_hex(data, "abba", 2)

        self._charge_function(context)
        kamf = derive_kamf(kseaf, supi, abba)
        context.runtime.store_secret("last_kamf", kamf)
        return json_response({"kamf": kamf.hex()})


def module_wire_digest(modules: Dict[str, PakaModule]) -> str:
    """A stable digest of the deployed module contracts (diagnostics)."""
    h = hashlib.sha256()
    for name in sorted(modules):
        contract = modules[name].CONTRACT
        h.update(name.encode())
        h.update(str(contract.total_bytes).encode())
    return h.hexdigest()[:16]
