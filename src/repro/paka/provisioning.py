"""Attested subscriber-key provisioning (the paper's §VI pattern).

When the P-AKA modules run on third-party infrastructure (KI 20), the
operator must not hand subscriber keys to just anything that answers on
the right port.  The provisioning flow gates on remote attestation:

1. the module generates an ephemeral X25519 keypair *inside* the enclave
   and obtains a quote whose report data binds the public key,
2. the operator verifies the quote — genuine platform, expected
   MRENCLAVE/MRSIGNER from the signed GSC build — and only then runs the
   key exchange,
3. subscriber keys travel AEAD-protected under the agreed secret and are
   unsealed only inside the attested enclave.

A tampered module measures differently, a fake platform has no
provisioned attestation key, and an on-path attacker sees ciphertext —
each failure mode is exercised by the test-suite.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Dict, Optional

from repro.crypto.aes import aes128_ctr
from repro.crypto.suci import x25519, x25519_public_key
from repro.gramine.libos import GramineEnclaveRuntime
from repro.sgx.attestation import AttestationService, Quote, QuotingEnclave, verify_quote
from repro.sgx.errors import AttestationError


class ProvisioningError(Exception):
    """Attestation or channel-protection failure during provisioning."""


@dataclass(frozen=True)
class ProvisioningOffer:
    """What the module presents to the operator: pubkey + binding quote."""

    module_public_key: bytes
    quote: Quote


@dataclass(frozen=True)
class SealedKeyDelivery:
    """One encrypted subscriber-key batch in transit."""

    operator_public_key: bytes
    ciphertext: bytes
    tag: bytes


def _channel_keys(shared_secret: bytes) -> "tuple[bytes, bytes, bytes]":
    block = hashlib.sha256(b"paka-provisioning" + shared_secret).digest()
    mac_key = hashlib.sha256(b"mac" + block).digest()
    return block[:16], block[16:], mac_key


def _serialize_keys(keys: Dict[str, bytes]) -> bytes:
    import json

    return json.dumps({supi: k.hex() for supi, k in sorted(keys.items())}).encode()


def _deserialize_keys(raw: bytes) -> Dict[str, bytes]:
    import json

    return {supi: bytes.fromhex(k) for supi, k in json.loads(raw.decode()).items()}


class ModuleProvisioningAgent:
    """Runs inside the module (enclave side of the channel)."""

    def __init__(
        self,
        runtime: GramineEnclaveRuntime,
        quoting_enclave: QuotingEnclave,
    ) -> None:
        self.runtime = runtime
        self.quoting_enclave = quoting_enclave

    def make_offer(self) -> ProvisioningOffer:
        """Generate the in-enclave keypair and the binding quote."""
        private_key = self.runtime.host.rng.randbytes(
            f"prov.{self.runtime.name}", 32
        )
        self.runtime.store_secret("prov:ecdh-private", private_key)
        public_key = x25519_public_key(private_key)
        quote = self.quoting_enclave.quote(
            self.runtime.enclave,
            report_data=hashlib.sha256(b"prov-pubkey" + public_key).digest(),
        )
        return ProvisioningOffer(module_public_key=public_key, quote=quote)

    def accept_delivery(self, delivery: SealedKeyDelivery) -> int:
        """Decrypt inside the enclave and install the subscriber keys."""
        private_key = self.runtime.load_secret("prov:ecdh-private")
        shared = x25519(private_key, delivery.operator_public_key)
        key, icb, mac_key = _channel_keys(shared)
        expected = hmac.new(mac_key, delivery.ciphertext, hashlib.sha256).digest()[:16]
        if not hmac.compare_digest(expected, delivery.tag):
            raise ProvisioningError("delivery authentication failed")
        keys = _deserialize_keys(aes128_ctr(key, icb, delivery.ciphertext))
        for supi, k in keys.items():
            if len(k) != 16:
                raise ProvisioningError(f"bad key length for {supi}")
            self.runtime.store_secret(f"k:{supi}", k)
        return len(keys)


class OperatorProvisioner:
    """The VNO side: verifies attestation, then ships the keys."""

    def __init__(
        self,
        attestation_service: AttestationService,
        expected_mrenclave: bytes,
        expected_mrsigner: Optional[bytes] = None,
        allow_debug: bool = False,
    ) -> None:
        self.attestation_service = attestation_service
        self.expected_mrenclave = expected_mrenclave
        self.expected_mrsigner = expected_mrsigner
        self.allow_debug = allow_debug

    def deliver_keys(
        self,
        offer: ProvisioningOffer,
        subscriber_keys: Dict[str, bytes],
        operator_private_key: bytes,
    ) -> SealedKeyDelivery:
        """Verify the offer's quote and encrypt the key batch for it."""
        try:
            verify_quote(
                offer.quote,
                self.attestation_service,
                expected_mrenclave=self.expected_mrenclave,
                expected_mrsigner=self.expected_mrsigner,
                allow_debug=self.allow_debug,
            )
        except AttestationError as error:
            raise ProvisioningError(f"module attestation failed: {error}")
        binding = hashlib.sha256(b"prov-pubkey" + offer.module_public_key).digest()
        if offer.quote.report_data != binding:
            raise ProvisioningError(
                "quote does not bind the offered public key (substitution?)"
            )
        shared = x25519(operator_private_key, offer.module_public_key)
        key, icb, mac_key = _channel_keys(shared)
        plaintext = _serialize_keys(subscriber_keys)
        ciphertext = aes128_ctr(key, icb, plaintext)
        tag = hmac.new(mac_key, ciphertext, hashlib.sha256).digest()[:16]
        return SealedKeyDelivery(
            operator_public_key=x25519_public_key(operator_private_key),
            ciphertext=ciphertext,
            tag=tag,
        )
