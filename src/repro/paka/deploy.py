"""P-AKA deployment: build, shield and launch the three modules.

Reproduces the paper's §IV-C pipeline: OAI-style module images are built,
graminized with GSC (preheat on, 4 threads, 512 MB EPC by default),
signed, loaded through the PAL under aesmd launch control, and started as
containers on the OAI docker bridge.  ``IsolationMode.CONTAINER`` skips
the shielding and runs the identical module code natively — the paper's
baseline.

Deployment policy (§IV-B): 3GPP requires long-term keys to remain in the
UDM's secure environment, so each module must be co-located with its
parent VNF on the same physical host; :func:`enforce_colocation` raises
when an operator violates it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.container.engine import Container, ContainerEngine
from repro.container.image import ContainerImage, oai_base_image
from repro.container.network import BridgeNetwork
from repro.gramine.gsc import GscConfig, build_gsc_image, sign_gsc_image
from repro.gramine.libos import GramineEnclaveRuntime
from repro.gramine.manifest import GramineManifest
from repro.gramine.pal import PlatformAdaptationLayer
from repro.hw.host import PhysicalHost
from repro.paka.modules import EamfPakaModule, EausfPakaModule, EudmPakaModule, PakaModule
from repro.runtime.native import NativeRuntime
from repro.securevm.machine import SecureVm, SecureVmSpec
from repro.securevm.runtime import SecureVmRuntime
from repro.sgx.aesm import AesmDaemon
from repro.sgx.enclave import Enclave
from repro.sgx.epc import EpcManager
from repro.sim.clock import TimeSpan


class IsolationMode(Enum):
    CONTAINER = "container"  # plain docker container (baseline)
    SGX = "sgx"  # GSC / Gramine / SGX enclave (P-AKA)
    SECURE_VM = "secure-vm"  # SEV/TDX-style confidential VM (§IV-C tradeoff)


class DeploymentPolicyError(Exception):
    """A 3GPP deployment policy was violated."""


def enforce_colocation(parent_host: PhysicalHost, module_host: PhysicalHost) -> None:
    """§IV-B: P-AKA modules must share the physical host of their parent."""
    if parent_host.name != module_host.name:
        raise DeploymentPolicyError(
            f"P-AKA module on host {module_host.name!r} but parent VNF on "
            f"{parent_host.name!r}: long-term keys must remain in the "
            f"UDM's secure environment (TS 33.501)"
        )


# Module image bulk sizes (MB).  GSC hashes ~the whole rootfs as trusted
# files, so these sizes set the enclave load times of Fig 7.
_MODULE_BULK_MB = {"eudm": 3165, "eausf": 3120, "eamf": 3075}
_MODULE_CLASSES = {
    "eudm": EudmPakaModule,
    "eausf": EausfPakaModule,
    "eamf": EamfPakaModule,
}


@dataclass
class PakaSlice:
    """The deployed slice of three P-AKA modules."""

    mode: IsolationMode
    modules: Dict[str, PakaModule]
    containers: Dict[str, Container]
    enclaves: Dict[str, Enclave] = field(default_factory=dict)
    vms: Dict[str, "SecureVm"] = field(default_factory=dict)
    load_spans: Dict[str, TimeSpan] = field(default_factory=dict)
    # All instances per module name when deployed with replicas > 1
    # (modules[name] is the first replica).
    replica_groups: Dict[str, List[PakaModule]] = field(default_factory=dict)

    @property
    def shielded(self) -> bool:
        return self.mode in (IsolationMode.SGX, IsolationMode.SECURE_VM)

    def module(self, name: str) -> PakaModule:
        try:
            return self.modules[name]
        except KeyError:
            raise KeyError(f"no P-AKA module {name!r} (have {sorted(self.modules)})")

    def teardown(self, engine: ContainerEngine) -> None:
        for module in self.modules.values():
            module.server.stop()
        for container in self.containers.values():
            engine.remove(container.name)
        self.modules.clear()
        self.containers.clear()


class PakaDeployment:
    """Factory for P-AKA slices on one host."""

    def __init__(
        self,
        host: PhysicalHost,
        engine: ContainerEngine,
        network: BridgeNetwork,
        signing_key: bytes = b"operator-signing-key-0001-sgx-paka",
        platform_id: str = "platform-0",
    ) -> None:
        self.host = host
        self.engine = engine
        self.network = network
        self.signing_key = signing_key
        self.epc_manager = EpcManager(host.total_epc_bytes, host.cpu, host.rng)
        self.aesmd = AesmDaemon(platform_id)
        self.pal = PlatformAdaptationLayer(host, self.epc_manager, self.aesmd)
        self._instance = 0

    def default_manifest(self, entrypoint: str) -> GramineManifest:
        """The paper's manifest: preheat on, 4 threads, 512 MB, stats."""
        return GramineManifest(
            entrypoint=entrypoint,
            enclave_size="512M",
            max_threads=4,
            preheat_enclave=True,
            debug=True,  # the paper builds with debug to collect stats
            enable_stats=True,
        )

    def build_module_image(self, short_name: str) -> ContainerImage:
        image, _ = oai_base_image(
            f"{short_name}-aka", bulk_mb=_MODULE_BULK_MB[short_name]
        )
        return image

    def deploy(
        self,
        mode: IsolationMode,
        module_names: Optional[List[str]] = None,
        enclave_size: str = "512M",
        max_threads: int = 4,
        preheat: bool = True,
        exitless: bool = False,
        size_overrides: Optional[Dict[str, str]] = None,
        replicas: int = 1,
    ) -> PakaSlice:
        """Deploy the requested modules (default: all three).

        ``size_overrides`` resizes individual modules (the paper's Fig 8
        sweep varies only the eUDM enclave while the others stay at the
        default).  ``replicas`` deploys N instances of each module —
        the horizontal scaling the paper's §V-B7 points out the
        microservice design enables.
        """
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        names = module_names or ["eudm", "eausf", "eamf"]
        overrides = size_overrides or {}
        self._instance += 1
        slice_ = PakaSlice(mode=mode, modules={}, containers={})
        for short_name in names:
            group: List[PakaModule] = []
            for replica in range(replicas):
                key = short_name if replicas == 1 else f"{short_name}#{replica}"
                self._deploy_one(
                    slice_,
                    short_name,
                    mode,
                    overrides.get(short_name, enclave_size),
                    max_threads,
                    preheat,
                    exitless,
                    instance_key=key,
                )
                group.append(slice_.modules[key])
            slice_.replica_groups[short_name] = group
            if replicas > 1:
                slice_.modules[short_name] = group[0]
        return slice_

    def _deploy_one(
        self,
        slice_: PakaSlice,
        short_name: str,
        mode: IsolationMode,
        enclave_size: str,
        max_threads: int,
        preheat: bool,
        exitless: bool,
        instance_key: Optional[str] = None,
    ) -> None:
        key = instance_key or short_name
        image = self.build_module_image(short_name)
        container_name = f"{key.replace('#', '-')}-paka-{self._instance}"

        if mode is IsolationMode.SGX:
            manifest = self.default_manifest(image.entrypoint)
            manifest = GramineManifest(
                entrypoint=manifest.entrypoint,
                enclave_size=enclave_size,
                max_threads=max_threads,
                preheat_enclave=preheat,
                debug=manifest.debug,
                enable_stats=manifest.enable_stats,
            )
            gsc = sign_gsc_image(build_gsc_image(image, manifest), self.signing_key)

            def factory(cname: str, host: PhysicalHost) -> GramineEnclaveRuntime:
                enclave, span = self.pal.load_enclave(gsc.build_info)
                slice_.enclaves[key] = enclave
                slice_.load_spans[key] = span
                runtime = GramineEnclaveRuntime(
                    cname, host, enclave, gsc.manifest, exitless=exitless
                )
                runtime.start()
                return runtime

            container = self.engine.run(
                gsc.image, name=container_name, runtime_factory=factory
            )
        elif mode is IsolationMode.SECURE_VM:
            # SEV/TDX path: the unmodified image boots inside a
            # confidential VM — no graminizing, no trusted-file
            # measurement, a ~10 s guest boot instead.
            def vm_factory(cname: str, host: PhysicalHost) -> SecureVmRuntime:
                vm = SecureVm(host, SecureVmSpec(name=cname))
                slice_.load_spans[key] = vm.boot()
                slice_.vms[key] = vm
                return SecureVmRuntime(cname, host, vm)

            container = self.engine.run(
                image, name=container_name, runtime_factory=vm_factory
            )
        else:
            container = self.engine.run(
                image,
                name=container_name,
                runtime_factory=lambda cname, host: NativeRuntime(cname, host),
            )

        enforce_colocation(self.host, container.host)
        module_class = _MODULE_CLASSES[short_name]
        module = module_class(
            name=f"{key.replace('#', '-')}-paka-srv-{self._instance}",
            runtime=container.runtime,
            network=self.network,
        )
        module.start()
        slice_.modules[key] = module
        slice_.containers[key] = container
