"""P-AKA: the paper's core contribution.

The sensitive 5G-AKA functions are extracted from the monolithic UDM,
AUSF and AMF VNFs into three external microservices — **eUDM-AKA**,
**eAUSF-AKA** and **eAMF-AKA** — each an HTTPS server reachable only by
its parent VNF over the docker bridge.  Deployed inside SGX enclaves via
Gramine/GSC they become the *Protected*-AKA (P-AKA) modules:

* ``eUDM P-AKA``  — generates the HE AV (RAND, AUTN, XRES*, K_AUSF) from
  OPc/RAND/SQN/AMF-field inputs (Table I row 1); subscriber keys K are
  provisioned into the enclave and never leave it,
* ``eAUSF P-AKA`` — derives HXRES* and K_SEAF from the HE AV (row 2),
* ``eAMF P-AKA``  — derives K_AMF from K_SEAF (row 3).

:mod:`repro.paka.deploy` builds the modules in either isolation mode
(plain container vs GSC/SGX) with the co-location policy the paper's
§IV-B mandates.
"""

from repro.paka.endpoints import (
    EAMF_CONTRACT,
    EAUSF_CONTRACT,
    EUDM_CONTRACT,
    EnclaveIoContract,
    IoParam,
)
from repro.paka.modules import (
    EamfPakaModule,
    EausfPakaModule,
    EudmPakaModule,
    PakaModule,
)
from repro.paka.deploy import IsolationMode, PakaDeployment, PakaSlice

__all__ = [
    "IoParam",
    "EnclaveIoContract",
    "EUDM_CONTRACT",
    "EAUSF_CONTRACT",
    "EAMF_CONTRACT",
    "PakaModule",
    "EudmPakaModule",
    "EausfPakaModule",
    "EamfPakaModule",
    "IsolationMode",
    "PakaDeployment",
    "PakaSlice",
]
