"""Figure 5 — the modified 5G-AKA message flow, verified by execution.

The paper's Fig 5 fixes two structural properties of the offloaded flow:

1. **the exchange order** — UDM → eUDM before the HE AV exists, AUSF →
   eAUSF before the SE AV exists, AMF → eAMF only after the UE's RES*
   verified, and
2. **the communication topology** — each P-AKA module talks *only to its
   parent VNF* (the paper's deliberate design decision in §IV-B: modules
   never talk to each other, preserving their autonomy and OAI's flow).

This module records the SBI exchanges of a live registration and checks
both properties, turning Fig 5 into an executable artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.sbi import (
    AUSF_UE_AUTH,
    AUSF_UE_AUTH_CONFIRM,
    EAMF_DERIVE_KAMF,
    EAUSF_DERIVE_SE_AV,
    EUDM_GENERATE_AV,
    UDM_UE_AUTH_GET,
    UDR_AUTH_SUBSCRIPTION,
)
from repro.testbed import Testbed


@dataclass(frozen=True)
class SbiExchange:
    """One recorded request on the service-based interface."""

    src: str  # client endpoint name
    dst: str  # server endpoint name
    path: str


# The Fig 5 request order for one registration (responses implied).
FIGURE5_SEQUENCE: Tuple[Tuple[str, str], ...] = (
    ("amf", AUSF_UE_AUTH),  # 1. initial auth reaches the AUSF
    ("ausf", UDM_UE_AUTH_GET),  # 2. ... and is forwarded to the UDM
    ("udm", UDR_AUTH_SUBSCRIPTION),  # 3. credentials fetched (SQN advances)
    ("udm", EUDM_GENERATE_AV),  # 4. HE AV generated inside eUDM P-AKA
    ("ausf", EAUSF_DERIVE_SE_AV),  # 5. HXRES*/K_SEAF inside eAUSF P-AKA
    ("amf", AUSF_UE_AUTH_CONFIRM),  # 6. RES* confirmed, K_SEAF released
    ("amf", EAMF_DERIVE_KAMF),  # 7. K_AMF derived inside eAMF P-AKA
)


@dataclass
class FlowVerdict:
    """Outcome of verifying one recorded registration against Fig 5."""

    conforms: bool
    observed: List[SbiExchange] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)


def record_registration_flow(testbed: Testbed) -> List[SbiExchange]:
    """Register a fresh UE and return its SBI exchanges in order."""
    events = testbed.host.events
    before = len(events.select("sbi.request"))
    ue = testbed.add_subscriber()
    outcome = testbed.register(ue, establish_session=False)
    if not outcome.success:
        raise RuntimeError(f"registration failed: {outcome.failure_cause}")
    recorded = events.select("sbi.request")[before:]
    return [
        SbiExchange(
            src=str(e.detail["src"]), dst=str(e.detail["dst"]),
            path=str(e.detail["path"]),
        )
        for e in recorded
    ]


def _role_of(endpoint: str, testbed: Testbed) -> Optional[str]:
    """Map an endpoint name to its logical role (vnf or module name)."""
    vnf_clients = {
        testbed.amf.client.name: "amf",
        testbed.ausf.client.name: "ausf",
        testbed.udm.client.name: "udm",
        testbed.smf.client.name: "smf",
    }
    if endpoint in vnf_clients:
        return vnf_clients[endpoint]
    servers = {
        testbed.udr.name: "udr",
        testbed.udm.name: "udm",
        testbed.ausf.name: "ausf",
        testbed.amf.name: "amf",
    }
    if endpoint in servers:
        return servers[endpoint]
    if testbed.paka is not None:
        for name, module in testbed.paka.modules.items():
            if module.server.name == endpoint:
                return name.split("#")[0]
    return None


def verify_figure5(testbed: Testbed) -> FlowVerdict:
    """Record one registration and verify Fig 5's order and topology."""
    observed = record_registration_flow(testbed)
    verdict = FlowVerdict(conforms=True, observed=observed)

    # Property 1: the Fig 5 exchanges occur exactly once, in order.
    keyed = [(_role_of(x.src, testbed), x.path) for x in observed]
    positions: Dict[Tuple[str, str], List[int]] = {}
    for index, key in enumerate(keyed):
        positions.setdefault(key, []).append(index)
    last = -1
    for expected in FIGURE5_SEQUENCE:
        at = positions.get(expected, [])
        if len(at) != 1:
            verdict.violations.append(
                f"expected exactly one {expected}, saw {len(at)}"
            )
            continue
        if at[0] <= last:
            verdict.violations.append(f"{expected} out of order")
        last = at[0]

    # Property 2: modules only ever talk to (are talked to by) their
    # parent VNF — never to each other, never to other VNFs.
    parents = {"eudm": "udm", "eausf": "ausf", "eamf": "amf"}
    for exchange in observed:
        dst_role = _role_of(exchange.dst, testbed)
        src_role = _role_of(exchange.src, testbed)
        if dst_role in parents and src_role != parents[dst_role]:
            verdict.violations.append(
                f"module {dst_role} reached by {src_role}, "
                f"not its parent {parents[dst_role]}"
            )
        if src_role in parents:
            verdict.violations.append(
                f"module {src_role} initiated an exchange (modules must "
                f"only answer their parent VNF)"
            )

    verdict.conforms = not verdict.violations
    return verdict


def format_flow(observed: List[SbiExchange], testbed: Testbed) -> str:
    """Pretty-print a recorded flow as a Fig 5-style ladder."""
    lines = []
    for index, exchange in enumerate(observed, start=1):
        src = _role_of(exchange.src, testbed) or exchange.src
        dst = _role_of(exchange.dst, testbed) or exchange.dst
        lines.append(f"{index:>2}. {src:>6} -> {dst:<6} {exchange.path}")
    return "\n".join(lines)
