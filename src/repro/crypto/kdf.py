"""3GPP key derivation functions.

Implements the generic KDF of TS 33.220 Annex B (HMAC-SHA-256 over an
FC-tagged parameter string) and the 5G-specific derivations of TS 33.501
Annex A that the paper's P-AKA modules execute:

================  ====  =============================  ======================
Derivation        FC    Key                            Executed in (paper)
================  ====  =============================  ======================
K_AUSF            0x6A  CK ‖ IK                        eUDM P-AKA enclave
(X)RES*           0x6B  CK ‖ IK                        eUDM P-AKA enclave / UE
HXRES*            —     SHA-256(RAND ‖ XRES*)          eAUSF P-AKA enclave / SEAF
K_SEAF            0x6C  K_AUSF                         eAUSF P-AKA enclave
K_AMF             0x6D  K_SEAF                         eAMF P-AKA enclave
NAS int/enc keys  0x69  K_AMF                          AMF (NAS security)
K_gNB             0x6E  K_AMF                          AMF → gNB
================  ====  =============================  ======================
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Sequence


def ts33220_kdf(key: bytes, fc: int, params: Sequence[bytes]) -> bytes:
    """Generic 3GPP KDF (TS 33.220 Annex B.2).

    ``S = FC || P0 || L0 || P1 || L1 || ...`` where each ``Li`` is the
    2-byte big-endian length of ``Pi``; the derived key is
    ``HMAC-SHA-256(key, S)`` (32 bytes).
    """
    if not 0 <= fc <= 0xFF:
        raise ValueError(f"FC must fit one byte, got {fc:#x}")
    parts = [bytes([fc])]
    for p in params:
        if len(p) > 0xFFFF:
            raise ValueError(f"parameter too long for 16-bit length: {len(p)}")
        parts.append(p)
        parts.append(len(p).to_bytes(2, "big"))
    # hmac.digest is the one-shot C fast path: no HMAC object, no copied
    # hash contexts — the KDF chain runs seven times per registration.
    return hmac.digest(key, b"".join(parts), "sha256")


def serving_network_name(mcc: str, mnc: str) -> bytes:
    """The Serving Network Name per TS 24.501 §9.12.1 / TS 33.501 §6.1.1.4.

    Format ``5G:mnc<MNC>.mcc<MCC>.3gppnetwork.org`` with the MNC padded to
    three digits.
    """
    if not (mcc.isdigit() and len(mcc) == 3):
        raise ValueError(f"MCC must be 3 digits, got {mcc!r}")
    if not (mnc.isdigit() and len(mnc) in (2, 3)):
        raise ValueError(f"MNC must be 2 or 3 digits, got {mnc!r}")
    return f"5G:mnc{mnc.zfill(3)}.mcc{mcc}.3gppnetwork.org".encode()


def derive_kausf(ck: bytes, ik: bytes, snn: bytes, sqn_xor_ak: bytes) -> bytes:
    """K_AUSF per TS 33.501 A.2 (FC=0x6A, key CK‖IK)."""
    if len(sqn_xor_ak) != 6:
        raise ValueError(f"SQN xor AK must be 6 bytes, got {len(sqn_xor_ak)}")
    return ts33220_kdf(ck + ik, 0x6A, [snn, sqn_xor_ak])


def derive_res_star(ck: bytes, ik: bytes, snn: bytes, rand: bytes, res: bytes) -> bytes:
    """(X)RES* per TS 33.501 A.4 — the 128 *least* significant bits."""
    full = ts33220_kdf(ck + ik, 0x6B, [snn, rand, res])
    return full[16:]


def derive_hxres_star(rand: bytes, xres_star: bytes) -> bytes:
    """HXRES* per TS 33.501 A.5 — 128 *most* significant bits of SHA-256.

    Note: the paper's Table I lists HXRES* as 8 bytes; TS 33.501 defines 16.
    We implement the spec (see DESIGN.md §2).
    """
    digest = hashlib.sha256(rand + xres_star).digest()
    return digest[:16]


def derive_kseaf(kausf: bytes, snn: bytes) -> bytes:
    """K_SEAF per TS 33.501 A.6 (FC=0x6C, key K_AUSF)."""
    return ts33220_kdf(kausf, 0x6C, [snn])


def derive_kamf(kseaf: bytes, supi: str, abba: bytes = b"\x00\x00") -> bytes:
    """K_AMF per TS 33.501 A.7 (FC=0x6D, key K_SEAF, P0=SUPI, P1=ABBA)."""
    return ts33220_kdf(kseaf, 0x6D, [supi.encode(), abba])


# TS 33.501 A.8 algorithm type distinguishers.
N_NAS_ENC_ALG = 0x01
N_NAS_INT_ALG = 0x02


def derive_nas_keys(kamf: bytes, enc_alg_id: int = 1, int_alg_id: int = 2) -> "tuple[bytes, bytes]":
    """NAS encryption/integrity keys per TS 33.501 A.8 (FC=0x69).

    Returns ``(k_nas_enc, k_nas_int)``; each is the 128 least significant
    bits of the 256-bit KDF output, per §6.2.3.1.
    """
    k_enc = ts33220_kdf(kamf, 0x69, [bytes([N_NAS_ENC_ALG]), bytes([enc_alg_id])])[16:]
    k_int = ts33220_kdf(kamf, 0x69, [bytes([N_NAS_INT_ALG]), bytes([int_alg_id])])[16:]
    return k_enc, k_int


def derive_kgnb(kamf: bytes, uplink_nas_count: int, access_type: int = 0x01) -> bytes:
    """K_gNB per TS 33.501 A.9 (FC=0x6E, key K_AMF)."""
    if uplink_nas_count < 0 or uplink_nas_count > 0xFFFFFFFF:
        raise ValueError(f"NAS COUNT out of range: {uplink_nas_count}")
    return ts33220_kdf(
        kamf, 0x6E, [uplink_nas_count.to_bytes(4, "big"), bytes([access_type])]
    )
