"""128-NEA2 — NAS/AS ciphering (TS 33.501 Annex D / TS 33.401 B.1.3).

NEA2 is AES-128 in counter mode with the initial counter block built from
the 32-bit COUNT, the 5-bit BEARER and the 1-bit DIRECTION:

    ICB = COUNT(32) ‖ BEARER(5) ‖ DIRECTION(1) ‖ 0…0 (26) ‖ 0…0 (64)

Encryption and decryption are the same operation (CTR keystream XOR).
Used by the Security Mode procedure's ciphered NAS exchanges once K_AMF
and the NAS keys are in place.
"""

from __future__ import annotations

from repro.crypto.aes import aes128_cipher


def _initial_counter_block(count: int, bearer: int, direction: int) -> bytes:
    if not 0 <= count <= 0xFFFFFFFF:
        raise ValueError(f"COUNT out of range: {count}")
    if not 0 <= bearer < 32:
        raise ValueError(f"BEARER must fit 5 bits: {bearer}")
    if direction not in (0, 1):
        raise ValueError(f"DIRECTION must be 0 or 1: {direction}")
    block = count.to_bytes(4, "big")
    block += bytes([(bearer << 3) | (direction << 2)])
    block += bytes(11)
    return block


def nea2_encrypt(
    k_nas_enc: bytes, count: int, bearer: int, direction: int, plaintext: bytes
) -> bytes:
    """Cipher (or decipher) one NAS payload under 128-NEA2."""
    if len(k_nas_enc) != 16:
        raise ValueError(f"NEA2 key must be 16 bytes, got {len(k_nas_enc)}")
    icb = _initial_counter_block(count, bearer, direction)
    # K_NAS_enc is fixed for the lifetime of the NAS security context, so
    # the shared cipher cache expands it once for the whole session.
    return aes128_cipher(bytes(k_nas_enc)).ctr(icb, plaintext)


# CTR is an involution under the same parameters.
nea2_decrypt = nea2_encrypt
