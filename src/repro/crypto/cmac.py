"""AES-CMAC (RFC 4493 / NIST SP 800-38B).

5G NAS integrity algorithm 128-NIA2 is AES-CMAC over the message with the
NAS COUNT/bearer/direction prepended (TS 33.501 Annex D); the MAC carried
in NAS messages is the 4-byte truncation.  Used by the AMF and the UE for
the Security Mode procedure after K_AMF is derived.
"""

from __future__ import annotations

from functools import lru_cache

from repro.crypto.aes import aes128_cipher

_BLOCK = 16
_RB = 0x87


def _left_shift_one(block: bytes) -> "tuple[bytes, bool]":
    value = int.from_bytes(block, "big") << 1
    return (value & ((1 << 128) - 1)).to_bytes(16, "big"), bool(value >> 128)


@lru_cache(maxsize=4096)
def _generate_subkeys(key: bytes) -> "tuple[bytes, bytes]":
    """RFC 4493 K1/K2, cached per key — NAS integrity reuses K_NAS_int for
    every message of a registration, so the subkeys are derived once."""
    l = aes128_cipher(key).encrypt_block(bytes(16))
    k1, carry = _left_shift_one(l)
    if carry:
        k1 = k1[:-1] + bytes([k1[-1] ^ _RB])
    k2, carry = _left_shift_one(k1)
    if carry:
        k2 = k2[:-1] + bytes([k2[-1] ^ _RB])
    return k1, k2


def aes_cmac(key: bytes, message: bytes) -> bytes:
    """Full 16-byte AES-CMAC tag."""
    if len(key) != 16:
        raise ValueError(f"CMAC key must be 16 bytes, got {len(key)}")
    k1, k2 = _generate_subkeys(bytes(key))
    n_blocks = max(1, (len(message) + _BLOCK - 1) // _BLOCK)
    complete_last = len(message) > 0 and len(message) % _BLOCK == 0

    # Whole-block XORs as 128-bit integer ops (no per-byte generator).
    if complete_last:
        last = int.from_bytes(message[-_BLOCK:], "big") ^ int.from_bytes(k1, "big")
    else:
        tail = message[(n_blocks - 1) * _BLOCK :]
        padded = tail + b"\x80" + bytes(_BLOCK - len(tail) - 1)
        last = int.from_bytes(padded, "big") ^ int.from_bytes(k2, "big")

    # The CMAC chain x_i = E(x_{i-1} ^ m_i) from x_0 = 0 is zero-IV
    # CBC over the (subkey-masked) padded message: one bulk pass instead
    # of a per-block encrypt loop.
    return aes128_cipher(bytes(key)).cbc_mac(
        message[: (n_blocks - 1) * _BLOCK] + last.to_bytes(16, "big")
    )


def nia2_mac(
    k_nas_int: bytes,
    count: int,
    bearer: int,
    direction: int,
    message: bytes,
) -> bytes:
    """128-NIA2: 4-byte NAS MAC (TS 33.501 D.3.1.3 input framing).

    ``k_nas_int`` is the 16-byte NAS integrity key; ``direction`` is 0 for
    uplink and 1 for downlink.
    """
    if direction not in (0, 1):
        raise ValueError(f"direction must be 0 or 1, got {direction}")
    if not 0 <= bearer < 32:
        raise ValueError(f"bearer must fit 5 bits, got {bearer}")
    header = (
        count.to_bytes(4, "big")
        + bytes([(bearer << 3) | (direction << 2)])
        + bytes(3)
    )
    return aes_cmac(k_nas_int, header + message)[:4]
