"""Cryptography substrate.

Unlike the hardware substrates, nothing here is simulated: these are exact
implementations of the algorithms the 5G-AKA protocol runs —

* :mod:`repro.crypto.aes` — AES-128 block cipher (pure Python; the
  standard library ships no AES and this reproduction is offline),
* :mod:`repro.crypto.milenage` — the MILENAGE algorithm set f1–f5*
  (3GPP TS 35.205/35.206) used for MAC/RES/CK/IK/AK generation,
* :mod:`repro.crypto.kdf` — the 3GPP generic KDF (TS 33.220 Annex B) and
  the 5G key-derivation tree of TS 33.501 Annex A (K_AUSF, K_SEAF, K_AMF,
  RES*/XRES*, HXRES*),
* :mod:`repro.crypto.suci` — SUPI concealment via ECIES Profile A
  (Curve25519, TS 33.501 Annex C),
* :mod:`repro.crypto.tls` — TLS session model with real AEAD-style record
  protection plus the latency cost hooks the network substrate uses.
"""

from repro.crypto.aes import aes128_decrypt_block, aes128_encrypt_block
from repro.crypto.kdf import (
    derive_hxres_star,
    derive_kamf,
    derive_kausf,
    derive_kseaf,
    derive_res_star,
    ts33220_kdf,
)
from repro.crypto.milenage import Milenage, MilenageVector, compute_opc
from repro.crypto.suci import (
    EciesProfileA,
    Suci,
    Supi,
    conceal_supi,
    deconceal_suci,
    x25519,
)

__all__ = [
    "aes128_encrypt_block",
    "aes128_decrypt_block",
    "Milenage",
    "MilenageVector",
    "compute_opc",
    "ts33220_kdf",
    "derive_kausf",
    "derive_kseaf",
    "derive_kamf",
    "derive_res_star",
    "derive_hxres_star",
    "Supi",
    "Suci",
    "EciesProfileA",
    "conceal_supi",
    "deconceal_suci",
    "x25519",
]
