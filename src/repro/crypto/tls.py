"""TLS session model for the simulated network.

3GPP mandates TLS with mutual authentication between VNFs on the
service-based interfaces (TS 33.210), and the paper's P-AKA modules are
HTTPS (Pistache + OpenSSL) servers.  This module provides:

* real record protection — AES-128-CTR with an HMAC-SHA-256 tag over a
  per-session key, so tests can assert that an on-path observer of the
  simulated bridge cannot read AKA parameters, and
* a cycle cost model — handshake and per-byte record costs that the
  network substrate charges to the endpoint CPUs (encryption is one of
  the paper's explanations for the amplified `L_N` inside SGX).
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Optional

from repro.crypto.aes import aes128_cipher


class TlsError(Exception):
    """Record authentication or handshake failure."""


@dataclass(frozen=True)
class TlsCostModel:
    """Cycle costs for the TLS operations (charged via the CPU model)."""

    handshake_cycles: int = 1_200_000  # ECDHE + cert verification, amortised
    record_fixed_cycles: int = 2_400  # per-record framing + MAC setup
    record_per_byte_cycles: float = 6.0  # AES + HMAC per payload byte

    def record_cycles(self, nbytes: int) -> float:
        return self.record_fixed_cycles + self.record_per_byte_cycles * nbytes


@dataclass
class TlsSession:
    """An established mutual-TLS session between two endpoints.

    Key material is derived **once** per session and direction: each
    direction gets its own AES-128 key (held as an expanded cipher
    object), CTR IV base and MAC key, and each record's counter block is
    built from the sequence number.  That removes the two SHA-256
    invocations and the fresh AES key schedule the old per-record
    derivation paid on every record — the hottest non-OCALL frames in the
    registration profile — and it also gives the two directions distinct
    keystreams (the per-record scheme reused key+counter across
    directions at equal sequence numbers).
    """

    client_name: str
    server_name: str
    master_secret: bytes
    cost_model: TlsCostModel = field(default_factory=TlsCostModel)
    is_client: bool = True
    _send_seq: int = 0
    _recv_seq: int = 0

    TAG_LENGTH = 16

    def __post_init__(self) -> None:
        c2s = hashlib.sha256(self.master_secret + b"c2s").digest()
        s2c = hashlib.sha256(self.master_secret + b"s2c").digest()
        c2s_mac = hashlib.sha256(b"mac" + c2s).digest()
        s2c_mac = hashlib.sha256(b"mac" + s2c).digest()
        if self.is_client:
            send, send_mac, recv, recv_mac = c2s, c2s_mac, s2c, s2c_mac
        else:
            send, send_mac, recv, recv_mac = s2c, s2c_mac, c2s, c2s_mac
        self._send_cipher = aes128_cipher(send[:16])
        self._send_iv = int.from_bytes(send[16:28], "big")
        self._send_mac_key = send_mac
        self._recv_cipher = aes128_cipher(recv[:16])
        self._recv_iv = int.from_bytes(recv[16:28], "big")
        self._recv_mac_key = recv_mac

    @staticmethod
    def _record_icb(iv96: int, seq: int) -> bytes:
        """Counter block for record ``seq``: (IV ⊕ seq) ‖ 32-bit counter.

        Folding the sequence number into the 96-bit IV gives every record
        its own counter space; the low 32 bits count blocks within the
        record, so streams never overlap for records under 64 GiB.
        """
        return ((iv96 ^ seq) << 32).to_bytes(16, "big")

    def protect(self, plaintext: bytes) -> bytes:
        """Encrypt-and-MAC one record; advances the send sequence."""
        seq = self._send_seq
        self._send_seq = seq + 1
        ciphertext = self._send_cipher.ctr(
            self._record_icb(self._send_iv, seq), plaintext
        )
        tag = hmac.digest(
            self._send_mac_key, seq.to_bytes(8, "big") + ciphertext, "sha256"
        )[: self.TAG_LENGTH]
        return ciphertext + tag

    def unprotect(self, record: bytes) -> bytes:
        """Verify and decrypt one record; advances the receive sequence."""
        if len(record) < self.TAG_LENGTH:
            raise TlsError("record shorter than authentication tag")
        seq = self._recv_seq
        ciphertext, tag = record[: -self.TAG_LENGTH], record[-self.TAG_LENGTH :]
        expected = hmac.digest(
            self._recv_mac_key, seq.to_bytes(8, "big") + ciphertext, "sha256"
        )[: self.TAG_LENGTH]
        if not hmac.compare_digest(tag, expected):
            raise TlsError("record authentication failed")
        self._recv_seq = seq + 1
        return self._recv_cipher.ctr(self._record_icb(self._recv_iv, seq), ciphertext)


def establish_session(
    client_name: str,
    server_name: str,
    handshake_secret: bytes,
    cost_model: Optional[TlsCostModel] = None,
) -> "tuple[TlsSession, TlsSession]":
    """Create the paired client/server session objects.

    The handshake itself (certificate exchange, ECDHE) is modelled by the
    cost hooks; the resulting symmetric state is what matters for record
    protection.  Returns ``(client_session, server_session)`` sharing a
    master secret derived from ``handshake_secret``.
    """
    master = hashlib.sha256(
        b"tls-master" + client_name.encode() + server_name.encode() + handshake_secret
    ).digest()
    kwargs = {"cost_model": cost_model} if cost_model is not None else {}
    client = TlsSession(client_name=client_name, server_name=server_name,
                        master_secret=master, is_client=True, **kwargs)
    server = TlsSession(client_name=client_name, server_name=server_name,
                        master_secret=master, is_client=False, **kwargs)
    return client, server
