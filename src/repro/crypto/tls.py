"""TLS session model for the simulated network.

3GPP mandates TLS with mutual authentication between VNFs on the
service-based interfaces (TS 33.210), and the paper's P-AKA modules are
HTTPS (Pistache + OpenSSL) servers.  This module provides:

* real record protection — AES-128-CTR with an HMAC-SHA-256 tag over a
  per-session key, so tests can assert that an on-path observer of the
  simulated bridge cannot read AKA parameters, and
* a cycle cost model — handshake and per-byte record costs that the
  network substrate charges to the endpoint CPUs (encryption is one of
  the paper's explanations for the amplified `L_N` inside SGX).
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Optional

from repro.crypto.aes import aes128_ctr


class TlsError(Exception):
    """Record authentication or handshake failure."""


@dataclass(frozen=True)
class TlsCostModel:
    """Cycle costs for the TLS operations (charged via the CPU model)."""

    handshake_cycles: int = 1_200_000  # ECDHE + cert verification, amortised
    record_fixed_cycles: int = 2_400  # per-record framing + MAC setup
    record_per_byte_cycles: float = 6.0  # AES + HMAC per payload byte

    def record_cycles(self, nbytes: int) -> float:
        return self.record_fixed_cycles + self.record_per_byte_cycles * nbytes


@dataclass
class TlsSession:
    """An established mutual-TLS session between two endpoints."""

    client_name: str
    server_name: str
    master_secret: bytes
    cost_model: TlsCostModel = field(default_factory=TlsCostModel)
    _send_seq: int = 0
    _recv_seq: int = 0

    TAG_LENGTH = 16

    def _record_keys(self, seq: int) -> "tuple[bytes, bytes, bytes]":
        """Derive per-record key material (key, counter block, MAC key).

        The peer session derives the identical key for the same sequence
        number, so the receiver's ``unprotect`` reuses the AES schedule the
        sender's ``protect`` already expanded (shared per-key cache).
        """
        block = hashlib.sha256(self.master_secret + seq.to_bytes(8, "big")).digest()
        mac_key = hashlib.sha256(b"mac" + block).digest()
        return block[:16], block[16:], mac_key

    def protect(self, plaintext: bytes) -> bytes:
        """Encrypt-and-MAC one record; advances the send sequence."""
        key, icb, mac_key = self._record_keys(self._send_seq)
        self._send_seq += 1
        ciphertext = aes128_ctr(key, icb, plaintext)
        tag = hmac.new(mac_key, ciphertext, hashlib.sha256).digest()[: self.TAG_LENGTH]
        return ciphertext + tag

    def unprotect(self, record: bytes) -> bytes:
        """Verify and decrypt one record; advances the receive sequence."""
        if len(record) < self.TAG_LENGTH:
            raise TlsError("record shorter than authentication tag")
        key, icb, mac_key = self._record_keys(self._recv_seq)
        ciphertext, tag = record[: -self.TAG_LENGTH], record[-self.TAG_LENGTH :]
        expected = hmac.new(mac_key, ciphertext, hashlib.sha256).digest()[
            : self.TAG_LENGTH
        ]
        if not hmac.compare_digest(tag, expected):
            raise TlsError("record authentication failed")
        self._recv_seq += 1
        return aes128_ctr(key, icb, ciphertext)


def establish_session(
    client_name: str,
    server_name: str,
    handshake_secret: bytes,
    cost_model: Optional[TlsCostModel] = None,
) -> "tuple[TlsSession, TlsSession]":
    """Create the paired client/server session objects.

    The handshake itself (certificate exchange, ECDHE) is modelled by the
    cost hooks; the resulting symmetric state is what matters for record
    protection.  Returns ``(client_session, server_session)`` sharing a
    master secret derived from ``handshake_secret``.
    """
    master = hashlib.sha256(
        b"tls-master" + client_name.encode() + server_name.encode() + handshake_secret
    ).digest()
    kwargs = {"cost_model": cost_model} if cost_model is not None else {}
    client = TlsSession(client_name=client_name, server_name=server_name,
                        master_secret=master, **kwargs)
    server = TlsSession(client_name=client_name, server_name=server_name,
                        master_secret=master, **kwargs)
    return client, server
