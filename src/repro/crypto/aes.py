"""AES-128 block cipher, pure Python.

MILENAGE (TS 35.206) is defined over a 128-bit block cipher with a 128-bit
key, for which 3GPP uses AES-128 (Rijndael).  This module implements the
FIPS-197 cipher directly; it is deliberately table-driven and allocation
light, but clarity beats speed — the simulator charges cycle costs through
the hardware model, not through Python's own runtime.

Only ECB-style single-block operations are exposed; MILENAGE and the KDFs
never need a mode of operation beyond single-block encryption and XOR.
"""

from __future__ import annotations

from typing import List

# FIPS-197 S-box.
_SBOX = bytes(
    [
        0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5, 0x30, 0x01, 0x67, 0x2B, 0xFE, 0xD7, 0xAB, 0x76,
        0xCA, 0x82, 0xC9, 0x7D, 0xFA, 0x59, 0x47, 0xF0, 0xAD, 0xD4, 0xA2, 0xAF, 0x9C, 0xA4, 0x72, 0xC0,
        0xB7, 0xFD, 0x93, 0x26, 0x36, 0x3F, 0xF7, 0xCC, 0x34, 0xA5, 0xE5, 0xF1, 0x71, 0xD8, 0x31, 0x15,
        0x04, 0xC7, 0x23, 0xC3, 0x18, 0x96, 0x05, 0x9A, 0x07, 0x12, 0x80, 0xE2, 0xEB, 0x27, 0xB2, 0x75,
        0x09, 0x83, 0x2C, 0x1A, 0x1B, 0x6E, 0x5A, 0xA0, 0x52, 0x3B, 0xD6, 0xB3, 0x29, 0xE3, 0x2F, 0x84,
        0x53, 0xD1, 0x00, 0xED, 0x20, 0xFC, 0xB1, 0x5B, 0x6A, 0xCB, 0xBE, 0x39, 0x4A, 0x4C, 0x58, 0xCF,
        0xD0, 0xEF, 0xAA, 0xFB, 0x43, 0x4D, 0x33, 0x85, 0x45, 0xF9, 0x02, 0x7F, 0x50, 0x3C, 0x9F, 0xA8,
        0x51, 0xA3, 0x40, 0x8F, 0x92, 0x9D, 0x38, 0xF5, 0xBC, 0xB6, 0xDA, 0x21, 0x10, 0xFF, 0xF3, 0xD2,
        0xCD, 0x0C, 0x13, 0xEC, 0x5F, 0x97, 0x44, 0x17, 0xC4, 0xA7, 0x7E, 0x3D, 0x64, 0x5D, 0x19, 0x73,
        0x60, 0x81, 0x4F, 0xDC, 0x22, 0x2A, 0x90, 0x88, 0x46, 0xEE, 0xB8, 0x14, 0xDE, 0x5E, 0x0B, 0xDB,
        0xE0, 0x32, 0x3A, 0x0A, 0x49, 0x06, 0x24, 0x5C, 0xC2, 0xD3, 0xAC, 0x62, 0x91, 0x95, 0xE4, 0x79,
        0xE7, 0xC8, 0x37, 0x6D, 0x8D, 0xD5, 0x4E, 0xA9, 0x6C, 0x56, 0xF4, 0xEA, 0x65, 0x7A, 0xAE, 0x08,
        0xBA, 0x78, 0x25, 0x2E, 0x1C, 0xA6, 0xB4, 0xC6, 0xE8, 0xDD, 0x74, 0x1F, 0x4B, 0xBD, 0x8B, 0x8A,
        0x70, 0x3E, 0xB5, 0x66, 0x48, 0x03, 0xF6, 0x0E, 0x61, 0x35, 0x57, 0xB9, 0x86, 0xC1, 0x1D, 0x9E,
        0xE1, 0xF8, 0x98, 0x11, 0x69, 0xD9, 0x8E, 0x94, 0x9B, 0x1E, 0x87, 0xE9, 0xCE, 0x55, 0x28, 0xDF,
        0x8C, 0xA1, 0x89, 0x0D, 0xBF, 0xE6, 0x42, 0x68, 0x41, 0x99, 0x2D, 0x0F, 0xB0, 0x54, 0xBB, 0x16,
    ]
)

_INV_SBOX = bytes(256)
_inv = bytearray(256)
for i, s in enumerate(_SBOX):
    _inv[s] = i
_INV_SBOX = bytes(_inv)
del _inv

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)


def _xtime(a: int) -> int:
    """Multiply by x in GF(2^8) modulo the AES polynomial."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gmul(a: int, b: int) -> int:
    """GF(2^8) multiplication (schoolbook; used in MixColumns)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _expand_key(key: bytes) -> List[bytes]:
    """Expand a 16-byte key into 11 round keys of 16 bytes each."""
    if len(key) != 16:
        raise ValueError(f"AES-128 key must be 16 bytes, got {len(key)}")
    words = [key[i : i + 4] for i in range(0, 16, 4)]
    for round_index in range(10):
        prev = words[-1]
        rotated = prev[1:] + prev[:1]
        substituted = bytes(_SBOX[b] for b in rotated)
        first = bytes(
            [
                substituted[0] ^ words[-4][0] ^ _RCON[round_index],
                substituted[1] ^ words[-4][1],
                substituted[2] ^ words[-4][2],
                substituted[3] ^ words[-4][3],
            ]
        )
        words.append(first)
        for _ in range(3):
            words.append(bytes(a ^ b for a, b in zip(words[-1], words[-4])))
    return [b"".join(words[i : i + 4]) for i in range(0, 44, 4)]


def _add_round_key(state: bytearray, round_key: bytes) -> None:
    for i in range(16):
        state[i] ^= round_key[i]


def _sub_bytes(state: bytearray, box: bytes) -> None:
    for i in range(16):
        state[i] = box[state[i]]


def _shift_rows(state: bytearray) -> None:
    # State is column-major: byte (row r, column c) lives at index 4*c + r.
    for r in range(1, 4):
        row = [state[4 * c + r] for c in range(4)]
        row = row[r:] + row[:r]
        for c in range(4):
            state[4 * c + r] = row[c]


def _inv_shift_rows(state: bytearray) -> None:
    for r in range(1, 4):
        row = [state[4 * c + r] for c in range(4)]
        row = row[-r:] + row[:-r]
        for c in range(4):
            state[4 * c + r] = row[c]


def _mix_columns(state: bytearray) -> None:
    for c in range(4):
        col = state[4 * c : 4 * c + 4]
        state[4 * c + 0] = _gmul(col[0], 2) ^ _gmul(col[1], 3) ^ col[2] ^ col[3]
        state[4 * c + 1] = col[0] ^ _gmul(col[1], 2) ^ _gmul(col[2], 3) ^ col[3]
        state[4 * c + 2] = col[0] ^ col[1] ^ _gmul(col[2], 2) ^ _gmul(col[3], 3)
        state[4 * c + 3] = _gmul(col[0], 3) ^ col[1] ^ col[2] ^ _gmul(col[3], 2)


def _inv_mix_columns(state: bytearray) -> None:
    for c in range(4):
        col = state[4 * c : 4 * c + 4]
        state[4 * c + 0] = (
            _gmul(col[0], 14) ^ _gmul(col[1], 11) ^ _gmul(col[2], 13) ^ _gmul(col[3], 9)
        )
        state[4 * c + 1] = (
            _gmul(col[0], 9) ^ _gmul(col[1], 14) ^ _gmul(col[2], 11) ^ _gmul(col[3], 13)
        )
        state[4 * c + 2] = (
            _gmul(col[0], 13) ^ _gmul(col[1], 9) ^ _gmul(col[2], 14) ^ _gmul(col[3], 11)
        )
        state[4 * c + 3] = (
            _gmul(col[0], 11) ^ _gmul(col[1], 13) ^ _gmul(col[2], 9) ^ _gmul(col[3], 14)
        )


def aes128_encrypt_block(key: bytes, block: bytes) -> bytes:
    """Encrypt one 16-byte block with AES-128."""
    if len(block) != 16:
        raise ValueError(f"AES block must be 16 bytes, got {len(block)}")
    round_keys = _expand_key(key)
    state = bytearray(block)
    _add_round_key(state, round_keys[0])
    for round_index in range(1, 10):
        _sub_bytes(state, _SBOX)
        _shift_rows(state)
        _mix_columns(state)
        _add_round_key(state, round_keys[round_index])
    _sub_bytes(state, _SBOX)
    _shift_rows(state)
    _add_round_key(state, round_keys[10])
    return bytes(state)


def aes128_decrypt_block(key: bytes, block: bytes) -> bytes:
    """Decrypt one 16-byte block with AES-128."""
    if len(block) != 16:
        raise ValueError(f"AES block must be 16 bytes, got {len(block)}")
    round_keys = _expand_key(key)
    state = bytearray(block)
    _add_round_key(state, round_keys[10])
    for round_index in range(9, 0, -1):
        _inv_shift_rows(state)
        _sub_bytes(state, _INV_SBOX)
        _add_round_key(state, round_keys[round_index])
        _inv_mix_columns(state)
    _inv_shift_rows(state)
    _sub_bytes(state, _INV_SBOX)
    _add_round_key(state, round_keys[0])
    return bytes(state)


def aes128_ctr(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """AES-128 in counter mode (used by the ECIES SUCI profile).

    ``nonce`` must be 16 bytes; it is used as the initial counter block and
    incremented big-endian per block, matching common ECIES profiles.
    """
    if len(nonce) != 16:
        raise ValueError(f"CTR nonce must be 16 bytes, got {len(nonce)}")
    out = bytearray()
    counter = int.from_bytes(nonce, "big")
    for offset in range(0, len(data), 16):
        keystream = aes128_encrypt_block(key, counter.to_bytes(16, "big"))
        chunk = data[offset : offset + 16]
        out.extend(a ^ b for a, b in zip(chunk, keystream))
        counter = (counter + 1) % (1 << 128)
    return bytes(out)
