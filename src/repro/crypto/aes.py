"""AES-128 block cipher, pure Python, T-table accelerated.

MILENAGE (TS 35.206) is defined over a 128-bit block cipher with a 128-bit
key, for which 3GPP uses AES-128 (Rijndael).  This module implements the
FIPS-197 cipher over four precomputed 32-bit T-tables (SubBytes, ShiftRows
and MixColumns fused into table lookups), which is the fastest portable
formulation — the simulator charges cycle costs through the hardware
model, so host speed here only determines how fast campaigns regenerate.

Two APIs are exposed:

* :class:`AES128` — a keyed cipher object that expands the key **once**;
  hot callers (MILENAGE, CMAC, TLS record protection, CTR modes) hold one
  per key and amortise the schedule over every block.
* module-level one-shot helpers (:func:`aes128_encrypt_block` et al.) that
  transparently reuse cached cipher objects keyed by the raw key bytes,
  so legacy call sites get the fast path without restructuring.

Side-channel hardening is explicitly a non-goal: this cipher runs inside a
simulation, never against an adversary with a timer.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import List, Optional, Tuple

# Optional hardware-AES backend: when the `cryptography` package (OpenSSL
# bindings) is importable, block and CTR operations route through AES-NI.
# AES is AES — the output is byte-identical to the pure-Python T-table
# path, which remains both the fallback for minimal environments and the
# reference the property tests compare against.  Set REPRO_PURE_AES=1 to
# force the pure path (e.g. to benchmark it).
try:
    if os.environ.get("REPRO_PURE_AES"):
        raise ImportError("pure-python AES forced via REPRO_PURE_AES")
    from cryptography.hazmat.primitives.ciphers import Cipher as _HwCipher
    from cryptography.hazmat.primitives.ciphers import algorithms as _hw_algorithms
    from cryptography.hazmat.primitives.ciphers import modes as _hw_modes

    HAVE_HW_AES = True
except ImportError:  # pragma: no cover - exercised via REPRO_PURE_AES runs
    _HwCipher = _hw_algorithms = _hw_modes = None  # type: ignore[assignment]
    HAVE_HW_AES = False

# FIPS-197 S-box.
_SBOX = bytes(
    [
        0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5, 0x30, 0x01, 0x67, 0x2B, 0xFE, 0xD7, 0xAB, 0x76,
        0xCA, 0x82, 0xC9, 0x7D, 0xFA, 0x59, 0x47, 0xF0, 0xAD, 0xD4, 0xA2, 0xAF, 0x9C, 0xA4, 0x72, 0xC0,
        0xB7, 0xFD, 0x93, 0x26, 0x36, 0x3F, 0xF7, 0xCC, 0x34, 0xA5, 0xE5, 0xF1, 0x71, 0xD8, 0x31, 0x15,
        0x04, 0xC7, 0x23, 0xC3, 0x18, 0x96, 0x05, 0x9A, 0x07, 0x12, 0x80, 0xE2, 0xEB, 0x27, 0xB2, 0x75,
        0x09, 0x83, 0x2C, 0x1A, 0x1B, 0x6E, 0x5A, 0xA0, 0x52, 0x3B, 0xD6, 0xB3, 0x29, 0xE3, 0x2F, 0x84,
        0x53, 0xD1, 0x00, 0xED, 0x20, 0xFC, 0xB1, 0x5B, 0x6A, 0xCB, 0xBE, 0x39, 0x4A, 0x4C, 0x58, 0xCF,
        0xD0, 0xEF, 0xAA, 0xFB, 0x43, 0x4D, 0x33, 0x85, 0x45, 0xF9, 0x02, 0x7F, 0x50, 0x3C, 0x9F, 0xA8,
        0x51, 0xA3, 0x40, 0x8F, 0x92, 0x9D, 0x38, 0xF5, 0xBC, 0xB6, 0xDA, 0x21, 0x10, 0xFF, 0xF3, 0xD2,
        0xCD, 0x0C, 0x13, 0xEC, 0x5F, 0x97, 0x44, 0x17, 0xC4, 0xA7, 0x7E, 0x3D, 0x64, 0x5D, 0x19, 0x73,
        0x60, 0x81, 0x4F, 0xDC, 0x22, 0x2A, 0x90, 0x88, 0x46, 0xEE, 0xB8, 0x14, 0xDE, 0x5E, 0x0B, 0xDB,
        0xE0, 0x32, 0x3A, 0x0A, 0x49, 0x06, 0x24, 0x5C, 0xC2, 0xD3, 0xAC, 0x62, 0x91, 0x95, 0xE4, 0x79,
        0xE7, 0xC8, 0x37, 0x6D, 0x8D, 0xD5, 0x4E, 0xA9, 0x6C, 0x56, 0xF4, 0xEA, 0x65, 0x7A, 0xAE, 0x08,
        0xBA, 0x78, 0x25, 0x2E, 0x1C, 0xA6, 0xB4, 0xC6, 0xE8, 0xDD, 0x74, 0x1F, 0x4B, 0xBD, 0x8B, 0x8A,
        0x70, 0x3E, 0xB5, 0x66, 0x48, 0x03, 0xF6, 0x0E, 0x61, 0x35, 0x57, 0xB9, 0x86, 0xC1, 0x1D, 0x9E,
        0xE1, 0xF8, 0x98, 0x11, 0x69, 0xD9, 0x8E, 0x94, 0x9B, 0x1E, 0x87, 0xE9, 0xCE, 0x55, 0x28, 0xDF,
        0x8C, 0xA1, 0x89, 0x0D, 0xBF, 0xE6, 0x42, 0x68, 0x41, 0x99, 0x2D, 0x0F, 0xB0, 0x54, 0xBB, 0x16,
    ]
)

_INV_SBOX = bytes(_SBOX.index(i) for i in range(256))

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)


def _gmul(a: int, b: int) -> int:
    """GF(2^8) multiplication modulo the AES polynomial (table builds only)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        if a & 0x100:
            a ^= 0x11B
        b >>= 1
    return result


def _build_tables() -> Tuple[Tuple[Tuple[int, ...], ...], Tuple[Tuple[int, ...], ...]]:
    """Precompute the encryption (T) and decryption (Td) tables.

    ``T{j}[x]`` is the MixColumns matrix applied to the column holding
    ``SBOX[x]`` in row ``j`` (zeros elsewhere); XORing four lookups fuses
    SubBytes + ShiftRows + MixColumns into one step per output word.  The
    Td tables do the same for the equivalent inverse cipher.
    """
    enc: List[List[int]] = [[], [], [], []]
    dec: List[List[int]] = [[], [], [], []]
    # Columns of the (Inv)MixColumns matrices, top row first.
    mix = ((2, 1, 1, 3), (3, 2, 1, 1), (1, 3, 2, 1), (1, 1, 3, 2))
    inv_mix = ((14, 9, 13, 11), (11, 14, 9, 13), (13, 11, 14, 9), (9, 13, 11, 14))
    for x in range(256):
        s, si = _SBOX[x], _INV_SBOX[x]
        for j in range(4):
            enc[j].append(
                (_gmul(s, mix[j][0]) << 24)
                | (_gmul(s, mix[j][1]) << 16)
                | (_gmul(s, mix[j][2]) << 8)
                | _gmul(s, mix[j][3])
            )
            dec[j].append(
                (_gmul(si, inv_mix[j][0]) << 24)
                | (_gmul(si, inv_mix[j][1]) << 16)
                | (_gmul(si, inv_mix[j][2]) << 8)
                | _gmul(si, inv_mix[j][3])
            )
    return (
        tuple(tuple(col) for col in enc),
        tuple(tuple(col) for col in dec),
    )


(_T0, _T1, _T2, _T3), (_TD0, _TD1, _TD2, _TD3) = _build_tables()

_MASK128 = (1 << 128) - 1


def _expand_key_words(key: bytes) -> Tuple[int, ...]:
    """Expand a 16-byte key into the 44 32-bit round-key words."""
    if len(key) != 16:
        raise ValueError(f"AES-128 key must be 16 bytes, got {len(key)}")
    sbox = _SBOX
    words = [int.from_bytes(key[i : i + 4], "big") for i in range(0, 16, 4)]
    for i in range(4, 44):
        t = words[i - 1]
        if i % 4 == 0:
            # SubWord(RotWord(t)) ^ Rcon.
            t = (
                (sbox[(t >> 16) & 0xFF] << 24)
                | (sbox[(t >> 8) & 0xFF] << 16)
                | (sbox[t & 0xFF] << 8)
                | sbox[(t >> 24) & 0xFF]
            ) ^ (_RCON[i // 4 - 1] << 24)
        words.append(words[i - 4] ^ t)
    return tuple(words)


def _invert_schedule(ek: Tuple[int, ...]) -> Tuple[int, ...]:
    """Round keys for the equivalent inverse cipher (InvMixColumns applied
    to the inner round keys, order reversed)."""
    sbox = _SBOX
    dk: List[int] = list(ek[40:44])
    for r in range(9, 0, -1):
        for w in ek[4 * r : 4 * r + 4]:
            # InvMixColumns(w): Td tables invert the S-box internally, so
            # feed them S-box outputs to apply the bare matrix.
            dk.append(
                _TD0[sbox[(w >> 24) & 0xFF]]
                ^ _TD1[sbox[(w >> 16) & 0xFF]]
                ^ _TD2[sbox[(w >> 8) & 0xFF]]
                ^ _TD3[sbox[w & 0xFF]]
            )
    dk.extend(ek[0:4])
    return tuple(dk)


class AES128:
    """AES-128 with the key schedule expanded once at construction.

    >>> cipher = AES128(bytes(16))
    >>> cipher.decrypt_block(cipher.encrypt_block(bytes(16))) == bytes(16)
    True
    """

    __slots__ = ("_key", "_ek_lazy", "_dk", "_hw_algo", "_hw_ecb_enc", "_hw_ecb_dec")

    def __init__(self, key: bytes) -> None:
        key = bytes(key)
        if len(key) != 16:
            raise ValueError(f"AES-128 key must be 16 bytes, got {len(key)}")
        self._key = key
        self._dk: "Tuple[int, ...] | None" = None  # inverted lazily
        if HAVE_HW_AES:
            algo = _hw_algorithms.AES(key)
            self._hw_algo: Optional[object] = algo
            # ECB contexts are stateless per block, so one encryptor /
            # decryptor pair serves every block-API call on this key.
            # Every hot user (CTR, CBC-MAC, MILENAGE, block encrypt)
            # needs the encryptor; decryption is rare, so that context
            # is only built on first use.
            self._hw_ecb_enc = _HwCipher(algo, _hw_modes.ECB()).encryptor()
            self._hw_ecb_dec = None
            self._ek_lazy: "Tuple[int, ...] | None" = None  # pure path unused
        else:
            self._hw_algo = self._hw_ecb_enc = self._hw_ecb_dec = None
            self._ek_lazy = _expand_key_words(key)

    @property
    def _ek(self) -> Tuple[int, ...]:
        """Round-key words for the pure-Python path (expanded on demand —
        with the hardware backend active they are only needed when a caller
        explicitly exercises the T-table reference)."""
        ek = self._ek_lazy
        if ek is None:
            ek = self._ek_lazy = _expand_key_words(self._key)
        return ek

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != 16:
            raise ValueError(f"AES block must be 16 bytes, got {len(block)}")
        hw = self._hw_ecb_enc
        if hw is not None:
            return hw.update(block)
        return self._pure_encrypt_block(block)

    def _pure_encrypt_block(self, block: bytes) -> bytes:
        """T-table single-block encryption (backend-independent reference)."""
        ek = self._ek
        t0, t1, t2, t3 = _T0, _T1, _T2, _T3
        s0 = int.from_bytes(block[0:4], "big") ^ ek[0]
        s1 = int.from_bytes(block[4:8], "big") ^ ek[1]
        s2 = int.from_bytes(block[8:12], "big") ^ ek[2]
        s3 = int.from_bytes(block[12:16], "big") ^ ek[3]
        k = 4
        for _ in range(9):
            r0 = t0[s0 >> 24] ^ t1[(s1 >> 16) & 0xFF] ^ t2[(s2 >> 8) & 0xFF] ^ t3[s3 & 0xFF] ^ ek[k]
            r1 = t0[s1 >> 24] ^ t1[(s2 >> 16) & 0xFF] ^ t2[(s3 >> 8) & 0xFF] ^ t3[s0 & 0xFF] ^ ek[k + 1]
            r2 = t0[s2 >> 24] ^ t1[(s3 >> 16) & 0xFF] ^ t2[(s0 >> 8) & 0xFF] ^ t3[s1 & 0xFF] ^ ek[k + 2]
            r3 = t0[s3 >> 24] ^ t1[(s0 >> 16) & 0xFF] ^ t2[(s1 >> 8) & 0xFF] ^ t3[s2 & 0xFF] ^ ek[k + 3]
            s0, s1, s2, s3 = r0, r1, r2, r3
            k += 4
        sbox = _SBOX
        r0 = ((sbox[s0 >> 24] << 24) | (sbox[(s1 >> 16) & 0xFF] << 16)
              | (sbox[(s2 >> 8) & 0xFF] << 8) | sbox[s3 & 0xFF]) ^ ek[40]
        r1 = ((sbox[s1 >> 24] << 24) | (sbox[(s2 >> 16) & 0xFF] << 16)
              | (sbox[(s3 >> 8) & 0xFF] << 8) | sbox[s0 & 0xFF]) ^ ek[41]
        r2 = ((sbox[s2 >> 24] << 24) | (sbox[(s3 >> 16) & 0xFF] << 16)
              | (sbox[(s0 >> 8) & 0xFF] << 8) | sbox[s1 & 0xFF]) ^ ek[42]
        r3 = ((sbox[s3 >> 24] << 24) | (sbox[(s0 >> 16) & 0xFF] << 16)
              | (sbox[(s1 >> 8) & 0xFF] << 8) | sbox[s2 & 0xFF]) ^ ek[43]
        return ((r0 << 96) | (r1 << 64) | (r2 << 32) | r3).to_bytes(16, "big")

    def encrypt_blocks(self, data: bytes) -> bytes:
        """ECB-encrypt ``data`` (a concatenation of independent 16-byte
        blocks) in one pass.

        Byte-identical to ``b"".join(encrypt_block(b) for b in blocks)``;
        the hardware backend handles the whole buffer in a single
        ``update`` call, and the pure path inlines the T-table rounds so
        the tables, S-box and boundary round keys bind to locals once for
        the entire batch (the bulk-CTR pattern applied to ECB).  MILENAGE
        uses this to run all of a vector's post-TEMP encryptions as one
        multi-block pass.
        """
        n = len(data)
        if n % 16:
            raise ValueError(f"ECB batch must be a multiple of 16 bytes, got {n}")
        if n == 0:
            return b""
        hw = self._hw_ecb_enc
        if hw is not None:
            return hw.update(data)
        ek = self._ek
        t0, t1, t2, t3 = _T0, _T1, _T2, _T3
        sbox = _SBOX
        ek0, ek1, ek2, ek3 = ek[0], ek[1], ek[2], ek[3]
        ek40, ek41, ek42, ek43 = ek[40], ek[41], ek[42], ek[43]
        nblocks = n // 16
        src = int.from_bytes(data, "big")
        mask = _MASK128
        out = 0
        shift = (nblocks - 1) * 128
        for _ in range(nblocks):
            block = (src >> shift) & mask
            shift -= 128
            s0 = ((block >> 96) & 0xFFFFFFFF) ^ ek0
            s1 = ((block >> 64) & 0xFFFFFFFF) ^ ek1
            s2 = ((block >> 32) & 0xFFFFFFFF) ^ ek2
            s3 = (block & 0xFFFFFFFF) ^ ek3
            k = 4
            for _ in range(9):
                r0 = t0[s0 >> 24] ^ t1[(s1 >> 16) & 0xFF] ^ t2[(s2 >> 8) & 0xFF] ^ t3[s3 & 0xFF] ^ ek[k]
                r1 = t0[s1 >> 24] ^ t1[(s2 >> 16) & 0xFF] ^ t2[(s3 >> 8) & 0xFF] ^ t3[s0 & 0xFF] ^ ek[k + 1]
                r2 = t0[s2 >> 24] ^ t1[(s3 >> 16) & 0xFF] ^ t2[(s0 >> 8) & 0xFF] ^ t3[s1 & 0xFF] ^ ek[k + 2]
                r3 = t0[s3 >> 24] ^ t1[(s0 >> 16) & 0xFF] ^ t2[(s1 >> 8) & 0xFF] ^ t3[s2 & 0xFF] ^ ek[k + 3]
                s0, s1, s2, s3 = r0, r1, r2, r3
                k += 4
            r0 = ((sbox[s0 >> 24] << 24) | (sbox[(s1 >> 16) & 0xFF] << 16)
                  | (sbox[(s2 >> 8) & 0xFF] << 8) | sbox[s3 & 0xFF]) ^ ek40
            r1 = ((sbox[s1 >> 24] << 24) | (sbox[(s2 >> 16) & 0xFF] << 16)
                  | (sbox[(s3 >> 8) & 0xFF] << 8) | sbox[s0 & 0xFF]) ^ ek41
            r2 = ((sbox[s2 >> 24] << 24) | (sbox[(s3 >> 16) & 0xFF] << 16)
                  | (sbox[(s0 >> 8) & 0xFF] << 8) | sbox[s1 & 0xFF]) ^ ek42
            r3 = ((sbox[s3 >> 24] << 24) | (sbox[(s0 >> 16) & 0xFF] << 16)
                  | (sbox[(s1 >> 8) & 0xFF] << 8) | sbox[s2 & 0xFF]) ^ ek43
            out = (out << 128) | (r0 << 96) | (r1 << 64) | (r2 << 32) | r3
        return out.to_bytes(n, "big")

    def cbc_mac(self, data: bytes) -> bytes:
        """Last ciphertext block of zero-IV CBC over ``data``.

        This is the CBC-MAC / CMAC chaining value: byte-identical to
        folding ``x = encrypt_block(x ^ block)`` over the blocks from
        ``x = 0``.  The chain is inherently sequential, but the hardware
        backend still collapses it to one CBC ``update`` call, and the
        pure path keeps the running value as a 128-bit integer with the
        T-tables bound to locals once.
        """
        n = len(data)
        if n % 16 or n == 0:
            raise ValueError(
                f"CBC-MAC input must be a non-empty multiple of 16 bytes, got {n}"
            )
        hw_algo = self._hw_algo
        if hw_algo is not None:
            return (
                _HwCipher(hw_algo, _hw_modes.CBC(bytes(16)))
                .encryptor()
                .update(data)[-16:]
            )
        ek = self._ek
        t0, t1, t2, t3 = _T0, _T1, _T2, _T3
        sbox = _SBOX
        ek0, ek1, ek2, ek3 = ek[0], ek[1], ek[2], ek[3]
        ek40, ek41, ek42, ek43 = ek[40], ek[41], ek[42], ek[43]
        nblocks = n // 16
        src = int.from_bytes(data, "big")
        mask = _MASK128
        x = 0
        shift = (nblocks - 1) * 128
        for _ in range(nblocks):
            block = x ^ ((src >> shift) & mask)
            shift -= 128
            s0 = ((block >> 96) & 0xFFFFFFFF) ^ ek0
            s1 = ((block >> 64) & 0xFFFFFFFF) ^ ek1
            s2 = ((block >> 32) & 0xFFFFFFFF) ^ ek2
            s3 = (block & 0xFFFFFFFF) ^ ek3
            k = 4
            for _ in range(9):
                r0 = t0[s0 >> 24] ^ t1[(s1 >> 16) & 0xFF] ^ t2[(s2 >> 8) & 0xFF] ^ t3[s3 & 0xFF] ^ ek[k]
                r1 = t0[s1 >> 24] ^ t1[(s2 >> 16) & 0xFF] ^ t2[(s3 >> 8) & 0xFF] ^ t3[s0 & 0xFF] ^ ek[k + 1]
                r2 = t0[s2 >> 24] ^ t1[(s3 >> 16) & 0xFF] ^ t2[(s0 >> 8) & 0xFF] ^ t3[s1 & 0xFF] ^ ek[k + 2]
                r3 = t0[s3 >> 24] ^ t1[(s0 >> 16) & 0xFF] ^ t2[(s1 >> 8) & 0xFF] ^ t3[s2 & 0xFF] ^ ek[k + 3]
                s0, s1, s2, s3 = r0, r1, r2, r3
                k += 4
            r0 = ((sbox[s0 >> 24] << 24) | (sbox[(s1 >> 16) & 0xFF] << 16)
                  | (sbox[(s2 >> 8) & 0xFF] << 8) | sbox[s3 & 0xFF]) ^ ek40
            r1 = ((sbox[s1 >> 24] << 24) | (sbox[(s2 >> 16) & 0xFF] << 16)
                  | (sbox[(s3 >> 8) & 0xFF] << 8) | sbox[s0 & 0xFF]) ^ ek41
            r2 = ((sbox[s2 >> 24] << 24) | (sbox[(s3 >> 16) & 0xFF] << 16)
                  | (sbox[(s0 >> 8) & 0xFF] << 8) | sbox[s1 & 0xFF]) ^ ek42
            r3 = ((sbox[s3 >> 24] << 24) | (sbox[(s0 >> 16) & 0xFF] << 16)
                  | (sbox[(s1 >> 8) & 0xFF] << 8) | sbox[s2 & 0xFF]) ^ ek43
            x = (r0 << 96) | (r1 << 64) | (r2 << 32) | r3
        return x.to_bytes(16, "big")

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(block) != 16:
            raise ValueError(f"AES block must be 16 bytes, got {len(block)}")
        hw = self._hw_ecb_dec
        if hw is None and self._hw_algo is not None:
            hw = self._hw_ecb_dec = _HwCipher(
                self._hw_algo, _hw_modes.ECB()
            ).decryptor()
        if hw is not None:
            return hw.update(block)
        return self._pure_decrypt_block(block)

    def _pure_decrypt_block(self, block: bytes) -> bytes:
        """Td-table single-block decryption (backend-independent reference)."""
        if self._dk is None:
            self._dk = _invert_schedule(self._ek)
        dk = self._dk
        t0, t1, t2, t3 = _TD0, _TD1, _TD2, _TD3
        s0 = int.from_bytes(block[0:4], "big") ^ dk[0]
        s1 = int.from_bytes(block[4:8], "big") ^ dk[1]
        s2 = int.from_bytes(block[8:12], "big") ^ dk[2]
        s3 = int.from_bytes(block[12:16], "big") ^ dk[3]
        k = 4
        for _ in range(9):
            r0 = t0[s0 >> 24] ^ t1[(s3 >> 16) & 0xFF] ^ t2[(s2 >> 8) & 0xFF] ^ t3[s1 & 0xFF] ^ dk[k]
            r1 = t0[s1 >> 24] ^ t1[(s0 >> 16) & 0xFF] ^ t2[(s3 >> 8) & 0xFF] ^ t3[s2 & 0xFF] ^ dk[k + 1]
            r2 = t0[s2 >> 24] ^ t1[(s1 >> 16) & 0xFF] ^ t2[(s0 >> 8) & 0xFF] ^ t3[s3 & 0xFF] ^ dk[k + 2]
            r3 = t0[s3 >> 24] ^ t1[(s2 >> 16) & 0xFF] ^ t2[(s1 >> 8) & 0xFF] ^ t3[s0 & 0xFF] ^ dk[k + 3]
            s0, s1, s2, s3 = r0, r1, r2, r3
            k += 4
        isbox = _INV_SBOX
        r0 = ((isbox[s0 >> 24] << 24) | (isbox[(s3 >> 16) & 0xFF] << 16)
              | (isbox[(s2 >> 8) & 0xFF] << 8) | isbox[s1 & 0xFF]) ^ dk[40]
        r1 = ((isbox[s1 >> 24] << 24) | (isbox[(s0 >> 16) & 0xFF] << 16)
              | (isbox[(s3 >> 8) & 0xFF] << 8) | isbox[s2 & 0xFF]) ^ dk[41]
        r2 = ((isbox[s2 >> 24] << 24) | (isbox[(s1 >> 16) & 0xFF] << 16)
              | (isbox[(s0 >> 8) & 0xFF] << 8) | isbox[s3 & 0xFF]) ^ dk[42]
        r3 = ((isbox[s3 >> 24] << 24) | (isbox[(s2 >> 16) & 0xFF] << 16)
              | (isbox[(s1 >> 8) & 0xFF] << 8) | isbox[s0 & 0xFF]) ^ dk[43]
        return ((r0 << 96) | (r1 << 64) | (r2 << 32) | r3).to_bytes(16, "big")

    @staticmethod
    def _counter_blocks(nonce: bytes, nblocks: int) -> bytes:
        """The ``nblocks`` consecutive CTR counter blocks starting at
        ``nonce`` (big-endian increment, wrapping mod 2^128)."""
        counter = int.from_bytes(nonce, "big")
        out = 0
        for _ in range(nblocks):
            out = (out << 128) | counter
            counter = (counter + 1) & _MASK128
        return out.to_bytes(nblocks * 16, "big")

    def _keystream_int(self, counter: int, nblocks: int) -> int:
        """``nblocks`` consecutive CTR keystream blocks as one big integer.

        This is the bulk fast path behind :meth:`ctr`: the whole per-block
        cipher is inlined here so the T-tables, S-box and boundary round
        keys are bound to locals *once* and then reused across every block,
        and the counter blocks are built with integer shifts rather than
        ``to_bytes``/``from_bytes`` round trips.  The output is bit-for-bit
        the concatenation of ``encrypt_block(counter + i)`` for ``i`` in
        ``range(nblocks)`` (big-endian counter, wrapping mod 2^128).
        """
        ek = self._ek
        t0, t1, t2, t3 = _T0, _T1, _T2, _T3
        sbox = _SBOX
        ek0, ek1, ek2, ek3 = ek[0], ek[1], ek[2], ek[3]
        ek40, ek41, ek42, ek43 = ek[40], ek[41], ek[42], ek[43]
        out = 0
        for _ in range(nblocks):
            s0 = ((counter >> 96) & 0xFFFFFFFF) ^ ek0
            s1 = ((counter >> 64) & 0xFFFFFFFF) ^ ek1
            s2 = ((counter >> 32) & 0xFFFFFFFF) ^ ek2
            s3 = (counter & 0xFFFFFFFF) ^ ek3
            k = 4
            for _ in range(9):
                r0 = t0[s0 >> 24] ^ t1[(s1 >> 16) & 0xFF] ^ t2[(s2 >> 8) & 0xFF] ^ t3[s3 & 0xFF] ^ ek[k]
                r1 = t0[s1 >> 24] ^ t1[(s2 >> 16) & 0xFF] ^ t2[(s3 >> 8) & 0xFF] ^ t3[s0 & 0xFF] ^ ek[k + 1]
                r2 = t0[s2 >> 24] ^ t1[(s3 >> 16) & 0xFF] ^ t2[(s0 >> 8) & 0xFF] ^ t3[s1 & 0xFF] ^ ek[k + 2]
                r3 = t0[s3 >> 24] ^ t1[(s0 >> 16) & 0xFF] ^ t2[(s1 >> 8) & 0xFF] ^ t3[s2 & 0xFF] ^ ek[k + 3]
                s0, s1, s2, s3 = r0, r1, r2, r3
                k += 4
            r0 = ((sbox[s0 >> 24] << 24) | (sbox[(s1 >> 16) & 0xFF] << 16)
                  | (sbox[(s2 >> 8) & 0xFF] << 8) | sbox[s3 & 0xFF]) ^ ek40
            r1 = ((sbox[s1 >> 24] << 24) | (sbox[(s2 >> 16) & 0xFF] << 16)
                  | (sbox[(s3 >> 8) & 0xFF] << 8) | sbox[s0 & 0xFF]) ^ ek41
            r2 = ((sbox[s2 >> 24] << 24) | (sbox[(s3 >> 16) & 0xFF] << 16)
                  | (sbox[(s0 >> 8) & 0xFF] << 8) | sbox[s1 & 0xFF]) ^ ek42
            r3 = ((sbox[s3 >> 24] << 24) | (sbox[(s0 >> 16) & 0xFF] << 16)
                  | (sbox[(s1 >> 8) & 0xFF] << 8) | sbox[s2 & 0xFF]) ^ ek43
            out = (out << 128) | (r0 << 96) | (r1 << 64) | (r2 << 32) | r3
            counter = (counter + 1) & _MASK128
        return out

    def keystream(self, nonce: bytes, length: int) -> bytes:
        """``length`` bytes of CTR keystream starting at counter ``nonce``.

        Byte-identical to encrypting successive counter blocks with
        :meth:`encrypt_block` and truncating the concatenation.
        """
        if len(nonce) != 16:
            raise ValueError(f"CTR nonce must be 16 bytes, got {len(nonce)}")
        if length <= 0:
            return b""
        nblocks = (length + 15) // 16
        hw = self._hw_ecb_enc
        if hw is not None:
            # CTR keystream == ECB over the counter blocks; the persistent
            # ECB context avoids a Cipher+encryptor construction per call.
            stream = int.from_bytes(
                hw.update(self._counter_blocks(nonce, nblocks)), "big"
            )
            return (stream >> ((nblocks * 16 - length) * 8)).to_bytes(
                length, "big"
            )
        stream = self._keystream_int(int.from_bytes(nonce, "big"), nblocks)
        # The keystream is truncated to its *first* ``length`` bytes, so a
        # non-block-aligned tail drops the low-order bytes of the last block.
        return (stream >> ((nblocks * 16 - length) * 8)).to_bytes(length, "big")

    def ctr(self, nonce: bytes, data: bytes) -> bytes:
        """Counter mode over this cipher's key.

        ``nonce`` must be 16 bytes; it is used as the initial counter block
        and incremented big-endian per block, matching common ECIES
        profiles.  CTR is its own inverse under the same parameters.
        """
        if len(nonce) != 16:
            raise ValueError(f"CTR nonce must be 16 bytes, got {len(nonce)}")
        if not data:
            return b""
        n = len(data)
        nblocks = (n + 15) // 16
        hw = self._hw_ecb_enc
        if hw is not None:
            stream = int.from_bytes(
                hw.update(self._counter_blocks(nonce, nblocks)), "big"
            )
        else:
            # Generate the whole keystream as one big integer and XOR once:
            # cheaper in CPython than per-block byte juggling.
            stream = self._keystream_int(int.from_bytes(nonce, "big"), nblocks)
        stream >>= (nblocks * 16 - n) * 8
        return (int.from_bytes(data, "big") ^ stream).to_bytes(n, "big")


@lru_cache(maxsize=4096)
def aes128_cipher(key: bytes) -> AES128:
    """The shared :class:`AES128` instance for ``key``.

    USIM keys, NAS keys and TLS record keys recur across a campaign; this
    cache makes the one-shot helpers below as cheap as holding the cipher
    object explicitly.  (Caching on secret bytes is fine here — the
    simulator is the only user of this module.)
    """
    return AES128(key)


def aes128_encrypt_block(key: bytes, block: bytes) -> bytes:
    """Encrypt one 16-byte block with AES-128."""
    return aes128_cipher(bytes(key)).encrypt_block(block)


def aes128_decrypt_block(key: bytes, block: bytes) -> bytes:
    """Decrypt one 16-byte block with AES-128."""
    return aes128_cipher(bytes(key)).decrypt_block(block)


def aes128_ctr(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """AES-128 in counter mode (used by the ECIES SUCI profile, NEA2 and
    the TLS record layer); expands the key at most once per process."""
    return aes128_cipher(bytes(key)).ctr(nonce, data)
