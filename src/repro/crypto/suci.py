"""SUPI concealment — SUCI via ECIES Profile A (TS 33.501 Annex C).

The UE never sends its permanent identifier (SUPI) in the clear; it
conceals the MSIN part under the home network's public key, producing a
SUCI.  Profile A uses Curve25519 key agreement, the ANSI X9.63 KDF, AES-128
in counter mode and an HMAC-SHA-256 tag truncated to 8 bytes.

The X25519 function is implemented from RFC 7748 directly (Montgomery
ladder over GF(2^255 − 19)); the reproduction is offline and may not link
against an external crypto library.
"""

from __future__ import annotations

import hashlib
import hmac
import os
from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple

from repro.crypto.aes import AES128

# Optional hardware/libcrypto X25519 backend.  Same opt-out knob as the AES
# fast path: REPRO_PURE_X25519=1 forces the RFC 7748 reference ladder.  The
# outputs are identical by definition (X25519 is deterministic), and the
# pure ladder remains both the fallback and the reference the property
# tests check the backend against.
try:  # pragma: no cover - exercised indirectly via x25519()
    if os.environ.get("REPRO_PURE_X25519"):
        raise ImportError("pure-python X25519 forced via REPRO_PURE_X25519")
    from cryptography.hazmat.primitives.asymmetric.x25519 import (
        X25519PrivateKey as _HwX25519PrivateKey,
    )
    from cryptography.hazmat.primitives.asymmetric.x25519 import (
        X25519PublicKey as _HwX25519PublicKey,
    )

    _HwX25519PrivateKey.from_private_bytes(bytes(32)).public_key().public_bytes_raw()
    HAVE_HW_X25519 = True
except Exception:  # ImportError, or an API surface too old to use
    _HwX25519PrivateKey = _HwX25519PublicKey = None
    HAVE_HW_X25519 = False

_P = 2**255 - 19
_A24 = 121665


@lru_cache(maxsize=1024)
def _hw_private_key(scalar: bytes):
    """libcrypto key object for ``scalar`` (the home-network private key
    recurs every deconcealment; an ephemeral key is used twice back-to-back
    — public derivation then exchange).  Caching on secret bytes is fine
    here for the same reason as ``aes128_cipher``."""
    return _HwX25519PrivateKey.from_private_bytes(scalar)


@lru_cache(maxsize=1024)
def _hw_public_key(u_coordinate: bytes):
    return _HwX25519PublicKey.from_public_bytes(u_coordinate)


def _decode_u_coordinate(u: bytes) -> int:
    if len(u) != 32:
        raise ValueError(f"X25519 coordinate must be 32 bytes, got {len(u)}")
    masked = bytearray(u)
    masked[31] &= 0x7F
    return int.from_bytes(masked, "little")


def _decode_scalar(k: bytes) -> int:
    if len(k) != 32:
        raise ValueError(f"X25519 scalar must be 32 bytes, got {len(k)}")
    clamped = bytearray(k)
    clamped[0] &= 248
    clamped[31] &= 127
    clamped[31] |= 64
    return int.from_bytes(clamped, "little")


def x25519(scalar: bytes, u_coordinate: bytes) -> bytes:
    """RFC 7748 §5 X25519 scalar multiplication."""
    if HAVE_HW_X25519 and len(scalar) == 32 and len(u_coordinate) == 32:
        try:
            return _hw_private_key(scalar).exchange(
                _hw_public_key(u_coordinate)
            )
        except ValueError:
            # libcrypto rejects low-order points (all-zero shared secret)
            # where the RFC ladder returns the zeros; fall through so the
            # reference semantics hold on those edge inputs too.
            pass
    return _x25519_ladder(scalar, u_coordinate)


def _x25519_ladder(scalar: bytes, u_coordinate: bytes) -> bytes:
    """The pure-python Montgomery ladder (reference and fallback path)."""
    k = _decode_scalar(scalar)
    u = _decode_u_coordinate(u_coordinate)

    x1 = u
    x2, z2 = 1, 0
    x3, z3 = u, 1
    swap = 0
    for t in range(254, -1, -1):
        k_t = (k >> t) & 1
        swap ^= k_t
        if swap:
            x2, x3 = x3, x2
            z2, z3 = z3, z2
        swap = k_t

        a = (x2 + z2) % _P
        aa = (a * a) % _P
        b = (x2 - z2) % _P
        bb = (b * b) % _P
        e = (aa - bb) % _P
        c = (x3 + z3) % _P
        d = (x3 - z3) % _P
        da = (d * a) % _P
        cb = (c * b) % _P
        x3 = pow(da + cb, 2, _P)
        z3 = (x1 * pow(da - cb, 2, _P)) % _P
        x2 = (aa * bb) % _P
        z2 = (e * (aa + _A24 * e)) % _P

    if swap:
        x2, x3 = x3, x2
        z2, z3 = z3, z2
    result = (x2 * pow(z2, _P - 2, _P)) % _P
    return result.to_bytes(32, "little")


_BASE_POINT = (9).to_bytes(32, "little")


def x25519_public_key(private_key: bytes) -> bytes:
    """Derive the public u-coordinate for a 32-byte private scalar."""
    return x25519(private_key, _BASE_POINT)


def _x963_kdf(shared_secret: bytes, shared_info: bytes, length: int) -> bytes:
    """ANSI X9.63 KDF with SHA-256 (TS 33.501 C.3.2)."""
    output = b""
    counter = 1
    while len(output) < length:
        output += hashlib.sha256(
            shared_secret + counter.to_bytes(4, "big") + shared_info
        ).digest()
        counter += 1
    return output[:length]


@dataclass(frozen=True)
class Supi:
    """Subscription Permanent Identifier in IMSI form."""

    mcc: str
    mnc: str
    msin: str

    def __post_init__(self) -> None:
        if not (self.mcc.isdigit() and len(self.mcc) == 3):
            raise ValueError(f"MCC must be 3 digits: {self.mcc!r}")
        if not (self.mnc.isdigit() and len(self.mnc) in (2, 3)):
            raise ValueError(f"MNC must be 2 or 3 digits: {self.mnc!r}")
        if not (self.msin.isdigit() and 5 <= len(self.msin) <= 10):
            raise ValueError(f"MSIN must be 5-10 digits: {self.msin!r}")

    @property
    def imsi(self) -> str:
        return self.mcc + self.mnc + self.msin

    def __str__(self) -> str:
        return f"imsi-{self.imsi}"

    @classmethod
    def parse(cls, text: str) -> "Supi":
        """Parse ``imsi-<mcc><mnc><msin>`` assuming a 2-digit MNC."""
        if not text.startswith("imsi-"):
            raise ValueError(f"not an IMSI-format SUPI: {text!r}")
        digits = text[len("imsi-") :]
        return cls(mcc=digits[:3], mnc=digits[3:5], msin=digits[5:])


@dataclass(frozen=True)
class Suci:
    """Subscription Concealed Identifier.

    Carries the routing information in the clear (the home network must
    route the SUCI to the right UDM) and the MSIN concealed under the
    protection scheme's output.
    """

    mcc: str
    mnc: str
    protection_scheme: int  # 0 = null scheme, 1 = Profile A, 2 = Profile B
    home_network_key_id: int
    scheme_output: bytes

    SCHEME_NULL = 0
    SCHEME_PROFILE_A = 1

    def __str__(self) -> str:
        return (
            f"suci-0-{self.mcc}-{self.mnc}-0-{self.protection_scheme}-"
            f"{self.home_network_key_id}-{self.scheme_output.hex()}"
        )


class EciesProfileA:
    """ECIES Profile A encrypt/decrypt primitives (TS 33.501 C.3.2).

    The KDF output is split AES key (16 B) ‖ initial counter block (16 B)
    ‖ MAC key (32 B); the tag is HMAC-SHA-256 truncated to 8 bytes.
    """

    KDF_LENGTH = 16 + 16 + 32
    TAG_LENGTH = 8

    @staticmethod
    def encrypt(plaintext: bytes, hn_public_key: bytes, eph_private_key: bytes) -> bytes:
        eph_public = x25519_public_key(eph_private_key)
        shared = x25519(eph_private_key, hn_public_key)
        keys = _x963_kdf(shared, eph_public, EciesProfileA.KDF_LENGTH)
        aes_key, icb, mac_key = keys[:16], keys[16:32], keys[32:]
        # The ECIES key is ephemeral (one per concealment): instantiate the
        # cipher directly rather than through the shared per-key cache.
        ciphertext = AES128(aes_key).ctr(icb, plaintext)
        tag = hmac.new(mac_key, ciphertext, hashlib.sha256).digest()[
            : EciesProfileA.TAG_LENGTH
        ]
        return eph_public + ciphertext + tag

    @staticmethod
    def decrypt(scheme_output: bytes, hn_private_key: bytes) -> bytes:
        if len(scheme_output) < 32 + EciesProfileA.TAG_LENGTH:
            raise ValueError("scheme output too short for Profile A")
        eph_public = scheme_output[:32]
        ciphertext = scheme_output[32 : -EciesProfileA.TAG_LENGTH]
        tag = scheme_output[-EciesProfileA.TAG_LENGTH :]
        shared = x25519(hn_private_key, eph_public)
        keys = _x963_kdf(shared, eph_public, EciesProfileA.KDF_LENGTH)
        aes_key, icb, mac_key = keys[:16], keys[16:32], keys[32:]
        expected = hmac.new(mac_key, ciphertext, hashlib.sha256).digest()[
            : EciesProfileA.TAG_LENGTH
        ]
        if not hmac.compare_digest(tag, expected):
            raise ValueError("SUCI MAC verification failed")
        return AES128(aes_key).ctr(icb, ciphertext)


def conceal_supi(
    supi: Supi,
    hn_public_key: bytes,
    eph_private_key: bytes,
    home_network_key_id: int = 1,
) -> Suci:
    """Conceal a SUPI into a Profile A SUCI (UE side)."""
    scheme_output = EciesProfileA.encrypt(
        supi.msin.encode(), hn_public_key, eph_private_key
    )
    return Suci(
        mcc=supi.mcc,
        mnc=supi.mnc,
        protection_scheme=Suci.SCHEME_PROFILE_A,
        home_network_key_id=home_network_key_id,
        scheme_output=scheme_output,
    )


def deconceal_suci(suci: Suci, hn_private_key: bytes) -> Supi:
    """Recover the SUPI from a SUCI (UDM/SIDF side)."""
    if suci.protection_scheme == Suci.SCHEME_NULL:
        msin = suci.scheme_output.decode()
    elif suci.protection_scheme == Suci.SCHEME_PROFILE_A:
        msin = EciesProfileA.decrypt(suci.scheme_output, hn_private_key).decode()
    else:
        raise ValueError(f"unsupported protection scheme {suci.protection_scheme}")
    return Supi(mcc=suci.mcc, mnc=suci.mnc, msin=msin)
