"""MILENAGE algorithm set (3GPP TS 35.205 / TS 35.206).

MILENAGE instantiates the authentication functions f1, f1*, f2, f3, f4,
f5 and f5* used by 5G-AKA (and by UMTS/LTE AKA before it) on top of a
128-bit block cipher — AES-128 here, exactly as 3GPP specifies:

* **f1 / f1*** — network / resynchronisation message authentication codes,
* **f2** — the response RES to the authentication challenge,
* **f3 / f4** — cipher key CK and integrity key IK,
* **f5 / f5*** — anonymity keys AK used to conceal the sequence number.

Both the UDM (home network side, inside the eUDM P-AKA enclave in the
paper) and the USIM (UE side) execute the same functions; mutual
authentication works because both sides hold the subscriber key K and the
operator constant OPc.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.crypto.aes import aes128_cipher, aes128_encrypt_block

# TS 35.206 §4.1 default constants: rotation amounts (bits) and additive
# constants c1..c5 (only the low bits differ between them).
_R1, _R2, _R3, _R4, _R5 = 64, 0, 32, 64, 96
_C1 = bytes(16)
_C2 = bytes(15) + b"\x01"
_C3 = bytes(15) + b"\x02"
_C4 = bytes(15) + b"\x04"
_C5 = bytes(15) + b"\x08"


_MASK128 = (1 << 128) - 1


def _xor(a: bytes, b: bytes) -> bytes:
    if len(a) != len(b):
        raise ValueError(f"xor length mismatch: {len(a)} vs {len(b)}")
    return (int.from_bytes(a, "big") ^ int.from_bytes(b, "big")).to_bytes(
        len(a), "big"
    )


def _rotate_left(block: bytes, bits: int) -> bytes:
    """Cyclic left rotation of a 16-byte block by ``bits`` bits."""
    if bits % 8:
        value = int.from_bytes(block, "big")
        width = len(block) * 8
        rotated = ((value << bits) | (value >> (width - bits))) % (1 << width)
        return rotated.to_bytes(len(block), "big")
    shift = (bits // 8) % len(block)
    return block[shift:] + block[:shift]


@lru_cache(maxsize=4096)
def compute_opc(k: bytes, op: bytes) -> bytes:
    """Derive the subscriber-specific operator constant OPc = OP ⊕ E_K(OP).

    Cached per (K, OP): provisioning re-derives OPc for the same USIM on
    every authentication-vector request, so memoising keeps the hot path
    to the six MILENAGE block encryptions themselves.
    """
    return _xor(aes128_encrypt_block(k, op), op)


@dataclass(frozen=True)
class MilenageVector:
    """The full output of one MILENAGE evaluation for a given RAND."""

    rand: bytes
    mac_a: bytes  # f1,  8 bytes
    mac_s: bytes  # f1*, 8 bytes
    res: bytes  # f2,  8 bytes
    ck: bytes  # f3, 16 bytes
    ik: bytes  # f4, 16 bytes
    ak: bytes  # f5,  6 bytes
    ak_star: bytes  # f5*, 6 bytes


class Milenage:
    """MILENAGE evaluated for one subscriber (fixed K and OPc).

    >>> m = Milenage(k=bytes(16), opc=bytes(16))
    >>> out = m.f2345(rand=bytes(16))
    >>> len(out.res), len(out.ck), len(out.ak)
    (8, 16, 6)
    """

    __slots__ = ("k", "opc", "_cipher", "_opc_int", "_last_rand", "_last_temp")

    def __init__(self, k: bytes, opc: bytes) -> None:
        if len(k) != 16:
            raise ValueError(f"K must be 16 bytes, got {len(k)}")
        if len(opc) != 16:
            raise ValueError(f"OPc must be 16 bytes, got {len(opc)}")
        self.k = k
        self.opc = opc
        # One key schedule per subscriber key, shared process-wide: every
        # f-function evaluation is 2-6 block encryptions under the same K.
        self._cipher = aes128_cipher(k)
        self._opc_int = int.from_bytes(opc, "big")
        # TEMP = E_K(RAND ⊕ OPc) memo: f1 and f2345 are almost always
        # evaluated back to back for the same RAND (USIM challenge check,
        # AUTS verification), so the shared intermediate is kept per RAND.
        self._last_rand: "bytes | None" = None
        self._last_temp = 0

    @classmethod
    def from_op(cls, k: bytes, op: bytes) -> "Milenage":
        """Build from the operator variant OP (computes OPc on the fly)."""
        return cls(k, compute_opc(k, op))

    def _temp_int(self, rand: bytes) -> int:
        """TEMP = E_K(RAND ⊕ OPc) as a 128-bit integer, memoised per RAND."""
        if rand == self._last_rand:
            return self._last_temp
        if len(rand) != 16:
            raise ValueError(f"RAND must be 16 bytes, got {len(rand)}")
        temp = int.from_bytes(
            self._cipher.encrypt_block(
                (int.from_bytes(rand, "big") ^ self._opc_int).to_bytes(16, "big")
            ),
            "big",
        )
        self._last_rand = rand
        self._last_temp = temp
        return temp

    def _temp(self, rand: bytes) -> bytes:
        return self._temp_int(rand).to_bytes(16, "big")

    def _f1_block(self, temp: int, sqn: bytes, amf: bytes) -> int:
        """The cipher input block of f1/f1* (TEMP ⊕ rot(IN1 ⊕ OPc, r1) ⊕ c1)."""
        if len(sqn) != 6:
            raise ValueError(f"SQN must be 6 bytes, got {len(sqn)}")
        if len(amf) != 2:
            raise ValueError(f"AMF field must be 2 bytes, got {len(amf)}")
        in1 = int.from_bytes(sqn + amf + sqn + amf, "big") ^ self._opc_int
        # r1 = 64 bits, c1 = 0.
        return temp ^ (((in1 << 64) | (in1 >> 64)) & _MASK128)

    def _f2345_blocks(self, temp: int) -> "tuple[int, int, int, int]":
        """The four independent cipher inputs of f2–f5* given TEMP."""
        base = temp ^ self._opc_int
        mask = _MASK128
        # (rotate by r2..r5 = 0, 32, 64, 96 bits) ⊕ c2..c5 = 1, 2, 4, 8.
        b2 = base ^ 1
        b3 = (((base << 32) | (base >> 96)) & mask) ^ 2
        b4 = (((base << 64) | (base >> 64)) & mask) ^ 4
        b5 = (((base << 96) | (base >> 32)) & mask) ^ 8
        return b2, b3, b4, b5

    def f1(self, rand: bytes, sqn: bytes, amf: bytes) -> "tuple[bytes, bytes]":
        """f1 / f1*: returns (MAC-A, MAC-S) for the given SQN and AMF field.

        ``amf`` here is the 2-byte Authentication Management Field of
        TS 33.102, not the Access and Mobility Management Function.
        """
        block = self._f1_block(self._temp_int(rand), sqn, amf)
        out1 = (
            int.from_bytes(
                self._cipher.encrypt_block(block.to_bytes(16, "big")), "big"
            )
            ^ self._opc_int
        ).to_bytes(16, "big")
        return out1[:8], out1[8:]

    def _vector_from_outs(
        self, rand: bytes, out2: int, out3: int, out4: int, out5: int,
        mac_a: bytes = b"", mac_s: bytes = b"",
    ) -> MilenageVector:
        opc = self._opc_int
        out2_b = (out2 ^ opc).to_bytes(16, "big")
        return MilenageVector(
            rand=rand,
            mac_a=mac_a,
            mac_s=mac_s,
            res=out2_b[8:16],
            ck=(out3 ^ opc).to_bytes(16, "big"),
            ik=(out4 ^ opc).to_bytes(16, "big"),
            ak=out2_b[:6],
            ak_star=(out5 ^ opc).to_bytes(16, "big")[:6],
        )

    def f2345(self, rand: bytes) -> MilenageVector:
        """Evaluate f2–f5* (everything except the MACs) for ``rand``.

        The four independent block encryptions run as one ECB batch, so
        the whole evaluation is a single multi-block cipher pass.
        """
        b2, b3, b4, b5 = self._f2345_blocks(self._temp_int(rand))
        data = ((b2 << 384) | (b3 << 256) | (b4 << 128) | b5).to_bytes(64, "big")
        out = int.from_bytes(self._cipher.encrypt_blocks(data), "big")
        mask = _MASK128
        return self._vector_from_outs(
            rand, (out >> 384) & mask, (out >> 256) & mask,
            (out >> 128) & mask, out & mask,
        )

    def generate(self, rand: bytes, sqn: bytes, amf: bytes) -> MilenageVector:
        """Full evaluation: f1 and f2–f5* together.

        TEMP is computed once and all five post-TEMP encryptions (the f1
        MAC block plus the four f2–f5* blocks) run as one ECB batch.
        """
        temp = self._temp_int(rand)
        b1 = self._f1_block(temp, sqn, amf)
        b2, b3, b4, b5 = self._f2345_blocks(temp)
        data = (
            (b1 << 512) | (b2 << 384) | (b3 << 256) | (b4 << 128) | b5
        ).to_bytes(80, "big")
        out = int.from_bytes(self._cipher.encrypt_blocks(data), "big")
        mask = _MASK128
        out1 = (((out >> 512) & mask) ^ self._opc_int).to_bytes(16, "big")
        return self._vector_from_outs(
            rand, (out >> 384) & mask, (out >> 256) & mask,
            (out >> 128) & mask, out & mask,
            mac_a=out1[:8], mac_s=out1[8:],
        )


@lru_cache(maxsize=4096)
def milenage_for(k: bytes, opc: bytes) -> Milenage:
    """The shared :class:`Milenage` instance for ``(K, OPc)``.

    Mirrors :func:`repro.crypto.aes.aes128_cipher`: AV generation and AUTS
    verification re-instantiate MILENAGE for the same subscriber on every
    request, and the per-instance TEMP memo only pays off if the instance
    survives across calls.  (Caching on secret bytes is fine here — the
    simulator is the only user of this module.)
    """
    return Milenage(k, opc)
