"""MILENAGE algorithm set (3GPP TS 35.205 / TS 35.206).

MILENAGE instantiates the authentication functions f1, f1*, f2, f3, f4,
f5 and f5* used by 5G-AKA (and by UMTS/LTE AKA before it) on top of a
128-bit block cipher — AES-128 here, exactly as 3GPP specifies:

* **f1 / f1*** — network / resynchronisation message authentication codes,
* **f2** — the response RES to the authentication challenge,
* **f3 / f4** — cipher key CK and integrity key IK,
* **f5 / f5*** — anonymity keys AK used to conceal the sequence number.

Both the UDM (home network side, inside the eUDM P-AKA enclave in the
paper) and the USIM (UE side) execute the same functions; mutual
authentication works because both sides hold the subscriber key K and the
operator constant OPc.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.crypto.aes import aes128_cipher, aes128_encrypt_block

# TS 35.206 §4.1 default constants: rotation amounts (bits) and additive
# constants c1..c5 (only the low bits differ between them).
_R1, _R2, _R3, _R4, _R5 = 64, 0, 32, 64, 96
_C1 = bytes(16)
_C2 = bytes(15) + b"\x01"
_C3 = bytes(15) + b"\x02"
_C4 = bytes(15) + b"\x04"
_C5 = bytes(15) + b"\x08"


def _xor(a: bytes, b: bytes) -> bytes:
    if len(a) != len(b):
        raise ValueError(f"xor length mismatch: {len(a)} vs {len(b)}")
    return bytes(x ^ y for x, y in zip(a, b))


def _rotate_left(block: bytes, bits: int) -> bytes:
    """Cyclic left rotation of a 16-byte block by ``bits`` bits."""
    if bits % 8:
        value = int.from_bytes(block, "big")
        width = len(block) * 8
        rotated = ((value << bits) | (value >> (width - bits))) % (1 << width)
        return rotated.to_bytes(len(block), "big")
    shift = (bits // 8) % len(block)
    return block[shift:] + block[:shift]


@lru_cache(maxsize=4096)
def compute_opc(k: bytes, op: bytes) -> bytes:
    """Derive the subscriber-specific operator constant OPc = OP ⊕ E_K(OP).

    Cached per (K, OP): provisioning re-derives OPc for the same USIM on
    every authentication-vector request, so memoising keeps the hot path
    to the six MILENAGE block encryptions themselves.
    """
    return _xor(aes128_encrypt_block(k, op), op)


@dataclass(frozen=True)
class MilenageVector:
    """The full output of one MILENAGE evaluation for a given RAND."""

    rand: bytes
    mac_a: bytes  # f1,  8 bytes
    mac_s: bytes  # f1*, 8 bytes
    res: bytes  # f2,  8 bytes
    ck: bytes  # f3, 16 bytes
    ik: bytes  # f4, 16 bytes
    ak: bytes  # f5,  6 bytes
    ak_star: bytes  # f5*, 6 bytes


class Milenage:
    """MILENAGE evaluated for one subscriber (fixed K and OPc).

    >>> m = Milenage(k=bytes(16), opc=bytes(16))
    >>> out = m.f2345(rand=bytes(16))
    >>> len(out.res), len(out.ck), len(out.ak)
    (8, 16, 6)
    """

    def __init__(self, k: bytes, opc: bytes) -> None:
        if len(k) != 16:
            raise ValueError(f"K must be 16 bytes, got {len(k)}")
        if len(opc) != 16:
            raise ValueError(f"OPc must be 16 bytes, got {len(opc)}")
        self.k = k
        self.opc = opc
        # One key schedule per subscriber key, shared process-wide: every
        # f-function evaluation is 2-6 block encryptions under the same K.
        self._cipher = aes128_cipher(k)

    @classmethod
    def from_op(cls, k: bytes, op: bytes) -> "Milenage":
        """Build from the operator variant OP (computes OPc on the fly)."""
        return cls(k, compute_opc(k, op))

    def _temp(self, rand: bytes) -> bytes:
        if len(rand) != 16:
            raise ValueError(f"RAND must be 16 bytes, got {len(rand)}")
        return self._cipher.encrypt_block(_xor(rand, self.opc))

    def f1(self, rand: bytes, sqn: bytes, amf: bytes) -> "tuple[bytes, bytes]":
        """f1 / f1*: returns (MAC-A, MAC-S) for the given SQN and AMF field.

        ``amf`` here is the 2-byte Authentication Management Field of
        TS 33.102, not the Access and Mobility Management Function.
        """
        if len(sqn) != 6:
            raise ValueError(f"SQN must be 6 bytes, got {len(sqn)}")
        if len(amf) != 2:
            raise ValueError(f"AMF field must be 2 bytes, got {len(amf)}")
        temp = self._temp(rand)
        in1 = sqn + amf + sqn + amf
        inner = _xor(temp, _rotate_left(_xor(in1, self.opc), _R1))
        out1 = _xor(self._cipher.encrypt_block(_xor(inner, _C1)), self.opc)
        return out1[:8], out1[8:]

    def f2345(self, rand: bytes) -> MilenageVector:
        """Evaluate f2–f5* (everything except the MACs) for ``rand``."""
        temp = self._temp(rand)
        base = _xor(temp, self.opc)

        encrypt = self._cipher.encrypt_block
        out2 = _xor(encrypt(_xor(_rotate_left(base, _R2), _C2)), self.opc)
        out3 = _xor(encrypt(_xor(_rotate_left(base, _R3), _C3)), self.opc)
        out4 = _xor(encrypt(_xor(_rotate_left(base, _R4), _C4)), self.opc)
        out5 = _xor(encrypt(_xor(_rotate_left(base, _R5), _C5)), self.opc)
        return MilenageVector(
            rand=rand,
            mac_a=b"",
            mac_s=b"",
            res=out2[8:16],
            ck=out3,
            ik=out4,
            ak=out2[:6],
            ak_star=out5[:6],
        )

    def generate(self, rand: bytes, sqn: bytes, amf: bytes) -> MilenageVector:
        """Full evaluation: f1 and f2–f5* together."""
        mac_a, mac_s = self.f1(rand, sqn, amf)
        partial = self.f2345(rand)
        return MilenageVector(
            rand=rand,
            mac_a=mac_a,
            mac_s=mac_s,
            res=partial.res,
            ck=partial.ck,
            ik=partial.ik,
            ak=partial.ak,
            ak_star=partial.ak_star,
        )
