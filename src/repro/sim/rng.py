"""Namespaced deterministic random streams.

Each subsystem asks the service for a stream by name.  Streams are seeded
from the master seed and the name, so adding randomness to one subsystem
never perturbs another subsystem's draws — experiments stay comparable
across code changes.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngService:
    """Factory of named, independently seeded :class:`random.Random` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def randbytes(self, name: str, n: int) -> bytes:
        """Draw ``n`` random bytes from the named stream."""
        stream = self.stream(name)
        return bytes(stream.getrandbits(8) for _ in range(n))

    def jitter(self, name: str, mean: float, rel_sigma: float = 0.03) -> float:
        """A positive gaussian jitter multiplier sample around ``mean``.

        Used by cost models to turn point costs into realistic
        distributions.  Clamped at 10% of the mean so a pathological draw
        can never produce a non-positive cost.
        """
        stream = self.stream(name)
        value = stream.gauss(mean, abs(mean) * rel_sigma)
        return max(value, 0.1 * mean)

    def fork(self, salt: str) -> "RngService":
        """Derive an independent child service (e.g. per experiment run)."""
        digest = hashlib.sha256(f"{self.seed}:fork:{salt}".encode()).digest()
        return RngService(int.from_bytes(digest[:8], "big"))
