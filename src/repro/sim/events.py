"""Structured simulation event log.

The experiment harness and the security evaluator both need to observe what
happened inside a run: enclave transitions, page faults, attack steps,
protocol messages.  Components append :class:`Event` records; consumers
filter by category.

The log sits on the simulator's hottest path (one ``sgx.ocall`` event per
simulated syscall in SGX mode), so the implementation is tuned for cheap
appends at campaign scale:

* :class:`Event` is a ``__slots__`` class — no per-instance ``__dict__``
  and no ``dataclass`` ``object.__setattr__`` machinery on construction,
* events live in a :class:`collections.deque`, so the optional capacity
  trim is an O(1)-amortised ``popleft`` ring instead of a list-slice copy
  of the surviving half on every overflow,
* a per-category count index makes :meth:`count` O(distinct categories)
  and lets :meth:`select` skip scanning when nothing matches.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Optional


class Event:
    """One simulation event.

    ``category`` is a dotted namespace (``sgx.eenter``, ``attack.escape``,
    ``net.http.request`` …); ``detail`` carries event-specific fields.
    """

    __slots__ = ("timestamp_ns", "category", "detail")

    def __init__(
        self,
        timestamp_ns: int,
        category: str,
        detail: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.timestamp_ns = timestamp_ns
        self.category = category
        self.detail: Dict[str, Any] = {} if detail is None else detail

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Event(timestamp_ns={self.timestamp_ns}, "
            f"category={self.category!r}, detail={self.detail!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (
            self.timestamp_ns == other.timestamp_ns
            and self.category == other.category
            and self.detail == other.detail
        )

    # Defining __eq__ alone sets __hash__ to None and makes events
    # unusable in sets/dict keys.  Hash on the immutable identity fields
    # only: ``detail`` is a dict, so it cannot contribute, and leaving it
    # out keeps the invariant that equal events hash equal.
    def __hash__(self) -> int:
        return hash((self.timestamp_ns, self.category))


class EventLog:
    """Append-only event trace with category filtering."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        self._events: Deque[Event] = deque()
        self._capacity = capacity
        # Live event count per exact category; kept in lockstep with the
        # deque so prefix counts never rescan the log.
        self._counts: Dict[str, int] = {}

    def emit(self, timestamp_ns: int, category: str, **detail: Any) -> Event:
        event = Event(timestamp_ns, category, detail)
        events = self._events
        events.append(event)
        counts = self._counts
        counts[category] = counts.get(category, 0) + 1
        if self._capacity is not None and len(events) > self._capacity:
            # Drop the oldest half; the log is diagnostics, not ground truth.
            popleft = events.popleft
            for _ in range(len(events) // 2):
                old_category = popleft().category
                remaining = counts[old_category] - 1
                if remaining:
                    counts[old_category] = remaining
                else:
                    del counts[old_category]
        return event

    def emit_shared(
        self, timestamp_ns: int, category: str, detail: Dict[str, Any]
    ) -> Event:
        """Append an event whose ``detail`` dict is *shared* with the caller.

        Semantics match :meth:`emit` except the dict is stored by
        reference instead of being built from kwargs — hot emitters (the
        fused Gramine OCALL batch) keep one dict per syscall spec and
        reuse it across millions of events.  Callers must treat the dict
        as frozen after the first emit.
        """
        event = Event(timestamp_ns, category, detail)
        events = self._events
        events.append(event)
        counts = self._counts
        counts[category] = counts.get(category, 0) + 1
        if self._capacity is not None and len(events) > self._capacity:
            popleft = events.popleft
            for _ in range(len(events) // 2):
                old_category = popleft().category
                remaining = counts[old_category] - 1
                if remaining:
                    counts[old_category] = remaining
                else:
                    del counts[old_category]
        return event

    def bulk_appender(self, n: int):
        """The deque's bound ``append`` when ``n`` appends cannot trim.

        Hot fused emitters (the Gramine OCALL batch) construct
        :class:`Event` objects themselves and append them directly,
        settling the category index once per batch via :meth:`bump_count`.
        That is exact whenever the batch cannot trigger a capacity trim —
        always for an unbounded log, and for a bounded one whenever the
        ``n`` new events still fit under the bound (the common case: the
        log only crosses its bound once per ~capacity/2 events).  When a
        trim could fire mid-batch, returns ``None`` and callers fall back
        to :meth:`emit_shared` per event, which keeps the trim bookkeeping
        bit-exact.
        """
        capacity = self._capacity
        if capacity is None or len(self._events) + n <= capacity:
            return self._events.append
        return None

    def bump_count(self, category: str, n: int) -> None:
        """Settle the category index after ``n`` :meth:`bulk_appender` appends."""
        counts = self._counts
        counts[category] = counts.get(category, 0) + n

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def _count_matching(self, prefix: str, dotted: str) -> int:
        return sum(
            count
            for category, count in self._counts.items()
            if category == prefix or category.startswith(dotted)
        )

    def select(self, prefix: str) -> List[Event]:
        """All events whose category equals or starts with ``prefix.``."""
        dotted = prefix + "."
        if not self._count_matching(prefix, dotted):
            return []
        return [
            e for e in self._events if e.category == prefix or e.category.startswith(dotted)
        ]

    def count(self, prefix: str) -> int:
        return self._count_matching(prefix, prefix + ".")

    def clear(self) -> None:
        self._events.clear()
        self._counts.clear()
