"""Structured simulation event log.

The experiment harness and the security evaluator both need to observe what
happened inside a run: enclave transitions, page faults, attack steps,
protocol messages.  Components append :class:`Event` records; consumers
filter by category.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class Event:
    """One simulation event.

    ``category`` is a dotted namespace (``sgx.eenter``, ``attack.escape``,
    ``net.http.request`` …); ``detail`` carries event-specific fields.
    """

    timestamp_ns: int
    category: str
    detail: Dict[str, Any] = field(default_factory=dict)


class EventLog:
    """Append-only event trace with category filtering."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        self._events: List[Event] = []
        self._capacity = capacity

    def emit(self, timestamp_ns: int, category: str, **detail: Any) -> Event:
        event = Event(timestamp_ns=timestamp_ns, category=category, detail=detail)
        self._events.append(event)
        if self._capacity is not None and len(self._events) > self._capacity:
            # Drop the oldest half; the log is diagnostics, not ground truth.
            self._events = self._events[len(self._events) // 2 :]
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def select(self, prefix: str) -> List[Event]:
        """All events whose category equals or starts with ``prefix.``."""
        dotted = prefix + "."
        return [
            e for e in self._events if e.category == prefix or e.category.startswith(dotted)
        ]

    def count(self, prefix: str) -> int:
        return len(self.select(prefix))

    def clear(self) -> None:
        self._events.clear()
