"""Deterministic simulation kernel.

Every latency reported by this reproduction is *simulated* time accumulated
on a :class:`~repro.sim.clock.SimClock`, never wall-clock time.  The kernel
provides three services shared across all substrates:

* :class:`~repro.sim.clock.SimClock` — a monotonically advancing nanosecond
  counter with scoped measurement helpers,
* :class:`~repro.sim.rng.RngService` — seeded, namespaced random streams so
  that each subsystem draws from an independent deterministic stream,
* :class:`~repro.sim.events.EventLog` — a structured trace of simulation
  events used by the experiment harness and by tests.
"""

from repro.sim.clock import SimClock, TimeSpan
from repro.sim.events import Event, EventLog
from repro.sim.rng import RngService

__all__ = ["SimClock", "TimeSpan", "Event", "EventLog", "RngService"]
