"""Heap-ordered deadline scheduler for simulated-time tick machinery.

The fault injector and monitoring scrapers are driven by ``tick()`` calls
sprinkled through the driving loops (one per arrival, one per idle
slice).  Naively each tick rescans every fault window / cadence grid to
decide whether anything changed — linear in the plan size, paid even on
the overwhelmingly common *idle* tick where no window edge was crossed.

:class:`EventScheduler` turns those scans into a deadline heap: callers
register callbacks at absolute deadlines once (e.g. at
``FaultInjector.arm``), and each tick asks :meth:`run_due` to fire the
callbacks whose deadline has passed.  An idle tick costs one comparison
against the heap root (O(1)); a tick that crosses ``k`` edges costs
O(k log n).

Determinism: deadlines are simulated nanoseconds and ties are broken by
registration order (a monotone sequence number), so a given schedule
replays the same callback order on every run — the scheduler itself
never reads a wall clock and never draws randomness.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple


class EventScheduler:
    """Min-heap of ``(deadline_ns, seq, callback)`` entries."""

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Callable[[], Any]]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def next_deadline_ns(self) -> Optional[int]:
        """Earliest pending deadline, or ``None`` when the heap is empty."""
        heap = self._heap
        return heap[0][0] if heap else None

    def schedule_at(self, deadline_ns: int, callback: Callable[[], Any]) -> None:
        """Register ``callback`` to fire at the first ``run_due(now)`` with
        ``now >= deadline_ns``.  Callbacks at equal deadlines fire in
        registration order."""
        heapq.heappush(self._heap, (deadline_ns, self._seq, callback))
        self._seq += 1

    def run_due(self, now_ns: int) -> int:
        """Fire every callback whose deadline is ``<= now_ns``; returns the
        number fired.  The idle path — heap empty or root still in the
        future — is a single comparison."""
        heap = self._heap
        if not heap or heap[0][0] > now_ns:
            return 0
        fired = 0
        pop = heapq.heappop
        while heap and heap[0][0] <= now_ns:
            pop(heap)[2]()
            fired += 1
        return fired

    def clear(self) -> None:
        self._heap.clear()
