"""Simulated clock.

The clock is a plain nanosecond counter.  Components *advance* it by the
cost of the operations they model; measurement code *reads* it around an
operation to obtain the operation's simulated latency.  Because nothing
ever reads the host's wall clock, a run is exactly reproducible given the
same RNG seed.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000


class MeasurementNestingError(RuntimeError):
    """A ``measure()`` span was closed out of LIFO order.

    Spans are with-blocks, so in straight-line code they always nest; the
    error means measurement contexts were entered by hand (or through
    interleaved generators) and closed out of order, which would corrupt
    every still-open measurement.  This must stay a real exception — an
    ``assert`` would vanish under ``python -O`` and let the corruption
    pass silently.
    """


@dataclass
class TimeSpan:
    """A measured interval of simulated time, in nanoseconds."""

    start_ns: int
    end_ns: int

    @property
    def ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def us(self) -> float:
        return self.ns / NS_PER_US

    @property
    def ms(self) -> float:
        return self.ns / NS_PER_MS

    @property
    def seconds(self) -> float:
        return self.ns / NS_PER_S

    @property
    def minutes(self) -> float:
        return self.seconds / 60.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TimeSpan({self.ns} ns = {self.us:.2f} us)"


@dataclass
class SimClock:
    """Monotonic simulated nanosecond clock.

    >>> clock = SimClock()
    >>> with clock.measure() as span:
    ...     clock.advance_us(5)
    >>> span.us
    5.0
    """

    now_ns: int = 0
    _open_measurements: List[TimeSpan] = field(default_factory=list, repr=False)

    def advance(self, ns: int) -> None:
        """Advance the clock by ``ns`` nanoseconds (must be non-negative)."""
        if ns < 0:
            raise ValueError(f"cannot advance clock by negative time: {ns}")
        self.now_ns += int(ns)

    def advance_cycles(self, cycles: float, hz: float) -> None:
        """Advance by the wall time of ``cycles`` CPU cycles at ``hz``."""
        if hz <= 0:
            raise ValueError(f"clock frequency must be positive: {hz}")
        self.advance(int(round(cycles * NS_PER_S / hz)))

    def advance_us(self, us: float) -> None:
        self.advance(int(round(us * NS_PER_US)))

    def advance_ms(self, ms: float) -> None:
        self.advance(int(round(ms * NS_PER_MS)))

    def advance_s(self, seconds: float) -> None:
        self.advance(int(round(seconds * NS_PER_S)))

    @contextmanager
    def measure(self) -> Iterator[TimeSpan]:
        """Measure the simulated time spent inside the ``with`` block."""
        span = TimeSpan(start_ns=self.now_ns, end_ns=self.now_ns)
        self._open_measurements.append(span)
        try:
            yield span
        finally:
            span.end_ns = self.now_ns
            # Measurements nest (with-blocks), so the span being closed is
            # always the most recently opened one: pop O(1) instead of an
            # O(n) List.remove scan.
            popped = self._open_measurements.pop() if self._open_measurements else None
            if popped is not span:
                raise MeasurementNestingError(
                    "measure() spans must close LIFO: closing "
                    f"[{span.start_ns}, ...] but the innermost open span is "
                    f"{popped!r}"
                )

    def timestamp(self) -> int:
        """Current simulated time in nanoseconds since simulation start."""
        return self.now_ns
