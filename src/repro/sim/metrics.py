"""Bounded metric series with exact running summary statistics.

Long campaigns (the 10k-UE capacity benchmark) push hundreds of thousands
of per-request latency samples into the HTTP servers' metric lists.  The
raw samples only matter for percentile plots over bounded windows; the
aggregate statistics must stay exact over the whole run.  This module
splits the two concerns: :class:`RunningStats` accumulates count / total /
min / max over every sample ever added, while :class:`BoundedSeries` is a
drop-in ``list`` of recent raw samples with an optional retention cap.
"""

from __future__ import annotations

from typing import Iterable, Optional


class RunningStats:
    """Exact streaming count/total/min/max/mean over all samples added."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunningStats(count={self.count}, mean={self.mean:.3f}, "
            f"min={self.minimum}, max={self.maximum})"
        )


class BoundedSeries(list):
    """A ``list`` of samples with running stats and an optional cap.

    With ``cap=None`` (the default everywhere latency windows are sliced
    by index) this behaves exactly like a plain list that also maintains
    :attr:`stats`.  With a cap, appends beyond it drop the oldest half of
    the retained samples — the stats stay exact over everything ever
    appended, only the raw window is trimmed.

    The series is **append-only**: every mutator that introduces new
    samples (:meth:`extend`, ``+=``) routes through :meth:`append` so the
    running stats and the retention cap always see them, and mutators
    that would rewrite or splice samples in place (``insert``, item or
    slice assignment) are rejected — they would desynchronise
    :attr:`stats` from the sample window.  Deletion (the cap trim) is
    allowed because stats intentionally cover everything ever appended,
    not just the retained window.
    """

    def __init__(self, cap: Optional[int] = None, iterable: Iterable[float] = ()) -> None:
        super().__init__()
        if cap is not None and cap < 2:
            raise ValueError(f"cap must be >= 2, got {cap}")
        self.cap = cap
        self.stats = RunningStats()
        for value in iterable:
            self.append(value)

    def append(self, value: float) -> None:
        self.stats.add(value)
        super().append(value)
        if self.cap is not None and len(self) > self.cap:
            del self[: len(self) // 2]

    def extend(self, iterable: Iterable[float]) -> None:
        for value in iterable:
            self.append(value)

    def __iadd__(self, iterable: Iterable[float]) -> "BoundedSeries":
        self.extend(iterable)
        return self

    def insert(self, index, value) -> None:
        raise TypeError(
            "BoundedSeries is append-only: insert() would bypass the "
            "running stats and the retention cap"
        )

    def __setitem__(self, index, value) -> None:
        raise TypeError(
            "BoundedSeries is append-only: item/slice assignment would "
            "bypass the running stats and the retention cap"
        )
