"""Container engine (containerd/Docker stand-in).

The engine creates containers from images and attaches them to bridges.
In the paper's threat model the engine is **untrusted**: an attacker who
compromises it can inspect any plain container's memory
(:meth:`ContainerEngine.introspect_memory`) — but gets only MEE ciphertext
from a GSC/SGX container, because the runtime inside is an enclave.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional

from repro.container.image import ContainerImage
from repro.container.network import BridgeNetwork, NetworkEndpoint
from repro.hw.host import PhysicalHost
from repro.runtime.base import Runtime
from repro.runtime.native import NativeRuntime


class ContainerError(Exception):
    """Engine-level failure (duplicate name, bad state transition …)."""


class ContainerStatus(Enum):
    CREATED = "created"
    RUNNING = "running"
    EXITED = "exited"


# A factory lets the GSC path supply an enclave-backed runtime while plain
# containers default to NativeRuntime.
RuntimeFactory = Callable[[str, PhysicalHost], Runtime]


@dataclass
class Container:
    """A running (or stopped) container instance."""

    name: str
    image: ContainerImage
    host: PhysicalHost
    runtime: Runtime
    status: ContainerStatus = ContainerStatus.CREATED
    endpoint: Optional[NetworkEndpoint] = None
    start_timestamp_ns: int = 0

    def stop(self) -> None:
        if self.status is ContainerStatus.RUNNING:
            self.runtime.shutdown()
            self.status = ContainerStatus.EXITED
            if self.endpoint is not None:
                self.endpoint.network.detach(self.endpoint.name)
                self.endpoint = None


class ContainerEngine:
    """Per-host container engine."""

    # Cold-start cost of a plain container (runc + cgroup + netns setup).
    _CONTAINER_START_MS = 380.0

    def __init__(self, host: PhysicalHost) -> None:
        self.host = host
        self._containers: Dict[str, Container] = {}
        self._networks: Dict[str, BridgeNetwork] = {}

    # ------------------------------------------------------------ networks

    def create_network(self, name: str, **kwargs: float) -> BridgeNetwork:
        if name in self._networks:
            raise ContainerError(f"network {name!r} already exists")
        network = BridgeNetwork(name=name, host=self.host, **kwargs)
        self._networks[name] = network
        return network

    def network(self, name: str) -> BridgeNetwork:
        try:
            return self._networks[name]
        except KeyError:
            raise ContainerError(f"no network {name!r}")

    # ---------------------------------------------------------- containers

    def run(
        self,
        image: ContainerImage,
        name: str,
        network: Optional[str] = None,
        runtime_factory: Optional[RuntimeFactory] = None,
    ) -> Container:
        """Create and start a container (``docker run``)."""
        if name in self._containers:
            raise ContainerError(f"container name {name!r} already in use")
        factory = runtime_factory or (
            lambda cname, host: NativeRuntime(cname, host)
        )
        # Engine-side start latency before the workload runs.
        self.host.clock.advance_ms(
            self.host.rng.jitter("engine.start", self._CONTAINER_START_MS, 0.05)
        )
        runtime = factory(name, self.host)
        container = Container(name=name, image=image, host=self.host, runtime=runtime)
        if network is not None:
            container.endpoint = self.network(network).attach(name)
        container.status = ContainerStatus.RUNNING
        container.start_timestamp_ns = self.host.clock.timestamp()
        self._containers[name] = container
        self.host.events.emit(
            self.host.clock.timestamp(), "engine.run", container=name,
            image=image.reference, shielded=runtime.shielded,
        )
        return container

    def get(self, name: str) -> Container:
        try:
            return self._containers[name]
        except KeyError:
            raise ContainerError(f"no container {name!r}")

    def ps(self) -> List[Container]:
        return [c for c in self._containers.values() if c.status is ContainerStatus.RUNNING]

    def stop(self, name: str) -> None:
        self.get(name).stop()

    def remove(self, name: str) -> None:
        container = self._containers.pop(name, None)
        if container is not None:
            container.stop()

    # -------------------------------------------------- attack primitives

    def introspect_memory(self, name: str, actor: str = "container-engine") -> bytes:
        """Read a container's memory as a (possibly compromised) engine.

        Plain containers yield their secrets in plaintext; enclave-backed
        containers yield MEE ciphertext.  This is KI 7/15's attack
        primitive.
        """
        return self.get(name).runtime.memory_view(actor)
