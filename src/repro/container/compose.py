"""Compose-style orchestration.

The paper deploys the OAI core and the P-AKA modules with docker-compose;
this module gives the experiment harness the same convenience: declare
services (image, network, optional shielded runtime factory, dependency
order), then ``up()`` / ``down()`` the whole slice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.container.engine import Container, ContainerEngine, RuntimeFactory
from repro.container.image import ContainerImage


class ComposeError(Exception):
    """Bad service graph (unknown dependency, cycle …)."""


@dataclass
class ServiceSpec:
    """One service in the project."""

    name: str
    image: ContainerImage
    network: Optional[str] = None
    depends_on: List[str] = field(default_factory=list)
    runtime_factory: Optional[RuntimeFactory] = None


class ComposeProject:
    """An ordered set of services on one host's engine."""

    def __init__(self, name: str, engine: ContainerEngine) -> None:
        self.name = name
        self.engine = engine
        self._services: Dict[str, ServiceSpec] = {}
        self._containers: Dict[str, Container] = {}

    def add_service(self, spec: ServiceSpec) -> None:
        if spec.name in self._services:
            raise ComposeError(f"duplicate service {spec.name!r}")
        self._services[spec.name] = spec

    def _start_order(self) -> List[ServiceSpec]:
        """Topological order over depends_on; raises on cycles."""
        order: List[ServiceSpec] = []
        state: Dict[str, int] = {}  # 0 unseen, 1 visiting, 2 done

        def visit(name: str) -> None:
            status = state.get(name, 0)
            if status == 1:
                raise ComposeError(f"dependency cycle through {name!r}")
            if status == 2:
                return
            spec = self._services.get(name)
            if spec is None:
                raise ComposeError(f"service {name!r} depends on unknown service")
            state[name] = 1
            for dep in spec.depends_on:
                visit(dep)
            state[name] = 2
            order.append(spec)

        for name in self._services:
            visit(name)
        return order

    def up(self) -> Dict[str, Container]:
        """Start every service in dependency order; returns containers."""
        for spec in self._start_order():
            if spec.name in self._containers:
                continue
            self._containers[spec.name] = self.engine.run(
                spec.image,
                name=f"{self.name}_{spec.name}",
                network=spec.network,
                runtime_factory=spec.runtime_factory,
            )
        return dict(self._containers)

    def down(self) -> None:
        """Stop and remove services in reverse start order."""
        for spec in reversed(self._start_order()):
            container = self._containers.pop(spec.name, None)
            if container is not None:
                self.engine.remove(container.name)

    def container(self, service: str) -> Container:
        try:
            return self._containers[service]
        except KeyError:
            raise ComposeError(f"service {service!r} is not up")
