"""Container / NFV-infrastructure substrate.

Models the parts of the Docker stack the paper's deployment rests on:
images with layered filesystems (including the credential-in-image problem
of KI 27), a container engine (an *untrusted* entity in the threat model —
it can inspect the memory of plain containers), an intra-host bridge
network with a latency model (the "OAI docker bridge" of Fig 4), and a
compose-style orchestrator for bringing whole slices up and down.
"""

from repro.container.image import ContainerImage, FileEntry, ImageLayer
from repro.container.engine import Container, ContainerEngine, ContainerStatus
from repro.container.network import BridgeNetwork, NetworkEndpoint
from repro.container.compose import ComposeProject, ServiceSpec

__all__ = [
    "ContainerImage",
    "ImageLayer",
    "FileEntry",
    "Container",
    "ContainerEngine",
    "ContainerStatus",
    "BridgeNetwork",
    "NetworkEndpoint",
    "ComposeProject",
    "ServiceSpec",
]
