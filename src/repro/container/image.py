"""Container images: layered filesystems.

Only two aspects matter to the experiments:

* **size** — GSC measures (hashes) essentially the whole root filesystem
  as trusted files, which is what makes enclave load take ~a minute
  (Fig 7), so layer byte-sizes feed the load-time model;
* **content** — images can carry files with actual bytes (configuration,
  baked-in credentials).  KI 27's attack is "pull the image, read the
  secrets"; the mitigation stores a *sealed* blob instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class FileEntry:
    """One file in an image layer."""

    path: str
    size_bytes: int
    content: Optional[bytes] = None  # only small, interesting files carry bytes

    def __post_init__(self) -> None:
        if not self.path.startswith("/"):
            raise ValueError(f"image paths must be absolute: {self.path!r}")
        if self.content is not None and len(self.content) != self.size_bytes:
            raise ValueError(
                f"{self.path}: declared size {self.size_bytes} != "
                f"content length {len(self.content)}"
            )


@dataclass
class ImageLayer:
    """One copy-on-write layer."""

    name: str
    files: List[FileEntry] = field(default_factory=list)
    opaque_bytes: int = 0  # bulk content we don't model file-by-file

    @property
    def size_bytes(self) -> int:
        return self.opaque_bytes + sum(f.size_bytes for f in self.files)


@dataclass
class ContainerImage:
    """A tagged, layered container image."""

    repository: str
    tag: str
    layers: List[ImageLayer] = field(default_factory=list)
    entrypoint: str = "/bin/app"
    env: Dict[str, str] = field(default_factory=dict)

    @property
    def reference(self) -> str:
        return f"{self.repository}:{self.tag}"

    @property
    def size_bytes(self) -> int:
        return sum(layer.size_bytes for layer in self.layers)

    def rootfs(self) -> Dict[str, FileEntry]:
        """The merged filesystem view (later layers shadow earlier ones)."""
        merged: Dict[str, FileEntry] = {}
        for layer in self.layers:
            for entry in layer.files:
                merged[entry.path] = entry
        return merged

    def read_file(self, path: str) -> bytes:
        """Read a file's bytes from the merged rootfs.

        This is the image-theft primitive of KI 27: anyone holding the
        image can do this — no container needs to be running.
        """
        entry = self.rootfs().get(path)
        if entry is None:
            raise FileNotFoundError(f"{self.reference}: no such file {path!r}")
        if entry.content is None:
            raise ValueError(f"{self.reference}: {path!r} content not modelled")
        return entry.content

    def with_layer(self, layer: ImageLayer) -> "ContainerImage":
        """A new image extending this one by ``layer`` (docker build step)."""
        return ContainerImage(
            repository=self.repository,
            tag=f"{self.tag}+{layer.name}",
            layers=[*self.layers, layer],
            entrypoint=self.entrypoint,
            env=dict(self.env),
        )


def oai_base_image(component: str, bulk_mb: int) -> Tuple[ContainerImage, ImageLayer]:
    """Build an OAI-style VNF image: Ubuntu base + deps + the component.

    Returns the image and its app layer (GSC needs to know which layer is
    the application when templating the manifest).
    """
    base = ImageLayer("ubuntu-20.04", opaque_bytes=72 * 1024**2)
    deps = ImageLayer(
        f"{component}-deps",
        opaque_bytes=bulk_mb * 1024**2,
        files=[
            FileEntry("/usr/lib/libssl.so.1.1", 580_000),
            FileEntry("/usr/lib/libcrypto.so.1.1", 2_800_000),
            FileEntry("/usr/lib/libpistache.so", 1_450_000),
        ],
    )
    app = ImageLayer(
        f"{component}-app",
        opaque_bytes=8 * 1024**2,
        files=[FileEntry(f"/opt/oai/{component}", 6_200_000)],
    )
    image = ContainerImage(
        repository=f"oai/{component}",
        tag="v1.5.0",
        layers=[base, deps, app],
        entrypoint=f"/opt/oai/{component}",
    )
    return image, app
