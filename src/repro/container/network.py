"""Intra-host bridge network (the "OAI docker bridge" of Fig 4).

A bridge connects endpoints on the same host through veth pairs; transit
cost is a fixed per-hop latency plus a per-byte serialization cost, with
jitter.  The network substrate is an *observation point* for the threat
model too: an on-path privileged attacker can capture frames — which is
why tests assert that captured AKA exchanges are TLS ciphertext.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.hw.host import PhysicalHost


class NetworkError(Exception):
    """Unroutable destination or endpoint misuse."""


class FrameLost(NetworkError):
    """A frame dropped on the wire (injected link loss).

    The sender only learns about it by timing out: HTTP clients convert
    this into a ``RequestTimeout`` after charging the response deadline.
    """


@dataclass
class Frame:
    """One captured frame (source, destination, raw payload bytes)."""

    src: str
    dst: str
    payload: bytes
    timestamp_ns: int


@dataclass
class NetworkEndpoint:
    """One attachment to the bridge (a container's veth)."""

    name: str
    network: "BridgeNetwork"
    deliver: Optional[Callable[[Frame], None]] = None

    def send(self, dst: str, payload: bytes) -> None:
        self.network.transmit(self.name, dst, payload)


@dataclass
class BridgeNetwork:
    """A named bridge with a latency model and a capture facility."""

    name: str
    host: PhysicalHost
    base_latency_us: float = 70.0  # veth pair + bridge + TCP/TLS kernel path
    per_kb_latency_us: float = 1.6
    _endpoints: Dict[str, NetworkEndpoint] = field(default_factory=dict)
    _captures: List[Frame] = field(default_factory=list)
    capture_enabled: bool = False
    # Fault-injection hook: called per frame with (src, dst, nbytes) and
    # returns extra transit latency in µs, or None to drop the frame.
    # Stays None in fault-free runs, costing nothing on the hot path.
    link_filter: Optional[Callable[[str, str, int], Optional[float]]] = None

    def attach(self, name: str) -> NetworkEndpoint:
        if name in self._endpoints:
            raise NetworkError(f"endpoint {name!r} already attached to {self.name!r}")
        endpoint = NetworkEndpoint(name=name, network=self)
        self._endpoints[name] = endpoint
        return endpoint

    def detach(self, name: str) -> None:
        self._endpoints.pop(name, None)

    def endpoint(self, name: str) -> NetworkEndpoint:
        try:
            return self._endpoints[name]
        except KeyError:
            raise NetworkError(f"no endpoint {name!r} on bridge {self.name!r}")

    def transit_latency_us(self, nbytes: int) -> float:
        mean = self.base_latency_us + self.per_kb_latency_us * (nbytes / 1024.0)
        return self.host.rng.jitter(f"net.{self.name}", mean, 0.06)

    def transmit(self, src: str, dst: str, payload: bytes) -> None:
        """Move one frame across the bridge, advancing the clock."""
        if dst not in self._endpoints:
            raise NetworkError(f"no route from {src!r} to {dst!r} on {self.name!r}")
        extra_us = 0.0
        if self.link_filter is not None:
            verdict = self.link_filter(src, dst, len(payload))
            if verdict is None:
                # The frame burns its transit time and vanishes; the
                # sender discovers the loss only through its timeout.
                self.host.clock.advance_us(self.transit_latency_us(len(payload)))
                self.host.events.emit(
                    self.host.clock.timestamp(), "net.drop",
                    src=src, dst=dst, nbytes=len(payload),
                )
                raise FrameLost(f"frame {src!r}->{dst!r} lost on {self.name!r}")
            extra_us = verdict
        self.host.clock.advance_us(self.transit_latency_us(len(payload)) + extra_us)
        frame = Frame(
            src=src, dst=dst, payload=payload,
            timestamp_ns=self.host.clock.timestamp(),
        )
        if self.capture_enabled:
            self._captures.append(frame)
        self.host.events.emit(
            self.host.clock.timestamp(), "net.frame",
            src=src, dst=dst, nbytes=len(payload),
        )
        receiver = self._endpoints[dst]
        if receiver.deliver is not None:
            receiver.deliver(frame)

    # ------------------------------------------------------------- capture

    def start_capture(self) -> None:
        """Begin recording frames (the on-path attacker's tcpdump)."""
        self.capture_enabled = True

    def stop_capture(self) -> List[Frame]:
        self.capture_enabled = False
        captured, self._captures = self._captures, []
        return captured
