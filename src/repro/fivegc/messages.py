"""NAS and N2 message types (TS 24.501, simplified but faithful).

These are the messages the AMF and UE exchange during registration — the
paper's Fig 5 sequence.  Cryptographic fields carry real bytes; MACs are
real 128-NIA2 tags once NAS security is activated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class NasMessage:
    """Base class; ``kind`` doubles as the wire discriminator."""

    @property
    def kind(self) -> str:
        return type(self).__name__

    def approx_bytes(self) -> int:
        """Rough NAS PDU size used by the air-interface latency model."""
        return 64


@dataclass(frozen=True)
class RegistrationRequest(NasMessage):
    """Registration with a concealed identity (SUCI) or a prior 5G-GUTI."""

    suci: Optional[Dict[str, object]] = None  # mcc, mnc, scheme, keyId, schemeOutput
    guti: Optional[str] = None  # re-registration with a temporary identity
    requested_nssai: str = "default"

    def __post_init__(self) -> None:
        if (self.suci is None) == (self.guti is None):
            raise ValueError("registration needs exactly one of SUCI or GUTI")

    def approx_bytes(self) -> int:
        if self.suci is not None:
            return 96 + len(str(self.suci.get("schemeOutput", "")))
        return 96 + len(self.guti or "")


@dataclass(frozen=True)
class AuthenticationRequest(NasMessage):
    """Network → UE challenge (RAND, AUTN)."""

    rand: bytes
    autn: bytes
    ngksi: int = 0

    def approx_bytes(self) -> int:
        return 8 + len(self.rand) + len(self.autn)


@dataclass(frozen=True)
class AuthenticationResponse(NasMessage):
    """UE → network response (RES*)."""

    res_star: bytes

    def approx_bytes(self) -> int:
        return 8 + len(self.res_star)


@dataclass(frozen=True)
class AuthenticationFailure(NasMessage):
    """UE rejects the challenge (MAC failure or SQN out of range)."""

    cause: str
    auts: Optional[bytes] = None  # resynchronisation token for SYNCH_FAILURE


@dataclass(frozen=True)
class AuthenticationReject(NasMessage):
    """Network rejects the UE."""

    cause: str = "authentication failed"


@dataclass(frozen=True)
class SecurityModeCommand(NasMessage):
    """Activate NAS security (integrity-protected with the new keys)."""

    integrity_alg: str = "128-NIA2"
    ciphering_alg: str = "128-NEA2"
    ngksi: int = 0
    mac: bytes = b""

    def approx_bytes(self) -> int:
        return 24 + len(self.mac)


@dataclass(frozen=True)
class SecurityModeComplete(NasMessage):
    mac: bytes = b""


@dataclass(frozen=True)
class RegistrationAccept(NasMessage):
    """Registration accepted; carries the new 5G-GUTI."""

    guti: str
    mac: bytes = b""

    def approx_bytes(self) -> int:
        return 48 + len(self.guti)


@dataclass(frozen=True)
class RegistrationComplete(NasMessage):
    mac: bytes = b""


@dataclass(frozen=True)
class DeregistrationRequest(NasMessage):
    """UE-initiated deregistration (integrity-protected)."""

    mac: bytes = b""


@dataclass(frozen=True)
class DeregistrationAccept(NasMessage):
    mac: bytes = b""


@dataclass(frozen=True)
class PduSessionEstablishmentRequest(NasMessage):
    session_id: int = 1
    dnn: str = "internet"


@dataclass(frozen=True)
class PduSessionEstablishmentAccept(NasMessage):
    session_id: int = 1
    ue_address: str = "10.0.0.2"
    qos_flow: str = "5qi-9"


@dataclass
class RegistrationOutcome:
    """What a completed registration attempt yields (for the harness)."""

    success: bool
    supi: Optional[str] = None
    guti: Optional[str] = None
    failure_cause: Optional[str] = None
    session_setup_ms: Optional[float] = None
    nas_exchanges: int = 0
    detail: Dict[str, float] = field(default_factory=dict)
