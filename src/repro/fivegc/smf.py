"""SMF — Session Management Function.

Anchors PDU session establishment: allocates the UE address, selects a
UPF and programs its N4 forwarding state.  Kept at the fidelity the
end-to-end session-setup experiment needs (the paper measures total setup
delay; SMF/UPF contribute baseline latency, not AKA overhead).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.fivegc.nf_base import NetworkFunction
from repro.net.rest import JsonApiError, json_body, require_int, require_str
from repro.net.sbi import NFType, SMF_PDU_SESSION

_SESSION_SETUP_CYCLES = 55_000  # SM context + IP allocation + PCC rules


class Smf(NetworkFunction):
    NF_TYPE = NFType.SMF

    def __init__(self, *args, **kwargs) -> None:
        self._sessions: Dict[str, dict] = {}
        self._next_ip = 1
        super().__init__(*args, **kwargs)

    def _register_routes(self) -> None:
        self._route_json("POST", SMF_PDU_SESSION, self._handle_create)

    def _handle_create(self, request, context):
        data = json_body(request)
        supi = require_str(data, "supi")
        session_id = require_int(data, "sessionId")
        dnn = require_str(data, "dnn")
        context.runtime.compute(_SESSION_SETUP_CYCLES)

        self._next_ip += 1
        ue_address = f"10.0.{self._next_ip // 256}.{self._next_ip % 256}"
        key = f"{supi}/{session_id}"
        upf = self._peers.get(NFType.UPF)
        if upf is not None:
            # N4 session establishment towards the UPF.
            n4 = self.call(
                upf, "POST", "/n4/v1/sessions",
                {"ueAddress": ue_address, "dnn": dnn},
            )
            if not n4.ok:
                raise JsonApiError(502, "UPF rejected N4 session")
        self._sessions[key] = {"ueAddress": ue_address, "dnn": dnn}
        return self._ok(
            {"ueAddress": ue_address, "qosFlow": "5qi-9", "sessionKey": key},
            status=201,
        )

    def session_count(self) -> int:
        return len(self._sessions)
