"""UDM — Unified Data Management (home network).

Handles Nudm_UEAuthentication_Get: de-conceals the SUCI (SIDF), fetches
the subscriber's authentication data from the UDR, and produces the HE
authentication vector.  In offloaded mode the sensitive generation runs
in the external eUDM P-AKA module (Fig 5 steps 2–3): the UDM sends OPc,
RAND, SQN and the AMF field over the bridge and receives RAND, AUTN,
XRES* and K_AUSF back — the subscriber key K itself stays provisioned
inside the module.
"""

from __future__ import annotations

from typing import Optional

from repro.aka import verify_auts
from repro.crypto.kdf import serving_network_name
from repro.crypto.suci import Suci, Supi, deconceal_suci
from repro.fivegc.aka import generate_he_av
from repro.fivegc.nf_base import NetworkFunction
from repro.net.rest import JsonApiError, json_body, require_str
from repro.net.sbi import (
    EUDM_GENERATE_AV,
    EUDM_PROVISION,
    EUDM_VERIFY_AUTS,
    NFType,
    UDM_UE_AUTH_GET,
    UDR_AUTH_PEEK,
    UDR_AUTH_RESYNC,
    UDR_AUTH_SUBSCRIPTION,
)
from repro.paka.modules import EudmPakaModule

_SIDF_DECONCEAL_CYCLES = 150_000  # X25519 + KDF + AES-CTR + MAC check
_AV_LOCAL_CYCLES = EudmPakaModule.COMPUTE_CYCLES  # monolithic execution
_AUTS_LOCAL_CYCLES = 78_000  # f2345 (AK*) + f1* verification


class Udm(NetworkFunction):
    NF_TYPE = NFType.UDM

    def __init__(self, *args, hn_private_key: bytes = bytes(32), **kwargs) -> None:
        self.hn_private_key = hn_private_key
        self.offload_module: Optional[EudmPakaModule] = None
        super().__init__(*args, **kwargs)

    # ------------------------------------------------------------ offload

    def attach_module(self, module: EudmPakaModule) -> None:
        """Bind the external eUDM P-AKA module (offloaded mode)."""
        self.offload_module = module

    def provision_module_key(self, supi: str, k: bytes) -> None:
        """Push a subscriber key into the eUDM module at slice setup.

        Uses the module's local attested provisioning channel rather than
        the HTTP path (see :meth:`EudmPakaModule.provision_direct`).
        """
        if self.offload_module is None:
            raise RuntimeError(f"{self.name}: no eUDM module attached")
        self.offload_module.provision_direct(supi, k)

    # ------------------------------------------------------------- routing

    def _register_routes(self) -> None:
        self._route_json("POST", UDM_UE_AUTH_GET, self._handle_generate_auth_data)

    def _handle_generate_auth_data(self, request, context):
        data = json_body(request)
        snn_text = require_str(data, "servingNetworkName")
        supi = self._resolve_identity(data, context)

        # Resynchronisation (TS 33.102 §6.3.5): the UE reported a stale
        # SQN with an AUTS token; verify it and reset the UDR counter
        # before generating the fresh vector.
        resync_info = data.get("resynchronizationInfo")
        if isinstance(resync_info, dict):
            self._perform_resync(supi, resync_info, context)

        # Fetch auth subscription data from the UDR (advances the SQN).
        udr = self.peer(NFType.UDR)
        udr_response = self.call(udr, "POST", UDR_AUTH_SUBSCRIPTION, {"supi": supi})
        if not udr_response.ok:
            raise JsonApiError(udr_response.status, "UDR rejected the subscriber")
        record = udr_response.json()
        opc = bytes.fromhex(record["opc"])
        sqn = bytes.fromhex(record["sqn"])
        amf_field = bytes.fromhex(record["amfField"])
        rand = self.host.rng.randbytes("udm.rand", 16)

        if self.offload_module is not None:
            av = self._generate_av_offloaded(
                supi=supi, opc=opc, rand=rand, sqn=sqn,
                amf_field=amf_field, snn_text=snn_text,
            )
        else:
            context.runtime.compute(_AV_LOCAL_CYCLES)
            k = bytes.fromhex(record["k"])
            he_av = generate_he_av(
                k=k, opc=opc, rand=rand, sqn=sqn,
                snn=snn_text.encode(), amf_field=amf_field,
            )
            av = {
                "rand": he_av.rand.hex(),
                "autn": he_av.autn.hex(),
                "xresStar": he_av.xres_star.hex(),
                "kausf": he_av.kausf.hex(),
            }
        av["supi"] = supi
        return self._ok(av)

    # ------------------------------------------------------------ internals

    def _resolve_identity(self, data: dict, context) -> str:
        """SIDF: map the request's SUCI (or SUPI) to a SUPI."""
        if "supi" in data:
            return require_str(data, "supi")
        suci_text = data.get("suci")
        if not isinstance(suci_text, dict):
            raise JsonApiError(400, "request needs a supi or a suci object")
        try:
            suci = Suci(
                mcc=str(suci_text["mcc"]),
                mnc=str(suci_text["mnc"]),
                protection_scheme=int(suci_text["scheme"]),
                home_network_key_id=int(suci_text.get("keyId", 1)),
                scheme_output=bytes.fromhex(str(suci_text["schemeOutput"])),
            )
        except (KeyError, ValueError) as exc:
            raise JsonApiError(400, f"malformed SUCI: {exc}")
        context.runtime.compute(_SIDF_DECONCEAL_CYCLES)
        try:
            supi = deconceal_suci(suci, self.hn_private_key)
        except ValueError as exc:
            raise JsonApiError(403, f"SUCI de-concealment failed: {exc}")
        return str(supi)

    def _generate_av_offloaded(
        self,
        supi: str,
        opc: bytes,
        rand: bytes,
        sqn: bytes,
        amf_field: bytes,
        snn_text: str,
    ) -> dict:
        """Fig 5 step 2–3: round-trip to the eUDM P-AKA module."""
        module = self.offload_module
        assert module is not None
        payload = {
            "supi": supi,
            "opc": opc.hex(),
            "rand": rand.hex(),
            "sqn": sqn.hex(),
            "amfField": amf_field.hex(),
            "snn": snn_text,
        }
        response = self.call_server(module.server, "POST", EUDM_GENERATE_AV, payload)
        if not response.ok:
            raise JsonApiError(502, f"eUDM module error: {response.status}")
        return response.json()

    def _perform_resync(self, supi: str, resync_info: dict, context) -> None:
        """Verify AUTS (inside the eUDM enclave when offloaded) and reset
        the UDR's SQN to the recovered SQN_MS."""
        try:
            rand = bytes.fromhex(str(resync_info["rand"]))
            auts = bytes.fromhex(str(resync_info["auts"]))
        except (KeyError, ValueError):
            raise JsonApiError(400, "malformed resynchronizationInfo")
        if len(rand) != 16 or len(auts) != 14:
            raise JsonApiError(400, "resynchronizationInfo has bad sizes")

        udr = self.peer(NFType.UDR)
        peek = self.call(udr, "POST", UDR_AUTH_PEEK, {"supi": supi})
        if not peek.ok:
            raise JsonApiError(peek.status, "UDR rejected the subscriber")
        record = peek.json()
        opc = bytes.fromhex(record["opc"])

        if self.offload_module is not None:
            response = self.call_server(
                self.offload_module.server, "POST", EUDM_VERIFY_AUTS,
                {"supi": supi, "opc": opc.hex(), "rand": rand.hex(),
                 "auts": auts.hex()},
            )
            if response.status == 403:
                raise JsonApiError(403, "AUTS verification failed")
            if not response.ok:
                raise JsonApiError(502, f"eUDM module error: {response.status}")
            sqn_ms = int(response.json()["sqnMs"])
        else:
            context.runtime.compute(_AUTS_LOCAL_CYCLES)
            k = bytes.fromhex(record["k"])
            recovered = verify_auts(k, opc, rand, auts)
            if recovered is None:
                raise JsonApiError(403, "AUTS verification failed")
            sqn_ms = recovered

        resync = self.call(
            udr, "POST", UDR_AUTH_RESYNC, {"supi": supi, "sqnMs": sqn_ms}
        )
        if not resync.ok:
            raise JsonApiError(resync.status, "UDR resync failed")



def snn_for(mcc: str, mnc: str) -> str:
    """Convenience: the serving network name string for a PLMN."""
    return serving_network_name(mcc, mnc).decode()
