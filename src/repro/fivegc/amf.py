"""AMF — Access and Mobility Management Function (with the SEAF role).

Terminates NAS signalling from the gNB, drives the 5G-AKA exchange of
Fig 5, and activates NAS security once K_AMF is derived:

1. Registration Request (SUCI) arrives → authenticate via AUSF,
2. Authentication Request (RAND, AUTN) goes to the UE,
3. the UE's RES* is checked against HXRES* (SEAF), then confirmed with
   the AUSF, which releases K_SEAF,
4. K_AMF is derived from K_SEAF — inside the eAMF P-AKA module when
   offloaded (Fig 5 step 5) — and NAS int/enc keys follow,
5. Security Mode Command/Complete (real 128-NIA2 MACs), then
   Registration Accept with a fresh 5G-GUTI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional

from repro.crypto.cmac import nia2_mac
from repro.crypto.kdf import derive_hxres_star, derive_kamf, derive_nas_keys
from repro.fivegc.messages import (
    AuthenticationFailure,
    AuthenticationReject,
    AuthenticationRequest,
    AuthenticationResponse,
    DeregistrationAccept,
    DeregistrationRequest,
    NasMessage,
    PduSessionEstablishmentAccept,
    PduSessionEstablishmentRequest,
    RegistrationAccept,
    RegistrationComplete,
    RegistrationRequest,
    SecurityModeCommand,
    SecurityModeComplete,
)
from repro.fivegc.admission import (
    KIND_INITIAL,
    KIND_RETURNING,
    AdmissionController,
)
from repro.fivegc.nas_security import (
    DOWNLINK,
    NasSecurityError,
    ProtectedNasPdu,
    SecureNasChannel,
)
from repro.fivegc.nf_base import NetworkFunction
from repro.net.rest import JsonApiError
from repro.net.sbi import (
    AUSF_UE_AUTH,
    AUSF_UE_AUTH_CONFIRM,
    EAMF_DERIVE_KAMF,
    NFType,
    SMF_PDU_SESSION,
)
from repro.paka.modules import EamfPakaModule

_KAMF_LOCAL_CYCLES = EamfPakaModule.COMPUTE_CYCLES
_NAS_DECODE_CYCLES = 16_000
_NAS_ENCODE_CYCLES = 14_000
_HRES_CHECK_CYCLES = 9_500
_GUTI_ALLOC_CYCLES = 6_000
# Admission check + cheap reject encode when a registration is shed at
# the front door (armed controllers only; disarmed AMFs never spend it).
_ADMISSION_SHED_CYCLES = 4_000
_ABBA = b"\x00\x00"


class AmfError(Exception):
    """Protocol-state violation in the AMF."""


class _SessionState(Enum):
    WAIT_AUTH_RESPONSE = "wait-auth-response"
    WAIT_SMC_COMPLETE = "wait-smc-complete"
    WAIT_REG_COMPLETE = "wait-registration-complete"
    REGISTERED = "registered"
    FAILED = "failed"


@dataclass
class _UeSession:
    ue_id: str
    state: _SessionState
    snn: str
    identity: Dict[str, object] = field(default_factory=dict)  # suci or supi
    auth_ctx_id: str = ""
    rand: bytes = b""
    hxres_star: bytes = b""
    supi: str = ""
    kamf: bytes = b""
    k_nas_int: bytes = b""
    k_nas_enc: bytes = b""
    guti: str = ""
    downlink_count: int = 0
    uplink_count: int = 0
    resync_attempted: bool = False
    secure_channel: Optional[SecureNasChannel] = None
    detail: Dict[str, float] = field(default_factory=dict)
    via: str = "direct"  # originating gNB, for per-cell accept accounting


class Amf(NetworkFunction):
    NF_TYPE = NFType.AMF

    def __init__(self, *args, serving_network_name: str, **kwargs) -> None:
        self.snn = serving_network_name
        self.offload_module: Optional[EamfPakaModule] = None
        self._sessions: Dict[str, _UeSession] = {}
        self._guti_to_supi: Dict[str, str] = {}
        self._guti_counter = 0
        # Adversarial-load defenses (repro.fivegc.admission).  None —
        # the default — keeps the pre-admission hot path: one attribute
        # read per registration, zero simulated cost, golden clocks hold.
        self.admission: Optional[AdmissionController] = None
        # Bound on concurrent non-registered sessions (None = unbounded,
        # the historical behaviour).  A SUCI flood that never answers its
        # challenges would otherwise grow _sessions without limit; when
        # the cap is hit the oldest pending session is evicted.
        self.max_pending_sessions: Optional[int] = None
        self.pending_evictions = 0
        # Defender-side detection signals (ROADMAP item 4): per-gNB
        # registration arrivals/accepts, AUTS resync requests, and NAS
        # protocol errors.  Always-on plain-int bookkeeping — no clock,
        # no RNG — so the attack classifier can read arrival skew and
        # signature rates even on an AMF whose defenses are disarmed.
        self.nas_arrivals: Dict[str, int] = {}
        self.nas_accepted: Dict[str, int] = {}
        self.auth_resyncs = 0
        self.nas_protocol_errors = 0
        super().__init__(*args, **kwargs)

    def attach_module(self, module: EamfPakaModule) -> None:
        self.offload_module = module

    def _register_routes(self) -> None:
        # The AMF's SBI surface is not needed by this reproduction's flows
        # (the gNB reaches it over N2, modelled as direct method dispatch).
        pass

    # ---------------------------------------------------------------- NAS

    def handle_nas(
        self, ue_id: str, message: NasMessage, via: Optional[str] = None
    ) -> NasMessage:
        """N1 dispatch: one uplink NAS message in, one downlink out.

        ``via`` names the originating gNB (for per-gNB rate guards);
        ``None`` — the historical call shape — skips gNB attribution.
        """
        # N1 is direct dispatch (no SBI hop opens a span here), so leave
        # this AMF's identity on the covering span — the NAS round the
        # gNB opened — for cross-NF trace assembly.  No new span, no
        # clock read; a disarmed tracer costs two comparisons.
        tracer = self.host.tracer
        if tracer is not None and tracer.enabled:
            tracer.annotate(amf=self.name)
        try:
            return self._dispatch_nas(ue_id, message, via)
        except AmfError:
            # Out-of-context / malformed NAS: the fuzz-storm signature.
            self.nas_protocol_errors += 1
            raise

    def _dispatch_nas(
        self, ue_id: str, message: NasMessage, via: Optional[str]
    ) -> NasMessage:
        self.runtime.compute(_NAS_DECODE_CYCLES)
        if isinstance(message, RegistrationRequest):
            cell = via or "direct"
            # Arrival is counted *before* admission, so detection keeps
            # seeing the storm while the defenses shed it (hysteresis
            # would otherwise flap: shed -> signal gone -> stand down).
            self.nas_arrivals[cell] = self.nas_arrivals.get(cell, 0) + 1
            if self.admission is not None:
                denial = self.admission.check(
                    self.host.clock.now_ns,
                    source=ue_id,
                    kind=KIND_RETURNING if message.guti is not None else KIND_INITIAL,
                    gnb=via,
                )
                if denial is not None:
                    # Shed at the front door: no session state, no SBI
                    # call, no enclave work — just a cheap reject.
                    self.runtime.compute(_ADMISSION_SHED_CYCLES)
                    return AuthenticationReject(cause=denial)
            return self._on_registration_request(ue_id, message, via=cell)
        if isinstance(message, AuthenticationResponse):
            return self._on_authentication_response(ue_id, message)
        if isinstance(message, AuthenticationFailure):
            return self._on_authentication_failure(ue_id, message)
        if isinstance(message, SecurityModeComplete):
            return self._on_smc_complete(ue_id, message)
        if isinstance(message, RegistrationComplete):
            return self._on_registration_complete(ue_id, message)
        if isinstance(message, ProtectedNasPdu):
            return self._on_protected_pdu(ue_id, message)
        if isinstance(message, PduSessionEstablishmentRequest):
            return self._on_pdu_session_request(ue_id, message)
        if isinstance(message, DeregistrationRequest):
            return self._on_deregistration(ue_id, message)
        raise AmfError(f"unexpected NAS message {message.kind} from {ue_id}")

    # --------------------------------------------------------- state steps

    def _on_registration_request(
        self, ue_id: str, message: RegistrationRequest, via: str = "direct"
    ) -> NasMessage:
        if self.max_pending_sessions is not None:
            self._evict_pending(budget=self.max_pending_sessions - 1)
        session = _UeSession(
            ue_id=ue_id, state=_SessionState.WAIT_AUTH_RESPONSE, snn=self.snn,
            via=via,
        )
        self._sessions[ue_id] = session

        if message.guti is not None:
            # Re-registration with a temporary identity: resolve the SUPI
            # from the prior session — no SUCI/SIDF round needed.
            supi = self._guti_to_supi.get(message.guti)
            if supi is None:
                return self._fail(session, f"unknown GUTI {message.guti!r}")
            session.identity = {"supi": supi}
        else:
            session.identity = {"suci": message.suci}
        return self._authenticate(session)

    def _authenticate(
        self, session: _UeSession, resync_info: Optional[dict] = None
    ) -> NasMessage:
        """Run (or re-run, for resync) the AUSF authentication request."""
        ausf = self.peer(NFType.AUSF)
        payload: Dict[str, object] = {"servingNetworkName": self.snn}
        payload.update(session.identity)
        if resync_info is not None:
            payload["resynchronizationInfo"] = resync_info
        try:
            response = self.call(ausf, "POST", AUSF_UE_AUTH, payload)
        except JsonApiError as exc:  # transport failure / circuit open
            return self._fail(session, str(exc))
        if not response.ok:
            return self._fail(
                session, f"AUSF refused authentication ({response.status})"
            )
        body = response.json()
        session.auth_ctx_id = str(body["authCtxId"])
        session.rand = bytes.fromhex(body["rand"])
        session.hxres_star = bytes.fromhex(body["hxresStar"])
        session.state = _SessionState.WAIT_AUTH_RESPONSE
        self.runtime.compute(_NAS_ENCODE_CYCLES)
        return AuthenticationRequest(
            rand=session.rand, autn=bytes.fromhex(body["autn"])
        )

    def _on_authentication_response(
        self, ue_id: str, message: AuthenticationResponse
    ) -> NasMessage:
        session = self._require(ue_id, _SessionState.WAIT_AUTH_RESPONSE)
        # SEAF check: HRES* = SHA-256(RAND ‖ RES*) truncated vs HXRES*.
        self.runtime.compute(_HRES_CHECK_CYCLES)
        hres_star = derive_hxres_star(session.rand, message.res_star)
        if hres_star != session.hxres_star:
            return self._fail(session, "HRES* mismatch at SEAF")

        # Confirm with the AUSF; on success it releases K_SEAF.  A dead
        # AUSF (or eAMF module, below) degrades into a reject for this
        # UE instead of unwinding the whole NAS exchange.
        ausf = self.peer(NFType.AUSF)
        try:
            response = self.call(
                ausf,
                "POST",
                AUSF_UE_AUTH_CONFIRM,
                {"authCtxId": session.auth_ctx_id, "resStar": message.res_star.hex()},
            )
        except JsonApiError as exc:  # transport failure / circuit open
            return self._fail(session, str(exc))
        if not response.ok or response.json().get("result") != "AUTHENTICATION_SUCCESS":
            return self._fail(session, "AUSF confirmation failed")
        body = response.json()
        session.supi = str(body["supi"])
        kseaf = bytes.fromhex(body["kseaf"])

        # Derive K_AMF — in the eAMF P-AKA module when offloaded.
        if self.offload_module is not None:
            try:
                session.kamf = self._derive_kamf_offloaded(kseaf, session.supi)
            except JsonApiError as exc:
                return self._fail(session, str(exc))
        else:
            self.runtime.compute(_KAMF_LOCAL_CYCLES)
            session.kamf = derive_kamf(kseaf, session.supi, _ABBA)
        k_enc, k_int = derive_nas_keys(session.kamf)
        session.k_nas_enc, session.k_nas_int = k_enc, k_int

        # Integrity-protected Security Mode Command.
        self.runtime.compute(_NAS_ENCODE_CYCLES)
        mac = nia2_mac(
            session.k_nas_int, session.downlink_count, 1, 1, b"SecurityModeCommand"
        )
        session.downlink_count += 1
        session.state = _SessionState.WAIT_SMC_COMPLETE
        return SecurityModeCommand(mac=mac)

    def _on_authentication_failure(
        self, ue_id: str, message: AuthenticationFailure
    ) -> NasMessage:
        session = self._require(ue_id, _SessionState.WAIT_AUTH_RESPONSE)
        if (
            message.cause == "SYNCH_FAILURE"
            and message.auts is not None
            and not session.resync_attempted
        ):
            # TS 33.102 §6.3.5: forward AUTS to the home network, which
            # verifies it (inside the eUDM enclave when offloaded), resets
            # the SQN and issues a fresh challenge.
            session.resync_attempted = True
            self.auth_resyncs += 1
            return self._authenticate(
                session,
                resync_info={
                    "rand": session.rand.hex(),
                    "auts": message.auts.hex(),
                },
            )
        return self._fail(session, f"UE reported {message.cause}")

    def _on_smc_complete(self, ue_id: str, message: SecurityModeComplete) -> NasMessage:
        session = self._require(ue_id, _SessionState.WAIT_SMC_COMPLETE)
        expected = nia2_mac(
            session.k_nas_int, session.uplink_count, 1, 0, b"SecurityModeComplete"
        )
        session.uplink_count += 1
        if message.mac != expected:
            return self._fail(session, "SMC Complete MAC invalid")
        self.runtime.compute(_GUTI_ALLOC_CYCLES)
        session.guti = self._allocate_guti()
        self._guti_to_supi[session.guti] = session.supi
        self.runtime.compute(_NAS_ENCODE_CYCLES)
        mac = nia2_mac(
            session.k_nas_int,
            session.downlink_count,
            1,
            1,
            b"RegistrationAccept" + session.guti.encode(),
        )
        session.downlink_count += 1
        session.state = _SessionState.WAIT_REG_COMPLETE
        return RegistrationAccept(guti=session.guti, mac=mac)

    def _on_registration_complete(
        self, ue_id: str, message: RegistrationComplete
    ) -> NasMessage:
        session = self._require(ue_id, _SessionState.WAIT_REG_COMPLETE)
        expected = nia2_mac(
            session.k_nas_int, session.uplink_count, 1, 0, b"RegistrationComplete"
        )
        session.uplink_count += 1
        if message.mac != expected:
            return self._fail(session, "Registration Complete MAC invalid")
        session.state = _SessionState.REGISTERED
        self.nas_accepted[session.via] = self.nas_accepted.get(session.via, 0) + 1
        # Post-registration NAS signalling travels ciphered over the
        # secure channel (128-NEA2 + 128-NIA2).
        session.secure_channel = SecureNasChannel(
            session.k_nas_enc, session.k_nas_int, bearer=2,
            send_direction=DOWNLINK,
        )
        # No downlink NAS response to Registration Complete; return an
        # acknowledgement marker for the N2 transport.
        return RegistrationAccept(guti=session.guti, mac=b"")

    def _on_protected_pdu(self, ue_id: str, pdu: ProtectedNasPdu) -> NasMessage:
        """Unwrap a ciphered NAS PDU, dispatch the inner message, and
        cipher the response."""
        session = self._require(ue_id, _SessionState.REGISTERED)
        if session.secure_channel is None:  # pragma: no cover - invariant
            raise AmfError(f"{ue_id}: registered session without NAS security")
        self.runtime.compute(_NAS_DECODE_CYCLES)
        try:
            inner = session.secure_channel.unprotect(pdu)
        except NasSecurityError as error:
            return self._fail(session, f"NAS security failure: {error}")
        if isinstance(inner, PduSessionEstablishmentRequest):
            response = self._on_pdu_session_request(ue_id, inner)
            return session.secure_channel.protect(response)
        raise AmfError(f"unexpected ciphered NAS message {inner.kind}")

    def _on_pdu_session_request(
        self, ue_id: str, message: PduSessionEstablishmentRequest
    ) -> NasMessage:
        session = self._require(ue_id, _SessionState.REGISTERED)
        smf = self.peer(NFType.SMF)
        response = self.call(
            smf,
            "POST",
            SMF_PDU_SESSION,
            {"supi": session.supi, "sessionId": message.session_id, "dnn": message.dnn},
        )
        if not response.ok:
            raise AmfError(f"SMF rejected PDU session: {response.status}")
        body = response.json()
        self.runtime.compute(_NAS_ENCODE_CYCLES)
        return PduSessionEstablishmentAccept(
            session_id=message.session_id,
            ue_address=str(body["ueAddress"]),
            qos_flow=str(body["qosFlow"]),
        )

    def _on_deregistration(self, ue_id: str, message: DeregistrationRequest) -> NasMessage:
        """UE-initiated deregistration: verify the MAC, release the
        context, retire the GUTI."""
        session = self._require(ue_id, _SessionState.REGISTERED)
        expected = nia2_mac(
            session.k_nas_int, session.uplink_count, 1, 0, b"DeregistrationRequest"
        )
        session.uplink_count += 1
        if message.mac != expected:
            return AuthenticationReject(cause="Deregistration MAC invalid")
        mac = nia2_mac(
            session.k_nas_int, session.downlink_count, 1, 1, b"DeregistrationAccept"
        )
        self._guti_to_supi.pop(session.guti, None)
        self._sessions.pop(ue_id, None)
        return DeregistrationAccept(mac=mac)

    # ------------------------------------------------------------- helpers

    def _fail(self, session: _UeSession, cause: str) -> AuthenticationReject:
        """Terminate a NAS exchange: release the session context.

        Failed sessions used to linger in ``_sessions`` forever (state
        ``FAILED``), so a storm of failing registrations leaked one
        ``_UeSession`` per spoofed identity.  The context — and any GUTI
        it was issued — is released immediately; a later retry starts
        from a clean ``RegistrationRequest``.
        """
        session.state = _SessionState.FAILED
        if session.guti:
            self._guti_to_supi.pop(session.guti, None)
        self._sessions.pop(session.ue_id, None)
        return AuthenticationReject(cause=cause)

    def _evict_pending(self, budget: int) -> None:
        """Drop oldest in-progress sessions until at most ``budget`` remain.

        Registered sessions are never evicted; in-progress ones go in
        insertion order (deterministic — dicts preserve it), which under
        a SUCI flood means the stalest unanswered challenge dies first.
        """
        pending = [
            ue_id
            for ue_id, session in self._sessions.items()
            if session.state is not _SessionState.REGISTERED
        ]
        for ue_id in pending[: max(0, len(pending) - budget)]:
            self._sessions.pop(ue_id, None)
            self.pending_evictions += 1

    def _require(self, ue_id: str, expected: _SessionState) -> _UeSession:
        session = self._sessions.get(ue_id)
        if session is None:
            raise AmfError(f"no NAS session for {ue_id}")
        if session.state is not expected:
            raise AmfError(
                f"{ue_id}: NAS message out of order (state {session.state.value}, "
                f"expected {expected.value})"
            )
        return session

    def _allocate_guti(self) -> str:
        # Stream keyed by NF name: replica AMFs draw from independent
        # streams (the default instance is named "amf", so the unsharded
        # stream name — and every draw — is unchanged).
        self._guti_counter += 1
        tmsi = self.host.rng.stream(f"{self.name}.guti").getrandbits(32)
        return f"5g-guti-00101-{self._guti_counter:04d}-{tmsi:08x}"

    def _derive_kamf_offloaded(self, kseaf: bytes, supi: str) -> bytes:
        module = self.offload_module
        assert module is not None
        payload = {"kseaf": kseaf.hex(), "supi": supi, "abba": _ABBA.hex()}
        response = self.call_server(module.server, "POST", EAMF_DERIVE_KAMF, payload)
        if not response.ok:
            raise JsonApiError(502, f"eAMF module error: {response.status}")
        return bytes.fromhex(response.json()["kamf"])

    # ------------------------------------------------------------- metrics

    def collect_metrics(self, registry) -> None:
        super().collect_metrics(registry)
        # Detection signals are always exported: the classifier must see
        # arrival skew and signature rates whether or not any defense is
        # armed (detection precedes the decision to arm one).  Sorted
        # iteration keeps the export order — and the scraped Tsdb —
        # deterministic regardless of arrival order.
        for cell in sorted(self.nas_arrivals):
            registry.counter(
                "amf_nas_registration_arrivals_total", nf=self.name, gnb=cell
            ).set(self.nas_arrivals[cell])
        for cell in sorted(self.nas_accepted):
            registry.counter(
                "amf_nas_registration_accepted_total", nf=self.name, gnb=cell
            ).set(self.nas_accepted[cell])
        registry.counter("amf_auth_resync_requests_total", nf=self.name).set(
            self.auth_resyncs
        )
        registry.counter("amf_nas_protocol_errors_total", nf=self.name).set(
            self.nas_protocol_errors
        )
        # Attack-plane defenses export only when armed, so the metric
        # set (and every golden Tsdb series count) is unchanged for the
        # default deployment.
        if self.admission is not None:
            self.admission.collect_metrics(registry, nf=self.name)
        if self.max_pending_sessions is not None:
            registry.counter(
                "amf_pending_session_evictions_total", nf=self.name
            ).set(self.pending_evictions)
            registry.gauge("amf_sessions_pending", nf=self.name).set(
                float(self.pending_count())
            )

    # ----------------------------------------------------------- inspection

    def pending_count(self) -> int:
        """In-progress (non-registered) NAS sessions currently held."""
        return sum(
            1
            for s in self._sessions.values()
            if s.state is not _SessionState.REGISTERED
        )

    def session_count(self) -> int:
        return len(self._sessions)

    def session_state(self, ue_id: str) -> str:
        session = self._sessions.get(ue_id)
        return session.state.value if session else "none"

    def registered_count(self) -> int:
        return sum(
            1 for s in self._sessions.values() if s.state is _SessionState.REGISTERED
        )
