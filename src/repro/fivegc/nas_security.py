"""Secure NAS channel: 128-NEA2 ciphering + 128-NIA2 integrity.

After the Security Mode procedure both sides hold K_NAS_enc / K_NAS_int;
subsequent NAS PDUs travel ciphered and integrity-protected with
monotonically increasing COUNTs per direction (replay protection).  The
PDU-session exchanges of this reproduction use this channel, so the
user's session parameters are confidential on the N1 path just as the
AKA parameters are on the SBI path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Type

from repro.net.codec import dumps_flat
from repro.crypto.cmac import nia2_mac
from repro.crypto.nea import nea2_encrypt
from repro.fivegc.messages import (
    NasMessage,
    PduSessionEstablishmentAccept,
    PduSessionEstablishmentRequest,
)

UPLINK = 0
DOWNLINK = 1


class NasSecurityError(Exception):
    """Integrity failure, replay, or undecodable inner message."""


@dataclass(frozen=True)
class ProtectedNasPdu(NasMessage):
    """A ciphered + integrity-protected NAS PDU."""

    count: int
    direction: int
    ciphertext: bytes
    mac: bytes

    def approx_bytes(self) -> int:
        return 12 + len(self.ciphertext) + len(self.mac)


# Inner-message codec: only messages that travel post-SMC need entries.
_CODEC: Dict[str, Type[NasMessage]] = {
    "PduSessionEstablishmentRequest": PduSessionEstablishmentRequest,
    "PduSessionEstablishmentAccept": PduSessionEstablishmentAccept,
}


def encode_inner(message: NasMessage) -> bytes:
    if message.kind not in _CODEC:
        raise NasSecurityError(f"no NAS codec for {message.kind}")
    payload = {"kind": message.kind}
    payload.update(message.__dict__)
    return dumps_flat(payload)


def decode_inner(raw: bytes) -> NasMessage:
    try:
        payload = json.loads(raw.decode())
        kind = payload.pop("kind")
        return _CODEC[kind](**payload)
    except (ValueError, KeyError, TypeError) as exc:
        raise NasSecurityError(f"undecodable inner NAS message: {exc}")


class SecureNasChannel:
    """One side's view of the established NAS security context."""

    def __init__(
        self,
        k_nas_enc: bytes,
        k_nas_int: bytes,
        bearer: int = 1,
        send_direction: int = UPLINK,
    ) -> None:
        if len(k_nas_enc) != 16 or len(k_nas_int) != 16:
            raise ValueError("NAS keys must be 16 bytes")
        if send_direction not in (UPLINK, DOWNLINK):
            raise ValueError(f"bad direction {send_direction}")
        self.k_nas_enc = k_nas_enc
        self.k_nas_int = k_nas_int
        self.bearer = bearer
        self.send_direction = send_direction
        self._send_count = 0
        self._highest_received = -1

    def protect(self, message: NasMessage) -> ProtectedNasPdu:
        """Cipher + MAC one NAS message for transmission."""
        plaintext = encode_inner(message)
        count = self._send_count
        self._send_count += 1
        ciphertext = nea2_encrypt(
            self.k_nas_enc, count, self.bearer, self.send_direction, plaintext
        )
        mac = nia2_mac(self.k_nas_int, count, self.bearer, self.send_direction, ciphertext)
        return ProtectedNasPdu(
            count=count, direction=self.send_direction, ciphertext=ciphertext, mac=mac
        )

    def unprotect(self, pdu: ProtectedNasPdu) -> NasMessage:
        """Verify, replay-check and decipher a received PDU."""
        expected_direction = 1 - self.send_direction
        if pdu.direction != expected_direction:
            raise NasSecurityError(
                f"direction reflection: got {pdu.direction}, "
                f"expected {expected_direction}"
            )
        if pdu.count <= self._highest_received:
            raise NasSecurityError(f"replayed NAS COUNT {pdu.count}")
        expected_mac = nia2_mac(
            self.k_nas_int, pdu.count, self.bearer, pdu.direction, pdu.ciphertext
        )
        if expected_mac != pdu.mac:
            raise NasSecurityError("NAS MAC verification failed")
        self._highest_received = pdu.count
        plaintext = nea2_encrypt(
            self.k_nas_enc, pdu.count, self.bearer, pdu.direction, pdu.ciphertext
        )
        return decode_inner(plaintext)
