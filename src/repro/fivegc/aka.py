"""5G-AKA authentication-vector generation — re-export.

The protocol core lives in :mod:`repro.aka` so that both the 5G core VNFs
and the P-AKA modules can import it without a package cycle (the UDM
imports the eUDM module class for its offload path, and the module
imports the AV generation functions).  This module preserves the
``repro.fivegc.aka`` import path.
"""

from repro.aka import (
    AMF_FIELD_5G,
    HomeAuthVector,
    ServingAuthVector,
    build_autn,
    derive_se_av,
    generate_he_av,
    verify_hres_star,
)

__all__ = [
    "AMF_FIELD_5G",
    "HomeAuthVector",
    "ServingAuthVector",
    "build_autn",
    "generate_he_av",
    "derive_se_av",
    "verify_hres_star",
]
