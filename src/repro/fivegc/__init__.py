"""The 5G core network (OAI-style service-based architecture).

Implements the control-plane VNFs of Fig 2 — NRF, UDR, UDM, AUSF, AMF,
SMF, UPF — speaking REST over the container bridge, with the real 5G-AKA
protocol logic of TS 33.501 §6.1.3.2 (the cryptography is exact, via
:mod:`repro.crypto`).  Each of UDM, AUSF and AMF can run in two modes:

* **monolithic** — the AKA functions execute inside the VNF (the OAI
  baseline),
* **offloaded** — the VNF forwards the sensitive computation to its
  external P-AKA module (:mod:`repro.paka`), which may itself run in a
  plain container or inside an SGX enclave.
"""

from repro.fivegc.aka import HomeAuthVector, ServingAuthVector, generate_he_av
from repro.fivegc.nf_base import NetworkFunction
from repro.fivegc.nrf import Nrf
from repro.fivegc.udr import AuthSubscription, Udr
from repro.fivegc.udm import Udm
from repro.fivegc.ausf import Ausf
from repro.fivegc.amf import Amf
from repro.fivegc.smf import Smf
from repro.fivegc.upf import Upf

__all__ = [
    "HomeAuthVector",
    "ServingAuthVector",
    "generate_he_av",
    "NetworkFunction",
    "Nrf",
    "Udr",
    "AuthSubscription",
    "Udm",
    "Ausf",
    "Amf",
    "Smf",
    "Upf",
]
