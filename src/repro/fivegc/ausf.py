"""AUSF — Authentication Server Function (home network).

Handles Nausf_UEAuthentication: verifies the serving network is
authorised, obtains the HE AV from the UDM, derives the SE AV (HXRES* +
K_SEAF — in the eAUSF P-AKA module when offloaded, Fig 5 step 3), stores
the authentication context, and on confirmation compares the UE's RES*
against XRES* before releasing K_SEAF to the SEAF/AMF.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.fivegc.aka import HomeAuthVector, derive_se_av
from repro.fivegc.nf_base import NetworkFunction
from repro.net.rest import JsonApiError, json_body, require_hex, require_str
from repro.net.sbi import (
    AUSF_UE_AUTH,
    AUSF_UE_AUTH_CONFIRM,
    EAUSF_DERIVE_SE_AV,
    NFType,
    UDM_UE_AUTH_GET,
)
from repro.paka.modules import EausfPakaModule

_SE_AV_LOCAL_CYCLES = EausfPakaModule.COMPUTE_CYCLES
_SN_AUTHZ_CYCLES = 14_000  # serving-network authorisation check
_CONFIRM_CYCLES = 12_000  # XRES* comparison + context update


@dataclass
class _AuthContext:
    """Server-side state between authenticate and confirm."""

    supi: str
    rand: bytes
    xres_star: bytes
    kseaf: bytes
    snn: str
    confirmed: bool = False


class Ausf(NetworkFunction):
    NF_TYPE = NFType.AUSF

    def __init__(self, *args, allowed_snns: Optional[set] = None, **kwargs) -> None:
        self.offload_module: Optional[EausfPakaModule] = None
        self.allowed_snns = allowed_snns  # None = allow any (lab PLMN)
        self._contexts: Dict[str, _AuthContext] = {}
        self._next_ctx = 0
        super().__init__(*args, **kwargs)

    def attach_module(self, module: EausfPakaModule) -> None:
        self.offload_module = module

    # ------------------------------------------------------------- routing

    def _register_routes(self) -> None:
        self._route_json("POST", AUSF_UE_AUTH, self._handle_authenticate)
        self._route_json("POST", AUSF_UE_AUTH_CONFIRM, self._handle_confirm)

    def _handle_authenticate(self, request, context):
        data = json_body(request)
        snn = require_str(data, "servingNetworkName")
        context.runtime.compute(_SN_AUTHZ_CYCLES)
        if self.allowed_snns is not None and snn not in self.allowed_snns:
            raise JsonApiError(403, f"serving network {snn!r} not authorised")

        # Forward to the UDM (identity and any resync token untouched).
        udm = self.peer(NFType.UDM)
        forward = {"servingNetworkName": snn}
        for key in ("supi", "suci", "resynchronizationInfo"):
            if key in data:
                forward[key] = data[key]
        udm_response = self.call(udm, "POST", UDM_UE_AUTH_GET, forward)
        if not udm_response.ok:
            raise JsonApiError(udm_response.status, "UDM rejected authentication")
        he = udm_response.json()
        he_av = HomeAuthVector(
            rand=bytes.fromhex(he["rand"]),
            autn=bytes.fromhex(he["autn"]),
            xres_star=bytes.fromhex(he["xresStar"]),
            kausf=bytes.fromhex(he["kausf"]),
        )

        if self.offload_module is not None:
            hxres_star, kseaf = self._derive_offloaded(he_av, snn)
        else:
            context.runtime.compute(_SE_AV_LOCAL_CYCLES)
            se_av, kseaf = derive_se_av(he_av, snn.encode())
            hxres_star = se_av.hxres_star

        self._next_ctx += 1
        ctx_id = f"authctx-{self._next_ctx}"
        self._contexts[ctx_id] = _AuthContext(
            supi=str(he["supi"]), rand=he_av.rand,
            xres_star=he_av.xres_star, kseaf=kseaf, snn=snn,
        )
        return self._ok(
            {
                "authCtxId": ctx_id,
                "rand": he_av.rand.hex(),
                "autn": he_av.autn.hex(),
                "hxresStar": hxres_star.hex(),
            },
            status=201,
        )

    def _handle_confirm(self, request, context):
        data = json_body(request)
        ctx_id = require_str(data, "authCtxId")
        res_star = require_hex(data, "resStar", 16)
        auth_context = self._contexts.get(ctx_id)
        if auth_context is None:
            raise JsonApiError(404, f"unknown auth context {ctx_id!r}")
        context.runtime.compute(_CONFIRM_CYCLES)
        if res_star != auth_context.xres_star:
            self._contexts.pop(ctx_id)
            return self._ok({"result": "AUTHENTICATION_FAILURE"}, status=200)
        auth_context.confirmed = True
        return self._ok(
            {
                "result": "AUTHENTICATION_SUCCESS",
                "supi": auth_context.supi,
                "kseaf": auth_context.kseaf.hex(),
            }
        )

    # ------------------------------------------------------------ internals

    def _derive_offloaded(self, he_av: HomeAuthVector, snn: str) -> "tuple[bytes, bytes]":
        """Fig 5: HXRES* calculation + K_SEAF derivation in eAUSF P-AKA."""
        module = self.offload_module
        assert module is not None
        payload = {
            "rand": he_av.rand.hex(),
            "autn": he_av.autn.hex(),
            "xresStar": he_av.xres_star.hex(),
            "kausf": he_av.kausf.hex(),
            "snn": snn,
        }
        response = self.call_server(module.server, "POST", EAUSF_DERIVE_SE_AV, payload)
        if not response.ok:
            raise JsonApiError(502, f"eAUSF module error: {response.status}")
        body = response.json()
        return bytes.fromhex(body["hxresStar"]), bytes.fromhex(body["kseaf"])
