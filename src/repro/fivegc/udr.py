"""UDR — Unified Data Repository.

The credential storage unit: per-subscriber long-term key K, operator
constant OPc, the SQN counter, and the home-network ECIES private key for
SUCI de-concealment.  The UDM fetches authentication subscription data
from here (Nudr_DataRepository) and writes back SQN increments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.fivegc.nf_base import NetworkFunction
from repro.net.rest import JsonApiError, json_body, require_int, require_str
from repro.net.sbi import NFType, UDR_AUTH_PEEK, UDR_AUTH_RESYNC, UDR_AUTH_SUBSCRIPTION


@dataclass
class AuthSubscription:
    """One subscriber's authentication data."""

    supi: str
    k: bytes
    opc: bytes
    sqn: int = 0
    amf_field: bytes = bytes.fromhex("8000")

    def __post_init__(self) -> None:
        if len(self.k) != 16:
            raise ValueError("K must be 16 bytes")
        if len(self.opc) != 16:
            raise ValueError("OPc must be 16 bytes")

    @property
    def sqn_bytes(self) -> bytes:
        return self.sqn.to_bytes(6, "big")

    def advance_sqn(self) -> bytes:
        """Increment and return the new SQN (per-authentication step).

        SQN is a 48-bit counter (TS 33.102 Annex C) and wraps modulo
        2^48 — ``to_bytes(6, ...)`` would otherwise overflow.
        """
        self.sqn = (self.sqn + 1) % (1 << 48)
        return self.sqn_bytes


class Udr(NetworkFunction):
    NF_TYPE = NFType.UDR

    def __init__(self, *args, hn_private_key: Optional[bytes] = None, **kwargs) -> None:
        self._subscribers: Dict[str, AuthSubscription] = {}
        self.hn_private_key = hn_private_key or bytes(32)
        super().__init__(*args, **kwargs)

    # --------------------------------------------------------- provisioning

    def provision(self, subscription: AuthSubscription) -> None:
        """Add a subscriber (operator provisioning, not an SBI call)."""
        self._subscribers[subscription.supi] = subscription

    def subscriber(self, supi: str) -> AuthSubscription:
        try:
            return self._subscribers[supi]
        except KeyError:
            raise KeyError(f"UDR: unknown subscriber {supi!r}")

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)

    # ------------------------------------------------------------- routing

    def _register_routes(self) -> None:
        self._route_json("POST", UDR_AUTH_SUBSCRIPTION, self._handle_fetch)
        self._route_json("POST", UDR_AUTH_PEEK, self._handle_peek)
        self._route_json("POST", UDR_AUTH_RESYNC, self._handle_resync)

    def _handle_fetch(self, request, context):
        """Fetch auth data for a SUPI, advancing the SQN counter."""
        data = json_body(request)
        supi = require_str(data, "supi")
        record = self._subscribers.get(supi)
        if record is None:
            raise JsonApiError(404, f"unknown subscriber {supi!r}")
        context.runtime.compute(11_000)  # DB lookup + row serialization
        sqn = record.advance_sqn()
        return self._ok(
            {
                "supi": record.supi,
                "k": record.k.hex(),
                "opc": record.opc.hex(),
                "sqn": sqn.hex(),
                "amfField": record.amf_field.hex(),
            }
        )

    def _handle_peek(self, request, context):
        """Read auth data *without* consuming a SQN (resync verification)."""
        data = json_body(request)
        supi = require_str(data, "supi")
        record = self._subscribers.get(supi)
        if record is None:
            raise JsonApiError(404, f"unknown subscriber {supi!r}")
        context.runtime.compute(9_000)
        return self._ok(
            {
                "supi": record.supi,
                "k": record.k.hex(),
                "opc": record.opc.hex(),
                "sqn": record.sqn_bytes.hex(),
                "amfField": record.amf_field.hex(),
            }
        )

    def _handle_resync(self, request, context):
        """Resynchronise the network-side SQN to the UE's SQN_MS
        (TS 33.102 §6.3.5, after a verified AUTS)."""
        data = json_body(request)
        supi = require_str(data, "supi")
        sqn_ms = require_int(data, "sqnMs")
        record = self._subscribers.get(supi)
        if record is None:
            raise JsonApiError(404, f"unknown subscriber {supi!r}")
        if not 0 <= sqn_ms < 1 << 48:
            raise JsonApiError(400, f"SQN out of range: {sqn_ms}")
        context.runtime.compute(8_000)
        record.sqn = sqn_ms
        return self._ok({"supi": supi, "sqn": record.sqn_bytes.hex()})
