"""Base class for the core VNFs.

Each VNF owns an HTTPS server on the SBI bridge, an HTTPS client for
calling peers, and a keep-alive connection cache (the OAI VNFs hold SBI
connections open, which is why the paper's *stable* response times are
the steady-state metric).  VNFs register with the NRF at startup and
discover peers through it.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from repro.container.network import BridgeNetwork
from repro.hw.host import PhysicalHost
from repro.net.http import HttpClient, HttpConnection, HttpResponse, HttpServer
from repro.net.rest import JsonApiError, error_response, json_response
from repro.net.sbi import NFProfile, NFType
from repro.runtime.base import Runtime
from repro.runtime.native import NativeRuntime


class NetworkFunction:
    """One control-plane VNF on the SBI bridge."""

    NF_TYPE = NFType.NRF  # overridden by subclasses

    def __init__(
        self,
        name: str,
        host: PhysicalHost,
        network: BridgeNetwork,
        runtime: Optional[Runtime] = None,
    ) -> None:
        self.name = name
        self.host = host
        self.network = network
        self.runtime = runtime or NativeRuntime(name, host)
        self.server = HttpServer(name=name, runtime=self.runtime, network=network)
        self.client = HttpClient(
            name=f"{name}-client", runtime=self.runtime, network=network
        )
        self._connections: Dict[str, HttpConnection] = {}
        self._peers: Dict[NFType, "NetworkFunction"] = {}
        self.profile = NFProfile(
            nf_instance_id=f"{name}-0001",
            nf_type=self.NF_TYPE,
            endpoint_name=name,
            services=[],
        )
        self._register_routes()
        self.server.start()

    # ------------------------------------------------------------- routing

    def _register_routes(self) -> None:
        """Subclasses register their SBI endpoints here."""

    def _route_json(self, method: str, path: str, handler) -> None:
        """Register a JSON handler with uniform error mapping."""

        def wrapped(request, context) -> HttpResponse:
            try:
                return handler(request, context)
            except JsonApiError as error:
                return error_response(error)

        self.server.route(method, path, wrapped)

    # ----------------------------------------------------- peer connections

    def connect_peer(self, peer: "NetworkFunction") -> HttpConnection:
        """Open (or reuse) a keep-alive mutual-TLS connection to ``peer``."""
        connection = self._connections.get(peer.name)
        if connection is None or not connection.open:
            connection = self.client.connect(peer.server)
            self._connections[peer.name] = connection
        return connection

    def call(
        self,
        peer: "NetworkFunction",
        method: str,
        path: str,
        payload: Optional[dict] = None,
    ) -> HttpResponse:
        """One SBI request to a peer over the cached connection."""
        connection = self.connect_peer(peer)
        body = json.dumps(payload or {}, sort_keys=True).encode()
        return self.client.request(connection, method, path, body=body)

    # -------------------------------------------------------- NRF plumbing

    def register_with(self, nrf: "NetworkFunction") -> None:
        """Register this NF's profile with the NRF (Nnrf_NFManagement)."""
        from repro.net.sbi import NRF_REGISTER

        response = self.call(nrf, "PUT", NRF_REGISTER, self.profile.to_dict())
        if not response.ok:
            raise RuntimeError(f"{self.name}: NRF registration failed: {response.status}")
        self._peers[NFType.NRF] = nrf

    def discover(self, nf_type: NFType, registry: Dict[str, "NetworkFunction"]) -> "NetworkFunction":
        """Discover a peer NF of ``nf_type`` through the NRF and bind it.

        ``registry`` maps endpoint names to live NF objects (the simulation's
        address resolution; the NRF response supplies the endpoint name).
        """
        from repro.net.sbi import NRF_DISCOVER

        nrf = self._peers.get(NFType.NRF)
        if nrf is None:
            raise RuntimeError(f"{self.name}: not registered with an NRF yet")
        response = self.call(
            nrf, "GET", NRF_DISCOVER, {"targetNfType": nf_type.value}
        )
        if not response.ok:
            raise RuntimeError(
                f"{self.name}: discovery of {nf_type.value} failed: {response.status}"
            )
        profiles = response.json().get("nfInstances", [])
        if not profiles:
            raise RuntimeError(f"{self.name}: no {nf_type.value} instances registered")
        endpoint = str(profiles[0]["endpoint"])
        peer = registry.get(endpoint)
        if peer is None:
            raise RuntimeError(f"{self.name}: discovered unknown endpoint {endpoint!r}")
        self._peers[nf_type] = peer
        return peer

    def peer(self, nf_type: NFType) -> "NetworkFunction":
        try:
            return self._peers[nf_type]
        except KeyError:
            raise RuntimeError(f"{self.name}: no bound peer of type {nf_type.value}")

    # ----------------------------------------------------------- lifecycle

    def shutdown(self) -> None:
        for connection in self._connections.values():
            if connection.open:
                self.client.close(connection)
        self._connections.clear()
        self.server.stop()
        self.runtime.shutdown()

    # Convenience used by subclasses.
    @staticmethod
    def _ok(payload: dict, status: int = 200) -> HttpResponse:
        return json_response(payload, status=status)
