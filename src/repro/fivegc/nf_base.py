"""Base class for the core VNFs.

Each VNF owns an HTTPS server on the SBI bridge, an HTTPS client for
calling peers, and a keep-alive connection cache (the OAI VNFs hold SBI
connections open, which is why the paper's *stable* response times are
the steady-state metric).  VNFs register with the NRF at startup and
discover peers through it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.container.network import BridgeNetwork, NetworkError
from repro.faults.resilience import CircuitBreaker
from repro.fivegc.routing import HashRing
from repro.hw.host import PhysicalHost
from repro.net.http import (
    HttpClient,
    HttpConnection,
    HttpError,
    HttpResponse,
    HttpServer,
    RetryPolicy,
)
from repro.net.codec import dumps_flat
from repro.net.rest import JsonApiError, error_response, json_response
from repro.net.sbi import NF_HEALTH, NFProfile, NFType
from repro.runtime.base import Runtime
from repro.runtime.native import NativeRuntime


@dataclass
class DiscoveryRecord:
    """One cached NRF discovery response, resolved to live peers.

    ``peers_by_shard`` keys replicas by their advertised shard label
    (replicas without one key by endpoint name); ``ring`` is the seeded
    consistent-hash ring over those labels when the target NF type is
    sharded, ``None`` for the single-instance case.
    """

    profiles: List[NFProfile]
    peers_by_shard: Dict[str, "NetworkFunction"]
    ring: Optional[HashRing] = None
    registry: Dict[str, "NetworkFunction"] = field(default_factory=dict)


# Ring seed for control-plane replica picks.  This is a *deployment
# constant* shared by every SBI client and the gNB entry router — all
# layers must hash a SUPI to the same shard — not an experiment seed.
CONTROL_PLANE_RING_SEED = 0


class NetworkFunction:
    """One control-plane VNF on the SBI bridge."""

    NF_TYPE = NFType.NRF  # overridden by subclasses

    def __init__(
        self,
        name: str,
        host: PhysicalHost,
        network: BridgeNetwork,
        runtime: Optional[Runtime] = None,
        shard: Optional[str] = None,
    ) -> None:
        self.name = name
        self.host = host
        self.network = network
        self.shard = shard
        self.runtime = runtime or NativeRuntime(name, host)
        self.server = HttpServer(name=name, runtime=self.runtime, network=network)
        self.client = HttpClient(
            name=f"{name}-client", runtime=self.runtime, network=network
        )
        self._connections: Dict[str, HttpConnection] = {}
        self._peers: Dict[NFType, "NetworkFunction"] = {}
        # Cached NRF discovery responses (one record per target NF type);
        # repeated discover() calls are served from here until an
        # explicit invalidation (peer death/restart) drops the entry.
        self._discovery: Dict[NFType, DiscoveryRecord] = {}
        # Resilience: optional SBI retry policy (None = single attempt,
        # the pre-resilience hot path) and a per-peer circuit breaker so
        # a dead peer fails fast instead of wedging every caller.
        self.retry_policy: Optional[RetryPolicy] = None
        self.circuit_breakers: Dict[str, CircuitBreaker] = {}
        # The shard label travels in the NRF profile metadata so peers
        # can make the same-slice pick; unsharded NFs advertise nothing
        # (keeps the registration body — and thus simulated serialization
        # time — byte-identical to the pre-shard deployment).
        metadata = {} if shard is None else {"shard": shard}
        self.profile = NFProfile(
            nf_instance_id=f"{name}-0001",
            nf_type=self.NF_TYPE,
            endpoint_name=name,
            services=[],
            metadata=metadata,
        )
        self._register_routes()
        self._route_json("GET", NF_HEALTH, self._handle_health)
        self.server.start()

    # ------------------------------------------------------------- routing

    def _register_routes(self) -> None:
        """Subclasses register their SBI endpoints here."""

    def _route_json(self, method: str, path: str, handler) -> None:
        """Register a JSON handler with uniform error mapping."""

        def wrapped(request, context) -> HttpResponse:
            try:
                return handler(request, context)
            except JsonApiError as error:
                return error_response(error)

        self.server.route(method, path, wrapped)

    def _handle_health(self, request, context) -> HttpResponse:
        """Liveness probe: answered by any NF that can still serve."""
        context.runtime.compute(1_500)
        return self._ok(
            {"nfInstanceId": self.profile.nf_instance_id, "status": "OPERATIONAL"}
        )

    # ----------------------------------------------------- peer connections

    def connect_peer(self, peer: "NetworkFunction") -> HttpConnection:
        """Open (or reuse) a keep-alive mutual-TLS connection to ``peer``."""
        connection = self._connections.get(peer.name)
        if connection is None or not connection.open:
            connection = self.client.connect(peer.server)
            self._connections[peer.name] = connection
        return connection

    def call(
        self,
        peer: "NetworkFunction",
        method: str,
        path: str,
        payload: Optional[dict] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> HttpResponse:
        """One SBI request to a peer over the cached connection."""
        return self.call_server(peer.server, method, path, payload, retry=retry)

    def call_server(
        self,
        server: HttpServer,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> HttpResponse:
        """One SBI request to a raw HTTP server (peer NF or P-AKA module).

        Transport failures — timeouts, lost frames, dead endpoints — are
        translated into :class:`JsonApiError` 503 so handlers up the call
        chain degrade into error responses (an AuthenticationReject at
        the AMF) instead of unwinding the whole NAS exchange.  A per-peer
        circuit breaker fails fast while a peer is known-dead.
        """
        breaker = self.circuit_breakers.get(server.name)
        if breaker is None:
            breaker = self.circuit_breakers[server.name] = CircuitBreaker(
                name=f"{self.name}->{server.name}"
            )
        if not breaker.try_acquire(self.host.clock.now_ns):
            raise JsonApiError(
                503, f"{self.name}: circuit to {server.name} open"
            )
        body = dumps_flat(payload or {})
        try:
            connection = self._connections.get(server.name)
            if connection is None or not connection.open:
                connection = self.client.connect(server)
                self._connections[server.name] = connection
            response = self.client.request(
                connection, method, path, body=body,
                retry=retry if retry is not None else self.retry_policy,
            )
        except (HttpError, NetworkError) as exc:
            # The TLS record stream may be desynchronized mid-exchange:
            # poison the cached connection so the next call re-handshakes.
            stale = self._connections.get(server.name)
            if stale is not None:
                stale.open = False
            breaker.record_failure(self.host.clock.now_ns)
            raise JsonApiError(
                503, f"{self.name}: {server.name} unreachable: {exc}"
            )
        breaker.record_success()
        return response

    def check_health(self, peer: "NetworkFunction") -> bool:
        """Probe a peer's liveness endpoint; False on any failure."""
        try:
            response = self.call(peer, "GET", NF_HEALTH)
        except JsonApiError:
            return False
        return response.ok and response.json().get("status") == "OPERATIONAL"

    # -------------------------------------------------------- NRF plumbing

    def register_with(self, nrf: "NetworkFunction") -> None:
        """Register this NF's profile with the NRF (Nnrf_NFManagement)."""
        from repro.net.sbi import NRF_REGISTER

        response = self.call(nrf, "PUT", NRF_REGISTER, self.profile.to_dict())
        if not response.ok:
            raise RuntimeError(f"{self.name}: NRF registration failed: {response.status}")
        self._peers[NFType.NRF] = nrf

    def discover(
        self,
        nf_type: NFType,
        registry: Dict[str, "NetworkFunction"],
        refresh: bool = False,
    ) -> "NetworkFunction":
        """Discover peers of ``nf_type`` through the NRF and bind one.

        ``registry`` maps endpoint names to live NF objects (the simulation's
        address resolution; the NRF response supplies the endpoint name).

        The full discovery response is **cached**: repeated calls are
        answered locally with no NRF round-trip until the entry is
        dropped (``refresh=True``, :meth:`invalidate_discovery`, or a
        :meth:`restart` of this NF).  When the response carries several
        replicas the pick is deterministic client-side load balancing:
        the replica advertising this NF's own shard label wins (replica-
        set affinity), otherwise the first profile — per-key picks go
        through :meth:`peer_for`.
        """
        from repro.net.sbi import NRF_DISCOVER

        if not refresh:
            cached = self._discovery.get(nf_type)
            if cached is not None:
                return self._peers[nf_type]

        nrf = self._peers.get(NFType.NRF)
        if nrf is None:
            raise RuntimeError(f"{self.name}: not registered with an NRF yet")
        response = self.call(
            nrf, "GET", NRF_DISCOVER, {"targetNfType": nf_type.value}
        )
        if not response.ok:
            raise RuntimeError(
                f"{self.name}: discovery of {nf_type.value} failed: {response.status}"
            )
        raw_profiles = response.json().get("nfInstances", [])
        if not raw_profiles:
            raise RuntimeError(f"{self.name}: no {nf_type.value} instances registered")
        profiles = [NFProfile.from_dict(raw) for raw in raw_profiles]

        peers_by_shard: Dict[str, "NetworkFunction"] = {}
        for profile in profiles:
            peer = registry.get(profile.endpoint_name)
            if peer is None:
                raise RuntimeError(
                    f"{self.name}: discovered unknown endpoint "
                    f"{profile.endpoint_name!r}"
                )
            label = profile.metadata.get("shard", profile.endpoint_name)
            peers_by_shard[label] = peer

        sharded = len(profiles) > 1 and all(
            "shard" in profile.metadata for profile in profiles
        )
        ring = (
            HashRing(sorted(peers_by_shard), seed=CONTROL_PLANE_RING_SEED)
            if sharded
            else None
        )
        self._discovery[nf_type] = DiscoveryRecord(
            profiles=profiles,
            peers_by_shard=peers_by_shard,
            ring=ring,
            registry=registry,
        )

        # Deterministic bind: same-shard replica if one is advertised,
        # else the first instance (the pre-shard behaviour).
        chosen = profiles[0]
        if self.shard is not None:
            for profile in profiles:
                if profile.metadata.get("shard") == self.shard:
                    chosen = profile
                    break
        picked = registry[chosen.endpoint_name]
        self._peers[nf_type] = picked
        return picked

    def peer_for(self, nf_type: NFType, key: str) -> "NetworkFunction":
        """The replica of ``nf_type`` serving routing key ``key``.

        Single-instance targets return the bound peer (no hashing); a
        sharded target is picked through the cached discovery ring, so
        a given key always lands on the same replica as it does at every
        other layer of the deployment.
        """
        record = self._discovery.get(nf_type)
        if record is None or record.ring is None:
            return self.peer(nf_type)
        return record.peers_by_shard[record.ring.pick(str(key))]

    def invalidate_discovery(self, nf_type: Optional[NFType] = None) -> None:
        """Drop cached discovery state (all types, or just ``nf_type``).

        Called when a discovered peer dies or restarts: the next
        :meth:`discover` performs a fresh NRF round-trip instead of
        reusing the stale entry (whose cached connection may point at a
        poisoned TLS stream).  The bound peer mapping survives so
        in-flight code paths keep a target until rediscovery.
        """
        if nf_type is None:
            self._discovery.clear()
        else:
            self._discovery.pop(nf_type, None)

    def peer(self, nf_type: NFType) -> "NetworkFunction":
        try:
            return self._peers[nf_type]
        except KeyError:
            raise RuntimeError(f"{self.name}: no bound peer of type {nf_type.value}")

    # ------------------------------------------------------------- metrics

    def collect_metrics(self, registry) -> None:
        """Snapshot this VNF (server, client, breakers) into a registry."""
        self.server.collect_metrics(registry)
        self.client.collect_metrics(registry)
        for peer_name, breaker in sorted(self.circuit_breakers.items()):
            labels = {"nf": self.name, "peer": peer_name}
            # Passive reads only (allow() is pure; try_acquire() would
            # book a fast failure or steal the half-open probe slot, and
            # collection must never perturb the simulation).
            registry.gauge("circuit_breaker_open", **labels).set(
                1.0 if breaker.open else 0.0
            )
            registry.counter("circuit_breaker_opens_total", **labels).set(
                breaker.times_opened
            )
            registry.counter("circuit_breaker_fast_failures_total", **labels).set(
                breaker.fast_failures
            )

    # ----------------------------------------------------------- lifecycle

    def restart(self) -> None:
        """Simulate a process restart (fault revive): fresh statistics,
        cold caches.

        Every live counter and latency series starts over from zero —
        the scenario Prometheus-style counter-reset detection exists
        for — and cached TLS connections are poisoned so peers
        re-handshake on their next call.  Routes, NRF registration and
        peer bindings survive (the revived process re-reads its config).
        """
        for connection in self._connections.values():
            connection.open = False
        self._connections.clear()
        self._discovery.clear()  # cold caches: rediscover peers via the NRF
        self.server.reset_stats()
        self.client.reset_stats()
        self.circuit_breakers.clear()

    def shutdown(self) -> None:
        for connection in self._connections.values():
            if connection.open:
                self.client.close(connection)
        self._connections.clear()
        self.server.stop()
        self.runtime.shutdown()

    # Convenience used by subclasses.
    @staticmethod
    def _ok(payload: dict, status: int = 200) -> HttpResponse:
        return json_response(payload, status=status)
