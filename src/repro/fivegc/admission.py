"""AMF-side admission control against hostile signaling load.

The P-AKA modules shield AKA *secrets*, not AKA *capacity*: every
registration attempt — legitimate or not — costs the enclave path real
EENTER/EEXIT transitions and serialized control-plane work, so a
signaling storm degrades legitimate UEs long before anything crashes.
The :class:`AdmissionController` sits at the very front of the AMF's NAS
dispatch and sheds registrations *before* any session state is created
or any SBI/enclave call is issued, degrading to a cheap
``AuthenticationReject`` (ROADMAP item 4; the per-source, runtime-tunable
policy shape that 5G-WAVE's per-slice authorization argues for —
PAPERS.md — with :mod:`repro.obs.detect` supplying the analytics that
tune it).

Three independently armable defenses, evaluated in this order:

1. **Overload breaker** — opens when the raw arrival rate over a sliding
   window exceeds a threshold; while open, *initial* (SUCI) registrations
   are shed and only GUTI re-registrations of known subscribers pass
   (the TS 24.501 congestion-control shape: keep serving returning
   subscribers, reject fresh attaches until the storm abates).
2. **Per-gNB rate guards** — one token bucket per originating gNB, so a
   botnet concentrated behind a few cells is clamped at its ingress
   without touching the tracking area's legitimate gNBs.
3. **Token-bucket admission** — per-source-identity buckets (bounding
   what any single spoofed/replayed identity can spend) backed by a
   global bucket that caps total admitted authentication work.

Everything is simulated-clock arithmetic: no RNG draws, no clock
advances, so a *disarmed* controller (``Amf.admission is None``) leaves
golden clocks byte-identical and an *armed* one is deterministic for a
given event timeline.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional

NS_PER_S = 1_000_000_000

#: Registration kinds the controller distinguishes (TS 24.501 5GS
#: registration types, collapsed to what matters for shedding).
KIND_INITIAL = "initial"  # SUCI-carrying fresh attach
KIND_RETURNING = "returning"  # GUTI re-registration of a known subscriber


@dataclass
class TokenBucket:
    """A deterministic token bucket on the simulated clock.

    Refill is computed lazily from the nanosecond timestamp of each
    ``try_take`` — pure float arithmetic, no timers, no RNG.
    """

    rate_per_s: float
    burst: float
    tokens: float = -1.0  # sentinel: start full
    last_ns: int = 0
    taken: int = 0
    denied: int = 0

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ValueError(f"rate must be positive, got {self.rate_per_s}")
        if self.burst <= 0:
            raise ValueError(f"burst must be positive, got {self.burst}")
        if self.tokens < 0:
            self.tokens = self.burst

    def _refill(self, now_ns: int) -> None:
        elapsed_ns = now_ns - self.last_ns
        if elapsed_ns > 0:
            self.tokens = min(
                self.burst, self.tokens + self.rate_per_s * (elapsed_ns / NS_PER_S)
            )
        self.last_ns = now_ns

    def try_take(self, now_ns: int, cost: float = 1.0) -> bool:
        self._refill(now_ns)
        if self.tokens >= cost:
            self.tokens -= cost
            self.taken += 1
            return True
        self.denied += 1
        return False


@dataclass
class OverloadBreaker:
    """Arrival-rate breaker: trips when more than ``max_arrivals`` NAS
    registration arrivals land within ``window_s``; stays open for
    ``cooldown_s`` and re-trips immediately under sustained storm (each
    re-trip counted, mirroring :class:`repro.faults.CircuitBreaker`
    accounting)."""

    window_s: float = 1.0
    max_arrivals: int = 30
    cooldown_s: float = 2.0

    opened_at_ns: Optional[int] = None
    times_opened: int = 0
    _arrivals: Deque[int] = field(default_factory=deque)

    @property
    def open(self) -> bool:
        return self.opened_at_ns is not None

    def observe(self, now_ns: int) -> bool:
        """Record one arrival; return True while the breaker is open."""
        if self.opened_at_ns is not None:
            if now_ns - self.opened_at_ns < int(self.cooldown_s * NS_PER_S):
                return True
            # Cooldown over: close and start measuring afresh.
            self.opened_at_ns = None
            self._arrivals.clear()
        window_ns = int(self.window_s * NS_PER_S)
        arrivals = self._arrivals
        arrivals.append(now_ns)
        while arrivals and now_ns - arrivals[0] > window_ns:
            arrivals.popleft()
        if len(arrivals) > self.max_arrivals:
            self.opened_at_ns = now_ns
            self.times_opened += 1
            arrivals.clear()
            return True
        return False


@dataclass(frozen=True)
class AdmissionConfig:
    """Which defenses an :class:`AdmissionController` arms.

    ``None`` fields leave that defense off; the all-``None`` config is
    still *armed* (arrivals are counted) but admits everything — the
    shape the host-perf overhead gate measures.
    """

    # Global token bucket over every admitted registration.
    bucket_rate_per_s: Optional[float] = None
    bucket_burst: float = 20.0
    # Per-source-identity buckets (spoofed/replayed identity clamp).
    per_source_rate_per_s: Optional[float] = None
    per_source_burst: float = 2.0
    per_source_cap: int = 4096  # bounded tracking state (FIFO eviction)
    # Per-gNB rate guards.
    gnb_rate_per_s: Optional[float] = None
    gnb_burst: float = 6.0
    # Overload breaker (shed initial attaches while open).
    breaker_max_per_s: Optional[float] = None
    breaker_window_s: float = 1.0
    breaker_cooldown_s: float = 2.0


class AdmissionController:
    """Front-door gate for AMF registration arrivals.

    ``check`` returns ``None`` to admit or a short denial cause string;
    the AMF turns a denial into an ``AuthenticationReject`` without
    creating session state or touching the enclave path.
    """

    def __init__(self, config: AdmissionConfig) -> None:
        self.config = config
        self.bucket = (
            TokenBucket(config.bucket_rate_per_s, config.bucket_burst)
            if config.bucket_rate_per_s is not None
            else None
        )
        self.per_source: Optional[Dict[str, TokenBucket]] = (
            {} if config.per_source_rate_per_s is not None else None
        )
        self.gnb_guards: Optional[Dict[str, TokenBucket]] = (
            {} if config.gnb_rate_per_s is not None else None
        )
        self.breaker = (
            OverloadBreaker(
                window_s=config.breaker_window_s,
                max_arrivals=max(
                    1, int(config.breaker_max_per_s * config.breaker_window_s)
                ),
                cooldown_s=config.breaker_cooldown_s,
            )
            if config.breaker_max_per_s is not None
            else None
        )
        # Accounting, exported through Amf.collect_metrics.
        self.arrivals = 0
        self.admitted = 0
        self.shed_breaker = 0
        self.shed_gnb = 0
        self.shed_source = 0
        self.shed_bucket = 0

    @property
    def shed_total(self) -> int:
        return (
            self.shed_breaker + self.shed_gnb + self.shed_source + self.shed_bucket
        )

    def check(
        self,
        now_ns: int,
        source: str,
        kind: str = KIND_INITIAL,
        gnb: Optional[str] = None,
    ) -> Optional[str]:
        """Admit or deny one registration arrival at ``now_ns``."""
        self.arrivals += 1

        if self.breaker is not None and self.breaker.observe(now_ns):
            # Congestion: returning subscribers (cheap to validate, the
            # AMF already holds their GUTI mapping) keep flowing; fresh
            # SUCI attaches — the only thing an attacker without a valid
            # NAS context can send — are shed.
            if kind != KIND_RETURNING:
                self.shed_breaker += 1
                return "congestion: overload shedding active"

        if self.gnb_guards is not None and gnb is not None:
            guard = self.gnb_guards.get(gnb)
            if guard is None:
                guard = self.gnb_guards[gnb] = TokenBucket(
                    self.config.gnb_rate_per_s, self.config.gnb_burst
                )
                guard.last_ns = now_ns
            if not guard.try_take(now_ns):
                self.shed_gnb += 1
                return f"congestion: rate guard for {gnb}"

        if self.per_source is not None:
            buckets = self.per_source
            bucket = buckets.get(source)
            if bucket is None:
                if len(buckets) >= self.config.per_source_cap:
                    # Bounded state: evict the oldest-tracked identity
                    # (dict preserves insertion order — deterministic).
                    buckets.pop(next(iter(buckets)))
                bucket = buckets[source] = TokenBucket(
                    self.config.per_source_rate_per_s, self.config.per_source_burst
                )
                bucket.last_ns = now_ns
            if not bucket.try_take(now_ns):
                self.shed_source += 1
                return f"congestion: source {source} rate-limited"

        if self.bucket is not None and not self.bucket.try_take(now_ns):
            self.shed_bucket += 1
            return "congestion: admission bucket empty"

        self.admitted += 1
        return None

    # ------------------------------------------------------------- metrics

    def collect_metrics(self, registry, nf: str) -> None:
        labels = {"nf": nf}
        registry.counter("amf_admission_arrivals_total", **labels).set(self.arrivals)
        registry.counter("amf_admission_admitted_total", **labels).set(self.admitted)
        for reason, count in (
            ("breaker", self.shed_breaker),
            ("gnb_guard", self.shed_gnb),
            ("source", self.shed_source),
            ("bucket", self.shed_bucket),
        ):
            registry.counter(
                "amf_admission_shed_total", reason=reason, **labels
            ).set(count)
        if self.breaker is not None:
            registry.gauge("amf_overload_breaker_open", **labels).set(
                1.0 if self.breaker.open else 0.0
            )
            registry.counter("amf_overload_breaker_opens_total", **labels).set(
                self.breaker.times_opened
            )
