"""UPF — User Plane Function.

The data-session anchor.  The control-plane experiments only exercise its
N4 interface (session programming from the SMF); a minimal data-path
forwarding counter exists so examples can show user-plane traffic after
registration.
"""

from __future__ import annotations

from typing import Dict

from repro.fivegc.nf_base import NetworkFunction
from repro.net.rest import json_body, require_str
from repro.net.sbi import NFType

_N4_PROGRAM_CYCLES = 30_000  # PDR/FAR install


class Upf(NetworkFunction):
    NF_TYPE = NFType.UPF

    def __init__(self, *args, **kwargs) -> None:
        self._forwarding: Dict[str, str] = {}
        self.packets_forwarded = 0
        super().__init__(*args, **kwargs)

    def _register_routes(self) -> None:
        self._route_json("POST", "/n4/v1/sessions", self._handle_n4)

    def _handle_n4(self, request, context):
        data = json_body(request)
        ue_address = require_str(data, "ueAddress")
        dnn = require_str(data, "dnn")
        context.runtime.compute(_N4_PROGRAM_CYCLES)
        self._forwarding[ue_address] = dnn
        return self._ok({"installed": ue_address}, status=201)

    # ------------------------------------------------------------ data path

    def forward_packet(self, ue_address: str, nbytes: int) -> bool:
        """Forward one uplink packet if a session exists for the address."""
        if ue_address not in self._forwarding:
            return False
        self.runtime.compute(2_200 + 0.3 * nbytes)
        self.packets_forwarded += 1
        return True

    def session_count(self) -> int:
        return len(self._forwarding)
