"""NRF — Network Functions Repository Function.

Stores NF profiles and answers discovery queries (Nnrf_NFManagement /
Nnrf_NFDiscovery), orchestrating mutual discovery between the VNFs of the
slice exactly as in Fig 2.
"""

from __future__ import annotations

from typing import Dict, List

from repro.fivegc.nf_base import NetworkFunction
from repro.net.rest import JsonApiError, json_body
from repro.net.sbi import NFProfile, NFType, NRF_DISCOVER, NRF_REGISTER


class Nrf(NetworkFunction):
    NF_TYPE = NFType.NRF

    def __init__(self, *args, **kwargs) -> None:
        self._registry: Dict[str, NFProfile] = {}
        super().__init__(*args, **kwargs)

    def _register_routes(self) -> None:
        self._route_json("PUT", NRF_REGISTER, self._handle_register)
        self._route_json("GET", NRF_DISCOVER, self._handle_discover)

    # ------------------------------------------------------------ handlers

    def _handle_register(self, request, context):
        data = json_body(request)
        try:
            profile = NFProfile.from_dict(data)
        except (KeyError, ValueError) as exc:
            raise JsonApiError(400, f"bad NF profile: {exc}")
        context.runtime.compute(6_000)  # profile validation + store
        self._registry[profile.nf_instance_id] = profile
        return self._ok({"nfInstanceId": profile.nf_instance_id}, status=201)

    def _handle_discover(self, request, context):
        data = json_body(request)
        target = data.get("targetNfType")
        if not isinstance(target, str):
            raise JsonApiError(400, "missing targetNfType")
        try:
            nf_type = NFType(target)
        except ValueError:
            raise JsonApiError(400, f"unknown NF type {target!r}")
        context.runtime.compute(4_000)  # registry scan
        # Canonical ordering: replicas come back sorted by instance id,
        # so every client builds the same ring regardless of the order
        # replicas registered (or re-registered after a restart) in.
        matches: List[dict] = [
            profile.to_dict()
            for profile in sorted(
                self._registry.values(), key=lambda p: p.nf_instance_id
            )
            if profile.nf_type is nf_type
        ]
        return self._ok({"nfInstances": matches})

    # --------------------------------------------------------- inspection

    def registered(self, nf_type: NFType) -> List[NFProfile]:
        return [p for p in self._registry.values() if p.nf_type is nf_type]
