"""Consistent-hash UE→shard routing for the sharded control plane.

The million-UE scale-out replicates the serving path — AMF, AUSF and UDM
— into N *replica sets* ("slices"): ``amf-k`` is bound to ``ausf-k`` is
bound to ``udm-k``, and a UE is pinned to exactly one slice for its whole
registration so every stateful exchange (AUSF auth context between
authenticate and confirm, eUDM key provisioning) lands where its state
lives.  The pinning is a **seeded consistent-hash ring** over the shard
labels: SUPI → shard, stable under replica addition (adding one replica
to an N-ring moves only ~1/(N+1) of the keys, so a scale-out event
re-homes the minimum number of subscribers).

Hashing is ``blake2b`` keyed by the ring seed — never Python's builtin
``hash`` — so a pick is bit-identical across processes and
``PYTHONHASHSEED`` values; the partitioned simulation driver
(:mod:`repro.experiments.shard`) relies on that to give worker processes
the exact same UE→shard assignment the in-process testbed would compute.
"""

from __future__ import annotations

from bisect import bisect_right
from hashlib import blake2b
from typing import Dict, Iterable, List, Sequence, Tuple

# Virtual nodes per physical node: enough for ±a few percent balance at
# small replica counts without making ring construction noticeable.
DEFAULT_VNODES = 64


class HashRing:
    """A seeded consistent-hash ring mapping string keys to nodes.

    Nodes are placed at ``vnodes`` pseudo-random points each (their
    position is a keyed hash of ``(node, replica_index)``); a key is
    served by the first node clockwise of the key's own hash point.
    """

    __slots__ = ("seed", "vnodes", "_points", "_owners", "_nodes")

    def __init__(
        self,
        nodes: Iterable[str] = (),
        seed: int = 0,
        vnodes: int = DEFAULT_VNODES,
    ) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.seed = int(seed)
        self.vnodes = vnodes
        self._points: List[int] = []
        self._owners: List[str] = []
        self._nodes: List[str] = []
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------- hashing

    def _digest(self, data: str) -> int:
        key = self.seed.to_bytes(8, "big", signed=True)
        return int.from_bytes(
            blake2b(data.encode(), digest_size=8, key=key).digest(), "big"
        )

    # ------------------------------------------------------------ mutation

    def add(self, node: str) -> None:
        """Place ``node`` on the ring (idempotent for duplicate adds)."""
        node = str(node)
        if node in self._nodes:
            return
        self._nodes.append(node)
        for replica in range(self.vnodes):
            point = self._digest(f"node:{node}:{replica}")
            index = bisect_right(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, node)

    def remove(self, node: str) -> None:
        """Take ``node`` off the ring; its keys re-home to the successors."""
        node = str(node)
        if node not in self._nodes:
            raise KeyError(f"node {node!r} not on the ring")
        self._nodes.remove(node)
        keep = [i for i, owner in enumerate(self._owners) if owner != node]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    # -------------------------------------------------------------- lookup

    def pick(self, key: str) -> str:
        """The node serving ``key`` (first node clockwise of its point)."""
        if not self._nodes:
            raise RuntimeError("cannot pick from an empty ring")
        point = self._digest(f"key:{key}")
        index = bisect_right(self._points, point)
        if index == len(self._points):
            index = 0  # wrap: the ring is circular
        return self._owners[index]

    def assignment(self, keys: Sequence[str]) -> Dict[str, str]:
        """``{key: node}`` for every key (one pass, deterministic)."""
        return {key: self.pick(key) for key in keys}

    @property
    def nodes(self) -> Tuple[str, ...]:
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HashRing(nodes={self.nodes}, seed={self.seed})"


def shard_labels(shards: int) -> List[str]:
    """The canonical shard label set: ``["0", ..., str(shards - 1)]``."""
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    return [str(index) for index in range(shards)]


def supi_ring(shards: int, seed: int = 0) -> HashRing:
    """The SUPI→shard ring every layer of a deployment agrees on.

    The gNB (entry point), the SBI discovery pick and the partitioned
    simulation driver all build this exact ring from ``(shards, seed)``,
    which is what makes "a UE always lands on the same AMF/AUSF/UDM
    slice" hold without any coordination at runtime.
    """
    return HashRing(shard_labels(shards), seed=seed)


class ControlPlaneRouter:
    """SUPI → AMF replica, via the shared ring over shard labels.

    The gNB consults this at the N2 boundary; one router is shared by
    every gNB of a testbed.  ``amfs_by_shard`` maps shard label → the
    AMF instance serving that slice.
    """

    __slots__ = ("ring", "_amfs")

    def __init__(self, ring: HashRing, amfs_by_shard: Dict[str, object]) -> None:
        missing = set(ring.nodes) - set(amfs_by_shard)
        if missing:
            raise ValueError(f"ring shards without an AMF: {sorted(missing)}")
        self.ring = ring
        self._amfs = dict(amfs_by_shard)

    def shard_for(self, supi: str) -> str:
        return self.ring.pick(str(supi))

    def amf_for(self, supi: str):
        return self._amfs[self.ring.pick(str(supi))]
