"""GSC — Gramine Shielded Containers.

``gsc build`` transforms a regular Docker image into a graminized image:
it appends the Gramine runtime, finalizes a manifest whose trusted-file
list covers essentially the whole root filesystem (excluding a few
platform-specific paths — a Gramine design decision for generality that
the paper identifies as a main contributor to the ~1 minute enclave load
time), and ``gsc sign-image`` signs the enclave with the operator's key.

The output bundles everything the PAL needs: the wrapped image, the final
manifest and the :class:`~repro.sgx.enclave.EnclaveBuildInfo`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.container.image import ContainerImage, ImageLayer
from repro.gramine.manifest import GramineManifest
from repro.sgx.enclave import EnclaveBuildInfo
from repro.sgx.measurement import EnclaveMeasurement, sign_enclave

# Paths GSC leaves out of the trusted list (paper §V-B1).
EXCLUDED_PATHS = ("/boot", "/dev", "/etc/mtab", "/proc", "/sys")

# The Gramine runtime layer GSC appends (LibOS, PAL, patched glibc).
_GRAMINE_LAYER_BYTES = 52 * 1024**2
# Code + initial data measured into the enclave at EADD time (Gramine
# runtime + loader); the application itself is verified as trusted files.
_MEASURED_BYTES = 28 * 1024**2
# Fraction of the enclave reserved as heap (rest: code, stacks, TCS).
_HEAP_FRACTION = 0.90


@dataclass(frozen=True)
class GscConfig:
    """The GSC config file: where Gramine and the SGX driver come from."""

    gramine_version: str = "v1.4-1-ga60a499"
    sgx_driver: str = "in-kernel"
    base_distro: str = "ubuntu:20.04"


@dataclass(frozen=True)
class GscImage:
    """A graminized, optionally signed container image."""

    image: ContainerImage
    manifest: GramineManifest
    config: GscConfig
    build_info: EnclaveBuildInfo

    @property
    def signed(self) -> bool:
        return self.build_info.sigstruct is not None


def _trusted_files_bytes(image: ContainerImage) -> int:
    """Bytes GSC will verify at load: the rootfs minus excluded paths."""
    excluded = 0
    for path, entry in image.rootfs().items():
        if any(path == p or path.startswith(p + "/") for p in EXCLUDED_PATHS):
            excluded += entry.size_bytes
    return image.size_bytes - excluded


def build_gsc_image(
    image: ContainerImage,
    manifest: GramineManifest,
    config: Optional[GscConfig] = None,
) -> GscImage:
    """``gsc build``: graminize ``image`` under ``manifest``.

    The returned image is unsigned; :func:`sign_gsc_image` must run before
    a non-debug enclave will launch (aesmd refuses unsigned SIGSTRUCTs).
    """
    config = config or GscConfig()
    gramine_layer = ImageLayer(
        f"gramine-{config.gramine_version}", opaque_bytes=_GRAMINE_LAYER_BYTES
    )
    wrapped = image.with_layer(gramine_layer)
    trusted_bytes = _trusted_files_bytes(wrapped)
    finalized = GramineManifest(
        entrypoint=manifest.entrypoint,
        enclave_size=manifest.enclave_size,
        max_threads=manifest.max_threads,
        preheat_enclave=manifest.preheat_enclave,
        debug=manifest.debug,
        enable_stats=manifest.enable_stats,
        trusted_files=sorted(
            set(manifest.trusted_files)
            | {
                path
                for path in wrapped.rootfs()
                if not any(
                    path == p or path.startswith(p + "/") for p in EXCLUDED_PATHS
                )
            }
        ),
        allowed_files=list(manifest.allowed_files),
        env=dict(manifest.env),
    )
    enclave_size = finalized.enclave_size_bytes
    build_info = EnclaveBuildInfo(
        name=f"gsc-{image.repository.replace('/', '-')}-{image.tag}",
        enclave_size_bytes=enclave_size,
        max_threads=finalized.max_threads,
        measured_bytes=_MEASURED_BYTES,
        trusted_files_bytes=trusted_bytes,
        heap_bytes=int(enclave_size * _HEAP_FRACTION),
        preheat=finalized.preheat_enclave,
        debug=finalized.debug,
        stats_enabled=finalized.enable_stats,
        sigstruct=None,
    )
    return GscImage(image=wrapped, manifest=finalized, config=config, build_info=build_info)


def sign_gsc_image(
    gsc_image: GscImage,
    signing_key: bytes,
    isv_prod_id: int = 0,
    isv_svn: int = 1,
) -> GscImage:
    """``gsc sign-image``: attach a SIGSTRUCT under the operator's key.

    The pre-computed measurement covers the build inputs (image identity,
    manifest) — changing either yields a different MRENCLAVE, which is
    what lets a relying party detect a tampered image via attestation.
    """
    import hashlib

    digest = hashlib.sha256(
        b"gsc-measurement"
        + gsc_image.image.reference.encode()
        + gsc_image.manifest.to_json().encode()
        + gsc_image.build_info.measured_bytes.to_bytes(8, "big")
    ).digest()
    measurement = EnclaveMeasurement(mrenclave=digest)
    sigstruct = sign_enclave(
        measurement, signing_key, isv_prod_id=isv_prod_id, isv_svn=isv_svn
    )
    return GscImage(
        image=gsc_image.image,
        manifest=gsc_image.manifest,
        config=gsc_image.config,
        build_info=replace(gsc_image.build_info, sigstruct=sigstruct),
    )
