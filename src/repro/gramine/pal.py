"""Platform Adaptation Layer (pal-sgx).

The PAL is the *untrusted* loader that talks to the SGX driver to create
and initialize the enclave.  The paper's threat model explicitly marks it
untrusted: a malicious PAL can refuse to load an enclave (denial of
service, out of scope) but cannot forge a measurement — EINIT recomputes
MRENCLAVE in hardware, so tampering with the pages it loads changes the
measurement and attestation fails.  The simulator keeps that property:
the PAL *reports* what it loaded, and any inflation it applies is visible
in the resulting measurement.
"""

from __future__ import annotations

from typing import Optional

from repro.hw.host import PhysicalHost
from repro.sgx.aesm import AesmDaemon, LaunchDeniedError
from repro.sgx.costmodel import SgxCostModel
from repro.sgx.enclave import Enclave, EnclaveBuildInfo
from repro.sgx.epc import EpcManager
from repro.sim.clock import TimeSpan


class PlatformAdaptationLayer:
    """Loads enclaves through the driver, gated by aesmd launch control."""

    def __init__(
        self,
        host: PhysicalHost,
        epc_manager: EpcManager,
        aesmd: AesmDaemon,
        cost_model: Optional[SgxCostModel] = None,
    ) -> None:
        self.host = host
        self.epc_manager = epc_manager
        self.aesmd = aesmd
        self.cost_model = cost_model or SgxCostModel()

    def load_enclave(self, build: EnclaveBuildInfo) -> "tuple[Enclave, TimeSpan]":
        """ECREATE → EADD/EEXTEND → launch token → EINIT.

        Raises :class:`LaunchDeniedError` if aesmd refuses the SIGSTRUCT
        (unsigned enclaves cannot launch outside debug mode).
        """
        if build.sigstruct is None and not build.debug:
            raise LaunchDeniedError(
                f"enclave {build.name!r} is unsigned and not in debug mode"
            )
        if build.sigstruct is not None:
            token = self.aesmd.request_launch_token(build.sigstruct)
            if not self.aesmd.validate_token(token):  # pragma: no cover - defensive
                raise LaunchDeniedError("launch token failed validation")
        enclave = Enclave(
            host=self.host,
            build=build,
            epc_manager=self.epc_manager,
            cost_model=self.cost_model,
        )
        span = enclave.load()
        return enclave, span
