"""Gramine-SGX LibOS layer.

Gramine runs unmodified binaries inside SGX enclaves by interposing a
library OS between the application and the host: syscalls become OCALLs
through the (untrusted) Platform Adaptation Layer, external data is
validated by shielding code, and a handful of helper threads service IPC,
timers/async events and pipe TLS handshakes — which is why an enclave
needs at least **4** threads to run a single-threaded server consistently
(paper §V-B2).

GSC (Gramine Shielded Containers) wraps this for Docker images: it
appends Gramine to the image, templates a manifest that marks essentially
the whole root filesystem as trusted files, and signs the result.
"""

from repro.gramine.manifest import GramineManifest, ManifestError, parse_size
from repro.gramine.pal import PlatformAdaptationLayer
from repro.gramine.libos import GramineEnclaveRuntime, GramineError, HELPER_THREADS
from repro.gramine.gsc import GscConfig, GscImage, build_gsc_image, sign_gsc_image

__all__ = [
    "GramineManifest",
    "ManifestError",
    "parse_size",
    "PlatformAdaptationLayer",
    "GramineEnclaveRuntime",
    "GramineError",
    "HELPER_THREADS",
    "GscConfig",
    "GscImage",
    "build_gsc_image",
    "sign_gsc_image",
]
