"""Gramine manifest.

The manifest declares how the LibOS runs the application: entrypoint,
enclave size, allowed thread count, trusted/allowed files, and the debug /
stats / preheat switches the paper sets (``sgx.preheat_enclave = true``,
``sgx.max_threads = 4``, 512 MB enclave, stats + debug for metrics).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List


class ManifestError(Exception):
    """Invalid manifest contents."""


_SIZE_SUFFIXES = {"K": 1024, "M": 1024**2, "G": 1024**3}


def parse_size(text: str) -> int:
    """Parse a Gramine size string such as ``512M`` or ``8G``."""
    raw = text.strip().upper()
    if not raw:
        raise ManifestError("empty size string")
    if raw[-1] in _SIZE_SUFFIXES:
        number, multiplier = raw[:-1], _SIZE_SUFFIXES[raw[-1]]
    else:
        number, multiplier = raw, 1
    try:
        value = int(number)
    except ValueError:
        raise ManifestError(f"bad size string {text!r}")
    if value <= 0:
        raise ManifestError(f"size must be positive: {text!r}")
    return value * multiplier


def format_size(nbytes: int) -> str:
    for suffix in ("G", "M", "K"):
        unit = _SIZE_SUFFIXES[suffix]
        if nbytes % unit == 0 and nbytes >= unit:
            return f"{nbytes // unit}{suffix}"
    return str(nbytes)


@dataclass
class GramineManifest:
    """A validated manifest (the JSON file GSC feeds to Gramine)."""

    entrypoint: str
    enclave_size: str = "512M"
    max_threads: int = 4
    preheat_enclave: bool = False
    debug: bool = False
    enable_stats: bool = False
    trusted_files: List[str] = field(default_factory=list)
    allowed_files: List[str] = field(default_factory=list)
    env: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.validate()

    @property
    def enclave_size_bytes(self) -> int:
        return parse_size(self.enclave_size)

    def validate(self) -> None:
        if not self.entrypoint:
            raise ManifestError("manifest needs an entrypoint")
        if self.max_threads < 1:
            raise ManifestError(f"sgx.max_threads must be >= 1, got {self.max_threads}")
        self.enclave_size_bytes  # raises on bad size strings
        overlap = set(self.trusted_files) & set(self.allowed_files)
        if overlap:
            raise ManifestError(
                f"files cannot be both trusted and allowed: {sorted(overlap)[:3]}"
            )

    # ----------------------------------------------------------- serialize

    def to_dict(self) -> Dict[str, Any]:
        return {
            "libos": {"entrypoint": self.entrypoint},
            "loader": {"env": dict(self.env)},
            "sgx": {
                "enclave_size": self.enclave_size,
                "max_threads": self.max_threads,
                "preheat_enclave": self.preheat_enclave,
                "debug": self.debug,
                "enable_stats": self.enable_stats,
                "trusted_files": list(self.trusted_files),
                "allowed_files": list(self.allowed_files),
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "GramineManifest":
        try:
            sgx = data.get("sgx", {})
            return cls(
                entrypoint=data["libos"]["entrypoint"],
                enclave_size=sgx.get("enclave_size", "512M"),
                max_threads=sgx.get("max_threads", 4),
                preheat_enclave=sgx.get("preheat_enclave", False),
                debug=sgx.get("debug", False),
                enable_stats=sgx.get("enable_stats", False),
                trusted_files=list(sgx.get("trusted_files", [])),
                allowed_files=list(sgx.get("allowed_files", [])),
                env=dict(data.get("loader", {}).get("env", {})),
            )
        except KeyError as missing:
            raise ManifestError(f"manifest missing required key: {missing}")

    @classmethod
    def from_json(cls, text: str) -> "GramineManifest":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ManifestError(f"manifest is not valid JSON: {error}")
        return cls.from_dict(data)
