"""The Gramine library OS: runs the workload inside the enclave.

Execution model (matching real Gramine, and the paper's Table III
analysis):

* one ECALL enters the enclave for the process, plus one per additional
  thread — EENTERs therefore slightly exceed EEXITs over a run,
* every syscall the application makes is serviced by shielding code and
  forwarded to the host as an OCALL (EEXIT + host syscall + EENTER),
* three helper threads service IPC, timer/async events and pipe-TLS
  handshakes, so a single-threaded server needs ``sgx.max_threads >= 4``
  to run consistently,
* the optional *exitless* mode hands syscalls to an untrusted helper via
  shared memory, avoiding transitions at the cost of a busy helper (the
  paper notes it is not production-ready; we model it for the ablation
  bench).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.sim.clock import NS_PER_S
from repro.sim.events import Event

from repro.gramine.manifest import GramineManifest
from repro.hw.host import PhysicalHost
from repro.runtime.base import Runtime, syscall_host_cycles
from repro.sgx.enclave import EcallContext, Enclave
from repro.sgx.stats import SgxStats

HELPER_THREADS = 3  # IPC, timer/async events, pipe-TLS handshake

# Shielding code validates externally supplied data before use.
_SHIELD_FIXED_CYCLES = 850
_SHIELD_PER_BYTE_CYCLES = 1.15

# Exitless mode: shared-memory RPC to an untrusted helper thread.
_EXITLESS_RPC_CYCLES = 3_600

# EPC sizing effects (Fig 8).  Oversized enclaves pay pager/integrity-tree
# pressure per syscall (more resident pages to version and scan): a small
# mean with heavy jitter, which is what widens the 8 GB interquartile
# range.  Undersized enclaves (below the Gramine+glibc+app working set)
# thrash: page-in/page-out pairs on a fraction of syscalls.
_BASELINE_RESIDENT_PAGES = 131_072  # 512 MB — the paper's chosen size
_PRESSURE_CYCLES_PER_LOG2 = 700.0
_WORKING_SET_PAGES = 100_000  # ≈390 MB: Gramine + glibc + app + buffers
_THRASH_PROBABILITY = 0.35


class GramineError(Exception):
    """LibOS start-up or runtime failure."""


class _CompiledProfile:
    """A syscall profile precompiled by ``compile_syscalls``.

    Holds the original specs (for the per-call fallback paths) plus every
    loop-invariant the fused replay needs: per-spec rounded OCALL cost
    components with their shared event-detail dicts, aggregate exitless
    charges, byte totals and per-name stat increments.
    """

    __slots__ = (
        "specs",
        "per_spec",
        "name_counts",
        "count",
        "exitless_cycles",
        "exitless_ns",
        "bytes_out_total",
        "bytes_in_total",
    )

    def __init__(
        self,
        specs: List[Tuple[str, int, int]],
        per_spec: List[Tuple[int, int, Dict[str, Any]]],
        name_counts: Tuple[Tuple[str, int], ...],
        exitless_cycles: int,
        exitless_ns: int,
        bytes_out_total: int,
        bytes_in_total: int,
    ) -> None:
        self.specs = specs
        self.per_spec = per_spec
        self.name_counts = name_counts
        self.count = len(specs)
        self.exitless_cycles = exitless_cycles
        self.exitless_ns = exitless_ns
        self.bytes_out_total = bytes_out_total
        self.bytes_in_total = bytes_in_total


class GramineEnclaveRuntime(Runtime):
    """The :class:`~repro.runtime.base.Runtime` view of a Gramine enclave."""

    # Gramine + glibc initialization issues several hundred OCALLs: the
    # manifest, ld.so and libraries are opened, mapped and read through
    # the untrusted host (paper §V-B1).
    _INIT_OCALLS = [
        ("openat", 0, 0)] + [
        ("read", 0, 65536)] * 4 + [               # manifest + config reads
        ("openat", 0, 0), ("fstat", 0, 0), ("mmap", 0, 0),
        ("mmap", 0, 0), ("read", 0, 131072), ("close", 0, 0),
    ] * 74 + [                                     # ~37 libs -> ~444 OCALLs
        ("brk", 0, 0)] * 10 + [
        ("getrandom", 0, 32)] * 4 + [
        ("clock_gettime", 0, 0)] * 8

    def __init__(
        self,
        name: str,
        host: PhysicalHost,
        enclave: Enclave,
        manifest: GramineManifest,
        exitless: bool = False,
    ) -> None:
        super().__init__(name, host)
        self.enclave = enclave
        self.manifest = manifest
        self.exitless = exitless
        self.started = False
        self._contexts: List[EcallContext] = []
        self._warmed_up = False
        # Fused-accounting caches: per-spec deterministic costs, pre-rounded
        # to (cycles_spent, clock_ns) pairs exactly as the unfused
        # spend_cycles sequence would round them (see Cpu.round_cycle_cost),
        # plus the hot RNG streams resolved once instead of per syscall.
        self._spec_costs: Dict[Tuple[str, int, int], Tuple[int, int, int, int]] = {}
        # Per-spec (shield_ns, copy_ns, host_ns, exitless_ns) decomposition
        # for span tags — only populated when a tracer is installed.
        self._trace_component_ns: Dict[
            Tuple[str, int, int], Tuple[int, int, int, int]
        ] = {}
        self._transition_stream = host.rng.stream(f"{enclave.build.name}.transition")
        # Shared event-detail dicts (one per syscall name) for the fused
        # batch path: every sgx.ocall event of a spec carries the same
        # {"enclave": ..., "syscall": ...} payload, so one frozen dict per
        # name replaces a fresh two-entry dict per OCALL.
        self._event_details: Dict[str, Dict[str, Any]] = {}

    # ----------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Boot the LibOS: enter the enclave and run Gramine+glibc init."""
        if self.started:
            raise GramineError(f"libOS for {self.name!r} already started")
        required = HELPER_THREADS + 1
        if self.manifest.max_threads < required:
            raise GramineError(
                f"{self.name}: sgx.max_threads={self.manifest.max_threads} but "
                f"Gramine needs {HELPER_THREADS} helper threads plus the "
                f"application thread; the paper observed inconsistent "
                f"behaviour below {required} threads"
            )
        if self.enclave.build.max_threads < self.manifest.max_threads:
            raise GramineError(
                f"{self.name}: enclave TCS count {self.enclave.build.max_threads} "
                f"below manifest sgx.max_threads {self.manifest.max_threads}"
            )
        # One persistent ECALL for the process, one per helper thread.
        self._contexts.append(self.enclave.begin_persistent_ecall("process"))
        for i in range(HELPER_THREADS):
            self._contexts.append(
                self.enclave.begin_persistent_ecall(f"helper-{i}")
            )
        self.started = True
        self.syscall_batch(self._INIT_OCALLS)

    def shutdown(self) -> None:
        for context in self._contexts:
            self.enclave.end_persistent_ecall(context)
        self._contexts.clear()
        self.started = False
        self.enclave.destroy()

    # ------------------------------------------------------------- queries

    @property
    def shielded(self) -> bool:
        return True

    @property
    def sgx_stats(self) -> Optional[SgxStats]:
        return self.enclave.stats

    @property
    def _app_context(self) -> EcallContext:
        if not self.started or not self._contexts:
            raise GramineError(f"libOS for {self.name!r} is not running")
        return self._contexts[0]

    # ------------------------------------------------------------ execution

    def compute(self, cycles: float) -> None:
        self._app_context.compute(cycles)

    @property
    def degraded(self) -> bool:
        """True when the enclave is smaller than the working set — the
        paper's "inconsistent behaviour" regime below 512 MB."""
        return self.enclave.epc_region.total_pages < _WORKING_SET_PAGES

    # When the host's physical EPC is (nearly) fully committed across all
    # enclaves, neighbours keep evicting each other's hot pages: a
    # fraction of syscalls pays a reload pair even in steady state.
    _GLOBAL_CONTENTION_THRESHOLD = 0.98
    _GLOBAL_CONTENTION_THRASH_P = 0.22

    def _epc_pressure(self) -> None:
        """Per-syscall pager cost scaled by how the enclave is sized."""
        region = self.enclave.epc_region
        manager = self.enclave.epc_manager
        resident = max(region.resident_pages, 1)
        if (
            manager.resident_pages
            >= self._GLOBAL_CONTENTION_THRESHOLD * manager.capacity_pages
        ):
            stream = self.host.rng.stream(f"{self.name}.contention")
            if stream.random() < self._GLOBAL_CONTENTION_THRASH_P:
                model = self.enclave.cost_model
                self.host.cpu.spend_cycles(
                    model.page_evict_cycles + model.page_fault_cycles
                )
                self.enclave.stats.page_evictions += 1
                self.enclave.stats.page_faults += 1
        if self.degraded:
            # Thrash: some syscalls force an evict + reload pair.
            stream = self.host.rng.stream(f"{self.name}.thrash")
            if stream.random() < _THRASH_PROBABILITY:
                model = self.enclave.cost_model
                self.host.cpu.spend_cycles(
                    model.page_evict_cycles + model.page_fault_cycles
                )
                self.enclave.stats.page_evictions += 1
                self.enclave.stats.page_faults += 1
            return
        excess = math.log2(resident / _BASELINE_RESIDENT_PAGES)
        if excess > 0:
            mean = _PRESSURE_CYCLES_PER_LOG2 * excess
            self.host.cpu.spend_cycles(
                self.host.rng.jitter(f"{self.name}.pressure", mean, 0.80)
            )
            # Occasional background EWB/ELDU activity interferes with the
            # request — rare but large, which is what fattens the upper
            # quartile of the 8 GB boxes in Fig 8.
            stream = self.host.rng.stream(f"{self.name}.pressure-spike")
            if stream.random() < 0.011 * excess:
                model = self.enclave.cost_model
                self.host.cpu.spend_cycles(
                    model.page_evict_cycles + model.page_fault_cycles
                )

    def _spec_cost(self, spec: Tuple[str, int, int]) -> Tuple[int, int, int, int]:
        """The deterministic cost of one syscall spec, pre-rounded.

        Returns ``(ocall_cycles, ocall_ns, exitless_cycles, exitless_ns)``:
        the sums of the per-component ``(cycles_spent, clock_ns)``
        conversions the unfused path applies (shielding compute, boundary
        copies and host work for the OCALL flavour; shielding compute and
        the shared-memory RPC + host work for exitless), excluding the
        per-call random transition pair and EPC-pressure draws.
        """
        name, bytes_out, bytes_in = spec
        nbytes = bytes_out + bytes_in
        model = self.enclave.cost_model
        round_cost = self.host.cpu.round_cycle_cost
        shield = round_cost(
            (_SHIELD_FIXED_CYCLES + _SHIELD_PER_BYTE_CYCLES * nbytes)
            * model.epc_compute_penalty
        )
        host_cycles = syscall_host_cycles(name, nbytes)
        copy_out = round_cost(bytes_out * model.boundary_copy_cycles_per_byte)
        host = round_cost(host_cycles)
        copy_in = round_cost(bytes_in * model.boundary_copy_cycles_per_byte)
        # Exitless spends RPC + host work as one spend_cycles call, so the
        # pair is rounded over the sum, not per component.
        exitless = round_cost(_EXITLESS_RPC_CYCLES + host_cycles)
        cost = (
            shield[0] + copy_out[0] + host[0] + copy_in[0],
            shield[1] + copy_out[1] + host[1] + copy_in[1],
            shield[0] + exitless[0],
            shield[1] + exitless[1],
        )
        self._spec_costs[spec] = cost
        # Keep the span-tag decomposition in lockstep with the fused cost
        # so traced components always sum to the charged deterministic ns.
        self._trace_component_ns[spec] = (
            shield[1], copy_out[1] + copy_in[1], host[1], exitless[1]
        )
        return cost

    def syscall(self, name: str, bytes_out: int = 0, bytes_in: int = 0) -> None:
        """One simulated syscall: shielding + EPC pressure + OCALL.

        This is the fused fast path of the unfused chain
        ``context.compute`` → ``_epc_pressure`` → ``context.ocall``: the
        five-plus ``spend_cycles`` calls collapse into one pre-rounded
        clock/cycle update, with every RNG draw, stat increment and event
        emission preserved in order so runs stay bit-identical.
        """
        context = self._app_context
        context._check_open()
        spec = (name, bytes_out, bytes_in)
        cost = self._spec_costs.get(spec)
        if cost is None:
            cost = self._spec_cost(spec)
        # Span tracing (repro.obs): one span per OCALL tagged with the
        # paper's cost taxonomy.  The untraced hot path pays only the
        # attribute read and None check (~1080 OCALLs per registration).
        tracer = self.host.tracer
        if tracer is not None and not tracer.enabled:
            tracer = None
        span = None
        if tracer is not None:
            components = self._trace_component_ns.get(spec)
            if components is None:
                self._spec_cost(spec)
                components = self._trace_component_ns[spec]
            span = tracer.begin(
                name, kind="sgx.ocall",
                runtime=self.name, enclave=self.enclave.build.name,
            )
        self._epc_pressure()
        enclave = self.enclave
        stats = enclave.stats
        cpu = self.host.cpu
        if self.exitless:
            # No transition: the helper performs the syscall; the enclave
            # thread spins on shared memory.  Stats record the OCALL
            # logically but no EENTER/EEXIT occurs.
            cpu.spend_preconverted(cost[2], cost[3])
            stats.ocalls += 1
            by_syscall = stats.ocalls_by_syscall
            by_syscall[name] = by_syscall.get(name, 0) + 1
            if span is not None:
                tracer.end(
                    span, exitless=True,
                    shield_ns=components[0], host_ns=components[3],
                )
        else:
            # EEXIT + boundary copy-out + host work + EENTER + copy-in,
            # with the (EENTER, EEXIT) pair drawn per call as always.
            eenter, eexit = enclave.cost_model.draw_transition_pair_from(
                self._transition_stream
            )
            round_cost = cpu.round_cycle_cost
            enter_cost = round_cost(eenter)
            exit_cost = round_cost(eexit)
            cpu.spend_preconverted(
                cost[0] + enter_cost[0] + exit_cost[0],
                cost[1] + enter_cost[1] + exit_cost[1],
            )
            stats.eexits += 1
            stats.eenters += 1
            stats.ocalls += 1
            by_syscall = stats.ocalls_by_syscall
            by_syscall[name] = by_syscall.get(name, 0) + 1
            stats.bytes_copied_out += bytes_out
            stats.bytes_copied_in += bytes_in
            host = self.host
            host.events.emit(
                host.clock.now_ns, "sgx.ocall",
                enclave=enclave.build.name, syscall=name,
            )
            if span is not None:
                tracer.end(
                    span,
                    shield_ns=components[0], copy_ns=components[1],
                    host_ns=components[2],
                    transition_ns=enter_cost[1] + exit_cost[1],
                )

    def syscall_batch(self, specs: Iterable[Tuple[str, int, int]]) -> None:
        """Fused accounting for a fixed syscall sequence.

        The HTTP layer replays the same ~90-spec profiles for every
        request, so the per-call fixed costs of :meth:`syscall` (context
        checks, pressure probes, per-component rounding, one clock update
        and one stats/event round-trip per call) dominate host time.  This
        override hoists everything loop-invariant, draws the per-call
        (EENTER, EEXIT) pairs from the same stream in the same order,
        accumulates the pre-rounded cycle/ns charges, and applies them in
        one ``spend_preconverted`` — every RNG draw, event timestamp, stat
        total and the final clock value are bit-identical to the unfused
        per-call sequence.

        The fusion is only valid while ``_epc_pressure`` is inert (no
        global EPC contention, not degraded, resident set at or under the
        baseline — the state in which it draws nothing and charges
        nothing) and no tracer is armed; otherwise this falls back to the
        exact per-call path.
        """
        tracer = self.host.tracer
        if tracer is not None and tracer.enabled:
            for name, bytes_out, bytes_in in specs:
                self.syscall(name, bytes_out, bytes_in)
            return
        context = self._app_context
        context._check_open()
        enclave = self.enclave
        manager = enclave.epc_manager
        if (
            manager.resident_pages
            >= self._GLOBAL_CONTENTION_THRESHOLD * manager.capacity_pages
            or self.degraded
            or enclave.epc_region.resident_pages > _BASELINE_RESIDENT_PAGES
        ):
            # Pressure draws RNG / charges cycles per call: stay unfused.
            for name, bytes_out, bytes_in in specs:
                self.syscall(name, bytes_out, bytes_in)
            return

        spec_costs = self._spec_costs
        stats = enclave.stats
        by_syscall = stats.ocalls_by_syscall
        cpu = self.host.cpu
        acc_cycles = 0
        acc_ns = 0
        count = 0

        if self.exitless:
            # No transitions, no per-call RNG, no events: pure accumulation.
            for spec in specs:
                cost = spec_costs.get(spec)
                if cost is None:
                    cost = self._spec_cost(spec)
                acc_cycles += cost[2]
                acc_ns += cost[3]
                count += 1
                name = spec[0]
                by_syscall[name] = by_syscall.get(name, 0) + 1
            cpu.spend_preconverted(acc_cycles, acc_ns)
            stats.ocalls += count
            return

        model = enclave.cost_model
        uniform = self._transition_stream.uniform
        pair_min = model.transition_pair_min_cycles
        pair_max = model.transition_pair_max_cycles
        hz = cpu.spec.frequency_hz
        host = self.host
        emit_shared = host.events.emit_shared
        base_ns = host.clock.now_ns
        event_details = self._event_details
        enclave_name = enclave.build.name
        bytes_out_total = 0
        bytes_in_total = 0

        for spec in specs:
            cost = spec_costs.get(spec)
            if cost is None:
                cost = self._spec_cost(spec)
            # Inlined draw_transition_pair_from + round_cycle_cost: same
            # stream, same draw, same truncation/rounding expressions.
            total = uniform(pair_min, pair_max)
            eenter = int(total * 0.55)
            eexit = int(total * 0.45)
            acc_cycles += cost[0] + eenter + eexit
            acc_ns += (
                cost[1]
                + int(round(eenter * NS_PER_S / hz))
                + int(round(eexit * NS_PER_S / hz))
            )
            count += 1
            name = spec[0]
            by_syscall[name] = by_syscall.get(name, 0) + 1
            bytes_out_total += spec[1]
            bytes_in_total += spec[2]
            detail = event_details.get(name)
            if detail is None:
                detail = event_details[name] = {
                    "enclave": enclave_name, "syscall": name,
                }
            # The unfused path emits after spending, so the event carries
            # the post-charge clock: base + everything accumulated so far.
            emit_shared(base_ns + acc_ns, "sgx.ocall", detail)

        cpu.spend_preconverted(acc_cycles, acc_ns)
        stats.eexits += count
        stats.eenters += count
        stats.ocalls += count
        stats.bytes_copied_out += bytes_out_total
        stats.bytes_copied_in += bytes_in_total

    def compile_syscalls(self, specs: Iterable[Tuple[str, int, int]]) -> object:
        """Precompile a syscall profile for :meth:`syscall_profile`.

        Everything :meth:`syscall_batch` looks up per spec — the rounded
        cost components, the shared event-detail dict, the per-name stat
        buckets, the byte totals — is resolved once here, so replay only
        pays for what genuinely varies per call: the (EENTER, EEXIT)
        RNG draw and the running event timestamp.
        """
        specs = list(specs)
        spec_costs = self._spec_costs
        event_details = self._event_details
        enclave_name = self.enclave.build.name
        per_spec: List[Tuple[int, int, Dict[str, Any]]] = []
        name_counts: Dict[str, int] = {}
        exitless_cycles = 0
        exitless_ns = 0
        bytes_out_total = 0
        bytes_in_total = 0
        for spec in specs:
            cost = spec_costs.get(spec)
            if cost is None:
                cost = self._spec_cost(spec)
            name = spec[0]
            detail = event_details.get(name)
            if detail is None:
                detail = event_details[name] = {
                    "enclave": enclave_name, "syscall": name,
                }
            per_spec.append((cost[0], cost[1], detail))
            exitless_cycles += cost[2]
            exitless_ns += cost[3]
            bytes_out_total += spec[1]
            bytes_in_total += spec[2]
            name_counts[name] = name_counts.get(name, 0) + 1
        return _CompiledProfile(
            specs,
            per_spec,
            tuple(name_counts.items()),
            exitless_cycles,
            exitless_ns,
            bytes_out_total,
            bytes_in_total,
        )

    def syscall_profile(self, handle: object) -> None:
        """Replay a compiled profile, bit-identical to the uncompiled batch.

        Falls back to the exact per-call path under an armed tracer or
        non-inert EPC pressure, exactly like :meth:`syscall_batch`.
        """
        profile: _CompiledProfile = handle  # type: ignore[assignment]
        tracer = self.host.tracer
        if tracer is not None and tracer.enabled:
            for name, bytes_out, bytes_in in profile.specs:
                self.syscall(name, bytes_out, bytes_in)
            return
        self._app_context._check_open()
        enclave = self.enclave
        manager = enclave.epc_manager
        if (
            manager.resident_pages
            >= self._GLOBAL_CONTENTION_THRESHOLD * manager.capacity_pages
            or self.degraded
            or enclave.epc_region.resident_pages > _BASELINE_RESIDENT_PAGES
        ):
            for name, bytes_out, bytes_in in profile.specs:
                self.syscall(name, bytes_out, bytes_in)
            return

        stats = enclave.stats
        by_syscall = stats.ocalls_by_syscall
        cpu = self.host.cpu
        count = profile.count

        if self.exitless:
            cpu.spend_preconverted(profile.exitless_cycles, profile.exitless_ns)
            stats.ocalls += count
            for name, n in profile.name_counts:
                by_syscall[name] = by_syscall.get(name, 0) + n
            return

        model = enclave.cost_model
        # random.Random.uniform(a, b) is a + (b - a) * random(); inlining
        # the expression with the span precomputed draws the identical
        # float from the identical stream state without the method hop.
        random_ = self._transition_stream.random
        pair_min = model.transition_pair_min_cycles
        pair_span = model.transition_pair_max_cycles - pair_min
        hz = cpu.spec.frequency_hz
        host = self.host
        events = host.events
        base_ns = host.clock.now_ns
        acc_cycles = 0
        acc_ns = 0

        append_raw = events.bulk_appender(count)
        if append_raw is not None:
            # No trim can fire this batch: append Events directly and
            # settle the category index once for the whole profile.
            for cyc, ns, detail in profile.per_spec:
                total = pair_min + pair_span * random_()
                eenter = int(total * 0.55)
                eexit = int(total * 0.45)
                acc_cycles += cyc + eenter + eexit
                acc_ns += (
                    ns
                    + int(round(eenter * NS_PER_S / hz))
                    + int(round(eexit * NS_PER_S / hz))
                )
                append_raw(Event(base_ns + acc_ns, "sgx.ocall", detail))
            events.bump_count("sgx.ocall", count)
        else:
            emit_shared = events.emit_shared
            for cyc, ns, detail in profile.per_spec:
                total = pair_min + pair_span * random_()
                eenter = int(total * 0.55)
                eexit = int(total * 0.45)
                acc_cycles += cyc + eenter + eexit
                acc_ns += (
                    ns
                    + int(round(eenter * NS_PER_S / hz))
                    + int(round(eexit * NS_PER_S / hz))
                )
                emit_shared(base_ns + acc_ns, "sgx.ocall", detail)

        cpu.spend_preconverted(acc_cycles, acc_ns)
        stats.eexits += count
        stats.eenters += count
        stats.ocalls += count
        stats.bytes_copied_out += profile.bytes_out_total
        stats.bytes_copied_in += profile.bytes_in_total
        for name, n in profile.name_counts:
            by_syscall[name] = by_syscall.get(name, 0) + n

    def touch_pages(self, cold: int = 0, new: int = 0) -> None:
        # The integrity-tree depth grows with the resident set, making
        # cold-line fills slightly dearer in oversized enclaves (Fig 8).
        resident = max(self.enclave.epc_region.resident_pages, 1)
        excess = max(0.0, math.log2(resident / _BASELINE_RESIDENT_PAGES))
        scaled_cold = int(round(cold * (1.0 + 0.08 * excess)))
        self._app_context.touch_pages(cold=scaled_cold, new=new)

    def idle(
        self, duration_s: float, active_threads: int = 1, advance_clock: bool = True
    ) -> None:
        # Helper threads keep attracting timer interrupts while the app
        # thread blocks, so the whole TCS population counts.
        self.enclave.run_idle(
            duration_s,
            active_threads=self.manifest.max_threads,
            advance_clock=advance_clock,
        )

    # The first request after deployment triggers lazy initialization:
    # name-service lookups, crypto drivers, network-stack state.  A modest
    # burst of OCALLs pulls in several MB of file-backed library pages
    # (not covered by preheat, which only pre-faults the heap) and faults
    # them into the EPC.  Cached afterwards — the mechanism behind
    # Fig 10(b)'s ≈20x initial response time.
    _WARMUP_OCALLS = 40
    _WARMUP_READ_BYTES = 6_000_000
    _WARMUP_FAULT_PAGES = 1_100

    # Without preheat the heap working set also faults in lazily on the
    # first requests instead of at load time — the tradeoff the paper's
    # §IV-C preheat rationale describes.
    _LAZY_HEAP_WORKING_SET_PAGES = 25_000  # ≈100 MB

    def lazy_warmup(self) -> bool:
        """Run the one-time first-request warmup; True if it ran now."""
        if self._warmed_up:
            return False
        chunk = self._WARMUP_READ_BYTES // (self._WARMUP_OCALLS // 2)
        rotation = ("openat", "read", "mmap", "read")
        self.syscall_batch(
            (name, 0, chunk if name == "read" else 0)
            for name in (rotation[i % 4] for i in range(self._WARMUP_OCALLS))
        )
        fault_pages = self._WARMUP_FAULT_PAGES
        if not self.enclave.build.preheat:
            fault_pages += self._LAZY_HEAP_WORKING_SET_PAGES
        self.touch_pages(new=fault_pages)
        self._warmed_up = True
        return True

    # -------------------------------------------------------------- secrets

    def store_secret(self, key: str, value: bytes) -> None:
        self._app_context.store_secret(key, value)

    def load_secret(self, key: str) -> bytes:
        return self._app_context.load_secret(key)

    def memory_view(self, actor: str) -> bytes:
        return self.enclave.dump_memory(actor)
