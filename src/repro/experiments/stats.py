"""Distribution summaries for experiment series."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class SeriesSummary:
    """Five-number-ish summary of one measured series."""

    name: str
    unit: str
    n: int
    mean: float
    median: float
    p25: float
    p75: float
    stdev: float
    minimum: float
    maximum: float

    @property
    def iqr(self) -> float:
        return self.p75 - self.p25

    def format(self) -> str:
        return (
            f"{self.name}: mean={self.mean:.2f} median={self.median:.2f} "
            f"IQR=[{self.p25:.2f}, {self.p75:.2f}] sd={self.stdev:.2f} "
            f"n={self.n} ({self.unit})"
        )


def percentiles(values: Sequence[float], qs: Sequence[float]) -> List[Optional[float]]:
    """``np.percentile`` guarded against empty input.

    ``np.percentile`` raises on an empty array, which turns a legitimate
    degenerate measurement (e.g. an all-failures fault arm with no
    latency samples) into a crash.  Returns ``None`` per requested
    quantile when there are no samples — ``None`` survives JSON export,
    unlike NaN.
    """
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        return [None] * len(qs)
    return [float(q) for q in np.percentile(array, list(qs))]


def summarize(name: str, values: Sequence[float], unit: str) -> SeriesSummary:
    if not values:
        raise ValueError(f"series {name!r} is empty")
    array = np.asarray(values, dtype=float)
    return SeriesSummary(
        name=name,
        unit=unit,
        n=array.size,
        mean=float(array.mean()),
        median=float(np.median(array)),
        p25=float(np.percentile(array, 25)),
        p75=float(np.percentile(array, 75)),
        stdev=float(array.std(ddof=1)) if array.size > 1 else 0.0,
        minimum=float(array.min()),
        maximum=float(array.max()),
    )


def outlier_fraction(values: Sequence[float], k: float = 1.5) -> float:
    """Fraction of points outside the Tukey fences (paper: <5 % outliers)."""
    array = np.asarray(values, dtype=float)
    if array.size < 4:
        return 0.0
    q1, q3 = np.percentile(array, [25, 75])
    iqr = q3 - q1
    low, high = q1 - k * iqr, q3 + k * iqr
    return float(np.mean((array < low) | (array > high)))
