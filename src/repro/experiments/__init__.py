"""Experiment harness: one entry point per paper figure/table.

Each experiment function builds the testbeds it needs, runs the paper's
methodology (§V-A2), and returns an :class:`ExperimentReport` carrying
the measured series, the paper's reference values, and band checks — the
same artifacts EXPERIMENTS.md records.

=================  =======================================================
Experiment         Entry point
=================  =======================================================
Fig 7              :func:`repro.experiments.figures.figure7_enclave_load_time`
Fig 8              :func:`repro.experiments.sweeps.figure8_threads_epc_sweep`
Fig 9 / Table II   :func:`repro.experiments.figures.figure9_functional_total_latency`
Fig 10 / Table II  :func:`repro.experiments.figures.figure10_response_time`
Table I            :func:`repro.experiments.tables.table1_enclave_io`
Table II           :func:`repro.experiments.tables.table2_overheads`
Table III          :func:`repro.experiments.tables.table3_sgx_stats`
Table V            :func:`repro.experiments.tables.table5_key_issues`
Session setup      :func:`repro.experiments.session_setup.session_setup_experiment`
OTA (Fig 11/T IV)  :func:`repro.experiments.figures.figure11_ota_feasibility`
=================  =======================================================
"""

from repro.experiments.harness import BandCheck, ExperimentReport, build_testbed
from repro.experiments.stats import SeriesSummary, summarize

__all__ = [
    "ExperimentReport",
    "BandCheck",
    "build_testbed",
    "SeriesSummary",
    "summarize",
]
