"""E-AVAIL: registration availability under injected faults.

Sweeps fault intensity (multiples of :data:`~repro.faults.BASELINE_RATES`)
over identical warmed SGX slices and measures what the resilience layer
delivers: registration success rate, retry/timeout/reconnect counts,
circuit-breaker activity and tail latency (p50/p95/p99).  Arrivals are
paced on the simulated clock across a fixed horizon, so every arm faces
the same fault timeline regardless of how many UEs it registers — the
``--quick`` smoke run samples the same windows the full campaign does.

Determinism: the fault plan is a pure value of ``(seed, horizon, rates)``
and the injector draws only from dedicated ``faults.*`` RNG streams, so
``(seed, plan)`` replays bit-identically and the 0× arm reproduces the
fault-free golden clocks exactly.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.experiments.harness import BandCheck, ExperimentReport, warmed_testbed
from repro.experiments.stats import percentiles, summarize
from repro.faults import BASELINE_RATES, DEFAULT_SBI_RETRY, FaultInjector, FaultPlan
from repro.obs.scrape import Scraper
from repro.obs.slo import SloEngine, default_slos
from repro.paka.deploy import IsolationMode

NS_PER_S = 1_000_000_000

#: Fault-rate multipliers for the default sweep (0× = fault-free control).
DEFAULT_FACTORS = (0.0, 1.0, 2.0, 4.0)

#: Default monitoring cadence: one scrape per simulated second.
DEFAULT_CADENCE_S = 1.0


def _percentiles_ms(latencies_ms: Sequence[float]) -> Dict[str, object]:
    """Tail-latency row fields; ``None`` values when there are no samples.

    An all-failures arm (every registration refused before a latency was
    measured) must still produce a row — ``success_rate=0`` with absent
    percentiles — instead of crashing ``np.percentile`` on an empty array.
    """
    p50, p95, p99 = percentiles(latencies_ms, (50, 95, 99))
    return {
        "p50_ms": None if p50 is None else round(p50, 3),
        "p95_ms": None if p95 is None else round(p95, 3),
        "p99_ms": None if p99 is None else round(p99, 3),
    }


def _run_arm(
    factor: float,
    registrations: int,
    horizon_s: float,
    seed: int,
    cadence_s: float = DEFAULT_CADENCE_S,
) -> Dict[str, object]:
    """One sweep arm: a fresh warmed slice under ``factor×`` fault rates.

    A :class:`~repro.obs.scrape.Scraper` monitors the whole arm on a
    ``cadence_s`` simulated-time cadence, and the paper-derived SLOs are
    evaluated over its Tsdb afterwards — scrapes are pull-only, so the
    monitored arm spends exactly the same simulated nanoseconds as an
    unmonitored one (the 0× arm still reproduces the golden clocks).
    """
    testbed = warmed_testbed(IsolationMode.SGX, seed=seed)
    nfs = (
        testbed.nrf, testbed.udr, testbed.udm, testbed.ausf,
        testbed.amf, testbed.smf, testbed.upf,
    )
    for nf in nfs:
        nf.retry_policy = DEFAULT_SBI_RETRY

    plan = FaultPlan.generate(seed, horizon_s, BASELINE_RATES.scaled(factor))
    injector = FaultInjector(testbed, plan).arm()
    clock = testbed.host.clock
    start_ns = clock.now_ns
    gap_s = horizon_s / registrations

    scraper = Scraper.for_testbed(
        testbed, cadence_s=cadence_s, fault_injector=injector
    ).install(testbed.host)

    successes = 0
    latencies_ms: List[float] = []
    for index in range(registrations):
        # Hold the arrival grid: idle up to this UE's slot, then sync the
        # window-driven fault state (EPC pressure, AEX storms).
        target_ns = start_ns + int(index * gap_s * NS_PER_S)
        remaining_ns = target_ns - clock.now_ns
        if remaining_ns > 0:
            testbed.idle(remaining_ns / NS_PER_S)
        injector.tick()

        ue = testbed.add_subscriber()
        t0 = clock.now_ns
        outcome = testbed.register(ue, establish_session=False)
        latencies_ms.append((clock.now_ns - t0) / 1e6)
        successes += 1 if outcome.success else 0

    injector.tick()
    injector.disarm()

    # Recovery probe: with the plan disarmed and the circuit-breaker
    # cooldown (5 s) elapsed, the slice must serve again.  The scraper
    # stays installed so post-fault scrapes let burn-rate alerts resolve.
    testbed.idle(6.0)
    probe = testbed.register(testbed.add_subscriber(), establish_session=False)
    scraper.uninstall(testbed.host)

    slos = default_slos(testbed)
    alerts = SloEngine(slos).evaluate(scraper.tsdb)

    retries = sum(nf.client.retries for nf in nfs)
    timeouts = sum(nf.client.timeouts for nf in nfs)
    reconnects = sum(nf.client.reconnects for nf in nfs)
    breakers = [b for nf in nfs for b in nf.circuit_breakers.values()]
    row: Dict[str, object] = {
        "fault_factor": factor,
        "fault_windows": len(plan.windows),
        "attempts": registrations,
        "successes": successes,
        "success_rate": round(successes / registrations, 4) if registrations else 0.0,
        "retries": retries,
        "timeouts": timeouts,
        "reconnects": reconnects,
        "frames_dropped": injector.frames_dropped,
        "requests_refused": injector.requests_refused,
        "breaker_opens": sum(b.times_opened for b in breakers),
        "fast_failures": sum(b.fast_failures for b in breakers),
        "recovered": int(probe.success),
        "alerts_fired": len(alerts),
        "final_clock_ns": clock.now_ns,
    }
    row.update(_percentiles_ms(latencies_ms))
    row["latencies_ms"] = latencies_ms  # stripped before the report
    row["_monitor"] = {  # stripped before the report; kept by monitored_arm
        "cadence_s": cadence_s,
        "base_ns": start_ns,
        "scrapes": scraper.scrapes,
        "series": len(scraper.tsdb),
        "slos": [slo.describe() for slo in slos],
        "alerts": [alert.to_dict(start_ns) for alert in alerts],
        "fault_windows": [
            {
                "kind": window.kind.value,
                "target": window.target,
                "start_s": round(window.start_ns / NS_PER_S, 6),
                "end_s": round(window.end_ns / NS_PER_S, 6),
                "magnitude": round(window.magnitude, 6),
            }
            for window in plan.windows
        ],
        "alerts_in_fault_windows": _alerts_in_windows(alerts, plan, start_ns),
    }
    return row


def _alerts_in_windows(alerts, plan: FaultPlan, base_ns: int) -> int:
    """How many alerts fired while at least one fault window was active."""
    count = 0
    for alert in alerts:
        rel_ns = alert.fired_at_ns - base_ns
        if any(window.active(rel_ns) for window in plan.windows):
            count += 1
    return count


def monitored_arm(
    factor: float = 2.0,
    registrations: int = 120,
    horizon_s: float = 180.0,
    seed: int = 23,
    cadence_s: float = DEFAULT_CADENCE_S,
) -> Dict[str, object]:
    """One fully monitored fault arm with alert detail (``repro monitor``).

    Returns the availability row plus the monitoring payload: declared
    SLOs, every alert with simulated firing/resolve timestamps (relative
    seconds from the arm start), the injected fault windows, and how
    many alerts fired while a fault window was active.  Deterministic —
    byte-identical JSON for a fixed ``(seed, factor, cadence)``.
    """
    row = _run_arm(factor, registrations, horizon_s, seed, cadence_s=cadence_s)
    monitor = row.pop("_monitor")
    row.pop("latencies_ms")
    return {"row": row, "monitor": monitor}


def availability_experiment(
    registrations: int = 120,
    horizon_s: float = 180.0,
    seed: int = 23,
    factors: Sequence[float] = DEFAULT_FACTORS,
) -> ExperimentReport:
    """Sweep fault-rate multiples and report availability per arm."""
    report = ExperimentReport(
        experiment_id="availability",
        title=(
            f"registration availability under faults "
            f"({registrations} UEs over {horizon_s:.0f}s per arm)"
        ),
    )

    rows = [_run_arm(f, registrations, horizon_s, seed) for f in factors]
    by_factor = {row["fault_factor"]: row for row in rows}
    for row in rows:
        label = f"x{row['fault_factor']:g}"
        row.pop("_monitor")
        latencies = row.pop("latencies_ms")
        if latencies:
            report.series[f"latency_ms_{label}"] = summarize(
                f"registration latency {label}", latencies, "ms"
            )
        for key in ("success_rate", "p95_ms", "retries"):
            if row[key] is not None:
                report.derived[f"{key}_{label}"] = float(row[key])
        report.rows.append(row)

    control = by_factor[min(by_factor)]
    worst = by_factor[max(by_factor)]
    report.checks.append(
        BandCheck(
            name="fault-free success rate",
            measured=float(control["success_rate"]),
            low=1.0, high=1.0,
        )
    )
    report.checks.append(
        BandCheck(
            name="fault-free retries (resilience layer idle)",
            measured=float(control["retries"]),
            low=0.0, high=0.0,
        )
    )
    report.checks.append(
        BandCheck(
            name="max-fault arm loses some registrations",
            measured=float(worst["success_rate"]),
            low=0.05, high=0.98,
        )
    )
    if worst["p95_ms"] is not None and control["p95_ms"]:
        report.checks.append(
            BandCheck(
                name="max-fault arm tail latency inflation (p95 ratio)",
                measured=float(worst["p95_ms"]) / float(control["p95_ms"]),
                low=1.0, high=1e6,
            )
        )
    report.checks.append(
        BandCheck(
            name="every arm recovers once faults clear",
            measured=float(sum(row["recovered"] for row in rows)),
            low=float(len(rows)), high=float(len(rows)),
        )
    )
    report.notes = (
        f"seed={seed}; rates = factor x BASELINE_RATES "
        f"({BASELINE_RATES.total_per_min:.2g}/min total at 1x); "
        "paced arrivals share one fault timeline across arms"
    )
    return report
