"""Table reproductions: Table I, Table II, Table III, Table V."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.container.image import ContainerImage, ImageLayer
from repro.experiments.figures import (
    PAPER_LF_RATIO,
    PAPER_LT_RATIO,
    PAPER_R_RATIO,
    PAPER_RI_RS,
    figure9_functional_total_latency,
    figure10_response_time,
)
from repro.experiments.harness import (
    MODULE_NAMES,
    BandCheck,
    ExperimentReport,
    build_testbed,
)
from repro.experiments.session_setup import session_setup_experiment
from repro.gramine.gsc import build_gsc_image, sign_gsc_image
from repro.gramine.manifest import GramineManifest
from repro.hw.host import paper_testbed_host
from repro.paka.deploy import IsolationMode, PakaDeployment
from repro.paka.endpoints import EAMF_CONTRACT, EAUSF_CONTRACT, EUDM_CONTRACT
from repro.ran.gnbsim import GnbSim
from repro.security.keyissues import evaluate_key_issues
from repro.sgx.aesm import AesmDaemon
from repro.sgx.epc import EpcManager
from repro.gramine.pal import PlatformAdaptationLayer


def table1_enclave_io() -> ExperimentReport:
    """Table I: the enclave I/O contracts (validated statically)."""
    report = ExperimentReport(
        experiment_id="E9/TableI",
        title="5G-AKA functions and parameters loaded into SGX enclaves",
    )
    for contract in (EUDM_CONTRACT, EAUSF_CONTRACT, EAMF_CONTRACT):
        report.rows.append(
            {
                "module": contract.module,
                "inputs": ", ".join(f"{p.name}({p.nbytes})" for p in contract.inputs),
                "outputs": ", ".join(f"{p.name}({p.nbytes})" for p in contract.outputs),
                "executes": "/".join(contract.executes),
                "total_bytes": contract.total_bytes,
            }
        )
    report.checks.append(
        BandCheck("eUDM input bytes", EUDM_CONTRACT.input_bytes, 40, 40, paper_value=40)
    )
    report.checks.append(
        BandCheck("eUDM output bytes", EUDM_CONTRACT.output_bytes, 80, 80, paper_value=80)
    )
    report.checks.append(
        BandCheck("eAMF total bytes", EAMF_CONTRACT.total_bytes, 64, 64, paper_value=64)
    )
    report.notes = (
        "HXRES* is 16 bytes (TS 33.501 A.5) and SNN a ~32-byte string; the "
        "paper's Table I lists 8 and 2 — see DESIGN.md §2"
    )
    return report


def table2_overheads(registrations: int = 120, seed: int = 20) -> ExperimentReport:
    """Table II: the consolidated overhead factors per module."""
    fig9 = figure9_functional_total_latency(registrations=registrations, seed=seed)
    fig10 = figure10_response_time(registrations=registrations, seed=seed + 1)
    setup = session_setup_experiment(registrations=max(20, registrations // 4), seed=seed + 2)

    report = ExperimentReport(
        experiment_id="E3+E4+E6/TableII",
        title="SGX overhead across the isolated modules",
    )
    for name in MODULE_NAMES:
        report.rows.append(
            {
                "module": name,
                "L_F": round(fig9.derived[f"{name}_LF_ratio"], 2),
                "L_T": round(fig9.derived[f"{name}_LT_ratio"], 2),
                "R_S^SGX/R^C": round(fig10.derived[f"{name}_R_ratio"], 2),
                "R_I^SGX/R_S^SGX": round(fig10.derived[f"{name}_Ri_over_Rs"], 2),
                "paper_L_F": PAPER_LF_RATIO[name],
                "paper_L_T": PAPER_LT_RATIO[name],
                "paper_R": PAPER_R_RATIO[name],
                "paper_Ri_Rs": PAPER_RI_RS[name],
            }
        )
    report.checks.extend(fig9.checks)
    report.checks.extend(fig10.checks)
    report.derived.update(
        {
            "session_setup_ms": setup.derived["sgx_setup_ms"],
            "sgx_added_ms": setup.derived["sgx_added_ms"],
            "sgx_share_percent": setup.derived["sgx_share_percent"],
        }
    )
    report.checks.extend(setup.checks)
    return report


# Table III measurement window: the slice sits idle for this long in
# total while the campaign runs (servers block in epoll between UEs).
TABLE3_IDLE_WINDOW_S = 100.0


def table3_sgx_stats(
    max_ues: int = 3, iterations: int = 5, seed: int = 30
) -> ExperimentReport:
    """Table III: EENTER/EEXIT/AEX per number of registered UEs.

    For each UE count 1..``max_ues``, run ``iterations`` fresh campaigns
    and average the counters; also measure the empty-workload enclave.
    """
    report = ExperimentReport(
        experiment_id="E5/TableIII",
        title="SGX operational statistics of the P-AKA modules",
    )
    # Per-registration deltas split as in the paper's methodology: the
    # "difference of subsequent registrations" excludes each campaign's
    # first registration, which additionally carries the one-time lazy
    # warmup burst (the same burst Fig 10b measures as R_initial).
    subsequent_deltas: Dict[str, List[float]] = {name: [] for name in MODULE_NAMES}
    first_deltas: Dict[str, List[float]] = {name: [] for name in MODULE_NAMES}
    aex_by_count: Dict[str, List[float]] = {name: [] for name in MODULE_NAMES}

    for ue_count in range(1, max_ues + 1):
        totals = {name: {"eenters": 0.0, "eexits": 0.0, "aexs": 0.0} for name in MODULE_NAMES}
        for iteration in range(iterations):
            testbed = build_testbed(
                IsolationMode.SGX, seed=seed + 1000 * ue_count + iteration
            )
            sim = GnbSim(testbed)
            idle_slice = TABLE3_IDLE_WINDOW_S / (ue_count + 1)
            testbed.idle(idle_slice)
            campaign = sim.register_ues(
                ue_count,
                establish_session=False,
                inter_registration_idle_s=idle_slice,
            )
            for name in MODULE_NAMES:
                stats = campaign.final_stats[name]
                totals[name]["eenters"] += stats.eenters
                totals[name]["eexits"] += stats.eexits
                totals[name]["aexs"] += stats.aexs
                deltas = campaign.per_registration_stats[name]
                if deltas:
                    first_deltas[name].append(deltas[0].eenters)
                for delta in deltas[1:]:
                    subsequent_deltas[name].append(delta.eenters)
        for name in MODULE_NAMES:
            row = {
                "module": name,
                "ues": ue_count,
                "EENTERs": round(totals[name]["eenters"] / iterations),
                "EEXITs": round(totals[name]["eexits"] / iterations),
                "AEXs": round(totals[name]["aexs"] / iterations),
            }
            aex_by_count[name].append(totals[name]["aexs"] / iterations)
            report.rows.append(row)

    # Empty workload: a GSC enclave with no server, idling over the same
    # window with a single active thread.
    empty = _empty_workload_stats(seed=seed, window_s=TABLE3_IDLE_WINDOW_S)
    report.rows.append(
        {
            "module": "empty workload",
            "ues": 0,
            "EENTERs": empty["eenters"],
            "EEXITs": empty["eexits"],
            "AEXs": empty["aexs"],
        }
    )

    for name in MODULE_NAMES:
        deltas = subsequent_deltas[name]
        if not deltas:
            raise ValueError("need max_ues >= 2 for subsequent-registration deltas")
        mean_delta = sum(deltas) / len(deltas)
        report.derived[f"{name}_eenter_per_registration"] = mean_delta
        report.derived[f"{name}_first_registration_eenters"] = (
            sum(first_deltas[name]) / len(first_deltas[name])
        )
        report.checks.append(
            BandCheck(f"{name} EENTERs per registration", mean_delta, 75, 105,
                      paper_value=90)
        )
        aexs = aex_by_count[name]
        spread = (max(aexs) - min(aexs)) / max(aexs)
        report.checks.append(
            BandCheck(f"{name} AEX independent of UE count (rel. spread)",
                      spread, 0.0, 0.02)
        )
        report.checks.append(
            BandCheck(f"{name} AEX magnitude", aexs[0], 120_000, 160_000,
                      paper_value=140_370)
        )
    report.checks.append(
        BandCheck("empty workload AEXs", empty["aexs"], 40_000, 60_000,
                  paper_value=49_674)
    )
    report.checks.append(
        BandCheck("empty workload EENTERs", empty["eenters"], 500, 1_000,
                  paper_value=762)
    )
    # The paper: Pistache alone costs ≈650 EENTERs at startup — the
    # difference between a module's baseline and the empty workload.
    return report


def _empty_workload_stats(seed: int, window_s: float) -> Dict[str, int]:
    """Load a no-op GSC enclave and let it idle: Table III's last row."""
    host = paper_testbed_host(seed=seed)
    epc = EpcManager(host.total_epc_bytes, host.cpu, host.rng)
    aesmd = AesmDaemon("platform-empty")
    pal = PlatformAdaptationLayer(host, epc, aesmd)

    image = ContainerImage(
        repository="scratch/empty-workload",
        tag="v1",
        layers=[ImageLayer("base", opaque_bytes=720 * 1024**2)],
        entrypoint="/bin/true",
    )
    manifest = GramineManifest(
        entrypoint="/bin/true", enclave_size="512M", max_threads=4,
        preheat_enclave=True, debug=True, enable_stats=True,
    )
    gsc = sign_gsc_image(build_gsc_image(image, manifest), b"empty-signer")
    enclave, _ = pal.load_enclave(gsc.build_info)

    from repro.gramine.libos import GramineEnclaveRuntime

    runtime = GramineEnclaveRuntime("empty", host, enclave, gsc.manifest)
    runtime.start()
    # An empty main blocks in pause(): only one thread attracts interrupts.
    enclave.run_idle(window_s, active_threads=1)
    return {
        "eenters": enclave.stats.eenters,
        "eexits": enclave.stats.eexits,
        "aexs": enclave.stats.aexs,
    }


def table5_key_issues(seed: int = 50) -> ExperimentReport:
    """Table V: execute the KI catalogue against both deployments."""
    container = build_testbed(IsolationMode.CONTAINER, seed=seed)
    hmee = build_testbed(IsolationMode.SGX, seed=seed)
    verdicts = evaluate_key_issues(container, hmee)
    report = ExperimentReport(
        experiment_id="E8/TableV", title="Key Issues summary (TR 33.848)"
    )
    for verdict in verdicts:
        report.rows.append(verdict.row())
    effective = sum(1 for v in verdicts if v.hmee_effective)
    report.derived["kis_mitigated"] = float(effective)
    report.checks.append(
        BandCheck("all 13 KIs mitigated by HMEE", effective, 13, 13, paper_value=13)
    )
    report.checks.append(
        BandCheck(
            "attacks succeed against plain containers",
            sum(1 for v in verdicts if v.attack_on_container.succeeded),
            13,
            13,
        )
    )
    return report
