"""Shared experiment plumbing: reports, band checks, testbed builders."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.stats import SeriesSummary
from repro.paka.deploy import IsolationMode
from repro.testbed import Testbed, TestbedConfig

MODULE_NAMES = ("eudm", "eausf", "eamf")

# The module AKA endpoints, keyed by module short name.
from repro.net.sbi import EAMF_DERIVE_KAMF, EAUSF_DERIVE_SE_AV, EUDM_GENERATE_AV

MODULE_AKA_PATH = {
    "eudm": EUDM_GENERATE_AV,
    "eausf": EAUSF_DERIVE_SE_AV,
    "eamf": EAMF_DERIVE_KAMF,
}


@dataclass
class BandCheck:
    """One shape assertion: a measured value against the paper's band."""

    name: str
    measured: float
    low: float
    high: float
    paper_value: Optional[float] = None

    @property
    def ok(self) -> bool:
        return self.low <= self.measured <= self.high

    def format(self) -> str:
        status = "OK " if self.ok else "OUT"
        paper = f" (paper: {self.paper_value})" if self.paper_value is not None else ""
        return (
            f"[{status}] {self.name}: {self.measured:.3g} "
            f"in [{self.low:.3g}, {self.high:.3g}]{paper}"
        )


@dataclass
class ExperimentReport:
    """Everything one experiment produced."""

    experiment_id: str
    title: str
    series: Dict[str, SeriesSummary] = field(default_factory=dict)
    derived: Dict[str, float] = field(default_factory=dict)
    checks: List[BandCheck] = field(default_factory=list)
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: str = ""

    @property
    def all_checks_ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def failed_checks(self) -> List[BandCheck]:
        return [check for check in self.checks if not check.ok]

    def format(self) -> str:
        lines = [f"=== {self.experiment_id}: {self.title} ==="]
        for summary in self.series.values():
            lines.append("  " + summary.format())
        if self.rows:
            lines.append("  rows:")
            for row in self.rows:
                lines.append(
                    "    " + "  ".join(f"{k}={v}" for k, v in row.items())
                )
        for key, value in self.derived.items():
            lines.append(f"  {key} = {value:.4g}")
        for check in self.checks:
            lines.append("  " + check.format())
        if self.notes:
            lines.append(f"  note: {self.notes}")
        return "\n".join(lines)


def build_testbed(
    isolation: Optional[IsolationMode],
    seed: int = 0,
    **config_kwargs,
) -> Testbed:
    """Build a testbed for one experiment arm."""
    return Testbed.build(
        TestbedConfig(seed=seed, isolation=isolation, **config_kwargs)
    )


def warmed_testbed(
    isolation: Optional[IsolationMode],
    seed: int = 0,
    warmup_registrations: int = 2,
    **config_kwargs,
) -> Testbed:
    """A testbed already past the first-request warmup (stable regime)."""
    testbed = build_testbed(isolation, seed=seed, **config_kwargs)
    for _ in range(warmup_registrations):
        ue = testbed.add_subscriber()
        outcome = testbed.register(ue, establish_session=False)
        if not outcome.success:
            raise RuntimeError(f"warm-up failed: {outcome.failure_cause}")
    return testbed


def collect_module_latencies(
    testbed: Testbed, registrations: int, skip: int = 0
) -> Dict[str, Dict[str, List[float]]]:
    """Register ``registrations`` UEs and collect per-module L_F/L_T/R.

    Returns ``{module: {"lf_us": [...], "lt_us": [...], "r_us": [...]}}``
    with the first ``skip`` samples dropped.
    """
    assert testbed.paka is not None, "experiment requires deployed modules"
    client_of = {"eudm": testbed.udm, "eausf": testbed.ausf, "eamf": testbed.amf}
    before_counts = {
        name: len(
            client_of[name].client.response_times_by_server.get(
                testbed.paka.modules[name].server.name, []
            )
        )
        for name in testbed.paka.modules
    }
    before_lf = {
        name: len(
            testbed.paka.modules[name].server.lf_us_by_path.get(
                MODULE_AKA_PATH[name], []
            )
        )
        for name in testbed.paka.modules
    }

    for _ in range(registrations):
        ue = testbed.add_subscriber()
        outcome = testbed.register(ue, establish_session=False)
        if not outcome.success:
            raise RuntimeError(f"registration failed: {outcome.failure_cause}")

    collected: Dict[str, Dict[str, List[float]]] = {}
    for name, module in testbed.paka.modules.items():
        path = MODULE_AKA_PATH[name]
        server = module.server
        vnf = client_of[name]
        r_series = vnf.client.response_times_by_server.get(server.name, [])
        collected[name] = {
            "lf_us": server.lf_us_by_path.get(path, [])[before_lf[name] + skip :],
            "lt_us": server.lt_us_by_path.get(path, [])[before_lf[name] + skip :],
            "r_us": r_series[before_counts[name] + skip :],
        }
    return collected
