"""JSON export of experiment reports.

Benchmarks write human-readable reports; this module serialises the same
content as JSON so plots or regression dashboards can consume the
reproduction's output without scraping text.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.experiments.harness import ExperimentReport


def report_to_dict(report: ExperimentReport) -> Dict[str, Any]:
    """Full, loss-free dictionary form of a report."""
    return {
        "experiment_id": report.experiment_id,
        "title": report.title,
        "series": {
            key: {
                "unit": s.unit,
                "n": s.n,
                "mean": s.mean,
                "median": s.median,
                "p25": s.p25,
                "p75": s.p75,
                "stdev": s.stdev,
                "min": s.minimum,
                "max": s.maximum,
            }
            for key, s in report.series.items()
        },
        "derived": dict(report.derived),
        "rows": [dict(row) for row in report.rows],
        "checks": [
            {
                "name": c.name,
                "measured": c.measured,
                "low": c.low,
                "high": c.high,
                "paper_value": c.paper_value,
                "ok": c.ok,
            }
            for c in report.checks
        ],
        "all_checks_ok": report.all_checks_ok,
        "notes": report.notes,
    }


def report_to_json(report: ExperimentReport, indent: int = 2) -> str:
    return json.dumps(report_to_dict(report), indent=indent, sort_keys=True)


def write_report_json(report: ExperimentReport, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(report_to_json(report) + "\n")
