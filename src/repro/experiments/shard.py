"""E-SCALE: partitioned million-UE capacity campaigns.

One warmed SGX slice sustains a few hundred simulated registrations per
second (E-CAP); reaching a million UEs in one process — one simulated
clock — would serialise everything behind a single Python loop.  This
driver instead *partitions* the subscriber population with the very same
consistent-hash ring the sharded control plane uses at runtime
(:func:`repro.fivegc.routing.supi_ring`): each shard's UEs are registered
against that shard's own seeded sub-testbed in a worker process, and the
per-shard results — simulated clocks, Table III enclave counters, span
decompositions, scraped Tsdb series — are merged deterministically into
one report.

Determinism contract:

* the UE→shard assignment is a pure function of ``(population, shards,
  ring seed)`` — keyed blake2b, no process state, no ``PYTHONHASHSEED``;
* each shard arm is a pure function of its kwargs (its own testbed, its
  own clock, its own RNG service), so the merge sees identical inputs
  whether arms ran inline, across 4 workers, or on a reused pool;
* the merge itself walks shards in index order.

Hence **the merged report is byte-identical regardless of ``--jobs``**,
and with ``shards=1`` the single arm *is* the E-CAP campaign loop — same
seed, same warmup, same registration sequence — so its simulated clock
reproduces :func:`repro.experiments.capacity.capacity_campaign`
bit-for-bit.

Merge semantics (what "one report" means for partitioned simulated time):

* ``simulated_s`` / ``simulated_regs_per_s``: shards are independent
  slices running *concurrently* in simulated time, so campaign makespan
  is the **max** over shard clocks and throughput is total UEs over it;
* ``simulated_ms_per_reg``: per-registration serial cost — **sum** of
  shard clocks over total UEs (comparable with E-CAP's 40–70 ms band);
* Table III EENTER counters: **summed** over shards, then normalised
  per registration (the paper's ≈90/module/registration must survive
  sharding unchanged);
* span decomposition: per-module component means, **weighted by shard
  population**;
* Tsdb series: per-shard dumps absorbed into one store with a ``shard``
  label added, so same-named series stay distinct and sorted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.experiments.capacity import EVENT_LOG_CAPACITY
from repro.experiments.harness import (
    MODULE_NAMES,
    BandCheck,
    ExperimentReport,
    warmed_testbed,
)
from repro.experiments.parallel import Arm, run_arms
from repro.fivegc.nf_base import CONTROL_PLANE_RING_SEED
from repro.fivegc.routing import shard_labels, supi_ring
from repro.obs.analytics import slowest_traces_digest
from repro.obs.trace import Tracer, TraceStore
from repro.obs.tsdb import Tsdb
from repro.paka.deploy import IsolationMode

# warmed_testbed's two warmup registrations consume auto-assigned msins
# 1 and 2; the campaign population starts where E-CAP's auto counter
# would resume, so a 1-shard partitioned run replays the exact E-CAP
# registration sequence.
POPULATION_FIRST_MSIN = 3

# Seed stride between shard sub-testbeds.  Shard 0 keeps the base seed
# (that arm *is* the unsharded campaign); siblings get well-separated
# named-stream universes.  A prime, so strides never collide across
# (seed, shard) pairs of one campaign family.
SHARD_SEED_STRIDE = 100_003


def shard_seed(seed: int, shard_index: int) -> int:
    """The sub-testbed seed for ``shard_index`` (base seed for shard 0)."""
    return seed + SHARD_SEED_STRIDE * shard_index


def population_msins(ues: int, first: int = POPULATION_FIRST_MSIN) -> List[str]:
    """The campaign population: msins ``first .. first + ues - 1``."""
    return [f"{index:010d}" for index in range(first, first + ues)]


def assign_shards(
    msins: List[str],
    shards: int,
    mcc: str = "001",
    mnc: str = "01",
    ring_seed: int = CONTROL_PLANE_RING_SEED,
) -> Dict[str, List[str]]:
    """Partition ``msins`` by the deployment's SUPI→shard ring.

    Returns ``{shard_label: [msin, ...]}`` with every shard present (a
    shard can legitimately be empty at tiny populations) and per-shard
    order preserved from the population order.
    """
    ring = supi_ring(shards, seed=ring_seed)
    buckets: Dict[str, List[str]] = {label: [] for label in shard_labels(shards)}
    for msin in msins:
        buckets[ring.pick(f"imsi-{mcc}{mnc}{msin}")].append(msin)
    return buckets


def run_shard(
    shard_index: int,
    msins: List[str],
    seed: int,
    event_log_capacity: int = EVENT_LOG_CAPACITY,
    monitor_cadence_s: Optional[float] = None,
    tsdb_series_cap: Optional[int] = 512,
    trace_sample: Optional[int] = None,
    trace_store_cap: int = 512,
) -> Dict[str, Any]:
    """One shard arm: register this shard's UEs on its own sub-testbed.

    Module-level and plain-data in/out, so it fans out over worker
    processes.  The measured window is exactly E-CAP's: clock read after
    warmup, registrations back-to-back, clock read again — the optional
    scraper is pull-only and the trace for the span decomposition runs
    *after* the window closes, so neither perturbs the measured clock.

    ``trace_sample`` arms campaign-wide distributed tracing: every
    registration runs under a trace context (ids seeded from this
    shard's sub-testbed seed) with healthy traces head-sampled 1/N into
    a bounded :class:`TraceStore`.  Tracing never advances the clock, so
    the measured window is byte-identical to an untraced run.
    """
    from repro.obs.scrape import Scraper

    testbed = warmed_testbed(
        IsolationMode.SGX,
        seed=shard_seed(seed, shard_index),
        event_log_capacity=event_log_capacity,
    )
    eenters_before = {
        name: testbed.paka.modules[name].runtime.sgx_stats.eenters
        for name in MODULE_NAMES
    }
    scraper = None
    if monitor_cadence_s is not None:
        scraper = Scraper.for_testbed(
            testbed, cadence_s=monitor_cadence_s, series_cap=tsdb_series_cap
        ).install(testbed.host)
    campaign_tracer = None
    if trace_sample is not None:
        campaign_tracer = Tracer(
            testbed.host.clock,
            trace_seed=shard_seed(seed, shard_index),
            store=TraceStore(cap=trace_store_cap, sample_every=trace_sample),
        )
        testbed.host.tracer = campaign_tracer
    clock_before_ns = testbed.host.clock.now_ns

    successes = 0
    for msin in msins:
        ue = testbed.add_subscriber(msin)
        outcome = testbed.register(ue, establish_session=False)
        successes += 1 if outcome.success else 0

    simulated_ns = testbed.host.clock.now_ns - clock_before_ns
    if scraper is not None:
        scraper.scrape()  # closing sample at the campaign edge
        scraper.uninstall(testbed.host)
    if campaign_tracer is not None:
        # Uninstall before the one-shot span decomposition below, which
        # insists on owning the host tracer.
        testbed.host.tracer = None
    eenters = {
        name: testbed.paka.modules[name].runtime.sgx_stats.eenters
        - eenters_before[name]
        for name in MODULE_NAMES
    }
    # Latency summary before the trace below appends its own sample.
    eudm_lt_mean_us = testbed.paka.modules["eudm"].server.lt_us.stats.mean

    # Span decomposition for this shard (one traced registration, after
    # the measured window).
    trace = testbed.trace_registration(establish_session=False)
    breakdown = {
        module: {key: float(value) for key, value in sorted(parts.items())}
        for module, parts in sorted(trace.breakdown.items())
    }

    result: Dict[str, Any] = {
        "shard": shard_index,
        "ues": len(msins),
        "successes": successes,
        "simulated_ns": simulated_ns,
        "eudm_lt_mean_us": eudm_lt_mean_us,
        "eenters": eenters,
        "breakdown": breakdown,
        "tsdb": scraper.tsdb.to_dict() if scraper is not None else None,
    }
    if campaign_tracer is not None:
        # Trace store dump plus the module maps the analytics layer
        # needs to decompose stored trees (identical across shards —
        # every sub-testbed names its servers/runtimes the same way).
        result["trace_store"] = campaign_tracer.store.to_dict()
        result["module_servers"] = {
            name: module.server.name
            for name, module in sorted(testbed.paka.modules.items())
        }
        result["module_runtimes"] = {
            name: module.runtime.name
            for name, module in sorted(testbed.paka.modules.items())
        }
    return result


@dataclass
class ShardedCampaignResult:
    """The merged campaign: report plus the raw per-shard results."""

    report: ExperimentReport
    shard_results: List[Dict[str, Any]] = field(default_factory=list)
    tsdb: Optional[Tsdb] = None
    trace_store: Optional[TraceStore] = None
    traces_digest: Optional[Dict[str, Any]] = None


def _human_count(ues: int) -> str:
    if ues >= 1_000_000 and ues % 1_000_000 == 0:
        return f"{ues // 1_000_000}m"
    if ues >= 1_000 and ues % 1_000 == 0:
        return f"{ues // 1_000}k"
    return str(ues)


def sharded_campaign(
    ues: int = 100_000,
    shards: int = 4,
    jobs: int = 1,
    seed: int = 7,
    event_log_capacity: int = EVENT_LOG_CAPACITY,
    monitor_cadence_s: Optional[float] = None,
    pool: Optional[Any] = None,
    trace_sample: Optional[int] = None,
    trace_store_cap: int = 512,
) -> ShardedCampaignResult:
    """Partitioned mass-registration campaign over ``shards`` slices.

    ``jobs``/``pool`` follow :func:`repro.experiments.parallel.run_arms`
    (inline, fresh executor, or caller-owned executor) and **cannot**
    change a byte of the merged report — only how long the host waits.
    ``trace_sample`` arms per-shard distributed tracing (see
    :func:`run_shard`); the merged slowest-traces digest is equally
    ``--jobs``-independent.
    """
    if ues < 1:
        raise ValueError(f"ues must be >= 1, got {ues}")
    buckets = assign_shards(population_msins(ues), shards)
    arms = [
        Arm(
            key=label,
            fn=run_shard,
            kwargs={
                "shard_index": index,
                "msins": buckets[label],
                "seed": seed,
                "event_log_capacity": event_log_capacity,
                "monitor_cadence_s": monitor_cadence_s,
                "trace_sample": trace_sample,
                "trace_store_cap": trace_store_cap,
            },
        )
        for index, label in enumerate(shard_labels(shards))
    ]
    results = run_arms(arms, jobs=jobs, pool=pool)
    return merge_shard_results(
        list(results.values()), ues=ues, shards=shards, seed=seed
    )


def merge_shard_results(
    shard_results: List[Dict[str, Any]],
    ues: int,
    shards: int,
    seed: int,
) -> ShardedCampaignResult:
    """Deterministic merge of per-shard results into one report."""
    ordered = sorted(shard_results, key=lambda r: r["shard"])
    successes = sum(r["successes"] for r in ordered)
    total_ns = sum(r["simulated_ns"] for r in ordered)
    makespan_ns = max(r["simulated_ns"] for r in ordered)
    makespan_s = makespan_ns / 1e9

    report = ExperimentReport(
        experiment_id=f"capacity_{_human_count(ues)}_x{shards}",
        title=(
            f"sharded mass registration ({ues} UEs over {shards} "
            f"control-plane shards)"
        ),
    )
    report.derived["ues"] = float(ues)
    report.derived["shards"] = float(shards)
    report.derived["success_rate"] = successes / ues
    report.derived["simulated_s"] = round(makespan_s, 6)
    report.derived["simulated_regs_per_s"] = round(ues / makespan_s, 4)
    report.derived["simulated_ms_per_reg"] = round(total_ns / 1e6 / ues, 4)
    # Population-weighted mean of per-shard eUDM total-latency means.
    report.derived["eudm_lt_mean_us"] = round(
        sum(r["eudm_lt_mean_us"] * r["ues"] for r in ordered if r["ues"])
        / max(1, sum(r["ues"] for r in ordered if r["ues"])),
        4,
    )

    for name in MODULE_NAMES:
        per_reg = sum(r["eenters"][name] for r in ordered) / ues
        report.derived[f"{name}_eenters_per_reg"] = round(per_reg, 4)
        report.checks.append(
            BandCheck(
                name=f"{name} EENTERs per registration",
                measured=per_reg,
                low=80,
                high=95,
                paper_value=90,
            )
        )

    # Per-shard rows (the partition itself is part of the result).
    for r in ordered:
        shard_s = r["simulated_ns"] / 1e9
        report.rows.append(
            {
                "shard": r["shard"],
                "ues": r["ues"],
                "successes": r["successes"],
                "simulated_s": round(shard_s, 6),
                "regs_per_s": round(r["ues"] / shard_s, 4) if shard_s else 0.0,
            }
        )

    # Merged span decomposition: per-module component means weighted by
    # shard population (sorted keys for deterministic row layout).
    modules = sorted({m for r in ordered for m in r["breakdown"]})
    weight_total = sum(r["ues"] for r in ordered if r["ues"]) or 1
    for module in modules:
        merged_row: Dict[str, object] = {"module": module}
        keys = sorted(
            {k for r in ordered for k in r["breakdown"].get(module, {})}
        )
        for key in keys:
            weighted = sum(
                r["breakdown"].get(module, {}).get(key, 0.0) * r["ues"]
                for r in ordered
                if r["ues"]
            )
            merged_row[key] = round(weighted / weight_total, 4)
        report.rows.append(merged_row)

    report.checks.append(
        BandCheck(
            name="registration success rate",
            measured=successes / ues,
            low=1.0,
            high=1.0,
        )
    )
    report.checks.append(
        BandCheck(
            name="simulated ms per registration (stable regime)",
            measured=total_ns / 1e6 / ues,
            low=40.0,
            high=70.0,
        )
    )
    report.notes = (
        f"partitioned campaign, seed {seed}: shards run concurrently in "
        "simulated time (makespan = max shard clock); report bytes are "
        "independent of --jobs"
    )

    merged_tsdb: Optional[Tsdb] = None
    if any(r.get("tsdb") for r in ordered):
        merged_tsdb = Tsdb()
        for r in ordered:
            if r.get("tsdb"):
                merged_tsdb.absorb(r["tsdb"], shard=str(r["shard"]))
        report.derived["tsdb_series"] = float(len(merged_tsdb))
        report.derived["tsdb_scrapes"] = float(len(merged_tsdb.scrape_times))

    # Cross-shard trace merge: absorb per-shard stores in index order
    # (records gain a ``shard`` field) and distill the slowest-traces
    # digest.  Both are pure functions of the shard results, hence
    # byte-identical however many jobs produced them.
    merged_store: Optional[TraceStore] = None
    traces_digest: Optional[Dict[str, Any]] = None
    if any(r.get("trace_store") for r in ordered):
        merged_store = TraceStore(cap=None)
        for r in ordered:
            if r.get("trace_store"):
                merged_store.absorb(r["trace_store"], shard=str(r["shard"]))
        maps = next(r for r in ordered if r.get("module_servers"))
        traces_digest = slowest_traces_digest(
            merged_store.to_dict(),
            top=10,
            module_servers=maps["module_servers"],
            module_runtimes=maps["module_runtimes"],
        )
        report.derived["traces_kept"] = float(len(merged_store))
        report.derived["traces_seen"] = float(merged_store.seen)

    return ShardedCampaignResult(
        report=report, shard_results=ordered, tsdb=merged_tsdb,
        trace_store=merged_store, traces_digest=traces_digest,
    )
