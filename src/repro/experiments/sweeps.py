"""Fig 8: effect of enclave thread count and EPC size on the eUDM module."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.experiments.harness import (
    BandCheck,
    ExperimentReport,
    collect_module_latencies,
    warmed_testbed,
)
from repro.experiments.parallel import Arm, run_arms
from repro.experiments.stats import summarize
from repro.paka.deploy import IsolationMode

# The paper's sweep points (threads, enclave size) plus the non-SGX bar.
SWEEP_POINTS: Tuple[Tuple[int, str], ...] = ((4, "512M"), (10, "512M"), (50, "8G"))


def _collect_sweep_arm(
    registrations: int,
    seed: int,
    threads: "Optional[int]" = None,
    size: "Optional[str]" = None,
) -> Dict[str, List[float]]:
    """One Fig 8 sweep arm (or, with no threads/size, the non-SGX bar).

    Only the eUDM enclave is resized, as in the paper's sweep; the other
    two modules keep the 512M default.
    """
    if threads is None:
        testbed = warmed_testbed(IsolationMode.CONTAINER, seed=seed)
    else:
        testbed = warmed_testbed(
            IsolationMode.SGX,
            seed=seed,
            max_threads=threads,
            enclave_size_overrides={"eudm": size},
        )
    return collect_module_latencies(testbed, registrations, skip=1)["eudm"]


def figure8_threads_epc_sweep(
    registrations: int = 100, seed: int = 80, jobs: int = 1
) -> ExperimentReport:
    """Fig 8: vary sgx.max_threads and the EPC size; measure eUDM L_F/L_T.

    Paper findings reproduced as checks: more threads change nothing (the
    module is single-threaded; extra TCS slots sit idle), 512 MB → 2 GB
    changes nothing, 8 GB is slightly *slower* with a wider interquartile
    range (paging pressure), and non-SGX is fastest.  The four arms are
    independent testbeds; ``jobs > 1`` collects them in parallel.
    """
    report = ExperimentReport(
        experiment_id="E2/Fig8",
        title="Impact of enclave threads and EPC size (eUDM P-AKA)",
    )
    lt_means: Dict[str, float] = {}
    lt_iqrs: Dict[str, float] = {}
    arms = [
        Arm(
            key=f"threads={threads},epc={size}",
            fn=_collect_sweep_arm,
            kwargs={
                "registrations": registrations,
                "seed": seed,
                "threads": threads,
                "size": size,
            },
        )
        for threads, size in SWEEP_POINTS
    ]
    arms.append(
        Arm(
            key="non-sgx",
            fn=_collect_sweep_arm,
            kwargs={"registrations": registrations, "seed": seed},
        )
    )
    arm_data = run_arms(arms, jobs=jobs)
    for threads, size in SWEEP_POINTS:
        label = f"threads={threads},epc={size}"
        data = arm_data[label]
        report.series[f"{label}/LF"] = summarize(f"{label} L_F", data["lf_us"], "us")
        report.series[f"{label}/LT"] = summarize(f"{label} L_T", data["lt_us"], "us")
        lt_means[label] = report.series[f"{label}/LT"].mean
        lt_iqrs[label] = report.series[f"{label}/LT"].iqr

    data = arm_data["non-sgx"]
    report.series["non-sgx/LF"] = summarize("non-SGX L_F", data["lf_us"], "us")
    report.series["non-sgx/LT"] = summarize("non-SGX L_T", data["lt_us"], "us")

    base = "threads=4,epc=512M"
    more_threads = "threads=10,epc=512M"
    big_epc = "threads=50,epc=8G"

    thread_shift = abs(lt_means[more_threads] - lt_means[base]) / lt_means[base]
    report.derived["thread_count_relative_shift"] = thread_shift
    report.checks.append(
        BandCheck("thread count has no effect (rel. shift)", thread_shift, 0.0, 0.03)
    )
    epc_penalty = (lt_means[big_epc] - lt_means[base]) / lt_means[base]
    report.derived["epc_8g_relative_penalty"] = epc_penalty
    report.checks.append(
        BandCheck("8G EPC slightly slower (rel. penalty)", epc_penalty, 0.005, 0.15)
    )
    iqr_widening = lt_iqrs[big_epc] / max(lt_iqrs[base], 1e-9)
    report.derived["epc_8g_iqr_widening"] = iqr_widening
    report.checks.append(
        BandCheck("8G EPC wider IQR (ratio)", iqr_widening, 1.2, 20.0)
    )
    report.checks.append(
        BandCheck(
            "non-SGX fastest (SGX/non-SGX L_T)",
            lt_means[base] / report.series["non-sgx/LT"].mean,
            1.5,
            2.6,
        )
    )
    return report


def undersized_epc_experiment(
    registrations: int = 60, seed: int = 81
) -> ExperimentReport:
    """Below 512 MB the paper reports *inconsistent behaviour*; we
    reproduce it as thrashing: heavy per-request jitter and page churn."""
    report = ExperimentReport(
        experiment_id="E2b",
        title="Undersized EPC (256M): the inconsistent-behaviour regime",
    )
    healthy = warmed_testbed(IsolationMode.SGX, seed=seed)
    degraded = warmed_testbed(
        IsolationMode.SGX, seed=seed, enclave_size_overrides={"eudm": "256M"}
    )
    healthy_data = collect_module_latencies(healthy, registrations, skip=1)["eudm"]
    degraded_data = collect_module_latencies(degraded, registrations, skip=1)["eudm"]
    report.series["512M/LT"] = summarize("512M L_T", healthy_data["lt_us"], "us")
    report.series["256M/LT"] = summarize("256M L_T", degraded_data["lt_us"], "us")
    ratio_sd = report.series["256M/LT"].stdev / max(report.series["512M/LT"].stdev, 1e-9)
    report.derived["stdev_inflation"] = ratio_sd
    report.checks.append(
        BandCheck("undersized EPC inflates variance (sd ratio)", ratio_sd, 2.0, 1e6)
    )
    report.checks.append(
        BandCheck(
            "undersized EPC slower (mean ratio)",
            report.series["256M/LT"].mean / report.series["512M/LT"].mean,
            1.05,
            100.0,
        )
    )
    faults = degraded.paka.enclaves["eudm"].stats.page_evictions
    report.derived["eviction_count_256M"] = float(faults)
    return report
