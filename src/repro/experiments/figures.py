"""Figure reproductions: Fig 7, Fig 9, Fig 10, Fig 11."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.container.engine import ContainerEngine
from repro.experiments.harness import (
    MODULE_NAMES,
    BandCheck,
    ExperimentReport,
    build_testbed,
    collect_module_latencies,
    warmed_testbed,
)
from repro.experiments.parallel import Arm, run_arms
from repro.experiments.stats import outlier_fraction, summarize
from repro.hw.host import paper_testbed_host
from repro.paka.deploy import IsolationMode, PakaDeployment
from repro.ran.sdr import OtaTestbed
from repro.ran.ue import CommercialUE, ONEPLUS_8_PROFILE

# Paper reference values (Table II and the figures' visual bands).
PAPER_LF_RATIO = {"eudm": 1.2, "eausf": 1.3, "eamf": 1.5}
PAPER_LT_RATIO = {"eudm": 1.86, "eausf": 2.15, "eamf": 2.43}
PAPER_R_RATIO = {"eudm": 2.2, "eausf": 2.5, "eamf": 2.9}
PAPER_RI_RS = {"eudm": 19.04, "eausf": 18.37, "eamf": 21.42}


def figure7_enclave_load_time(iterations: int = 30, seed: int = 70) -> ExperimentReport:
    """Fig 7: time for each P-AKA module enclave to become operational.

    Deploys the GSC-shielded slice ``iterations`` times and summarises the
    per-module enclave load time in minutes.  Paper: ≈0.955–0.99 min,
    eUDM slowest.
    """
    host = paper_testbed_host(seed=seed)
    engine = ContainerEngine(host)
    network = engine.create_network("oai-bridge")
    deployment = PakaDeployment(host, engine, network)

    samples: Dict[str, List[float]] = {name: [] for name in MODULE_NAMES}
    for _ in range(iterations):
        slice_ = deployment.deploy(IsolationMode.SGX)
        for name, span in slice_.load_spans.items():
            samples[name].append(span.minutes)
        slice_.teardown(engine)

    report = ExperimentReport(
        experiment_id="E1/Fig7", title="Enclave load time of the P-AKA modules"
    )
    for name in MODULE_NAMES:
        report.series[name] = summarize(f"{name} load", samples[name], "minutes")
        report.checks.append(
            BandCheck(
                name=f"{name} load time (min)",
                measured=report.series[name].mean,
                low=0.85,
                high=1.10,
                paper_value={"eudm": 0.985, "eausf": 0.972, "eamf": 0.962}[name],
            )
        )
    report.checks.append(
        BandCheck(
            name="ordering eUDM > eAUSF > eAMF (margin)",
            measured=report.series["eudm"].mean - report.series["eamf"].mean,
            low=0.0,
            high=0.2,
        )
    )
    report.notes = (
        "load dominated by GSC trusted-file verification of the multi-GB "
        "rootfs plus preheat pre-faulting, as in the paper's §V-B1"
    )
    return report


def _collect_warmed_arm(
    isolation_value: str, registrations: int, seed: int
) -> Dict[str, Dict[str, List[float]]]:
    """One Fig 9-style arm: warmed testbed, per-module latency series.

    Module-level (and returning plain lists) so the parallel runner can
    ship it to a worker process.
    """
    testbed = warmed_testbed(IsolationMode(isolation_value), seed=seed)
    return collect_module_latencies(testbed, registrations, skip=1)


def _collect_cold_arm(
    isolation_value: str, registrations: int, seed: int
) -> Dict[str, Dict[str, List[float]]]:
    """One Fig 10-style arm: cold testbed (keeps the warmup burst that
    R_initial measures), per-module latency series."""
    testbed = build_testbed(IsolationMode(isolation_value), seed=seed)
    return collect_module_latencies(testbed, registrations, skip=0)


def figure9_functional_total_latency(
    registrations: int = 120, seed: int = 90, jobs: int = 1
) -> ExperimentReport:
    """Fig 9 (+ Table II L_F/L_T rows): container vs SGX module latencies.

    The two isolation arms are independent seeded testbeds; ``jobs > 1``
    collects them in parallel with byte-identical results.
    """
    report = ExperimentReport(
        experiment_id="E3/Fig9",
        title="Functional (L_F) and total (L_T) latency, container vs SGX",
    )
    data = run_arms(
        [
            Arm(
                key=isolation.value,
                fn=_collect_warmed_arm,
                kwargs={
                    "isolation_value": isolation.value,
                    "registrations": registrations,
                    "seed": seed,
                },
            )
            for isolation in (IsolationMode.CONTAINER, IsolationMode.SGX)
        ],
        jobs=jobs,
    )
    for isolation in (IsolationMode.CONTAINER, IsolationMode.SGX):
        label = isolation.value
        for name in MODULE_NAMES:
            report.series[f"{label}/{name}/LF"] = summarize(
                f"{label} {name} L_F", data[label][name]["lf_us"], "us"
            )
            report.series[f"{label}/{name}/LT"] = summarize(
                f"{label} {name} L_T", data[label][name]["lt_us"], "us"
            )

    for name in MODULE_NAMES:
        lf_ratio = (
            report.series[f"sgx/{name}/LF"].mean
            / report.series[f"container/{name}/LF"].mean
        )
        lt_ratio = (
            report.series[f"sgx/{name}/LT"].mean
            / report.series[f"container/{name}/LT"].mean
        )
        report.derived[f"{name}_LF_ratio"] = lf_ratio
        report.derived[f"{name}_LT_ratio"] = lt_ratio
        report.checks.append(
            BandCheck(f"{name} L_F overhead", lf_ratio, 1.1, 1.6,
                      paper_value=PAPER_LF_RATIO[name])
        )
        report.checks.append(
            BandCheck(f"{name} L_T overhead", lt_ratio, 1.7, 2.6,
                      paper_value=PAPER_LT_RATIO[name])
        )
    # eUDM exchanges the most bytes and shows the highest absolute latency.
    report.checks.append(
        BandCheck(
            "SGX L_T ordering eUDM - eAMF (us)",
            report.series["sgx/eudm/LT"].mean - report.series["sgx/eamf/LT"].mean,
            0.0,
            60.0,
        )
    )
    for name in MODULE_NAMES:
        report.derived[f"{name}_outlier_fraction"] = outlier_fraction(
            data[IsolationMode.SGX.value][name]["lt_us"]
        )
    return report


def figure10_response_time(
    registrations: int = 120, seed: int = 100, jobs: int = 1
) -> ExperimentReport:
    """Fig 10 (+ Table II R rows): stable and initial response times.

    Arms are NOT warmed: the very first module request carries the warmup
    burst, which is exactly what R_initial measures.  ``jobs > 1`` runs
    the container and SGX arms in parallel, byte-identically.
    """
    report = ExperimentReport(
        experiment_id="E4/Fig10",
        title="Response time of the P-AKA modules (stable and initial)",
    )
    stable_means: Dict[str, Dict[str, float]] = {}
    initial: Dict[str, float] = {}
    arm_data = run_arms(
        [
            Arm(
                key=isolation.value,
                fn=_collect_cold_arm,
                kwargs={
                    "isolation_value": isolation.value,
                    "registrations": registrations,
                    "seed": seed,
                },
            )
            for isolation in (IsolationMode.CONTAINER, IsolationMode.SGX)
        ],
        jobs=jobs,
    )
    for isolation in (IsolationMode.CONTAINER, IsolationMode.SGX):
        data = arm_data[isolation.value]
        label = isolation.value
        stable_means[label] = {}
        for name in MODULE_NAMES:
            r_series = data[name]["r_us"]
            if len(r_series) < 6:
                raise RuntimeError(f"not enough samples for {name}")
            stable = r_series[3:]
            report.series[f"{label}/{name}/R_stable"] = summarize(
                f"{label} {name} R_stable", stable, "us"
            )
            stable_means[label][name] = report.series[f"{label}/{name}/R_stable"].mean
            if isolation is IsolationMode.SGX:
                initial[name] = r_series[0]
                report.derived[f"{name}_R_initial_ms"] = r_series[0] / 1000.0

    for name in MODULE_NAMES:
        r_ratio = stable_means["sgx"][name] / stable_means["container"][name]
        ri_rs = initial[name] / stable_means["sgx"][name]
        report.derived[f"{name}_R_ratio"] = r_ratio
        report.derived[f"{name}_Ri_over_Rs"] = ri_rs
        report.checks.append(
            BandCheck(f"{name} stable response overhead", r_ratio, 2.0, 3.1,
                      paper_value=PAPER_R_RATIO[name])
        )
        report.checks.append(
            BandCheck(f"{name} initial/stable response", ri_rs, 14.0, 26.0,
                      paper_value=PAPER_RI_RS[name])
        )
    report.notes = (
        "initial response is ≈20x stable: the first request triggers lazy "
        "loading of drivers and network-stack state through OCALL bursts"
    )
    return report


def figure11_ota_feasibility(seed: int = 110) -> ExperimentReport:
    """Fig 11 / Table IV: OTA test with a COTS UE through P-AKA modules."""
    report = ExperimentReport(
        experiment_id="E7/Fig11",
        title="OTA feasibility: OnePlus 8 + USRP x310 through P-AKA/SGX",
    )
    # Success case: test PLMN 00101, required OxygenOS build.
    testbed = build_testbed(IsolationMode.SGX, seed=seed)
    ota = OtaTestbed(testbed)
    from repro.ran.sdr import table_iv_configuration

    for row in table_iv_configuration(testbed, ota.radio):
        report.rows.append(row)
    result = ota.run()
    report.rows.append(
        {
            "case": "test PLMN 00101 + required OS",
            "detected": result.detected,
            "registered": bool(result.registration and result.registration.success),
            "data_session": result.data_session,
        }
    )
    report.checks.append(
        BandCheck("OTA success (1=yes)", 1.0 if result.success else 0.0, 1.0, 1.0)
    )
    if result.registration and result.registration.session_setup_ms:
        report.derived["ota_setup_ms"] = result.registration.session_setup_ms

    # Negative case 1: custom MCC/MNC — the phone never detects the gNB.
    testbed_custom = build_testbed(IsolationMode.SGX, seed=seed + 1, mcc="901", mnc="70")
    ota_custom = OtaTestbed(testbed_custom)
    custom = ota_custom.run()
    report.rows.append(
        {
            "case": "custom PLMN 90170",
            "detected": custom.detected,
            "registered": bool(custom.registration and custom.registration.success),
            "data_session": custom.data_session,
        }
    )
    report.checks.append(
        BandCheck("custom-PLMN detection (0=no)", 1.0 if custom.detected else 0.0, 0.0, 0.0)
    )

    # Negative case 2: wrong OS build — detected, but no end-to-end session.
    testbed_os = build_testbed(IsolationMode.SGX, seed=seed + 2)
    wrong_os = testbed_os.add_subscriber(commercial=True, os_version="11.0.4.4.IN21DA")
    assert isinstance(wrong_os, CommercialUE)
    ota_os = OtaTestbed(testbed_os)
    os_result = ota_os.run(wrong_os)
    report.rows.append(
        {
            "case": f"OS {wrong_os.os_version} (requires "
            f"{ONEPLUS_8_PROFILE.required_os_version})",
            "detected": os_result.detected,
            "registered": bool(os_result.registration and os_result.registration.success),
            "data_session": os_result.data_session,
        }
    )
    report.checks.append(
        BandCheck(
            "wrong-OS end-to-end (0=no)",
            1.0 if os_result.success else 0.0,
            0.0,
            0.0,
        )
    )
    return report
