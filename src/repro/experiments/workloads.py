"""Workload generators for the experiment harness and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.fivegc.messages import RegistrationOutcome
from repro.paka.deploy import IsolationMode
from repro.ran.gnbsim import GnbSim, MassRegistrationReport
from repro.testbed import Testbed, TestbedConfig


@dataclass(frozen=True)
class RegistrationWorkload:
    """A sized registration campaign."""

    ue_count: int
    establish_session: bool = False
    inter_registration_idle_s: float = 0.0

    def run(self, testbed: Testbed) -> MassRegistrationReport:
        return GnbSim(testbed).register_ues(
            self.ue_count,
            establish_session=self.establish_session,
            inter_registration_idle_s=self.inter_registration_idle_s,
        )


def steady_state_registrations(
    isolation: IsolationMode,
    count: int,
    seed: int = 0,
    warmup: int = 2,
) -> "tuple[Testbed, MassRegistrationReport]":
    """The standard measurement loop: warm up, then register ``count`` UEs."""
    testbed = Testbed.build(TestbedConfig(seed=seed, isolation=isolation))
    sim = GnbSim(testbed)
    sim.warm_up(warmup)
    report = RegistrationWorkload(ue_count=count).run(testbed)
    return testbed, report


def burst_then_idle(
    isolation: IsolationMode,
    bursts: int,
    burst_size: int,
    idle_s: float,
    seed: int = 0,
) -> "tuple[Testbed, List[MassRegistrationReport]]":
    """Bursty arrivals: ``bursts`` batches separated by idle windows —
    exercises the AEX accounting and keep-alive reuse across gaps."""
    testbed = Testbed.build(TestbedConfig(seed=seed, isolation=isolation))
    sim = GnbSim(testbed)
    reports = []
    for _ in range(bursts):
        reports.append(RegistrationWorkload(ue_count=burst_size).run(testbed))
        testbed.idle(idle_s)
    return testbed, reports
