"""Horizontal scaling of the P-AKA modules (§V-B7).

The paper: "Since our design is microservice-based, it inherently
supports horizontal scaling.  Therefore, network operators can scale the
enclave worker nodes and SGX-capable host pools on demand."  This
experiment deploys R replicas of the eUDM module, drives each replica and
measures its per-request occupancy, and derives the aggregate
registration capacity — which should scale ≈linearly in R until the
host's physical EPC is oversubscribed.
"""

from __future__ import annotations

import json
from statistics import mean
from typing import Dict, List

from repro.container.engine import ContainerEngine
from repro.experiments.harness import BandCheck, ExperimentReport
from repro.experiments.stats import summarize
from repro.hw.host import paper_testbed_host
from repro.net.http import HttpClient
from repro.net.sbi import EUDM_GENERATE_AV
from repro.paka.deploy import IsolationMode, PakaDeployment
from repro.runtime.native import NativeRuntime

_SUPI = "imsi-001010000000001"
_PAYLOAD = json.dumps(
    {
        "supi": _SUPI,
        "opc": "00" * 16,
        "rand": "11" * 16,
        "sqn": "000000000001",
        "amfField": "8000",
        "snn": "5G:mnc001.mcc001.3gppnetwork.org",
    },
    sort_keys=True,
).encode()


def _drive_replicas(
    replicas: int,
    requests_per_replica: int,
    seed: int,
    enclave_size: str = "512M",
) -> Dict[str, float]:
    """Deploy R eUDM replicas, drive each, return occupancy statistics."""
    host = paper_testbed_host(seed=seed)
    engine = ContainerEngine(host)
    network = engine.create_network("oai-bridge")
    deployment = PakaDeployment(host, engine, network)
    slice_ = deployment.deploy(
        IsolationMode.SGX,
        module_names=["eudm"],
        replicas=replicas,
        enclave_size=enclave_size,
    )
    client = HttpClient("lb-vnf", NativeRuntime("lb-vnf", host), network)

    busy_means: List[float] = []
    group = slice_.replica_groups["eudm"]
    for module in group:
        module.provision_direct(_SUPI, bytes(16))
        connection = client.connect(module.server)
        for _ in range(requests_per_replica):
            response = client.request(
                connection, "POST", EUDM_GENERATE_AV, body=_PAYLOAD
            )
            assert response.ok
        busy_means.append(mean(module.server.busy_us[3:]))

    mean_busy_us = mean(busy_means)
    # Each replica serves one request per busy window; replicas work in
    # parallel on distinct cores, so capacity adds.
    capacity_rps = replicas * 1e6 / mean_busy_us
    total_epc = sum(
        enclave.epc_region.resident_pages for enclave in slice_.enclaves.values()
    ) * 4096
    return {
        "mean_busy_us": mean_busy_us,
        "capacity_rps": capacity_rps,
        "epc_resident_bytes": float(total_epc),
    }


def horizontal_scaling_experiment(
    replica_counts: "tuple[int, ...]" = (1, 2, 4),
    requests_per_replica: int = 40,
    seed: int = 140,
) -> ExperimentReport:
    """Capacity vs replica count, plus the EPC-oversubscription ceiling."""
    report = ExperimentReport(
        experiment_id="A5/horizontal-scaling",
        title="Horizontal scaling of the eUDM P-AKA module",
    )
    capacities: Dict[int, float] = {}
    for replicas in replica_counts:
        result = _drive_replicas(replicas, requests_per_replica, seed + replicas)
        capacities[replicas] = result["capacity_rps"]
        report.rows.append(
            {
                "replicas": replicas,
                "mean_busy_us": round(result["mean_busy_us"], 1),
                "capacity_rps": round(result["capacity_rps"]),
            }
        )
        report.derived[f"capacity_{replicas}r_rps"] = result["capacity_rps"]

    low, high = min(replica_counts), max(replica_counts)
    scaling_efficiency = (capacities[high] / capacities[low]) / (high / low)
    report.derived["scaling_efficiency"] = scaling_efficiency
    report.checks.append(
        BandCheck(
            f"capacity scales ~linearly {low}->{high} replicas (efficiency)",
            scaling_efficiency,
            0.85,
            1.1,
        )
    )

    # Oversubscription: preheated 4G enclaves × 6 replicas = 24G demanded
    # of a 16G EPC — eviction churn inflates per-request occupancy.
    oversubscribed = _drive_replicas(
        6, max(10, requests_per_replica // 2), seed + 100, enclave_size="4G"
    )
    fitting = _drive_replicas(
        2, max(10, requests_per_replica // 2), seed + 101, enclave_size="4G"
    )
    report.derived["oversubscribed_busy_us"] = oversubscribed["mean_busy_us"]
    report.derived["fitting_busy_us"] = fitting["mean_busy_us"]
    inflation = oversubscribed["mean_busy_us"] / fitting["mean_busy_us"]
    report.derived["epc_oversubscription_inflation"] = inflation
    report.checks.append(
        BandCheck("EPC oversubscription inflates occupancy", inflation, 1.02, 10.0)
    )
    report.notes = (
        "replicas add capacity linearly while the host's EPC holds; past "
        "it, paging erodes the gain — sizing guidance for SGX host pools"
    )
    return report
