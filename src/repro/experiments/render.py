"""Terminal rendering of experiment distributions.

The paper's Figs 7–10 are box plots; this module renders the same
five-number summaries as ASCII box plots so `python -m repro fig9` can
show the figure, not just the numbers.

::

    container eudm L_T  |        |----[=====|=====]-----|          61.0
    sgx eudm L_T        |                 |--[====|====]--|       113.8
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.experiments.stats import SeriesSummary

_WIDTH = 58


def _scale(value: float, low: float, high: float, width: int) -> int:
    if high <= low:
        return 0
    position = (value - low) / (high - low)
    return max(0, min(width - 1, int(round(position * (width - 1)))))


def ascii_boxplot(
    series: Iterable[SeriesSummary],
    width: int = _WIDTH,
    title: Optional[str] = None,
) -> str:
    """Render the summaries as aligned horizontal box plots.

    Whiskers span min..max, the box spans the IQR, ``|`` marks the
    median.  All rows share one axis so shapes are comparable.
    """
    rows: List[SeriesSummary] = list(series)
    if not rows:
        raise ValueError("nothing to plot")
    low = min(s.minimum for s in rows)
    high = max(s.maximum for s in rows)
    label_width = max(len(s.name) for s in rows)

    lines: List[str] = []
    if title:
        lines.append(title)
    for summary in rows:
        canvas = [" "] * width
        lo = _scale(summary.minimum, low, high, width)
        hi = _scale(summary.maximum, low, high, width)
        q1 = _scale(summary.p25, low, high, width)
        q3 = _scale(summary.p75, low, high, width)
        med = _scale(summary.median, low, high, width)
        for i in range(lo, hi + 1):
            canvas[i] = "-"
        for i in range(q1, q3 + 1):
            canvas[i] = "="
        canvas[lo] = "|"
        canvas[hi] = "|"
        if q1 <= med <= q3:
            canvas[med] = "#"
        lines.append(
            f"{summary.name:<{label_width}}  [{''.join(canvas)}]"
            f" {summary.median:>9.2f} {summary.unit}"
        )
    axis = f"{'':<{label_width}}   {low:<.3g}{'':>{max(1, width - 14)}}{high:>.3g}"
    lines.append(axis)
    return "\n".join(lines)


def render_report_figures(report) -> str:
    """Box-plot every series group in an ExperimentReport.

    Series are grouped by their trailing metric tag (``.../LF``,
    ``.../LT``, ``.../R_stable`` …) so each paper sub-figure becomes one
    shared-axis plot.
    """
    groups: Dict[str, List[SeriesSummary]] = {}
    for key, summary in report.series.items():
        metric = key.rsplit("/", 1)[-1] if "/" in key else key
        groups.setdefault(metric, []).append(summary)
    blocks = []
    for metric, rows in groups.items():
        blocks.append(ascii_boxplot(rows, title=f"[{metric}]"))
    return "\n\n".join(blocks)
