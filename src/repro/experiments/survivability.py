"""E-ATTACK: control-plane survivability under adversarial signaling.

The P-AKA enclaves shield AKA *secrets*; this campaign measures what
shields AKA *capacity*.  Each arm replays the same seeded signaling
storm (SUCI replay, forged-AUTS resync, NAS fuzz, botnet registration —
:func:`repro.security.attacks.generate_storm`) against a warmed SGX
slice while a paced population of legitimate UEs registers through the
tracking area's own gNB, and sweeps attack rate × AMF admission-control
configuration.  The survivability curve per arm: legitimate success
rate against a sojourn deadline, tail latency, EENTER burn in the
enclave modules, admission shed counters, and how many paper-derived
SLO alerts fired.

Determinism: the storm schedule is a pure value of ``(seed, horizon,
rate)`` drawn from a private ``random.Random``; the attack plane's UE
population lives on reserved MSIN prefixes with disjoint RNG streams;
admission control is clockless arithmetic.  A fixed ``(seed, config)``
therefore reproduces the report byte-for-byte, and the rate-0 disarmed
arm spends exactly the nanoseconds of an attack-free run (golden clocks
hold).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.harness import BandCheck, ExperimentReport, warmed_testbed
from repro.experiments.stats import percentiles, summarize
from repro.fivegc.admission import AdmissionConfig, AdmissionController
from repro.obs.detect import AdmissionGovernor, AttackClassifier
from repro.obs.scrape import Scraper
from repro.obs.slo import SloEngine, SojournSlo, default_slos
from repro.obs.trace import Tracer, TraceStore
from repro.paka.deploy import IsolationMode
from repro.security.attacks import AttackPlane, generate_storm

NS_PER_S = 1_000_000_000

#: Attack arrival rates for the default sweep.  Calibration (blended
#: storm cost ≈3.3 ms of serialized control-plane work per event against
#: ≈52 ms per legitimate registration): 240/s puts the undefended AMF
#: near saturation, 400/s pushes utilization past 1 and collapses it.
DEFAULT_ATTACK_RATES = (0.0, 240.0, 400.0)

#: Sojourn deadline for a legitimate registration: finish time minus the
#: UE's scheduled arrival slot.  ≈5× the unloaded setup time — generous
#: against jitter, unforgiving against storm-induced queueing.
DEFAULT_DEADLINE_MS = 250.0

#: Legitimate traffic mix: 3 of 4 arrivals are returning subscribers
#: re-registering with a held 5G-GUTI (the TS 24.501 population the
#: overload breaker keeps serving); every 4th is a fresh SUCI attach.
_INITIAL_EVERY = 4


def _defense_configs() -> Dict[str, Tuple[Optional[AdmissionConfig], Optional[int]]]:
    """Sweep arms: name → (admission config or None, pending-session cap).

    Rates are matched to the campaign's legitimate offered load
    (≈2.5 registrations/s through one gNB) so no defense sheds the
    legitimate population by accident — except the breaker, whose whole
    mechanism is shedding *initial* attaches while open.
    """
    bucket = dict(
        per_source_rate_per_s=0.25, per_source_burst=2.0,
        bucket_rate_per_s=50.0, bucket_burst=50.0,
    )
    guard = dict(gnb_rate_per_s=6.0, gnb_burst=6.0)
    breaker = dict(
        breaker_max_per_s=30.0, breaker_window_s=1.0, breaker_cooldown_s=2.0
    )
    return {
        "none": (None, None),
        "bucket": (AdmissionConfig(**bucket), None),
        "guard": (AdmissionConfig(**guard), None),
        "breaker": (AdmissionConfig(**breaker), None),
        "all": (AdmissionConfig(**bucket, **guard, **breaker), 512),
        # Closed loop: starts with *nothing* armed; the AdmissionGovernor
        # (repro.obs.detect) arms and tunes defenses at runtime from the
        # classifier's verdicts and the sojourn SLO's burn.
        "governed": (None, None),
    }


DEFENSES = tuple(_defense_configs())


def _module_lt_baseline(testbed) -> Dict[str, int]:
    """Per-module count of already-recorded trusted-path samples."""
    client_of = {"eudm": testbed.udm, "eausf": testbed.ausf, "eamf": testbed.amf}
    return {
        name: len(
            client_of[name].client.response_times_by_server.get(
                testbed.paka.modules[name].server.name, []
            )
        )
        for name in testbed.paka.modules
    }


def _module_lt_new_samples(testbed, baseline: Dict[str, int]) -> List[float]:
    """Trusted-path latencies recorded since ``baseline``, all modules."""
    client_of = {"eudm": testbed.udm, "eausf": testbed.ausf, "eamf": testbed.amf}
    samples: List[float] = []
    for name, skip in baseline.items():
        series = client_of[name].client.response_times_by_server.get(
            testbed.paka.modules[name].server.name, []
        )
        samples.extend(series[skip:])
    return samples


def _eenters(testbed) -> int:
    return sum(
        module.runtime.sgx_stats.eenters
        for module in testbed.paka.modules.values()
        if module.runtime.sgx_stats is not None
    )


def _run_arm(
    defense: str,
    attack_rate_per_s: float,
    legit: int,
    horizon_s: float,
    seed: int,
    deadline_ms: float = DEFAULT_DEADLINE_MS,
    trace_sample: Optional[int] = None,
    trace_store_cap: int = 2048,
) -> Dict[str, object]:
    """One sweep arm: seeded storm × admission config on a fresh slice.

    ``trace_sample`` arms distributed tracing for the arm: every
    legitimate registration runs under a deterministic trace context,
    failed/deadline-violating traces are all kept (plus 1/N healthy
    head samples) in a bounded store, and the row gains ``"_trace_*"``
    keys — alert payloads then cite exemplar trace ids.  Tracing never
    advances the simulated clock, so a traced arm's ``final_clock_ns``
    is byte-identical to an untraced one.
    """
    config, max_pending = _defense_configs()[defense]
    testbed = warmed_testbed(IsolationMode.SGX, seed=seed)

    # Legitimate population.  Returning subscribers register once ahead
    # of the window so they hold a 5G-GUTI; every 4th arrival is a fresh
    # SUCI attach provisioned up front (subscriber provisioning draws
    # only its own namespaced streams, so timing doesn't matter).
    ues = [testbed.add_subscriber() for _ in range(legit)]
    initial = [index % _INITIAL_EVERY == _INITIAL_EVERY - 1 for index in range(legit)]
    for ue, fresh in zip(ues, initial):
        if not fresh:
            outcome = testbed.register(ue, establish_session=False)
            if not outcome.success:
                raise RuntimeError(
                    f"returning-UE warmup failed: {outcome.failure_cause}"
                )

    # Arm the defenses only after the population is provisioned: the
    # burst of back-to-back warmup registrations is instantaneous on the
    # simulated clock and would trip any rate-shaped defense; operators
    # deploy admission control against the *storm*, not the inventory.
    if config is not None:
        testbed.amf.admission = AdmissionController(config)
    if max_pending is not None:
        testbed.amf.max_pending_sessions = max_pending

    storm = generate_storm(seed, horizon_s, attack_rate_per_s)
    plane = AttackPlane(testbed) if storm else None

    # Merged timeline: the paced legitimate grid interleaved with the
    # storm's Poisson arrivals; ties break legit-first (stable and
    # deterministic — grid vs. expovariate times essentially never tie).
    gap_ns = int(horizon_s / legit * NS_PER_S)
    timeline: List[Tuple[int, int, object]] = [
        (index * gap_ns, 0, index) for index in range(legit)
    ]
    timeline.extend((event.at_ns, 1, event) for event in storm)
    timeline.sort(key=lambda entry: (entry[0], entry[1]))

    scraper = Scraper.for_testbed(
        testbed, cadence_s=1.0, attack_plane=plane
    ).install(testbed.host)
    governor: Optional[AdmissionGovernor] = None
    if defense == "governed":
        # The closed loop: classifier verdicts + sojourn burn arm the
        # admission config at runtime.  Subscribed after the baseline
        # scrape, so the governor sees exactly the cadence-grid samples.
        governor = AdmissionGovernor(
            testbed.amf,
            AttackClassifier(),
            slos=[
                slo for slo in default_slos(testbed)
                if isinstance(slo, SojournSlo)
            ],
        )
        scraper.subscribe(governor)
    tracer = None
    if trace_sample is not None:
        tracer = Tracer(
            testbed.host.clock,
            trace_seed=seed,
            store=TraceStore(
                cap=trace_store_cap,
                sample_every=trace_sample,
                deadline_ms=deadline_ms,
            ),
        )
        testbed.host.tracer = tracer
    clock = testbed.host.clock
    start_ns = clock.now_ns
    lt_baseline = _module_lt_baseline(testbed)
    eenters_before = _eenters(testbed)

    legit_ok = 0
    legit_registered = 0
    # Sojourns are read back from the gNB's own histogram series — the
    # same numbers the scraper ingests and the SojournSlo alerts on, so
    # the campaign's deadline accounting and the alerting path are
    # provably identical (the PR 8 blind spot: a private list here that
    # never reached the Tsdb).
    sojourn_base = len(testbed.gnb.sojourn_ms)
    deadline_ns = int(deadline_ms * 1e6)
    for at_ns, _, payload in timeline:
        target_ns = start_ns + at_ns
        remaining_ns = target_ns - clock.now_ns
        if remaining_ns > 0:
            testbed.idle(remaining_ns / NS_PER_S)
        if isinstance(payload, int):
            ue = ues[payload]
            outcome = testbed.gnb.register(
                ue, establish_session=False, initial=initial[payload],
                arrival_ns=target_ns,
            )
            sojourn_ns = clock.now_ns - target_ns
            legit_registered += 1 if outcome.success else 0
            legit_ok += 1 if outcome.success and sojourn_ns <= deadline_ns else 0
        else:
            plane.execute(payload)

    scraper.uninstall(testbed.host)
    if tracer is not None:
        testbed.host.tracer = None
    sojourns_ms = list(testbed.gnb.sojourn_ms[sojourn_base:])
    alerts = SloEngine(
        default_slos(
            testbed, expected_registration_rate_per_s=legit / horizon_s
        )
    ).evaluate(scraper.tsdb)
    sojourn_alerts = [
        alert for alert in alerts if alert.slo.startswith("registration-sojourn")
    ]

    p50, p95, p99 = percentiles(sojourns_ms, (50, 95, 99))
    lt_samples = _module_lt_new_samples(testbed, lt_baseline)
    lt_p99 = percentiles(lt_samples, (99,))[0]
    admission = testbed.amf.admission
    row: Dict[str, object] = {
        "defense": defense,
        "attack_rate_per_s": attack_rate_per_s,
        "attack_events": len(storm),
        "attack_outcomes": plane.summary() if plane is not None else {},
        "legit_attempts": legit,
        "legit_registered": legit_registered,
        "legit_ok": legit_ok,
        "legit_success_rate": round(legit_ok / legit, 4) if legit else 0.0,
        "deadline_ms": deadline_ms,
        "sojourn_p50_ms": None if p50 is None else round(p50, 3),
        "sojourn_p95_ms": None if p95 is None else round(p95, 3),
        "sojourn_p99_ms": None if p99 is None else round(p99, 3),
        "lt_p99_us": None if lt_p99 is None else round(lt_p99, 3),
        "eenter_burn": _eenters(testbed) - eenters_before,
        "admitted": admission.admitted if admission is not None else None,
        "shed_total": admission.shed_total if admission is not None else 0,
        "shed_breaker": admission.shed_breaker if admission is not None else 0,
        "shed_gnb": admission.shed_gnb if admission is not None else 0,
        "shed_source": admission.shed_source if admission is not None else 0,
        "shed_bucket": admission.shed_bucket if admission is not None else 0,
        "breaker_opens": (
            admission.breaker.times_opened
            if admission is not None and admission.breaker is not None
            else 0
        ),
        "pending_evictions": testbed.amf.pending_evictions,
        "pending_sessions": testbed.amf.pending_count(),
        "alerts_fired": len(alerts),
        "sojourn_alerts_fired": len(sojourn_alerts),
        "first_sojourn_alert_s": (
            round((sojourn_alerts[0].fired_at_ns - start_ns) / NS_PER_S, 6)
            if sojourn_alerts
            else None
        ),
        "final_clock_ns": clock.now_ns,
    }
    if governor is not None:
        detail = governor.to_dict(base_ns=start_ns)
        arms = [a for a in detail["actions"] if a["action"] == "arm"]
        row["governor"] = detail
        # Detection latency: storm start (t=0 on this timeline) to the
        # first arming action; None when the governor never armed.
        row["detect_latency_s"] = arms[0]["at_s"] if arms else None
    row["_sojourns_ms"] = sojourns_ms  # stripped before the report
    if tracer is not None:
        # Traced-arm extras (only present when tracing was requested, so
        # untraced reports stay byte-identical): the trace store dump,
        # full alert payloads with their exemplar citations, and the
        # module maps the analytics layer needs to decompose trees.
        row["_trace_store"] = tracer.store.to_dict()
        row["_alerts"] = [a.to_dict(base_ns=start_ns) for a in alerts]
        row["_module_servers"] = {
            name: module.server.name
            for name, module in sorted(testbed.paka.modules.items())
        }
        row["_module_runtimes"] = {
            name: module.runtime.name
            for name, module in sorted(testbed.paka.modules.items())
        }
    return row


def survivability_experiment(
    legit: int = 30,
    horizon_s: float = 12.0,
    seed: int = 29,
    attack_rates: Sequence[float] = DEFAULT_ATTACK_RATES,
    defenses: Sequence[str] = DEFENSES,
) -> ExperimentReport:
    """Sweep attack rate × defense config; report survivability curves."""
    report = ExperimentReport(
        experiment_id="survivability",
        title=(
            f"legitimate-UE survivability under signaling storms "
            f"({legit} UEs over {horizon_s:.0f}s per arm)"
        ),
    )

    rows: Dict[Tuple[str, float], Dict[str, object]] = {}
    for defense in defenses:
        for rate in attack_rates:
            rows[(defense, rate)] = _run_arm(
                defense, rate, legit, horizon_s, seed
            )

    for (defense, rate), row in rows.items():
        label = f"{defense}_r{rate:g}"
        sojourns = row.pop("_sojourns_ms")
        if sojourns and rate == max(attack_rates):
            report.series[f"sojourn_ms_{label}"] = summarize(
                f"legit sojourn {label}", sojourns, "ms"
            )
        report.derived[f"success_{label}"] = float(row["legit_success_rate"])
        report.rows.append(row)

    peak = max(attack_rates)
    baseline = rows[("none", min(attack_rates))]
    undefended = rows[("none", peak)]
    report.checks.append(
        BandCheck(
            name="attack-free control success (disarmed plane)",
            measured=float(baseline["legit_success_rate"]),
            low=1.0, high=1.0,
        )
    )
    report.checks.append(
        BandCheck(
            name="undefended AMF collapses at peak storm",
            measured=float(undefended["legit_success_rate"]),
            low=0.0, high=0.6,
        )
    )
    # The PR 8 blind spot, closed: the pure-queueing collapse that fired
    # zero alerts must now page on the sojourn SLO inside the window.
    report.checks.append(
        BandCheck(
            name="sojourn SLO pages on the undefended collapse",
            measured=float(undefended["sojourn_alerts_fired"]),
            low=1.0, high=1e9,
        )
    )
    if "governed" in defenses:
        report.checks.append(
            BandCheck(
                name="governed arm recovers legit success at peak storm",
                measured=float(rows[("governed", peak)]["legit_success_rate"]),
                low=0.75, high=1.0,
            )
        )
    for defense in defenses:
        if defense == "none":
            continue
        defended = rows[(defense, peak)]
        report.checks.append(
            BandCheck(
                name=f"defense '{defense}' improves legit success at peak storm",
                measured=float(defended["legit_success_rate"])
                - float(undefended["legit_success_rate"]),
                low=0.01, high=1.0,
            )
        )
        report.checks.append(
            BandCheck(
                name=f"defense '{defense}' keeps legit success at no attack",
                measured=float(rows[(defense, min(attack_rates))]["legit_success_rate"]),
                low=1.0, high=1.0,
            )
        )
    if "all" in defenses and undefended["eenter_burn"]:
        report.checks.append(
            BandCheck(
                name="defenses shed before the enclave (EENTER burn ratio)",
                measured=float(rows[("all", peak)]["eenter_burn"])
                / float(undefended["eenter_burn"]),
                low=0.0, high=0.8,
            )
        )
    report.notes = (
        f"seed={seed}; deadline={DEFAULT_DEADLINE_MS:g}ms sojourn from the "
        f"scheduled slot (read back from the gnb_registration_sojourn_ms "
        f"histogram the SLO engine alerts on); legit mix 3:1 GUTI "
        "re-registration vs SUCI attach; storm mix suci-replay/auts-resync/"
        "nas-fuzz/botnet-register; the breaker arms cap at the "
        "returning-subscriber share by design (initial attaches are shed "
        "while open, per TS 24.501 congestion control); the governed arm "
        "starts disarmed and lets the AdmissionGovernor arm/tune defenses "
        "from classifier verdicts + sojourn burn"
    )
    return report
