"""Slice migration across hosts (§V-B1's "slice creation or migration").

The paper stresses that enclave load time, while irrelevant to steady
operation, dominates *slice creation or migration to a new host*.  This
experiment migrates the eUDM module between hosts under each isolation
backend and measures the service gap — and demonstrates why migration
requires re-provisioning: sealed secrets are platform-bound and do not
travel.
"""

from __future__ import annotations

import json
from typing import Dict

from repro.container.engine import ContainerEngine
from repro.experiments.harness import BandCheck, ExperimentReport
from repro.hw.host import paper_testbed_host
from repro.net.http import HttpClient
from repro.net.sbi import EUDM_GENERATE_AV
from repro.paka.deploy import IsolationMode, PakaDeployment
from repro.runtime.native import NativeRuntime

_SUPI = "imsi-001010000000001"
_K = bytes(range(16))
_PAYLOAD = json.dumps(
    {
        "supi": _SUPI,
        "opc": "00" * 16,
        "rand": "22" * 16,
        "sqn": "000000000002",
        "amfField": "8000",
        "snn": "5G:mnc001.mcc001.3gppnetwork.org",
    },
    sort_keys=True,
).encode()


def _deploy_and_serve(host, mode: IsolationMode) -> float:
    """Deploy the eUDM module on ``host``, provision, serve one request;
    returns the simulated seconds from deployment start to first answer."""
    engine = ContainerEngine(host)
    network = engine.create_network(f"bridge-{mode.value}")
    deployment = PakaDeployment(host, engine, network)
    t0 = host.clock.now_ns
    slice_ = deployment.deploy(mode, module_names=["eudm"])
    module = slice_.module("eudm")
    module.provision_direct(_SUPI, _K)
    client = HttpClient(f"vnf-{mode.value}", NativeRuntime(f"vnf-{mode.value}", host), network)
    connection = client.connect(module.server)
    response = client.request(connection, "POST", EUDM_GENERATE_AV, body=_PAYLOAD)
    assert response.ok
    return (host.clock.now_ns - t0) / 1e9


def migration_experiment(seed: int = 150) -> ExperimentReport:
    """Migrate the module host-A → host-B per backend; measure the gap."""
    report = ExperimentReport(
        experiment_id="A6/migration",
        title="Slice migration: service gap per isolation backend",
    )
    gaps: Dict[str, float] = {}
    for mode in (IsolationMode.CONTAINER, IsolationMode.SECURE_VM, IsolationMode.SGX):
        # Source host: deploy, serve, then tear down (keys scrubbed).
        source = paper_testbed_host(name="host-a", seed=seed)
        _deploy_and_serve(source, mode)
        # Destination host: the service gap is the redeploy-to-first-answer
        # time there (teardown on the source is comparatively free).
        destination = paper_testbed_host(name="host-b", seed=seed + 1)
        gaps[mode.value] = _deploy_and_serve(destination, mode)
        report.rows.append(
            {"backend": mode.value, "service_gap_s": round(gaps[mode.value], 2)}
        )
        report.derived[f"{mode.value}_gap_s"] = gaps[mode.value]

    report.checks.append(
        BandCheck("container migrates in ~a second", gaps["container"], 0.1, 3.0)
    )
    report.checks.append(
        BandCheck("secure VM migrates in ~10s", gaps["secure-vm"], 5.0, 25.0)
    )
    report.checks.append(
        BandCheck("GSC/SGX migration costs ~a minute", gaps["sgx"], 45.0, 80.0)
    )
    report.checks.append(
        BandCheck(
            "SGX gap dominated by enclave load (ratio to container)",
            gaps["sgx"] / gaps["container"],
            20.0,
            300.0,
        )
    )
    report.notes = (
        "the ~minute GSC load of Fig 7 is the migration cost; ephemeral or "
        "frequently re-balanced services feel it, steady AKA services don't"
    )
    return report


def sealed_data_does_not_migrate(seed: int = 151) -> bool:
    """Sealed blobs are bound to the platform: what host-a sealed, host-b
    cannot unseal — hence the attested re-provisioning step.  Returns
    True when the property holds (used by tests and the bench)."""
    from repro.sgx.errors import SealingError
    from repro.sgx.sealing import seal, unseal

    def build_enclave(host, platform_id):
        engine = ContainerEngine(host)
        network = engine.create_network("bridge-seal")
        deployment = PakaDeployment(host, engine, network, platform_id=platform_id)
        slice_ = deployment.deploy(IsolationMode.SGX, module_names=["eudm"])
        return slice_.enclaves["eudm"]

    host_a = paper_testbed_host(name="host-a", seed=seed)
    host_b = paper_testbed_host(name="host-b", seed=seed)
    enclave_a = build_enclave(host_a, "platform-a")
    enclave_b = build_enclave(host_b, "platform-b")
    blob = seal(enclave_a, _K, platform_id="platform-a")
    try:
        unseal(enclave_b, blob, platform_id="platform-b")
        return False  # pragma: no cover - would be a security bug
    except SealingError:
        return True
