"""Ablation experiments for the design choices DESIGN.md calls out.

The paper motivates several decisions qualitatively — preheat enabled,
exitless left off, Gramine over a native port, SGX over secure VMs, a
kernel TCP stack over mTCP/DPDK (§IV-C, §V-B7).  Each ablation here
turns one of those knobs and measures both sides of the tradeoff.
"""

from __future__ import annotations

from statistics import mean
from typing import Dict, List, Optional

from repro.container.engine import ContainerEngine
from repro.experiments.harness import (
    MODULE_AKA_PATH,
    BandCheck,
    ExperimentReport,
    build_testbed,
    collect_module_latencies,
    warmed_testbed,
)
from repro.experiments.parallel import Arm, run_arms
from repro.experiments.stats import summarize
from repro.hw.host import paper_testbed_host
from repro.net.http import HttpClient, ServerSyscallProfile
from repro.paka.deploy import IsolationMode, PakaDeployment
from repro.runtime.native import NativeRuntime


def _collect_preheat_arm(
    preheat: bool, registrations: int, seed: int
) -> "Dict[str, object]":
    """One preheat-ablation arm: eUDM load time and response-time series."""
    testbed = build_testbed(IsolationMode.SGX, seed=seed, preheat=preheat)
    load_s = testbed.paka.load_spans["eudm"].seconds
    data = collect_module_latencies(testbed, registrations, skip=0)["eudm"]
    return {"load_s": load_s, "r_us": data["r_us"]}


def _collect_exitless_arm(
    exitless: bool, registrations: int, seed: int
) -> "Dict[str, object]":
    """One exitless-ablation arm: eUDM L_T series and transition deltas."""
    testbed = warmed_testbed(IsolationMode.SGX, seed=seed, exitless=exitless)
    before = testbed.paka.enclaves["eudm"].stats.snapshot()
    data = collect_module_latencies(testbed, registrations, skip=1)["eudm"]
    delta = testbed.paka.enclaves["eudm"].stats.delta(before)
    return {
        "lt_us": data["lt_us"],
        "eenters": float(delta.eenters),
        "ocalls": float(delta.ocalls),
    }


def _collect_backend_arm(
    isolation_value: str, registrations: int, seed: int
) -> "Dict[str, object]":
    """One HMEE-backend arm: latency series, deploy time and the
    guest-kernel TCB attack outcome."""
    from repro.security.attacks import GuestKernelExploitAttack
    from repro.security.threat import Attacker

    testbed = warmed_testbed(IsolationMode(isolation_value), seed=seed)
    data = collect_module_latencies(testbed, registrations, skip=1)["eudm"]
    deploy_s: Optional[float] = None
    if testbed.paka.load_spans:
        deploy_s = max(span.seconds for span in testbed.paka.load_spans.values())
    attacker = Attacker("mallory", host=testbed.host, engine=testbed.engine)
    if not attacker.full_chain():  # pragma: no cover - p ≈ 0.001
        raise RuntimeError("attacker chain failed")
    result = GuestKernelExploitAttack().run(attacker, testbed)
    return {
        "lt_us": data["lt_us"],
        "deploy_s": deploy_s,
        "kernel_exploit": bool(result.succeeded),
    }


def preheat_ablation(
    registrations: int = 40, seed: int = 120, jobs: int = 1
) -> ExperimentReport:
    """Preheat on vs off: load-time cost vs first-request cost.

    The paper enables ``sgx.preheat_enclave`` because it "shifts the cost
    of EPC page faults to the initialization phase, which is beneficial
    when a server is expected to start and receive connections after some
    time".  This ablation measures both sides of that shift.
    """
    report = ExperimentReport(
        experiment_id="A1/preheat", title="Preheat ablation: load vs first request"
    )
    arm_data = run_arms(
        [
            Arm(
                key="preheat" if preheat else "no-preheat",
                fn=_collect_preheat_arm,
                kwargs={
                    "preheat": preheat,
                    "registrations": registrations,
                    "seed": seed,
                },
            )
            for preheat in (True, False)
        ],
        jobs=jobs,
    )
    results: Dict[bool, Dict[str, float]] = {}
    for preheat in (True, False):
        label = "preheat" if preheat else "no-preheat"
        load_s = arm_data[label]["load_s"]
        r_us: List[float] = arm_data[label]["r_us"]
        results[preheat] = {
            "load_s": load_s,
            "r_initial_us": r_us[0],
            "r_stable_us": mean(r_us[3:]),
        }
        report.derived[f"{label}_load_s"] = load_s
        report.derived[f"{label}_r_initial_ms"] = r_us[0] / 1000.0
        report.series[f"{label}/R"] = summarize(f"{label} R", r_us[3:], "us")

    load_saving = results[True]["load_s"] - results[False]["load_s"]
    first_request_penalty = (
        results[False]["r_initial_us"] - results[True]["r_initial_us"]
    )
    report.derived["load_saving_s"] = load_saving
    report.derived["first_request_penalty_ms"] = first_request_penalty / 1000.0
    report.checks.append(
        BandCheck("preheat costs load time (s saved without)", load_saving, 0.2, 5.0)
    )
    report.checks.append(
        BandCheck(
            "no-preheat penalises the first request (ms)",
            first_request_penalty / 1000.0,
            20.0,
            400.0,
        )
    )
    report.checks.append(
        BandCheck(
            "stable response unaffected by preheat (ratio)",
            results[False]["r_stable_us"] / results[True]["r_stable_us"],
            0.95,
            1.05,
        )
    )
    return report


def exitless_ablation(
    registrations: int = 60, seed: int = 121, jobs: int = 1
) -> ExperimentReport:
    """Gramine's exitless mode: fewer transitions, faster OCALL path.

    The paper notes exitless "offloads OCALL execution to an untrusted
    helper thread... improving OCALL performance" but is "insecure for
    production usage as of now" — so it stays off in the main results.
    """
    report = ExperimentReport(
        experiment_id="A2/exitless", title="Exitless ablation: transitions vs latency"
    )
    arm_data = run_arms(
        [
            Arm(
                key="exitless" if exitless else "transitioning",
                fn=_collect_exitless_arm,
                kwargs={
                    "exitless": exitless,
                    "registrations": registrations,
                    "seed": seed,
                },
            )
            for exitless in (False, True)
        ],
        jobs=jobs,
    )
    for exitless in (False, True):
        label = "exitless" if exitless else "transitioning"
        report.derived[f"{label}_eenters"] = arm_data[label]["eenters"]
        report.derived[f"{label}_ocalls"] = arm_data[label]["ocalls"]
        report.series[f"{label}/LT"] = summarize(
            f"{label} L_T", arm_data[label]["lt_us"], "us"
        )

    speedup = report.series["transitioning/LT"].mean / report.series["exitless/LT"].mean
    report.derived["exitless_lt_speedup"] = speedup
    report.checks.append(
        BandCheck("exitless speeds up L_T (factor)", speedup, 1.1, 2.5)
    )
    report.checks.append(
        BandCheck(
            "exitless removes per-request EENTERs",
            report.derived["exitless_eenters"],
            0,
            0.02 * max(report.derived["transitioning_eenters"], 1),
        )
    )
    report.checks.append(
        BandCheck(
            "OCALLs still happen logically (ratio)",
            report.derived["exitless_ocalls"]
            / max(report.derived["transitioning_ocalls"], 1),
            0.9,
            1.1,
        )
    )
    report.notes = "exitless is not production-safe; main results keep it off"
    return report


def hmee_backend_comparison(
    registrations: int = 60, seed: int = 122, jobs: int = 1
) -> ExperimentReport:
    """SGX vs secure VM (SEV/TDX) vs plain container — §IV-C's tradeoff.

    Measures deployment time and stable latency per backend and executes
    the guest-kernel TCB attack against each.  Backends are independent
    testbeds, so ``jobs > 1`` measures them in parallel.
    """
    report = ExperimentReport(
        experiment_id="A3/hmee-backends",
        title="HMEE backend comparison: container vs SGX vs secure VM",
    )
    backends = (
        IsolationMode.CONTAINER,
        IsolationMode.SECURE_VM,
        IsolationMode.SGX,
    )
    arm_data = run_arms(
        [
            Arm(
                key=isolation.value,
                fn=_collect_backend_arm,
                kwargs={
                    "isolation_value": isolation.value,
                    "registrations": registrations,
                    "seed": seed,
                },
            )
            for isolation in backends
        ],
        jobs=jobs,
    )
    lt_means: Dict[str, float] = {}
    for isolation in backends:
        label = isolation.value
        data = arm_data[label]
        report.series[f"{label}/LT"] = summarize(f"{label} L_T", data["lt_us"], "us")
        lt_means[label] = report.series[f"{label}/LT"].mean
        if data["deploy_s"] is not None:
            report.derived[f"{label}_deploy_s"] = data["deploy_s"]
        report.rows.append(
            {
                "backend": label,
                "stable_LT_us": round(lt_means[label], 1),
                "kernel_exploit_steals_keys": data["kernel_exploit"],
            }
        )
        report.derived[f"{label}_kernel_exploit"] = float(data["kernel_exploit"])

    report.checks.append(
        BandCheck(
            "latency ordering container < secure-vm (ratio)",
            lt_means["secure-vm"] / lt_means["container"],
            1.02,
            1.6,
        )
    )
    report.checks.append(
        BandCheck(
            "latency ordering secure-vm < sgx (ratio)",
            lt_means["sgx"] / lt_means["secure-vm"],
            1.2,
            2.2,
        )
    )
    report.checks.append(
        BandCheck(
            "secure VM deploys much faster than GSC (ratio)",
            report.derived["sgx_deploy_s"] / report.derived["secure-vm_deploy_s"],
            3.0,
            20.0,
        )
    )
    report.checks.append(
        BandCheck("kernel exploit beats container", report.derived["container_kernel_exploit"], 1, 1)
    )
    report.checks.append(
        BandCheck("kernel exploit beats secure VM (large TCB)",
                  report.derived["secure-vm_kernel_exploit"], 1, 1)
    )
    report.checks.append(
        BandCheck("kernel exploit loses to SGX (small TCB)",
                  report.derived["sgx_kernel_exploit"], 0, 0)
    )
    return report


def userlevel_tcp_ablation(requests: int = 120, seed: int = 123) -> ExperimentReport:
    """mTCP/DPDK-style user-level networking inside the enclave (§V-B7).

    Compares the Pistache-style kernel-socket server against the same
    module with a user-level TCP profile: per-request OCALLs collapse,
    total latency drops, in exchange for more in-enclave code (TCB).
    """
    from repro.paka.modules import EudmPakaModule

    report = ExperimentReport(
        experiment_id="A4/userlevel-tcp",
        title="User-level TCP stack inside the enclave (mTCP/DPDK style)",
    )
    results = {}
    for label, profile in (
        ("kernel-tcp", None),
        ("userlevel-tcp", ServerSyscallProfile.userlevel_tcp()),
    ):
        host = paper_testbed_host(seed=seed)
        engine = ContainerEngine(host)
        network = engine.create_network("oai-bridge")
        deployment = PakaDeployment(host, engine, network)
        slice_ = deployment.deploy(IsolationMode.SGX, module_names=["eudm"])
        module = slice_.module("eudm")
        if profile is not None:
            # Rebind the server with the user-level profile.
            module.server.stop()
            module = EudmPakaModule(
                name=f"eudm-mtcp-{seed}", runtime=module.runtime,
                network=network, profile=profile,
            )
            module.start()
        module.provision_direct("imsi-001010000000001", bytes(16))
        client = HttpClient(f"vnf-{label}", NativeRuntime(f"vnf-{label}", host), network)
        connection = client.connect(module.server)
        import json as _json

        payload = _json.dumps(
            {
                "supi": "imsi-001010000000001",
                "opc": "00" * 16,
                "rand": "11" * 16,
                "sqn": "000000000001",
                "amfField": "8000",
                "snn": "5G:mnc001.mcc001.3gppnetwork.org",
            }
        ).encode()
        from repro.net.sbi import EUDM_GENERATE_AV

        stats_before = slice_.enclaves["eudm"].stats.snapshot()
        for _ in range(requests):
            response = client.request(connection, "POST", EUDM_GENERATE_AV, body=payload)
            assert response.ok
        delta = slice_.enclaves["eudm"].stats.delta(stats_before)
        r_series = client.response_times_by_server[module.server.name][3:]
        results[label] = {
            "r_us": mean(r_series),
            "ocalls_per_request": delta.ocalls / requests,
        }
        report.series[f"{label}/R"] = summarize(f"{label} R", r_series, "us")
        report.derived[f"{label}_ocalls_per_request"] = delta.ocalls / requests

    speedup = results["kernel-tcp"]["r_us"] / results["userlevel-tcp"]["r_us"]
    report.derived["userlevel_tcp_speedup"] = speedup
    report.checks.append(
        BandCheck("user-level TCP speeds up responses (factor)", speedup, 1.3, 4.0)
    )
    report.checks.append(
        BandCheck(
            "user-level TCP collapses per-request OCALLs",
            results["userlevel-tcp"]["ocalls_per_request"],
            0.0,
            0.15 * results["kernel-tcp"]["ocalls_per_request"],
        )
    )
    report.notes = (
        "pulling the TCP stack into the enclave enlarges the TCB — the "
        "paper weighs this against the performance gain in §V-B7"
    )
    return report
