"""E-CAP: mass-registration capacity campaign (10k UEs on one slice).

The paper's evaluation registers tens of UEs per arm (Table III sweeps
1–10); this campaign pushes the same stable-regime registration loop to
campaign scale — thousands of subscribers against one warmed SGX slice —
to measure what the serial slice sustains and to exercise the simulator's
own wire-speed hot path (bulk CTR keystream, fused SGX cost accounting,
indexed/bounded event log).

The scientific outputs are simulated quantities and therefore
deterministic per seed: simulated registrations/s, per-registration
enclave transitions (Table III's ≈90 EENTERs per module per
registration) and the eUDM total-latency summary.  Host wall-clock is
deliberately *not* part of the report — it belongs to
``BENCH_hostperf.json`` (see ``benchmarks/host_perf.py``), so the
committed results files stay byte-identical across machines.
"""

from __future__ import annotations

from repro.experiments.harness import (
    MODULE_NAMES,
    BandCheck,
    ExperimentReport,
    warmed_testbed,
)
from repro.paka.deploy import IsolationMode

# Retention bound for the host event log during the campaign: an SGX
# registration emits ~1.1k events, so 10k UEs would otherwise hold ~11M
# records.  Purely observer-side — golden tests pin that the knob leaves
# the simulated clock untouched.
EVENT_LOG_CAPACITY = 20_000


def capacity_campaign(
    ues: int = 10_000,
    seed: int = 7,
    event_log_capacity: int = EVENT_LOG_CAPACITY,
) -> ExperimentReport:
    """Register ``ues`` subscribers back-to-back on one warmed SGX slice."""
    testbed = warmed_testbed(
        IsolationMode.SGX, seed=seed, event_log_capacity=event_log_capacity
    )
    eenters_before = {
        name: testbed.paka.modules[name].runtime.sgx_stats.eenters
        for name in MODULE_NAMES
    }
    clock_before_ns = testbed.host.clock.now_ns

    successes = 0
    for _ in range(ues):
        ue = testbed.add_subscriber()
        outcome = testbed.register(ue, establish_session=False)
        successes += 1 if outcome.success else 0

    simulated_s = (testbed.host.clock.now_ns - clock_before_ns) / 1e9
    eudm_server = testbed.paka.modules["eudm"].server

    report = ExperimentReport(
        experiment_id="capacity_10k" if ues >= 10_000 else f"capacity_{ues}",
        title=f"mass registration capacity ({ues} UEs, serial slice)",
    )
    report.derived["ues"] = float(ues)
    report.derived["success_rate"] = successes / ues
    report.derived["simulated_s"] = round(simulated_s, 6)
    report.derived["simulated_regs_per_s"] = round(ues / simulated_s, 4)
    report.derived["simulated_ms_per_reg"] = round(simulated_s * 1e3 / ues, 4)
    report.derived["eudm_lt_mean_us"] = round(eudm_server.lt_us.stats.mean, 4)
    for name in MODULE_NAMES:
        stats = testbed.paka.modules[name].runtime.sgx_stats
        per_reg = (stats.eenters - eenters_before[name]) / ues
        report.derived[f"{name}_eenters_per_reg"] = round(per_reg, 4)
        report.checks.append(
            BandCheck(
                name=f"{name} EENTERs per registration",
                measured=per_reg,
                low=80,
                high=95,
                paper_value=90,
            )
        )

    report.checks.append(
        BandCheck(
            name="registration success rate",
            measured=successes / ues,
            low=1.0,
            high=1.0,
        )
    )
    report.checks.append(
        BandCheck(
            name="simulated ms per registration (stable regime)",
            measured=simulated_s * 1e3 / ues,
            low=40.0,
            high=70.0,
        )
    )
    report.notes = (
        "serial slice capacity; host wall-clock tracked separately in "
        "BENCH_hostperf.json"
    )
    return report
