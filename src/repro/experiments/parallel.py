"""Parallel experiment runner — fan independent arms over processes.

Every multi-arm experiment in this reproduction has the same shape: each
arm builds its **own** seeded :class:`~repro.testbed.Testbed` (its own
host, RNG service and simulated clock) and collects plain-data samples;
the report is then assembled from all arms.  Because arms share no state,
running them in worker processes is observationally identical to running
them in a loop — determinism is preserved by construction, and a
``--jobs 4`` run yields byte-identical reports to ``--jobs 1``.

Arms are described by :class:`Arm`: a stable key, a **module-level**
collection function (it must be picklable) and plain-data kwargs.  The
results dict preserves the declaration order of the arms regardless of
completion order, so report assembly never depends on scheduling.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Arm:
    """One independent unit of experiment work.

    ``fn`` must be defined at module level and both its kwargs and return
    value must be picklable (plain dicts/lists/numbers survive the trip
    through a worker process).
    """

    key: str
    fn: Callable[..., Any]
    kwargs: Mapping[str, Any] = field(default_factory=dict)

    def run(self) -> Any:
        return self.fn(**dict(self.kwargs))


def _run_arm(arm: Arm) -> Any:
    return arm.run()


def default_jobs() -> int:
    """A sensible worker count for ``--jobs 0``.

    One worker per CPU this process may actually *run on*: in a
    cgroup/cpuset-limited container ``os.cpu_count()`` reports the whole
    machine while the scheduler confines us to a slice of it, and
    overshooting just multiplies per-process testbed memory for zero
    throughput.  Platforms without ``sched_getaffinity`` (macOS, Windows)
    fall back to the CPU count.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:
        return os.cpu_count() or 1


def run_arms(
    arms: Sequence[Arm],
    jobs: int = 1,
    pool: Optional[Executor] = None,
) -> "Dict[str, Any]":
    """Run every arm and return ``{arm.key: result}`` in declaration order.

    ``jobs <= 1`` runs inline (no executor, no pickling); ``jobs > 1``
    fans out over a :class:`ProcessPoolExecutor` capped at the arm count.
    ``jobs == 0`` means one worker per schedulable CPU.

    ``pool`` lets a multi-round campaign reuse one executor across calls
    (worker processes import the simulation once, not once per round);
    the caller owns its lifecycle and ``jobs`` only caps in-flight
    submissions.  Results are keyed in declaration order either way, so
    a shared pool cannot change a report's bytes.
    """
    keys = [arm.key for arm in arms]
    if len(set(keys)) != len(keys):
        raise ValueError(f"arm keys must be unique, got {keys}")
    if jobs == 0:
        jobs = default_jobs()
    if pool is not None:
        futures = [(arm.key, pool.submit(_run_arm, arm)) for arm in arms]
        return {key: future.result() for key, future in futures}
    if jobs <= 1 or len(arms) <= 1:
        return {arm.key: arm.run() for arm in arms}
    with ProcessPoolExecutor(max_workers=min(jobs, len(arms))) as pool:
        futures = [(arm.key, pool.submit(_run_arm, arm)) for arm in arms]
        return {key: future.result() for key, future in futures}


def run_pairs(
    pairs: Sequence[Tuple[str, Callable[..., Any], Mapping[str, Any]]],
    jobs: int = 1,
) -> "Dict[str, Any]":
    """Convenience wrapper: ``run_arms`` over ``(key, fn, kwargs)`` tuples."""
    return run_arms([Arm(key=k, fn=f, kwargs=kw) for k, f, kw in pairs], jobs=jobs)
