"""End-to-end session setup: the paper's 62.38 ms / 5.58 % analysis.

Registers UEs (including PDU session establishment) through the container
and SGX deployments, measures the end-to-end setup time, and attributes
the difference to SGX isolation — the paper's "the overhead appears very
large but is a small fraction of the end-to-end session setup latency"
argument.
"""

from __future__ import annotations

from repro.experiments.harness import BandCheck, ExperimentReport, warmed_testbed
from repro.experiments.stats import summarize
from repro.paka.deploy import IsolationMode


def session_setup_experiment(registrations: int = 40, seed: int = 60) -> ExperimentReport:
    report = ExperimentReport(
        experiment_id="E6",
        title="End-to-end UE session setup and the SGX share",
    )
    means = {}
    for isolation in (IsolationMode.CONTAINER, IsolationMode.SGX):
        testbed = warmed_testbed(isolation, seed=seed)
        setups = []
        for _ in range(registrations):
            ue = testbed.add_subscriber()
            outcome = testbed.register(ue, establish_session=True)
            if not outcome.success:
                raise RuntimeError(f"registration failed: {outcome.failure_cause}")
            setups.append(outcome.session_setup_ms)
        label = isolation.value
        report.series[label] = summarize(f"{label} session setup", setups, "ms")
        means[label] = report.series[label].mean

    sgx_added = means["sgx"] - means["container"]
    share = 100.0 * sgx_added / means["sgx"]
    report.derived["container_setup_ms"] = means["container"]
    report.derived["sgx_setup_ms"] = means["sgx"]
    report.derived["sgx_added_ms"] = sgx_added
    report.derived["sgx_share_percent"] = share

    report.checks.append(
        BandCheck("SGX end-to-end setup (ms)", means["sgx"], 52.0, 72.0,
                  paper_value=62.38)
    )
    report.checks.append(
        BandCheck("SGX-added delay (ms)", sgx_added, 0.8, 4.5, paper_value=3.48)
    )
    report.checks.append(
        BandCheck("SGX share of setup (%)", share, 1.2, 7.0, paper_value=5.58)
    )
    report.notes = (
        "the SGX delta is the stable-regime response inflation of the three "
        "module exchanges; a small fraction of the radio-dominated total"
    )
    return report
