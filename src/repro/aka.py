"""5G-AKA authentication-vector generation (home network side).

This is the cryptographic heart the paper isolates: given the subscriber
key material and a fresh RAND/SQN, produce the Home Environment
Authentication Vector (RAND, AUTN, XRES*, K_AUSF) and, downstream, the
Serving Environment vector (RAND, AUTN, HXRES*) plus K_SEAF.  The same
functions run inside the eUDM / eAUSF P-AKA enclaves and inside the
monolithic VNFs — byte-identical results, different isolation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.kdf import (
    derive_hxres_star,
    derive_kausf,
    derive_kseaf,
    derive_res_star,
)
from repro.crypto.milenage import milenage_for

# Authentication Management Field with the "separation bit" set, mandatory
# for 5G-AKA (TS 33.102 Annex H / TS 33.501 §6.1.3.2).
AMF_FIELD_5G = bytes.fromhex("8000")


@dataclass(frozen=True)
class HomeAuthVector:
    """HE AV produced by the UDM: RAND ‖ AUTN ‖ XRES* ‖ K_AUSF."""

    rand: bytes
    autn: bytes
    xres_star: bytes
    kausf: bytes

    def __post_init__(self) -> None:
        if len(self.rand) != 16:
            raise ValueError("RAND must be 16 bytes")
        if len(self.autn) != 16:
            raise ValueError("AUTN must be 16 bytes")
        if len(self.xres_star) != 16:
            raise ValueError("XRES* must be 16 bytes")
        if len(self.kausf) != 32:
            raise ValueError("K_AUSF must be 32 bytes")


@dataclass(frozen=True)
class ServingAuthVector:
    """SE AV forwarded to the SEAF/AMF: RAND ‖ AUTN ‖ HXRES*."""

    rand: bytes
    autn: bytes
    hxres_star: bytes


def build_autn(sqn: bytes, ak: bytes, amf_field: bytes, mac_a: bytes) -> bytes:
    """AUTN = (SQN ⊕ AK) ‖ AMF ‖ MAC-A (TS 33.102 §6.3.2)."""
    if len(sqn) != 6 or len(ak) != 6:
        raise ValueError("SQN and AK must be 6 bytes")
    sqn_xor_ak = bytes(s ^ a for s, a in zip(sqn, ak))
    return sqn_xor_ak + amf_field + mac_a


def generate_he_av(
    k: bytes,
    opc: bytes,
    rand: bytes,
    sqn: bytes,
    snn: bytes,
    amf_field: bytes = AMF_FIELD_5G,
) -> HomeAuthVector:
    """Generate the HE AV (the eUDM P-AKA function, Table I row 1).

    Executes MILENAGE f1–f5, assembles AUTN, derives RES → XRES* and
    K_AUSF per TS 33.501 Annex A.
    """
    milenage = milenage_for(k, opc)
    vector = milenage.generate(rand, sqn, amf_field)
    autn = build_autn(sqn, vector.ak, amf_field, vector.mac_a)
    sqn_xor_ak = autn[:6]
    xres_star = derive_res_star(vector.ck, vector.ik, snn, rand, vector.res)
    kausf = derive_kausf(vector.ck, vector.ik, snn, sqn_xor_ak)
    return HomeAuthVector(rand=rand, autn=autn, xres_star=xres_star, kausf=kausf)


def derive_se_av(he_av: HomeAuthVector, snn: bytes) -> "tuple[ServingAuthVector, bytes]":
    """Derive the SE AV + K_SEAF from an HE AV (the eAUSF P-AKA function).

    Returns ``(se_av, kseaf)``; the AUSF keeps XRES* and K_SEAF to itself
    and forwards only the SE AV until the UE's response verifies.
    """
    hxres_star = derive_hxres_star(he_av.rand, he_av.xres_star)
    kseaf = derive_kseaf(he_av.kausf, snn)
    se_av = ServingAuthVector(
        rand=he_av.rand, autn=he_av.autn, hxres_star=hxres_star
    )
    return se_av, kseaf


def verify_hres_star(rand: bytes, res_star: bytes, hxres_star: bytes) -> bool:
    """SEAF-side check: SHA-256(RAND ‖ RES*) truncated == HXRES*."""
    return derive_hxres_star(rand, res_star) == hxres_star


from typing import Optional


def verify_auts(
    k: bytes, opc: bytes, rand: bytes, auts: bytes
) -> Optional[int]:
    """Home-network side of resynchronisation (TS 33.102 §6.3.5):
    validate the UE's AUTS token and recover its SQN_MS, or ``None``."""
    if len(auts) != 14:
        return None
    milenage = milenage_for(k, opc)
    vector = milenage.f2345(rand)
    sqn_ms = bytes(c ^ a for c, a in zip(auts[:6], vector.ak_star))
    _, expected_mac_s = milenage.f1(rand, sqn_ms, bytes(2))
    if expected_mac_s != auts[6:]:
        return None
    return int.from_bytes(sqn_ms, "big")
