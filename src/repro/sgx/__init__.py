"""SGX / HMEE simulator.

Models Intel SGX at the abstraction level the paper measures:

* **enclave lifecycle** — ECREATE, EADD/EEXTEND page measurement, EINIT,
  optional heap pre-faulting ("preheat"),
* **transitions** — EENTER/EEXIT for ECALL/OCALL, AEX + ERESUME for
  asynchronous exits, with cycle costs in the 10k–18k band the paper
  cites for a transition pair,
* **EPC** — a page cache carved from the host PRM, with paging costs when
  the working set exceeds the configured enclave size,
* **confidentiality semantics** — enclave memory read from outside the
  CPU package yields ciphertext; only ECALL-entered code sees plaintext.
  This is what the security evaluation (Table V) exercises,
* **attestation & sealing** — MRENCLAVE measurement, signed quotes,
  measurement-bound sealed blobs,
* **aesmd** — the Architectural Enclave Service Manager that provisions
  launch tokens (a *trusted* entity in the paper's threat model).
"""

from repro.sgx.errors import (
    AttestationError,
    EnclaveLostError,
    EnclaveNotInitializedError,
    SgxError,
    SgxUnsupportedError,
    SealingError,
)
from repro.sgx.costmodel import SgxCostModel
from repro.sgx.stats import SgxStats
from repro.sgx.measurement import EnclaveMeasurement, SigStruct, sign_enclave
from repro.sgx.epc import EpcManager, EpcRegion
from repro.sgx.enclave import Enclave, EnclaveBuildInfo, EcallContext
from repro.sgx.attestation import Quote, QuotingEnclave, verify_quote
from repro.sgx.sealing import seal, unseal
from repro.sgx.aesm import AesmDaemon, LaunchToken

__all__ = [
    "SgxError",
    "SgxUnsupportedError",
    "EnclaveNotInitializedError",
    "EnclaveLostError",
    "AttestationError",
    "SealingError",
    "SgxCostModel",
    "SgxStats",
    "EnclaveMeasurement",
    "SigStruct",
    "sign_enclave",
    "EpcManager",
    "EpcRegion",
    "Enclave",
    "EnclaveBuildInfo",
    "EcallContext",
    "Quote",
    "QuotingEnclave",
    "verify_quote",
    "seal",
    "unseal",
    "AesmDaemon",
    "LaunchToken",
]
