"""SGX operational counters.

Gramine's ``sgx.enable_stats`` option makes the PAL report the number of
EENTERs, EEXITs and AEXs an enclave performed — these are the exact
counters Table III of the paper reports.  The simulator keeps the same
counters per enclave, plus higher-level ECALL/OCALL and paging counts
useful for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class SgxStats:
    """Counters mirroring Gramine's ``enable_stats`` output."""

    eenters: int = 0
    eexits: int = 0
    aexs: int = 0
    eresumes: int = 0
    ecalls: int = 0
    ocalls: int = 0
    page_faults: int = 0
    page_evictions: int = 0
    bytes_copied_in: int = 0
    bytes_copied_out: int = 0
    ocalls_by_syscall: Dict[str, int] = field(default_factory=dict)

    def record_ocall(self, syscall: str) -> None:
        self.ocalls += 1
        self.ocalls_by_syscall[syscall] = self.ocalls_by_syscall.get(syscall, 0) + 1

    def snapshot(self) -> "SgxStats":
        """A frozen copy for before/after differencing."""
        return SgxStats(
            eenters=self.eenters,
            eexits=self.eexits,
            aexs=self.aexs,
            eresumes=self.eresumes,
            ecalls=self.ecalls,
            ocalls=self.ocalls,
            page_faults=self.page_faults,
            page_evictions=self.page_evictions,
            bytes_copied_in=self.bytes_copied_in,
            bytes_copied_out=self.bytes_copied_out,
            ocalls_by_syscall=dict(self.ocalls_by_syscall),
        )

    def delta(self, earlier: "SgxStats") -> "SgxStats":
        """Counter difference ``self - earlier`` (Table III methodology)."""
        return SgxStats(
            eenters=self.eenters - earlier.eenters,
            eexits=self.eexits - earlier.eexits,
            aexs=self.aexs - earlier.aexs,
            eresumes=self.eresumes - earlier.eresumes,
            ecalls=self.ecalls - earlier.ecalls,
            ocalls=self.ocalls - earlier.ocalls,
            page_faults=self.page_faults - earlier.page_faults,
            page_evictions=self.page_evictions - earlier.page_evictions,
            bytes_copied_in=self.bytes_copied_in - earlier.bytes_copied_in,
            bytes_copied_out=self.bytes_copied_out - earlier.bytes_copied_out,
            ocalls_by_syscall={
                name: count - earlier.ocalls_by_syscall.get(name, 0)
                for name, count in self.ocalls_by_syscall.items()
            },
        )
