"""SGX error hierarchy."""


class SgxError(Exception):
    """Base class for all SGX simulator errors."""


class SgxUnsupportedError(SgxError):
    """The host CPU does not support the requested SGX feature."""


class EnclaveNotInitializedError(SgxError):
    """ECALL attempted before EINIT completed."""


class EnclaveLostError(SgxError):
    """The enclave was destroyed (e.g. power event / teardown) mid-use."""


class AttestationError(SgxError):
    """Quote generation or verification failed."""


class SealingError(SgxError):
    """Sealed blob could not be unsealed (wrong enclave identity or tamper)."""


class EpcExhaustedError(SgxError):
    """No EPC pages available and eviction is disabled."""
