"""Secret sealing.

Sealing encrypts data under a key derived from the CPU's fused secret and
the enclave's identity, so a sealed blob written to untrusted storage (or
baked into a container image — KI 27) can only be opened by the same
enclave identity on the same platform.  Two policies exist, as on real
SGX:

* ``MRENCLAVE`` policy — only the *exact same* enclave build can unseal,
* ``MRSIGNER`` policy — any enclave signed by the same vendor can unseal
  (survives enclave upgrades).
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from enum import Enum

from repro.sgx.enclave import Enclave
from repro.sgx.errors import SealingError


class SealPolicy(Enum):
    MRENCLAVE = "mrenclave"
    MRSIGNER = "mrsigner"


@dataclass(frozen=True)
class SealedBlob:
    """An opaque sealed secret; safe to store anywhere untrusted."""

    policy: SealPolicy
    ciphertext: bytes
    tag: bytes


# Per-platform fused sealing root; the attack model cannot read it because
# it never leaves this module except through key derivation.
def _platform_root(platform_id: str) -> bytes:
    return hashlib.sha256(b"fuse-sealing-root" + platform_id.encode()).digest()


def _seal_key(enclave: Enclave, policy: SealPolicy, platform_id: str) -> bytes:
    if not enclave.initialized or enclave.measurement is None:
        raise SealingError("enclave must be initialized to derive sealing keys")
    if policy is SealPolicy.MRENCLAVE:
        identity = enclave.measurement.mrenclave
    else:
        sig = enclave.build.sigstruct
        if sig is None:
            raise SealingError("MRSIGNER policy requires a signed enclave")
        identity = sig.mrsigner
    return hashlib.sha256(
        _platform_root(platform_id) + policy.value.encode() + identity
    ).digest()


def _keystream(key: bytes, length: int) -> bytes:
    out = bytearray()
    counter = 0
    while len(out) < length:
        out.extend(hashlib.sha256(key + counter.to_bytes(8, "big")).digest())
        counter += 1
    return bytes(out[:length])


def seal(
    enclave: Enclave,
    plaintext: bytes,
    policy: SealPolicy = SealPolicy.MRENCLAVE,
    platform_id: str = "platform-0",
) -> SealedBlob:
    """Seal ``plaintext`` to the enclave's identity on this platform."""
    key = _seal_key(enclave, policy, platform_id)
    ciphertext = bytes(
        p ^ k for p, k in zip(plaintext, _keystream(key, len(plaintext)))
    )
    tag = hmac.new(key, ciphertext, hashlib.sha256).digest()[:16]
    return SealedBlob(policy=policy, ciphertext=ciphertext, tag=tag)


def unseal(
    enclave: Enclave,
    blob: SealedBlob,
    platform_id: str = "platform-0",
) -> bytes:
    """Unseal a blob; fails unless identity and platform match the sealer."""
    key = _seal_key(enclave, blob.policy, platform_id)
    expected = hmac.new(key, blob.ciphertext, hashlib.sha256).digest()[:16]
    if not hmac.compare_digest(expected, blob.tag):
        raise SealingError(
            "unseal failed: enclave identity or platform does not match "
            "(or the blob was tampered with)"
        )
    return bytes(
        c ^ k for c, k in zip(blob.ciphertext, _keystream(key, len(blob.ciphertext)))
    )
