"""Enclave Page Cache (EPC) model.

The EPC is the encrypted slice of the Processor Reserved Memory holding
enclave pages.  We model it in aggregate — resident-page *counts* rather
than page identities — because the experiments only depend on:

* capacity: the sum of resident pages across enclaves cannot exceed the
  physical EPC; overshoot forces paging (EWB evict + ELDU reload),
* fault costs: first touches (page-ins) are charged per page,
* a management overhead that grows with the number of resident pages
  (the kernel/driver scans larger enclaves more slowly) — this is what
  produces the paper's Fig 8 observation that an 8 GB enclave is slightly
  *slower* and noisier than a 512 MB one for the same workload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.hw.cpu import Cpu
from repro.sgx.costmodel import SgxCostModel
from repro.sgx.errors import EpcExhaustedError
from repro.sgx.stats import SgxStats
from repro.sim.rng import RngService

PAGE_SIZE = 4096


@dataclass
class EpcRegion:
    """The EPC view of one enclave."""

    name: str
    size_bytes: int
    manager: "EpcManager"
    resident_pages: int = 0

    @property
    def total_pages(self) -> int:
        return self.size_bytes // PAGE_SIZE

    @property
    def utilization(self) -> float:
        if self.total_pages == 0:
            return 0.0
        return self.resident_pages / self.total_pages


class EpcManager:
    """Physical EPC shared by all enclaves on a host."""

    def __init__(
        self,
        capacity_bytes: int,
        cpu: Cpu,
        rng: RngService,
        cost_model: Optional[SgxCostModel] = None,
    ) -> None:
        self.capacity_bytes = capacity_bytes
        self.cpu = cpu
        self.rng = rng
        self.cost_model = cost_model or SgxCostModel()
        self._regions: Dict[str, EpcRegion] = {}

    @property
    def capacity_pages(self) -> int:
        return self.capacity_bytes // PAGE_SIZE

    @property
    def resident_pages(self) -> int:
        return sum(r.resident_pages for r in self._regions.values())

    def create_region(self, name: str, size_bytes: int) -> EpcRegion:
        """Reserve an enclave's virtual EPC range (ECREATE time)."""
        if name in self._regions:
            raise ValueError(f"EPC region {name!r} already exists")
        region = EpcRegion(name=name, size_bytes=size_bytes, manager=self)
        self._regions[name] = region
        return region

    def release_region(self, name: str) -> None:
        self._regions.pop(name, None)

    def fault_in(
        self,
        region: EpcRegion,
        n_pages: int,
        stats: Optional[SgxStats] = None,
        charge_time: bool = True,
    ) -> None:
        """Page ``n_pages`` into ``region``, evicting globally if needed.

        ``charge_time=False`` is used by the AEX/idle path where the clock
        has already been advanced by the idle window itself.
        """
        if n_pages <= 0:
            return
        if n_pages > region.total_pages:
            raise EpcExhaustedError(
                f"enclave {region.name!r} touched {n_pages} pages but its "
                f"EPC size is only {region.total_pages} pages"
            )
        # Pages above the region's own headroom cycle through the EPC
        # transiently: each is faulted in and immediately written back, so
        # residency never exceeds the enclave's size.
        headroom = region.total_pages - region.resident_pages
        resident_increase = min(n_pages, headroom)
        transient = n_pages - resident_increase
        # Evict only what the resident increase actually needs, and only
        # from *other* regions — stealing from the faulting region would
        # evict pages just to re-fault them on the next touch.
        free = self.capacity_pages - self.resident_pages
        need = max(0, resident_increase - free)
        if need:
            evicted = self._evict(need, stats, charge_time, exclude=region)
            shortfall = need - evicted
            if shortfall:
                # Other regions could not free enough physical pages; the
                # remainder of this fault becomes transient traffic too.
                resident_increase -= shortfall
                transient += shortfall
        region.resident_pages += resident_increase
        if stats is not None:
            stats.page_faults += n_pages
            stats.page_evictions += transient
        if charge_time:
            self.cpu.spend_cycles(
                n_pages * self.cost_model.page_fault_cycles
                + transient * self.cost_model.page_evict_cycles
            )

    def _evict(
        self,
        n_pages: int,
        stats: Optional[SgxStats],
        charge_time: bool,
        exclude: Optional[EpcRegion] = None,
    ) -> int:
        """Evict up to ``n_pages`` from the largest regions (approximate
        global LRU), never touching ``exclude``.  Returns the number of
        pages actually evicted — each counted exactly once, here."""
        remaining = n_pages
        for region in sorted(
            self._regions.values(), key=lambda r: r.resident_pages, reverse=True
        ):
            if region is exclude:
                continue
            take = min(region.resident_pages, remaining)
            region.resident_pages -= take
            remaining -= take
            if remaining == 0:
                break
        evicted = n_pages - remaining
        if stats is not None:
            stats.page_evictions += evicted
        if charge_time:
            self.cpu.spend_cycles(evicted * self.cost_model.page_evict_cycles)
        return evicted

    def management_cycles(self, region: EpcRegion, stream: str) -> float:
        """Per-call EPC management overhead for ``region``.

        Grows logarithmically with resident pages, with jitter that widens
        as the enclave gets bigger — the mechanism behind Fig 8's 8 GB
        penalty and wider interquartile range.
        """
        pages = max(region.resident_pages, 1)
        base = 140.0 * math.log2(pages + 1)
        rel_sigma = 0.04 + 0.10 * min(1.0, pages / (2 * 1024**3 / PAGE_SIZE))
        return self.rng.jitter(stream, base, rel_sigma)
