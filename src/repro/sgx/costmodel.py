"""SGX cycle-cost model.

All constants are in CPU cycles so they rescale with the host frequency.
The transition pair cost (EENTER + EEXIT) is drawn uniformly from the
10 000–18 000 cycle band the paper cites (§II-B, refs [18], [19]); the
remaining constants are calibration values chosen so the reproduction's
latency distributions land in the paper's reported bands (see DESIGN.md §5
and EXPERIMENTS.md for paper-vs-measured).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.sim.rng import RngService


@dataclass(frozen=True)
class SgxCostModel:
    """Cycle costs of SGX micro-operations."""

    # Transition pair (EENTER + EEXIT) drawn uniformly from this band,
    # split between the two instructions.
    transition_pair_min_cycles: int = 10_000
    transition_pair_max_cycles: int = 18_000

    # AEX is cheaper than a full ECALL path; ERESUME cheaper than EENTER.
    aex_cycles: int = 4_200
    eresume_cycles: int = 3_000

    # Enclave build: per-page EADD and per-256-byte-chunk EEXTEND.
    ecreate_cycles: int = 40_000
    eadd_page_cycles: int = 1_900
    eextend_chunk_cycles: int = 650  # 16 chunks per 4 KiB page
    einit_cycles: int = 80_000

    # EPC paging (EWB/ELDU): evict = encrypt + version, load = decrypt + verify.
    page_fault_cycles: int = 12_500
    page_evict_cycles: int = 9_000
    # First touch of a resident-but-cold EPC page within a call (MEE fill).
    cold_page_access_cycles: int = 830

    # Crossing the boundary copies and re-validates buffers.
    boundary_copy_cycles_per_byte: float = 3.1

    # Memory Encryption Engine penalty on in-enclave, memory-bound compute.
    epc_compute_penalty: float = 1.10

    def draw_transition_pair(self, rng: RngService, stream: str) -> "tuple[int, int]":
        """Sample an (EENTER, EEXIT) cycle cost pair from the 10k–18k band."""
        return self.draw_transition_pair_from(rng.stream(stream))

    def draw_transition_pair_from(self, stream: random.Random) -> "tuple[int, int]":
        """Like :meth:`draw_transition_pair` on an already-resolved stream.

        Hot callers (the fused Gramine syscall path) hold the stream object
        so each draw skips the name-to-stream lookup; the draw sequence is
        identical because :class:`RngService` returns one stream per name.
        """
        total = stream.uniform(
            self.transition_pair_min_cycles, self.transition_pair_max_cycles
        )
        # Entry is slightly more expensive than exit (TLB/LSD flush on entry).
        eenter = total * 0.55
        eexit = total * 0.45
        return int(eenter), int(eexit)
