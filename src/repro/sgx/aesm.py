"""aesmd — the Architectural Enclave Service Manager Daemon.

aesmd mediates enclave launch: the SGX driver will only EINIT an enclave
that holds a launch token from the Launch Enclave.  The paper lists aesmd
among the *trusted* entities of its threat model; we model it as the
gatekeeper that validates a SIGSTRUCT before issuing a token, rejecting
unsigned or tampered enclaves.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Optional, Set

from repro.sgx.errors import SgxError
from repro.sgx.measurement import SigStruct


class LaunchDeniedError(SgxError):
    """aesmd refused to issue a launch token."""


@dataclass(frozen=True)
class LaunchToken:
    """EINITTOKEN: proof that aesmd authorised this enclave launch."""

    mrenclave: bytes
    mrsigner: bytes
    mac: bytes


class AesmDaemon:
    """Per-host launch-control daemon.

    ``allowed_signers`` optionally restricts launches to a whitelist of
    MRSIGNER values (how an operator pins enclave vendors); empty means
    any *validly signed* enclave may launch.
    """

    def __init__(self, platform_id: str) -> None:
        self.platform_id = platform_id
        self._launch_key = hashlib.sha256(
            b"launch-key" + platform_id.encode()
        ).digest()
        self.allowed_signers: Set[bytes] = set()
        self.tokens_issued = 0

    def allow_signer(self, mrsigner: bytes) -> None:
        self.allowed_signers.add(mrsigner)

    def request_launch_token(
        self, sigstruct: Optional[SigStruct], signing_key: Optional[bytes] = None
    ) -> LaunchToken:
        """Validate the SIGSTRUCT and issue an EINITTOKEN.

        ``signing_key`` lets callers that know the vendor key request full
        signature verification; without it only structural checks and the
        signer whitelist apply (as with production launch control).
        """
        if sigstruct is None:
            raise LaunchDeniedError("enclave has no SIGSTRUCT; refusing launch")
        if signing_key is not None and not sigstruct.verify(signing_key):
            raise LaunchDeniedError("SIGSTRUCT signature invalid")
        if self.allowed_signers and sigstruct.mrsigner not in self.allowed_signers:
            raise LaunchDeniedError("enclave signer not in launch whitelist")
        self.tokens_issued += 1
        mac = hmac.new(
            self._launch_key,
            sigstruct.mrenclave + sigstruct.mrsigner,
            hashlib.sha256,
        ).digest()[:16]
        return LaunchToken(
            mrenclave=sigstruct.mrenclave, mrsigner=sigstruct.mrsigner, mac=mac
        )

    def validate_token(self, token: LaunchToken) -> bool:
        expected = hmac.new(
            self._launch_key, token.mrenclave + token.mrsigner, hashlib.sha256
        ).digest()[:16]
        return hmac.compare_digest(expected, token.mac)
