"""The enclave: lifecycle, transitions and confidentiality semantics.

An :class:`Enclave` is built from an :class:`EnclaveBuildInfo` (produced by
the Gramine/GSC layer), loaded onto a host, and then entered via ECALLs.
Inside an ECALL, code runs with plaintext access to enclave secrets and can
issue OCALLs (each one an EEXIT/EENTER round trip).  Outside, the enclave's
memory is only visible as ciphertext — this is the property the paper's
Table V attack analysis relies on, and the security test-suite asserts it
in both directions (attacks succeed against plain containers, fail here).
"""

from __future__ import annotations

import hashlib
import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional

from repro.hw.host import PhysicalHost
from repro.sgx.costmodel import SgxCostModel
from repro.sgx.epc import PAGE_SIZE, EpcManager, EpcRegion
from repro.sgx.errors import (
    EnclaveLostError,
    EnclaveNotInitializedError,
    SgxError,
    SgxUnsupportedError,
)
from repro.sgx.measurement import EEXTEND_CHUNK, EnclaveMeasurement, MeasurementBuilder, SigStruct
from repro.sgx.stats import SgxStats
from repro.sim.clock import TimeSpan

# The only principal allowed to observe enclave plaintext from "outside"
# an ECALL: the CPU package itself (used by the pager / MEE internals).
CPU_PACKAGE_ACTOR = "cpu-package"


@dataclass(frozen=True)
class EnclaveBuildInfo:
    """Everything the loader needs to build and measure an enclave.

    Produced by :func:`repro.gramine.gsc.build_gsc_image` for GSC images;
    can also be constructed directly for bespoke enclaves (tests do this).
    """

    name: str
    enclave_size_bytes: int
    max_threads: int
    measured_bytes: int  # code + initial data measured via EADD/EEXTEND
    trusted_files_bytes: int  # files hash-verified at load (GSC: ~rootfs)
    heap_bytes: int  # heap reserved inside the enclave
    preheat: bool = False
    debug: bool = False
    stats_enabled: bool = True
    sigstruct: Optional[SigStruct] = None

    def __post_init__(self) -> None:
        if self.enclave_size_bytes <= 0:
            raise ValueError("enclave size must be positive")
        if self.max_threads < 1:
            raise ValueError("an enclave needs at least one thread (TCS)")
        if self.heap_bytes > self.enclave_size_bytes:
            raise ValueError("heap cannot exceed the enclave size")


class EcallContext:
    """Execution context of one ECALL; the only plaintext view of secrets."""

    def __init__(self, enclave: "Enclave", name: str, rng_stream: str) -> None:
        self._enclave = enclave
        self._name = name
        self._stream = rng_stream
        self.closed = False

    def _check_open(self) -> None:
        if self.closed:
            raise SgxError(f"ECALL context {self._name!r} already exited")

    def compute(self, cycles: float) -> None:
        """In-enclave computation; charged with the MEE penalty."""
        self._check_open()
        model = self._enclave.cost_model
        self._enclave.host.cpu.spend_cycles(cycles * model.epc_compute_penalty)

    def touch_pages(self, cold: int = 0, new: int = 0) -> None:
        """Touch EPC pages: ``new`` pages fault in, ``cold`` are resident
        but cold (MEE cache-line fills)."""
        self._check_open()
        enclave = self._enclave
        if new:
            enclave.epc_manager.fault_in(enclave.epc_region, new, enclave.stats)
        if cold:
            enclave.host.cpu.spend_cycles(
                cold * enclave.cost_model.cold_page_access_cycles
            )

    def ocall(
        self,
        syscall: str,
        bytes_out: int = 0,
        bytes_in: int = 0,
        host_cycles: float = 3_000,
    ) -> None:
        """Leave the enclave to service ``syscall`` on the untrusted host.

        Charges EEXIT + boundary copy-out + host work + EENTER + copy-in,
        and counts one OCALL (one EEXIT and one EENTER in the Gramine
        stats, exactly as Table III describes).
        """
        self._check_open()
        enclave = self._enclave
        model = enclave.cost_model
        eenter, eexit = model.draw_transition_pair(
            enclave.host.rng, f"{enclave.build.name}.transition"
        )
        cpu = enclave.host.cpu
        cpu.spend_cycles(eexit)
        cpu.spend_cycles(bytes_out * model.boundary_copy_cycles_per_byte)
        cpu.spend_cycles(host_cycles)
        cpu.spend_cycles(eenter)
        cpu.spend_cycles(bytes_in * model.boundary_copy_cycles_per_byte)

        stats = enclave.stats
        stats.eexits += 1
        stats.eenters += 1
        stats.record_ocall(syscall)
        stats.bytes_copied_out += bytes_out
        stats.bytes_copied_in += bytes_in
        enclave.host.events.emit(
            enclave.host.clock.timestamp(), "sgx.ocall",
            enclave=enclave.build.name, syscall=syscall,
        )

    def store_secret(self, key: str, value: bytes) -> None:
        """Place a secret in enclave memory (plaintext view inside only)."""
        self._check_open()
        self._enclave._secrets[key] = bytes(value)

    def load_secret(self, key: str) -> bytes:
        self._check_open()
        try:
            return self._enclave._secrets[key]
        except KeyError:
            raise KeyError(f"no secret {key!r} in enclave {self._enclave.build.name!r}")


class Enclave:
    """A loaded SGX enclave on a physical host."""

    def __init__(
        self,
        host: PhysicalHost,
        build: EnclaveBuildInfo,
        epc_manager: EpcManager,
        cost_model: Optional[SgxCostModel] = None,
    ) -> None:
        if not host.sgx_capable:
            raise SgxUnsupportedError(f"host {host.name!r} has no SGX-capable CPU")
        self.host = host
        self.build = build
        self.epc_manager = epc_manager
        self.cost_model = cost_model or SgxCostModel()
        self.stats = SgxStats()
        self.initialized = False
        self.destroyed = False
        self.load_span: Optional[TimeSpan] = None
        self.measurement: Optional[EnclaveMeasurement] = None
        self.epc_region: EpcRegion = epc_manager.create_region(
            f"{build.name}#{id(self):x}", build.enclave_size_bytes
        )
        self._secrets: Dict[str, bytes] = {}
        self._threads_entered = 0
        # The hardware sealing/memory-encryption root, unique per enclave
        # instance and never observable outside the CPU package.
        self._hw_key = hashlib.sha256(
            b"cpu-fused-key" + build.name.encode() + id(self).to_bytes(8, "little")
        ).digest()

    # ------------------------------------------------------------------ load

    def load(self) -> TimeSpan:
        """Build + initialize the enclave; returns the load-time span.

        Models ECREATE, per-page EADD/EEXTEND over the measured contents,
        trusted-file verification (hash of every byte, read through OCALLs
        in chunks — the "several hundred OCALLs" of the paper's §V-B1),
        EINIT, and the optional preheat pre-faulting of all heap pages.
        """
        if self.destroyed:
            raise EnclaveLostError(f"enclave {self.build.name!r} was destroyed")
        if self.initialized:
            raise SgxError(f"enclave {self.build.name!r} already loaded")

        model = self.cost_model
        cpu = self.host.cpu
        builder = MeasurementBuilder()
        with self.host.clock.measure() as span:
            # ECREATE
            builder.ecreate(self.build.enclave_size_bytes)
            cpu.spend_cycles(model.ecreate_cycles)

            # EADD + EEXTEND the measured pages (aggregate charging).
            measured_pages = max(1, self.build.measured_bytes // PAGE_SIZE)
            chunks_per_page = PAGE_SIZE // EEXTEND_CHUNK
            cpu.spend_cycles(
                measured_pages
                * (model.eadd_page_cycles + chunks_per_page * model.eextend_chunk_cycles)
            )
            builder.eadd(0, flags="rx")
            builder.eextend(
                0,
                hashlib.sha256(
                    self.build.name.encode() + self.build.measured_bytes.to_bytes(8, "big")
                ).digest()[:32],
            )
            self.epc_manager.fault_in(self.epc_region, measured_pages, self.stats)

            # Trusted-file verification: every byte hashed in-enclave, read
            # from the untrusted host in chunks — one OCALL per chunk.
            self._verify_trusted_files()

            # EINIT (launch-token checked by aesmd before we get here).
            cpu.spend_cycles(model.einit_cycles)
            self.measurement = builder.finalize()
            self.initialized = True

            if self.build.preheat:
                heap_pages = self.build.heap_bytes // PAGE_SIZE
                already = self.epc_region.resident_pages
                to_fault = max(
                    0, min(heap_pages, self.epc_region.total_pages - already)
                )
                self.epc_manager.fault_in(self.epc_region, to_fault, self.stats)

        self.load_span = span
        self.host.events.emit(
            self.host.clock.timestamp(), "sgx.load",
            enclave=self.build.name, load_ms=span.ms,
        )
        return span

    # Verification reads in 16 MiB bursts (one OCALL each — a couple of
    # hundred for a multi-GB GSC rootfs, the paper's "several hundred
    # OCALLs") and hashes in-enclave at ≈40 cycles/byte (SHA-256 through
    # small shielded buffers is slow in Gramine), yielding the ~1 minute
    # enclave load times of Fig 7.
    _TRUSTED_FILE_CHUNK = 16 * 1024 * 1024
    _HASH_CYCLES_PER_BYTE = 40.0

    def _verify_trusted_files(self) -> None:
        total = self.build.trusted_files_bytes
        if total <= 0:
            return
        model = self.cost_model
        cpu = self.host.cpu
        n_chunks = (total + self._TRUSTED_FILE_CHUNK - 1) // self._TRUSTED_FILE_CHUNK
        eenter, eexit = model.draw_transition_pair(
            self.host.rng, f"{self.build.name}.load"
        )
        # One OCALL round-trip per chunk plus the in-enclave hashing; the
        # host-side read throughput varies run to run (page cache, I/O
        # scheduling), which is the spread of Fig 7's boxes.
        cpu.spend_cycles(n_chunks * (eenter + eexit + 6_000))
        cpu.spend_cycles(
            self.host.rng.jitter(
                f"{self.build.name}.tfload", total * self._HASH_CYCLES_PER_BYTE, 0.008
            )
        )
        self.stats.eenters += n_chunks
        self.stats.eexits += n_chunks
        for _ in range(n_chunks):
            self.stats.record_ocall("pread64")

    # ----------------------------------------------------------------- ecall

    @contextmanager
    def ecall(
        self, name: str, bytes_in: int = 0, bytes_out: int = 0
    ) -> Iterator[EcallContext]:
        """Enter the enclave (EENTER), yielding the in-enclave context.

        ``bytes_in``/``bytes_out`` are the marshalled argument and result
        sizes crossing the boundary (Table I's enclave input/output).
        """
        if self.destroyed:
            raise EnclaveLostError(f"enclave {self.build.name!r} was destroyed")
        if not self.initialized:
            raise EnclaveNotInitializedError(
                f"enclave {self.build.name!r}: ECALL {name!r} before EINIT"
            )
        if self._threads_entered >= self.build.max_threads:
            raise SgxError(
                f"enclave {self.build.name!r}: no free TCS "
                f"({self.build.max_threads} threads allowed)"
            )
        model = self.cost_model
        cpu = self.host.cpu
        eenter, eexit = model.draw_transition_pair(
            self.host.rng, f"{self.build.name}.transition"
        )
        self._threads_entered += 1
        self.stats.eenters += 1
        self.stats.ecalls += 1
        self.stats.bytes_copied_in += bytes_in
        cpu.spend_cycles(eenter)
        cpu.spend_cycles(bytes_in * model.boundary_copy_cycles_per_byte)
        cpu.spend_cycles(
            self.epc_manager.management_cycles(
                self.epc_region, f"{self.build.name}.epcmgmt"
            )
        )
        context = EcallContext(self, name, f"{self.build.name}.ecall")
        try:
            yield context
        finally:
            context.closed = True
            self._threads_entered -= 1
            self.stats.eexits += 1
            self.stats.bytes_copied_out += bytes_out
            cpu.spend_cycles(eexit)
            cpu.spend_cycles(bytes_out * model.boundary_copy_cycles_per_byte)

    def begin_persistent_ecall(self, name: str) -> EcallContext:
        """Enter the enclave and *stay* inside (the Gramine execution model:
        one ECALL for the process plus one per thread, with all subsequent
        interaction via OCALLs).  The returned context remains valid until
        :meth:`end_persistent_ecall`."""
        if self.destroyed:
            raise EnclaveLostError(f"enclave {self.build.name!r} was destroyed")
        if not self.initialized:
            raise EnclaveNotInitializedError(
                f"enclave {self.build.name!r}: ECALL {name!r} before EINIT"
            )
        if self._threads_entered >= self.build.max_threads:
            raise SgxError(
                f"enclave {self.build.name!r}: no free TCS "
                f"({self.build.max_threads} threads allowed)"
            )
        eenter, _ = self.cost_model.draw_transition_pair(
            self.host.rng, f"{self.build.name}.transition"
        )
        self._threads_entered += 1
        self.stats.eenters += 1
        self.stats.ecalls += 1
        self.host.cpu.spend_cycles(eenter)
        return EcallContext(self, name, f"{self.build.name}.ecall")

    def end_persistent_ecall(self, context: EcallContext) -> None:
        """Exit a persistent ECALL (process/thread termination)."""
        if context.closed:
            return
        context.closed = True
        self._threads_entered -= 1
        _, eexit = self.cost_model.draw_transition_pair(
            self.host.rng, f"{self.build.name}.transition"
        )
        self.stats.eexits += 1
        self.host.cpu.spend_cycles(eexit)

    # ------------------------------------------------------------- idle/AEX

    # Asynchronous exits are dominated by timer interrupts: a per-process
    # component plus a per-runnable-thread component.  Calibrated so a
    # 4-thread Gramine server accumulates ≈140k AEXs over the paper's
    # measurement window while a single-threaded empty workload sees ≈50k
    # (Table III), independent of how many UEs register.
    AEX_PROCESS_RATE_HZ = 194.0
    AEX_THREAD_RATE_HZ = 302.0

    def run_idle(
        self,
        duration_s: float,
        active_threads: Optional[int] = None,
        advance_clock: bool = True,
    ) -> None:
        """Account an idle window: the server blocks, interrupts keep firing.

        Books the AEX/ERESUME pairs that occur during the window and, by
        default, advances the clock by it.  ``advance_clock=False`` lets
        several enclaves share one concurrent idle window (the caller
        advances the clock once).  AEX re-entry uses ERESUME, not EENTER,
        so the EENTER counter is untouched (paper §V-B5).
        """
        if duration_s < 0:
            raise ValueError(f"negative idle window: {duration_s}")
        threads = self.build.max_threads if active_threads is None else active_threads
        expected = duration_s * (
            self.AEX_PROCESS_RATE_HZ + self.AEX_THREAD_RATE_HZ * threads
        )
        jittered = self.host.rng.jitter(f"{self.build.name}.aex", expected, 0.002)
        aex_count = int(round(jittered))
        self.stats.aexs += aex_count
        self.stats.eresumes += aex_count
        if advance_clock:
            self.host.clock.advance_s(duration_s)

    # ------------------------------------------------------ confidentiality

    def dump_memory(self, actor: str) -> bytes:
        """What ``actor`` sees when reading this enclave's memory region.

        Anything other than the CPU package observes the MEE ciphertext:
        a keyed stream indistinguishable from noise without the fused
        hardware key.  This models EPC confidentiality; it is what defeats
        the memory-introspection attacks of KIs 7 and 15.
        """
        serialized = json.dumps(
            {k: v.hex() for k, v in sorted(self._secrets.items())}
        ).encode()
        if actor == CPU_PACKAGE_ACTOR:
            return serialized
        return _mee_encrypt(self._hw_key, serialized)

    def destroy(self) -> None:
        """Tear the enclave down; EPC pages are scrubbed and released."""
        self._secrets.clear()
        self.epc_manager.release_region(self.epc_region.name)
        self.epc_region.resident_pages = 0
        self.initialized = False
        self.destroyed = True


def _mee_encrypt(hw_key: bytes, plaintext: bytes) -> bytes:
    """Memory-encryption-engine view: SHA-256 keystream under the fused key."""
    out = bytearray()
    counter = 0
    while len(out) < len(plaintext):
        block = hashlib.sha256(hw_key + counter.to_bytes(8, "big")).digest()
        out.extend(block)
        counter += 1
    return bytes(p ^ k for p, k in zip(plaintext, out[: len(plaintext)]))
