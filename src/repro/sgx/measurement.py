"""Enclave measurement (MRENCLAVE) and signing (SIGSTRUCT / MRSIGNER).

MRENCLAVE is a SHA-256 over the ordered log of page-add and
measure-extend operations performed while building the enclave; any change
to the measured contents, their placement or their order changes the
measurement.  SIGSTRUCT binds the measurement to the vendor's signing key;
MRSIGNER is the hash of that key.  The simulator reproduces these
relationships (hash-chain over build operations, key-hash identity) so
attestation and sealing behave faithfully.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Optional

PAGE_SIZE = 4096
EEXTEND_CHUNK = 256


class MeasurementBuilder:
    """Accumulates the MRENCLAVE hash chain during enclave build."""

    def __init__(self) -> None:
        self._hash = hashlib.sha256(b"ECREATE")
        self._finalized: Optional[bytes] = None

    def ecreate(self, size_bytes: int, attributes: bytes = b"") -> None:
        self._hash.update(b"SIZE" + size_bytes.to_bytes(8, "big") + attributes)

    def eadd(self, offset: int, flags: str) -> None:
        if self._finalized is not None:
            raise RuntimeError("measurement already finalized")
        self._hash.update(b"EADD" + offset.to_bytes(8, "big") + flags.encode())

    def eextend(self, offset: int, chunk: bytes) -> None:
        if self._finalized is not None:
            raise RuntimeError("measurement already finalized")
        self._hash.update(b"EEXTEND" + offset.to_bytes(8, "big") + chunk)

    def finalize(self) -> "EnclaveMeasurement":
        if self._finalized is None:
            self._finalized = self._hash.digest()
        return EnclaveMeasurement(mrenclave=self._finalized)


@dataclass(frozen=True)
class EnclaveMeasurement:
    """The MRENCLAVE identity of a built enclave."""

    mrenclave: bytes

    def __post_init__(self) -> None:
        if len(self.mrenclave) != 32:
            raise ValueError("MRENCLAVE must be 32 bytes")

    def hex(self) -> str:
        return self.mrenclave.hex()


@dataclass(frozen=True)
class SigStruct:
    """The enclave signature structure checked at EINIT.

    ``mrsigner`` is the SHA-256 of the signing key; ``signature`` is an
    HMAC stand-in for the RSA-3072 signature over the measurement (the
    security property tests need unforgeability relative to key knowledge,
    not a specific signature algorithm).
    """

    mrenclave: bytes
    mrsigner: bytes
    isv_prod_id: int
    isv_svn: int
    signature: bytes

    def verify(self, signing_key: bytes) -> bool:
        expected = _sigstruct_signature(
            signing_key, self.mrenclave, self.isv_prod_id, self.isv_svn
        )
        return hmac.compare_digest(self.signature, expected) and hmac.compare_digest(
            self.mrsigner, hashlib.sha256(signing_key).digest()
        )


def _sigstruct_signature(
    signing_key: bytes, mrenclave: bytes, isv_prod_id: int, isv_svn: int
) -> bytes:
    payload = mrenclave + isv_prod_id.to_bytes(2, "big") + isv_svn.to_bytes(2, "big")
    return hmac.new(signing_key, b"SIGSTRUCT" + payload, hashlib.sha256).digest()


def sign_enclave(
    measurement: EnclaveMeasurement,
    signing_key: bytes,
    isv_prod_id: int = 0,
    isv_svn: int = 1,
) -> SigStruct:
    """Produce the SIGSTRUCT for a measured enclave (the GSC sign step)."""
    return SigStruct(
        mrenclave=measurement.mrenclave,
        mrsigner=hashlib.sha256(signing_key).digest(),
        isv_prod_id=isv_prod_id,
        isv_svn=isv_svn,
        signature=_sigstruct_signature(
            signing_key, measurement.mrenclave, isv_prod_id, isv_svn
        ),
    )
