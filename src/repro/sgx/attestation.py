"""Remote attestation.

A relying party (e.g. a VNO deploying P-AKA modules on third-party
infrastructure, KI 13/20 of Table V) asks the Quoting Enclave for a quote
over the target enclave's measurement plus caller-supplied report data
(typically a key-exchange public key).  The quote is signed under the
platform attestation key, whose public half Intel's attestation service
vouches for — modelled here as a registry of genuine platform keys.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Dict, Optional

from repro.sgx.enclave import Enclave
from repro.sgx.errors import AttestationError


@dataclass(frozen=True)
class Quote:
    """An attestation quote: enclave identity + report data, signed."""

    mrenclave: bytes
    mrsigner: bytes
    isv_prod_id: int
    isv_svn: int
    report_data: bytes
    platform_id: str
    debug: bool
    signature: bytes

    def body(self) -> bytes:
        return (
            self.mrenclave
            + self.mrsigner
            + self.isv_prod_id.to_bytes(2, "big")
            + self.isv_svn.to_bytes(2, "big")
            + hashlib.sha256(self.report_data).digest()
            + self.platform_id.encode()
            + (b"\x01" if self.debug else b"\x00")
        )


class AttestationService:
    """Registry of genuine platform attestation keys (Intel IAS/DCAP stand-in)."""

    def __init__(self) -> None:
        self._platform_keys: Dict[str, bytes] = {}

    def provision_platform(self, platform_id: str, key: bytes) -> None:
        self._platform_keys[platform_id] = key

    def platform_key(self, platform_id: str) -> Optional[bytes]:
        return self._platform_keys.get(platform_id)


class QuotingEnclave:
    """The platform's Quoting Enclave: turns local reports into quotes."""

    def __init__(self, platform_id: str, service: AttestationService) -> None:
        self.platform_id = platform_id
        self._attestation_key = hashlib.sha256(
            b"platform-attestation-key" + platform_id.encode()
        ).digest()
        service.provision_platform(platform_id, self._attestation_key)

    def quote(self, enclave: Enclave, report_data: bytes = b"") -> Quote:
        if not enclave.initialized or enclave.measurement is None:
            raise AttestationError(
                f"enclave {enclave.build.name!r} not initialized; cannot quote"
            )
        sig_info = enclave.build.sigstruct
        mrsigner = sig_info.mrsigner if sig_info else bytes(32)
        prod_id = sig_info.isv_prod_id if sig_info else 0
        svn = sig_info.isv_svn if sig_info else 0
        quote = Quote(
            mrenclave=enclave.measurement.mrenclave,
            mrsigner=mrsigner,
            isv_prod_id=prod_id,
            isv_svn=svn,
            report_data=report_data,
            platform_id=self.platform_id,
            debug=enclave.build.debug,
            signature=b"",
        )
        signature = hmac.new(self._attestation_key, quote.body(), hashlib.sha256).digest()
        return Quote(
            mrenclave=quote.mrenclave,
            mrsigner=quote.mrsigner,
            isv_prod_id=quote.isv_prod_id,
            isv_svn=quote.isv_svn,
            report_data=quote.report_data,
            platform_id=quote.platform_id,
            debug=quote.debug,
            signature=signature,
        )


def verify_quote(
    quote: Quote,
    service: AttestationService,
    expected_mrenclave: Optional[bytes] = None,
    expected_mrsigner: Optional[bytes] = None,
    allow_debug: bool = False,
) -> bool:
    """Verify a quote against the attestation service and expected identity.

    Raises :class:`AttestationError` with a reason on failure; returns
    ``True`` on success so callers can assert directly.
    """
    key = service.platform_key(quote.platform_id)
    if key is None:
        raise AttestationError(f"unknown platform {quote.platform_id!r}")
    expected_sig = hmac.new(key, quote.body(), hashlib.sha256).digest()
    if not hmac.compare_digest(expected_sig, quote.signature):
        raise AttestationError("quote signature invalid")
    if quote.debug and not allow_debug:
        raise AttestationError("enclave is in debug mode; refusing for production")
    if expected_mrenclave is not None and quote.mrenclave != expected_mrenclave:
        raise AttestationError(
            "MRENCLAVE mismatch: enclave contents differ from the expected build"
        )
    if expected_mrsigner is not None and quote.mrsigner != expected_mrsigner:
        raise AttestationError("MRSIGNER mismatch: unexpected signing authority")
    return True
